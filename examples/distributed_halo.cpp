// Demonstrates the distributed-runtime abstractions of paper §5.2 on the
// in-process localities: gid-addressed channels for halo exchange, the
// N-timesteps-ahead receive idiom, transparent object migration, and the
// two parcelports' accounting — "an application may benefit from significant
// performance improvements in the runtime without changing a single line of
// the application code": the halo-exchange code below is IDENTICAL for both
// ports.
//
//   ./distributed_halo [localities] [timesteps]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "dist/locality.hpp"
#include "net/faulty.hpp"
#include "net/parcelport.hpp"
#include "support/timer.hpp"

using namespace octo;
using namespace octo::dist;

namespace {

/// A toy 1-D domain of `n` blocks, one per locality, exchanging halos for
/// `steps` timesteps through gid-addressed channels — the communication
/// skeleton of the real solver.
double run_halo_exchange(parcelport_factory make_port, int nloc, int steps,
                         bool show_reliability = false) {
    runtime rt(nloc, std::move(make_port), 2);

    // Each block owns two receive channels (left and right halos).
    std::vector<gid> left(nloc), right(nloc);
    for (int r = 0; r < nloc; ++r) {
        left[r] = rt.register_object(r);
        right[r] = rt.register_object(r);
    }

    octo::stopwatch sw;
    std::vector<rt::future<std::vector<double>>> pending;
    for (int s = 0; s < steps; ++s) {
        // Post receives (could be several steps ahead, §5.2).
        pending.clear();
        for (int r = 0; r < nloc; ++r) {
            pending.push_back(rt.channel_get(left[r]));
            pending.push_back(rt.channel_get(right[r]));
        }
        // Sends: block r pushes its boundary data to its neighbors' channels
        // (periodic). The SAME code runs over either parcelport.
        for (int r = 0; r < nloc; ++r) {
            std::vector<double> halo(64, static_cast<double>(r + s));
            rt.channel_set(right[(r + nloc - 1) % nloc], halo);
            rt.channel_set(left[(r + 1) % nloc], std::move(halo));
        }
        for (auto& f : pending) f.get();
    }
    const double secs = sw.seconds();

    const auto stats = rt.port().stats();
    std::printf("  %-10s: %6.1f ms wall, %llu parcels, %.1f KB, modeled "
                "latency sum %.2f ms\n",
                rt.port().name(), 1e3 * secs,
                static_cast<unsigned long long>(stats.parcels_sent),
                stats.bytes_sent / 1e3, 1e3 * stats.modeled_latency_total);
    if (show_reliability) {
        const auto net = rt.net_stats();
        std::printf("  %-10s  reliability: %llu retries, %llu dups dropped, "
                    "%llu corrupt dropped, %llu reordered, %zu errors\n", "",
                    static_cast<unsigned long long>(net.retries),
                    static_cast<unsigned long long>(net.dups_dropped),
                    static_cast<unsigned long long>(net.corrupt_dropped),
                    static_cast<unsigned long long>(net.reorders_buffered),
                    rt.error_count());
    }
    return secs;
}

} // namespace

int main(int argc, char** argv) {
    const int nloc = argc > 1 ? std::atoi(argv[1]) : 8;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

    std::printf("=== Halo exchange over %d localities, %d timesteps ===\n\n",
                nloc, steps);
    const double t_mpi = run_halo_exchange(net::make_mpi_port(), nloc, steps);
    const double t_lf =
        run_halo_exchange(net::make_libfabric_port(), nloc, steps);
    std::printf("\nspeedup from switching the parcelport (no application "
                "code changed): %.2fx\n",
                t_mpi / t_lf);

    // The same application code again, over a transport that drops,
    // duplicates, reorders and corrupts 10% of everything (ISSUE 5): the
    // runtime's reliability protocol delivers exactly-once anyway, and the
    // price shows up in the counters, not in the results.
    std::printf("\n--- same code, 10%% faulty transport (seed 7) ---\n");
    support::fault_config faults;
    faults.seed = 7;
    faults.drop_prob = 0.1;
    faults.dup_prob = 0.1;
    faults.reorder_prob = 0.15;
    faults.corrupt_prob = 0.05;
    run_halo_exchange(net::make_faulty_port(net::make_mpi_port(), faults),
                      nloc, steps, /*show_reliability=*/true);

    // Migration transparency (paper §5.2).
    std::printf("\n--- AGAS migration ---\n");
    runtime rt(3, net::make_libfabric_port());
    const gid g = rt.register_object(0);
    rt.channel_set(g, {1.0, 2.0});
    rt.wait_quiet();
    rt.migrate(g, 2);
    rt.channel_set(g, {3.0, 4.0}); // sender code unchanged after migration
    auto v1 = rt.channel_get(g).get();
    auto v2 = rt.channel_get(g).get();
    std::printf("received (%g, %g) then (%g, %g) through the same gid across "
                "a migration\n",
                v1[0], v1[1], v2[0], v2[1]);
    return 0;
}

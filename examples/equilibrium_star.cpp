// Verification tests 3 & 4 of the paper's suite (§4.2, after Tasker et al.):
// "we have substituted a single star in equilibrium at rest for the third
// test and a single star in equilibrium in motion for the fourth test. In
// each case, the equilibrium structure should be retained."
//
//   ./equilibrium_star [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/simulation.hpp"
#include "scf/scf.hpp"

using namespace octo;
using namespace octo::amr;

namespace {

void run_case(const char* name, const dvec3& velocity, int steps) {
    auto t = scf::make_uniform_tree(4.0, 2); // 32^3 cells, star radius 1
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, velocity, 1e-10);

    core::sim_options opt;
    opt.eos = phys::ideal_gas_eos(1.0 + 1.0 / 1.5);
    core::simulation sim(std::move(t), opt);

    const auto before = sim.diagnostics();
    std::printf("--- %s ---\n", name);
    std::printf("%5s %10s %12s %14s %16s\n", "step", "t", "rho_max",
                "com_x", "KE / |PE|");
    double time = 0;
    for (int s = 0; s < steps; ++s) {
        time += sim.advance();
        const auto d = sim.diagnostics();
        // Kinetic energy from the momentum field.
        double ke = 0;
        for (const auto k : sim.grid().leaves_sfc()) {
            const auto& g = *sim.grid().node(k).fields;
            const double V = g.geom.cell_volume();
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const dvec3 sv{g.interior(f_sx, i, j, kk),
                                       g.interior(f_sy, i, j, kk),
                                       g.interior(f_sz, i, j, kk)};
                        ke += 0.5 * norm2(sv) /
                              std::max(g.interior(f_rho, i, j, kk), 1e-14) * V;
                    }
        }
        std::printf("%5d %10.4f %12.5f %14.6f %16.4e\n", s + 1, time,
                    d.rho_max, d.center_of_mass.x,
                    ke / std::abs(d.e_potential));
    }
    const auto after = sim.diagnostics();
    std::printf("central density retention: %.2f%% of initial\n",
                100.0 * after.rho_max / before.rho_max);
    if (norm2(velocity) > 0) {
        std::printf("center-of-mass advection: %.5f (expected %.5f)\n",
                    after.center_of_mass.x - before.center_of_mass.x,
                    velocity.x * time);
    }
    std::printf("\n");
}

} // namespace

int main(int argc, char** argv) {
    const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
    std::printf("=== Verification: polytropic star in equilibrium (n = 3/2) ===\n\n");
    run_case("test 3: star at rest", {0, 0, 0}, steps);
    run_case("test 4: star in motion", {0.05, 0, 0}, steps);
    return 0;
}

// Demonstrates the radiation transport extension (paper §7: "we have
// already developed a radiation transport module for Octo-Tiger based on
// the two moment approach"): a free-streaming radiation front crossing the
// grid at the reduced speed of light, then an optically thick cell
// equilibrating with the gas while conserving total energy to rounding.
//
//   ./radiation_wave

#include <cmath>
#include <cstdio>

#include "hydro/update.hpp"
#include "rad/rad.hpp"
#include "scf/scf.hpp"

using namespace octo;
using namespace octo::amr;

int main() {
    std::printf("=== Two-moment (M1) radiation transport ===\n\n");

    // --- Part 1: free streaming -------------------------------------------
    auto t = scf::make_uniform_tree(1.0, 2); // 32^3 over [-0.5, 0.5]^3
    rad::rad_options opt;
    opt.c_hat = 5.0;
    opt.bc = boundary_kind::outflow;
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    g.interior(f_rho, i, j, kk) = 1.0;
                    g.interior(f_egas, i, j, kk) = 1.0;
                    g.interior(f_tau, i, j, kk) =
                        opt.eos.tau_from_internal(1.0);
                    const double E =
                        std::exp(-((r.x + 0.25) * (r.x + 0.25)) / 0.002);
                    g.interior(f_erad, i, j, kk) = E;
                    g.interior(f_frx, i, j, kk) = opt.c_hat * E; // f = 1
                }
    }
    std::printf("free-streaming pulse at c_hat = %.1f:\n", opt.c_hat);
    std::printf("%8s %12s %14s\n", "t", "centroid x", "E_rad total");
    double time = 0;
    for (int s = 0; s < 4; ++s) {
        const double dt = 0.02;
        rad::step(t, dt, opt);
        time += dt;
        double cx = 0, m = 0;
        for (const auto k : t.leaves_sfc()) {
            const auto& g = *t.node(k).fields;
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const double E = g.interior(f_erad, i, j, kk);
                        cx += E * g.geom.cell_center(i, j, kk).x;
                        m += E;
                    }
        }
        std::printf("%8.3f %12.4f %14.6f   (expected x = %.4f)\n", time, cx / m,
                    rad::total_radiation_energy(t), -0.25 + opt.c_hat * time);
    }

    // --- Part 2: matter coupling ------------------------------------------
    std::printf("\noptically thick equilibration (kappa = 50):\n");
    auto t2 = scf::make_uniform_tree(1.0, 1);
    rad::rad_options oc;
    oc.c_hat = 5.0;
    oc.kappa = 50.0;
    oc.a_rad = 0.5;
    oc.bc = boundary_kind::periodic;
    for (const auto k : t2.leaves_sfc()) {
        auto& g = *t2.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    g.interior(f_rho, i, j, kk) = 1.0;
                    g.interior(f_egas, i, j, kk) = 1.0; // hot gas, no radiation
                    g.interior(f_tau, i, j, kk) = oc.eos.tau_from_internal(1.0);
                }
    }
    const double e0 =
        hydro::compute_totals(t2).egas + rad::total_radiation_energy(t2);
    std::printf("%8s %12s %12s %16s\n", "t", "E_gas", "E_rad", "total drift");
    time = 0;
    for (int s = 0; s < 6; ++s) {
        rad::step(t2, 0.05, oc);
        time += 0.05;
        const double eg = hydro::compute_totals(t2).egas;
        const double er = rad::total_radiation_energy(t2);
        std::printf("%8.2f %12.6f %12.6f %16.2e\n", time, eg, er,
                    (eg + er - e0) / e0);
    }
    std::printf("\nE_gas + E_rad conserved to rounding; the gas radiates "
                "toward a T^4 = E equilibrium.\n");
    return 0;
}

// The flagship scenario: a scaled V1309 Scorpii contact-binary merger run
// (paper §3, §6). Builds the SCF initial model, refines the rotating AMR
// grid around the stars, couples the FMM gravity solver (with the simulated
// GPU offloading the same-level kernels), advances the coupled system, and
// writes Fig-1-style density slices plus the conservation ledger.
//
//   ./v1309_merger [steps] [output_prefix]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/scenario.hpp"
#include "runtime/apex.hpp"
#include "gpu/device.hpp"
#include "io/writers.hpp"
#include "support/flops.hpp"
#include "support/timer.hpp"

using namespace octo;

int main(int argc, char** argv) {
    const int steps = argc > 1 ? std::atoi(argv[1]) : 5;
    const std::string prefix = argc > 2 ? argv[2] : "/tmp/v1309";

    std::printf("=== V1309 Scorpii (scaled) with GPU-offloaded FMM ===\n\n");

    // Simulated P100 co-processor (the Piz Daint configuration, Table 3).
    gpu::device device(gpu::p100(), 2);

    core::v1309_config cfg;
    cfg.domain_over_separation = 8.0; // paper: 160; scaled for a laptop run
    cfg.base_depth = 1;
    cfg.max_level = 3;
    cfg.scf_iterations = 20;

    core::sim_options opt;
    opt.eos = phys::ideal_gas_eos(1.0 + 1.0 / 1.5);
    opt.device = &device;
    opt.conserve = fmm::am_mode::spin_deposit;

    octo::stopwatch build_timer;
    auto sim = core::make_v1309(cfg, opt);
    std::printf("SCF model + AMR grid built in %.1fs: %zu octree nodes, "
                "%zu leaves, max level %d\n",
                build_timer.seconds(), sim.grid().size(),
                sim.grid().leaf_count(), sim.grid().max_level());

    flop_reset();
    const auto d0 = sim.diagnostics();
    std::printf("initial: M = %.4f, Lz = %.5f, rho_max = %.3f\n\n",
                d0.hydro.mass, d0.hydro.angular_momentum.z, d0.rho_max);

    std::printf("%5s %10s %12s %14s %14s %12s\n", "step", "dt", "mass",
                "Lz (orb+spin)", "E_gas+E_pot", "rho_max");
    octo::stopwatch run_timer;
    for (int s = 0; s < steps; ++s) {
        const double dt = sim.advance();
        const auto d = sim.diagnostics();
        std::printf("%5ld %10.2e %12.8f %14.8f %14.6f %12.4f\n",
                    sim.step_count(), dt, d.hydro.mass,
                    d.hydro.angular_momentum.z, d.e_total, d.rho_max);
    }
    const double wall = run_timer.seconds();

    const auto d1 = sim.diagnostics();
    std::printf("\nconservation over %d coupled steps:\n", steps);
    std::printf("  mass drift: %.2e (relative)\n",
                (d1.hydro.mass - d0.hydro.mass) / d0.hydro.mass);
    std::printf("  Lz drift:   %.2e (relative)  <- the paper's "
                "machine-precision claim\n",
                (d1.hydro.angular_momentum.z - d0.hydro.angular_momentum.z) /
                    d0.hydro.angular_momentum.z);

    // FMM kernel accounting (paper §6.1.1 style).
    const auto multi = flop_snapshot(kernel_class::fmm_multipole);
    const auto mono = flop_snapshot(kernel_class::fmm_monopole);
    std::printf("\nFMM kernels: %llu multipole + %llu monopole launches, "
                "%.1f%% of multipole launches on the (simulated) GPU\n",
                static_cast<unsigned long long>(multi.launches()),
                static_cast<unsigned long long>(mono.launches()),
                100.0 * multi.gpu_launch_fraction());
    std::printf("wall time: %.1fs (%.1f sub-grids/s)\n", wall,
                steps * static_cast<double>(sim.grid().size()) / wall);

    // APEX-style profile (paper §4.1: "these diagnostic tools were
    // instrumental in scaling Octo-Tiger to the full machine").
    std::printf("\nAPEX profile (top phases):\n");
    for (const auto& [name, st] : rt::apex_registry::instance().timer_report()) {
        std::printf("  %-18s %6llu calls %10.3f s\n", name.c_str(),
                    static_cast<unsigned long long>(st.count),
                    st.total_seconds);
    }
    const auto pstats = rt::thread_pool::global().stats();
    std::printf("scheduler: %llu tasks executed, %llu stolen (%.1f%%)\n",
                static_cast<unsigned long long>(pstats.tasks_executed),
                static_cast<unsigned long long>(pstats.tasks_stolen),
                100.0 * pstats.tasks_stolen /
                    std::max<std::uint64_t>(pstats.tasks_executed, 1));

    // Fig-1-style output: density slice through the orbital plane.
    const std::string slice = prefix + "_density_slice.csv";
    io::write_slice_csv(sim.grid(), amr::f_rho, 0.0, 128, slice);
    const std::string cells = prefix + "_cells.csv";
    io::write_cells_csv(sim.grid(), cells);
    std::printf("\nwrote %s (128x128 orbital-plane density) and %s\n",
                slice.c_str(), cells.c_str());
    return 0;
}

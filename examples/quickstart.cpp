// Quickstart: the Sod shock tube on the AMR grid, verified against the
// exact Riemann solution — the first of the paper's verification tests
// (§4.2). Demonstrates the minimal public API: build a tree, set initial
// data, step the hydro solver, inspect results.
//
//   ./quickstart [t_end]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "amr/tree.hpp"
#include "hydro/riemann_exact.hpp"
#include "hydro/update.hpp"
#include "scf/scf.hpp"

using namespace octo;
using namespace octo::amr;

int main(int argc, char** argv) {
    const double t_end = argc > 1 ? std::atof(argv[1]) : 0.2;

    // A 32^3 uniform grid over the unit cube (depth-2 octree).
    box_geometry root;
    root.origin = {0, 0, 0};
    root.dx = 1.0 / INX;
    tree t(root);
    for (int d = 0; d < 2; ++d) {
        for (const auto k : t.leaves_sfc()) t.refine(k);
    }

    // Sod initial data: (rho, p) = (1, 1) left of x = 0.5, (0.125, 0.1) right.
    phys::ideal_gas_eos eos(1.4);
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const bool left = r.x < 0.5;
                    const double rho = left ? 1.0 : 0.125;
                    const double p = left ? 1.0 : 0.1;
                    g.interior(f_rho, i, j, kk) = rho;
                    g.interior(f_egas, i, j, kk) = p / (1.4 - 1.0);
                    g.interior(f_tau, i, j, kk) =
                        eos.tau_from_internal(p / (1.4 - 1.0));
                }
    }

    // Evolve with PPM + Kurganov-Tadmor, SSP-RK2, global CFL timestep.
    hydro::step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::outflow;
    double time = 0;
    int steps = 0;
    while (time < t_end) {
        time += hydro::step(t, opt);
        ++steps;
    }
    std::printf("evolved Sod tube to t = %.4f in %d steps\n\n", time, steps);

    // Compare the density profile along the tube with the exact solution.
    std::printf("%8s %12s %12s %10s\n", "x", "rho(sim)", "rho(exact)", "error");
    double l1 = 0;
    int n = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i) {
            const dvec3 r = g.geom.cell_center(i, 0, 0);
            if (std::abs(r.y - root.origin.y) > 1.0) continue;
            const double sim = g.interior(f_rho, i, 0, 0);
            const auto ex = hydro::riemann_exact(hydro::sod_left(),
                                                 hydro::sod_right(),
                                                 (r.x - 0.5) / time, 1.4);
            l1 += std::abs(sim - ex.rho);
            ++n;
            if (i % 2 == 0 && g.geom.origin.y == 0 && g.geom.origin.z == 0) {
                std::printf("%8.4f %12.5f %12.5f %10.2e\n", r.x, sim, ex.rho,
                            std::abs(sim - ex.rho));
            }
        }
    }
    std::printf("\nL1 density error: %.4f (32 cells across the tube)\n", l1 / n);

    const auto totals = hydro::compute_totals(t);
    std::printf("total mass: %.12f (conserved to rounding under outflow-free "
                "evolution)\n",
                totals.mass);
    return 0;
}

"""Shared C++ source model for octo-analyze.

Pure-Python, no libclang: a comment/string stripper that preserves line and
column positions, a brace/scope tree that classifies every `{...}` region
(namespace / class / function / lambda / control / brace-init), lambda launch
detection (which call received the lambda — pool.post, rt::async, .then,
register_action), and helpers to walk the text a scope *directly* owns
(excluding nested scopes).

Everything downstream (legacy lint rules, the futurization-deadlock and
determinism rules, the serialization-coverage cross-check) builds on this one
model, so stripping/scoping behavior is defined in exactly one place.
"""

import bisect
import re

# ---------------------------------------------------------------------------
# Comment / string stripping (position-preserving)
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines and
    column positions so findings can report real line numbers."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def blank_preprocessor(clean):
    """Blank preprocessor directive lines (and their backslash
    continuations), preserving newlines, so `#include <...>` runs don't glue
    themselves onto the next scope header and `#define` bodies don't read as
    statements."""
    out = []
    cont = False
    for line in clean.split("\n"):
        directive = cont or line.lstrip().startswith("#")
        if directive:
            cont = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


class LineIndex:
    """Offset -> 1-based line number lookups over one text buffer."""

    def __init__(self, text):
        self.starts = [0]
        for m in re.finditer(r"\n", text):
            self.starts.append(m.end())

    def line(self, offset):
        return bisect.bisect_right(self.starts, offset)


# ---------------------------------------------------------------------------
# Statement splitting (legacy-compatible: used by the dropped-future rule)
# ---------------------------------------------------------------------------


def statements(clean):
    """Yield (start_lineno, text) for each top-level-ish statement: the code
    between ';' / '{' / '}' boundaries taken at *zero* parenthesis depth, so
    a multi-line when_all(...).then([...]{ ...; }); chain stays one unit."""
    start = 0
    lineno = 1
    start_line = 1
    depth = 0
    for i, c in enumerate(clean):
        if c == "\n":
            lineno += 1
            continue
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        elif c in ";{}" and depth == 0:
            stmt = clean[start : i + 1]
            if stmt.strip():
                yield start_line, stmt
            start = i + 1
            start_line = lineno
    tail = clean[start:]
    if tail.strip():
        yield start_line, tail


# ---------------------------------------------------------------------------
# Scope tree
# ---------------------------------------------------------------------------

# Call names that run their lambda argument as a *pool task* (or an action
# handler, which the runtime drains on pool strands). A blocking wait inside
# one of these is the pool-starvation deadlock class.
TASK_LAUNCHERS = {"post", "async", "then", "register_action"}

_CONTROL_KEYWORDS = ("if", "for", "while", "switch", "do", "else", "try",
                     "catch")

_LAMBDA_TAIL = re.compile(
    r"\]\s*(?:\([^()]*(?:\([^()]*\)[^()]*)*\))?"  # optional parameter list
    r"(?:\s*(?:mutable|noexcept|constexpr))*"
    r"(?:\s*->\s*[\w:<>,&*\s]+?)?\s*$"
)
_CALLEE = re.compile(r"([A-Za-z_]\w*)\s*$")


class Scope:
    __slots__ = ("kind", "name", "header", "start", "end", "line", "parent",
                 "children", "launch", "params", "vars")

    def __init__(self, kind, header, start, line, parent):
        self.kind = kind        # file|namespace|class|enum|function|lambda|
                                # control|block|braceinit
        self.name = None        # class / function name when known
        self.header = header    # text between previous boundary and '{'
        self.start = start      # offset of '{' ('file': 0)
        self.end = None         # offset of matching '}' (exclusive of body)
        self.line = line
        self.parent = parent
        self.children = []
        self.launch = None      # callee that received this lambda, if any
        self.params = None      # raw parameter-list text (function/lambda)
        self.vars = {}          # name -> ('decl', type_text) |
                                #         ('rangefor', container_expr)

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()

    def in_task(self):
        """Whether code in this scope runs inside a pool task: the scope is a
        launched lambda, or is nested (through blocks/control/lambdas, but not
        through a fresh function or class) under one."""
        s = self
        while s is not None:
            if s.kind == "lambda" and s.launch in TASK_LAUNCHERS:
                return True
            if s.kind in ("function", "class", "namespace", "file"):
                return False
            s = s.parent
        return False

    def enclosing(self, *kinds):
        s = self
        while s is not None:
            if s.kind in kinds:
                return s
            s = s.parent
        return None


def _strip_templates(text):
    """Remove balanced <...> groups so parens inside std::function<void(int)>
    don't read as a function declarator. Comparison operators survive because
    they never balance."""
    out = []
    depth = 0
    for ch in text:
        if ch == "<":
            depth += 1
            continue
        if ch == ">" and depth > 0:
            depth -= 1
            continue
        if depth == 0:
            out.append(ch)
    return "".join(out) if depth == 0 else text


def _matching_open_bracket(text, close):
    depth = 0
    for i in range(close, -1, -1):
        c = text[i]
        if c == "]":
            depth += 1
        elif c == "[":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _is_lambda_header(header):
    m = _LAMBDA_TAIL.search(header)
    if not m:
        return False
    close = header.index("]", m.start())
    open_ = _matching_open_bracket(header, close)
    if open_ < 0:
        return False
    before = header[:open_].rstrip()
    # An identifier / ')' / ']' right before '[' means subscript or attribute
    # ([[...]]), not a lambda introducer.
    if before.endswith("["):
        return False
    return not (before and (before[-1].isalnum() or before[-1] in "_)]"))


def _first_word(text):
    m = re.match(r"\s*([A-Za-z_]\w*)", text)
    return m.group(1) if m else ""


def _classify(header, parent, clean, brace_at):
    """Decide what kind of scope a '{' at brace_at opens."""
    h = header.strip()
    if _is_lambda_header(h):
        return "lambda"
    words = re.findall(r"[A-Za-z_]\w*", h)
    if "namespace" in words[:2]:
        return "namespace"
    if words and words[0] in ("enum",):
        return "enum"
    # struct/class definition: keyword present and not a function returning
    # an elaborated type (those have a '(' after the class name).
    for i, w in enumerate(words):
        if w in ("struct", "class", "union"):
            after = h.split(w, 1)[1]
            if "(" not in _strip_templates(after):
                return "class"
            break
        if w not in ("template", "typename", "alignas", "final", "export"):
            break
    first = _first_word(h)
    if first in _CONTROL_KEYWORDS or h == "" and parent.kind in (
            "function", "lambda", "control", "block"):
        return "control" if first in _CONTROL_KEYWORDS else "block"
    stripped = _strip_templates(h)
    if "(" in stripped and parent.kind in ("file", "namespace", "class"):
        return "function"
    if h.endswith("=") or h.endswith(",") or h.endswith("(") or \
            h.endswith("return") or h.endswith("{"):
        return "braceinit"
    if parent.kind in ("function", "lambda", "control", "block"):
        # `T x` / `= T` style brace-init, or a bare block.
        if h and not h.endswith(")"):
            return "braceinit"
        return "control" if h.endswith(")") else "block"
    if parent.kind == "class" and h:
        return "braceinit"  # member brace initializer: int x{0};
    return "block"


def _function_name_params(header):
    stripped = _strip_templates(header)
    i = stripped.find("(")
    if i < 0:
        return None, None
    before = stripped[:i]
    m = _CALLEE.search(before)
    name = m.group(1) if m else None
    # Parameter list from the *original* header (templates intact).
    j = header.find("(")
    if j < 0:
        return name, None
    depth = 0
    for k in range(j, len(header)):
        if header[k] == "(":
            depth += 1
        elif header[k] == ")":
            depth -= 1
            if depth == 0:
                return name, header[j + 1 : k]
    return name, None


def _class_name(header):
    m = re.search(r"\b(?:struct|class|union)\s+(?:alignas\s*\([^)]*\)\s*)?"
                  r"([A-Za-z_]\w*)", header)
    return m.group(1) if m else None


def _lambda_params(header):
    m = _LAMBDA_TAIL.search(header)
    if not m:
        return None
    tail = header[m.start():]
    j = tail.find("(")
    if j < 0:
        return None
    depth = 0
    for k in range(j, len(tail)):
        if tail[k] == "(":
            depth += 1
        elif tail[k] == ")":
            depth -= 1
            if depth == 0:
                return tail[j + 1 : k]
    return None


def build_scopes(clean, lines=None):
    """Parse stripped text into a scope tree. Returns the file-level root."""
    lines = lines or LineIndex(clean)
    root = Scope("file", "", 0, 1, None)
    root.end = len(clean)
    stack = [root]
    # Call-context stack: (offset, callee) per currently-open parenthesis.
    parens = []
    boundary = 0  # start of the current header (last ; { } at paren depth 0)
    i, n = 0, len(clean)
    while i < n:
        c = clean[i]
        if c == "(":
            m = _CALLEE.search(clean, max(0, i - 64), i)
            parens.append((i, m.group(1) if m else ""))
        elif c == ")":
            if parens:
                parens.pop()
        elif c == "{":
            header = clean[boundary:i]
            parent = stack[-1]
            kind = _classify(header, parent, clean, i)
            scope = Scope(kind, header.strip(), i, lines.line(i), parent)
            if kind == "lambda":
                scope.launch = parens[-1][1] if parens else None
                scope.params = _lambda_params(header)
            elif kind == "function":
                scope.name, scope.params = _function_name_params(header)
            elif kind == "class":
                scope.name = _class_name(header)
            parent.children.append(scope)
            stack.append(scope)
            boundary = i + 1
        elif c == "}":
            if len(stack) > 1:
                stack[-1].end = i
                stack.pop()
            boundary = i + 1
        elif c == ";" and not parens:
            boundary = i + 1
        i += 1
    while len(stack) > 1:  # unterminated scopes (truncated file): close out
        stack[-1].end = n
        stack.pop()
    return root


# ---------------------------------------------------------------------------
# Scope text helpers
# ---------------------------------------------------------------------------


def body_range(scope):
    """(start, end) offsets of the text inside the scope's braces."""
    if scope.kind == "file":
        return scope.start, scope.end
    return scope.start + 1, scope.end


def own_ranges(scope, skip_kinds=()):
    """Text ranges directly owned by `scope`: its body minus the bodies of
    child scopes (headers of children stay owned — they are expressions of
    this scope). Children whose kind is in skip_kinds keep their header out
    too (used to drop discarded lambda bodies wholesale)."""
    start, end = body_range(scope)
    ranges = []
    pos = start
    for ch in scope.children:
        cs, ce = ch.start, (ch.end if ch.end is not None else end)
        if ch.kind in skip_kinds:
            hdr_start = max(pos, cs - len(ch.header) - 2)
            ranges.append((pos, hdr_start))
        else:
            ranges.append((pos, cs + 1))
        pos = min(ce + 1, end)
    ranges.append((pos, end))
    return [(a, b) for a, b in ranges if b > a]


def own_text(clean, scope):
    """The scope's directly-owned text, with child bodies blanked (newlines
    preserved) so offsets into it equal offsets into `clean`."""
    start, end = body_range(scope)
    buf = list(clean[start:end])
    for ch in scope.children:
        cs = ch.start + 1 - start
        ce = (ch.end if ch.end is not None else end) - start
        for k in range(max(cs, 0), min(ce, len(buf))):
            if buf[k] != "\n":
                buf[k] = " "
        # A non-brace-init child's closing '}' terminates a statement (method
        # definitions inside a class, control blocks inside a function), so
        # turn it into ';' for the statement splitter. Brace-inits stay
        # intact: `int x{0};` keeps its own ';'.
        if ch.kind != "braceinit" and 0 <= ce < len(buf):
            buf[ce] = ";"
    return start, "".join(buf)


def blanked(clean, scope, blank_kinds=("lambda",), keep=None):
    """Full body text of `scope` with every *descendant* scope of a kind in
    blank_kinds blanked out (newlines preserved). Offsets align with clean."""
    start, end = body_range(scope)
    buf = list(clean[start:end])
    for d in scope.walk():
        if d is scope or d.kind not in blank_kinds or (keep and d in keep):
            continue
        cs, ce = d.start + 1 - start, (d.end or end) - start
        for k in range(max(cs, 0), min(ce, len(buf))):
            if buf[k] != "\n":
                buf[k] = " "
    return start, "".join(buf)


def scope_statements(clean, scope):
    """Yield (offset, text) for ';'-terminated statements in the scope's own
    text (child bodies blanked). Statements are split at ';' at zero paren
    depth; the trailing un-terminated chunk is yielded too."""
    start, text = own_text(clean, scope)
    depth = 0
    seg_start = 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth = max(0, depth - 1)
        elif ch == ";" and depth == 0:
            seg = text[seg_start:i]
            if seg.strip():
                yield start + seg_start, seg
            seg_start = i + 1
    seg = text[seg_start:]
    if seg.strip():
        yield start + seg_start, seg

"""Per-TU symbol tables for octo-analyze.

Built on the cxx scope tree: struct/class definitions with their data members
(name, declared type, access), function definitions with qualified names and
parsed parameter lists, local/parameter variable declarations per scope, and
range-for loops (braced or not). A project-wide struct index merges every
TU's classes so a serializer in dist/migrate.cpp can be cross-checked against
a struct declared in amr/subgrid.hpp.

All of it is heuristic (no preprocessor, no overload resolution) but
deliberately conservative: rules only fire when a name resolves, so an
unresolvable expression can never produce a false finding.
"""

import re

from cxx import (LineIndex, Scope, blank_preprocessor, build_scopes,
                 scope_statements, strip_comments_and_strings,
                 _strip_templates)

# ---------------------------------------------------------------------------
# Data
# ---------------------------------------------------------------------------


class Member:
    __slots__ = ("name", "type", "access", "line")

    def __init__(self, name, type_, access, line):
        self.name = name
        self.type = type_
        self.access = access
        self.line = line


class StructInfo:
    __slots__ = ("name", "kind", "file", "line", "members", "scope")

    def __init__(self, name, kind, file, line, scope):
        self.name = name
        self.kind = kind  # 'struct' | 'class'
        self.file = file
        self.line = line
        self.members = []
        self.scope = scope

    def member(self, name):
        for m in self.members:
            if m.name == name:
                return m
        return None


class FunctionInfo:
    __slots__ = ("name", "qualname", "cls", "params", "scope", "file", "line")

    def __init__(self, qualname, params, scope, file, line):
        self.qualname = qualname                 # e.g. cost_model::observe
        self.name = qualname.split("::")[-1]
        self.cls = None                          # owning class name, if known
        if "::" in qualname:
            self.cls = qualname.split("::")[-2]
        self.params = params                     # [(type_text, name), ...]
        self.scope = scope
        self.file = file
        self.line = line


class TU:
    """One analyzed translation unit (really: one source or header file)."""

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel
        self.text = text
        self.raw_lines = text.splitlines()
        # Legacy lint rules see the historical stripped text (preprocessor
        # lines visible); the scope/symbol model additionally blanks
        # directives so they never glue onto scope headers.
        self.legacy_clean = strip_comments_and_strings(text)
        self.clean = blank_preprocessor(self.legacy_clean)
        self.lines = LineIndex(self.clean)
        self.root = build_scopes(self.clean, self.lines)
        self.structs = {}    # name -> StructInfo (this TU only)
        self.functions = []  # FunctionInfo list
        self.func_by_name = {}
        _collect_structs(self)
        _collect_functions(self)
        _collect_vars(self)

    def scope_at(self, offset):
        best = self.root
        changed = True
        while changed:
            changed = False
            for c in best.children:
                if c.start < offset < (c.end or len(self.clean)):
                    best = c
                    changed = True
                    break
        return best


# ---------------------------------------------------------------------------
# Struct members
# ---------------------------------------------------------------------------

_ACCESS = re.compile(r"\b(public|private|protected)\s*:")
_SKIP_MEMBER_START = ("using", "typedef", "friend", "static", "template",
                      "enum", "operator", "virtual", "explicit", "return",
                      "struct", "class", "union", "namespace")
_MEMBER_NAME = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\{\s*\}|=[^,]*)?\s*$")


def _class_statements(tu, scope):
    """Statements at class depth. cxx.scope_statements blanks child bodies
    and turns non-brace-init child '}' into ';', so method definitions split
    from the member declarations that follow them."""
    return scope_statements(tu.clean, scope)


def _collect_structs(tu):
    for s in tu.root.walk():
        if s.kind != "class" or not s.name:
            continue
        kind = "class" if re.search(r"\bclass\b", s.header) else "struct"
        info = StructInfo(s.name, kind, tu.rel, s.line, s)
        access_default = "private" if kind == "class" else "public"
        # Access labels with their offsets, scanned over the class's own text.
        labels = []
        from cxx import own_text
        base, text = own_text(tu.clean, s)
        for m in _ACCESS.finditer(text):
            labels.append((base + m.start(), m.group(1)))
        for off, stmt in _class_statements(tu, s):
            # Access labels share a segment with the declaration that follows
            # them (they end with ':', not ';'); strip and skip them.
            lm = re.match(r"\s*(?:(?:public|private|protected)\s*:\s*)+", stmt)
            label_end = lm.end() if lm else 0
            decl_off = off + label_end
            decl = stmt[label_end:].strip()
            if not decl:
                continue
            first = re.match(r"[A-Za-z_]\w*", decl)
            if not first or first.group(0) in _SKIP_MEMBER_START:
                continue
            stripped = _strip_templates(decl)
            if "(" in stripped or "operator" in stripped:
                continue  # function declaration / definition header
            access = access_default
            for lpos, lname in labels:
                if lpos <= decl_off:
                    access = lname
            # Split multi-declarators at top-level commas of the *stripped*
            # text (template commas are gone).
            parts = [p for p in stripped.split(",") if p.strip()]
            for part in parts:
                m = _MEMBER_NAME.search(part.strip())
                if not m:
                    continue
                name = m.group(1)
                if name in ("const", "override", "final", "noexcept"):
                    continue
                # Type text from the *original* declaration (templates
                # intact: `std::unordered_map<k, v> nodes_` keeps its args),
                # falling back to the previous declarator for `int a, b;`.
                if part is parts[0] and name in decl:
                    type_text = decl[: decl.rfind(name)].strip().rstrip("&*")
                elif info.members:
                    type_text = info.members[-1].type
                else:
                    type_text = stripped
                info.members.append(
                    Member(name, type_text, access, tu.lines.line(decl_off)))
        tu.structs[s.name] = info


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------

_QUALNAME = re.compile(r"([A-Za-z_][\w:]*)\s*$")


def _split_params(params_text):
    """Split a parameter list at top-level commas; return (type, name) pairs.
    The name is the last identifier of a parameter that has at least two
    identifier-ish tokens (so unnamed parameters yield name=None)."""
    if params_text is None:
        return []
    out = []
    depth = 0
    part = []
    parts = []
    for ch in params_text:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(part))
            part = []
        else:
            part.append(ch)
    parts.append("".join(part))
    for p in parts:
        p = p.strip()
        if not p or p == "void":
            continue
        p = re.sub(r"=\s*[^,]*$", "", p).strip()  # default argument
        words = re.findall(r"[A-Za-z_][\w:]*", _strip_templates(p))
        words = [w for w in words if w not in ("const", "struct", "class",
                                               "typename", "volatile")]
        if not words:
            continue
        if len(words) == 1:
            out.append((p, None))
        else:
            name = words[-1]
            type_text = p[: p.rfind(name)].strip()
            out.append((type_text if type_text else p, name))
    return out


def _collect_functions(tu):
    for s in tu.root.walk():
        if s.kind != "function":
            continue
        header = s.header
        stripped = _strip_templates(header)
        i = stripped.find("(")
        qual = None
        if i >= 0:
            m = _QUALNAME.search(stripped[:i].strip())
            if m:
                qual = m.group(1).strip(":")
        if not qual:
            continue
        info = FunctionInfo(qual, _split_params(s.params), s, tu.rel, s.line)
        if info.cls is None:
            encl = s.parent
            while encl is not None:
                if encl.kind == "class" and encl.name:
                    info.cls = encl.name
                    break
                if encl.kind in ("function", "lambda"):
                    break
                encl = encl.parent
        s.name = qual
        tu.functions.append(info)
        tu.func_by_name.setdefault(info.name, []).append(info)


# ---------------------------------------------------------------------------
# Variables (declarations, parameters, range-fors)
# ---------------------------------------------------------------------------

_DECL_KEYWORDS = {"return", "delete", "throw", "goto", "co_return", "else",
                  "case", "new", "if", "while", "for", "do", "switch",
                  "break", "continue", "public", "private", "protected",
                  "typedef", "using", "namespace", "template", "typename",
                  "struct", "class", "enum", "sizeof", "catch", "try"}

_SBIND = re.compile(
    r"^\s*(?:const\s+)?auto\s*&{0,2}\s*\[([^\]]+)\]\s*=\s*(.+)$", re.S)
_PLAIN_DECL = re.compile(
    r"^\s*(?:(?:const|constexpr|static|mutable|thread_local|inline)\s+)*"
    r"(?P<type>[A-Za-z_][\w:]*(?:\s*<[^;=]*?>)?(?:\s*const)?(?:\s*[&*]+)?)"
    r"\s+(?P<name>[A-Za-z_]\w*)\s*(?:(?P<init>=\s*.+)|\(|\{|$)", re.S)

# Braced and brace-less range-for loops, found textually.
_RANGE_FOR = re.compile(r"\bfor\s*\(")


def find_range_fors(clean):
    """Yield (offset, decl_text, container_expr, body_start, body_end,
    braced) for every range-for in the file. body offsets delimit either the
    braced body's interior or the single statement after the header."""
    for m in _RANGE_FOR.finditer(clean):
        open_ = clean.index("(", m.end() - 1)
        depth = 0
        close = None
        for i in range(open_, len(clean)):
            if clean[i] == "(":
                depth += 1
            elif clean[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
        if close is None:
            continue
        inner = clean[open_ + 1 : close]
        colon = _toplevel_colon(inner)
        if colon is None:
            continue
        decl_text = inner[:colon].strip()
        container = inner[colon + 1 :].strip()
        # Body: a braced compound statement or the single statement to ';'.
        j = close + 1
        while j < len(clean) and clean[j].isspace():
            j += 1
        if j < len(clean) and clean[j] == "{":
            depth = 0
            end = None
            for i in range(j, len(clean)):
                if clean[i] == "{":
                    depth += 1
                elif clean[i] == "}":
                    depth -= 1
                    if depth == 0:
                        end = i
                        break
            if end is None:
                continue
            yield m.start(), decl_text, container, j + 1, end, True
        else:
            end = clean.find(";", j)
            if end < 0:
                continue
            yield m.start(), decl_text, container, j, end, False


def _toplevel_colon(text):
    """Position of a single ':' at zero bracket depth (skipping '::')."""
    depth = 0
    i = 0
    while i < len(text):
        c = text[i]
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(text) and text[i + 1] == ":":
                i += 2
                continue
            if i > 0 and text[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return None


def _register_decl_names(scope, decl_text, container):
    names = []
    sb = _SBIND.match(decl_text + " = x")  # reuse the binding-name grammar
    if "[" in decl_text and sb:
        names = [n.strip() for n in sb.group(1).split(",")]
    else:
        m = re.search(r"([A-Za-z_]\w*)\s*$", decl_text)
        if m:
            names = [m.group(1)]
    for n in names:
        scope.vars.setdefault(n, ("rangefor", container))


def _collect_vars(tu):
    # Parameters of functions and lambdas.
    for s in tu.root.walk():
        if s.kind in ("function", "lambda") and s.params:
            for type_text, name in _split_params(s.params):
                if name:
                    s.vars.setdefault(name, ("decl", type_text))
        if s.kind in ("function", "lambda", "control", "block"):
            for off, stmt in scope_statements(tu.clean, s):
                text = stmt.strip()
                if not text:
                    continue
                sb = _SBIND.match(text)
                if sb:
                    init = sb.group(2)
                    for n in sb.group(1).split(","):
                        s.vars.setdefault(n.strip(), ("sbind", init))
                    continue
                m = _PLAIN_DECL.match(text)
                if not m:
                    continue
                type_text = m.group("type").strip()
                first = re.match(r"[A-Za-z_]\w*", type_text)
                if not first or first.group(0) in _DECL_KEYWORDS:
                    continue
                init = (m.group("init") or "").lstrip("= \t\n")
                if type_text == "auto" or type_text.startswith("auto"):
                    s.vars.setdefault(m.group("name"),
                                      ("auto", init or type_text))
                else:
                    s.vars.setdefault(m.group("name"), ("decl", type_text))
    # Range-for loop variables: attach to the body scope when braced, else to
    # the innermost scope containing the loop.
    for off, decl, container, bs, be, braced in find_range_fors(tu.clean):
        scope = tu.scope_at(bs if braced else off)
        _register_decl_names(scope, decl, container)


# ---------------------------------------------------------------------------
# Name / type resolution
# ---------------------------------------------------------------------------


def lookup_var(tu, scope, name, struct_index=None):
    """Resolve `name` to a ('decl'|'auto'|'sbind'|'rangefor', text) entry by
    walking enclosing scopes; falls back to data members of the enclosing
    class (definition-in-class or out-of-line via the X:: qualname)."""
    s = scope
    while s is not None:
        if name in s.vars:
            return s.vars[name]
        s = s.parent
    # Member of the enclosing class?
    cls = _enclosing_class(tu, scope)
    if cls and struct_index is not None:
        info = struct_index.get(cls)
        if isinstance(info, StructInfo):
            mem = info.member(name)
            if mem:
                return ("decl", mem.type)
    if cls and cls in tu.structs:
        mem = tu.structs[cls].member(name)
        if mem:
            return ("decl", mem.type)
    return None


def _enclosing_class(tu, scope):
    s = scope
    while s is not None:
        if s.kind == "class" and s.name:
            return s.name
        if s.kind == "function" and s.name and "::" in s.name:
            return s.name.split("::")[-2]
        s = s.parent
    return None

"""Distribution-correctness rules: serialization-coverage, nondet-iteration.

serialization-coverage
    Every struct shipped through dist/serialize.hpp archives, dist/migrate,
    or the CRC-checked checkpoint v2 writer must have ALL of its declared
    data members touched by the function that serializes it. A member that
    never crosses the archive is silent corruption: migrated-vs-not and
    restarted-vs-not bit-identity (the repo's load-bearing invariants since
    PR 5/8) break only on the first run that exercises the stale field.
    A function qualifies when it takes an oarchive/iarchive parameter or its
    body computes/updates a CRC; it is then checked against the *public*
    members of every project-struct parameter (all members when the function
    belongs to the struct itself). Unresolvable or ambiguous types are
    skipped — the rule only fires on what it can prove.

nondet-iteration
    Iterating a std::unordered_map/unordered_set while accumulating
    floating-point state or emitting parcels, in src/fmm, src/hydro,
    src/amr, src/dist. Unordered iteration order varies across libstdc++
    versions, hash seeds and rehash history; FP addition is not associative
    and parcel delivery order feeds the seq/CRC stream, so either one breaks
    CPU-vs-GPU / migrated-vs-not / restarted-vs-not bit-identity. The rule
    resolves the range-for container's declared type (locals, members of the
    enclosing class, one member hop through the struct index) and looks for
    a hazard in the loop body: a compound FP assignment, a send/apply/
    serialize call, or a call to a same-TU function that updates member
    state. Ordered containers and pure-reader loops (counters, push_back
    then sort, lookups) never fire it.
"""

import os
import re

from cxx import _strip_templates
from symbols import find_range_fors, lookup_var

_ARCHIVE = re.compile(r"\b[io]archive\b")
_CRC_MARKER = re.compile(
    r"\b(?:crc32|put_crc|get_crc)\s*\(|\bcrc\s*\.\s*update\s*\(")

_NONDET_DIRS = ("src/fmm", "src/hydro", "src/amr", "src/dist")
_UNORDERED = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
_COMPOUND_ASSIGN = re.compile(r"(?<![<>=!+\-*/&|^])[+\-*/]\s*=(?!=)")
_EMIT = re.compile(r"(?:\.|->)\s*(?:send|apply)\s*\(|\bserialize")
_MEMBER_MUT = re.compile(r"(?:\bthis\s*->\s*\w+|\b[A-Za-z]\w*_)\s*"
                         r"[+\-*/]\s*=(?!=)")
_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
_SAFE_CALLS = {"if", "for", "while", "switch", "return", "sizeof", "at",
               "find", "count", "size", "begin", "end", "push_back",
               "emplace_back", "insert", "emplace", "contains", "get",
               "second", "first", "min", "max", "abs", "static_cast",
               "assert", "OCTO_ASSERT"}


# ---------------------------------------------------------------------------
# serialization-coverage
# ---------------------------------------------------------------------------


def _project_struct(type_text, struct_index):
    idents = re.findall(r"[A-Za-z_]\w*", _strip_templates(type_text or ""))
    idents = [w for w in idents
              if w not in ("const", "struct", "class", "std", "octo",
                           "volatile")]
    if not idents:
        return None
    info = struct_index.get(idents[-1])
    return info if hasattr(info, "members") else None


def check_serialization_coverage(tu, struct_index, findings):
    for fn in tu.functions:
        body = tu.clean[fn.scope.start + 1 : fn.scope.end]
        takes_archive = any(_ARCHIVE.search(t or "") for t, _ in fn.params)
        if not takes_archive and not _CRC_MARKER.search(body):
            continue
        for type_text, pname in fn.params:
            if not pname or _ARCHIVE.search(type_text or ""):
                continue
            info = _project_struct(type_text, struct_index)
            if info is None:
                continue
            check_all = fn.cls == info.name
            for mem in info.members:
                if not check_all and mem.access != "public":
                    continue
                if re.search(r"\b%s\s*(?:\.|->)\s*%s\b"
                             % (re.escape(pname), re.escape(mem.name)), body):
                    continue
                findings.append(
                    (tu.rel, fn.line, "serialization-coverage",
                     f"{fn.name}() never touches '{info.name}::{mem.name}'; "
                     "an unserialized member is silent migration/restart "
                     "corruption — archive it, or suppress with the reason "
                     "it is excluded by design"))
        # Member serialize/save/load: must cover the owning struct itself.
        if fn.name in ("serialize", "save", "load") and fn.cls:
            info = struct_index.get(fn.cls)
            if not hasattr(info, "members"):
                continue
            for mem in info.members:
                if re.search(r"\b%s\b" % re.escape(mem.name), body):
                    continue
                findings.append(
                    (tu.rel, fn.line, "serialization-coverage",
                     f"{fn.name}() never touches '{info.name}::{mem.name}'; "
                     "an unserialized member is silent migration/restart "
                     "corruption — archive it, or suppress with the reason "
                     "it is excluded by design"))


# ---------------------------------------------------------------------------
# nondet-iteration
# ---------------------------------------------------------------------------


def _container_type(tu, scope, expr, struct_index):
    e = expr.strip()
    while e.startswith("*") or e.startswith("&"):
        e = e[1:].lstrip()
    m = re.match(r"^([A-Za-z_]\w*)((?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)$", e)
    if not m:
        return None
    v = lookup_var(tu, scope, m.group(1), struct_index)
    if not v or v[0] != "decl":
        return None
    t = v[1]
    for part in re.findall(r"[A-Za-z_]\w*", m.group(2)):
        info = _project_struct(t, struct_index)
        mem = info.member(part) if info else None
        if mem is None:
            return None
        t = mem.type
    return t


def _body_hazard(tu, body):
    if _COMPOUND_ASSIGN.search(body):
        return "floating-point accumulation (order-dependent rounding)"
    if _EMIT.search(body):
        return "parcel emission (order feeds the seq/CRC stream)"
    for m in _CALL.finditer(body):
        callee = m.group(1)
        if callee in _SAFE_CALLS or callee not in tu.func_by_name:
            continue
        for f in tu.func_by_name[callee]:
            fbody = tu.clean[f.scope.start + 1 : f.scope.end]
            if _MEMBER_MUT.search(fbody) or _COMPOUND_ASSIGN.search(fbody):
                return (f"an order-sensitive state update in {callee}()")
    return None


def check_nondet_iteration(tu, struct_index, findings):
    rel = tu.rel.replace(os.sep, "/")
    if not rel.startswith(_NONDET_DIRS):
        return
    for off, decl, container, bs, be, braced in find_range_fors(tu.clean):
        scope = tu.scope_at(bs if braced else off)
        ctype = _container_type(tu, scope, container, struct_index)
        if not ctype or not _UNORDERED.search(ctype):
            continue
        hazard = _body_hazard(tu, tu.clean[bs:be])
        if not hazard:
            continue
        findings.append(
            (tu.rel, tu.lines.line(off), "nondet-iteration",
             f"iteration over unordered container '{container.strip()}' "
             f"feeds {hazard}; unordered order varies across hash seeds "
             "and rehashes, breaking bit-identity — iterate keys in "
             "sorted order or use an ordered container"))


def run(tu, struct_index, findings):
    check_serialization_coverage(tu, struct_index, findings)
    check_nondet_iteration(tu, struct_index, findings)

"""Futurization-deadlock rules: blocking-in-task and lock-across-wait.

blocking-in-task
    A blocking wait — `.get()` / `.wait()` on a future or latch, or a
    pool-quiescence call (`wait_idle`, `wait_quiet`) — inside a lambda that
    runs as a pool task (posted via `thread_pool::post`, `rt::async`, a
    `.then` continuation, or a `register_action` handler). A task that parks
    a worker thread can starve the pool: if every worker blocks on futures
    whose producing tasks are still queued, nothing ever runs them. The
    work-helping `future::get` mitigates but does not remove the hazard
    (recursive helping still deadlocks on cyclic waits and inverts
    priorities), so the futurized schedules keep blocking waits at the
    call-graph roots and express in-task ordering with continuations.

    The sole parameter of a `.then` continuation is exempt: the runtime only
    invokes the continuation once its antecedent is ready, so `.get()` on it
    merely unwraps. Futures *derived* from it (e.g. the elements of a
    `when_all` vector) are still flagged — the rule cannot prove them ready.

lock-across-wait
    A lock (RAII guard or a manual `.lock()`) whose scope encloses a
    blocking wait. The holder parks while every task contending for that
    lock spins or queues behind it; combined with blocking-in-task this is
    the classic AMT deadlock recipe. The region ends at an explicit
    `.unlock()` so the drain-outside-the-lock idiom stays clean.

Both rules resolve receiver types through the per-scope symbol tables, so a
`shared_ptr::get()` or a `condition_variable::wait(lk)` never fires them.
"""

import re

from cxx import TASK_LAUNCHERS, blanked, scope_statements
from symbols import lookup_var, _split_params

# Calls that mint a future (so `x().get()` chains resolve without a decl).
MINTING = {"async", "when_all", "get_future", "done_future",
           "make_ready_future", "recv"}
_MINT_EXPR = re.compile(
    r"\b(?:async|when_all|get_future|done_future|make_ready_future|recv)"
    r"\s*\(|\.\s*then\s*\(")
_PTR_EXPR = re.compile(r"\b(?:make_shared|make_unique)\b|&\s*[A-Za-z_]")

# Blocking waits: member get/wait with EMPTY parens (cv.wait(lk) and
# get(index) never match), plus the pool-quiescence entry points.
_MEMBER_WAIT = re.compile(r"(?:\.|->)\s*(get|wait)\s*\(\s*\)")
_QUIESCE = re.compile(r"\b(wait_idle|wait_quiet|wait_quiet_for)\s*\(")

_READY = "<ready>"  # marker type for a .then continuation's parameter

_LOCK_RAII = re.compile(
    r"\b(?:lock_guard|unique_lock|scoped_lock)\s+([A-Za-z_]\w*)\s*[({]")
_LOCK_MANUAL = re.compile(
    r"(\b[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*lock"
    r"\s*\(\s*\)")

_IDENT_BACK = re.compile(r"([A-Za-z_][\w:]*)$")


# ---------------------------------------------------------------------------
# Receiver-chain extraction and classification
# ---------------------------------------------------------------------------


def receiver_chain(text, dot_pos):
    """Walk backwards from the '.'/'->' of a member call and return the
    receiver as a component list, e.g. `kv.second.get()` -> ['kv','second'],
    `rt::when_all(v).then(p, f).get()` -> ['rt::when_all()','then()'].
    Returns None when the receiver isn't a simple chain (e.g. `(expr).get()`).
    """
    comps = []
    i = dot_pos
    while True:
        while i > 0 and text[i - 1].isspace():
            i -= 1
        if i > 0 and text[i - 1] == ")":
            depth = 0
            j = i - 1
            while j >= 0:
                if text[j] == ")":
                    depth += 1
                elif text[j] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j < 0:
                return None
            i = j
            while i > 0 and text[i - 1].isspace():
                i -= 1
            m = _IDENT_BACK.search(text, 0, i)
            if not m:
                return None
            comps.append(m.group(1) + "()")
            i = m.start()
        else:
            m = _IDENT_BACK.search(text, 0, i)
            if not m:
                return None
            comps.append(m.group(1))
            i = m.start()
        while i > 0 and text[i - 1].isspace():
            i -= 1
        if i >= 1 and text[i - 1] == ".":
            i -= 1
            continue
        if i >= 2 and text[i - 2:i] == "->":
            i -= 2
            continue
        return list(reversed(comps))


def _type_class(type_text):
    if not type_text:
        return None
    if type_text == _READY:
        return "ready"
    t = type_text
    if "future" in t:
        return "future"
    if "latch" in t:
        return "latch"
    if re.search(r"\b(?:shared_ptr|unique_ptr|weak_ptr)\b|\*\s*$", t):
        return "ptr"
    return None


def _init_class(init_expr):
    if not init_expr:
        return None
    if _MINT_EXPR.search(init_expr):
        return "future"
    if _PTR_EXPR.search(init_expr):
        return "ptr"
    return None


def _struct_of(type_text, struct_index):
    if not type_text:
        return None
    idents = re.findall(r"[A-Za-z_]\w*",
                        re.sub(r"<[^<>]*>", " ", type_text))
    idents = [w for w in idents
              if w not in ("const", "struct", "class", "std", "octo")]
    if not idents:
        return None
    info = struct_index.get(idents[-1])
    return info if hasattr(info, "members") else None


def classify_receiver(tu, scope, comps, struct_index):
    """'future' | 'ready' | 'latch' | 'ptr' | None for a receiver chain."""
    if comps is None:
        return None
    cur = None
    cur_type = None
    for idx, comp in enumerate(comps):
        if comp.endswith("()"):
            callee = comp[:-2].split("::")[-1]
            if callee == "then":
                cur, cur_type = "future", None
            elif idx == 0 and callee in MINTING:
                cur, cur_type = "future", None
            elif cur == "ready" and callee == "get":
                # when_all-gated result: elements may be futures, but the
                # unwrapped value itself is plain data.
                cur, cur_type = None, None
            else:
                cur, cur_type = (cur if callee in ("share",) else None), None
            continue
        # Plain identifier component.
        if idx == 0:
            v = lookup_var(tu, scope, comp, struct_index)
            if v is None:
                return None
            kind, text = v
            if kind == "decl":
                cur = _type_class(text)
                cur_type = text
            elif kind == "auto":
                cur = _init_class(text)
                cur_type = None
            elif kind in ("rangefor", "sbind"):
                cur, cur_type = _element_class(tu, scope, text, struct_index)
            continue
        # Member hop: pair/map element `.second`, or a struct member.
        if cur == "container-of-future" and comp == "second":
            cur, cur_type = "future", None
            continue
        info = _struct_of(cur_type, struct_index)
        mem = info.member(comp) if info else None
        if mem is None:
            return None if idx + 1 < len(comps) else cur
        cur = _type_class(mem.type)
        cur_type = mem.type
    return cur


def _element_class(tu, scope, container_expr, struct_index):
    """Classify the element type of a range-for / structured-binding source."""
    e = container_expr.strip().lstrip("*&").strip()
    # `fs.get()` where fs is a (ready) when_all future: elements are futures.
    m = re.match(r"^([A-Za-z_]\w*)\s*(?:\.|->)\s*get\s*\(\s*\)$", e)
    if m:
        v = lookup_var(tu, scope, m.group(1), struct_index)
        if v and v[0] == "decl" and _type_class(v[1]) in ("future", "ready"):
            return "future", None
        if v and v[0] == "auto" and _init_class(v[1]) == "future":
            return "future", None
        return None, None
    m = re.match(r"^([A-Za-z_]\w*)$", e)
    if not m:
        return None, None
    v = lookup_var(tu, scope, m.group(1), struct_index)
    if not v:
        return None, None
    kind, text = v
    if kind != "decl":
        return None, None
    if re.search(r"\bvector\s*<[^<>]*future", text):
        return "future", None
    if "future" in text:
        # A map whose mapped type is a future: the element is a pair, the
        # future is reached through `.second`.
        return "container-of-future", None
    return None, text


# ---------------------------------------------------------------------------
# Blocking-wait discovery (shared by both rules)
# ---------------------------------------------------------------------------


def mark_continuation_params(tu):
    """The sole parameter of a `.then` continuation is a *ready* future."""
    for s in tu.root.walk():
        if s.kind == "lambda" and s.launch == "then" and s.params:
            params = _split_params(s.params)
            if len(params) == 1 and params[0][1]:
                s.vars[params[0][1]] = ("decl", _READY)


def find_blocking_waits(tu, struct_index, lo, hi, text=None):
    """Yield (offset, description) for blocking waits in clean[lo:hi].
    `text` (aligned with clean offsets when given) lets callers pre-blank
    nested lambda bodies out of a lock region."""
    buf = text if text is not None else tu.clean
    for m in _MEMBER_WAIT.finditer(buf, lo, hi):
        scope = tu.scope_at(m.start())
        comps = receiver_chain(buf, m.start())
        cls = classify_receiver(tu, scope, comps, struct_index)
        what = m.group(1)
        if cls == "future":
            yield m.start(), f".{what}() on a future"
        elif cls == "latch" and what == "wait":
            yield m.start(), ".wait() on a latch"
    for m in _QUIESCE.finditer(buf, lo, hi):
        yield m.start(), f"{m.group(1)}() (pool quiescence)"


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_blocking_in_task(tu, struct_index, findings):
    for off, what in find_blocking_waits(tu, struct_index, 0, len(tu.clean)):
        scope = tu.scope_at(off)
        if not scope.in_task():
            continue
        s = scope
        while s is not None and not (s.kind == "lambda"
                                     and s.launch in TASK_LAUNCHERS):
            s = s.parent
        launch = s.launch if s else "?"
        findings.append(
            (tu.rel, tu.lines.line(off), "blocking-in-task",
             f"blocking {what} inside a pool task (lambda launched via "
             f"'{launch}'); a parked worker starves the pool — chain a "
             "continuation (.then/when_all) or move the wait to the "
             "caller"))


def check_lock_across_wait(tu, struct_index, findings):
    for scope in tu.root.walk():
        if scope.kind not in ("function", "lambda", "control", "block"):
            continue
        acquisitions = []
        for soff, stmt in scope_statements(tu.clean, scope):
            from cxx import _strip_templates
            flat = _strip_templates(stmt)
            shift = len(stmt) - len(flat)  # template args removed
            m = _LOCK_RAII.search(flat)
            if m:
                acquisitions.append((soff + m.start() + shift, m.group(1),
                                     m.group(1)))
            for m in _LOCK_MANUAL.finditer(stmt):
                acquisitions.append((soff + m.start(), m.group(1),
                                     m.group(1)))
        if not acquisitions:
            continue
        base, body = blanked(tu.clean, scope, ("lambda", "function", "class"))
        for aoff, lockname, unlock_base in acquisitions:
            lo = max(aoff - base, 0)
            hi = len(body)
            rel = re.search(r"\b" + re.escape(unlock_base)
                            + r"\s*(?:\.|->)\s*unlock\s*\(", body[lo:])
            if rel:
                hi = lo + rel.start()
            # Align region text with clean offsets for receiver resolution.
            aligned = (" " * base) + body
            for woff, what in find_blocking_waits(
                    tu, struct_index, base + lo, base + hi, aligned):
                findings.append(
                    (tu.rel, tu.lines.line(woff), "lock-across-wait",
                     f"'{lockname}' (acquired line "
                     f"{tu.lines.line(aoff)}) is held across a blocking "
                     f"{what}; a parked holder starves every task "
                     "contending for the lock — release it before "
                     "waiting, or restructure as a continuation"))


def run(tu, struct_index, findings):
    mark_continuation_params(tu)
    check_blocking_in_task(tu, struct_index, findings)
    check_lock_across_wait(tu, struct_index, findings)

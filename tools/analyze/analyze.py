#!/usr/bin/env python3
"""octo-analyze: scope-aware static analysis for the octo-sim tree.

Runs ten rules over src/, examples/ and bench/ on a shared C++ source model
(comment/string stripping, brace/scope tree, lambda-launch detection, per-TU
symbol tables — see cxx.py / symbols.py):

  legacy lint tier (tools/lint/lint.py re-hosted, identical semantics):
    dropped-future, raw-hot-alloc, relaxed-publish, nodiscard,
    direct-stream-acquire, backend-variant

  futurization deadlocks (rules_tasks.py):
    blocking-in-task     .get()/.wait()/pool-quiescence inside a pool task
    lock-across-wait     a lock scope enclosing a blocking wait

  distribution correctness (rules_dist.py):
    serialization-coverage   struct members a serializer never touches
    nondet-iteration         unordered iteration feeding FP accumulation or
                             parcel emission (bit-identity hazard)

Suppressions: `// lint: allow(<rule>): <reason>` on the finding's line or
the line above. The reason is mandatory, an allow naming an unknown rule is
an error, and a stale allow (one that no longer suppresses anything) is an
error — suppression debt cannot rot.

Usage: tools/analyze/analyze.py [repo-root] [--json FILE]
Exits 1 on findings.
"""

import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rules_dist
import rules_legacy
import rules_tasks
from symbols import TU

RULES = {
    "dropped-future": "future-minting expression statement discarded",
    "raw-hot-alloc": "raw allocation in an FMM/hydro hot path",
    "relaxed-publish": "relaxed store/exchange used as a publish",
    "nodiscard": "future/dt-returning entry point lacks [[nodiscard]]",
    "direct-stream-acquire": "GPU stream grabbed outside the aggregator",
    "backend-variant": "backend-specific kernel variant outside src/kernel",
    "blocking-in-task": "blocking wait inside a pool task",
    "lock-across-wait": "lock held across a blocking wait",
    "serialization-coverage": "struct member never serialized",
    "nondet-iteration": "unordered iteration feeding order-sensitive state",
}

_ALLOW = re.compile(r"//\s*lint:\s*allow\(([^)]*)\)\s*:?\s*(.*)")


class Allow:
    __slots__ = ("line", "rule", "reason", "used", "claimed")

    def __init__(self, line, rule, reason):
        self.line = line
        self.rule = rule.strip()
        self.reason = reason.strip()
        self.used = False
        self.claimed = None  # the one finding line this allow suppresses


def collect_allows(raw_lines):
    allows = []
    for idx, line in enumerate(raw_lines, start=1):
        m = _ALLOW.search(line)
        if m:
            allows.append(Allow(idx, m.group(1), m.group(2)))
    return allows


def iter_sources(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in os.walk(base):
            for f in sorted(filenames):
                if f.endswith((".hpp", ".cpp", ".h", ".cc", ".cu")):
                    yield os.path.join(dirpath, f)


def analyze_tree(root):
    """Returns (findings, n_files): the post-suppression finding list
    [(rel, line, rule, msg)] including meta-findings about the suppression
    comments themselves."""
    tus = []
    for path in iter_sources(root, ["src", "examples", "bench"]):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        text = open(path, encoding="utf-8").read()
        tus.append(TU(path, rel, text))

    # Project-wide struct index; a name defined twice is ambiguous and
    # resolves to nothing (rules must not guess).
    struct_index = {}
    ambiguous = set()
    for tu in tus:
        for name, info in tu.structs.items():
            if name in struct_index:
                ambiguous.add(name)
            else:
                struct_index[name] = info
    for name in ambiguous:
        struct_index[name] = None

    raw = []
    for tu in tus:
        rules_legacy.run(tu, raw)
        rules_tasks.run(tu, struct_index, raw)
        rules_dist.run(tu, struct_index, raw)
    if os.path.exists(os.path.join(root, "src/runtime/future.hpp")):
        rules_legacy.check_nodiscard(root, raw)

    # Suppression pass: an allow matches a finding of its rule on the same
    # line or the line below (i.e. the allow sits on the line or the line
    # above the finding — the historical contract).
    allows = {}  # rel -> [Allow]
    for tu in tus:
        allows[tu.rel] = collect_allows(tu.raw_lines)

    findings = []
    for rel, line, rule, msg in raw:
        # An allow suppresses findings of its rule on its own line or the
        # line below — but only at ONE line (multiple findings on that line
        # are all covered), so a stack of per-line allows can't let one
        # comment absorb its neighbour's finding.
        candidates = [a for a in allows.get(rel, ())
                      if a.rule == rule and a.line in (line, line - 1)
                      and a.claimed in (None, line)]
        candidates.sort(key=lambda a: (a.claimed != line, line - a.line))
        hit = candidates[0] if candidates else None
        if hit:
            hit.used = True
            hit.claimed = line
            continue
        findings.append((rel, line, rule, msg))

    for rel, file_allows in allows.items():
        for a in file_allows:
            if a.used and not a.reason:
                findings.append(
                    (rel, a.line, "suppression-missing-reason",
                     f"allow({a.rule}) has no reason; write "
                     f"`// lint: allow({a.rule}): <why this is safe>`"))

    # Meta: unknown rules and stale allows are errors in their own right.
    for rel, file_allows in allows.items():
        for a in file_allows:
            if a.rule not in RULES:
                findings.append(
                    (rel, a.line, "unknown-rule",
                     f"allow names unknown rule '{a.rule}'; known rules: "
                     + ", ".join(sorted(RULES))))
            elif not a.used:
                findings.append(
                    (rel, a.line, "stale-suppression",
                     f"allow({a.rule}) no longer suppresses any finding; "
                     "delete it so suppression debt cannot rot"))

    findings.sort(key=lambda f: (f[0], f[1], f[2]))
    return findings, len(tus)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    root = os.path.abspath(args[0] if args else ".")
    json_path = None
    if "--json" in argv:
        json_path = argv[argv.index("--json") + 1]

    findings, n_files = analyze_tree(root)

    if json_path:
        payload = {
            "root": root,
            "files": n_files,
            "rules": RULES,
            "findings": [
                {"file": rel, "line": line, "rule": rule, "message": msg}
                for rel, line, rule, msg in findings
            ],
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"\nanalyze: {len(findings)} violation(s) in {n_files} files")
        return 1
    print(f"analyze: clean ({n_files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""The six futurization lint rules, re-hosted on the shared source model.

Semantics are identical to the historical tools/lint/lint.py regex pass —
same patterns, same messages, same path gating — but they now run over the
TU's stripped text/statement stream from cxx.py, and suppression handling
moved to the driver (which also detects stale allows).
"""

import os
import re

from cxx import statements

DROP_STARTERS = re.compile(
    r"^\s*(?:octo::)?(?:rt::)?(?:async|when_all)\s*\("
)
THEN_CHAIN = re.compile(r"\)\s*\.\s*then\s*\(")
SAFE_PREFIX = re.compile(
    r"^\s*(?:return\b|co_return\b|\(void\)|\[\[|(?:octo::)?(?:rt::)?detach\s*\()"
)
HAS_ASSIGN = re.compile(r"^[^(]*(?:[^=!<>]=[^=]|\breturn\b)")
CONSUMED = re.compile(r"\.\s*(?:get|wait)\s*\(\s*\)\s*;?\s*$")

RAW_ALLOC = re.compile(
    r"\bnew\s+[\w:<>,\s]+\[|\b(?:malloc|calloc|realloc)\s*\(|::operator\s+new\b"
)
RELAXED_PUBLISH = re.compile(
    r"\.\s*(?:store|exchange)\s*\([^;]*memory_order_relaxed"
)
DIRECT_STREAM_ACQUIRE = re.compile(r"\btry_acquire_stream\s*\(")
# The kernel names the portable layer (src/kernel) replaced. The trailing
# [(< keeps workload fields like mono_kernel_flops out of the match.
BACKEND_VARIANT = re.compile(
    r"\b(?:monopole_kernel|multipole_kernel"
    r"|compute_leaf_fluxes_simd|compute_leaf_fluxes_scalar"
    r"|flux_divergence_simd|flux_divergence_scalar"
    r"|blend_simd|blend_scalar"
    r"|dual_energy_simd|dual_energy_scalar"
    r"|leaf_max_wave_speed_simd|leaf_max_wave_speed_scalar)\s*[(<]"
)

NODISCARD_REQUIRED = [
    ("src/runtime/future.hpp", r"class\s+\[\[nodiscard\]\]\s+future",
     "class future must be declared class [[nodiscard]] future"),
    ("src/runtime/future.hpp", r"\[\[nodiscard\]\][^;{]{0,120}?\bwhen_all\s*\(",
     "when_all must be [[nodiscard]]"),
    ("src/runtime/channel.hpp", r"\[\[nodiscard\]\]\s+future<T>\s+get",
     "channel::get must be [[nodiscard]]"),
    ("src/runtime/channel.hpp", r"\[\[nodiscard\]\]\s+future<T>\s+recv",
     "channel::recv must be [[nodiscard]]"),
    ("src/runtime/latch.hpp", r"\[\[nodiscard\]\]\s+future<void>\s+done_future",
     "latch::done_future must be [[nodiscard]]"),
    ("src/hydro/update.hpp", r"\[\[nodiscard\]\]\s+double\s+step",
     "hydro::step must be [[nodiscard]] (the dt is the step's only output)"),
    ("src/hydro/update.hpp", r"\[\[nodiscard\]\]\s+double\s+cfl_timestep",
     "hydro::cfl_timestep must be [[nodiscard]]"),
]


def check_dropped_futures(tu, findings):
    for start_line, stmt in statements(tu.legacy_clean):
        body = stmt.strip()
        if not body.endswith(";"):
            continue
        if SAFE_PREFIX.match(body):
            continue
        minted = bool(DROP_STARTERS.match(body)) or bool(THEN_CHAIN.search(body))
        if not minted:
            continue
        # Assignments ("auto f = when_all(...)"), returns and consumed chains
        # keep the future alive; only a bare expression statement drops it.
        if HAS_ASSIGN.match(body):
            continue
        if CONSUMED.search(body):
            continue
        findings.append(
            (tu.rel, start_line, "dropped-future",
             "future-minting expression statement is discarded; "
             "assign it, .get()/.wait() it, or wrap in rt::detach(...)")
        )


def check_raw_allocs(tu, findings):
    for idx, line in enumerate(tu.legacy_clean.splitlines(), start=1):
        if RAW_ALLOC.search(line):
            findings.append(
                (tu.rel, idx, "raw-hot-alloc",
                 "raw allocation in an FMM/hydro hot path; route it "
                 "through octo::buffer_recycler")
            )


def check_relaxed_publish(tu, findings):
    # Join continuation lines so a call split across lines is still seen.
    joined = tu.legacy_clean.splitlines()
    for idx, line in enumerate(joined, start=1):
        window = line
        if idx < len(joined):
            window += " " + joined[idx]
        m = RELAXED_PUBLISH.search(window)
        if m and m.start() < len(line):
            findings.append(
                (tu.rel, idx, "relaxed-publish",
                 "relaxed store/exchange cannot publish data to another "
                 "thread; use release ordering or take a lock")
            )


def check_direct_stream_acquire(tu, findings):
    for idx, line in enumerate(tu.legacy_clean.splitlines(), start=1):
        if DIRECT_STREAM_ACQUIRE.search(line):
            findings.append(
                (tu.rel, idx, "direct-stream-acquire",
                 "direct device::try_acquire_stream() outside src/gpu; "
                 "submit a gpu::work_item through gpu::aggregator instead "
                 "(one launch point, batched occupancy, shared fallback "
                 "policy)")
            )


def check_backend_variant(tu, findings):
    for idx, line in enumerate(tu.legacy_clean.splitlines(), start=1):
        if BACKEND_VARIANT.search(line):
            findings.append(
                (tu.rel, idx, "backend-variant",
                 "backend-specific kernel variant outside src/kernel; the "
                 "portable layer has ONE body per kernel — dispatch through "
                 "kernel::run_* / the exec policy wrappers")
            )


def check_nodiscard(root, findings):
    """Whole-repo API-surface check; only meaningful for roots that actually
    contain the runtime (the driver gates on src/runtime/future.hpp)."""
    for rel, pattern, msg in NODISCARD_REQUIRED:
        path = os.path.join(root, rel)
        try:
            text = open(path, encoding="utf-8").read()
        except OSError:
            findings.append((rel, 1, "nodiscard", "missing file: " + msg))
            continue
        if not re.search(pattern, text, re.S):
            findings.append((rel, 1, "nodiscard", msg))


def run(tu, findings):
    """Run the per-file legacy rules with the historical path gating."""
    rel = tu.rel.replace(os.sep, "/")
    check_dropped_futures(tu, findings)
    if rel.startswith(("src/fmm", "src/hydro", "src/kernel")):
        check_raw_allocs(tu, findings)
    if rel.startswith("src/"):
        check_relaxed_publish(tu, findings)
    if not rel.startswith("src/gpu"):
        check_direct_stream_acquire(tu, findings)
    if not rel.startswith("src/kernel"):
        check_backend_variant(tu, findings)

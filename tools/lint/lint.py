#!/usr/bin/env python3
"""Futurization lint for the octo-sim tree.

Source-level concurrency checks the compiler cannot express:

  dropped-future    An expression statement that mints a future (async(...),
                    when_all(...), or a .then(...) chain) and discards it.
                    A dropped future silently erases a dependency edge from
                    the task DAG; fire-and-forget must go through
                    rt::detach(...) so the intent is visible and auditable.

  raw-hot-alloc     Raw new[] / malloc / operator new in the FMM and hydro
                    hot paths (src/fmm, src/hydro). Per-step allocations
                    must go through octo::buffer_recycler (or the
                    recycle_allocator-backed containers) so steady-state
                    steps are allocation-free.

  relaxed-publish   .store(..., memory_order_relaxed) or
                    .exchange(..., memory_order_relaxed) anywhere in src/.
                    A relaxed store cannot publish data another thread
                    reads; counters belong in fetch_add(relaxed), real
                    publishes need release ordering (or a lock).

  nodiscard         Future-returning / dt-returning entry points must carry
                    [[nodiscard]] so dropped futures are also caught at
                    compile time.

  direct-stream-acquire
                    device::try_acquire_stream() called outside src/gpu.
                    All offload goes through the aggregation executor
                    (gpu::aggregator::submit) so kernels batch into fused
                    launches and the CPU-fallback/fault policy lives in one
                    place; a direct per-kernel stream grab reintroduces the
                    §5.1 starvation path the executor exists to remove.

  backend-variant   A backend-specific kernel variant (the historical
                    monopole_kernel/multipole_kernel templates or the
                    *_simd/*_scalar hydro pairs) referenced outside
                    src/kernel. Every hot kernel has exactly ONE templated
                    body in src/kernel, instantiated per execution-space
                    policy; call kernel::run_* (or the policy wrappers)
                    instead of resurrecting a per-backend copy.

Suppress a finding with a trailing comment on the same line or the line
above:   // lint: allow(<rule-name>)  -- include a reason.

Usage: tools/lint/lint.py [repo-root]     exits 1 on violations.
"""

import os
import re
import sys


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines and
    column positions so findings can report real line numbers."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def suppressed(lines, lineno, rule):
    """lineno is 1-based; check that line and the one above for an allow."""
    pat = "lint: allow(" + rule + ")"
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(lines) and pat in lines[ln - 1]:
            return True
    return False


def statements(clean):
    """Yield (start_lineno, text) for each top-level-ish statement: the code
    between ';' / '{' / '}' boundaries taken at *zero* parenthesis depth, so
    a multi-line when_all(...).then([...]{ ...; }); chain stays one unit."""
    start = 0
    lineno = 1
    start_line = 1
    depth = 0
    for i, c in enumerate(clean):
        if c == "\n":
            lineno += 1
            continue
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        elif c in ";{}" and depth == 0:
            stmt = clean[start : i + 1]
            if stmt.strip():
                yield start_line, stmt
            start = i + 1
            start_line = lineno
    tail = clean[start:]
    if tail.strip():
        yield start_line, tail


DROP_STARTERS = re.compile(
    r"^\s*(?:octo::)?(?:rt::)?(?:async|when_all)\s*\("
)
THEN_CHAIN = re.compile(r"\)\s*\.\s*then\s*\(")
SAFE_PREFIX = re.compile(
    r"^\s*(?:return\b|co_return\b|\(void\)|\[\[|(?:octo::)?(?:rt::)?detach\s*\()"
)
HAS_ASSIGN = re.compile(r"^[^(]*(?:[^=!<>]=[^=]|\breturn\b)")
CONSUMED = re.compile(r"\.\s*(?:get|wait)\s*\(\s*\)\s*;?\s*$")

RAW_ALLOC = re.compile(
    r"\bnew\s+[\w:<>,\s]+\[|\b(?:malloc|calloc|realloc)\s*\(|::operator\s+new\b"
)
RELAXED_PUBLISH = re.compile(
    r"\.\s*(?:store|exchange)\s*\([^;]*memory_order_relaxed"
)
DIRECT_STREAM_ACQUIRE = re.compile(r"\btry_acquire_stream\s*\(")
# The kernel names the portable layer (src/kernel) replaced. The trailing
# [(< keeps workload fields like mono_kernel_flops out of the match.
BACKEND_VARIANT = re.compile(
    r"\b(?:monopole_kernel|multipole_kernel"
    r"|compute_leaf_fluxes_simd|compute_leaf_fluxes_scalar"
    r"|flux_divergence_simd|flux_divergence_scalar"
    r"|blend_simd|blend_scalar"
    r"|dual_energy_simd|dual_energy_scalar"
    r"|leaf_max_wave_speed_simd|leaf_max_wave_speed_scalar)\s*[(<]"
)


def check_dropped_futures(path, lines, clean, findings):
    for start_line, stmt in statements(clean):
        body = stmt.strip()
        if not body.endswith(";"):
            continue
        if SAFE_PREFIX.match(body):
            continue
        minted = bool(DROP_STARTERS.match(body)) or bool(THEN_CHAIN.search(body))
        if not minted:
            continue
        # Assignments ("auto f = when_all(...)"), returns and consumed chains
        # keep the future alive; only a bare expression statement drops it.
        if HAS_ASSIGN.match(body):
            continue
        if CONSUMED.search(body):
            continue
        if suppressed(lines, start_line, "dropped-future"):
            continue
        findings.append(
            (path, start_line, "dropped-future",
             "future-minting expression statement is discarded; "
             "assign it, .get()/.wait() it, or wrap in rt::detach(...)")
        )


def check_raw_allocs(path, lines, clean, findings):
    for idx, line in enumerate(clean.splitlines(), start=1):
        if RAW_ALLOC.search(line):
            if suppressed(lines, idx, "raw-hot-alloc"):
                continue
            findings.append(
                (path, idx, "raw-hot-alloc",
                 "raw allocation in an FMM/hydro hot path; route it "
                 "through octo::buffer_recycler")
            )


def check_relaxed_publish(path, lines, clean, findings):
    # Join continuation lines so a call split across lines is still seen.
    joined = clean.splitlines()
    for idx, line in enumerate(joined, start=1):
        window = line
        if idx < len(joined):
            window += " " + joined[idx]
        m = RELAXED_PUBLISH.search(window)
        if m and m.start() < len(line):
            if suppressed(lines, idx, "relaxed-publish"):
                continue
            findings.append(
                (path, idx, "relaxed-publish",
                 "relaxed store/exchange cannot publish data to another "
                 "thread; use release ordering or take a lock")
            )


def check_direct_stream_acquire(path, lines, clean, findings):
    for idx, line in enumerate(clean.splitlines(), start=1):
        if DIRECT_STREAM_ACQUIRE.search(line):
            if suppressed(lines, idx, "direct-stream-acquire"):
                continue
            findings.append(
                (path, idx, "direct-stream-acquire",
                 "direct device::try_acquire_stream() outside src/gpu; "
                 "submit a gpu::work_item through gpu::aggregator instead "
                 "(one launch point, batched occupancy, shared fallback "
                 "policy)")
            )


NODISCARD_REQUIRED = [
    ("src/runtime/future.hpp", r"class\s+\[\[nodiscard\]\]\s+future",
     "class future must be declared class [[nodiscard]] future"),
    ("src/runtime/future.hpp", r"\[\[nodiscard\]\][^;{]{0,120}?\bwhen_all\s*\(",
     "when_all must be [[nodiscard]]"),
    ("src/runtime/channel.hpp", r"\[\[nodiscard\]\]\s+future<T>\s+get",
     "channel::get must be [[nodiscard]]"),
    ("src/runtime/channel.hpp", r"\[\[nodiscard\]\]\s+future<T>\s+recv",
     "channel::recv must be [[nodiscard]]"),
    ("src/runtime/latch.hpp", r"\[\[nodiscard\]\]\s+future<void>\s+done_future",
     "latch::done_future must be [[nodiscard]]"),
    ("src/hydro/update.hpp", r"\[\[nodiscard\]\]\s+double\s+step",
     "hydro::step must be [[nodiscard]] (the dt is the step's only output)"),
    ("src/hydro/update.hpp", r"\[\[nodiscard\]\]\s+double\s+cfl_timestep",
     "hydro::cfl_timestep must be [[nodiscard]]"),
]


def check_backend_variant(path, lines, clean, findings):
    for idx, line in enumerate(clean.splitlines(), start=1):
        if BACKEND_VARIANT.search(line):
            if suppressed(lines, idx, "backend-variant"):
                continue
            findings.append(
                (path, idx, "backend-variant",
                 "backend-specific kernel variant outside src/kernel; the "
                 "portable layer has ONE body per kernel — dispatch through "
                 "kernel::run_* / the exec policy wrappers")
            )


def check_nodiscard(root, findings):
    for rel, pattern, msg in NODISCARD_REQUIRED:
        path = os.path.join(root, rel)
        try:
            text = open(path, encoding="utf-8").read()
        except OSError:
            findings.append((rel, 1, "nodiscard", "missing file: " + msg))
            continue
        if not re.search(pattern, text, re.S):
            findings.append((rel, 1, "nodiscard", msg))


def iter_sources(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in os.walk(base):
            for f in sorted(filenames):
                if f.endswith((".hpp", ".cpp", ".h", ".cc", ".cu")):
                    yield os.path.join(dirpath, f)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    findings = []

    for path in iter_sources(root, ["src", "examples", "bench"]):
        rel = os.path.relpath(path, root)
        lines = open(path, encoding="utf-8").read().splitlines()
        clean = strip_comments_and_strings("\n".join(lines) + "\n")
        check_dropped_futures(rel, lines, clean, findings)
        if rel.startswith(("src/fmm", "src/hydro", "src/kernel")):
            check_raw_allocs(rel, lines, clean, findings)
        if rel.startswith("src" + os.sep) or rel.startswith("src/"):
            check_relaxed_publish(rel, lines, clean, findings)
        if not rel.replace(os.sep, "/").startswith("src/gpu"):
            check_direct_stream_acquire(rel, lines, clean, findings)
        if not rel.replace(os.sep, "/").startswith("src/kernel"):
            check_backend_variant(rel, lines, clean, findings)

    check_nodiscard(root, findings)

    for path, line, rule, msg in findings:
        print(f"{path}:{line}: [{rule}] {msg}")
    if findings:
        print(f"\nlint: {len(findings)} violation(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compatibility shim: the futurization lint tier moved to tools/analyze.

octo-analyze re-hosts all six historical regex rules (dropped-future,
raw-hot-alloc, relaxed-publish, nodiscard, direct-stream-acquire,
backend-variant) on a shared scope-aware source model and adds the rules
regexes cannot express (blocking-in-task, lock-across-wait,
serialization-coverage, nondet-iteration) plus suppression hygiene
(mandatory reasons, stale-allow detection). This wrapper keeps the
historical entry point working so `python3 tools/lint/lint.py [root]` and
the CMake `lint` target stay one source of truth with `analyze`.

Usage: tools/lint/lint.py [repo-root] [--json FILE]     exits 1 on findings.
"""

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "analyze"))

import analyze  # noqa: E402

if __name__ == "__main__":
    sys.exit(analyze.main(sys.argv))

// Reproduces TABLE 4 (paper §6.2): number of tree nodes (sub-grids) per
// level of refinement and the memory usage of the corresponding level, from
// the analytic V1309 scenario-tree builder.

#include <cstdio>

#include "cluster/scenario_tree.hpp"

int main() {
    using namespace octo::cluster;
    std::printf("=== Table 4: sub-grids and memory per level of refinement ===\n\n");
    std::printf("%6s %12s %12s %12s %14s %12s\n", "LoR", "sub-grids",
                "paper", "ratio", "memory [GB]", "paper [GB]");
    const double paper_counts[5] = {5417, 10928, 42947, 2.24e5, 1.5e6};
    const double paper_mem[5] = {8, 16.37, 56.92, 271.94, 2305.92};
    for (int L = 13; L <= 17; ++L) {
        const auto st = build_v1309_tree(L);
        std::printf("%6d %12zu %12.0f %12.2f %14.2f %12.2f\n", L, st.subgrids,
                    paper_counts[L - 13],
                    static_cast<double>(st.subgrids) / paper_counts[L - 13],
                    st.memory_gb, paper_mem[L - 13]);
    }
    std::printf("\nper-sub-grid storage of this implementation: %.0f KB "
                "(fields + FMM data;\nthe paper's ~1.5 MB/sub-grid includes "
                "additional solver state)\n",
                bytes_per_subgrid() / 1e3);
    return 0;
}

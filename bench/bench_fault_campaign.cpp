// Seeded fault-campaign harness (ISSUE 5): drives a burst of active messages
// through both parcelports decorated with the deterministic fault injector,
// and reports what the reliability protocol paid to deliver exactly-once,
// in-order anyway — retransmits, duplicate/corruption drops, reorder
// buffering, and the throughput hit relative to a clean transport.
//
//   ./bench_fault_campaign [seeds] [parcels] [loss%]
//
// Every row is replayable: the seed fully determines the fault schedule.

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "dist/locality.hpp"
#include "net/faulty.hpp"
#include "net/parcelport.hpp"
#include "support/timer.hpp"

using namespace octo;
using namespace octo::dist;

namespace {

struct campaign_result {
    double seconds = 0;
    port_stats net;
    support::fault_stats injected;
    bool ok = false;
};

campaign_result run_campaign(parcelport_factory inner, std::uint64_t seed,
                             double loss, int parcels) {
    support::fault_config cfg;
    cfg.seed = seed;
    cfg.drop_prob = loss;
    cfg.dup_prob = loss;
    cfg.reorder_prob = 1.5 * loss;
    cfg.delay_prob = loss;
    cfg.corrupt_prob = 0.5 * loss;
    runtime rt(4, net::make_faulty_port(std::move(inner), cfg), 2);

    std::atomic<long> sum{0};
    const auto acc = rt.register_action("acc", [&](int, iarchive a) {
        sum.fetch_add(a.read<int>(), std::memory_order_relaxed);
    });
    long expect = 0;
    octo::stopwatch sw;
    for (int i = 0; i < parcels; ++i) {
        oarchive a;
        a.write(i);
        expect += i;
        rt.apply(i % 4, acc, std::move(a));
    }
    campaign_result r;
    r.ok = rt.wait_quiet_for(std::chrono::seconds(120)) &&
           sum.load() == expect && rt.error_count() == 0;
    r.seconds = sw.seconds();
    r.net = rt.net_stats();
    auto* fp = dynamic_cast<net::faulty_parcelport*>(&rt.port());
    if (fp != nullptr) r.injected = fp->injector().stats();
    return r;
}

void report(const char* label, std::uint64_t seed, int parcels,
            const campaign_result& r) {
    std::printf("  %-10s seed %3llu: %7.1f ms, %7.0f msg/s | injected "
                "d/D/r/c %llu/%llu/%llu/%llu | retries %llu, dups dropped "
                "%llu, corrupt dropped %llu, reordered %llu | %s\n",
                label, static_cast<unsigned long long>(seed),
                1e3 * r.seconds, parcels / r.seconds,
                static_cast<unsigned long long>(r.injected.drops),
                static_cast<unsigned long long>(r.injected.dups),
                static_cast<unsigned long long>(r.injected.reorders),
                static_cast<unsigned long long>(r.injected.corruptions),
                static_cast<unsigned long long>(r.net.retries),
                static_cast<unsigned long long>(r.net.dups_dropped),
                static_cast<unsigned long long>(r.net.corrupt_dropped),
                static_cast<unsigned long long>(r.net.reorders_buffered),
                r.ok ? "delivered exactly-once" : "FAILED");
}

} // namespace

int main(int argc, char** argv) {
    const int seeds = argc > 1 ? std::atoi(argv[1]) : 3;
    const int parcels = argc > 2 ? std::atoi(argv[2]) : 2000;
    const double loss = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.10;

    std::printf("=== Seeded fault campaign: %d parcels, %.0f%% loss/dup, "
                "%d seeds ===\n\n",
                parcels, 100.0 * loss, seeds);
    bool all_ok = true;
    for (int s = 1; s <= seeds; ++s) {
        const auto seed = static_cast<std::uint64_t>(s);
        const auto mpi = run_campaign(net::make_mpi_port(), seed, loss, parcels);
        report("mpi", seed, parcels, mpi);
        const auto lf =
            run_campaign(net::make_libfabric_port(), seed, loss, parcels);
        report("libfabric", seed, parcels, lf);
        all_ok = all_ok && mpi.ok && lf.ok;
    }

    // The fault-free baseline, for the overhead comparison.
    const auto clean = run_campaign(net::make_mpi_port(), 1, 0.0, parcels);
    std::printf("\n  fault-free mpi baseline: %.1f ms (%0.f msg/s), "
                "0 retries\n",
                1e3 * clean.seconds, parcels / clean.seconds);
    if (!all_ok || !clean.ok) {
        std::printf("\nFAULT CAMPAIGN FAILED\n");
        return 1;
    }
    std::printf("\nall campaigns delivered exactly-once, in-order\n");
    return 0;
}

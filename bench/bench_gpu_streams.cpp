// Reproduces the §6.1.2 stream-starvation analysis: the fraction of
// multipole FMM kernels launched on the GPU as a function of the number of
// CPU worker threads feeding the streams. Paper data points: 99.9997% with
// 10 cores + 1 V100, 97.4995% with 20 cores + 1 V100, 99.5207% on a Piz
// Daint node (12 cores + P100, 128 streams).

#include <cstdio>

#include "cluster/event_sim.hpp"
#include "cluster/scenario_tree.hpp"

using namespace octo::cluster;

int main() {
    std::printf("=== GPU stream occupancy / kernel starvation (paper §6.1.2) ===\n\n");

    const auto st = build_v1309_tree(14);
    const std::size_t leaves = st.leaves;
    const std::size_t refined = st.subgrids - st.leaves;
    const auto work = v1309_workload();

    std::printf("%-10s %-8s %-16s %-14s %-12s\n", "cores", "GPUs",
                "streams/thread", "%kern on GPU", "makespan[s]");
    for (int gpus = 1; gpus <= 2; ++gpus) {
        for (int cores : {6, 10, 12, 16, 20, 24, 32}) {
            node_sim_config cfg;
            cfg.node = with_v100(xeon_e5_2660v3(cores), gpus);
            cfg.work = work;
            cfg.leaves = leaves;
            cfg.refined = refined;
            const auto r = simulate_node_step(cfg);
            std::printf("%-10d %-8d %-16d %13.4f%% %-12.2f\n", cores, gpus,
                        128 * gpus / cores, 100.0 * r.gpu_launch_fraction(),
                        r.makespan_s);
        }
    }

    // Piz Daint node.
    node_sim_config cfg;
    cfg.node = with_p100(piz_daint_node());
    cfg.work = work;
    cfg.leaves = leaves;
    cfg.refined = refined;
    const auto r = simulate_node_step(cfg);
    std::printf("\nPiz Daint node (12 cores + P100): %.4f%% of kernels on "
                "the GPU (paper: 99.5207%%)\n",
                100.0 * r.gpu_launch_fraction());

    std::printf("\nTrend check (paper): FEWER cores per GPU -> each thread "
                "owns more streams -> larger\nGPU fraction; adding a second "
                "GPU relieves starvation.\n");
    return 0;
}

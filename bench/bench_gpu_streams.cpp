// Reproduces the §6.1.2 stream-starvation analysis: the fraction of
// multipole FMM kernels launched on the GPU as a function of the number of
// CPU worker threads feeding the streams. Paper data points: 99.9997% with
// 10 cores + 1 V100, 97.4995% with 20 cores + 1 V100, 99.5207% on a Piz
// Daint node (12 cores + P100, 128 streams).
//
// Extended with the aggregation A/B (arXiv:2210.06438): the same sweep with
// the fused-launch executor, where cores enqueue kernels instead of holding
// streams — starvation disappears and the per-kernel launch overhead is
// amortized over whole batches. Emits BENCH_gpu_streams.json for the
// performance-tracking pipeline.

#include <cstdio>

#include "cluster/event_sim.hpp"
#include "cluster/scenario_tree.hpp"
#include "support/bench_json.hpp"

using namespace octo::cluster;
using octo::support::json_value;

int main() {
    std::printf("=== GPU stream occupancy / kernel starvation (paper §6.1.2) ===\n\n");

    const auto st = build_v1309_tree(14);
    const std::size_t leaves = st.leaves;
    const std::size_t refined = st.subgrids - st.leaves;
    const auto work = v1309_workload();

    auto run = [&](int cores, int gpus, bool aggregate) {
        node_sim_config cfg;
        cfg.node = with_v100(xeon_e5_2660v3(cores), gpus);
        cfg.work = work;
        cfg.leaves = leaves;
        cfg.refined = refined;
        cfg.aggregate = aggregate;
        return simulate_node_step(cfg);
    };

    json_value sweep = json_value::array();
    std::printf("%-8s %-6s %-16s %-7s %13s %12s %11s %10s %10s\n", "cores",
                "GPUs", "streams/thread", "agg", "%kern on GPU", "makespan[s]",
                "fallbacks", "batch", "occup");
    for (int gpus = 1; gpus <= 2; ++gpus) {
        for (int cores : {6, 10, 12, 16, 20, 24, 32}) {
            for (const bool agg : {false, true}) {
                const auto r = run(cores, gpus, agg);
                std::printf("%-8d %-6d %-16d %-7s %12.4f%% %12.2f %11llu "
                            "%10.1f %9.0f%%\n",
                            cores, gpus, 128 * gpus / cores, agg ? "on" : "off",
                            100.0 * r.gpu_launch_fraction(), r.makespan_s,
                            static_cast<unsigned long long>(r.cpu_fallbacks()),
                            r.mean_batch_size(), 100.0 * r.mean_occupancy);
                sweep.push(json_value::object()
                               .add("cores", cores)
                               .add("gpus", gpus)
                               .add("aggregate", agg)
                               .add("gpu_launch_fraction",
                                    r.gpu_launch_fraction())
                               .add("makespan_s", r.makespan_s)
                               .add("cpu_fallbacks", r.cpu_fallbacks())
                               .add("fused_launches", r.fused_launches)
                               .add("mean_batch_size", r.mean_batch_size())
                               .add("mean_occupancy", r.mean_occupancy));
            }
        }
    }

    // High-contention headline: 20 cores share one V100 (the paper's worst
    // starvation point) and the burst is FMM-only — leaves far exceed the
    // device's kernel slots, so every stream is contended. This isolates the
    // kernel path the executor actually changes (the full step above also
    // carries the non-FMM CPU work, which dilutes the makespan delta to a
    // few percent; Table 2's protocol makes the same subtraction).
    auto fmm_burst = [&](bool aggregate) {
        node_sim_config cfg;
        cfg.node = with_v100(xeon_e5_2660v3(20), 1);
        cfg.work = work;
        cfg.work.other_flops_per_leaf = 0.0;
        cfg.leaves = leaves;
        cfg.refined = refined;
        cfg.aggregate = aggregate;
        return simulate_node_step(cfg);
    };
    const auto off = fmm_burst(false);
    const auto on = fmm_burst(true);
    const double speedup = off.makespan_s / on.makespan_s;
    const double tp_off =
        static_cast<double>(off.fmm_flops) / off.makespan_s / 1e9;
    const double tp_on = static_cast<double>(on.fmm_flops) / on.makespan_s / 1e9;
    std::printf("\nhigh-contention FMM burst (20 cores, 1 V100, %zu kernels "
                "vs %u kernel slots):\n"
                "  aggregation off: %8.3fs makespan, %6.0f GFLOP/s, %llu CPU "
                "fallbacks, %3.0f%% occupancy\n"
                "  aggregation on:  %8.3fs makespan, %6.0f GFLOP/s, %llu CPU "
                "fallbacks, %3.0f%% occupancy\n"
                "  -> %.1fx modeled FMM throughput\n",
                leaves + refined, with_v100(xeon_e5_2660v3(20), 1).gpu.kernel_slots(),
                off.makespan_s, tp_off,
                static_cast<unsigned long long>(off.cpu_fallbacks()),
                100.0 * off.mean_occupancy, on.makespan_s, tp_on,
                static_cast<unsigned long long>(on.cpu_fallbacks()),
                100.0 * on.mean_occupancy, speedup);

    // Piz Daint node.
    node_sim_config cfg;
    cfg.node = with_p100(piz_daint_node());
    cfg.work = work;
    cfg.leaves = leaves;
    cfg.refined = refined;
    const auto r = simulate_node_step(cfg);
    std::printf("\nPiz Daint node (12 cores + P100): %.4f%% of kernels on "
                "the GPU (paper: 99.5207%%)\n",
                100.0 * r.gpu_launch_fraction());

    std::printf("\nTrend check (paper): FEWER cores per GPU -> each thread "
                "owns more streams -> larger\nGPU fraction; adding a second "
                "GPU relieves starvation. Aggregation removes the\n"
                "starvation mechanism entirely: submission never holds a "
                "stream.\n");

    json_value root = json_value::object();
    root.add("bench", "gpu_streams")
        .add("workload",
             json_value::object().add("leaves", leaves).add("refined", refined))
        .add("sweep", sweep)
        .add("high_contention_fmm_burst",
             json_value::object()
                 .add("cores", 20)
                 .add("gpus", 1)
                 .add("makespan_off_s", off.makespan_s)
                 .add("makespan_on_s", on.makespan_s)
                 .add("fmm_gflops_off", tp_off)
                 .add("fmm_gflops_on", tp_on)
                 .add("speedup", speedup)
                 .add("fallbacks_off", off.cpu_fallbacks())
                 .add("fallbacks_on", on.cpu_fallbacks())
                 .add("occupancy_off", off.mean_occupancy)
                 .add("occupancy_on", on.mean_occupancy));
    octo::support::write_bench_json("BENCH_gpu_streams.json", root);
    std::printf("\nwrote BENCH_gpu_streams.json\n");
    return speedup >= 2.0 && on.cpu_fallbacks() == 0 ? 0 : 1;
}

// Time-to-recover vs checkpoint cadence (ISSUE 10): kill a locality
// mid-run, detect the death through the membership monitor, roll the
// survivors back to the last checkpoint chain, repartition onto the live
// ranks and resume — measuring each phase for real at small scale, then
// projecting the same recovery cycle onto the modeled 10,240-node cluster
// (Fig 2 machine model, libfabric-like fabric).
//
// Measured rows (4 modeled localities in one process, rotating star):
//   detect_us   membership probe until the dead rank is declared
//   restore_us  chain re-read + live-rank repartition + store reload + re-home
//   ttr_us      detect + restore
// Each cadence's recovered run is resumed to the end next to a never-killed
// restart from the SAME chain; every checkpoint both write must match byte
// for byte, or the bench exits nonzero. The model section charges detection
// (one death_timeout), the re-shipping of every migrated sub-grid image and
// the recomputation of the rolled-back steps, so sparser cadences pay in
// rollback exactly as the paper's full-machine runs would.
//
// Machine-readable trajectory: BENCH_recovery.json. CI runs this gated.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "amr/partition.hpp"
#include "cluster/machine_model.hpp"
#include "cluster/scenario_tree.hpp"
#include "core/simulation.hpp"
#include "dist/membership.hpp"
#include "dist/migrate.hpp"
#include "net/model.hpp"
#include "net/parcelport.hpp"
#include "scf/scf.hpp"
#include "support/bench_json.hpp"

using namespace octo;

namespace {

core::sim_options star_options() {
    core::sim_options o;
    o.eos = phys::ideal_gas_eos(1.0 + 1.0 / 1.5);
    o.bc = amr::boundary_kind::outflow;
    o.self_gravity = true;
    o.omega = {0, 0, 0.2};
    o.lb.ranks = 4;
    o.lb.every_steps = 1;
    return o;
}

core::simulation make_star() {
    auto t = scf::make_uniform_tree(4.0, 2);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0}, 1e-10);
    return core::simulation(std::move(t), star_options());
}

std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return {};
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

std::uint64_t file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

double us_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct cadence_result {
    long every_steps = 0;
    long full_every = 0;
    long kill_step = 0;
    long rollback_steps = 0;
    int chain_len = 0;
    std::uint64_t chain_full_bytes = 0;
    std::uint64_t chain_delta_bytes = 0;
    double detect_us = 0;
    double restore_us = 0;
    double ttr_us = 0;
    bool identical = false;
};

/// One full kill -> detect -> recover -> resume cycle at the given
/// checkpoint cadence. The victim and kill step are fixed (rank 2; the
/// monitor on rank 0 is assumed stable — DESIGN.md, fault model): this is
/// a timing bench, the seeded campaigns live in test_fault / test_lb.
cadence_result run_cycle(long every_steps, long full_every, long kill_step,
                         const std::string& tag) {
    constexpr int nranks = 4;
    constexpr long total_steps = 4;
    constexpr int victim = 2;
    const std::string prefix = "/tmp/octo_bench_rec_" + tag;
    const core::checkpoint_policy policy{.every_steps = every_steps,
                                         .path_prefix = prefix,
                                         .full_every = full_every};

    cadence_result row;
    row.every_steps = every_steps;
    row.full_every = full_every;
    row.kill_step = kill_step;

    dist::runtime rt(nranks, net::make_mpi_port());
    dist::subgrid_migrator mig(rt);
    auto b = make_star();
    b.set_checkpoint_policy(policy);
    for (const amr::node_key k : b.grid().leaves_sfc()) {
        mig.put(b.grid().node(k).owner, k, *b.grid().node(k).fields);
    }
    for (long s = 0; s < kill_step; ++s) b.advance();

    rt.kill(victim);

    const auto t0 = std::chrono::steady_clock::now();
    dist::membership mem(rt,
                         {.death_timeout = std::chrono::milliseconds(50)});
    const auto dead = mem.probe();
    row.detect_us = us_since(t0);
    if (dead != std::vector<int>{victim}) {
        std::fprintf(stderr, "FAIL(%s): probe declared the wrong rank dead\n",
                     tag.c_str());
        return row;
    }
    (void)rt.take_errors(); // the single peer_death event, asserted in tests

    const auto chain = b.checkpoint_chain();
    if (chain.empty()) {
        std::fprintf(stderr, "FAIL(%s): no checkpoint chain at the kill\n",
                     tag.c_str());
        return row;
    }
    row.chain_len = static_cast<int>(chain.size());
    for (const std::string& p : chain) {
        const auto n = file_bytes(p);
        if (p.size() > 6 && p.compare(p.size() - 6, 6, ".dckpt") == 0)
            row.chain_delta_bytes += n;
        else
            row.chain_full_bytes += n;
    }

    const auto t1 = std::chrono::steady_clock::now();
    const auto live = rt.live_ranks();
    mig.drop_rank(victim);
    auto r = core::simulation::recover(chain, star_options(), live);
    mig.reload(r.grid());
    rt.reassign_owned(victim, live.front());
    row.restore_us = us_since(t1);
    row.ttr_us = row.detect_us + row.restore_us;
    row.rollback_steps = kill_step - r.step_count();

    // Resume next to a never-killed restart from the SAME chain: bit-identity
    // of every checkpoint either writes is the pass condition.
    auto rp = policy;
    rp.path_prefix = prefix + "_r";
    r.set_checkpoint_policy(rp);
    while (r.step_count() < total_steps) r.advance();
    auto ref = core::simulation::restart_chain(chain, star_options());
    auto fp = policy;
    fp.path_prefix = prefix + "_ref";
    ref.set_checkpoint_policy(fp);
    while (ref.step_count() < total_steps) ref.advance();

    const auto& cr = r.checkpoint_chain();
    const auto& cref = ref.checkpoint_chain();
    row.identical = cr.size() == cref.size() && !cr.empty();
    for (std::size_t i = 0; row.identical && i < cr.size(); ++i) {
        const auto x = slurp(cr[i]);
        row.identical = !x.empty() && x == slurp(cref[i]);
    }

    if (!rt.wait_quiet_for(std::chrono::seconds(60)))
        std::fprintf(stderr, "WARN(%s): runtime did not go quiet\n",
                     tag.c_str());
    for (long s = 1; s <= total_steps; ++s) {
        for (const std::string& p : {prefix, prefix + "_r", prefix + "_ref"}) {
            std::remove((p + "." + std::to_string(s) + ".ckpt").c_str());
            std::remove((p + "." + std::to_string(s) + ".dckpt").c_str());
        }
    }
    return row;
}

} // namespace

int main() {
    std::printf("=== Elastic recovery: time-to-recover vs checkpoint cadence ===\n\n");

    auto root = octo::support::json_value::object();
    root.add("bench", "recovery");
    bool gate_pass = true;

    // ---- measured: real kill/detect/recover cycles, 4 modeled localities --
    struct cadence {
        long every, full_every, kill_step;
        const char* tag;
    };
    // every=1/full=1: dense all-full chain, zero rollback.
    // every=1/full=2: the kill lands on a {full, delta} chain.
    // every=2/full=1: sparse fulls, one step of rollback recompute.
    const cadence cadences[] = {{1, 1, 3, "c11"}, {1, 2, 2, "c12"},
                                {2, 1, 3, "c21"}};

    std::printf("%-18s %8s %8s %10s %10s %10s %6s\n", "cadence", "chain",
                "rollbk", "detect_us", "restore_us", "ttr_us", "ident");
    auto rows = octo::support::json_value::array();
    for (const cadence& c : cadences) {
        const auto r = run_cycle(c.every, c.full_every, c.kill_step, c.tag);
        std::printf("every=%ld full=%ld   %8d %8ld %10.0f %10.0f %10.0f %6s\n",
                    r.every_steps, r.full_every, r.chain_len, r.rollback_steps,
                    r.detect_us, r.restore_us, r.ttr_us,
                    r.identical ? "yes" : "NO");
        rows.push(octo::support::json_value::object()
                      .add("every_steps", static_cast<int>(r.every_steps))
                      .add("full_every", static_cast<int>(r.full_every))
                      .add("kill_step", static_cast<int>(r.kill_step))
                      .add("rollback_steps", static_cast<int>(r.rollback_steps))
                      .add("chain_len", r.chain_len)
                      .add("chain_full_bytes", r.chain_full_bytes)
                      .add("chain_delta_bytes", r.chain_delta_bytes)
                      .add("detect_us", r.detect_us)
                      .add("restore_us", r.restore_us)
                      .add("ttr_us", r.ttr_us)
                      .add("identical", r.identical));
        if (!r.identical) gate_pass = false;
        // Bounded time-to-recover: the whole cycle at this scale must sit
        // far below the multi-second retry budget a black-holed parcel
        // would wait out. 10 s is generous for slow CI runners.
        if (r.ttr_us > 10e6) gate_pass = false;
    }
    root.add("measured", rows);

    // ---- modeled: the same cycle on the 10,240-node Piz-Daint-like run ----
    // One node dies out of 10,240 running the level-14 v1309 tree. Recovery
    // repartitions its SFC span onto the survivors; the modeled cost is one
    // detection timeout, the parallel re-ship of every migrated sub-grid
    // image, plus recomputing the steps lost since the last checkpoint.
    const int nodes = 10240;
    auto st = cluster::build_v1309_tree(14);
    auto node = cluster::with_p100(cluster::piz_daint_node());
    auto work = cluster::v1309_workload();
    work.dependency_hops = cluster::critical_path_hops(14);
    const auto net = octo::net::libfabric_like();

    amr::partition_sfc(st.tree, nodes);
    std::vector<int> live;
    live.reserve(nodes - 1);
    for (int i = 0; i < nodes; ++i)
        if (i != 1) live.push_back(i);
    const std::vector<double> w(st.tree.leaves_sfc().size(), 1.0);
    const auto rec = amr::repartition_onto(st.tree, live, w);
    const double step_s = cluster::model_step(st.subgrids, st.leaves,
                                              rec.stats, nodes - 1, node, net,
                                              work)
                              .step_seconds;
    const double detect_s = 1.0; // heartbeat-scale death_timeout at scale
    const double reship_s = cluster::migration_overhead_seconds(
        rec.migrations.size(), nodes - 1, net);

    std::printf("\nmodel: %d nodes, level 14, %zu sub-grids; 1 node lost\n",
                nodes, st.subgrids);
    std::printf("  %zu sub-grids migrate, re-ship %.2f s, step %.3f s\n",
                rec.migrations.size(), reship_s, step_s);
    std::printf("  %-28s %12s\n", "checkpoint cadence (steps)", "modeled ttr_s");

    auto model_rows = octo::support::json_value::array();
    double prev_ttr = 0;
    bool monotone = true;
    for (const int cadence : {1, 2, 4, 8}) {
        // Expected rollback when deaths strike uniformly within the cadence.
        const double rollback_steps = (cadence - 1) / 2.0;
        const double ttr = detect_s + reship_s + rollback_steps * step_s;
        std::printf("  %-28d %12.2f\n", cadence, ttr);
        model_rows.push(octo::support::json_value::object()
                            .add("cadence_steps", cadence)
                            .add("rollback_steps", rollback_steps)
                            .add("ttr_seconds", ttr));
        if (ttr < prev_ttr) monotone = false;
        prev_ttr = ttr;
    }
    root.add("model", octo::support::json_value::object()
                          .add("nodes", nodes)
                          .add("level", 14)
                          .add("migrated_subgrids",
                               static_cast<std::uint64_t>(rec.migrations.size()))
                          .add("detect_seconds", detect_s)
                          .add("reship_seconds", reship_s)
                          .add("step_seconds", step_s)
                          .add("rows", model_rows));
    // Re-shipping one rank's span over the fabric must stay minute-scale —
    // far below a from-scratch restart of the whole run.
    if (reship_s > 60.0) gate_pass = false;
    if (!monotone) gate_pass = false;

    root.add("gate", octo::support::json_value::object()
                         .add("bit_identical_required", true)
                         .add("measured_ttr_budget_us", 10e6)
                         .add("model_reship_budget_s", 60.0)
                         .add("pass", gate_pass));
    octo::support::write_bench_json("BENCH_recovery.json", root);
    std::printf("\nwrote BENCH_recovery.json\n");

    if (!gate_pass) {
        std::fprintf(stderr, "FAIL: recovery gate (identity, ttr budget, or "
                             "model bounds) violated\n");
        return 1;
    }
    return 0;
}

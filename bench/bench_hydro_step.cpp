// Step-to-step latency of the hydro solver on a deep AMR tree — the
// before/after measurement for the SoA/SIMD pencil kernels plus the
// futurized per-leaf stage pipeline (paper §4.3's stencil/SoA rewrite, which
// the ablation study credits with 1.90–2.22x of the hydro speedup). Two
// configurations advance the same tree:
//
//   seed-equivalent : scalar AoS pencil loops, barriered fill-then-stage
//                     schedule, buffer recycling disabled (every scratch
//                     buffer goes through operator new, as the seed did);
//   vectorized      : SoA pencils on simd::pack lanes, per-leaf futurized
//                     pipeline (ghost fills / flux sweeps / refluxes /
//                     updates as dependency-gated tasks, CFL folded in),
//                     recycler enabled — steady-state steps allocate nothing.
//
// The tree is the level-14 analogue used for profiling: blob density refined
// toward the domain center to level 5 (1273 nodes / 1114 leaves at INX = 8),
// the same per-leaf work a production level-14 run does per octree node.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "amr/tree.hpp"
#include "hydro/update.hpp"
#include "runtime/apex.hpp"
#include "simd/pack.hpp"
#include "support/buffer_recycler.hpp"
#include "support/timer.hpp"

using namespace octo;
using amr::box_geometry;
using amr::INX;

namespace {

amr::tree make_scene(int max_level) {
    box_geometry g;
    g.origin = {-0.5, -0.5, -0.5};
    g.dx = 1.0 / INX;
    amr::tree t(g);
    t.refine_by(
        [](amr::node_key, const box_geometry& bg) {
            const dvec3 c = bg.cell_center(INX / 2, INX / 2, INX / 2);
            return norm(c) < 0.28 * (bg.dx * INX * 8);
        },
        max_level);
    const phys::ideal_gas_eos eos(5.0 / 3.0);
    for (const auto k : t.leaves_sfc()) {
        auto& sg = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = sg.geom.cell_center(i, j, kk);
                    const dvec3 c1{-0.18, 0.02, 0.01};
                    const dvec3 c2{0.22, -0.03, -0.02};
                    const double rho = 1e-6 +
                                       std::exp(-norm2(r - c1) / 0.01) +
                                       0.3 * std::exp(-norm2(r - c2) / 0.006);
                    const dvec3 v =
                        0.1 * cross(dvec3{0, 0, 1}, r - c1) * (rho > 1e-3);
                    const double internal = 1e-8 + 0.05 * rho;
                    sg.interior(amr::f_rho, i, j, kk) = rho;
                    sg.interior(amr::f_sx, i, j, kk) = rho * v.x;
                    sg.interior(amr::f_sy, i, j, kk) = rho * v.y;
                    sg.interior(amr::f_sz, i, j, kk) = rho * v.z;
                    sg.interior(amr::f_egas, i, j, kk) =
                        internal + 0.5 * rho * norm2(v);
                    sg.interior(amr::f_tau, i, j, kk) =
                        eos.tau_from_internal(internal);
                    sg.interior(amr::first_passive, i, j, kk) = 0.5 * rho;
                }
    }
    return t;
}

struct run_result {
    double first_ms = 0;  ///< cold step (plan + workspace build-up)
    double steady_ms = 0; ///< mean of the remaining steps
};

run_result run(amr::tree& t, const hydro::step_options& opt, int steps,
               bool report_recycler) {
    auto& rec = buffer_recycler::instance();
    run_result r;
    for (int i = 0; i < steps; ++i) {
        const auto before = rec.stats();
        stopwatch sw;
        (void)hydro::step(t, opt);
        const double ms = sw.seconds() * 1e3;
        const auto after = rec.stats();
        if (report_recycler) {
            std::printf("step %d: %9.3f ms   recycler hits %llu  misses %llu\n",
                        i, ms,
                        static_cast<unsigned long long>(after.hits -
                                                        before.hits),
                        static_cast<unsigned long long>(after.misses -
                                                        before.misses));
        } else {
            std::printf("step %d: %9.3f ms\n", i, ms);
        }
        if (i == 0) r.first_ms = ms;
        else r.steady_ms += ms / (steps - 1);
    }
    return r;
}

} // namespace

int main(int argc, char** argv) {
    const int max_level = std::max(0, argc > 1 ? std::atoi(argv[1]) : 5);
    const int steps = std::max(1, argc > 2 ? std::atoi(argv[2]) : 5);

    std::printf("=== hydro::step latency: scalar+barriered vs SoA-SIMD+"
                "futurized ===\n\n");
    auto& rec = buffer_recycler::instance();
    run_result seed, vec;

    { // Seed-equivalent: scalar kernels, global barriers, no recycling.
        auto t = make_scene(max_level);
        std::printf("tree: %zu nodes, %zu leaves, max_level %d, %d steps\n\n",
                    t.size(), t.leaf_count(), t.max_level(), steps);
        rec.set_enabled(false);
        rec.clear();
        std::printf("--- seed-equivalent (scalar AoS, barriered) ---\n");
        hydro::step_options opt;
        opt.eos = phys::ideal_gas_eos(5.0 / 3.0);
        opt.use_simd = false;
        opt.futurized = false;
        seed = run(t, opt, steps, false);
        rec.set_enabled(true);
    }

    { // Fixed-default configuration: SoA/SIMD kernels, per-leaf pipeline.
        auto t = make_scene(max_level);
        rec.clear();
        std::printf("\n--- vectorized (SoA pencils x%d lanes, futurized) ---\n",
                    static_cast<int>(simd::default_width));
        hydro::step_options opt;
        opt.eos = phys::ideal_gas_eos(5.0 / 3.0);
        vec = run(t, opt, steps, true);
    }

    run_result tuned;
    { // Autotuned width/tile (kernel/autotune.hpp): the first step sweeps the
      // candidate geometries on a synthetic leaf (or warm-hits the cache
      // bench_kernels seeded) and the remaining steps run the winner.
        auto t = make_scene(max_level);
        rec.clear();
        std::printf("\n--- autotuned (width/tile from the autotune cache) ---\n");
        hydro::step_options opt;
        opt.eos = phys::ideal_gas_eos(5.0 / 3.0);
        opt.autotune = true;
        tuned = run(t, opt, steps, true);
    }

    const auto& apex = rt::apex_registry::instance();
    std::printf("\napex counters: hydro.stage_tasks=%llu  hydro.cfl_tasks=%llu"
                "  hydro.simd_width=%llu  hydro.ghost_overlap_fraction=%llu%%\n",
                static_cast<unsigned long long>(
                    apex.counter("hydro.stage_tasks")),
                static_cast<unsigned long long>(apex.counter("hydro.cfl_tasks")),
                static_cast<unsigned long long>(
                    apex.counter("hydro.simd_width")),
                static_cast<unsigned long long>(
                    apex.counter("hydro.ghost_overlap_fraction")));

    std::printf("\n%-42s %12s %12s\n", "configuration", "first[ms]",
                "steady[ms]");
    std::printf("%-42s %12.3f %12.3f\n", "scalar AoS + barriered (seed)",
                seed.first_ms, seed.steady_ms);
    std::printf("%-42s %12.3f %12.3f\n", "SoA/SIMD + futurized pipeline",
                vec.first_ms, vec.steady_ms);
    std::printf("%-42s %12.3f %12.3f\n", "autotuned width/tile", tuned.first_ms,
                tuned.steady_ms);
    if (steps > 1) {
        std::printf("\nsteady-state speedup: %.2fx (vectorized), %.2fx "
                    "(autotuned)\n",
                    seed.steady_ms / vec.steady_ms,
                    seed.steady_ms / tuned.steady_ms);
        // The tuned geometry can never MEASURE worse than the default during
        // the sweep (the default is the first candidate); full-step wall time
        // is noisier, so allow 15% before calling it a regression.
        if (tuned.steady_ms > vec.steady_ms * 1.15) {
            std::printf("FAIL: autotuned steady step slower than the fixed "
                        "default\n");
            return 1;
        }
    } else {
        std::printf("\nsteady-state speedup: n/a (need >= 2 steps)\n");
    }
    return 0;
}

// Reproduces TABLE 2 (paper §6.1): FMM kernel node-level performance on the
// paper's platforms, using the node-level discrete-event machine model and
// the paper's own three-run measurement protocol (§6.1.1). CPU kernel rates
// are calibrated to the paper's CPU-only rows; the GPU behaviour (speedups,
// fraction of peak, stream starvation) emerges from the simulation.

#include <cstdio>
#include <vector>

#include "cluster/event_sim.hpp"
#include "cluster/scenario_tree.hpp"
#include "support/bench_json.hpp"

using namespace octo::cluster;
using octo::support::json_value;

int main() {
    std::printf("=== Table 2: FMM kernel node-level performance ===\n");
    std::printf("(level-14-analogue workload; CPU rates calibrated to the "
                "paper's CPU-only rows,\n GPU behaviour emergent — see "
                "EXPERIMENTS.md)\n\n");

    // Level-14-analogue octree composition from the scenario builder.
    const auto st = build_v1309_tree(14);
    const std::size_t leaves = st.leaves;
    const std::size_t refined = st.subgrids - st.leaves;
    std::printf("workload: %zu leaves (monopole kernels), %zu refined nodes "
                "(multipole kernels)\n\n",
                leaves, refined);

    const auto work = v1309_workload();
    const std::vector<node_spec> platforms = {
        xeon_e5_2660v3(10),
        with_v100(xeon_e5_2660v3(10), 1),
        with_v100(xeon_e5_2660v3(10), 2),
        xeon_e5_2660v3(20),
        with_v100(xeon_e5_2660v3(20), 1),
        with_v100(xeon_e5_2660v3(20), 2),
        xeon_phi_7210(),
        piz_daint_node(),
        with_p100(piz_daint_node()),
    };

    json_value rows = json_value::array();
    auto emit = [&rows](const table2_row& row) {
        std::printf("%-48s %-18s %9.1f %9.2f %12.0f %7.1f%% %11.4f%%\n",
                    row.platform.c_str(), row.execution.c_str(),
                    row.total_runtime_s, row.fmm_runtime_s, row.fmm_gflops,
                    100.0 * row.fraction_of_peak,
                    100.0 * row.gpu_launch_fraction);
        rows.push(json_value::object()
                      .add("platform", row.platform)
                      .add("execution", row.execution)
                      .add("total_runtime_s", row.total_runtime_s)
                      .add("fmm_runtime_s", row.fmm_runtime_s)
                      .add("fmm_gflops", row.fmm_gflops)
                      .add("fraction_of_peak", row.fraction_of_peak)
                      .add("gpu_launch_fraction", row.gpu_launch_fraction));
    };

    std::printf("%-48s %-18s %9s %9s %12s %8s %12s\n", "Utilized hardware",
                "Execution", "total[s]", "FMM[s]", "FMM GFLOP/s", "of peak",
                "%kern on GPU");
    for (const auto& p : platforms) {
        emit(measure_platform(p, work, leaves, refined));
        // The aggregation A/B row (arXiv:2210.06438): same platform, fused
        // launches instead of one stream per kernel.
        if (p.num_gpus > 0) {
            emit(measure_platform(p, work, leaves, refined, /*aggregate=*/true));
        }
    }

    std::printf("\npaper reference rows (Table 2): 125 / 2271 / 3185 / 250 / "
                "1516 / 5188 / 459 / 157 / 973 GFLOP/s\n");
    std::printf("paper fractions of peak:         30 / 32 / 22 / 30 / 22 / "
                "37 / 17 / 31 / 21 %%\n");

    json_value root = json_value::object();
    root.add("bench", "table2_node_level")
        .add("workload",
             json_value::object().add("leaves", leaves).add("refined", refined))
        .add("rows", rows);
    octo::support::write_bench_json("BENCH_table2.json", root);
    std::printf("\nwrote BENCH_table2.json\n");
    return 0;
}

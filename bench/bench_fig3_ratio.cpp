// Reproduces FIGURE 3 (paper §6.3): ratio of processed sub-grids per second
// between the libfabric and MPI parcelports on Piz Daint (higher = libfabric
// faster), for levels 14-16. The paper's curve starts slightly BELOW one
// (polling contention on few busy nodes) and rises to ~2.5-2.8 at scale.

#include <cstdio>
#include <vector>

#include "cluster/machine_model.hpp"
#include "cluster/scenario_tree.hpp"

using namespace octo::cluster;

int main() {
    std::printf("=== Figure 3: libfabric / MPI sub-grids-per-second ratio ===\n\n");

    auto node = with_p100(piz_daint_node());
    auto work = v1309_workload();

    struct series {
        int level;
        std::vector<int> nodes;
    };
    const std::vector<series> runs = {
        {14, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}},
        {15, {32, 64, 128, 256, 512, 1024, 2048, 4096}},
        {16, {256, 512, 1024, 2048, 4096, 5400}},
    };

    for (const auto& run : runs) {
        auto st = build_v1309_tree(run.level);
        work.dependency_hops = critical_path_hops(run.level);
        std::printf("level %d:\n  %7s %8s\n", run.level, "nodes", "ratio");
        for (const int n : run.nodes) {
            const auto parts = octo::amr::partition_sfc(st.tree, n);
            const auto lf = model_step(st.subgrids, st.leaves, parts, n, node,
                                       octo::net::libfabric_like(), work);
            const auto mp = model_step(st.subgrids, st.leaves, parts, n, node,
                                       octo::net::mpi_like(), work);
            std::printf("  %7d %8.2f\n", n,
                        lf.subgrids_per_second / mp.subgrids_per_second);
        }
        std::printf("\n");
    }
    std::printf("paper reference: ratio slightly below 1 at small node "
                "counts, rising to ~2.5-2.8\nfor the largest runs (\"factor "
                "of almost 3\", §6.3).\n");
    return 0;
}

// Microbenchmark of the two parcelports' REAL in-process behaviour: delivery
// latency and throughput of active messages, plus the modeled per-message
// costs that feed the scaling experiments. Demonstrates the structural
// difference: staged + poll-progressed (MPI-like) vs immediate one-sided
// completion (libfabric-like).

#include <atomic>
#include <cstdio>

#include "dist/locality.hpp"
#include "net/parcelport.hpp"
#include "support/timer.hpp"

using namespace octo;
using namespace octo::dist;

namespace {

struct result {
    double latency_us;
    double throughput_msgs_per_s;
};

result measure(parcelport_factory f) {
    runtime rt(2, std::move(f), 2);
    std::atomic<int> got{0};
    const auto ping = rt.register_action("ping", [&](int, iarchive) {
        got.fetch_add(1, std::memory_order_relaxed);
    });

    // Latency: round-trip-free one-way ping, measured to delivery.
    constexpr int rounds = 200;
    octo::stopwatch sw;
    for (int i = 0; i < rounds; ++i) {
        const int before = got.load();
        rt.apply(1, ping, oarchive{});
        while (got.load() == before) std::this_thread::yield();
    }
    const double lat = sw.seconds() / rounds * 1e6;

    // Throughput: burst of payload-carrying parcels.
    constexpr int burst = 20000;
    got = 0;
    oarchive payload; // reused shape; re-built per send below
    octo::stopwatch sw2;
    for (int i = 0; i < burst; ++i) {
        oarchive a;
        a.write(i);
        rt.apply(1, ping, std::move(a));
    }
    rt.wait_quiet();
    const double thr = burst / sw2.seconds();
    (void)payload;
    return {lat, thr};
}

} // namespace

int main() {
    std::printf("=== Parcelport microbenchmark (real in-process transports) ===\n\n");
    const auto mpi = measure(net::make_mpi_port());
    const auto lf = measure(net::make_libfabric_port());
    std::printf("%-22s %16s %22s\n", "port", "latency [us]", "throughput [msg/s]");
    std::printf("%-22s %16.1f %22.0f\n", "mpi (two-sided)", mpi.latency_us,
                mpi.throughput_msgs_per_s);
    std::printf("%-22s %16.1f %22.0f\n", "libfabric (one-sided)", lf.latency_us,
                lf.throughput_msgs_per_s);
    std::printf("\nlatency ratio (mpi/lf): %.2f — the structural gap the "
                "paper's §6.3 bullet list explains\n",
                mpi.latency_us / lf.latency_us);

    std::printf("\nmodeled per-message costs feeding the scaling model:\n");
    for (std::size_t bytes : {256u, 4096u, 35000u, 1048576u}) {
        std::printf("  %8zu B: mpi %8.2f us | libfabric %8.2f us\n", bytes,
                    1e6 * net::modeled_message_seconds(net::mpi_like(), bytes),
                    1e6 * net::modeled_message_seconds(net::libfabric_like(),
                                                       bytes));
    }
    return 0;
}

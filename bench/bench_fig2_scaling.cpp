// Reproduces FIGURE 2 (paper §6.2/§6.3): relative speedup with respect to
// processed sub-grids per second on one node at level 14, for refinement
// levels 14-17 and node counts in powers of two up to 5400 (the full
// machine), with both the MPI-like and the libfabric-like parcelport.
//
// The series combine weak scaling (level increases) and strong scaling
// (node count increases), exactly as the paper's figure. Node-count ranges
// per level follow the paper's (memory-constrained) runs.

#include <cstdio>
#include <vector>

#include "cluster/machine_model.hpp"
#include "cluster/scenario_tree.hpp"

using namespace octo::cluster;

int main() {
    std::printf("=== Figure 2: speedup w.r.t. sub-grids/s on one node (level 14) ===\n\n");

    auto node = with_p100(piz_daint_node());
    auto work = v1309_workload();

    // Baseline: level 14 on 1 node (libfabric; ports are equal at N=1 up to
    // the polling tax).
    auto base_tree = build_v1309_tree(14);
    work.dependency_hops = critical_path_hops(14);
    const auto base_parts = octo::amr::partition_sfc(base_tree.tree, 1);
    const double base = model_step(base_tree.subgrids, base_tree.leaves,
                                   base_parts, 1, node, octo::net::libfabric_like(),
                                   work)
                            .subgrids_per_second;
    std::printf("baseline: %.1f sub-grids/s (level 14, 1 node)\n\n", base);

    struct series {
        int level;
        std::vector<int> nodes;
    };
    // The paper's level-16/17 runs start at higher node counts (memory).
    const std::vector<series> runs = {
        {14, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}},
        {15, {32, 64, 128, 256, 512, 1024, 2048, 4096, 5400}},
        {16, {256, 512, 1024, 2048, 4096, 5400}},
        {17, {1024, 2048, 4096, 5400}},
    };

    for (const auto& run : runs) {
        auto st = build_v1309_tree(run.level);
        work.dependency_hops = critical_path_hops(run.level);
        std::printf("level %d (%zu sub-grids):\n", run.level, st.subgrids);
        std::printf("  %7s %14s %14s %12s %12s\n", "nodes", "speedup(lf)",
                    "speedup(mpi)", "eff(lf)", "eff(mpi)");
        for (const int n : run.nodes) {
            const auto parts = octo::amr::partition_sfc(st.tree, n);
            const auto lf = model_step(st.subgrids, st.leaves, parts, n, node,
                                       octo::net::libfabric_like(), work);
            const auto mp = model_step(st.subgrids, st.leaves, parts, n, node,
                                       octo::net::mpi_like(), work);
            std::printf("  %7d %14.1f %14.1f %11.1f%% %11.1f%%\n", n,
                        lf.subgrids_per_second / base,
                        mp.subgrids_per_second / base,
                        100.0 * lf.subgrids_per_second / base / n,
                        100.0 * mp.subgrids_per_second / base / n);
        }
        std::printf("\n");
    }

    std::printf("paper reference points (libfabric): level 17 weak efficiency "
                "78.4%% @1024, 68.1%% @2048;\nlevel 16: 71.4%% @256 down to "
                "21.2%% @5400.\n");
    return 0;
}

// Reproduces FIGURE 2 (paper §6.2/§6.3): relative speedup with respect to
// processed sub-grids per second on one node at level 14, for refinement
// levels 14-17 and node counts in powers of two up to 5400 (the full
// machine), with both the MPI-like and the libfabric-like parcelport.
//
// The series combine weak scaling (level increases) and strong scaling
// (node count increases), exactly as the paper's figure. Node-count ranges
// per level follow the paper's (memory-constrained) runs.
//
// ISSUE 8 extends the figure with a static-vs-dynamic load-balancing A/B:
// the same level-16 tree accounted under SKEWED per-sub-grid costs (the
// refined merger core costs more per leaf), node counts extended to 10,240.
// "static" is the paper's equal-count SFC split; "dynamic" runs the bounded
// incremental re-partitioner to convergence (<= 10% migration per round)
// and amortizes the modeled migration overhead over the rebalance cadence.
// Exits nonzero if the dynamic row at 10,240 nodes retains < 1.3x the
// static throughput or any round exceeds the migration budget — the
// regression gate CI enforces. Machine-readable trajectory: BENCH_fig2.json.

#include <cstdio>
#include <vector>

#include "amr/partition.hpp"
#include "cluster/machine_model.hpp"
#include "cluster/scenario_tree.hpp"
#include "support/bench_json.hpp"

using namespace octo::cluster;

namespace {

struct ab_row {
    int nodes = 0;
    double static_sgps = 0;  ///< modeled sub-grids/s, equal-count split
    double dynamic_sgps = 0; ///< after converged rebalancing + overhead
    double ratio = 0;
    int rounds = 0;
    double max_migration_fraction = 0;
    double imbalance_static_pct = 0;
    double imbalance_dynamic_pct = 0;
    double overhead_seconds = 0; ///< one rebalance round, modeled
};

/// Steps between rebalances in the modeled production run: the per-round
/// migration overhead is amortized over this many steps.
constexpr double rebalance_every_steps = 10.0;

ab_row run_ab(scenario_tree& st, const std::vector<double>& costs, int nodes,
              const node_spec& node, const octo::net::network_params& net,
              const workload_spec& work) {
    ab_row row;
    row.nodes = nodes;

    // A: the paper's equal-count split, accounted under the skewed costs —
    // the hot rank carries the refined core's full weight.
    octo::amr::partition_sfc(st.tree, nodes);
    const auto static_parts =
        octo::amr::partition_accounting(st.tree, nodes, &costs);
    row.imbalance_static_pct = static_parts.imbalance_pct();
    row.static_sgps = model_step(st.subgrids, st.leaves, static_parts, nodes,
                                 node, net, work)
                          .subgrids_per_second;

    // B: incremental weighted rebalancing from that same split, each round
    // bounded to 10% migration, run to convergence.
    std::size_t migrated_total = 0;
    octo::amr::rebalance_result last;
    for (int round = 0; round < 64; ++round) {
        last = octo::amr::rebalance_sfc(st.tree, nodes, costs,
                                        {.max_migration_fraction = 0.10});
        ++row.rounds;
        migrated_total += last.migrations.size();
        row.max_migration_fraction =
            std::max(row.max_migration_fraction, last.migration_fraction);
        if (last.migrations.empty() || !last.budget_limited) break;
    }
    row.imbalance_dynamic_pct = last.stats.imbalance_pct();

    const auto dyn = model_step(st.subgrids, st.leaves, last.stats, nodes,
                                node, net, work);
    // Amortized migration overhead: the steady-state rebalance moves far
    // fewer sub-grids than the convergence transient, so the per-round
    // average is a conservative (pessimistic) estimate.
    const double per_round =
        migration_overhead_seconds(migrated_total / std::max(row.rounds, 1),
                                   nodes, net);
    row.overhead_seconds = per_round;
    const double step_s = dyn.step_seconds + per_round / rebalance_every_steps;
    row.dynamic_sgps = static_cast<double>(st.subgrids) / step_s;
    row.ratio = row.static_sgps > 0 ? row.dynamic_sgps / row.static_sgps : 0;
    return row;
}

} // namespace

int main() {
    std::printf("=== Figure 2: speedup w.r.t. sub-grids/s on one node (level 14) ===\n\n");

    auto node = with_p100(piz_daint_node());
    auto work = v1309_workload();

    auto root = octo::support::json_value::object();
    root.add("bench", "fig2_scaling");

    // Baseline: level 14 on 1 node (libfabric; ports are equal at N=1 up to
    // the polling tax).
    auto base_tree = build_v1309_tree(14);
    work.dependency_hops = critical_path_hops(14);
    const auto base_parts = octo::amr::partition_sfc(base_tree.tree, 1);
    const double base = model_step(base_tree.subgrids, base_tree.leaves,
                                   base_parts, 1, node, octo::net::libfabric_like(),
                                   work)
                            .subgrids_per_second;
    std::printf("baseline: %.1f sub-grids/s (level 14, 1 node)\n\n", base);
    root.add("baseline_subgrids_per_s", base);

    struct series {
        int level;
        std::vector<int> nodes;
    };
    // The paper's level-16/17 runs start at higher node counts (memory).
    const std::vector<series> runs = {
        {14, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}},
        {15, {32, 64, 128, 256, 512, 1024, 2048, 4096, 5400}},
        {16, {256, 512, 1024, 2048, 4096, 5400}},
        {17, {1024, 2048, 4096, 5400}},
    };

    auto series_json = octo::support::json_value::array();
    for (const auto& run : runs) {
        auto st = build_v1309_tree(run.level);
        work.dependency_hops = critical_path_hops(run.level);
        std::printf("level %d (%zu sub-grids):\n", run.level, st.subgrids);
        std::printf("  %7s %14s %14s %12s %12s\n", "nodes", "speedup(lf)",
                    "speedup(mpi)", "eff(lf)", "eff(mpi)");
        auto level_json = octo::support::json_value::object();
        level_json.add("level", run.level);
        level_json.add("subgrids", static_cast<std::uint64_t>(st.subgrids));
        auto rows = octo::support::json_value::array();
        for (const int n : run.nodes) {
            const auto parts = octo::amr::partition_sfc(st.tree, n);
            const auto lf = model_step(st.subgrids, st.leaves, parts, n, node,
                                       octo::net::libfabric_like(), work);
            const auto mp = model_step(st.subgrids, st.leaves, parts, n, node,
                                       octo::net::mpi_like(), work);
            std::printf("  %7d %14.1f %14.1f %11.1f%% %11.1f%%\n", n,
                        lf.subgrids_per_second / base,
                        mp.subgrids_per_second / base,
                        100.0 * lf.subgrids_per_second / base / n,
                        100.0 * mp.subgrids_per_second / base / n);
            rows.push(octo::support::json_value::object()
                          .add("nodes", n)
                          .add("speedup_lf", lf.subgrids_per_second / base)
                          .add("speedup_mpi", mp.subgrids_per_second / base));
        }
        level_json.add("rows", rows);
        series_json.push(level_json);
        std::printf("\n");
    }
    root.add("series", series_json);

    // ---- static vs dynamic load balancing under skewed costs (ISSUE 8) -----
    std::printf("=== dynamic vs static load balancing, level 16, skewed costs ===\n");
    std::printf("(leaf cost doubles per refinement level; rebalance every %.0f "
                "steps, <=10%% migration per round)\n\n",
                rebalance_every_steps);
    std::printf("  %7s %12s %12s %7s %7s %10s %10s %8s\n", "nodes",
                "static sg/s", "dynamic sg/s", "ratio", "rounds", "imb(st)%",
                "imb(dy)%", "migr/rd");

    auto st16 = build_v1309_tree(16);
    work.dependency_hops = critical_path_hops(16);
    const auto costs = skewed_leaf_costs(st16.tree, 2.0);
    const auto net = octo::net::libfabric_like();

    auto ab_json = octo::support::json_value::object();
    ab_json.add("level", 16)
        .add("skew_per_level", 2.0)
        .add("rebalance_every_steps", rebalance_every_steps);
    auto ab_rows = octo::support::json_value::array();

    bool gate_pass = true;
    double gate_ratio = 0;
    for (const int n : {1024, 2048, 4096, 5400, 8192, 10240}) {
        const auto row = run_ab(st16, costs, n, node, net, work);
        std::printf("  %7d %12.1f %12.1f %6.2fx %7d %9.1f%% %9.1f%% %7.2f%%\n",
                    row.nodes, row.static_sgps, row.dynamic_sgps, row.ratio,
                    row.rounds, row.imbalance_static_pct,
                    row.imbalance_dynamic_pct,
                    100.0 * row.max_migration_fraction);
        ab_rows.push(octo::support::json_value::object()
                         .add("nodes", row.nodes)
                         .add("static_subgrids_per_s", row.static_sgps)
                         .add("dynamic_subgrids_per_s", row.dynamic_sgps)
                         .add("ratio", row.ratio)
                         .add("rounds", row.rounds)
                         .add("max_migration_fraction",
                              row.max_migration_fraction)
                         .add("imbalance_static_pct", row.imbalance_static_pct)
                         .add("imbalance_dynamic_pct",
                              row.imbalance_dynamic_pct)
                         .add("migration_overhead_s", row.overhead_seconds));
        if (row.max_migration_fraction > 0.10 + 1e-12) gate_pass = false;
        if (row.nodes == 10240) {
            gate_ratio = row.ratio;
            if (row.ratio < 1.3) gate_pass = false;
        }
    }
    ab_json.add("rows", ab_rows);
    root.add("load_balance_ab", ab_json);
    root.add("gate", octo::support::json_value::object()
                         .add("nodes", 10240)
                         .add("required_ratio", 1.3)
                         .add("achieved_ratio", gate_ratio)
                         .add("pass", gate_pass));

    octo::support::write_bench_json("BENCH_fig2.json", root);
    std::printf("\nwrote BENCH_fig2.json\n");

    std::printf("\npaper reference points (libfabric): level 17 weak efficiency "
                "78.4%% @1024, 68.1%% @2048;\nlevel 16: 71.4%% @256 down to "
                "21.2%% @5400.\n");

    if (!gate_pass) {
        std::fprintf(stderr,
                     "FAIL: dynamic/static ratio %.2f at 10240 nodes (need "
                     ">= 1.30) or migration budget exceeded\n",
                     gate_ratio);
        return 1;
    }
    return 0;
}

// Autotune sweep driver for the portable kernel layer (ISSUE 7): measures
// every candidate launch geometry of the hot kernels on THIS host — the FMM
// same-level monopole/multipole kernels and the hydro flux sweep, each the
// ONE templated body of src/kernel instantiated per execution-space policy —
// plus the aggregation-batch sweep on the simulated Table 2/3 machine
// models. Winners are stored in the persistent autotune cache
// (kernel/autotune.hpp), so production runs with `autotune = true` start at
// the tuned geometry; per-(kernel, backend, width/tile) GFLOP/s land in
// BENCH_kernels.json. Exits nonzero if any tuned configuration loses to the
// fixed default it replaces.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cluster/event_sim.hpp"
#include "cluster/scenario_tree.hpp"
#include "fmm/kernels.hpp"
#include "fmm/node_data.hpp"
#include "fmm/stencil.hpp"
#include "hydro/pencil.hpp"
#include "kernel/autotune.hpp"
#include "kernel/fmm.hpp"
#include "kernel/hydro.hpp"
#include "physics/eos.hpp"
#include "support/bench_json.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace octo;
using namespace octo::fmm;
using octo::support::json_value;

namespace {

// ---- fixtures (same recipe the kernel agreement tests use) -----------------

node_moments make_moments(bool with_quadrupoles) {
    node_moments m;
    xoshiro256 rng(7);
    for (int i = 0; i < INX3; ++i) {
        m.m[i] = rng.uniform(0.1, 1.0);
        m.com[0][i] = rng.uniform(0, 1);
        m.com[1][i] = rng.uniform(0, 1);
        m.com[2][i] = rng.uniform(0, 1);
        if (with_quadrupoles) {
            for (auto& q : m.q) q[i] = rng.uniform(-1e-3, 1e-3);
        }
    }
    return m;
}

partner_buffer make_buffer(bool with_quadrupoles) {
    partner_buffer buf;
    xoshiro256 rng(11);
    for (int i = 0; i < partner_buffer::P3; ++i) {
        buf.m[i] = rng.uniform(0.1, 1.0);
        buf.x[i] = rng.uniform(-2, 3);
        buf.y[i] = rng.uniform(-2, 3);
        buf.z[i] = rng.uniform(-2, 3);
        if (with_quadrupoles) {
            for (auto& q : buf.q) q[i] = rng.uniform(-1e-3, 1e-3);
        }
    }
    buf.any = true;
    return buf;
}

/// Synthetic fully-filled leaf for the hydro sweep (every cell physical, so
/// no kernel branch sees garbage) — the same shape hydro::step tunes on.
const amr::subgrid& tuning_leaf() {
    using namespace octo::amr;
    static const subgrid leaf = [] {
        subgrid g;
        g.geom.origin = {-1.0, -1.0, -1.0};
        g.geom.dx = 2.0 / INX;
        const phys::ideal_gas_eos eos;
        const double gamma = eos.gamma();
        for (int i = 0; i < NX; ++i)
            for (int j = 0; j < NX; ++j)
                for (int kk = 0; kk < NX; ++kk) {
                    const double x = (i - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double y = (j - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double z = (kk - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double r2 = x * x + y * y + z * z;
                    const double rho = 1.0 + 0.5 * std::exp(-r2);
                    const dvec3 v{0.1 * y, -0.1 * x, 0.05 * z};
                    const double p = 1.0 + 0.25 * std::exp(-r2);
                    const double internal = p / (gamma - 1.0);
                    g.at(f_rho, i, j, kk) = rho;
                    g.at(f_sx, i, j, kk) = rho * v.x;
                    g.at(f_sy, i, j, kk) = rho * v.y;
                    g.at(f_sz, i, j, kk) = rho * v.z;
                    g.at(f_egas, i, j, kk) = internal + 0.5 * rho * norm2(v);
                    g.at(f_tau, i, j, kk) = eos.tau_from_internal(internal);
                    for (int s = 0; s < n_passive; ++s) {
                        g.at(first_passive + s, i, j, kk) = rho / n_passive;
                    }
                    g.at(f_lx, i, j, kk) = 0.01 * rho;
                    g.at(f_ly, i, j, kk) = -0.01 * rho;
                    g.at(f_lz, i, j, kk) = 0.02 * rho;
                }
        return g;
    }();
    return leaf;
}

// ---- measurement -----------------------------------------------------------

/// GFLOP/s of `body` (one call = `flops_per_call`): one warm-up call, then
/// enough timed reps to cover ~20 ms so the figure is stable across
/// candidates — which is all the argmax needs.
double measure_gflops(double flops_per_call, const std::function<void()>& body) {
    body(); // warm-up: first touch + icache
    octo::stopwatch sw;
    body();
    const double once = std::max(sw.seconds(), 1e-7);
    const int reps = std::clamp(static_cast<int>(0.02 / once), 2, 2000);
    sw.reset();
    for (int r = 0; r < reps; ++r) body();
    const double secs = std::max(sw.seconds(), 1e-9);
    return static_cast<double>(reps) * flops_per_call / secs / 1e9;
}

struct sweep_outcome {
    kernel::tuned_config best;
    double default_gflops = 0.0;
};

/// Sweep width x tile for one CPU kernel, print/emit every candidate, store
/// the winner in the cache under (machine="host", key, simd). The fixed
/// default (full pack width, untiled) is measured FIRST and ties keep the
/// earlier candidate, so tuned >= default by construction; a gpu-backend row
/// (the same double body the scalar policy runs) is reported for the table
/// but not tuned.
sweep_outcome host_sweep(const std::string& key, double flops_per_call,
                         const std::vector<int>& tiles, json_value& rows,
                         const std::function<void(const kernel::exec_config&)>& run) {
    const int def_w = static_cast<int>(simd::default_width);
    std::vector<kernel::tuned_config> cands;
    for (const int w : {def_w, 4, 2, 1}) {
        for (const int tile : tiles) {
            kernel::tuned_config c;
            c.width = w;
            c.tile = tile;
            cands.push_back(c);
        }
    }
    sweep_outcome out;
    bool have_best = false;
    for (auto& c : cands) {
        const kernel::exec_config cfg = c.exec();
        c.gflops = measure_gflops(flops_per_call, [&] { run(cfg); });
        const bool is_default = c.width == def_w && c.tile == 0;
        if (is_default) out.default_gflops = c.gflops;
        if (!have_best || c.gflops > out.best.gflops) {
            out.best = c;
            have_best = true;
        }
        std::printf("  %-18s %-7s w=%d tile=%-3d %9.2f GFLOP/s%s\n", key.c_str(),
                    "simd", c.width, c.tile, c.gflops, is_default ? "  (default)" : "");
        rows.push(json_value::object()
                      .add("kernel", key)
                      .add("backend", "simd")
                      .add("width", c.width)
                      .add("tile", c.tile)
                      .add("gflops", c.gflops)
                      .add("is_default", is_default));
    }
    // The modeled-gpu policy executes the same double instantiation as
    // exec::scalar — report it so the table shows all three backends.
    kernel::tuned_config gc;
    gc.backend = kernel::backend_kind::gpu;
    gc.width = 1;
    gc.tile = 0;
    gc.gflops = measure_gflops(flops_per_call, [&] { run(gc.exec()); });
    std::printf("  %-18s %-7s w=%d tile=%-3d %9.2f GFLOP/s\n", key.c_str(), "gpu",
                gc.width, gc.tile, gc.gflops);
    rows.push(json_value::object()
                  .add("kernel", key)
                  .add("backend", "gpu")
                  .add("width", gc.width)
                  .add("tile", gc.tile)
                  .add("gflops", gc.gflops)
                  .add("is_default", false));

    kernel::global_autotune().store("host", key, kernel::backend_kind::simd,
                                    out.best);
    std::printf("  -> tuned: w=%d tile=%d (%.2f GFLOP/s vs %.2f default, %+.1f%%)\n\n",
                out.best.width, out.best.tile, out.best.gflops, out.default_gflops,
                100.0 * (out.best.gflops / out.default_gflops - 1.0));
    return out;
}

} // namespace

int main() {
    std::printf("=== portable-kernel autotune sweep (ISSUE 7) ===\n\n");
    std::printf("cache: %s\n\n", kernel::global_autotune().path().c_str());

    json_value rows = json_value::array();
    json_value tuned = json_value::array();
    bool ok = true;

    // ---- host sweeps: FMM same-level kernels --------------------------------
    const auto mono_mom = make_moments(false);
    const auto mono_buf = make_buffer(false);
    const auto multi_mom = make_moments(true);
    const auto multi_buf = make_buffer(true);
    aligned_vector<double> invm(INX3);
    for (int i = 0; i < INX3; ++i) invm[i] = 1.0 / multi_mom.m[i];
    node_gravity out;
    kernel_options opt;
    opt.stencil = &interaction_stencil();

    std::printf("host: FMM monopole (receiver-row tiles)\n");
    const auto mono = host_sweep(
        "fmm.monopole", static_cast<double>(mono_kernel_flops()), {0, 8, 16, 32},
        rows, [&](const kernel::exec_config& cfg) {
            kernel::run_fmm_monopole(cfg, mono_mom, mono_buf, opt, out);
        });

    std::printf("host: FMM multipole\n");
    kernel_options mopt = opt;
    mopt.use_inner_mask = true;
    const auto multi = host_sweep(
        "fmm.multipole", static_cast<double>(multi_kernel_flops(true)),
        {0, 8, 16, 32}, rows, [&](const kernel::exec_config& cfg) {
            kernel::run_fmm_multipole(cfg, multi_mom, invm, multi_buf, mopt, out);
        });

    // ---- host sweep: hydro flux sweep (transverse-lane tiles) ---------------
    std::printf("host: hydro flux sweep (transverse-lane tiles)\n");
    const phys::ideal_gas_eos eos;
    hydro::pencil_workspace ws;
    hydro::leaf_flux_soa lf;
    lf.reset();
    double ms = 0.0;
    const double sweep_flops = 3.0 * amr::INX3 * 400.0; // modeled, per 3-axis pass
    const auto hyd = host_sweep(
        "hydro.leaf_fluxes", sweep_flops, {0, 16, 32}, rows,
        [&](const kernel::exec_config& cfg) {
            for (int axis = 0; axis < 3; ++axis) {
                kernel::run_leaf_fluxes(cfg, tuning_leaf(), axis, eos, true, ws,
                                        lf, &ms);
            }
        });

    struct named_outcome {
        const char* key;
        const sweep_outcome* o;
    };
    for (const auto& [key, o] : {named_outcome{"fmm.monopole", &mono},
                                 named_outcome{"fmm.multipole", &multi},
                                 named_outcome{"hydro.leaf_fluxes", &hyd}}) {
        tuned.push(json_value::object()
                       .add("kernel", key)
                       .add("machine", "host")
                       .add("backend", "simd")
                       .add("width", o->best.width)
                       .add("tile", o->best.tile)
                       .add("gflops", o->best.gflops)
                       .add("default_gflops", o->default_gflops)
                       .add("speedup", o->best.gflops / o->default_gflops));
        if (o->best.gflops < o->default_gflops) {
            std::printf("FAIL: tuned %s loses to the fixed default\n", key);
            ok = false;
        }
    }

    // ---- per-machine-model aggregation-batch sweep --------------------------
    // The gpu_batch knob feeds the PR-6 aggregation executor; on the modeled
    // nodes it is swept through the discrete-event simulator (the same model
    // behind BENCH_gpu_streams.json), on the FMM-only burst that isolates the
    // kernel path aggregation changes (the full step's overlapped CPU work
    // otherwise hides the batch geometry entirely). Default batch 16 is
    // measured first and kept on ties.
    std::printf("machine models: fmm.same_level aggregation batch (FMM burst)\n");
    const auto st = cluster::build_v1309_tree(14);
    auto work = cluster::v1309_workload();
    work.other_flops_per_leaf = 0.0;
    struct machine_case {
        cluster::node_spec node;
        std::string key; ///< autotune machine key = base model name
    };
    const std::vector<machine_case> machines = {
        {cluster::with_v100(cluster::xeon_e5_2660v3(10), 1),
         cluster::xeon_e5_2660v3(10).name},
        {cluster::with_v100(cluster::xeon_e5_2660v3(20), 1),
         cluster::xeon_e5_2660v3(20).name},
        {cluster::with_p100(cluster::piz_daint_node()),
         cluster::piz_daint_node().name},
    };
    json_value jmachines = json_value::array();
    for (const auto& mc : machines) {
        json_value jrows = json_value::array();
        double best_gf = 0.0, def_gf = 0.0, def_mk = 0.0, best_mk = 0.0;
        unsigned best_batch = 16;
        bool first = true;
        for (const unsigned batch : {16u, 1u, 2u, 4u, 8u, 32u, 64u, 128u}) {
            cluster::node_sim_config cfg;
            cfg.node = mc.node;
            cfg.work = work;
            cfg.leaves = st.leaves;
            cfg.refined = st.subgrids - st.leaves;
            cfg.aggregate = true;
            cfg.aggregation_batch = batch;
            const auto r = cluster::simulate_node_step(cfg);
            const double gf =
                static_cast<double>(r.fmm_flops) / r.makespan_s / 1e9;
            if (batch == 16u) {
                def_gf = gf;
                def_mk = r.makespan_s;
            }
            if (first || gf > best_gf) {
                best_gf = gf;
                best_mk = r.makespan_s;
                best_batch = batch;
                first = false;
            }
            std::printf("  %-44s batch=%-4u %8.3fs makespan %9.1f GFLOP/s%s\n",
                        mc.node.name.c_str(), batch, r.makespan_s, gf,
                        batch == 16u ? "  (default)" : "");
            jrows.push(json_value::object()
                           .add("batch", static_cast<int>(batch))
                           .add("makespan_s", r.makespan_s)
                           .add("gflops", gf)
                           .add("is_default", batch == 16u));
        }
        // Age-flush sweep at the tuned batch: the default timeout (100us) is
        // measured first and kept on ties, so the tuned flush can never lose
        // to the default.
        json_value jflush = json_value::array();
        double best_flush_gf = 0.0, def_flush_gf = 0.0;
        double best_flush = 100.0;
        bool flush_first = true;
        for (const double flush_us :
             {100.0, 1.0, 5.0, 20.0, 50.0, 500.0, 2000.0, 10000.0}) {
            cluster::node_sim_config cfg;
            cfg.node = mc.node;
            cfg.work = work;
            cfg.leaves = st.leaves;
            cfg.refined = st.subgrids - st.leaves;
            cfg.aggregate = true;
            cfg.aggregation_batch = best_batch;
            cfg.flush_after_us = flush_us;
            const auto r = cluster::simulate_node_step(cfg);
            const double gf =
                static_cast<double>(r.fmm_flops) / r.makespan_s / 1e9;
            if (flush_us == 100.0) def_flush_gf = gf;
            if (flush_first || gf > best_flush_gf) {
                best_flush_gf = gf;
                best_flush = flush_us;
                flush_first = false;
            }
            jflush.push(json_value::object()
                            .add("flush_us", flush_us)
                            .add("gflops", gf)
                            .add("is_default", flush_us == 100.0));
        }

        kernel::tuned_config tc;
        tc.backend = kernel::backend_kind::gpu;
        tc.width = 1;
        tc.tile = 0;
        tc.gpu_batch = best_batch;
        tc.flush_us = best_flush;
        tc.gflops = best_flush_gf;
        kernel::global_autotune().store(mc.key, "fmm.same_level",
                                        kernel::backend_kind::gpu, tc);
        std::printf("  -> tuned: batch=%u (%.1f GFLOP/s vs %.1f default, %+.1f%%), "
                    "flush=%.0fus (%+.1f%%)\n\n",
                    best_batch, best_gf, def_gf,
                    100.0 * (best_gf / def_gf - 1.0), best_flush,
                    100.0 * (best_flush_gf / def_flush_gf - 1.0));
        jmachines.push(json_value::object()
                           .add("machine", mc.key)
                           .add("node", mc.node.name)
                           .add("kernel", "fmm.same_level")
                           .add("backend", "gpu")
                           .add("tuned_batch", static_cast<int>(best_batch))
                           .add("default_batch", 16)
                           .add("makespan_tuned_s", best_mk)
                           .add("makespan_default_s", def_mk)
                           .add("gflops", best_gf)
                           .add("default_gflops", def_gf)
                           .add("speedup", best_gf / def_gf)
                           .add("sweep", jrows)
                           .add("tuned_flush_us", best_flush)
                           .add("default_flush_us", 100.0)
                           .add("flush_gflops", best_flush_gf)
                           .add("default_flush_gflops", def_flush_gf)
                           .add("flush_sweep", jflush));
        if (best_gf < def_gf) {
            std::printf("FAIL: tuned batch loses to the default on %s\n",
                        mc.key.c_str());
            ok = false;
        }
        if (best_flush_gf < def_flush_gf) {
            std::printf("FAIL: tuned flush loses to the default on %s\n",
                        mc.key.c_str());
            ok = false;
        }
    }

    json_value root = json_value::object();
    root.add("bench", "kernels")
        .add("cache", kernel::global_autotune().path())
        .add("host_sweep", rows)
        .add("tuned", tuned)
        .add("machines", jmachines)
        .add("tuned_beats_default", ok);
    octo::support::write_bench_json("BENCH_kernels.json", root);
    std::printf("wrote BENCH_kernels.json (autotune cache: %s)\n",
                kernel::global_autotune().path().c_str());
    return ok ? 0 : 1;
}

// Microbenchmarks of the hot kernels on THIS host (real measurements):
// the FMM same-level kernels (vectorized vs scalar — the Vc/CUDA template
// trick of §5.1), the Green's-function evaluation, PPM reconstruction and
// the KT flux. GFLOP/s are derived from the hand-counted per-interaction
// FLOP constants (fmm/kernels.hpp).

#include <benchmark/benchmark.h>

#include "fmm/kernels.hpp"
#include "hydro/flux.hpp"
#include "hydro/reconstruct.hpp"
#include "support/rng.hpp"

using namespace octo;
using namespace octo::fmm;

namespace {

node_moments make_moments(bool with_quadrupoles) {
    node_moments m;
    xoshiro256 rng(7);
    for (int i = 0; i < INX3; ++i) {
        m.m[i] = rng.uniform(0.1, 1.0);
        m.com[0][i] = rng.uniform(0, 1);
        m.com[1][i] = rng.uniform(0, 1);
        m.com[2][i] = rng.uniform(0, 1);
        if (with_quadrupoles) {
            for (auto& q : m.q) q[i] = rng.uniform(-1e-3, 1e-3);
        }
    }
    return m;
}

partner_buffer make_buffer(bool with_quadrupoles) {
    partner_buffer buf;
    xoshiro256 rng(11);
    for (int i = 0; i < partner_buffer::P3; ++i) {
        buf.m[i] = rng.uniform(0.1, 1.0);
        buf.x[i] = rng.uniform(-2, 3);
        buf.y[i] = rng.uniform(-2, 3);
        buf.z[i] = rng.uniform(-2, 3);
        if (with_quadrupoles) {
            for (auto& q : buf.q) q[i] = rng.uniform(-1e-3, 1e-3);
        }
    }
    buf.any = true;
    return buf;
}

template <class T>
void bench_monopole(benchmark::State& state) {
    const auto mom = make_moments(false);
    const auto buf = make_buffer(false);
    node_gravity out;
    kernel_options opt;
    for (auto _ : state) {
        monopole_kernel<T>(mom, buf, opt, out);
        benchmark::DoNotOptimize(out.L[0][0]);
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * mono_kernel_flops()),
        benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(bench_monopole<double>)->Name("fmm_monopole_scalar");
BENCHMARK(bench_monopole<simd::dpack>)->Name("fmm_monopole_simd");

template <class T>
void bench_multipole(benchmark::State& state) {
    const auto mom = make_moments(true);
    aligned_vector<double> invm(INX3);
    for (int i = 0; i < INX3; ++i) invm[i] = 1.0 / mom.m[i];
    const auto buf = make_buffer(true);
    node_gravity out;
    kernel_options opt;
    opt.use_inner_mask = true;
    for (auto _ : state) {
        multipole_kernel<T>(mom, invm, buf, opt, out);
        benchmark::DoNotOptimize(out.L[0][0]);
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * multi_kernel_flops(true)),
        benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(bench_multipole<double>)->Name("fmm_multipole_scalar");
BENCHMARK(bench_multipole<simd::dpack>)->Name("fmm_multipole_simd");

void bench_greens(benchmark::State& state) {
    xoshiro256 rng(3);
    double x[3] = {rng.uniform(0.5, 2), rng.uniform(0.5, 2), rng.uniform(0.5, 2)};
    expansion<double> D;
    for (auto _ : state) {
        const double r2 = x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
        greens_d3(x, r2, D);
        benchmark::DoNotOptimize(D[0]);
        x[0] += 1e-9; // defeat CSE
    }
}
BENCHMARK(bench_greens);

void bench_ppm(benchmark::State& state) {
    double q[64 + 4];
    xoshiro256 rng(5);
    for (auto& v : q) v = rng.uniform(0, 1);
    double lo[64], hi[64];
    for (auto _ : state) {
        hydro::ppm_reconstruct(q + 2, 64, lo, hi);
        benchmark::DoNotOptimize(lo[0]);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(bench_ppm);

void bench_kt_flux(benchmark::State& state) {
    phys::ideal_gas_eos eos(1.4);
    hydro::state uL{}, uR{};
    uL[amr::f_rho] = 1.0;
    uL[amr::f_sx] = 0.3;
    uL[amr::f_egas] = 2.0;
    uL[amr::f_tau] = 1.0;
    uR = uL;
    uR[amr::f_rho] = 0.5;
    for (auto _ : state) {
        const auto f = hydro::kt_flux(uL, uR, 0, eos);
        benchmark::DoNotOptimize(f[0]);
    }
}
BENCHMARK(bench_kt_flux);

} // namespace

BENCHMARK_MAIN();

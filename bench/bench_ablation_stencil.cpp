// Reproduces the §4.3 ablation: the stencil-based struct-of-arrays FMM
// kernels versus the legacy interaction-list array-of-structs organisation.
// Paper: "this led to a speedup of the total application runtime between
// 1.90 and 2.22 on AVX512 CPUs and between 1.23 and 1.35 on AVX2 CPUs" —
// with the FMM at ~40% of total runtime, that corresponds to kernel-level
// speedups of roughly 2-6x. Run on THIS host, real measurements.

#include <benchmark/benchmark.h>

#include "fmm/kernels.hpp"
#include "fmm/legacy_ilist.hpp"
#include "fmm/stencil.hpp"
#include "kernel/fmm.hpp"
#include "support/rng.hpp"

using namespace octo;
using namespace octo::fmm;

namespace {

node_moments make_moments() {
    node_moments m;
    xoshiro256 rng(7);
    for (int i = 0; i < INX3; ++i) {
        m.m[i] = rng.uniform(0.1, 1.0);
        m.com[0][i] = rng.uniform(0, 1);
        m.com[1][i] = rng.uniform(0, 1);
        m.com[2][i] = rng.uniform(0, 1);
    }
    return m;
}

partner_buffer make_buffer() {
    partner_buffer buf;
    xoshiro256 rng(11);
    for (int i = 0; i < partner_buffer::P3; ++i) {
        buf.m[i] = rng.uniform(0.1, 1.0);
        buf.x[i] = rng.uniform(-2, 3);
        buf.y[i] = rng.uniform(-2, 3);
        buf.z[i] = rng.uniform(-2, 3);
    }
    buf.any = true;
    return buf;
}

void bench_stencil_soa_vectorized(benchmark::State& state) {
    const auto mom = make_moments();
    const auto buf = make_buffer();
    node_gravity out;
    kernel_options opt;
    opt.stencil = &interaction_stencil();
    for (auto _ : state) {
        kernel::fmm_monopole<kernel::exec::simd<simd::default_width>>(mom, buf,
                                                                      opt, 0, out);
        benchmark::DoNotOptimize(out.L[0][0]);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(interactions_per_launch(false)));
}
BENCHMARK(bench_stencil_soa_vectorized);

void bench_stencil_soa_scalar(benchmark::State& state) {
    const auto mom = make_moments();
    const auto buf = make_buffer();
    node_gravity out;
    kernel_options opt;
    opt.stencil = &interaction_stencil();
    for (auto _ : state) {
        kernel::fmm_monopole<kernel::exec::scalar>(mom, buf, opt, 0, out);
        benchmark::DoNotOptimize(out.L[0][0]);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(interactions_per_launch(false)));
}
BENCHMARK(bench_stencil_soa_scalar);

void bench_legacy_ilist_aos(benchmark::State& state) {
    const auto mom = make_moments();
    const auto buf = make_buffer();
    auto receivers = to_aos_receivers(mom);
    const auto partners = to_aos_partners(buf);
    const auto list = build_interaction_list();
    for (auto _ : state) {
        legacy_monopole_kernel(list, receivers, partners);
        benchmark::DoNotOptimize(receivers[0].gx);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(list.pairs.size()));
}
BENCHMARK(bench_legacy_ilist_aos);

} // namespace

BENCHMARK_MAIN();

// Ablation of the angular-momentum-conservation strategy (the design choice
// DESIGN.md calls out): am_mode::none (standard FMM), central_projection
// (torque-free pair forces) and spin_deposit (full-accuracy forces + spin
// ledger). Reports force accuracy against direct summation, conservation
// residuals, and kernel cost — the accuracy/conservation trade the paper's
// §2 discusses ("it is not clear how to ensure the conservation of all
// momenta for polynomials of higher degree").

#include <cmath>
#include <cstdio>

#include "amr/tree.hpp"
#include "fmm/direct.hpp"
#include "fmm/solver.hpp"
#include "support/timer.hpp"

using namespace octo;
using namespace octo::fmm;
using amr::INX;

namespace {

amr::tree make_scene() {
    amr::box_geometry g;
    g.origin = {-0.5, -0.5, -0.5};
    g.dx = 1.0 / INX;
    amr::tree t(g);
    t.refine(amr::root_key);
    t.refine(amr::key_child(amr::root_key, 0));
    t.balance21();
    for (const auto k : t.leaves_sfc()) {
        auto& sg = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = sg.geom.cell_center(i, j, kk);
                    const dvec3 c1{-0.18, 0.02, 0.01};
                    const dvec3 c2{0.22, -0.03, -0.02};
                    sg.interior(amr::f_rho, i, j, kk) =
                        std::exp(-norm2(r - c1) / 0.01) +
                        0.3 * std::exp(-norm2(r - c2) / 0.006);
                }
    }
    return t;
}

} // namespace

int main() {
    std::printf("=== Ablation: angular-momentum conservation strategy ===\n\n");
    auto t = make_scene();
    const auto direct = solve_direct(t);

    const am_mode modes[] = {am_mode::none, am_mode::central_projection,
                             am_mode::spin_deposit};
    const char* names[] = {"none (standard FMM)", "central_projection",
                           "spin_deposit (default)"};

    std::printf("%-26s %12s %14s %16s %10s\n", "mode", "force RMS err",
                "|net torque|", "|torque+ledger|", "solve[s]");
    for (int m = 0; m < 3; ++m) {
        solver s({.conserve = modes[m]});
        octo::stopwatch sw;
        s.solve(t);
        const double secs = sw.seconds();

        double en = 0, ed = 0, tq_scale = 0;
        for (const auto k : t.leaves_sfc()) {
            const auto& gf = s.gravity(k);
            const auto& gd = direct.gravity.at(k);
            const auto& mom = s.moments(k);
            for (int c = 0; c < amr::INX3; ++c) {
                const dvec3 df{gf.gx[c] - gd.gx[c], gf.gy[c] - gd.gy[c],
                               gf.gz[c] - gd.gz[c]};
                en += norm2(df);
                ed += norm2(dvec3{gd.gx[c], gd.gy[c], gd.gz[c]});
                const dvec3 r{mom.com[0][c], mom.com[1][c], mom.com[2][c]};
                tq_scale += norm(
                    cross(r, mom.m[c] * dvec3{gf.gx[c], gf.gy[c], gf.gz[c]}));
            }
        }
        const dvec3 tq = s.total_torque(t);
        const dvec3 ledger = s.total_spin_torque(t);
        std::printf("%-26s %12.2e %14.2e %16.2e %10.3f\n", names[m],
                    std::sqrt(en / ed), norm(tq) / tq_scale,
                    norm(tq + ledger) / tq_scale, secs);
    }

    std::printf("\nreading: 'none' is most accurate but violates torque at "
                "truncation level;\n'central_projection' zeroes the torque "
                "at ~10x the force error;\n'spin_deposit' keeps the accuracy "
                "of 'none' while the ledger closes to rounding\n(the variant "
                "the coupled solver uses — Octo-Tiger's machine-precision "
                "claim).\n");
    return 0;
}

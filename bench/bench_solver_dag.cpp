// Solve-to-solve latency of the gravity solver on a deep AMR tree — the
// before/after measurement for the futurized dependency DAG plus workspace
// recycling. Two configurations run the same tree:
//
//   seed-equivalent : barriered schedule, a fresh solver per solve, buffer
//                     recycling disabled (every aligned buffer goes through
//                     operator new, as the seed did);
//   futurized       : per-node dependency DAG, one solver reused across
//                     solves (workspace persisted via the tree revision),
//                     recycler enabled — steady-state solves allocate nothing.
//
// The tree is the level-14 analogue used for profiling: blob density refined
// toward the domain center to level 5 (1273 nodes / 1114 leaves at INX = 8),
// the same per-node work a production level-14 run does per octree node.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "amr/tree.hpp"
#include "fmm/solver.hpp"
#include "runtime/apex.hpp"
#include "support/buffer_recycler.hpp"
#include "support/timer.hpp"

using namespace octo;
using namespace octo::fmm;
using amr::box_geometry;
using amr::INX;

namespace {

amr::tree make_scene(int max_level) {
    box_geometry g;
    g.origin = {-0.5, -0.5, -0.5};
    g.dx = 1.0 / INX;
    amr::tree t(g);
    t.refine_by(
        [](amr::node_key, const box_geometry& bg) {
            const dvec3 c = bg.cell_center(INX / 2, INX / 2, INX / 2);
            return norm(c) < 0.28 * (bg.dx * INX * 8);
        },
        max_level);
    for (const auto k : t.leaves_sfc()) {
        auto& sg = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = sg.geom.cell_center(i, j, kk);
                    const dvec3 c1{-0.18, 0.02, 0.01};
                    const dvec3 c2{0.22, -0.03, -0.02};
                    sg.interior(amr::f_rho, i, j, kk) =
                        std::exp(-norm2(r - c1) / 0.01) +
                        0.3 * std::exp(-norm2(r - c2) / 0.006);
                }
    }
    return t;
}

struct run_result {
    double first_ms = 0;  ///< cold solve (workspace + pool build-up)
    double steady_ms = 0; ///< mean of the remaining solves
};

} // namespace

int main(int argc, char** argv) {
    const int max_level = std::max(0, argc > 1 ? std::atoi(argv[1]) : 5);
    const int solves = std::max(1, argc > 2 ? std::atoi(argv[2]) : 3);

    std::printf("=== fmm::solve latency: barriered+fresh vs futurized+recycled "
                "===\n\n");
    auto t = make_scene(max_level);
    std::printf("tree: %zu nodes, %zu leaves, max_level %d, %d solves\n\n",
                t.size(), t.leaf_count(), t.max_level(), solves);

    auto& rec = buffer_recycler::instance();
    run_result seed, dag;

    { // Seed-equivalent: no recycling, no workspace reuse, global barriers.
        rec.set_enabled(false);
        rec.clear();
        std::printf("--- seed-equivalent (barriered, fresh workspace) ---\n");
        for (int i = 0; i < solves; ++i) {
            solver s({.conserve = am_mode::spin_deposit, .futurized = false});
            stopwatch sw;
            s.solve(t);
            const double ms = sw.seconds() * 1e3;
            std::printf("solve %d: %9.3f ms\n", i, ms);
            if (i == 0) seed.first_ms = ms;
            else seed.steady_ms += ms / (solves - 1);
        }
        rec.set_enabled(true);
    }

    { // This PR's configuration: DAG schedule, persistent recycled workspace.
        rec.clear();
        std::printf("\n--- futurized (DAG, recycled workspace) ---\n");
        solver s({.conserve = am_mode::spin_deposit, .futurized = true});
        for (int i = 0; i < solves; ++i) {
            const auto before = rec.stats();
            stopwatch sw;
            s.solve(t);
            const double ms = sw.seconds() * 1e3;
            const auto after = rec.stats();
            std::printf("solve %d: %9.3f ms   recycler hits %llu  misses %llu\n",
                        i, ms,
                        static_cast<unsigned long long>(after.hits - before.hits),
                        static_cast<unsigned long long>(after.misses -
                                                        before.misses));
            if (i == 0) dag.first_ms = ms;
            else dag.steady_ms += ms / (solves - 1);
        }
    }

    const auto& apex = rt::apex_registry::instance();
    std::printf("\napex counters: fmm.dag_tasks=%llu  fmm.recycler_hits=%llu  "
                "fmm.recycler_misses=%llu\n",
                static_cast<unsigned long long>(apex.counter("fmm.dag_tasks")),
                static_cast<unsigned long long>(
                    apex.counter("fmm.recycler_hits")),
                static_cast<unsigned long long>(
                    apex.counter("fmm.recycler_misses")));

    std::printf("\n%-42s %12s %12s\n", "configuration", "first[ms]",
                "steady[ms]");
    std::printf("%-42s %12.3f %12.3f\n", "barriered + fresh workspace (seed)",
                seed.first_ms, seed.steady_ms);
    std::printf("%-42s %12.3f %12.3f\n", "futurized + recycled workspace",
                dag.first_ms, dag.steady_ms);
    if (solves > 1)
        std::printf("\nsteady-state speedup: %.2fx\n",
                    seed.steady_ms / dag.steady_ms);
    else
        std::printf("\nsteady-state speedup: n/a (need >= 2 solves)\n");
    return 0;
}

// Tests for the FMM gravity solver: the 1074-element stencil derivation,
// Taylor algebra against finite differences, exactness of the single-level
// solve versus direct summation, multi-level accuracy, and the
// machine-precision momentum/angular-momentum conservation claims.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "amr/tree.hpp"
#include "fmm/direct.hpp"
#include "fmm/kernels.hpp"
#include "fmm/legacy_ilist.hpp"
#include "fmm/solver.hpp"
#include "fmm/stencil.hpp"
#include "fmm/taylor.hpp"
#include "kernel/fmm.hpp"
#include "runtime/thread_pool.hpp"
#include "support/buffer_recycler.hpp"
#include "support/rng.hpp"

namespace {

using namespace octo;
using namespace octo::fmm;
using amr::box_geometry;
using amr::INX;
using amr::node_key;
using amr::root_key;
using amr::tree;

// ---- stencil ----------------------------------------------------------------

TEST(Stencil, HasExactly1074Elements) {
    // Paper §4.3: "each cell interacts with 1074 of its close neighbors".
    EXPECT_EQ(interaction_stencil().size(), 1074u);
}

TEST(Stencil, IsSymmetric) {
    std::set<std::tuple<int, int, int>> s;
    for (const auto& e : interaction_stencil()) s.insert({e.dx, e.dy, e.dz});
    for (const auto& [x, y, z] : s) {
        EXPECT_TRUE(s.count({-x, -y, -z})) << x << "," << y << "," << z;
    }
}

TEST(Stencil, ReachIsFive) { EXPECT_EQ(stencil_reach(), 5); }

TEST(Stencil, InnerMaskMatchesBallOfEight) {
    // |d|^2 <= 8 has 92 nonzero lattice points.
    EXPECT_EQ(inner_stencil_size(), 92);
    for (const auto& e : interaction_stencil()) {
        const int d2 = e.dx * e.dx + e.dy * e.dy + e.dz * e.dz;
        EXPECT_EQ(e.inner, d2 <= 8);
    }
}

TEST(Stencil, InteractionsPerLaunchMatchesPaper) {
    // 512 cells x 1074 = 549'888 interactions per kernel launch (paper §4.3).
    EXPECT_EQ(interactions_per_launch(false), 549888u);
    EXPECT_EQ(interactions_per_launch(true), 549888u - 512u * 92u);
}

TEST(Stencil, RootStencilCoversFullSubgrid) {
    EXPECT_EQ(root_stencil().size(), 15u * 15u * 15u - 1u);
    // Root stencil is a superset of the regular one.
    std::set<std::tuple<int, int, int>> root;
    for (const auto& e : root_stencil()) root.insert({e.dx, e.dy, e.dz});
    for (const auto& e : interaction_stencil()) {
        EXPECT_TRUE(root.count({e.dx, e.dy, e.dz}));
    }
}

TEST(Stencil, ExactlyOnceCoverageAcrossLevels) {
    // For any pair of level-L cells, the two-level criterion must select the
    // pair at exactly one level (when all nodes are refined). We verify by
    // walking offset chains: a level-l offset d has parent offset computed
    // from the actual cell coordinates.
    // Use cells a (fixed) and b ranging over a 16^3 box at level 4 of a
    // uniform tree; count at how many levels the pair is selected.
    const int L = 4;
    const ivec3 a{5, 6, 7}; // arbitrary fine-cell coordinates
    std::set<std::tuple<int, int, int>> stencil_set;
    for (const auto& e : interaction_stencil()) {
        stencil_set.insert({e.dx, e.dy, e.dz});
    }
    (void)stencil_set;
    auto inner = [](const ivec3& d) {
        return d.x * d.x + d.y * d.y + d.z * d.z <= 8;
    };
    for (int bx = 0; bx < 16; ++bx)
        for (int by = 0; by < 16; ++by)
            for (int bz = 0; bz < 16; ++bz) {
                const ivec3 b{bx, by, bz};
                if (b == a) continue;
                int selected = 0;
                ivec3 ca = a, cb = b;
                for (int level = L; level >= 0; --level) {
                    const ivec3 d{cb.x - ca.x, cb.y - ca.y, cb.z - ca.z};
                    const ivec3 pa{ca.x / 2, ca.y / 2, ca.z / 2};
                    const ivec3 pb{cb.x / 2, cb.y / 2, cb.z / 2};
                    const ivec3 p{pb.x - pa.x, pb.y - pa.y, pb.z - pa.z};
                    const bool is_root = (level == 0);
                    bool sel;
                    if (is_root) {
                        // Root: full stencil minus the inner (deferred) ball.
                        sel = !inner(d);
                    } else {
                        // Computed here iff the ACTUAL parents are not well
                        // separated and the pair is not deferred to children.
                        sel = inner(p) && !inner(d);
                        // Consistency: selection must be what the stencil's
                        // parity mask encodes.
                        bool mask_sel = false;
                        for (const auto& e : interaction_stencil()) {
                            if (e.dx == d.x && e.dy == d.y && e.dz == d.z) {
                                const int bit = (ca.x & 1) | ((ca.y & 1) << 1) |
                                                ((ca.z & 1) << 2);
                                mask_sel = ((e.parity_mask >> bit) & 1) != 0 &&
                                           !e.inner;
                            }
                        }
                        EXPECT_EQ(sel, mask_sel)
                            << "d=(" << d.x << "," << d.y << "," << d.z << ")";
                    }
                    if (sel) ++selected;
                    ca = pa;
                    cb = pb;
                }
                // At the leaf level (L) the inner ball IS computed (leaves
                // cannot defer), so add it back:
                const ivec3 d0{b.x - a.x, b.y - a.y, b.z - a.z};
                if (inner(d0)) ++selected;
                EXPECT_EQ(selected, 1)
                    << "pair (" << b.x << "," << b.y << "," << b.z << ")";
            }
}

// ---- Taylor algebra ---------------------------------------------------------

TEST(Taylor, GreensMatchesFiniteDifferences) {
    const double x0[3] = {1.3, -0.7, 2.1};
    const double r2 = x0[0] * x0[0] + x0[1] * x0[1] + x0[2] * x0[2];
    expansion<double> D;
    greens_d3(x0, r2, D);

    auto f = [](const double x[3]) {
        return 1.0 / std::sqrt(x[0] * x[0] + x[1] * x[1] + x[2] * x[2]);
    };
    EXPECT_NEAR(D[0], f(x0), 1e-14);

    const double h = 1e-5;
    for (int i = 0; i < 3; ++i) {
        double xp[3] = {x0[0], x0[1], x0[2]};
        double xm[3] = {x0[0], x0[1], x0[2]};
        xp[i] += h;
        xm[i] -= h;
        EXPECT_NEAR(D[1 + i], (f(xp) - f(xm)) / (2 * h), 1e-8) << i;
    }
    for (int i = 0; i < 3; ++i)
        for (int j = i; j < 3; ++j) {
            double xpp[3] = {x0[0], x0[1], x0[2]};
            double xpm[3] = {x0[0], x0[1], x0[2]};
            double xmp[3] = {x0[0], x0[1], x0[2]};
            double xmm[3] = {x0[0], x0[1], x0[2]};
            xpp[i] += h; xpp[j] += h;
            xpm[i] += h; xpm[j] -= h;
            xmp[i] -= h; xmp[j] += h;
            xmm[i] -= h; xmm[j] -= h;
            const double fd = (f(xpp) - f(xpm) - f(xmp) + f(xmm)) / (4 * h * h);
            EXPECT_NEAR(D[idx2(i, j)], fd, 1e-5) << i << j;
        }
}

TEST(Taylor, ThirdDerivativesAreTraceless) {
    // Laplacian of 1/r is zero: trace over any two indices of D3 vanishes.
    const double x0[3] = {0.9, 1.4, -0.6};
    const double r2 = x0[0] * x0[0] + x0[1] * x0[1] + x0[2] * x0[2];
    expansion<double> D;
    greens_d3(x0, r2, D);
    for (int k = 0; k < 3; ++k) {
        double tr = 0.0;
        for (int i = 0; i < 3; ++i) {
            int a = std::min(i, std::min(i, k));
            int arr[3] = {i, i, k};
            std::sort(arr, arr + 3);
            a = idx3(arr[0], arr[1], arr[2]);
            tr += D[a];
        }
        EXPECT_NEAR(tr, 0.0, 1e-12) << k;
    }
    // Second derivatives too.
    EXPECT_NEAR(D[idx2(0, 0)] + D[idx2(1, 1)] + D[idx2(2, 2)], 0.0, 1e-12);
}

TEST(Taylor, EvaluateMatchesPolynomial) {
    // Build an expansion with known coefficients and evaluate directly.
    expansion<double> L;
    L.fill(0.0);
    L[0] = 2.0;         // constant
    L[1] = 1.0;         // d/dx
    L[idx2(0, 1)] = 3.0; // d2/dxdy
    const double d[3] = {0.2, -0.1, 0.4};
    // phi = 2 + 1*dx + 0.5*mult*3*dx*dy with mult2(0,1)=2 -> 3*dx*dy
    EXPECT_NEAR(evaluate(L, d), 2.0 + 0.2 + 3.0 * 0.2 * (-0.1), 1e-14);
    double grad[3];
    evaluate_gradient(L, d, grad);
    EXPECT_NEAR(grad[0], 1.0 + 3.0 * (-0.1), 1e-14);
    EXPECT_NEAR(grad[1], 3.0 * 0.2, 1e-14);
    EXPECT_NEAR(grad[2], 0.0, 1e-14);
}

TEST(Taylor, ShiftComposesExactly) {
    // Shifting an order-3 expansion is exact: evaluate(shift(L,a), b) ==
    // evaluate(L, a+b) as a polynomial identity.
    xoshiro256 rng(5);
    expansion<double> L;
    for (auto& c : L) c = rng.uniform(-1, 1);
    const double a[3] = {0.3, -0.2, 0.1};
    const double b[3] = {-0.15, 0.25, 0.05};
    const double ab[3] = {a[0] + b[0], a[1] + b[1], a[2] + b[2]};

    expansion<double> shifted;
    shifted.fill(0.0);
    shift_expansion(L, a, shifted);
    EXPECT_NEAR(evaluate(shifted, b), evaluate(L, ab), 1e-12);

    double g1[3], g2[3];
    evaluate_gradient(shifted, b, g1);
    evaluate_gradient(L, ab, g2);
    for (int i = 0; i < 3; ++i) EXPECT_NEAR(g1[i], g2[i], 1e-12);
}

TEST(Taylor, GradientIsDerivativeOfEvaluate) {
    xoshiro256 rng(17);
    expansion<double> L;
    for (auto& c : L) c = rng.uniform(-1, 1);
    const double d[3] = {0.12, 0.34, -0.21};
    double grad[3];
    evaluate_gradient(L, d, grad);
    const double h = 1e-6;
    for (int i = 0; i < 3; ++i) {
        double dp[3] = {d[0], d[1], d[2]};
        double dm[3] = {d[0], d[1], d[2]};
        dp[i] += h;
        dm[i] -= h;
        EXPECT_NEAR(grad[i], (evaluate(L, dp) - evaluate(L, dm)) / (2 * h), 1e-7);
    }
}

// ---- solver -----------------------------------------------------------------

box_geometry unit_root() {
    box_geometry g;
    g.origin = {-0.5, -0.5, -0.5};
    g.dx = 1.0 / INX;
    return g;
}

/// Fill a leaf with two off-center gaussian blobs (binary-like).
void fill_blobs(tree& t) {
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const dvec3 c1{-0.18, 0.02, 0.01};
                    const dvec3 c2{0.22, -0.03, -0.02};
                    const double rho = std::exp(-norm2(r - c1) / 0.01) +
                                       0.3 * std::exp(-norm2(r - c2) / 0.006);
                    g.interior(amr::f_rho, i, j, kk) = rho;
                }
    }
}

TEST(Solver, SingleLevelMatchesDirectSummationExactly) {
    // With only the root node, every pair is a monopole pair through the full
    // root stencil: the FMM must equal direct summation to rounding.
    tree t(unit_root());
    fill_blobs(t);
    solver s({.conserve = am_mode::spin_deposit});
    s.solve(t);
    const auto direct = solve_direct(t);

    const auto& gf = s.gravity(root_key);
    const auto& gd = direct.gravity.at(root_key);
    double max_rel = 0;
    for (int c = 0; c < amr::INX3; ++c) {
        const double mag = std::abs(gd.gx[c]) + std::abs(gd.gy[c]) +
                           std::abs(gd.gz[c]) + 1e-30;
        max_rel = std::max(max_rel, std::abs(gf.gx[c] - gd.gx[c]) / mag);
        max_rel = std::max(max_rel, std::abs(gf.gy[c] - gd.gy[c]) / mag);
        max_rel = std::max(max_rel, std::abs(gf.gz[c] - gd.gz[c]) / mag);
        EXPECT_NEAR(gf.phi[c], gd.phi[c], std::abs(gd.phi[c]) * 1e-12);
    }
    EXPECT_LT(max_rel, 1e-11);
}

TEST(Solver, TwoLevelAccuracyAgainstDirect) {
    tree t(unit_root());
    t.refine(root_key);
    fill_blobs(t);
    solver s({.conserve = am_mode::spin_deposit});
    s.solve(t);
    const auto direct = solve_direct(t);

    double err_num = 0, err_den = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& gf = s.gravity(k);
        const auto& gd = direct.gravity.at(k);
        for (int c = 0; c < amr::INX3; ++c) {
            const dvec3 df{gf.gx[c] - gd.gx[c], gf.gy[c] - gd.gy[c],
                           gf.gz[c] - gd.gz[c]};
            const dvec3 dd{gd.gx[c], gd.gy[c], gd.gz[c]};
            err_num += norm2(df);
            err_den += norm2(dd);
        }
    }
    const double rel = std::sqrt(err_num / err_den);
    // Expansion + central-projection truncation error; order-3 expansions
    // with theta ~ 0.7 put this in the percent range.
    EXPECT_LT(rel, 0.02);
    EXPECT_GT(rel, 0.0); // sanity: levels actually differ
}

TEST(Solver, ThreeLevelAccuracyAgainstDirect) {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(amr::key_child(root_key, 0));
    t.refine(amr::key_child(root_key, 7));
    t.balance21();
    fill_blobs(t);
    solver s({.conserve = am_mode::spin_deposit});
    s.solve(t);
    const auto direct = solve_direct(t);
    double err_num = 0, err_den = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& gf = s.gravity(k);
        const auto& gd = direct.gravity.at(k);
        for (int c = 0; c < amr::INX3; ++c) {
            const dvec3 df{gf.gx[c] - gd.gx[c], gf.gy[c] - gd.gy[c],
                           gf.gz[c] - gd.gz[c]};
            err_num += norm2(df);
            err_den += norm2(dvec3{gd.gx[c], gd.gy[c], gd.gz[c]});
        }
    }
    EXPECT_LT(std::sqrt(err_num / err_den), 0.03);
}

TEST(Solver, ConservesLinearMomentum) {
    tree t(unit_root());
    t.refine(root_key);
    fill_blobs(t);
    solver s({.conserve = am_mode::spin_deposit});
    s.solve(t);
    const dvec3 F = s.total_force(t);
    // Normalize by a typical force scale.
    double scale = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = s.gravity(k);
        const auto& m = s.moments(k);
        for (int c = 0; c < amr::INX3; ++c) {
            scale += std::abs(m.m[c] * g.gx[c]) + std::abs(m.m[c] * g.gy[c]) +
                     std::abs(m.m[c] * g.gz[c]);
        }
    }
    EXPECT_LT(norm(F) / scale, 1e-13);
}

double torque_scale(const tree& t, const solver& s) {
    double scale = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = s.gravity(k);
        const auto& m = s.moments(k);
        for (int c = 0; c < amr::INX3; ++c) {
            const dvec3 r{m.com[0][c], m.com[1][c], m.com[2][c]};
            scale += norm(cross(r, m.m[c] * dvec3{g.gx[c], g.gy[c], g.gz[c]}));
        }
    }
    return scale;
}

TEST(Solver, CentralProjectionZeroesTotalTorque) {
    tree t(unit_root());
    t.refine(root_key);
    fill_blobs(t);

    solver cons({.conserve = am_mode::central_projection});
    cons.solve(t);
    solver plain({.conserve = am_mode::none});
    plain.solve(t);

    const double scale = torque_scale(t, cons);
    const double tq_cons = norm(cons.total_torque(t)) / scale;
    const double tq_plain = norm(plain.total_torque(t)) / scale;
    EXPECT_LT(tq_cons, 1e-13);
    // The uncorrected multipole force violates torque balance measurably.
    EXPECT_GT(tq_plain, tq_cons * 10.0);
}

TEST(Solver, SpinDepositLedgerCancelsTotalTorque) {
    // The paper's headline property, in the form Octo-Tiger realizes it:
    // accurate forces, with the truncation torque absorbed by the evolved
    // spin field. Mechanical torque + ledger must vanish to rounding.
    tree t(unit_root());
    t.refine(root_key);
    fill_blobs(t);

    solver s({.conserve = am_mode::spin_deposit});
    s.solve(t);
    const double scale = torque_scale(t, s);
    const dvec3 mech = s.total_torque(t);
    const dvec3 ledger = s.total_spin_torque(t);
    EXPECT_GT(norm(mech) / scale, 1e-13); // forces genuinely non-central
    EXPECT_LT(norm(mech + ledger) / scale, 1e-13);
}

TEST(Solver, SpinDepositLedgerClosesOnDeepTrees) {
    // Regression: the redistribution of L3 against the children's INTERNAL
    // quadrupoles emits net forces at displaced application points on trees
    // deeper than two levels; the L2L must account for that torque (see the
    // T_deep term in solver.cpp) or the ledger leaks at ~1e-8.
    tree t(unit_root());
    t.refine(root_key);
    t.refine(amr::key_child(root_key, 0));
    t.refine(amr::key_child(amr::key_child(root_key, 0), 7));
    t.balance21();
    fill_blobs(t);
    solver s({.conserve = am_mode::spin_deposit});
    s.solve(t);
    const double scale = torque_scale(t, s);
    EXPECT_LT(norm(s.total_torque(t) + s.total_spin_torque(t)) / scale, 1e-13);
}

TEST(Solver, SpinDepositKeepsPlainAccuracy) {
    // spin_deposit must not degrade forces: it equals am_mode::none forces
    // except for which S enters the (identical) plain force term.
    tree t(unit_root());
    t.refine(root_key);
    fill_blobs(t);
    solver a({.conserve = am_mode::spin_deposit});
    a.solve(t);
    solver b({.conserve = am_mode::none});
    b.solve(t);
    for (const auto k : t.leaves_sfc()) {
        const auto& ga = a.gravity(k);
        const auto& gb = b.gravity(k);
        for (int c = 0; c < amr::INX3; ++c) {
            EXPECT_NEAR(ga.gx[c], gb.gx[c], std::abs(gb.gx[c]) * 1e-12 + 1e-16);
        }
    }
}

TEST(Solver, VectorizedAndScalarPathsAgree) {
    tree t(unit_root());
    t.refine(root_key);
    fill_blobs(t);
    solver vec({.conserve = am_mode::spin_deposit, .vectorized = true});
    vec.solve(t);
    solver sca({.conserve = am_mode::spin_deposit, .vectorized = false});
    sca.solve(t);
    for (const auto k : t.leaves_sfc()) {
        const auto& gv = vec.gravity(k);
        const auto& gs = sca.gravity(k);
        for (int c = 0; c < amr::INX3; ++c) {
            EXPECT_NEAR(gv.gx[c], gs.gx[c],
                        std::abs(gs.gx[c]) * 1e-13 + 1e-16);
            EXPECT_NEAR(gv.phi[c], gs.phi[c], std::abs(gs.phi[c]) * 1e-13);
        }
    }
}

TEST(Solver, GpuOffloadMatchesCpu) {
    tree t(unit_root());
    t.refine(root_key);
    fill_blobs(t);

    flop_reset();
    gpu::device dev(gpu::p100(), 2);
    solver gs({.conserve = am_mode::spin_deposit, .device = &dev});
    gs.solve(t);
    solver cs({.conserve = am_mode::spin_deposit});
    cs.solve(t);

    for (const auto k : t.leaves_sfc()) {
        const auto& a = gs.gravity(k);
        const auto& b = cs.gravity(k);
        for (int c = 0; c < amr::INX3; ++c) {
            EXPECT_NEAR(a.gx[c], b.gx[c], std::abs(b.gx[c]) * 1e-13 + 1e-16);
        }
    }
    EXPECT_GT(dev.kernels_executed(), 0u);
}

TEST(Solver, FlopAccountingMatchesLaunches) {
    tree t(unit_root());
    fill_blobs(t);
    flop_reset();
    solver s{solver_options{}};
    s.solve(t);
    // Root-only tree: one leaf -> exactly one monopole kernel launch with the
    // root stencil (3374 offsets).
    const auto mono = flop_snapshot(kernel_class::fmm_monopole);
    EXPECT_EQ(mono.cpu_launches, 1u);
    EXPECT_EQ(mono.cpu_flops,
              512u * 3374u * mono_flops_per_interaction);
}

TEST(Solver, PotentialEnergyIsNegative) {
    tree t(unit_root());
    fill_blobs(t);
    solver s{solver_options{}};
    s.solve(t);
    EXPECT_LT(s.potential_energy(t), 0.0);
}

TEST(Solver, PolytropeAccelerationPointsInward) {
    // Spherical blob at the center: acceleration in the outer cells must
    // point toward the center.
    tree t(unit_root());
    t.refine(root_key);
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    g.interior(amr::f_rho, i, j, kk) =
                        std::exp(-norm2(r) / 0.005);
                }
    }
    solver s{solver_options{}};
    s.solve(t);
    for (const auto k : t.leaves_sfc()) {
        const auto& g = s.gravity(k);
        const auto& m = s.moments(k);
        for (int c = 0; c < amr::INX3; ++c) {
            const dvec3 r{m.com[0][c], m.com[1][c], m.com[2][c]};
            if (norm(r) < 0.25) continue; // only test well outside the blob
            const dvec3 a{g.gx[c], g.gy[c], g.gz[c]};
            EXPECT_LT(dot(a, r), 0.0) << "outward gravity at r=" << norm(r);
        }
    }
}

// ---- parameterized sweep: every mode x vectorization ------------------------

class ModeSweep
    : public ::testing::TestWithParam<std::tuple<am_mode, bool>> {};

TEST_P(ModeSweep, ForceBalanceAndLedgerInvariants) {
    const auto [mode, vectorized] = GetParam();
    tree t(unit_root());
    t.refine(root_key);
    t.refine(amr::key_child(root_key, 3));
    t.balance21();
    fill_blobs(t);
    solver s({.conserve = mode, .vectorized = vectorized});
    s.solve(t);

    // Linear momentum balance holds in EVERY mode.
    double fscale = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = s.gravity(k);
        const auto& m = s.moments(k);
        for (int c = 0; c < amr::INX3; ++c) {
            fscale += std::abs(m.m[c] * g.gx[c]) + std::abs(m.m[c] * g.gy[c]) +
                      std::abs(m.m[c] * g.gz[c]);
        }
    }
    EXPECT_LT(norm(s.total_force(t)) / fscale, 1e-12);

    // Angular momentum: mode-specific invariant.
    const double scale = torque_scale(t, s);
    if (mode == am_mode::central_projection) {
        EXPECT_LT(norm(s.total_torque(t)) / scale, 1e-13);
    } else if (mode == am_mode::spin_deposit) {
        EXPECT_LT(norm(s.total_torque(t) + s.total_spin_torque(t)) / scale,
                  1e-13);
    }
    // Potential energy is negative in every configuration.
    EXPECT_LT(s.potential_energy(t), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ModeSweep,
    ::testing::Combine(::testing::Values(am_mode::none,
                                         am_mode::central_projection,
                                         am_mode::spin_deposit),
                       ::testing::Values(true, false)),
    [](const auto& info) {
        const char* m = std::get<0>(info.param) == am_mode::none
                            ? "none"
                            : std::get<0>(info.param) ==
                                      am_mode::central_projection
                                  ? "central"
                                  : "spin";
        return std::string(m) +
               (std::get<1>(info.param) ? "_simd" : "_scalar");
    });

// ---- legacy interaction-list kernel -----------------------------------------

TEST(LegacyIlist, MatchesStencilKernel) {
    tree t(unit_root());
    fill_blobs(t);
    solver s{solver_options{}};
    s.solve(t); // gives us moments for the root node

    const auto& mom = s.moments(root_key);
    partner_buffer buf;
    // Self-only buffer (interior cells), mirroring what the bench does.
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int k = 0; k < INX; ++k) {
                const int src = cell_index(i, j, k);
                const int dst = partner_buffer::index(i, j, k);
                buf.m[dst] = mom.m[src];
                buf.x[dst] = mom.com[0][src];
                buf.y[dst] = mom.com[1][src];
                buf.z[dst] = mom.com[2][src];
            }
    // Give empty halo cells nonzero positions to avoid r = 0.
    for (int i = -partner_buffer::reach; i < INX + partner_buffer::reach; ++i)
        for (int j = -partner_buffer::reach; j < INX + partner_buffer::reach; ++j)
            for (int k = -partner_buffer::reach; k < INX + partner_buffer::reach;
                 ++k) {
                const int d = partner_buffer::index(i, j, k);
                if (buf.x[d] == 0 && buf.y[d] == 0 && buf.z[d] == 0 &&
                    buf.m[d] == 0) {
                    buf.x[d] = 10.0 + i;
                    buf.y[d] = 10.0 + j;
                    buf.z[d] = 10.0 + k;
                }
            }

    node_gravity out;
    kernel_options opt;
    opt.stencil = &interaction_stencil(); // regular 1074 stencil
    octo::kernel::fmm_monopole<octo::kernel::exec::scalar>(mom, buf, opt, 0, out);

    auto receivers = to_aos_receivers(mom);
    const auto partners = to_aos_partners(buf);
    const auto list = build_interaction_list();
    // Each stencil element applies to 64 cells per enabled parity class.
    std::size_t expected = 0;
    for (const auto& e : interaction_stencil()) {
        expected += 64u * static_cast<unsigned>(__builtin_popcount(e.parity_mask));
    }
    EXPECT_EQ(list.pairs.size(), expected);
    legacy_monopole_kernel(list, receivers, partners);

    for (int c = 0; c < amr::INX3; ++c) {
        // legacy kernel accumulates g directly; stencil kernel stores L with
        // g = -L1.
        EXPECT_NEAR(receivers[static_cast<std::size_t>(c)].gx, -out.L[1][c],
                    std::abs(out.L[1][c]) * 1e-12 + 1e-15);
        EXPECT_NEAR(receivers[static_cast<std::size_t>(c)].phi, out.L[0][c],
                    std::abs(out.L[0][c]) * 1e-12 + 1e-15);
    }
}

// ---- futurized DAG and workspace recycling ----------------------------------

/// Four-level tree (levels 0..3) with blob density, the shape used to compare
/// the futurized and barriered schedules.
tree four_level_tree() {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(amr::key_child(root_key, 0));
    t.refine(amr::key_child(amr::key_child(root_key, 0), 7));
    t.refine(amr::key_child(root_key, 6));
    t.balance21();
    fill_blobs(t);
    return t;
}

void expect_identical_gravity(const tree& t, const solver& a, const solver& b) {
    for (const auto k : t.leaves_sfc()) {
        const auto& ga = a.gravity(k);
        const auto& gb = b.gravity(k);
        for (int c = 0; c < amr::INX3; ++c) {
            EXPECT_EQ(ga.phi[c], gb.phi[c]);
            EXPECT_EQ(ga.gx[c], gb.gx[c]);
            EXPECT_EQ(ga.gy[c], gb.gy[c]);
            EXPECT_EQ(ga.gz[c], gb.gz[c]);
            for (int ax = 0; ax < 3; ++ax) {
                EXPECT_EQ(ga.tq[ax][c], gb.tq[ax][c]);
            }
        }
    }
}

TEST(SolverDag, FuturizedMatchesBarrieredBitIdentical) {
    // The per-node dependency DAG runs exactly the kernels of the barriered
    // schedule with the same per-node accumulation order, so the two paths
    // must agree to the last bit — not just to a tolerance.
    tree t = four_level_tree();
    solver fut({.conserve = am_mode::spin_deposit, .futurized = true});
    fut.solve(t);
    solver bar({.conserve = am_mode::spin_deposit, .futurized = false});
    bar.solve(t);
    expect_identical_gravity(t, fut, bar);
}

TEST(SolverDag, FuturizedKeepsConservationInvariants) {
    tree t = four_level_tree();
    solver s({.conserve = am_mode::spin_deposit, .futurized = true});
    s.solve(t);

    double fscale = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = s.gravity(k);
        const auto& m = s.moments(k);
        for (int c = 0; c < amr::INX3; ++c) {
            fscale += std::abs(m.m[c] * g.gx[c]) + std::abs(m.m[c] * g.gy[c]) +
                      std::abs(m.m[c] * g.gz[c]);
        }
    }
    EXPECT_LT(norm(s.total_force(t)) / fscale, 1e-12);
    const double scale = torque_scale(t, s);
    EXPECT_LT(norm(s.total_torque(t) + s.total_spin_torque(t)) / scale, 1e-13);
}

TEST(SolverDag, SteadyStateSolvePerformsZeroAllocations) {
    // After the first solve has populated the workspace and the recycler
    // pool, consecutive solves on an unchanged tree must allocate nothing
    // new: every aligned buffer (partner buffers included) is served from
    // the pool. A single-worker pool makes the peak number of live buffers
    // deterministic.
    tree t = four_level_tree();
    rt::thread_pool pool(1);
    solver s({.conserve = am_mode::spin_deposit, .pool = &pool});
    s.solve(t);

    const auto before = buffer_recycler::instance().stats();
    s.solve(t);
    s.solve(t);
    const auto after = buffer_recycler::instance().stats();
    EXPECT_EQ(after.misses, before.misses) << "steady-state solve allocated";
    EXPECT_GT(after.hits, before.hits);
}

TEST(SolverDag, WorkspaceInvalidatedByTreeMutation) {
    // The persisted workspace is keyed on (tree id, revision); refining the
    // tree must rebuild it, and the recomputed field must match a fresh
    // solver exactly.
    tree t(unit_root());
    t.refine(root_key);
    fill_blobs(t);
    solver s({.conserve = am_mode::spin_deposit});
    s.solve(t);

    t.refine(amr::key_child(root_key, 3));
    t.balance21();
    fill_blobs(t);
    s.solve(t); // must notice the revision bump, not reuse stale arrays

    solver fresh({.conserve = am_mode::spin_deposit});
    fresh.solve(t);
    expect_identical_gravity(t, s, fresh);
}

} // namespace

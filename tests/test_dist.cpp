// Tests for the distributed substrate: serialization round trips, active
// messages (actions), AGAS ownership + migration, gid-addressed channels,
// and the two parcelports — exactly-once delivery, accounting, and the
// structural properties the paper attributes to each (§5.2).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "dist/locality.hpp"
#include "dist/serialize.hpp"
#include "net/model.hpp"
#include "net/parcelport.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace {

using namespace octo;
using namespace octo::dist;

TEST(Serialize, RoundTripScalarsStringsVectors) {
    oarchive out;
    out.write(42);
    out.write(3.14);
    out.write_string("halo exchange");
    std::vector<double> v(100);
    std::iota(v.begin(), v.end(), 0.5);
    out.write_vector(v);
    const auto buf = out.take();

    iarchive in(buf);
    EXPECT_EQ(in.read<int>(), 42);
    EXPECT_DOUBLE_EQ(in.read<double>(), 3.14);
    EXPECT_EQ(in.read_string(), "halo exchange");
    EXPECT_EQ(in.read_vector<double>(), v);
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(Serialize, TruncatedPayloadThrows) {
    oarchive out;
    out.write(7);
    const auto buf = out.take();
    iarchive in(buf);
    EXPECT_EQ(in.read<int>(), 7);
    EXPECT_THROW(in.read<double>(), octo::error);
}

class PortSuite : public ::testing::TestWithParam<bool> {
  protected:
    parcelport_factory factory() const {
        return GetParam() ? net::make_libfabric_port() : net::make_mpi_port();
    }
};

TEST_P(PortSuite, ActiveMessageRunsOnDestination) {
    runtime rt(4, factory());
    std::atomic<int> sum{0};
    std::atomic<int> where{-1};
    const auto act = rt.register_action("add", [&](int here, iarchive a) {
        sum.fetch_add(a.read<int>());
        where = here;
    });
    oarchive args;
    args.write(17);
    rt.apply(2, act, std::move(args));
    rt.wait_quiet();
    EXPECT_EQ(sum.load(), 17);
    EXPECT_EQ(where.load(), 2);
}

TEST_P(PortSuite, EveryParcelDeliveredExactlyOnce) {
    runtime rt(3, factory());
    std::atomic<long> total{0};
    std::atomic<int> count{0};
    const auto act = rt.register_action("acc", [&](int, iarchive a) {
        total.fetch_add(a.read<int>());
        count.fetch_add(1);
    });
    constexpr int n = 300;
    long expect = 0;
    for (int i = 0; i < n; ++i) {
        oarchive args;
        args.write(i);
        expect += i;
        rt.apply(i % 3, act, std::move(args));
    }
    rt.wait_quiet();
    EXPECT_EQ(count.load(), n);
    EXPECT_EQ(total.load(), expect);
    EXPECT_EQ(rt.port().stats().parcels_sent, static_cast<std::uint64_t>(n));
}

TEST_P(PortSuite, ChannelsDeliverInOrderAcrossLocalities) {
    runtime rt(2, factory());
    const gid g = rt.register_object(1); // owned by locality 1
    // Receiver fetches two slots ahead (the paper's N-timesteps-ahead idiom).
    auto f0 = rt.channel_get(g);
    auto f1 = rt.channel_get(g);
    rt.channel_set(g, {1.0, 2.0});
    rt.channel_set(g, {3.0});
    EXPECT_EQ(f0.get(), (std::vector<double>{1.0, 2.0}));
    EXPECT_EQ(f1.get(), (std::vector<double>{3.0}));
}

TEST_P(PortSuite, MigrationIsTransparentToSenders) {
    runtime rt(3, factory());
    const gid g = rt.register_object(0);
    rt.channel_set(g, {10.0});
    rt.wait_quiet();
    // Move the object; a sender using the same gid keeps working and the
    // buffered value is still readable ("the runtime manages the updated
    // destination address transparently", §5.2).
    rt.migrate(g, 2);
    EXPECT_EQ(rt.owner_of(g), 2);
    rt.channel_set(g, {20.0});
    EXPECT_EQ(rt.channel_get(g).get(), (std::vector<double>{10.0}));
    EXPECT_EQ(rt.channel_get(g).get(), (std::vector<double>{20.0}));
}

TEST_P(PortSuite, StatsAccumulateBytes) {
    runtime rt(2, factory());
    const gid g = rt.register_object(1);
    rt.channel_set(g, std::vector<double>(1000, 1.0));
    rt.wait_quiet();
    const auto s = rt.port().stats();
    EXPECT_EQ(s.parcels_sent, 1u);
    EXPECT_GT(s.bytes_sent, 8000u);
    EXPECT_GT(s.modeled_latency_total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ports, PortSuite, ::testing::Values(false, true),
                         [](const auto& info) {
                             return info.param ? "libfabric" : "mpi";
                         });

TEST(PortComparison, LibfabricModelIsFasterPerMessage) {
    // The protocol-level model: one-sided beats two-sided on latency,
    // per-message CPU and progress delay (paper §6.3's bullet list).
    const auto mpi = net::mpi_like();
    const auto lf = net::libfabric_like();
    for (std::size_t bytes : {256u, 4096u, 65536u, 1048576u}) {
        EXPECT_LT(net::modeled_message_seconds(lf, bytes),
                  net::modeled_message_seconds(mpi, bytes))
            << bytes;
        EXPECT_LT(net::modeled_cpu_seconds(lf, bytes),
                  net::modeled_cpu_seconds(mpi, bytes))
            << bytes;
    }
    // Bandwidth-dominated regime: the advantage shrinks relatively.
    const double r_small = net::modeled_message_seconds(mpi, 64) /
                           net::modeled_message_seconds(lf, 64);
    const double r_big = net::modeled_message_seconds(mpi, 1 << 22) /
                         net::modeled_message_seconds(lf, 1 << 22);
    EXPECT_GT(r_small, r_big);
}

TEST(RmaRegistration, AmortizesPinningCost) {
    // Paper §7 future work: registered buffer size classes skip the
    // per-message pin/registration cost on the one-sided port.
    const auto lf = net::libfabric_like();
    const std::size_t bytes = 35000;
    EXPECT_GT(net::registration_seconds(lf, bytes), 0.0);
    EXPECT_LT(net::modeled_message_seconds(lf, bytes, true),
              net::modeled_message_seconds(lf, bytes, false));
    // Two-sided transports stage through pre-pinned buffers: no pin cost.
    EXPECT_DOUBLE_EQ(net::registration_seconds(net::mpi_like(), bytes), 0.0);

    // End to end: the port accumulates less modeled latency once the halo
    // size class is registered.
    runtime rt(2, net::make_libfabric_port());
    auto* port = dynamic_cast<net::libfabric_parcelport*>(&rt.port());
    ASSERT_NE(port, nullptr);
    const gid g = rt.register_object(1);
    rt.channel_set(g, std::vector<double>(1000, 1.0));
    rt.wait_quiet();
    const double unregistered = rt.port().stats().modeled_latency_total;

    // Register the exact payload size observed and send again.
    port->register_size_class(rt.port().stats().bytes_sent);
    EXPECT_TRUE(port->is_registered(rt.port().stats().bytes_sent));
    rt.channel_set(g, std::vector<double>(1000, 2.0));
    rt.wait_quiet();
    const double registered_delta =
        rt.port().stats().modeled_latency_total - unregistered;
    EXPECT_LT(registered_delta, unregistered);
}

TEST(PortComparison, OneSidedDeliversWithLowerWallClockLatency) {
    // Structural check: the MPI port's deliveries wait for the progress
    // engine; the libfabric port's completions trigger immediately.
    auto measure = [](parcelport_factory f) {
        runtime rt(2, std::move(f));
        std::atomic<bool> got{false};
        const auto act =
            rt.register_action("ping", [&](int, iarchive) { got = true; });
        octo::stopwatch sw;
        constexpr int rounds = 50;
        for (int i = 0; i < rounds; ++i) {
            got = false;
            rt.apply(1, act, oarchive{});
            while (!got.load()) std::this_thread::yield();
        }
        return sw.seconds() / rounds;
    };
    const double t_mpi = measure(net::make_mpi_port());
    const double t_lf = measure(net::make_libfabric_port());
    EXPECT_LT(t_lf, t_mpi);
}

} // namespace

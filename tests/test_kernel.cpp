// Tests for the portable kernel layer (ISSUE 7): every hot kernel has ONE
// templated body, so the backends must agree from that single source —
// scalar vs SIMD to 1e-14 relative (different summation widths), scalar vs
// the modeled-GPU policy bit for bit (both bind T = double, so they call the
// same compiled function), and any tile bit-identical to untiled at fixed
// width (tiling only reorders the block boundaries, never the arithmetic).
// Plus the autotune cache: cold sweep -> persist -> warm hit -> disk hit,
// observable through the APEX counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fmm/kernels.hpp"
#include "fmm/node_data.hpp"
#include "fmm/stencil.hpp"
#include "hydro/pencil.hpp"
#include "kernel/autotune.hpp"
#include "kernel/exec.hpp"
#include "kernel/fmm.hpp"
#include "kernel/hydro.hpp"
#include "physics/eos.hpp"
#include "runtime/apex.hpp"
#include "support/rng.hpp"

namespace {

using namespace octo;
using namespace octo::fmm;

constexpr double rel_tol = 1e-14;

void expect_close(const aligned_vector<double>& a, const aligned_vector<double>& b,
                  const char* what) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double tol =
            rel_tol * std::max({1.0, std::abs(a[i]), std::abs(b[i])});
        EXPECT_NEAR(a[i], b[i], tol) << what << " i=" << i;
    }
}

void expect_equal(const aligned_vector<double>& a, const aligned_vector<double>& b,
                  const char* what) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << what << " i=" << i;
    }
}

void compare_gravity(const node_gravity& a, const node_gravity& b, bool exact) {
    auto cmp = exact ? expect_equal : expect_close;
    for (std::size_t t = 0; t < a.L.size(); ++t) cmp(a.L[t], b.L[t], "L");
    cmp(a.gx, b.gx, "gx");
    cmp(a.gy, b.gy, "gy");
    cmp(a.gz, b.gz, "gz");
    cmp(a.phi, b.phi, "phi");
    for (int t = 0; t < 3; ++t) cmp(a.tq[t], b.tq[t], "tq");
}

void compare_moments(const node_moments& a, const node_moments& b, bool exact) {
    auto cmp = exact ? expect_equal : expect_close;
    cmp(a.m, b.m, "m");
    for (int c = 0; c < 3; ++c) cmp(a.com[c], b.com[c], "com");
    for (int c = 0; c < 6; ++c) cmp(a.q[c], b.q[c], "q");
}

// ---- fixtures (the bench_kernels recipe) -----------------------------------

node_moments make_moments(bool with_quadrupoles, std::uint64_t seed = 7) {
    node_moments m;
    xoshiro256 rng(seed);
    for (int i = 0; i < INX3; ++i) {
        m.m[i] = rng.uniform(0.1, 1.0);
        m.com[0][i] = rng.uniform(0, 1);
        m.com[1][i] = rng.uniform(0, 1);
        m.com[2][i] = rng.uniform(0, 1);
        if (with_quadrupoles) {
            for (auto& q : m.q) q[i] = rng.uniform(-1e-3, 1e-3);
        }
    }
    return m;
}

partner_buffer make_buffer(bool with_quadrupoles) {
    partner_buffer buf;
    xoshiro256 rng(11);
    for (int i = 0; i < partner_buffer::P3; ++i) {
        buf.m[i] = rng.uniform(0.1, 1.0);
        buf.x[i] = rng.uniform(-2, 3);
        buf.y[i] = rng.uniform(-2, 3);
        buf.z[i] = rng.uniform(-2, 3);
        if (with_quadrupoles) {
            for (auto& q : buf.q) q[i] = rng.uniform(-1e-3, 1e-3);
        }
    }
    buf.any = true;
    return buf;
}

kernel_options stencil_opt(bool inner_mask) {
    kernel_options opt;
    opt.use_inner_mask = inner_mask;
    opt.stencil = &interaction_stencil();
    return opt;
}

// ---- FMM same-level kernels -------------------------------------------------

TEST(KernelFmm, MonopoleScalarVsSimdWithinRounding) {
    const auto mom = make_moments(false);
    const auto buf = make_buffer(false);
    const auto opt = stencil_opt(false);
    node_gravity ref;
    octo::kernel::fmm_monopole<octo::kernel::exec::scalar>(mom, buf, opt, 0, ref);
    node_gravity w2, w4, w8;
    octo::kernel::fmm_monopole<octo::kernel::exec::simd<2>>(mom, buf, opt, 0, w2);
    octo::kernel::fmm_monopole<octo::kernel::exec::simd<4>>(mom, buf, opt, 0, w4);
    octo::kernel::fmm_monopole<octo::kernel::exec::simd<8>>(mom, buf, opt, 0, w8);
    compare_gravity(ref, w2, /*exact=*/false);
    compare_gravity(ref, w4, /*exact=*/false);
    compare_gravity(ref, w8, /*exact=*/false);
}

TEST(KernelFmm, MonopoleScalarVsGpuBitIdentical) {
    const auto mom = make_moments(false);
    const auto buf = make_buffer(false);
    const auto opt = stencil_opt(false);
    node_gravity s, g;
    octo::kernel::fmm_monopole<octo::kernel::exec::scalar>(mom, buf, opt, 0, s);
    octo::kernel::fmm_monopole<octo::kernel::exec::gpu>(mom, buf, opt, 0, g);
    compare_gravity(s, g, /*exact=*/true);
}

TEST(KernelFmm, MonopoleTileBitIdenticalAtFixedWidth) {
    const auto mom = make_moments(false);
    const auto buf = make_buffer(false);
    const auto opt = stencil_opt(false);
    node_gravity untiled;
    octo::kernel::fmm_monopole<octo::kernel::exec::simd<4>>(mom, buf, opt, 0,
                                                            untiled);
    for (const int tile : {4, 16, 64}) {
        node_gravity tiled;
        octo::kernel::fmm_monopole<octo::kernel::exec::simd<4>>(mom, buf, opt,
                                                                tile, tiled);
        compare_gravity(untiled, tiled, /*exact=*/true);
    }
}

TEST(KernelFmm, MultipoleScalarVsSimdWithinRounding) {
    const auto mom = make_moments(true);
    aligned_vector<double> invm(INX3);
    for (int i = 0; i < INX3; ++i) invm[i] = 1.0 / mom.m[i];
    const auto buf = make_buffer(true);
    const auto opt = stencil_opt(true);
    node_gravity ref;
    octo::kernel::fmm_multipole<octo::kernel::exec::scalar>(mom, invm, buf, opt,
                                                            0, ref);
    for (const int w : {2, 4, 8}) {
        node_gravity out;
        octo::kernel::run_fmm_multipole({kernel::backend_kind::simd, w, 0}, mom,
                                        invm, buf, opt, out);
        compare_gravity(ref, out, /*exact=*/false);
    }
}

TEST(KernelFmm, MultipoleScalarVsGpuBitIdenticalAndTileInvariant) {
    const auto mom = make_moments(true);
    aligned_vector<double> invm(INX3);
    for (int i = 0; i < INX3; ++i) invm[i] = 1.0 / mom.m[i];
    const auto buf = make_buffer(true);
    const auto opt = stencil_opt(true);
    node_gravity s, g;
    octo::kernel::fmm_multipole<octo::kernel::exec::scalar>(mom, invm, buf, opt,
                                                            0, s);
    octo::kernel::fmm_multipole<octo::kernel::exec::gpu>(mom, invm, buf, opt, 0,
                                                         g);
    compare_gravity(s, g, /*exact=*/true);
    for (const int tile : {8, 32}) {
        node_gravity t8;
        octo::kernel::fmm_multipole<octo::kernel::exec::simd<8>>(mom, invm, buf,
                                                                 opt, tile, t8);
        node_gravity u8;
        octo::kernel::fmm_multipole<octo::kernel::exec::simd<8>>(mom, invm, buf,
                                                                 opt, 0, u8);
        compare_gravity(u8, t8, /*exact=*/true);
    }
}

// ---- FMM tree-transfer kernels ---------------------------------------------

TEST(KernelFmm, M2mScalarVsGpuBitIdentical) {
    std::vector<node_moments> kids;
    kids.reserve(8);
    for (int c = 0; c < 8; ++c) {
        kids.push_back(make_moments(true, 100 + static_cast<std::uint64_t>(c)));
    }
    const node_moments* children[8];
    for (int c = 0; c < 8; ++c) children[c] = &kids[static_cast<std::size_t>(c)];
    amr::box_geometry geom;
    geom.origin = {-1.0, -1.0, -1.0};
    geom.dx = 2.0 / INX;

    node_moments ms, mg;
    aligned_vector<double> is(INX3), ig(INX3);
    octo::kernel::fmm_m2m<octo::kernel::exec::scalar>(children, geom, ms, is);
    octo::kernel::fmm_m2m<octo::kernel::exec::gpu>(children, geom, mg, ig);
    compare_moments(ms, mg, /*exact=*/true);
    expect_equal(is, ig, "invm");
}

TEST(KernelFmm, L2lScalarVsGpuBitIdentical) {
    node_gravity parentL;
    xoshiro256 rng(21);
    for (auto& l : parentL.L) {
        for (auto& v : l) v = rng.uniform(-1, 1);
    }
    for (auto& q : parentL.tq) {
        for (auto& v : q) v = rng.uniform(-1e-3, 1e-3);
    }
    const node_moments pm = make_moments(true, 31);
    std::vector<node_moments> kids;
    kids.reserve(8);
    for (int c = 0; c < 8; ++c) {
        kids.push_back(make_moments(true, 200 + static_cast<std::uint64_t>(c)));
    }
    const node_moments* childM[8];
    for (int c = 0; c < 8; ++c) childM[c] = &kids[static_cast<std::size_t>(c)];

    std::vector<node_gravity> outS(8), outG(8);
    node_gravity* lwS[8];
    node_gravity* lwG[8];
    for (int c = 0; c < 8; ++c) {
        lwS[c] = &outS[static_cast<std::size_t>(c)];
        lwG[c] = &outG[static_cast<std::size_t>(c)];
    }
    octo::kernel::fmm_l2l<octo::kernel::exec::scalar>(parentL, pm, childM, lwS,
                                                      am_mode::spin_deposit);
    octo::kernel::fmm_l2l<octo::kernel::exec::gpu>(parentL, pm, childM, lwG,
                                                   am_mode::spin_deposit);
    for (int c = 0; c < 8; ++c) {
        compare_gravity(outS[static_cast<std::size_t>(c)],
                        outG[static_cast<std::size_t>(c)], /*exact=*/true);
    }
}

// ---- hydro kernels ----------------------------------------------------------

using namespace octo::hydro;

/// Synthetic fully-filled leaf (every cell physical) — the autotuner's
/// measurement subject, reused here as the agreement fixture.
const amr::subgrid& test_leaf() {
    using namespace octo::amr;
    static const subgrid leaf = [] {
        subgrid g;
        g.geom.origin = {-1.0, -1.0, -1.0};
        g.geom.dx = 2.0 / INX;
        const phys::ideal_gas_eos eos;
        const double gamma = eos.gamma();
        for (int i = 0; i < NX; ++i)
            for (int j = 0; j < NX; ++j)
                for (int kk = 0; kk < NX; ++kk) {
                    const double x = (i - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double y = (j - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double z = (kk - H_BW + 0.5) * g.geom.dx - 1.0;
                    const double r2 = x * x + y * y + z * z;
                    const double rho = 1.0 + 0.5 * std::exp(-r2);
                    const dvec3 v{0.1 * y, -0.1 * x, 0.05 * z};
                    const double p = 1.0 + 0.25 * std::exp(-r2);
                    const double internal = p / (gamma - 1.0);
                    g.at(f_rho, i, j, kk) = rho;
                    g.at(f_sx, i, j, kk) = rho * v.x;
                    g.at(f_sy, i, j, kk) = rho * v.y;
                    g.at(f_sz, i, j, kk) = rho * v.z;
                    g.at(f_egas, i, j, kk) = internal + 0.5 * rho * norm2(v);
                    g.at(f_tau, i, j, kk) = eos.tau_from_internal(internal);
                    for (int s = 0; s < n_passive; ++s) {
                        g.at(first_passive + s, i, j, kk) = rho / n_passive;
                    }
                    g.at(f_lx, i, j, kk) = 0.01 * rho;
                    g.at(f_ly, i, j, kk) = -0.01 * rho;
                    g.at(f_lz, i, j, kk) = 0.02 * rho;
                }
        return g;
    }();
    return leaf;
}

struct flux_run {
    leaf_flux_soa lf;
    double max_speed = 0.0;
};

flux_run run_fluxes(const kernel::exec_config& cfg) {
    flux_run r;
    r.lf.reset();
    pencil_workspace ws;
    const phys::ideal_gas_eos eos;
    for (int axis = 0; axis < 3; ++axis) {
        octo::kernel::run_leaf_fluxes(cfg, test_leaf(), axis, eos, true, ws,
                                      r.lf, &r.max_speed);
    }
    return r;
}

void compare_fluxes(const flux_run& a, const flux_run& b, bool exact) {
    auto cmp = exact ? expect_equal : expect_close;
    for (int axis = 0; axis < 3; ++axis) cmp(a.lf.f[axis], b.lf.f[axis], "flux");
    if (exact) {
        EXPECT_EQ(a.max_speed, b.max_speed);
    } else {
        EXPECT_NEAR(a.max_speed, b.max_speed, rel_tol * a.max_speed);
    }
}

TEST(KernelHydro, LeafFluxesScalarVsSimdWithinRounding) {
    const auto ref = run_fluxes({kernel::backend_kind::scalar, 1, 0});
    for (const int w : {2, 4, 8}) {
        const auto r = run_fluxes({kernel::backend_kind::simd, w, 0});
        compare_fluxes(ref, r, /*exact=*/false);
    }
}

TEST(KernelHydro, LeafFluxesScalarVsGpuBitIdentical) {
    const auto s = run_fluxes({kernel::backend_kind::scalar, 1, 0});
    const auto g = run_fluxes({kernel::backend_kind::gpu, 1, 0});
    compare_fluxes(s, g, /*exact=*/true);
}

TEST(KernelHydro, LeafFluxesTileBitIdenticalAtFixedWidth) {
    const auto untiled = run_fluxes({kernel::backend_kind::simd, 8, 0});
    for (const int tile : {8, 16, 32}) {
        const auto tiled = run_fluxes({kernel::backend_kind::simd, 8, tile});
        compare_fluxes(untiled, tiled, /*exact=*/true);
    }
}

TEST(KernelHydro, WaveSpeedBackendsAgree) {
    const phys::ideal_gas_eos eos;
    const double s =
        octo::kernel::run_wave_speed({kernel::backend_kind::scalar, 1, 0},
                                     test_leaf(), eos);
    const double g = octo::kernel::run_wave_speed(
        {kernel::backend_kind::gpu, 1, 0}, test_leaf(), eos);
    EXPECT_EQ(s, g);
    for (const int w : {2, 4, 8}) {
        const double v = octo::kernel::run_wave_speed(
            {kernel::backend_kind::simd, w, 0}, test_leaf(), eos);
        EXPECT_NEAR(s, v, rel_tol * s);
    }
    EXPECT_GT(s, 0.0);
}

void compare_subgrids(const amr::subgrid& a, const amr::subgrid& b, bool exact) {
    using namespace octo::amr;
    for (int f = 0; f < n_fields; ++f)
        for (int i = 0; i < NX; ++i)
            for (int j = 0; j < NX; ++j)
                for (int k = 0; k < NX; ++k) {
                    const double va = a.at(f, i, j, k);
                    const double vb = b.at(f, i, j, k);
                    if (exact) {
                        EXPECT_EQ(va, vb)
                            << "f=" << f << " " << i << "," << j << "," << k;
                    } else {
                        const double tol = rel_tol *
                                           std::max({1.0, std::abs(va),
                                                     std::abs(vb)});
                        EXPECT_NEAR(va, vb, tol)
                            << "f=" << f << " " << i << "," << j << "," << k;
                    }
                }
}

TEST(KernelHydro, UpdateKernelsScalarVsGpuBitIdentical) {
    using namespace octo::amr;
    const phys::ideal_gas_eos eos;
    const auto fx = run_fluxes({kernel::backend_kind::scalar, 1, 0});
    const double dt = 1e-3;

    // u0 snapshot ([q][i][j][k] over interior cells) for the RK blend.
    aligned_vector<double> u0(static_cast<std::size_t>(n_fields) * INX3);
    {
        std::size_t idx = 0;
        for (int q = 0; q < n_fields; ++q)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int k = 0; k < INX; ++k, ++idx) {
                        u0[idx] = test_leaf().interior(q, i, j, k);
                    }
    }

    auto apply = [&](const kernel::exec_config& cfg) {
        amr::subgrid g = test_leaf();
        octo::kernel::run_flux_divergence(cfg, g, fx.lf, dt);
        octo::kernel::run_blend(cfg, g, u0);
        octo::kernel::run_dual_energy(cfg, g, eos);
        return g;
    };
    const auto s = apply({kernel::backend_kind::scalar, 1, 0});
    const auto g = apply({kernel::backend_kind::gpu, 1, 0});
    compare_subgrids(s, g, /*exact=*/true);
    for (const int w : {2, 4, 8}) {
        const auto v = apply({kernel::backend_kind::simd, w, 0});
        compare_subgrids(s, v, /*exact=*/false);
    }
    // The update actually changed the state (the comparison is not vacuous).
    bool changed = false;
    for (int i = 0; i < INX && !changed; ++i)
        for (int j = 0; j < INX && !changed; ++j)
            for (int k = 0; k < INX && !changed; ++k) {
                changed = s.interior(f_egas, i, j, k) !=
                          test_leaf().interior(f_egas, i, j, k);
            }
    EXPECT_TRUE(changed);
}

// ---- autotune cache ---------------------------------------------------------

TEST(Autotune, ColdSweepPersistWarmAndDiskHits) {
    const std::string path = "test_kernel_autotune.cache";
    std::remove(path.c_str());
    const auto& apex = rt::apex_registry::instance();
    const auto sweeps0 = apex.counter("kernel.autotune.sweeps");
    const auto hits0 = apex.counter("kernel.autotune.hits");
    const auto disk0 = apex.counter("kernel.autotune.disk_hits");

    std::vector<kernel::tuned_config> cands;
    for (const int w : {8, 4, 2, 1}) {
        kernel::tuned_config c;
        c.width = w;
        cands.push_back(c);
    }
    const auto measure = [](const kernel::tuned_config& c) {
        return c.width == 4 ? 10.0 : 1.0;
    };

    kernel::autotune_cache cold(path);
    const auto tc = cold.tune("host", "test.kernel", kernel::backend_kind::simd,
                              cands, measure);
    EXPECT_EQ(tc.width, 4);
    EXPECT_DOUBLE_EQ(tc.gflops, 10.0);
    EXPECT_EQ(cold.sweeps(), 1u);
    EXPECT_EQ(cold.hits(), 0u);

    // Warm: tune() is served from memory, no second sweep.
    const auto warm = cold.tune("host", "test.kernel",
                                kernel::backend_kind::simd, cands, measure);
    EXPECT_EQ(warm.width, 4);
    EXPECT_EQ(cold.sweeps(), 1u);
    EXPECT_EQ(cold.hits(), 1u);
    EXPECT_EQ(cold.disk_hits(), 0u);

    // A new instance on the same path serves the persisted entry as a disk
    // hit — the cross-process warm start.
    kernel::autotune_cache reopened(path);
    const auto from_disk =
        reopened.lookup("host", "test.kernel", kernel::backend_kind::simd);
    ASSERT_TRUE(from_disk.has_value());
    EXPECT_EQ(from_disk->width, 4);
    EXPECT_EQ(from_disk->tile, tc.tile);
    EXPECT_DOUBLE_EQ(from_disk->gflops, 10.0);
    EXPECT_EQ(reopened.disk_hits(), 1u);
    // Second lookup: still one DISK hit (counted once), two warm hits.
    (void)reopened.lookup("host", "test.kernel", kernel::backend_kind::simd);
    EXPECT_EQ(reopened.disk_hits(), 1u);
    EXPECT_EQ(reopened.hits(), 2u);

    // The counters are APEX-visible.
    EXPECT_EQ(apex.counter("kernel.autotune.sweeps"), sweeps0 + 1);
    EXPECT_EQ(apex.counter("kernel.autotune.hits"), hits0 + 3);
    EXPECT_EQ(apex.counter("kernel.autotune.disk_hits"), disk0 + 1);
    std::remove(path.c_str());
}

TEST(Autotune, FlushTimeoutPersistsAndOldCacheLinesStillParse) {
    const std::string path = "test_kernel_autotune_flush.cache";
    std::remove(path.c_str());
    {
        kernel::tuned_config tc;
        tc.backend = kernel::backend_kind::gpu;
        tc.gpu_batch = 64;
        tc.flush_us = 500.0;
        tc.gflops = 7.0;
        kernel::autotune_cache cache(path);
        cache.store("host", "flush.kernel", kernel::backend_kind::gpu, tc);
    }
    // Round-trips through the 8-field disk format.
    kernel::autotune_cache reopened(path);
    const auto tc =
        reopened.lookup("host", "flush.kernel", kernel::backend_kind::gpu);
    ASSERT_TRUE(tc.has_value());
    EXPECT_EQ(tc->gpu_batch, 64u);
    EXPECT_DOUBLE_EQ(tc->flush_us, 500.0);
    EXPECT_DOUBLE_EQ(tc->gflops, 7.0);

    // A pre-flush 7-field line (machine|kernel|backend|width|tile|gpu_batch|
    // gflops) still parses: flush_us falls back to the built-in default.
    {
        std::ofstream out(path, std::ios::trunc);
        out << "host|old.kernel|gpu|1|0|32|5.5\n";
    }
    kernel::autotune_cache old(path);
    const auto oc = old.lookup("host", "old.kernel", kernel::backend_kind::gpu);
    ASSERT_TRUE(oc.has_value());
    EXPECT_EQ(oc->gpu_batch, 32u);
    EXPECT_DOUBLE_EQ(oc->flush_us, kernel::tuned_config{}.flush_us);
    EXPECT_DOUBLE_EQ(oc->gflops, 5.5);
    std::remove(path.c_str());
}

TEST(Autotune, TiesKeepTheFirstCandidate) {
    // All candidates measure the same -> the winner is the first one listed.
    // Sweeps list the fixed default first, so tuned >= default always holds.
    const std::string path = "test_kernel_autotune_ties.cache";
    std::remove(path.c_str());
    std::vector<kernel::tuned_config> cands;
    for (const int w : {8, 4, 2, 1}) {
        kernel::tuned_config c;
        c.width = w;
        cands.push_back(c);
    }
    kernel::autotune_cache cache(path);
    const auto tc = cache.tune("host", "flat.kernel",
                               kernel::backend_kind::simd, cands,
                               [](const kernel::tuned_config&) { return 1.0; });
    EXPECT_EQ(tc.width, 8);
    EXPECT_EQ(tc.tile, 0);
    std::remove(path.c_str());
}

} // namespace

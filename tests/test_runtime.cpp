// Tests for the HPX-substitute runtime: thread pool, futures/continuations,
// when_all, channels, latch. These check the invariants DESIGN.md lists:
// continuations fire exactly once, when_all joins all states, work-helping
// get() cannot deadlock a small pool, channels deliver in order.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "amr/tree.hpp"
#include "dist/locality.hpp"
#include "hydro/update.hpp"
#include "net/faulty.hpp"
#include "net/parcelport.hpp"
#include "runtime/apex.hpp"
#include "runtime/channel.hpp"
#include "runtime/future.hpp"
#include "runtime/latch.hpp"
#include "runtime/thread_pool.hpp"
#include "simd/pack.hpp"

namespace {

using namespace octo;
using namespace octo::rt;

TEST(ThreadPool, ExecutesPostedTasks) {
    thread_pool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) pool.post([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedSpawnsComplete) {
    thread_pool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
        pool.post([&, i] {
            for (int j = 0; j < i; ++j) pool.post([&] { count.fetch_add(1); });
        });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 45);
}

TEST(ThreadPool, CurrentIdentifiesWorkers) {
    thread_pool pool(2);
    EXPECT_EQ(thread_pool::current(), nullptr);
    std::atomic<bool> ok{false};
    pool.post([&] { ok = (thread_pool::current() == &pool); });
    pool.wait_idle();
    EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, WorkStealingBalances) {
    // One task fans out 1000 children from a single worker; stealing must let
    // the other worker participate: total completes quickly either way, we
    // just assert completion.
    thread_pool pool(4);
    std::atomic<int> done{0};
    pool.post([&] {
        for (int i = 0; i < 1000; ++i) pool.post([&] { done.fetch_add(1); });
    });
    pool.wait_idle();
    EXPECT_EQ(done.load(), 1000);
}

TEST(Future, AsyncReturnsValue) {
    thread_pool pool(2);
    auto f = async(pool, [] { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(Future, VoidAsync) {
    thread_pool pool(2);
    std::atomic<bool> ran{false};
    auto f = async(pool, [&] { ran = true; });
    f.get();
    EXPECT_TRUE(ran.load());
}

TEST(Future, MakeReadyFuture) {
    auto f = make_ready_future(std::string("hello"));
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), "hello");
    auto fv = make_ready_future();
    EXPECT_TRUE(fv.is_ready());
}

TEST(Future, ExceptionPropagates) {
    thread_pool pool(2);
    auto f = async(pool, []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Future, ThenChainsValues) {
    thread_pool pool(2);
    auto f = async(pool, [] { return 10; })
                 .then(pool, [](future<int> g) { return g.get() * 2; })
                 .then(pool, [](future<int> g) { return g.get() + 1; });
    EXPECT_EQ(f.get(), 21);
}

TEST(Future, ThenOnReadyFutureRuns) {
    thread_pool pool(2);
    auto f = make_ready_future(5).then(pool, [](future<int> g) { return g.get() * 3; });
    EXPECT_EQ(f.get(), 15);
}

TEST(Future, ThenFiresExactlyOnce) {
    thread_pool pool(2);
    std::atomic<int> fires{0};
    std::vector<future<void>> fs;
    for (int i = 0; i < 200; ++i) {
        fs.push_back(async(pool, [] {}).then(pool, [&](future<void>) { fires.fetch_add(1); }));
    }
    for (auto& f : fs) f.get();
    EXPECT_EQ(fires.load(), 200);
}

TEST(Future, ExceptionThroughThen) {
    thread_pool pool(2);
    auto f = async(pool, []() -> int { throw std::runtime_error("x"); })
                 .then(pool, [](future<int> g) { return g.get() + 1; });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Future, GetFromWorkerHelpsInsteadOfDeadlocking) {
    // A 1-thread pool where a task blocks on a future produced by another
    // task would deadlock with OS-blocking get(); work-helping must resolve it.
    thread_pool pool(1);
    auto inner_done = async(pool, [&pool] {
        auto inner = async(pool, [] { return 7; });
        return inner.get() + 1; // worker helps here
    });
    EXPECT_EQ(inner_done.get(), 8);
}

TEST(Future, DeepHelpChain) {
    thread_pool pool(1);
    // Chain of 50 nested gets on a single worker.
    std::function<int(int)> spawn = [&](int depth) -> int {
        if (depth == 0) return 0;
        auto f = async(pool, [&, depth] { return spawn(depth - 1) + 1; });
        return f.get();
    };
    EXPECT_EQ(spawn(50), 50);
}

TEST(Future, PromiseSetBeforeGetFuture) {
    promise<int> p;
    auto f = p.get_future();
    p.set_value(9);
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), 9);
}

TEST(WhenAll, VectorJoinsAll) {
    thread_pool pool(4);
    std::vector<future<int>> fs;
    for (int i = 0; i < 64; ++i) fs.push_back(async(pool, [i] { return i; }));
    auto joined = when_all(std::move(fs)).get();
    int sum = 0;
    for (auto& f : joined) sum += f.get();
    EXPECT_EQ(sum, 64 * 63 / 2);
}

TEST(WhenAll, EmptyVectorIsReady) {
    auto f = when_all(std::vector<future<int>>{});
    EXPECT_TRUE(f.is_ready());
    EXPECT_TRUE(f.get().empty());
}

TEST(WhenAll, Heterogeneous) {
    thread_pool pool(2);
    auto fa = async(pool, [] { return 1; });
    auto fb = async(pool, [] { return std::string("two"); });
    auto [ra, rb] = when_all(std::move(fa), std::move(fb)).get();
    EXPECT_EQ(ra.get(), 1);
    EXPECT_EQ(rb.get(), "two");
}

TEST(WhenAll, ContinuationAfterJoin) {
    thread_pool pool(2);
    std::vector<future<int>> fs;
    for (int i = 0; i < 8; ++i) fs.push_back(async(pool, [i] { return i * i; }));
    auto total = when_all(std::move(fs)).then(pool, [](future<std::vector<future<int>>> g) {
        int s = 0;
        for (auto& f : g.get()) s += f.get();
        return s;
    });
    EXPECT_EQ(total.get(), 140);
}

TEST(Channel, InOrderDelivery) {
    channel<int> ch;
    ch.set(1);
    ch.set(2);
    ch.set(3);
    EXPECT_EQ(ch.get().get(), 1);
    EXPECT_EQ(ch.get().get(), 2);
    EXPECT_EQ(ch.get().get(), 3);
}

TEST(Channel, GetBeforeSet) {
    thread_pool pool(2);
    channel<int> ch;
    auto f0 = ch.get();
    auto f1 = ch.get(); // fetch two timesteps ahead (paper §5.2)
    EXPECT_FALSE(f0.is_ready());
    ch.set(10);
    ch.set(20);
    EXPECT_EQ(f0.get(), 10);
    EXPECT_EQ(f1.get(), 20);
}

TEST(Channel, ContinuationOnReceive) {
    thread_pool pool(2);
    channel<int> ch;
    auto doubled = ch.get().then(pool, [](future<int> g) { return g.get() * 2; });
    ch.set(21);
    EXPECT_EQ(doubled.get(), 42);
}

TEST(Channel, ManyProducersManyConsumers) {
    thread_pool pool(4);
    channel<int> ch;
    constexpr int n = 500;
    std::vector<future<int>> gets;
    gets.reserve(n);
    for (int i = 0; i < n; ++i) gets.push_back(ch.get());
    for (int i = 0; i < n; ++i) pool.post([&ch, i] { ch.set(i); });
    long long sum = 0;
    for (auto& f : gets) sum += f.get();
    EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(Channel, BufferedCount) {
    channel<int> ch;
    EXPECT_EQ(ch.buffered(), 0u);
    ch.set(1);
    ch.set(2);
    EXPECT_EQ(ch.buffered(), 2u);
    (void)ch.get();
    EXPECT_EQ(ch.buffered(), 1u);
}

TEST(Latch, CountsDownToReady) {
    latch l(3);
    EXPECT_FALSE(l.try_wait());
    l.count_down();
    l.count_down(2);
    EXPECT_TRUE(l.try_wait());
    l.wait(); // must not block
}

TEST(Latch, ZeroIsImmediatelyReady) {
    latch l(0);
    EXPECT_TRUE(l.try_wait());
}

TEST(Latch, FutureIntegration) {
    thread_pool pool(2);
    latch l(2);
    std::atomic<bool> fired{false};
    auto f = l.done_future().then(pool, [&](future<void>) { fired = true; });
    pool.post([&] { l.count_down(); });
    pool.post([&] { l.count_down(); });
    f.get();
    EXPECT_TRUE(fired.load());
}

// Property-style sweep: futurized divide-and-conquer sums match serial sums
// for many sizes and pool widths — exercises stealing, helping and joins.
class FuturizedReduce : public ::testing::TestWithParam<std::tuple<int, int>> {};

int par_sum(thread_pool& pool, const std::vector<int>& v, std::size_t lo, std::size_t hi) {
    if (hi - lo <= 16) {
        return std::accumulate(v.begin() + static_cast<long>(lo),
                               v.begin() + static_cast<long>(hi), 0);
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    auto left = async(pool, [&, lo, mid] { return par_sum(pool, v, lo, mid); });
    const int right = par_sum(pool, v, mid, hi);
    return left.get() + right;
}

TEST_P(FuturizedReduce, MatchesSerial) {
    const auto [threads, size] = GetParam();
    thread_pool pool(static_cast<unsigned>(threads));
    std::vector<int> v(static_cast<std::size_t>(size));
    std::iota(v.begin(), v.end(), 1);
    const int expect = size * (size + 1) / 2;
    EXPECT_EQ(par_sum(pool, v, 0, v.size()), expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuturizedReduce,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 17, 256, 1000)));

// ---- performance counters (APEX substitute, paper §4.1) --------------------

TEST(Apex, CountersAccumulate) {
    auto& reg = apex_registry::instance();
    reg.reset();
    apex_count("test.parcels");
    apex_count("test.parcels", 4);
    EXPECT_EQ(reg.counter("test.parcels"), 5u);
    EXPECT_EQ(reg.counter("nonexistent"), 0u);
}

TEST(Apex, ScopedTimersAggregateByName) {
    auto& reg = apex_registry::instance();
    reg.reset();
    for (int i = 0; i < 3; ++i) {
        apex_timer t("test.phase");
        volatile double x = 0;
        for (int j = 0; j < 10000; ++j) x = x + 1.0;
        (void)x;
    }
    const auto st = reg.timer("test.phase");
    EXPECT_EQ(st.count, 3u);
    EXPECT_GT(st.total_seconds, 0.0);
}

TEST(Apex, GaugeOverwritesInsteadOfAccumulating) {
    auto& reg = apex_registry::instance();
    reg.reset();
    apex_gauge("test.width", 4);
    apex_gauge("test.width", 8);
    EXPECT_EQ(reg.counter("test.width"), 8u);
}

TEST(Apex, ReliabilityCountersSurfaceInTheRegistry) {
    // The fault-tolerance counters of ISSUE 5 flow into APEX the same way
    // the hydro pipeline counters do, so a campaign's health is observable
    // through the one registry the paper's workflow reads.
    auto& reg = apex_registry::instance();
    const auto retries0 = reg.counter("net.retries");
    const auto dups0 = reg.counter("net.dups_dropped");
    {
        support::fault_config cfg;
        cfg.seed = 13;
        cfg.drop_prob = 0.4;
        cfg.dup_prob = 0.4;
        dist::reliability_params rel;
        rel.retransmit_timeout = std::chrono::microseconds(500);
        rel.tick = std::chrono::microseconds(100);
        dist::runtime rt(2, net::make_faulty_port(net::make_mpi_port(), cfg),
                         1, rel);
        std::atomic<int> ran{0};
        const auto act = rt.register_action(
            "tick", [&](int, dist::iarchive) { ran.fetch_add(1); });
        for (int i = 0; i < 60; ++i) rt.apply(1, act, dist::oarchive{});
        rt.wait_quiet();
        EXPECT_EQ(ran.load(), 60);
    }
    EXPECT_GT(reg.counter("net.retries"), retries0);
    EXPECT_GT(reg.counter("net.dups_dropped"), dups0);
    // The counter report carries them alongside the rest.
    bool found = false;
    for (const auto& [name, value] : reg.counter_report()) {
        if (name == "net.retries") found = value > 0;
    }
    EXPECT_TRUE(found);
}

TEST(Apex, PeerDeathCountersSurfaceInTheRegistry) {
    // The elastic-recovery counters of ISSUE 10 flow through the same
    // registry: one increment per declared death, and every parcel swallowed
    // by (or addressed to) a dead rank is accounted.
    auto& reg = apex_registry::instance();
    const auto deaths0 = reg.counter("net.peer_deaths");
    const auto dropped0 = reg.counter("net.dead_dropped");
    {
        dist::runtime rt(3, net::make_mpi_port());
        std::atomic<int> ran{0};
        const auto act = rt.register_action(
            "post-death", [&](int, dist::iarchive) { ran.fetch_add(1); });
        rt.kill(1);
        rt.apply(1, act, dist::oarchive{}); // swallowed unacked by the corpse
        rt.declare_dead(1);
        rt.apply(1, act, dist::oarchive{}); // dropped at the source now
        rt.wait_quiet();
        EXPECT_EQ(ran.load(), 0);
        EXPECT_EQ(rt.net_stats().peer_deaths, 1u);
    }
    EXPECT_EQ(reg.counter("net.peer_deaths"), deaths0 + 1);
    EXPECT_GT(reg.counter("net.dead_dropped"), dropped0);
}

TEST(Apex, HydroStepRegistersPipelineCounters) {
    // The futurized hydro step must publish its task-graph counters: the
    // number of pipeline tasks, the per-leaf CFL reduction tasks, the SIMD
    // lane width gauge, and the ghost-fill/compute overlap gauge.
    auto& reg = apex_registry::instance();
    reg.reset();

    amr::box_geometry root;
    root.origin = {0, 0, 0};
    root.dx = 1.0 / amr::INX;
    amr::tree t(root);
    for (const auto k : t.leaves_sfc()) t.refine(k);
    phys::ideal_gas_eos eos(1.4);
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < amr::INX; ++i)
            for (int j = 0; j < amr::INX; ++j)
                for (int kk = 0; kk < amr::INX; ++kk) {
                    g.interior(amr::f_rho, i, j, kk) = 1.0;
                    g.interior(amr::f_egas, i, j, kk) = 1.0;
                    g.interior(amr::f_tau, i, j, kk) =
                        eos.tau_from_internal(1.0);
                }
    }
    hydro::step_options opt; // defaults: use_simd + futurized
    opt.eos = eos;
    (void)hydro::step(t, opt);

    const auto leaves = t.leaves_sfc().size();
    // Per stage: per-leaf fills, 3 flux sweeps and an update at minimum,
    // plus the CFL tasks counted into the graph.
    EXPECT_GE(reg.counter("hydro.stage_tasks"), 2 * 4 * leaves);
    EXPECT_EQ(reg.counter("hydro.cfl_tasks"), leaves);
    EXPECT_EQ(reg.counter("hydro.simd_width"),
              static_cast<std::uint64_t>(octo::simd::default_width));
    // The overlap gauge is a percentage.
    EXPECT_LE(reg.counter("hydro.ghost_overlap_fraction"), 100u);

    // The scalar/barriered ablation path reports lane width 1 and posts no
    // pipeline tasks beyond the CFL reduction.
    reg.reset();
    opt.use_simd = false;
    opt.futurized = false;
    (void)hydro::step(t, opt);
    EXPECT_EQ(reg.counter("hydro.simd_width"), 1u);
    EXPECT_EQ(reg.counter("hydro.stage_tasks"), 0u);
    EXPECT_EQ(reg.counter("hydro.cfl_tasks"), leaves);
}

TEST(Apex, ReportSortsByTotalTime) {
    auto& reg = apex_registry::instance();
    reg.reset();
    reg.record_time("small", 0.001);
    reg.record_time("big", 1.0);
    const auto report = reg.timer_report();
    ASSERT_EQ(report.size(), 2u);
    EXPECT_EQ(report[0].first, "big");
    EXPECT_EQ(report[1].first, "small");
}

TEST(ThreadPool, StatisticsCountExecutionAndSteals) {
    thread_pool pool(2);
    std::atomic<int> done{0};
    // The producer posts into its own local queue and then refuses to return
    // until every posted task has run. Since it occupies its worker the whole
    // time, the only way its queue can drain is the other worker stealing —
    // making the steal count deterministic instead of a scheduling race.
    pool.post([&] {
        for (int i = 0; i < 500; ++i) pool.post([&] { done.fetch_add(1); });
        while (done.load(std::memory_order_acquire) < 500) {
            std::this_thread::yield();
        }
    });
    pool.wait_idle();
    const auto st = pool.stats();
    EXPECT_EQ(done.load(), 500);
    EXPECT_EQ(st.tasks_posted, 501u);
    EXPECT_EQ(st.tasks_executed, 501u);
    // All 500 child tasks were stolen; the producer task itself may add one
    // more steal depending on which worker claimed it.
    EXPECT_GE(st.tasks_stolen, 500u);
    EXPECT_LE(st.tasks_stolen, 501u);
}

TEST(ThreadPool, CloseRejectsNewWorkButRunsQueuedTasks) {
    // A killed locality's pool stops ACCEPTING work (ISSUE 10); tasks that
    // made it in before the close still run — death is not memory unsafety.
    thread_pool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i) pool.post([&] { ran.fetch_add(1); });
    EXPECT_TRUE(pool.accepting());
    pool.close();
    EXPECT_FALSE(pool.accepting());
    EXPECT_FALSE(pool.post([&] { ran.fetch_add(1); }));
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 50);
    const auto st = pool.stats();
    EXPECT_EQ(st.tasks_rejected, 1u);
    EXPECT_EQ(st.tasks_posted, 50u);
    EXPECT_EQ(st.tasks_executed, 50u);
}

} // namespace

// Unit tests for the support layer: vec3, Morton keys, FLOP counters, RNG,
// aligned storage, and the SIMD pack abstraction.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "simd/pack.hpp"
#include "support/aligned.hpp"
#include "support/buffer_recycler.hpp"
#include "support/flops.hpp"
#include "support/morton.hpp"
#include "support/rng.hpp"
#include "support/vec3.hpp"

namespace {

using octo::dvec3;
using octo::ivec3;

TEST(Vec3, Arithmetic) {
    dvec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, (dvec3{5, 7, 9}));
    EXPECT_EQ(b - a, (dvec3{3, 3, 3}));
    EXPECT_EQ(a * 2.0, (dvec3{2, 4, 6}));
    EXPECT_EQ(2.0 * a, (dvec3{2, 4, 6}));
    EXPECT_EQ(a / 2.0, (dvec3{0.5, 1, 1.5}));
    EXPECT_EQ(-a, (dvec3{-1, -2, -3}));
}

TEST(Vec3, DotCrossNorm) {
    dvec3 a{1, 0, 0}, b{0, 1, 0};
    EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
    EXPECT_EQ(cross(a, b), (dvec3{0, 0, 1}));
    EXPECT_DOUBLE_EQ(norm(dvec3{3, 4, 0}), 5.0);
    EXPECT_DOUBLE_EQ(norm2(dvec3{3, 4, 0}), 25.0);
}

TEST(Vec3, CrossAntisymmetry) {
    octo::xoshiro256 rng(7);
    for (int i = 0; i < 100; ++i) {
        dvec3 a{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        dvec3 b{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        EXPECT_EQ(cross(a, b), -cross(b, a));
        EXPECT_NEAR(dot(cross(a, b), a), 0.0, 1e-15);
    }
}

TEST(Vec3, Indexing) {
    dvec3 v{7, 8, 9};
    EXPECT_DOUBLE_EQ(v[0], 7);
    EXPECT_DOUBLE_EQ(v[1], 8);
    EXPECT_DOUBLE_EQ(v[2], 9);
    v[1] = 42;
    EXPECT_DOUBLE_EQ(v.y, 42);
}

TEST(Morton, RoundTripExhaustiveSmall) {
    for (std::uint32_t x = 0; x < 16; ++x)
        for (std::uint32_t y = 0; y < 16; ++y)
            for (std::uint32_t z = 0; z < 16; ++z) {
                const auto key = octo::morton_encode(x, y, z);
                const auto d = octo::morton_decode(key);
                EXPECT_EQ(d.x, x);
                EXPECT_EQ(d.y, y);
                EXPECT_EQ(d.z, z);
            }
}

TEST(Morton, RoundTripLargeCoordinates) {
    octo::xoshiro256 rng(3);
    for (int i = 0; i < 1000; ++i) {
        const auto x = static_cast<std::uint32_t>(rng.below(1u << 21));
        const auto y = static_cast<std::uint32_t>(rng.below(1u << 21));
        const auto z = static_cast<std::uint32_t>(rng.below(1u << 21));
        const auto d = octo::morton_decode(octo::morton_encode(x, y, z));
        EXPECT_EQ(d, (octo::vec3<std::uint32_t>{x, y, z}));
    }
}

TEST(Morton, IsInjectiveOnGrid) {
    std::set<std::uint64_t> keys;
    for (std::uint32_t x = 0; x < 8; ++x)
        for (std::uint32_t y = 0; y < 8; ++y)
            for (std::uint32_t z = 0; z < 8; ++z) keys.insert(octo::morton_encode(x, y, z));
    EXPECT_EQ(keys.size(), 512u);
    // Keys of an 8^3 grid fill exactly [0, 512).
    EXPECT_EQ(*keys.rbegin(), 511u);
}

TEST(Morton, PreservesOctantNesting) {
    // The top 3 bits of a depth-d Morton key identify the child octant —
    // the property the SFC partitioner relies on.
    const auto parent = octo::morton_encode(2, 3, 1);
    for (std::uint32_t cx = 0; cx < 2; ++cx)
        for (std::uint32_t cy = 0; cy < 2; ++cy)
            for (std::uint32_t cz = 0; cz < 2; ++cz) {
                const auto child = octo::morton_encode(4 + cx, 6 + cy, 2 + cz);
                EXPECT_EQ(child >> 3, parent);
            }
}

TEST(Flops, CountsPerSite) {
    octo::flop_reset();
    octo::count_flops(octo::kernel_class::fmm_multipole, octo::exec_site::cpu, 455);
    octo::count_flops(octo::kernel_class::fmm_multipole, octo::exec_site::gpu, 910);
    octo::count_launch(octo::kernel_class::fmm_multipole, octo::exec_site::cpu);
    octo::count_launch(octo::kernel_class::fmm_multipole, octo::exec_site::gpu);
    octo::count_launch(octo::kernel_class::fmm_multipole, octo::exec_site::gpu);
    const auto s = octo::flop_snapshot(octo::kernel_class::fmm_multipole);
    EXPECT_EQ(s.cpu_flops, 455u);
    EXPECT_EQ(s.gpu_flops, 910u);
    EXPECT_EQ(s.flops(), 1365u);
    EXPECT_EQ(s.cpu_launches, 1u);
    EXPECT_EQ(s.gpu_launches, 2u);
    EXPECT_NEAR(s.gpu_launch_fraction(), 2.0 / 3.0, 1e-15);
}

TEST(Flops, AggregatesAcrossThreads) {
    octo::flop_reset();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 1000; ++i) {
                octo::count_flops(octo::kernel_class::fmm_monopole, octo::exec_site::cpu, 12);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(octo::flop_snapshot(octo::kernel_class::fmm_monopole).cpu_flops, 48000u);
    octo::flop_reset();
    EXPECT_EQ(octo::flop_snapshot(octo::kernel_class::fmm_monopole).cpu_flops, 0u);
}

TEST(Rng, DeterministicAndRoughlyUniform) {
    octo::xoshiro256 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
    octo::xoshiro256 r(1);
    double mean = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        mean += u;
    }
    EXPECT_NEAR(mean / n, 0.5, 0.01);
}

TEST(Aligned, VectorIsAligned) {
    octo::aligned_vector<double> v(100, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % octo::simd_alignment, 0u);
    EXPECT_DOUBLE_EQ(v[99], 1.0);
}

// ---- buffer recycler ---------------------------------------------------------
//
// The recycler is a process-wide singleton shared with every aligned_vector,
// so the tests work on stat deltas and use distinctive request sizes that no
// other allocation in this binary produces.

TEST(BufferRecycler, SecondAllocationOfSameSizeIsAHit) {
    auto& r = octo::buffer_recycler::instance();
    constexpr std::size_t bytes = 12'347; // odd size: private bucket
    const auto s0 = r.stats();

    void* p = r.allocate(bytes, 64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    r.deallocate(p, bytes, 64);

    void* q = r.allocate(bytes, 64);
    EXPECT_EQ(q, p); // the parked buffer comes back
    r.deallocate(q, bytes, 64);

    const auto s1 = r.stats();
    EXPECT_EQ(s1.misses - s0.misses, 1u);
    EXPECT_EQ(s1.hits - s0.hits, 1u);
    EXPECT_EQ(s1.returns - s0.returns, 2u);
}

TEST(BufferRecycler, BucketsAreKeyedOnSizeAndAlignment) {
    auto& r = octo::buffer_recycler::instance();
    constexpr std::size_t bytes = 23'459;
    const auto s0 = r.stats();

    void* a = r.allocate(bytes, 64);
    r.deallocate(a, bytes, 64);
    // Different size and different alignment both miss the parked buffer.
    void* b = r.allocate(bytes + 8, 64);
    void* c = r.allocate(bytes, 32);
    r.deallocate(b, bytes + 8, 64);
    r.deallocate(c, bytes, 32);

    const auto s1 = r.stats();
    EXPECT_EQ(s1.hits - s0.hits, 0u);
    EXPECT_EQ(s1.misses - s0.misses, 3u);
}

TEST(BufferRecycler, ClearDropsParkedBuffers) {
    auto& r = octo::buffer_recycler::instance();
    constexpr std::size_t bytes = 34'567;
    void* p = r.allocate(bytes, 64);
    r.deallocate(p, bytes, 64);
    EXPECT_GT(r.stats().pooled_bytes, 0u);

    r.clear();
    EXPECT_EQ(r.stats().pooled_bytes, 0u);

    const auto s0 = r.stats();
    void* q = r.allocate(bytes, 64);
    r.deallocate(q, bytes, 64);
    EXPECT_EQ(r.stats().misses - s0.misses, 1u); // pool really was emptied
    r.clear();
}

TEST(BufferRecycler, DisabledMeansPassThrough) {
    auto& r = octo::buffer_recycler::instance();
    constexpr std::size_t bytes = 45'679;
    r.clear();
    r.set_enabled(false);
    const auto s0 = r.stats();
    void* p = r.allocate(bytes, 64);
    r.deallocate(p, bytes, 64); // freed, not parked
    void* q = r.allocate(bytes, 64);
    r.deallocate(q, bytes, 64);
    const auto s1 = r.stats();
    EXPECT_EQ(s1.hits - s0.hits, 0u);
    EXPECT_EQ(s1.misses - s0.misses, 2u);
    EXPECT_EQ(s1.returns - s0.returns, 0u);
    r.set_enabled(true);
}

TEST(BufferRecycler, AlignedVectorRoundTripsThroughPool) {
    auto& r = octo::buffer_recycler::instance();
    constexpr std::size_t n = 7'001; // distinctive element count
    { octo::aligned_vector<double> v(n, 1.0); }
    const auto s0 = r.stats();
    { octo::aligned_vector<double> v(n, 2.0); }
    const auto s1 = r.stats();
    EXPECT_EQ(s1.hits - s0.hits, 1u);
    EXPECT_EQ(s1.misses - s0.misses, 0u);
}

// ---- SIMD pack -------------------------------------------------------------

using octo::simd::dpack;

TEST(Simd, BroadcastAndLanes) {
    dpack p(3.5);
    for (std::size_t i = 0; i < dpack::size(); ++i) EXPECT_DOUBLE_EQ(p[i], 3.5);
}

TEST(Simd, LoadStoreRoundTrip) {
    alignas(64) double in[dpack::size()];
    alignas(64) double out[dpack::size()];
    for (std::size_t i = 0; i < dpack::size(); ++i) in[i] = static_cast<double>(i) + 0.25;
    dpack::load(in).store(out);
    for (std::size_t i = 0; i < dpack::size(); ++i) EXPECT_DOUBLE_EQ(out[i], in[i]);
}

TEST(Simd, Arithmetic) {
    dpack a(2.0), b(0.5);
    EXPECT_DOUBLE_EQ((a + b)[0], 2.5);
    EXPECT_DOUBLE_EQ((a - b)[1], 1.5);
    EXPECT_DOUBLE_EQ((a * b)[2], 1.0);
    EXPECT_DOUBLE_EQ((a / b)[3], 4.0);
    EXPECT_DOUBLE_EQ((-a)[0], -2.0);
}

TEST(Simd, HorizontalSum) {
    alignas(64) double in[dpack::size()];
    double expect = 0;
    for (std::size_t i = 0; i < dpack::size(); ++i) {
        in[i] = static_cast<double>(i + 1);
        expect += in[i];
    }
    EXPECT_DOUBLE_EQ(dpack::load(in).hsum(), expect);
    EXPECT_DOUBLE_EQ(octo::simd::hsum(dpack::load(in)), expect);
}

TEST(Simd, RsqrtMatchesScalar) {
    alignas(64) double in[dpack::size()];
    octo::xoshiro256 rng(9);
    for (std::size_t i = 0; i < dpack::size(); ++i) in[i] = rng.uniform(0.1, 100.0);
    const auto r = octo::simd::rsqrt(dpack::load(in));
    for (std::size_t i = 0; i < dpack::size(); ++i) {
        EXPECT_DOUBLE_EQ(r[i], octo::simd::rsqrt(in[i]));
    }
}

TEST(Simd, MinMax) {
    dpack a(1.0), b(2.0);
    EXPECT_DOUBLE_EQ(octo::simd::max(a, b)[0], 2.0);
    EXPECT_DOUBLE_EQ(octo::simd::min(a, b)[0], 1.0);
}

TEST(Simd, SqrtLaneWise) {
    dpack a(16.0);
    const auto r = octo::simd::sqrt(a);
    for (std::size_t i = 0; i < dpack::size(); ++i) EXPECT_DOUBLE_EQ(r[i], 4.0);
}

// The kernel-template trick from paper §5.1: the same function template must
// work for scalar and pack types.
template <class T>
T inv_distance(T dx, T dy, T dz) {
    return octo::simd::rsqrt(dx * dx + dy * dy + dz * dz);
}

TEST(Simd, SameTemplateScalarAndVector) {
    const double s = inv_distance(3.0, 4.0, 0.0);
    EXPECT_DOUBLE_EQ(s, 0.2);
    const auto v = inv_distance(dpack(3.0), dpack(4.0), dpack(0.0));
    for (std::size_t i = 0; i < dpack::size(); ++i) EXPECT_DOUBLE_EQ(v[i], 0.2);
}

} // namespace

// Tests for the cluster experiment machinery: the Table 4 scenario trees,
// the node-level discrete-event simulator (Table 2 / GPU starvation), and
// the distributed scaling model (Fig 2 / Fig 3). These check the *shape*
// invariants the paper reports; the bench binaries print the full series.

#include <gtest/gtest.h>

#include "cluster/event_sim.hpp"
#include "cluster/machine_model.hpp"
#include "cluster/scenario_tree.hpp"

namespace {

using namespace octo;
using namespace octo::cluster;

TEST(ScenarioTree, CountsTrackTable4) {
    // Paper Table 4: 5417 / 10928 / 42947 / 2.24e5 / 1.5e6 sub-grids.
    const double paper[5] = {5417, 10928, 42947, 2.24e5, 1.5e6};
    std::size_t prev = 0;
    for (int L = 13; L <= 15; ++L) { // deeper levels tested in the bench
        const auto st = build_v1309_tree(L);
        EXPECT_GT(st.subgrids, prev);
        const double ratio = static_cast<double>(st.subgrids) / paper[L - 13];
        EXPECT_GT(ratio, 0.5) << "level " << L;
        EXPECT_LT(ratio, 2.0) << "level " << L;
        EXPECT_EQ(st.paper_level, L);
        EXPECT_GT(st.memory_gb, 0.0);
        EXPECT_TRUE(st.tree.is_balanced21());
        prev = st.subgrids;
    }
}

TEST(ScenarioTree, GrowthRatioRisesTowardEight) {
    // Table 4 growth factors: 2.0, 3.9, 5.2, 6.7 — rising toward 8.
    const auto l13 = build_v1309_tree(13).subgrids;
    const auto l14 = build_v1309_tree(14).subgrids;
    const auto l15 = build_v1309_tree(15).subgrids;
    const double r1 = static_cast<double>(l14) / l13;
    const double r2 = static_cast<double>(l15) / l14;
    EXPECT_GT(r2, r1);
    EXPECT_LT(r2, 8.0);
}

TEST(ScenarioTree, PerSubgridMemoryIsPlausible) {
    // Our per-node storage: fields with ghosts + FMM data; order 0.5 MB.
    EXPECT_GT(bytes_per_subgrid(), 100e3);
    EXPECT_LT(bytes_per_subgrid(), 5e6);
}

// ---- node-level DES (Table 2) ------------------------------------------------

node_sim_config level14_like(node_spec n) {
    node_sim_config c;
    c.node = std::move(n);
    c.work = v1309_workload();
    c.leaves = 9562;  // level-14-analogue composition
    c.refined = 1366;
    return c;
}

TEST(NodeSim, CpuOnlyRateMatchesCalibration) {
    // The 10-core Xeon must reproduce the paper's 125 GFLOP/s FMM rate
    // (30% of peak) by construction of the calibration.
    const auto row = measure_platform(xeon_e5_2660v3(10), v1309_workload(),
                                      9562, 1366);
    EXPECT_NEAR(row.fmm_gflops, 125.0, 15.0);
    EXPECT_NEAR(row.fraction_of_peak, 0.30, 0.05);
    EXPECT_EQ(row.execution, "CPU-only");
}

TEST(NodeSim, GpuAcceleratesTheFmm) {
    const auto cfg_cpu = level14_like(xeon_e5_2660v3(10));
    const auto cpu = simulate_node_step(cfg_cpu);
    const auto cfg_gpu = level14_like(with_v100(xeon_e5_2660v3(10), 1));
    const auto gpu = simulate_node_step(cfg_gpu);
    EXPECT_LT(gpu.makespan_s, cpu.makespan_s);      // total runtime shrinks
    EXPECT_GT(gpu.gpu_launch_fraction(), 0.85);     // paper: 99.9997%; our
    // burst model launches a denser kernel wall, so a somewhat larger
    // fraction falls back (see EXPERIMENTS.md)
    EXPECT_EQ(gpu.fmm_flops, cpu.fmm_flops);        // same physics
}

TEST(NodeSim, StarvationWithManyCoresPerGpu) {
    // Paper §6.1.2: 20 cores + 1 V100 launches a SMALLER fraction of kernels
    // on the GPU than 10 cores + 1 V100 (97.4995% vs 99.9997%) because each
    // thread owns fewer streams and falls back to slow CPU execution.
    const auto g10 = simulate_node_step(level14_like(with_v100(xeon_e5_2660v3(10), 1)));
    const auto g20 = simulate_node_step(level14_like(with_v100(xeon_e5_2660v3(20), 1)));
    EXPECT_GT(g10.gpu_launch_fraction(), g20.gpu_launch_fraction());
    EXPECT_GT(g20.gpu_launch_fraction(), 0.5); // still mostly on the GPU
}

TEST(NodeSim, SecondGpuRelievesStarvation) {
    // Paper: 20 cores + 2 V100 achieves the best fraction of peak (37%).
    const auto r1 = measure_platform(with_v100(xeon_e5_2660v3(20), 1),
                                     v1309_workload(), 9562, 1366);
    const auto r2 = measure_platform(with_v100(xeon_e5_2660v3(20), 2),
                                     v1309_workload(), 9562, 1366);
    EXPECT_LT(r2.total_runtime_s, r1.total_runtime_s);
    EXPECT_GT(r2.gpu_launch_fraction, r1.gpu_launch_fraction);
}

TEST(NodeSim, FasterWithMoreCores) {
    const auto c10 = simulate_node_step(level14_like(xeon_e5_2660v3(10)));
    const auto c20 = simulate_node_step(level14_like(xeon_e5_2660v3(20)));
    EXPECT_LT(c20.makespan_s, c10.makespan_s);
    EXPECT_NEAR(c20.makespan_s, c10.makespan_s / 2.0, 0.15 * c10.makespan_s);
}

TEST(NodeSim, FlopAccountingIsExact) {
    const auto cfg = level14_like(xeon_e5_2660v3(10));
    const auto r = simulate_node_step(cfg);
    const auto expect = static_cast<std::uint64_t>(
        9562 * cfg.work.monopole_kernel_flops +
        1366 * cfg.work.multipole_kernel_flops);
    EXPECT_EQ(r.fmm_flops, expect);
    EXPECT_EQ(r.kernels_total, 9562u + 1366u);
}

// ---- scaling model (Fig 2 / Fig 3) -------------------------------------------

class ScalingModel : public ::testing::Test {
  protected:
    static scaling_point run(int paper_level, int nodes, bool libfabric) {
        static auto st14 = build_v1309_tree(14);
        auto& st = st14;
        OCTO_ASSERT(paper_level == 14);
        (void)paper_level;
        auto parts = amr::partition_sfc(st.tree, nodes);
        auto work = v1309_workload();
        work.dependency_hops = critical_path_hops(14);
        return model_step(st.subgrids, st.leaves, parts, nodes,
                          with_p100(piz_daint_node()),
                          libfabric ? net::libfabric_like() : net::mpi_like(),
                          work);
    }
};

TEST_F(ScalingModel, ThroughputGrowsThenSaturates) {
    const double s1 = run(14, 1, true).subgrids_per_second;
    const double s16 = run(14, 16, true).subgrids_per_second;
    const double s256 = run(14, 256, true).subgrids_per_second;
    const double s2048 = run(14, 2048, true).subgrids_per_second;
    EXPECT_GT(s16, 8 * s1);      // near-linear at small scale
    EXPECT_GT(s256, s16);        // still climbing
    EXPECT_LT(s2048, 2048 * s1); // far from ideal at the tail
}

TEST_F(ScalingModel, LibfabricWinsAtScale) {
    // Paper §6.3: "outperforms it by a factor of almost 3 for the largest
    // runs" — and is slightly SLOWER at low node counts (Fig 3).
    const double ratio1 =
        run(14, 1, true).subgrids_per_second / run(14, 1, false).subgrids_per_second;
    const double ratio2048 = run(14, 2048, true).subgrids_per_second /
                             run(14, 2048, false).subgrids_per_second;
    EXPECT_LT(ratio1, 1.0);
    EXPECT_GT(ratio2048, 2.0);
    EXPECT_LT(ratio2048, 4.0);
}

TEST_F(ScalingModel, RatioIncreasesWithNodeCount) {
    double prev = 0;
    for (int n : {64, 256, 1024, 2048}) {
        const double r = run(14, n, true).subgrids_per_second /
                         run(14, n, false).subgrids_per_second;
        EXPECT_GT(r, prev * 0.95) << n; // monotone up to model noise
        prev = r;
    }
}

} // namespace

// Tests for the hydro solver: PPM properties, KT flux consistency, the exact
// Riemann and Sedov references, the Sod shock tube against the exact
// solution, and the machine-precision conservation ledger (mass, momentum,
// angular momentum) on uniform and AMR grids — the paper's §4.2 claims.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <vector>

#include "amr/halo.hpp"
#include "amr/tree.hpp"
#include "hydro/flux.hpp"
#include "hydro/reconstruct.hpp"
#include "hydro/riemann_exact.hpp"
#include "hydro/sedov.hpp"
#include "hydro/update.hpp"
#include "support/rng.hpp"

namespace {

using namespace octo;
using namespace octo::hydro;
using namespace octo::amr;

// ---- PPM --------------------------------------------------------------------

TEST(Ppm, ReproducesLinearDataExactly) {
    // PPM is exact for linear profiles away from limiting.
    double q[14];
    for (int i = 0; i < 14; ++i) q[i] = 2.0 + 0.5 * i;
    double lo[10], hi[10];
    ppm_reconstruct(q + 2, 10, lo, hi);
    for (int i = 1; i < 9; ++i) {
        EXPECT_NEAR(lo[i], q[i + 2] - 0.25, 1e-13);
        EXPECT_NEAR(hi[i], q[i + 2] + 0.25, 1e-13);
    }
}

TEST(Ppm, PreservesConstants) {
    double q[14];
    for (auto& v : q) v = 3.14;
    double lo[10], hi[10];
    ppm_reconstruct(q + 2, 10, lo, hi);
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(lo[i], 3.14);
        EXPECT_DOUBLE_EQ(hi[i], 3.14);
    }
}

TEST(Ppm, MonotoneAtDiscontinuity) {
    // Face values must stay within neighboring cell averages (no overshoot).
    double q[14] = {1, 1, 1, 1, 1, 1, 1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
    double lo[10], hi[10];
    ppm_reconstruct(q + 2, 10, lo, hi);
    for (int i = 0; i < 10; ++i) {
        const double qc = q[i + 2];
        const double qm = q[i + 1];
        const double qp = q[i + 3];
        const double mn = std::min({qc, qm, qp});
        const double mx = std::max({qc, qm, qp});
        EXPECT_GE(lo[i], mn - 1e-12);
        EXPECT_LE(lo[i], mx + 1e-12);
        EXPECT_GE(hi[i], mn - 1e-12);
        EXPECT_LE(hi[i], mx + 1e-12);
    }
}

TEST(Ppm, FlattensLocalExtrema) {
    double q[14] = {1, 1, 1, 1, 5, 1, 1, 1, 1, 1, 1, 1, 1, 1};
    double lo[10], hi[10];
    ppm_reconstruct(q + 2, 10, lo, hi);
    // Cell index 2 (q[4]) is an extremum: reconstruction must be flat there.
    EXPECT_DOUBLE_EQ(lo[2], 5.0);
    EXPECT_DOUBLE_EQ(hi[2], 5.0);
}

// ---- KT flux ----------------------------------------------------------------

state make_state(double rho, dvec3 v, double p, const phys::ideal_gas_eos& eos) {
    state u{};
    u[f_rho] = rho;
    u[f_sx] = rho * v.x;
    u[f_sy] = rho * v.y;
    u[f_sz] = rho * v.z;
    const double internal = p / (eos.gamma() - 1.0);
    u[f_egas] = internal + 0.5 * rho * norm2(v);
    u[f_tau] = eos.tau_from_internal(internal);
    return u;
}

TEST(KtFlux, ConsistencyWithPhysicalFlux) {
    phys::ideal_gas_eos eos(1.4);
    const state u = make_state(1.2, {0.3, -0.1, 0.2}, 0.8, eos);
    for (int a = 0; a < 3; ++a) {
        const state f = kt_flux(u, u, a, eos);
        const primitives pr = to_primitives(u, eos);
        const state fp = physical_flux(u, pr, a);
        for (int q = 0; q < n_fields; ++q) {
            EXPECT_NEAR(f[q], fp[q], 1e-13 + std::abs(fp[q]) * 1e-13) << a << " " << q;
        }
    }
}

TEST(KtFlux, UpwindsSupersonicFlow) {
    phys::ideal_gas_eos eos(1.4);
    // Supersonic rightward flow: flux must be the left state's flux.
    const state uL = make_state(1.0, {5.0, 0, 0}, 0.1, eos);
    const state uR = make_state(0.5, {5.0, 0, 0}, 0.05, eos);
    const state f = kt_flux(uL, uR, 0, eos);
    const primitives pL = to_primitives(uL, eos);
    const state fL = physical_flux(uL, pL, 0);
    for (int q = 0; q < n_fields; ++q) EXPECT_NEAR(f[q], fL[q], 1e-12);
}

TEST(KtFlux, ReportsSignalSpeed) {
    phys::ideal_gas_eos eos(1.4);
    const state uL = make_state(1.0, {2.0, 0, 0}, 1.0, eos);
    const state uR = make_state(1.0, {-2.0, 0, 0}, 1.0, eos);
    double speed = 0;
    kt_flux(uL, uR, 0, eos, &speed);
    const double c = std::sqrt(1.4);
    EXPECT_NEAR(speed, 2.0 + c, 1e-12);
}

// ---- analytic references ------------------------------------------------------

TEST(RiemannExact, SodStarRegionMatchesToro) {
    // Toro, table 4.2: p* = 0.30313, u* = 0.92745 for the Sod problem.
    const auto s = riemann_exact(sod_left(), sod_right(), 0.5, 1.4);
    EXPECT_NEAR(s.p, 0.30313, 2e-4);
    EXPECT_NEAR(s.u, 0.92745, 2e-4);
}

TEST(RiemannExact, FarFieldReturnsInitialStates) {
    const auto l = riemann_exact(sod_left(), sod_right(), -10.0, 1.4);
    EXPECT_DOUBLE_EQ(l.rho, 1.0);
    const auto r = riemann_exact(sod_left(), sod_right(), 10.0, 1.4);
    EXPECT_DOUBLE_EQ(r.rho, 0.125);
}

TEST(RiemannExact, ShockSpeedBracketsPostShockState) {
    // Density right behind the Sod shock: ~0.26557.
    const auto s = riemann_exact(sod_left(), sod_right(), 1.6, 1.4);
    EXPECT_NEAR(s.rho, 0.26557, 2e-3);
}

TEST(Sedov, AlphaMatchesTabulatedValues) {
    // Standard values: alpha(1.4) ~ 0.851, alpha(5/3) ~ 0.49.
    EXPECT_NEAR(sedov_solve(1.4).alpha, 0.851, 0.02);
    EXPECT_NEAR(sedov_solve(5.0 / 3.0).alpha, 0.49, 0.02);
}

TEST(Sedov, ShockRadiusScalesAsT25) {
    const auto s = sedov_solve(1.4);
    const double r1 = s.shock_radius(1.0, 1.0, 1.0);
    const double r2 = s.shock_radius(1.0, 1.0, 32.0);
    EXPECT_NEAR(r2 / r1, std::pow(32.0, 0.4), 1e-12);
    EXPECT_NEAR(s.density_jump(), 6.0, 1e-12);
}

// ---- full solver ---------------------------------------------------------------

box_geometry unit_root() {
    box_geometry g;
    g.origin = {0, 0, 0};
    g.dx = 1.0 / INX;
    return g;
}

/// Uniformly refine a tree `levels` times.
void refine_uniform(tree& t, int levels) {
    for (int l = 0; l < levels; ++l) {
        for (const auto k : t.leaves_sfc()) t.refine(k);
    }
}

void init_state(tree& t, const std::function<state(const dvec3&)>& ic) {
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const state u = ic(g.geom.cell_center(i, j, kk));
                    for (int q = 0; q < n_fields; ++q) {
                        g.interior(q, i, j, kk) = u[static_cast<std::size_t>(q)];
                    }
                }
    }
}

TEST(Step, UniformStateIsSteady) {
    tree t(unit_root());
    refine_uniform(t, 1);
    phys::ideal_gas_eos eos(1.4);
    init_state(t, [&](const dvec3&) { return make_state(1.0, {0.3, 0.2, -0.1}, 0.7, eos); });
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::periodic;
    const double dt = step(t, opt);
    EXPECT_GT(dt, 0.0);
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    EXPECT_NEAR(g.interior(f_rho, i, j, kk), 1.0, 1e-13);
                    EXPECT_NEAR(g.interior(f_sx, i, j, kk), 0.3, 1e-13);
                }
    }
}

TEST(Step, CflScalesWithResolution) {
    tree t1(unit_root());
    phys::ideal_gas_eos eos(1.4);
    step_options opt;
    opt.eos = eos;
    init_state(t1, [&](const dvec3&) { return make_state(1.0, {0, 0, 0}, 1.0, eos); });
    const double dt1 = cfl_timestep(t1, opt);

    tree t2(unit_root());
    refine_uniform(t2, 1);
    init_state(t2, [&](const dvec3&) { return make_state(1.0, {0, 0, 0}, 1.0, eos); });
    const double dt2 = cfl_timestep(t2, opt);
    EXPECT_NEAR(dt1 / dt2, 2.0, 1e-10);
}

TEST(Step, SodShockTubeMatchesExactSolution) {
    // 32^3 effective cells; tube along x, uniform in y/z.
    tree t(unit_root());
    refine_uniform(t, 2);
    phys::ideal_gas_eos eos(1.4);
    init_state(t, [&](const dvec3& r) {
        return r.x < 0.5 ? make_state(1.0, {0, 0, 0}, 1.0, eos)
                         : make_state(0.125, {0, 0, 0}, 0.1, eos);
    });
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::outflow;

    double time = 0.0;
    while (time < 0.2) {
        time += step(t, opt);
    }

    // Gather rho(x) along the center line and compare with the exact
    // solution in L1.
    double l1 = 0.0;
    int n = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const auto ex =
                        riemann_exact(sod_left(), sod_right(), (r.x - 0.5) / time, 1.4);
                    l1 += std::abs(g.interior(f_rho, i, j, kk) - ex.rho);
                    ++n;
                }
    }
    l1 /= n;
    EXPECT_LT(l1, 0.02) << "Sod L1 density error too large";
}

TEST(Step, SodIsOneDimensional) {
    // The 3-D solver must keep a 1-D problem exactly 1-D: no transverse
    // momentum is generated.
    tree t(unit_root());
    refine_uniform(t, 1);
    phys::ideal_gas_eos eos(1.4);
    init_state(t, [&](const dvec3& r) {
        return r.x < 0.5 ? make_state(1.0, {0, 0, 0}, 1.0, eos)
                         : make_state(0.125, {0, 0, 0}, 0.1, eos);
    });
    step_options opt;
    opt.eos = eos;
    for (int s = 0; s < 5; ++s) (void)step(t, opt);
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    EXPECT_EQ(g.interior(f_sy, i, j, kk), 0.0);
                    EXPECT_EQ(g.interior(f_sz, i, j, kk), 0.0);
                }
    }
}

state blob_ic(const dvec3& r, const phys::ideal_gas_eos& eos) {
    // Rotating blob with STRICTLY compact dynamics: outside the blob the gas
    // is uniform and static, so boundary fluxes are exactly symmetric and
    // conservation must hold to rounding over a few steps.
    const dvec3 c{0.5, 0.5, 0.5};
    const double d2 = norm2(r - c);
    const bool inside = d2 < 0.04;
    const double excess = inside ? std::exp(-d2 / 0.01) : 0.0;
    const double rho = 1e-6 + excess;
    const dvec3 v = inside ? 0.3 * cross(dvec3{0, 0, 1}, r - c) : dvec3{0, 0, 0};
    state u = make_state(rho, v, 1e-10 + 0.1 * excess, eos);
    // Nonzero passive scalars and spin (compact as well).
    u[first_passive] = 0.5 * rho;
    u[first_passive + 1] = 0.5 * rho;
    u[f_lx] = 1e-3 * excess;
    return u;
}

class ConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConservationTest, MassMomentumAngularMomentumToRounding) {
    // Param 0: uniform two-level grid. Param 1: AMR grid with a refined
    // center (exercises refluxing and the coarse-fine spin ledger).
    tree t(unit_root());
    t.refine(root_key);
    if (GetParam() == 1) {
        // Refine the 8 central children unevenly.
        t.refine(key_child(root_key, 0));
        t.refine(key_child(root_key, 7));
        t.balance21();
    } else {
        refine_uniform(t, 1);
    }
    phys::ideal_gas_eos eos(5.0 / 3.0);
    init_state(t, [&](const dvec3& r) { return blob_ic(r, eos); });

    const totals before = compute_totals(t);
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::outflow;
    for (int s = 0; s < 3; ++s) (void)step(t, opt);
    const totals after = compute_totals(t);

    EXPECT_NEAR(after.mass, before.mass, before.mass * 1e-12);
    // Momentum: compare against a momentum scale (initial net momentum is ~0).
    const double pscale = before.mass * 0.3; // mass * typical speed
    EXPECT_LT(norm(after.momentum - before.momentum) / pscale, 1e-12);
    // Angular momentum (orbital + spin): the paper's machine-precision claim.
    const double lscale = std::max(norm(before.angular_momentum), 1e-20);
    EXPECT_LT(norm(after.angular_momentum - before.angular_momentum) / lscale,
              1e-10);
    // Passive scalars are conserved too.
    for (int s = 0; s < n_passive; ++s) {
        EXPECT_NEAR(after.passive[s], before.passive[s],
                    std::abs(before.passive[s]) * 1e-12 + 1e-18);
    }
}

INSTANTIATE_TEST_SUITE_P(Grids, ConservationTest, ::testing::Values(0, 1));

TEST(Step, GravitySourceAddsMomentum) {
    tree t(unit_root());
    phys::ideal_gas_eos eos(5.0 / 3.0);
    init_state(t, [&](const dvec3&) { return make_state(1.0, {0, 0, 0}, 1.0, eos); });

    // Uniform downward gravity via the lookup interface.
    std::vector<double> gz(INX3, -1.5);
    std::vector<double> zero(INX3, 0.0);
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::periodic;
    opt.gravity = [&](node_key) -> std::optional<gravity_field> {
        return gravity_field{zero.data(), zero.data(), gz.data(),
                             zero.data(), zero.data(), zero.data()};
    };
    opt.fixed_dt = 1e-3;
    (void)step(t, opt);
    const totals after = compute_totals(t);
    EXPECT_NEAR(after.momentum.z, -1.5 * after.mass * 1e-3,
                std::abs(after.momentum.z) * 1e-10);
    EXPECT_NEAR(after.momentum.x, 0.0, 1e-15);
}

TEST(Step, SpinTorqueDepositFeedsSpinField) {
    tree t(unit_root());
    phys::ideal_gas_eos eos(5.0 / 3.0);
    init_state(t, [&](const dvec3&) { return make_state(1.0, {0, 0, 0}, 1.0, eos); });
    std::vector<double> zero(INX3, 0.0);
    std::vector<double> tqz(INX3, 2.0); // total torque per cell per time
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::periodic;
    opt.gravity = [&](node_key) -> std::optional<gravity_field> {
        return gravity_field{zero.data(), zero.data(), zero.data(),
                             zero.data(), zero.data(), tqz.data()};
    };
    opt.fixed_dt = 1e-3;
    (void)step(t, opt);
    const totals after = compute_totals(t);
    // 512 cells x torque 2.0 x dt = total Lz gain of 1.024e-3... in total
    // units: deposits are per-cell totals, so sum = 512 * 2.0 * dt.
    EXPECT_NEAR(after.angular_momentum.z, 512 * 2.0 * 1e-3, 1e-9);
}

TEST(Step, RotatingFrameCoriolisDeflects) {
    // Center the domain on the rotation axis so the centrifugal force has no
    // net component and the Coriolis deflection is visible.
    box_geometry centered;
    centered.origin = {-0.5, -0.5, -0.5};
    centered.dx = 1.0 / INX;
    tree t(centered);
    phys::ideal_gas_eos eos(5.0 / 3.0);
    init_state(t, [&](const dvec3&) { return make_state(1.0, {0.1, 0, 0}, 1.0, eos); });
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::periodic;
    opt.omega = {0, 0, 1.0};
    opt.fixed_dt = 1e-3;
    (void)step(t, opt);
    const totals after = compute_totals(t);
    // Coriolis: a = -2 Omega x v = -2 (0,0,1) x (0.1,0,0) = (0, -0.2, 0);
    // centrifugal adds net force ~ 0 only if the domain is symmetric about
    // the axis — it is not (axis at origin), so just check the sign of the
    // Coriolis deflection dominates in y.
    EXPECT_LT(after.momentum.y, 0.0);
}

TEST(Step, DualEnergyKeepsPressurePositiveInHighMach) {
    // Cold supersonic stream: internal energy must stay positive via tau.
    tree t(unit_root());
    phys::ideal_gas_eos eos(5.0 / 3.0);
    init_state(t, [&](const dvec3&) {
        state u = make_state(1.0, {100.0, 0, 0}, 1e-6, eos);
        return u;
    });
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::periodic;
    for (int s = 0; s < 3; ++s) (void)step(t, opt);
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    state u;
                    for (int q = 0; q < n_fields; ++q) {
                        u[static_cast<std::size_t>(q)] = g.interior(q, i, j, kk);
                    }
                    const primitives pr = to_primitives(u, eos);
                    EXPECT_GT(pr.p, 0.0);
                    EXPECT_LT(pr.internal, 1e-3); // no spurious heating
                }
    }
}

TEST(Step, AdvectionMovesBlobDownstream) {
    tree t(unit_root());
    refine_uniform(t, 1);
    phys::ideal_gas_eos eos(1.4);
    init_state(t, [&](const dvec3& r) {
        const double rho = 1.0 + std::exp(-norm2(r - dvec3{0.3, 0.5, 0.5}) / 0.005);
        return make_state(rho, {1.0, 0, 0}, 1.0, eos);
    });
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::periodic;
    double time = 0;
    while (time < 0.1) time += step(t, opt);

    // Density-weighted center along x must have moved by ~0.1.
    double cx = 0, m = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const double ex = g.interior(f_rho, i, j, kk) - 1.0;
                    cx += ex * g.geom.cell_center(i, j, kk).x;
                    m += ex;
                }
    }
    EXPECT_NEAR(cx / m, 0.3 + 0.1, 0.02);
}

TEST(Step, SedovBlastShockRadiusMatchesSimilaritySolution) {
    // Verification test 2 of the paper's suite (§4.2): the Sedov-Taylor
    // blast wave against the analytic similarity solution. Energy E = 1 is
    // injected into a small central sphere of a cold uniform medium; the
    // shock radius must follow R(t) = (E t^2 / (alpha rho0))^(1/5).
    box_geometry root;
    root.origin = {-0.5, -0.5, -0.5};
    root.dx = 1.0 / INX;
    tree t(root);
    refine_uniform(t, 2); // 32^3
    const double gamma = 1.4;
    phys::ideal_gas_eos eos(gamma);
    const double r0 = 0.06; // injection radius (~2 cells)
    const double Vinj = 4.0 / 3.0 * M_PI * r0 * r0 * r0;
    double injected = 0.0;
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const bool hot = norm(r) < r0;
                    const double u = hot ? 1.0 / Vinj : 1e-8;
                    g.interior(f_rho, i, j, kk) = 1.0;
                    g.interior(f_egas, i, j, kk) = u;
                    g.interior(f_tau, i, j, kk) = eos.tau_from_internal(u);
                    if (hot) injected += u * g.geom.cell_volume();
                }
    }
    step_options opt;
    opt.eos = eos;
    opt.bc = boundary_kind::outflow;
    double time = 0;
    while (time < 0.015) time += step(t, opt);

    // Shock radius: density-weighted mean radius of strongly compressed gas.
    double rsum = 0, w = 0, rho_peak = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const double rho = g.interior(f_rho, i, j, kk);
                    rho_peak = std::max(rho_peak, rho);
                    if (rho > 1.5) {
                        const double rr = norm(g.geom.cell_center(i, j, kk));
                        rsum += rho * rr;
                        w += rho;
                    }
                }
    }
    ASSERT_GT(w, 0.0);
    const double r_shock_sim = rsum / w;
    const auto sed = sedov_solve(gamma);
    const double r_shock_exact = sed.shock_radius(injected, 1.0, time);
    EXPECT_NEAR(r_shock_sim, r_shock_exact, 0.25 * r_shock_exact)
        << "sim " << r_shock_sim << " exact " << r_shock_exact;
    // Strong-shock compression approached (jump limit is 6 for gamma=1.4;
    // at 32^3 the peak is smeared but must clearly exceed 2).
    EXPECT_GT(rho_peak, 2.0);
    // The blast stays spherical: centroid of the dense shell at the origin.
    dvec3 centroid{0, 0, 0};
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const double rho = g.interior(f_rho, i, j, kk);
                    if (rho > 1.5) centroid += rho * g.geom.cell_center(i, j, kk);
                }
    }
    EXPECT_LT(norm(centroid / w), 0.01);
}

// ---- parameterized sweeps ---------------------------------------------------

// Sod tube across adiabatic index and reconstruction order: the exact
// Riemann reference adapts to gamma; PPM must beat piecewise-constant.
class SodSweep : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(SodSweep, DensityErrorWithinBound) {
    const auto [gamma, use_ppm] = GetParam();
    tree t(unit_root());
    refine_uniform(t, 1); // 16^3: cheap but discriminating
    phys::ideal_gas_eos eos(gamma);
    init_state(t, [&](const dvec3& r) {
        return r.x < 0.5 ? make_state(1.0, {0, 0, 0}, 1.0, eos)
                         : make_state(0.125, {0, 0, 0}, 0.1, eos);
    });
    step_options opt;
    opt.eos = eos;
    opt.use_ppm = use_ppm;
    double time = 0;
    while (time < 0.15) time += step(t, opt);

    double l1 = 0;
    int n = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const auto ex = riemann_exact(sod_left(), sod_right(),
                                                  (r.x - 0.5) / time, gamma);
                    l1 += std::abs(g.interior(f_rho, i, j, kk) - ex.rho);
                    ++n;
                }
    }
    l1 /= n;
    EXPECT_LT(l1, use_ppm ? 0.035 : 0.06) << "gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(GammaRecon, SodSweep,
                         ::testing::Combine(::testing::Values(1.4, 5.0 / 3.0),
                                            ::testing::Values(true, false)),
                         [](const auto& info) {
                             return std::string(std::get<0>(info.param) > 1.5
                                                    ? "g53"
                                                    : "g14") +
                                    (std::get<1>(info.param) ? "_ppm" : "_pcm");
                         });

// Conservation must hold for ANY gamma / reconstruction / CFL combination.
class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<double, bool, double>> {};

TEST_P(ConservationSweep, LedgerClosesForAllSchemes) {
    const auto [gamma, use_ppm, cfl] = GetParam();
    tree t(unit_root());
    refine_uniform(t, 1);
    phys::ideal_gas_eos eos(gamma);
    init_state(t, [&](const dvec3& r) { return blob_ic(r, eos); });
    const totals before = compute_totals(t);
    step_options opt;
    opt.eos = eos;
    opt.use_ppm = use_ppm;
    opt.cfl = cfl;
    for (int s = 0; s < 2; ++s) (void)step(t, opt);
    const totals after = compute_totals(t);
    EXPECT_NEAR(after.mass, before.mass, before.mass * 1e-12);
    const double lscale = std::max(norm(before.angular_momentum), 1e-20);
    EXPECT_LT(norm(after.angular_momentum - before.angular_momentum) / lscale,
              1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ConservationSweep,
    ::testing::Combine(::testing::Values(1.4, 5.0 / 3.0),
                       ::testing::Values(true, false),
                       ::testing::Values(0.2, 0.4)));

// ---- kernel and schedule ablations (paper §4.3) ----------------------------
//
// The SoA/SIMD pencil kernels and the futurized per-leaf pipeline are both
// selectable via step_options; these tests pin down their contracts:
//   * scalar vs SIMD kernels agree to 1e-14 (relative to each field's scale),
//   * barriered vs futurized scheduling agree BIT FOR BIT (the DAG encodes
//     exactly the dependencies the barriers over-approximate),
//   * the conservation ledger closes on the default (SIMD + futurized) path.

/// A non-uniform tree: one level-1 child refined once more, so restriction,
/// coarse-fine ghost interpolation and refluxing are all exercised.
void refine_amr(tree& t) {
    refine_uniform(t, 1);
    t.refine(t.leaves_sfc().front());
}

/// Max per-field difference between two identically shaped trees, relative
/// to the field's own magnitude scale; exact zero when states are identical.
double max_field_rel_diff(const tree& a, const tree& b) {
    double fmax[n_fields] = {};
    double fdiff[n_fields] = {};
    for (const auto k : a.leaves_sfc()) {
        const auto& ga = *a.node(k).fields;
        const auto& gb = *b.node(k).fields;
        for (int q = 0; q < n_fields; ++q)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const double ua = ga.interior(q, i, j, kk);
                        const double ub = gb.interior(q, i, j, kk);
                        fmax[q] = std::max({fmax[q], std::abs(ua),
                                            std::abs(ub)});
                        fdiff[q] = std::max(fdiff[q], std::abs(ua - ub));
                    }
    }
    double worst = 0;
    for (int q = 0; q < n_fields; ++q) {
        if (fmax[q] > 0) worst = std::max(worst, fdiff[q] / fmax[q]);
    }
    return worst;
}

TEST(Ablations, SimdKernelsMatchScalarKernels) {
    // Same ICs, same schedule, scalar AoS loops vs SoA pencil kernels: the
    // vectorized reconstruction/flux/update must reproduce the scalar path
    // to rounding (1e-14 of each field's scale) on an AMR tree with
    // rotation, spin and passives active.
    phys::ideal_gas_eos eos(1.4);
    tree ts(unit_root()), tv(unit_root());
    refine_amr(ts);
    refine_amr(tv);
    const auto ic = [&](const dvec3& r) { return blob_ic(r, eos); };
    init_state(ts, ic);
    init_state(tv, ic);
    step_options opt;
    opt.eos = eos;
    opt.omega = {0, 0, 0.5};
    opt.use_simd = false;
    step_options optv = opt;
    optv.use_simd = true;
    for (int s = 0; s < 3; ++s) {
        const double dts = step(ts, opt);
        const double dtv = step(tv, optv);
        EXPECT_NEAR(dts, dtv, 1e-14 * dts);
    }
    EXPECT_LE(max_field_rel_diff(ts, tv), 1e-14);
}

/// Run `steps` steps on two copies of the same IC, one barriered, one
/// futurized, and require bit-identical results.
template <class Ic>
void expect_schedules_identical(const Ic& ic, step_options opt, int steps) {
    tree tb(unit_root()), tf(unit_root());
    refine_amr(tb);
    refine_amr(tf);
    init_state(tb, ic);
    init_state(tf, ic);
    step_options optb = opt;
    optb.futurized = false;
    opt.futurized = true;
    for (int s = 0; s < steps; ++s) {
        const double dtb = step(tb, optb);
        const double dtf = step(tf, opt);
        EXPECT_EQ(dtb, dtf);
    }
    EXPECT_EQ(max_field_rel_diff(tb, tf), 0.0);
}

TEST(Ablations, FuturizedMatchesBarrieredOnSod) {
    phys::ideal_gas_eos eos(1.4);
    step_options opt;
    opt.eos = eos;
    expect_schedules_identical(
        [&](const dvec3& r) {
            return r.x < 0.5 ? make_state(1.0, {0, 0, 0}, 1.0, eos)
                             : make_state(0.125, {0, 0, 0}, 0.1, eos);
        },
        opt, 4);
}

TEST(Ablations, FuturizedMatchesBarrieredOnSedov) {
    phys::ideal_gas_eos eos(5.0 / 3.0);
    step_options opt;
    opt.eos = eos;
    expect_schedules_identical(
        [&](const dvec3& r) {
            const double p =
                norm2(r - dvec3{0.5, 0.5, 0.5}) < 0.01 ? 100.0 : 1e-3;
            return make_state(1.0, {0, 0, 0}, p, eos);
        },
        opt, 3);
}

TEST(Ablations, FuturizedMatchesBarrieredOnRotatingStar) {
    // Rotating-star analogue: the compact spinning blob in a rotating frame
    // with an analytic gravity field and a before_stage hook (the coupled
    // driver's re-solve slot, which the futurized schedule overlaps with the
    // ghost fills). Everything must still be bit-identical.
    phys::ideal_gas_eos eos(5.0 / 3.0);

    struct analytic_gravity {
        std::unordered_map<node_key, std::array<std::vector<double>, 6>> data;
        void build(const tree& t) {
            for (const auto k : t.leaves_sfc()) {
                auto& a = data[k];
                for (auto& v : a) v.assign(INX * INX * INX, 0.0);
                const auto& g = *t.node(k).fields;
                for (int i = 0; i < INX; ++i)
                    for (int j = 0; j < INX; ++j)
                        for (int kk = 0; kk < INX; ++kk) {
                            const int c = (i * INX + j) * INX + kk;
                            const dvec3 r =
                                g.geom.cell_center(i, j, kk) -
                                dvec3{0.5, 0.5, 0.5};
                            a[0][c] = -r.x; // linear central pull
                            a[1][c] = -r.y;
                            a[2][c] = -r.z;
                        }
            }
        }
        gravity_lookup lookup() {
            return [this](node_key k) -> std::optional<gravity_field> {
                const auto& a = data.at(k);
                return gravity_field{a[0].data(), a[1].data(), a[2].data(),
                                     a[3].data(), a[4].data(), a[5].data()};
            };
        }
    };

    tree tb(unit_root()), tf(unit_root());
    refine_amr(tb);
    refine_amr(tf);
    const auto ic = [&](const dvec3& r) { return blob_ic(r, eos); };
    init_state(tb, ic);
    init_state(tf, ic);
    analytic_gravity gb, gf;
    gb.build(tb);
    gf.build(tf);
    int calls_b = 0, calls_f = 0;

    step_options optb;
    optb.eos = eos;
    optb.omega = {0, 0, 0.3};
    optb.futurized = false;
    optb.gravity = gb.lookup();
    optb.before_stage = [&calls_b] { ++calls_b; };
    step_options optf = optb;
    optf.futurized = true;
    optf.gravity = gf.lookup();
    optf.before_stage = [&calls_f] { ++calls_f; };

    const int steps = 3;
    for (int s = 0; s < steps; ++s) {
        const double dtb = step(tb, optb);
        const double dtf = step(tf, optf);
        EXPECT_EQ(dtb, dtf);
    }
    EXPECT_EQ(max_field_rel_diff(tb, tf), 0.0);
    // before_stage runs once per RK stage on both schedules.
    EXPECT_EQ(calls_b, 2 * steps);
    EXPECT_EQ(calls_f, 2 * steps);
}

TEST(Ablations, LedgerClosesOnDefaultSimdFuturizedPath) {
    // The conservation ledger (mass, momentum, angular momentum) must close
    // to rounding on the DEFAULT path — SIMD pencil kernels + futurized
    // schedule — across coarse-fine boundaries (refluxing included).
    phys::ideal_gas_eos eos(1.4);
    tree t(unit_root());
    refine_amr(t);
    init_state(t, [&](const dvec3& r) { return blob_ic(r, eos); });
    const totals before = compute_totals(t);
    step_options opt; // defaults: use_simd = true, futurized = true
    opt.eos = eos;
    for (int s = 0; s < 3; ++s) (void)step(t, opt);
    const totals after = compute_totals(t);
    EXPECT_NEAR(after.mass, before.mass, before.mass * 1e-12);
    EXPECT_LT(norm(after.momentum - before.momentum), 1e-12);
    const double lscale = std::max(norm(before.angular_momentum), 1e-20);
    EXPECT_LT(norm(after.angular_momentum - before.angular_momentum) / lscale,
              1e-10);
}

} // namespace

// Concurrency-correctness tests (ISSUE 4): stress the hand-rolled sync
// primitives (always, in every build configuration — these are the workloads
// the TSan preset runs too), and, under OCTO_RACE_DETECT, drive the in-repo
// vector-clock detector: clean schedules must report zero races, and
// deliberately broken ones — an unordered cross-thread write and a lock
// inversion — MUST be caught (negative tests guard against a detector that
// rubber-stamps everything).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "amr/tree.hpp"
#include "fmm/solver.hpp"
#include "hydro/update.hpp"
#include "runtime/channel.hpp"
#include "runtime/future.hpp"
#include "runtime/latch.hpp"
#include "runtime/spinlock.hpp"
#include "runtime/thread_pool.hpp"
#include "sanitize/detector.hpp"
#include "sanitize/hooks.hpp"
#include "support/buffer_recycler.hpp"

namespace {

using namespace octo;
using namespace octo::hydro;
using amr::box_geometry;
using amr::INX;
using amr::node_key;
using amr::root_key;
using amr::tree;

// ---- stress tests (run in every configuration, incl. the TSan preset) ------

TEST(SyncStress, ChannelHandsOffPayloadsInOrder) {
    rt::thread_pool pool(4);
    constexpr int rounds = 200;
    std::array<rt::channel<int>, 8> chans;
    std::atomic<int> sum{0};
    std::vector<rt::future<void>> done;
    for (std::size_t c = 0; c < chans.size(); ++c) {
        done.push_back(rt::async(pool, [&, c] {
            for (int i = 0; i < rounds; ++i) chans[c].send(static_cast<int>(c) + i);
        }));
        done.push_back(rt::async(pool, [&, c] {
            for (int i = 0; i < rounds; ++i) {
                sum.fetch_add(chans[c].recv().get(), std::memory_order_relaxed);
            }
        }));
    }
    for (auto& f : done) f.get();
    int expect = 0;
    for (std::size_t c = 0; c < chans.size(); ++c) {
        for (int i = 0; i < rounds; ++i) expect += static_cast<int>(c) + i;
    }
    EXPECT_EQ(sum.load(), expect);
}

TEST(SyncStress, SpinlockAndLatchCountExactly) {
    rt::thread_pool pool(4);
    constexpr int tasks = 64, incs = 500;
    rt::spinlock mu;
    long counter = 0;
    rt::latch all(tasks);
    for (int t = 0; t < tasks; ++t) {
        rt::detach(rt::async(pool, [&] {
            for (int i = 0; i < incs; ++i) {
                mu.lock();
                ++counter;
                mu.unlock();
            }
            all.count_down();
        }));
    }
    all.wait();
    mu.lock(); // counter was last written under mu; read it the same way
    EXPECT_EQ(counter, static_cast<long>(tasks) * incs);
    mu.unlock();
}

TEST(SyncStress, RecyclerHandoffPreservesPatterns) {
    rt::thread_pool pool(4);
    auto& rec = buffer_recycler::instance();
    constexpr std::size_t bytes = 4096;
    constexpr int rounds = 300;
    std::vector<rt::future<void>> done;
    for (int w = 0; w < 4; ++w) {
        done.push_back(rt::async(pool, [&rec, w] {
            for (int i = 0; i < rounds; ++i) {
                auto* p = static_cast<unsigned char*>(rec.allocate(bytes, 64));
                std::memset(p, w, bytes);
                ASSERT_EQ(p[0], w);
                ASSERT_EQ(p[bytes - 1], w);
                rec.deallocate(p, bytes, 64);
            }
        }));
    }
    for (auto& f : done) f.get();
}

TEST(SyncStress, WhenAllJoinsManyContributors) {
    rt::thread_pool pool(4);
    constexpr int n = 256;
    std::vector<int> cells(n, 0);
    std::vector<rt::future<void>> fs;
    fs.reserve(n);
    for (int i = 0; i < n; ++i) {
        fs.push_back(rt::async(pool, [&cells, i] { cells[i] = i + 1; }));
    }
    rt::when_all(std::move(fs)).get();
    long sum = 0;
    for (int v : cells) sum += v;
    EXPECT_EQ(sum, static_cast<long>(n) * (n + 1) / 2);
}

#ifdef OCTO_RACE_DETECT

// ---- detector unit behavior -------------------------------------------------

sanitize::detector& det() { return sanitize::detector::instance(); }

TEST(RaceDetector, CleanPrimitiveTrafficReportsNothing) {
    sanitize::session s;
    rt::thread_pool pool(4);
    rt::channel<int> ch;
    double payload = 0.0;
    // Producer writes the payload, publishes through the channel; consumer
    // acquires through the channel, then reads. One HB edge, zero races.
    auto prod = rt::async(pool, [&] {
        sanitize::region_write(&payload, "test.payload");
        payload = 42.0;
        ch.send(1);
    });
    auto cons = rt::async(pool, [&] {
        (void)ch.recv().get();
        sanitize::region_read(&payload, "test.payload");
        EXPECT_EQ(payload, 42.0);
    });
    prod.get();
    cons.get();
    EXPECT_EQ(det().race_count(), 0u) << det().summary();
    EXPECT_EQ(det().inversion_count(), 0u) << det().summary();
    EXPECT_GE(det().accesses_checked(), 2u);
    EXPECT_GT(det().hb_edges_recorded(), 0u);
}

TEST(RaceDetector, CatchesUnorderedCrossThreadWrite) {
    sanitize::session s;
    // Two raw std::threads with no recorded synchronization at all: the
    // detector must flag the write-write conflict no matter how the OS
    // actually interleaved them.
    double victim = 0.0;
    std::thread a([&] {
        sanitize::region_write(&victim, "test.victim");
        victim = 1.0;
    });
    a.join();
    std::thread b([&] {
        sanitize::region_write(&victim, "test.victim");
        victim = 2.0;
    });
    b.join();
    ASSERT_GE(det().race_count(), 1u);
    const auto r = det().races().front();
    EXPECT_EQ(r.region, "test.victim");
    EXPECT_EQ(r.kind, "write-write");
}

TEST(RaceDetector, CatchesReadAgainstUnorderedWrite) {
    sanitize::session s;
    double victim = 0.0;
    std::thread a([&] {
        sanitize::region_read(&victim, "test.victim");
    });
    a.join();
    std::thread b([&] {
        sanitize::region_write(&victim, "test.victim");
        victim = 2.0;
    });
    b.join();
    ASSERT_GE(det().race_count(), 1u);
    EXPECT_EQ(det().races().front().kind, "read-write");
}

TEST(RaceDetector, PoolPostEdgeOrdersPosterAgainstTask) {
    sanitize::session s;
    rt::thread_pool pool(2);
    double payload = 0.0;
    sanitize::region_write(&payload, "test.payload");
    payload = 7.0;
    // post() records poster-before-body; the task's read is therefore
    // ordered after the main thread's write above.
    rt::async(pool, [&] {
        sanitize::region_read(&payload, "test.payload");
    }).get();
    EXPECT_EQ(det().race_count(), 0u) << det().summary();
}

TEST(RaceDetector, CatchesLockOrderInversion) {
    sanitize::session s;
    rt::spinlock l1, l2;
    // Same thread, two critical sections with opposite nesting order: the
    // lock graph gets l1->l2 then l2->l1, a cycle — a latent deadlock even
    // though this serial schedule can never hang.
    l1.lock();
    l2.lock();
    l2.unlock();
    l1.unlock();
    EXPECT_EQ(det().inversion_count(), 0u);
    l2.lock();
    l1.lock();
    l1.unlock();
    l2.unlock();
    ASSERT_GE(det().inversion_count(), 1u);
    const auto inv = det().inversions().front();
    EXPECT_EQ(inv.held, static_cast<const void*>(&l2));
    EXPECT_EQ(inv.acquired, static_cast<const void*>(&l1));
    EXPECT_EQ(det().race_count(), 0u) << det().summary();
}

TEST(RaceDetector, ConsistentLockOrderIsNotAnInversion) {
    sanitize::session s;
    rt::spinlock l1, l2;
    for (int i = 0; i < 3; ++i) {
        l1.lock();
        l2.lock();
        l2.unlock();
        l1.unlock();
    }
    EXPECT_EQ(det().inversion_count(), 0u);
}

TEST(RaceDetector, RecyclerHandoffIsAnHbEdge) {
    sanitize::session s;
    auto& rec = buffer_recycler::instance();
    rec.clear(); // start from an empty free list
    rt::thread_pool pool(2);
    constexpr std::size_t bytes = 1024;
    rt::channel<void*> handoff;
    auto a = rt::async(pool, [&] {
        auto* p = rec.allocate(bytes, 64);
        sanitize::region_write(p, "test.buffer");
        rec.deallocate(p, bytes, 64);
        handoff.send(p);
    });
    auto b = rt::async(pool, [&] {
        void* expected = handoff.recv().get();
        auto* p = rec.allocate(bytes, 64);
        // Single-bucket free list: the parked buffer comes back.
        ASSERT_EQ(p, expected);
        sanitize::region_write(p, "test.buffer");
        rec.deallocate(p, bytes, 64);
    });
    a.get();
    b.get();
    EXPECT_EQ(det().race_count(), 0u) << det().summary();
}

// ---- full futurized schedules must be race-free -----------------------------

box_geometry unit_root() {
    box_geometry g;
    g.origin = {0, 0, 0};
    g.dx = 1.0 / INX;
    return g;
}

void refine_uniform(tree& t, int levels) {
    for (int l = 0; l < levels; ++l) {
        for (const auto k : t.leaves_sfc()) t.refine(k);
    }
}

state make_state(double rho, dvec3 v, double p,
                 const phys::ideal_gas_eos& eos) {
    state u{};
    u[amr::f_rho] = rho;
    u[amr::f_sx] = rho * v.x;
    u[amr::f_sy] = rho * v.y;
    u[amr::f_sz] = rho * v.z;
    const double internal = p / (eos.gamma() - 1.0);
    u[amr::f_egas] = internal + 0.5 * rho * norm2(v);
    u[amr::f_tau] = eos.tau_from_internal(internal);
    return u;
}

template <class Ic>
void init_state(tree& t, const Ic& ic) {
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const state u = ic(g.geom.cell_center(i, j, kk));
                    for (int q = 0; q < amr::n_fields; ++q) {
                        g.interior(q, i, j, kk) =
                            u[static_cast<std::size_t>(q)];
                    }
                }
    }
}

void expect_clean_steps(tree& t, step_options opt, int steps) {
    opt.futurized = true;
    sanitize::session s;
    for (int i = 0; i < steps; ++i) {
        const double dt = step(t, opt);
        EXPECT_GT(dt, 0.0);
    }
    EXPECT_EQ(det().race_count(), 0u) << det().summary();
    EXPECT_EQ(det().inversion_count(), 0u) << det().summary();
    // The pipeline must actually have reported its region accesses.
    EXPECT_GT(det().accesses_checked(), 0u);
    EXPECT_GT(det().hb_edges_recorded(), 0u);
}

TEST(RaceDetector, FuturizedSodStepsAreRaceFree) {
    tree t(unit_root());
    refine_uniform(t, 1);
    phys::ideal_gas_eos eos(1.4);
    init_state(t, [&](const dvec3& r) {
        return r.x < 0.5 ? make_state(1.0, {0, 0, 0}, 1.0, eos)
                         : make_state(0.125, {0, 0, 0}, 0.1, eos);
    });
    step_options opt;
    opt.eos = eos;
    expect_clean_steps(t, opt, 2);
}

TEST(RaceDetector, FuturizedSedovStepsAreRaceFree) {
    tree t(unit_root());
    refine_uniform(t, 1);
    phys::ideal_gas_eos eos(5.0 / 3.0);
    init_state(t, [&](const dvec3& r) {
        const double p = norm2(r - dvec3{0.5, 0.5, 0.5}) < 0.01 ? 100.0 : 1e-3;
        return make_state(1.0, {0, 0, 0}, p, eos);
    });
    step_options opt;
    opt.eos = eos;
    expect_clean_steps(t, opt, 2);
}

TEST(RaceDetector, FuturizedRotatingBlobOnAmrGridIsRaceFree) {
    // AMR grid (uneven refinement) exercises restriction, fine-to-coarse
    // refluxing and the anti-dependency reader edges; the rotating frame and
    // before_stage hook exercise the per-stage gravity slot.
    tree t(unit_root());
    t.refine(root_key);
    t.refine(amr::key_child(root_key, 0));
    t.refine(amr::key_child(root_key, 7));
    t.balance21();
    phys::ideal_gas_eos eos(5.0 / 3.0);
    init_state(t, [&](const dvec3& r) {
        const dvec3 c{0.5, 0.5, 0.5};
        const double d2 = norm2(r - c);
        const bool inside = d2 < 0.04;
        const double excess = inside ? std::exp(-d2 / 0.01) : 0.0;
        const dvec3 v =
            inside ? 0.3 * cross(dvec3{0, 0, 1}, r - c) : dvec3{0, 0, 0};
        return make_state(1e-6 + excess, v, 1e-10 + 0.1 * excess, eos);
    });
    step_options opt;
    opt.eos = eos;
    opt.omega = {0, 0, 0.3};
    int stage_calls = 0;
    opt.before_stage = [&stage_calls] { ++stage_calls; };
    expect_clean_steps(t, opt, 2);
    EXPECT_EQ(stage_calls, 4); // 2 RK stages per step
}

TEST(RaceDetector, GravityDagIsRaceFree) {
    tree t(unit_root());
    refine_uniform(t, 1);
    phys::ideal_gas_eos eos(5.0 / 3.0);
    init_state(t, [&](const dvec3& r) {
        const double d2 = norm2(r - dvec3{0.5, 0.5, 0.5});
        return make_state(1e-3 + std::exp(-d2 / 0.02), {0, 0, 0}, 1e-3, eos);
    });
    sanitize::session s;
    fmm::solver solver({.conserve = fmm::am_mode::spin_deposit});
    solver.solve(t);
    EXPECT_EQ(det().race_count(), 0u) << det().summary();
    EXPECT_EQ(det().inversion_count(), 0u) << det().summary();
    EXPECT_GT(det().accesses_checked(), 0u);
}

#else // !OCTO_RACE_DETECT

TEST(RaceDetector, OnlyAvailableUnderOctoRaceDetect) {
    GTEST_SKIP() << "configure with -DOCTO_RACE_DETECT=ON (preset "
                    "'race-detect') to run the detector tests";
}

#endif // OCTO_RACE_DETECT

} // namespace

// Seeded fault campaigns (ISSUE 5): the reliability layer of the
// distributed runtime is exercised under deterministic drop / duplicate /
// reorder / delay / corruption schedules over BOTH parcelports, and the
// hardened checkpoint/restart path is driven mid-run. The acceptance bar is
// bit-identity: a rotating-star step's halo traffic under 10% loss must
// produce exactly the fault-free data, and a run resumed from a mid-run
// checkpoint must be bit-identical to one that never stopped.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "dist/locality.hpp"
#include "io/checkpoint.hpp"
#include "net/faulty.hpp"
#include "net/parcelport.hpp"
#include "scf/scf.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace {

using namespace octo;
using namespace octo::amr;
using namespace octo::dist;

/// CI shifts every campaign seed through the environment so the same binary
/// sweeps distinct schedules (.github/workflows/ci.yml, fault-injection job).
std::uint64_t campaign_seed(std::uint64_t base) {
    if (const char* env = std::getenv("OCTO_FAULT_SEED")) {
        return base + std::strtoull(env, nullptr, 10);
    }
    return base;
}

/// The ISSUE's acceptance schedule: ~10% loss, 10% duplication, 15%
/// reordering, 10% delay, 5% corruption.
support::fault_config lossy(std::uint64_t seed) {
    support::fault_config cfg;
    cfg.seed = seed;
    cfg.drop_prob = 0.10;
    cfg.dup_prob = 0.10;
    cfg.reorder_prob = 0.15;
    cfg.delay_prob = 0.10;
    cfg.corrupt_prob = 0.05;
    return cfg;
}

// ---- the injector itself ----------------------------------------------------

TEST(FaultInjector, OneSeedReplaysTheWholeSchedule) {
    const auto decisions = [](std::uint64_t seed) {
        support::fault_injector inj(lossy(seed));
        std::vector<int> d;
        for (int i = 0; i < 200; ++i) {
            d.push_back(static_cast<int>(inj.drop()));
            d.push_back(static_cast<int>(inj.duplicate()));
            d.push_back(static_cast<int>(inj.corrupt()));
            const auto hold = inj.hold_us();
            d.push_back(hold ? static_cast<int>(*hold) : -1);
            d.push_back(static_cast<int>(inj.gpu_stream_fail()));
            d.push_back(static_cast<int>(inj.io_fail()));
        }
        return d;
    };
    EXPECT_EQ(decisions(42), decisions(42)); // replayable
    EXPECT_NE(decisions(42), decisions(43)); // and seed-sensitive
}

TEST(FaultInjector, CategoriesDrawFromIndependentStreams) {
    // Consuming one category's stream must not perturb another's: a campaign
    // that checks drop() more often (because retransmits re-send) still sees
    // the same duplicate schedule.
    support::fault_injector a(lossy(7));
    support::fault_injector b(lossy(7));
    for (int i = 0; i < 500; ++i) a.drop(); // a burns its drop stream
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.duplicate(), b.duplicate()) << i;
    }
}

// ---- exactly-once, in-order delivery over a lossy transport -----------------

class FaultCampaign : public ::testing::TestWithParam<bool> {
  protected:
    static parcelport_factory inner() {
        return GetParam() ? net::make_libfabric_port() : net::make_mpi_port();
    }
};

TEST_P(FaultCampaign, ExactlyOnceInOrderAcrossFiveSeeds) {
    port_stats agg;
    support::fault_stats injected;
    for (const std::uint64_t base : {11u, 23u, 37u, 41u, 59u}) {
        const std::uint64_t seed = campaign_seed(base);
        runtime rt(3, net::make_faulty_port(inner(), lossy(seed)));
        std::array<std::vector<int>, 3> got;
        std::mutex m;
        const auto act =
            rt.register_action("campaign", [&](int here, iarchive a) {
                std::lock_guard lock(m);
                got[static_cast<std::size_t>(here)].push_back(a.read<int>());
            });
        constexpr int n = 200;
        for (int i = 0; i < n; ++i) {
            oarchive args;
            args.write(i);
            rt.apply(i % 3, act, std::move(args));
        }
        ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)))
            << "seed " << seed;
        EXPECT_EQ(rt.take_errors(), std::vector<std::string>{})
            << "seed " << seed;

        // Every parcel ran exactly once, in apply() order per destination —
        // despite drops, duplicates, reordering and corruption in flight.
        for (int dest = 0; dest < 3; ++dest) {
            std::vector<int> expect;
            for (int i = dest; i < n; i += 3) expect.push_back(i);
            std::lock_guard lock(m);
            EXPECT_EQ(got[static_cast<std::size_t>(dest)], expect)
                << "seed " << seed << " dest " << dest;
        }

        const auto s = rt.net_stats();
        EXPECT_EQ(s.delivery_failures, 0u) << "seed " << seed;
        agg.retries += s.retries;
        agg.dups_dropped += s.dups_dropped;
        agg.corrupt_dropped += s.corrupt_dropped;
        agg.reorders_buffered += s.reorders_buffered;
        auto* fp = dynamic_cast<net::faulty_parcelport*>(&rt.port());
        ASSERT_NE(fp, nullptr);
        const auto fs = fp->injector().stats();
        injected.drops += fs.drops;
        injected.dups += fs.dups;
        injected.reorders += fs.reorders;
        injected.delays += fs.delays;
        injected.corruptions += fs.corruptions;
    }
    // The schedule really injected every category, and the protocol visibly
    // worked for each: drops surfaced as retries, duplicates and corruptions
    // as receiver-side drops, reordering as buffered parcels.
    EXPECT_GT(injected.drops, 0u);
    EXPECT_GT(injected.dups, 0u);
    EXPECT_GT(injected.reorders, 0u);
    EXPECT_GT(injected.delays, 0u);
    EXPECT_GT(injected.corruptions, 0u);
    EXPECT_GT(agg.retries, 0u);
    EXPECT_GT(agg.dups_dropped, 0u);
    EXPECT_GT(agg.corrupt_dropped, 0u);
    EXPECT_GT(agg.reorders_buffered, 0u);
}

TEST_P(FaultCampaign, ChannelsDeliverInOrderUnderFaults) {
    const std::uint64_t seed = campaign_seed(7);
    runtime rt(2, net::make_faulty_port(inner(), lossy(seed)));
    const gid g = rt.register_object(1);
    constexpr int n = 40;
    std::vector<rt::future<std::vector<double>>> recv;
    recv.reserve(n);
    for (int i = 0; i < n; ++i) recv.push_back(rt.channel_get(g));
    for (int i = 0; i < n; ++i) {
        rt.channel_set(g, {static_cast<double>(i)});
    }
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].get(),
                  (std::vector<double>{static_cast<double>(i)}))
            << i;
    }
    ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
    EXPECT_EQ(rt.error_count(), 0u);
}

// ---- the acceptance harness: a rotating-star step under 10% loss ------------

core::sim_options rotating_star_options() {
    core::sim_options o;
    o.eos = phys::ideal_gas_eos(1.0 + 1.0 / 1.5); // gamma = 5/3 for n = 3/2
    o.bc = boundary_kind::outflow;
    o.self_gravity = true;
    o.omega = {0, 0, 0.2}; // rotating frame, as in the merger runs
    return o;
}

core::simulation make_rotating_star() {
    auto t = scf::make_uniform_tree(4.0, 2);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0}, 1e-10);
    return core::simulation(std::move(t), rotating_star_options());
}

std::vector<double> leaf_payload(const subgrid& g) {
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n_fields) * INX3);
    for (int f = 0; f < n_fields; ++f)
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    v.push_back(g.interior(f, i, j, kk));
                }
    return v;
}

TEST_P(FaultCampaign, RotatingStarStepBitIdenticalUnderLoss) {
    // Advance one coupled gravity+hydro step fault-free: this is the
    // reference data the lossy transport must reproduce EXACTLY.
    auto sim = make_rotating_star();
    sim.advance();
    const auto& t = sim.grid();
    const auto leaves = t.leaves_sfc();
    std::vector<std::vector<double>> sent;
    sent.reserve(leaves.size());
    for (const auto k : leaves) {
        sent.push_back(leaf_payload(*t.node(k).fields));
    }

    // Route every leaf's post-step fields through gid channels over the
    // faulty port — the communication pattern of the distributed solver.
    const std::uint64_t seed = campaign_seed(101);
    runtime rt(4, net::make_faulty_port(inner(), lossy(seed)));
    std::vector<gid> gids;
    std::vector<rt::future<std::vector<double>>> recv;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        gids.push_back(rt.register_object(static_cast<int>(i % 4)));
        recv.push_back(rt.channel_get(gids.back()));
    }
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        rt.channel_set(gids[i], sent[i]);
    }
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const auto got = recv[i].get();
        ASSERT_EQ(got.size(), sent[i].size()) << "leaf " << i;
        EXPECT_EQ(std::memcmp(got.data(), sent[i].data(),
                              got.size() * sizeof(double)),
                  0)
            << "leaf " << i << " not bit-identical";
    }
    ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
    EXPECT_EQ(rt.take_errors(), std::vector<std::string>{});

    // The run was not secretly fault-free.
    auto* fp = dynamic_cast<net::faulty_parcelport*>(&rt.port());
    ASSERT_NE(fp, nullptr);
    const auto fs = fp->injector().stats();
    EXPECT_GT(fs.drops + fs.dups + fs.reorders + fs.delays + fs.corruptions,
              0u);
}

INSTANTIATE_TEST_SUITE_P(Ports, FaultCampaign, ::testing::Values(false, true),
                         [](const auto& info) {
                             return info.param ? "libfabric" : "mpi";
                         });

// ---- bounded-time failure detection -----------------------------------------

TEST(FailureDetection, ExhaustedRetryBudgetReportsInsteadOfHanging) {
    reliability_params rel;
    rel.retransmit_timeout = std::chrono::microseconds(500);
    rel.max_backoff = std::chrono::microseconds(2000);
    rel.retry_budget = 3;
    rel.tick = std::chrono::microseconds(100);
    support::fault_config black_hole;
    black_hole.seed = campaign_seed(5);
    black_hole.drop_prob = 1.0; // the link is dead: nothing gets through
    runtime rt(2, net::make_faulty_port(net::make_mpi_port(), black_hole), 1,
               rel);
    std::atomic<int> ran{0};
    const auto act =
        rt.register_action("never", [&](int, iarchive) { ran.fetch_add(1); });
    rt.apply(1, act, oarchive{});

    // Too early: the parcel is still inside its retry budget.
    EXPECT_FALSE(rt.wait_quiet_for(std::chrono::microseconds(100)));
    // Bounded: the budget exhausts and the runtime quiesces with an error
    // report — a dead link can no longer hang a run forever.
    ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
    const auto errors = rt.take_errors();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("undeliverable"), std::string::npos) << errors[0];
    EXPECT_EQ(ran.load(), 0);
    const auto s = rt.net_stats();
    EXPECT_GE(s.delivery_failures, 1u);
    EXPECT_EQ(s.retries, 3u); // exactly the budget
}

TEST(FailureDetection, ThrowingActionLandsInErrorChannelNotTerminate) {
    runtime rt(2, net::make_mpi_port());
    const auto boom = rt.register_action(
        "boom", [](int, iarchive) { throw octo::error("handler exploded"); });
    std::atomic<int> ran{0};
    const auto ok =
        rt.register_action("ok", [&](int, iarchive) { ran.fetch_add(1); });

    rt.apply(1, boom, oarchive{});
    rt.wait_quiet();
    const auto errors = rt.take_errors();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("boom"), std::string::npos);
    EXPECT_NE(errors[0].find("handler exploded"), std::string::npos);

    // The locality's pool survived: later actions still run.
    rt.apply(1, ok, oarchive{});
    rt.wait_quiet();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(rt.error_count(), 0u);
}

// ---- hardened checkpoint/restart, mid-run -----------------------------------

void expect_bit_identical_trees(const tree& a, const tree& b) {
    const auto la = a.leaves_sfc();
    const auto lb = b.leaves_sfc();
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) {
        ASSERT_EQ(la[i], lb[i]);
        const auto pa = leaf_payload(*a.node(la[i]).fields);
        const auto pb = leaf_payload(*b.node(lb[i]).fields);
        ASSERT_EQ(std::memcmp(pa.data(), pb.data(),
                              pa.size() * sizeof(double)),
                  0)
            << "leaf " << i << " diverged after restart";
    }
}

TEST(CheckpointRestart, MidRunRestartIsBitIdentical) {
    const std::string prefix = "/tmp/octo_fault_restart";
    auto a = make_rotating_star();
    a.set_checkpoint_policy({.every_steps = 2, .path_prefix = prefix});
    for (int s = 0; s < 4; ++s) a.advance();
    const std::string ckpt = a.last_checkpoint();
    EXPECT_EQ(ckpt, prefix + ".4.ckpt");
    const double t4 = a.time();
    for (int s = 0; s < 2; ++s) a.advance(); // the uninterrupted run: 6 steps

    // Resume a second simulation from the step-4 checkpoint and advance the
    // same 2 remaining steps: time, step count and every field byte must
    // match the run that never stopped.
    auto b = core::simulation::restart(ckpt, rotating_star_options());
    EXPECT_EQ(b.step_count(), 4);
    EXPECT_DOUBLE_EQ(b.time(), t4);
    for (int s = 0; s < 2; ++s) b.advance();
    EXPECT_EQ(b.step_count(), a.step_count());
    EXPECT_DOUBLE_EQ(b.time(), a.time());
    expect_bit_identical_trees(a.grid(), b.grid());

    for (const char* suffix : {".2.ckpt", ".4.ckpt", ".6.ckpt"}) {
        std::remove((prefix + suffix).c_str());
    }
}

} // namespace

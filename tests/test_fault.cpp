// Seeded fault campaigns (ISSUE 5): the reliability layer of the
// distributed runtime is exercised under deterministic drop / duplicate /
// reorder / delay / corruption schedules over BOTH parcelports, and the
// hardened checkpoint/restart path is driven mid-run. The acceptance bar is
// bit-identity: a rotating-star step's halo traffic under 10% loss must
// produce exactly the fault-free data, and a run resumed from a mid-run
// checkpoint must be bit-identical to one that never stopped.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <mutex>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "dist/locality.hpp"
#include "dist/membership.hpp"
#include "dist/migrate.hpp"
#include "io/checkpoint.hpp"
#include "net/faulty.hpp"
#include "net/parcelport.hpp"
#include "scf/scf.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace {

using namespace octo;
using namespace octo::amr;
using namespace octo::dist;

/// CI shifts every campaign seed through the environment so the same binary
/// sweeps distinct schedules (.github/workflows/ci.yml, fault-injection job).
std::uint64_t campaign_seed(std::uint64_t base) {
    if (const char* env = std::getenv("OCTO_FAULT_SEED")) {
        return base + std::strtoull(env, nullptr, 10);
    }
    return base;
}

/// The ISSUE's acceptance schedule: ~10% loss, 10% duplication, 15%
/// reordering, 10% delay, 5% corruption.
support::fault_config lossy(std::uint64_t seed) {
    support::fault_config cfg;
    cfg.seed = seed;
    cfg.drop_prob = 0.10;
    cfg.dup_prob = 0.10;
    cfg.reorder_prob = 0.15;
    cfg.delay_prob = 0.10;
    cfg.corrupt_prob = 0.05;
    return cfg;
}

// ---- the injector itself ----------------------------------------------------

TEST(FaultInjector, OneSeedReplaysTheWholeSchedule) {
    const auto decisions = [](std::uint64_t seed) {
        support::fault_injector inj(lossy(seed));
        std::vector<int> d;
        for (int i = 0; i < 200; ++i) {
            d.push_back(static_cast<int>(inj.drop()));
            d.push_back(static_cast<int>(inj.duplicate()));
            d.push_back(static_cast<int>(inj.corrupt()));
            const auto hold = inj.hold_us();
            d.push_back(hold ? static_cast<int>(*hold) : -1);
            d.push_back(static_cast<int>(inj.gpu_stream_fail()));
            d.push_back(static_cast<int>(inj.io_fail()));
        }
        return d;
    };
    EXPECT_EQ(decisions(42), decisions(42)); // replayable
    EXPECT_NE(decisions(42), decisions(43)); // and seed-sensitive
}

TEST(FaultInjector, CategoriesDrawFromIndependentStreams) {
    // Consuming one category's stream must not perturb another's: a campaign
    // that checks drop() more often (because retransmits re-send) still sees
    // the same duplicate schedule.
    support::fault_injector a(lossy(7));
    support::fault_injector b(lossy(7));
    for (int i = 0; i < 500; ++i) a.drop(); // a burns its drop stream
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.duplicate(), b.duplicate()) << i;
    }
}

// ---- exactly-once, in-order delivery over a lossy transport -----------------

class FaultCampaign : public ::testing::TestWithParam<bool> {
  protected:
    static parcelport_factory inner() {
        return GetParam() ? net::make_libfabric_port() : net::make_mpi_port();
    }
};

TEST_P(FaultCampaign, ExactlyOnceInOrderAcrossFiveSeeds) {
    port_stats agg;
    support::fault_stats injected;
    for (const std::uint64_t base : {11u, 23u, 37u, 41u, 59u}) {
        const std::uint64_t seed = campaign_seed(base);
        runtime rt(3, net::make_faulty_port(inner(), lossy(seed)));
        std::array<std::vector<int>, 3> got;
        std::mutex m;
        const auto act =
            rt.register_action("campaign", [&](int here, iarchive a) {
                std::lock_guard lock(m);
                got[static_cast<std::size_t>(here)].push_back(a.read<int>());
            });
        constexpr int n = 200;
        for (int i = 0; i < n; ++i) {
            oarchive args;
            args.write(i);
            rt.apply(i % 3, act, std::move(args));
        }
        ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)))
            << "seed " << seed;
        EXPECT_EQ(rt.take_errors(), std::vector<std::string>{})
            << "seed " << seed;

        // Every parcel ran exactly once, in apply() order per destination —
        // despite drops, duplicates, reordering and corruption in flight.
        for (int dest = 0; dest < 3; ++dest) {
            std::vector<int> expect;
            for (int i = dest; i < n; i += 3) expect.push_back(i);
            std::lock_guard lock(m);
            EXPECT_EQ(got[static_cast<std::size_t>(dest)], expect)
                << "seed " << seed << " dest " << dest;
        }

        const auto s = rt.net_stats();
        EXPECT_EQ(s.delivery_failures, 0u) << "seed " << seed;
        agg.retries += s.retries;
        agg.dups_dropped += s.dups_dropped;
        agg.corrupt_dropped += s.corrupt_dropped;
        agg.reorders_buffered += s.reorders_buffered;
        auto* fp = dynamic_cast<net::faulty_parcelport*>(&rt.port());
        ASSERT_NE(fp, nullptr);
        const auto fs = fp->injector().stats();
        injected.drops += fs.drops;
        injected.dups += fs.dups;
        injected.reorders += fs.reorders;
        injected.delays += fs.delays;
        injected.corruptions += fs.corruptions;
    }
    // The schedule really injected every category, and the protocol visibly
    // worked for each: drops surfaced as retries, duplicates and corruptions
    // as receiver-side drops, reordering as buffered parcels.
    EXPECT_GT(injected.drops, 0u);
    EXPECT_GT(injected.dups, 0u);
    EXPECT_GT(injected.reorders, 0u);
    EXPECT_GT(injected.delays, 0u);
    EXPECT_GT(injected.corruptions, 0u);
    EXPECT_GT(agg.retries, 0u);
    EXPECT_GT(agg.dups_dropped, 0u);
    EXPECT_GT(agg.corrupt_dropped, 0u);
    EXPECT_GT(agg.reorders_buffered, 0u);
}

TEST_P(FaultCampaign, ChannelsDeliverInOrderUnderFaults) {
    const std::uint64_t seed = campaign_seed(7);
    runtime rt(2, net::make_faulty_port(inner(), lossy(seed)));
    const gid g = rt.register_object(1);
    constexpr int n = 40;
    std::vector<rt::future<std::vector<double>>> recv;
    recv.reserve(n);
    for (int i = 0; i < n; ++i) recv.push_back(rt.channel_get(g));
    for (int i = 0; i < n; ++i) {
        rt.channel_set(g, {static_cast<double>(i)});
    }
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(i)].get(),
                  (std::vector<double>{static_cast<double>(i)}))
            << i;
    }
    ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
    EXPECT_EQ(rt.error_count(), 0u);
}

// ---- the acceptance harness: a rotating-star step under 10% loss ------------

core::sim_options rotating_star_options() {
    core::sim_options o;
    o.eos = phys::ideal_gas_eos(1.0 + 1.0 / 1.5); // gamma = 5/3 for n = 3/2
    o.bc = boundary_kind::outflow;
    o.self_gravity = true;
    o.omega = {0, 0, 0.2}; // rotating frame, as in the merger runs
    return o;
}

core::simulation make_rotating_star() {
    auto t = scf::make_uniform_tree(4.0, 2);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0}, 1e-10);
    return core::simulation(std::move(t), rotating_star_options());
}

std::vector<double> leaf_payload(const subgrid& g) {
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n_fields) * INX3);
    for (int f = 0; f < n_fields; ++f)
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    v.push_back(g.interior(f, i, j, kk));
                }
    return v;
}

TEST_P(FaultCampaign, RotatingStarStepBitIdenticalUnderLoss) {
    // Advance one coupled gravity+hydro step fault-free: this is the
    // reference data the lossy transport must reproduce EXACTLY.
    auto sim = make_rotating_star();
    sim.advance();
    const auto& t = sim.grid();
    const auto leaves = t.leaves_sfc();
    std::vector<std::vector<double>> sent;
    sent.reserve(leaves.size());
    for (const auto k : leaves) {
        sent.push_back(leaf_payload(*t.node(k).fields));
    }

    // Route every leaf's post-step fields through gid channels over the
    // faulty port — the communication pattern of the distributed solver.
    const std::uint64_t seed = campaign_seed(101);
    runtime rt(4, net::make_faulty_port(inner(), lossy(seed)));
    std::vector<gid> gids;
    std::vector<rt::future<std::vector<double>>> recv;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        gids.push_back(rt.register_object(static_cast<int>(i % 4)));
        recv.push_back(rt.channel_get(gids.back()));
    }
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        rt.channel_set(gids[i], sent[i]);
    }
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const auto got = recv[i].get();
        ASSERT_EQ(got.size(), sent[i].size()) << "leaf " << i;
        EXPECT_EQ(std::memcmp(got.data(), sent[i].data(),
                              got.size() * sizeof(double)),
                  0)
            << "leaf " << i << " not bit-identical";
    }
    ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
    EXPECT_EQ(rt.take_errors(), std::vector<std::string>{});

    // The run was not secretly fault-free.
    auto* fp = dynamic_cast<net::faulty_parcelport*>(&rt.port());
    ASSERT_NE(fp, nullptr);
    const auto fs = fp->injector().stats();
    EXPECT_GT(fs.drops + fs.dups + fs.reorders + fs.delays + fs.corruptions,
              0u);
}

INSTANTIATE_TEST_SUITE_P(Ports, FaultCampaign, ::testing::Values(false, true),
                         [](const auto& info) {
                             return info.param ? "libfabric" : "mpi";
                         });

// ---- bounded-time failure detection -----------------------------------------

TEST(FailureDetection, ExhaustedRetryBudgetReportsInsteadOfHanging) {
    reliability_params rel;
    rel.retransmit_timeout = std::chrono::microseconds(500);
    rel.max_backoff = std::chrono::microseconds(2000);
    rel.retry_budget = 3;
    rel.tick = std::chrono::microseconds(100);
    support::fault_config black_hole;
    black_hole.seed = campaign_seed(5);
    black_hole.drop_prob = 1.0; // the link is dead: nothing gets through
    runtime rt(2, net::make_faulty_port(net::make_mpi_port(), black_hole), 1,
               rel);
    std::atomic<int> ran{0};
    const auto act =
        rt.register_action("never", [&](int, iarchive) { ran.fetch_add(1); });
    rt.apply(1, act, oarchive{});

    // Too early: the parcel is still inside its retry budget.
    EXPECT_FALSE(rt.wait_quiet_for(std::chrono::microseconds(100)));
    // Bounded: the budget exhausts and the runtime quiesces with an error
    // report — a dead link can no longer hang a run forever.
    ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
    const auto errors = rt.take_errors();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("undeliverable"), std::string::npos) << errors[0];
    EXPECT_EQ(ran.load(), 0);
    const auto s = rt.net_stats();
    EXPECT_GE(s.delivery_failures, 1u);
    EXPECT_EQ(s.retries, 3u); // exactly the budget
}

TEST(FailureDetection, ThrowingActionLandsInErrorChannelNotTerminate) {
    runtime rt(2, net::make_mpi_port());
    const auto boom = rt.register_action(
        "boom", [](int, iarchive) { throw octo::error("handler exploded"); });
    std::atomic<int> ran{0};
    const auto ok =
        rt.register_action("ok", [&](int, iarchive) { ran.fetch_add(1); });

    rt.apply(1, boom, oarchive{});
    rt.wait_quiet();
    const auto errors = rt.take_errors();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("boom"), std::string::npos);
    EXPECT_NE(errors[0].find("handler exploded"), std::string::npos);

    // The locality's pool survived: later actions still run.
    rt.apply(1, ok, oarchive{});
    rt.wait_quiet();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(rt.error_count(), 0u);
}

// ---- hardened checkpoint/restart, mid-run -----------------------------------

void expect_bit_identical_trees(const tree& a, const tree& b) {
    const auto la = a.leaves_sfc();
    const auto lb = b.leaves_sfc();
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) {
        ASSERT_EQ(la[i], lb[i]);
        const auto pa = leaf_payload(*a.node(la[i]).fields);
        const auto pb = leaf_payload(*b.node(lb[i]).fields);
        ASSERT_EQ(std::memcmp(pa.data(), pb.data(),
                              pa.size() * sizeof(double)),
                  0)
            << "leaf " << i << " diverged after restart";
    }
}

TEST(CheckpointRestart, MidRunRestartIsBitIdentical) {
    const std::string prefix = "/tmp/octo_fault_restart";
    auto a = make_rotating_star();
    a.set_checkpoint_policy({.every_steps = 2, .path_prefix = prefix});
    for (int s = 0; s < 4; ++s) a.advance();
    const std::string ckpt = a.last_checkpoint();
    EXPECT_EQ(ckpt, prefix + ".4.ckpt");
    const double t4 = a.time();
    for (int s = 0; s < 2; ++s) a.advance(); // the uninterrupted run: 6 steps

    // Resume a second simulation from the step-4 checkpoint and advance the
    // same 2 remaining steps: time, step count and every field byte must
    // match the run that never stopped.
    auto b = core::simulation::restart(ckpt, rotating_star_options());
    EXPECT_EQ(b.step_count(), 4);
    EXPECT_DOUBLE_EQ(b.time(), t4);
    for (int s = 0; s < 2; ++s) b.advance();
    EXPECT_EQ(b.step_count(), a.step_count());
    EXPECT_DOUBLE_EQ(b.time(), a.time());
    expect_bit_identical_trees(a.grid(), b.grid());

    for (const char* suffix : {".2.ckpt", ".4.ckpt", ".6.ckpt"}) {
        std::remove((prefix + suffix).c_str());
    }
}

// ---- node death & elastic recovery (ISSUE 10) -------------------------------

TEST(FaultInjector, NodeKillStreamIsSeededAndIndependent) {
    const auto schedule = [](std::uint64_t seed) {
        support::fault_config cfg;
        cfg.seed = seed;
        cfg.node_kill_prob = 0.3;
        support::fault_injector inj(cfg);
        std::vector<int> d;
        for (int i = 0; i < 100; ++i) {
            d.push_back(static_cast<int>(inj.node_kill()));
            d.push_back(static_cast<int>(inj.kill_victim(8)));
        }
        return d;
    };
    EXPECT_EQ(schedule(5), schedule(5)); // replayable
    EXPECT_NE(schedule(5), schedule(6)); // and seed-sensitive

    // The kill stream is independent of the others (a campaign that burns
    // its drop stream still sees the same kill schedule), and fired kills
    // are counted.
    support::fault_config cfg = lossy(9);
    cfg.node_kill_prob = 0.3;
    support::fault_injector a(cfg), b(cfg);
    for (int i = 0; i < 500; ++i) a.drop();
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
        const bool ka = a.node_kill();
        EXPECT_EQ(ka, b.node_kill()) << i;
        fired += ka ? 1 : 0;
    }
    EXPECT_GT(fired, 0);
    EXPECT_EQ(a.stats().node_kills, static_cast<std::uint64_t>(fired));
}

TEST(NodeDeath, DetectedWithinTheBoundWithOnePeerDeathEvent) {
    dist::runtime rt(4, net::make_mpi_port());
    std::atomic<int> ran{0};
    const auto act = rt.register_action("post-kill", [&](int, dist::iarchive) {
        ran.fetch_add(1);
    });

    ASSERT_FALSE(rt.killed(2));
    rt.kill(2);
    EXPECT_TRUE(rt.killed(2));
    // The dead locality swallows new work unacked; a healthy one still runs.
    rt.apply(2, act, dist::oarchive{});
    rt.apply(3, act, dist::oarchive{});

    dist::membership mem(rt,
                         {.death_timeout = std::chrono::milliseconds(50)});
    const auto t0 = std::chrono::steady_clock::now();
    const auto dead = mem.probe();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(dead, std::vector<int>{2});
    EXPECT_TRUE(rt.declared_dead(2));
    EXPECT_EQ(rt.live_ranks(), (std::vector<int>{0, 1, 3}));
    // Bounded detection: death_timeout-scale, nowhere near the multi-second
    // retry budget a black-holed parcel would otherwise wait out.
    EXPECT_LT(elapsed, std::chrono::seconds(5));

    ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
    EXPECT_EQ(ran.load(), 1); // the healthy rank's action ran; the dead one's never will

    // Exactly ONE peer_death event carries the whole story.
    const auto errors = rt.take_errors();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("peer_death"), std::string::npos) << errors[0];
    const auto s = rt.net_stats();
    EXPECT_EQ(s.peer_deaths, 1u);
    EXPECT_GT(s.dead_dropped, 0u);
    EXPECT_EQ(s.delivery_failures, 0u); // cancelled, not budget-exhausted

    // Declaring the same death again is a no-op.
    rt.declare_dead(2);
    EXPECT_EQ(rt.net_stats().peer_deaths, 1u);
    EXPECT_EQ(rt.error_count(), 0u);

    const auto ms = mem.stats();
    EXPECT_EQ(ms.probes, 1u);
    EXPECT_EQ(ms.pings_sent, 3u);
    EXPECT_EQ(ms.pongs_received, 2u);
    EXPECT_EQ(ms.deaths_declared, 1u);
}

std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

core::sim_options lb_star_options() {
    auto o = rotating_star_options();
    o.lb.ranks = 4;
    o.lb.every_steps = 1;
    return o;
}

core::simulation make_lb_star() {
    auto t = scf::make_uniform_tree(4.0, 2);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0}, 1e-10);
    return core::simulation(std::move(t), lb_star_options());
}

TEST(ElasticRecovery, KilledRunRecoversBitIdenticalAcrossSeeds) {
    constexpr int nranks = 4;
    constexpr long total_steps = 4;
    const core::checkpoint_policy policy{.every_steps = 1,
                                         .path_prefix = "",
                                         .full_every = 2};

    // The uninterrupted reference run, shared across seeds.
    auto a = make_lb_star();
    {
        auto p = policy;
        p.path_prefix = "/tmp/octo_er_a";
        a.set_checkpoint_policy(p);
    }
    for (long s = 0; s < total_steps; ++s) a.advance();

    for (const std::uint64_t base : {3u, 17u, 29u}) {
        const std::uint64_t seed = campaign_seed(base);
        support::fault_config cfg;
        cfg.seed = seed;
        cfg.node_kill_prob = 0.5;
        support::fault_injector inj(cfg);

        // The injector's schedule decides WHEN the node dies (with a
        // deterministic fallback so every seed kills before the run ends)
        // and WHICH locality it takes. Rank 0 hosts the monitor and is
        // assumed stable — see DESIGN.md's fault model.
        long kill_step = 0;
        for (long s = 2; s < total_steps; ++s) {
            if (inj.node_kill()) {
                kill_step = s;
                break;
            }
        }
        if (kill_step == 0) kill_step = total_steps - 1;
        const int victim = 1 + static_cast<int>(inj.kill_victim(nranks - 1));

        const std::string prefix = "/tmp/octo_er_b" + std::to_string(base);
        dist::runtime rt(nranks, net::make_mpi_port());
        dist::subgrid_migrator mig(rt);
        const dist::gid victim_gid = rt.register_object(victim);
        auto b = make_lb_star();
        {
            auto p = policy;
            p.path_prefix = prefix;
            b.set_checkpoint_policy(p);
        }
        for (const node_key k : b.grid().leaves_sfc()) {
            mig.put(b.grid().node(k).owner, k, *b.grid().node(k).fields);
        }

        for (long s = 0; s < kill_step; ++s) b.advance();
        rt.kill(victim);
        const std::size_t held = mig.count(victim);
        ASSERT_GT(held, 0u);

        // Detection: the membership monitor declares the silent rank dead.
        dist::membership mem(
            rt, {.death_timeout = std::chrono::milliseconds(50)});
        std::vector<int> deaths;
        mem.on_death([&](int r) { deaths.push_back(r); });
        const auto dead = mem.probe();
        ASSERT_EQ(dead, std::vector<int>{victim}) << "seed " << seed;
        EXPECT_EQ(deaths, dead);
        const auto errors = rt.take_errors();
        ASSERT_EQ(errors.size(), 1u) << "seed " << seed;
        EXPECT_NE(errors[0].find("peer_death"), std::string::npos);

        // Recovery: survivors roll back to the last checkpoint chain,
        // repartition onto the live ranks, reload the stores, and re-home
        // the dead rank's gids.
        const auto chain = b.checkpoint_chain();
        ASSERT_FALSE(chain.empty());
        const auto live = rt.live_ranks();
        ASSERT_EQ(live.size(), static_cast<std::size_t>(nranks - 1));
        EXPECT_EQ(mig.drop_rank(victim), held);
        auto r = core::simulation::recover(chain, lb_star_options(), live);
        EXPECT_EQ(r.step_count(), kill_step);
        EXPECT_GT(mig.reload(r.grid()), 0u);
        rt.reassign_owned(victim, live.front());

        // Post-recovery invariants: no leaf is owned by the dead rank, every
        // leaf sits in its owner's store, the dead store is empty, and the
        // re-homed gid is reachable again.
        for (const node_key k : r.grid().leaves_sfc()) {
            const int own = r.grid().node(k).owner;
            ASSERT_NE(own, victim);
            ASSERT_TRUE(mig.contains(own, k));
        }
        EXPECT_EQ(mig.count(victim), 0u);
        ASSERT_FALSE(r.last_recovery().migrations.empty());
        rt.channel_set(victim_gid, {1.0, 2.0});
        EXPECT_EQ(rt.channel_get(victim_gid).get(),
                  (std::vector<double>{1.0, 2.0}));

        // Resume to the end, next to a never-killed restart from the SAME
        // chain: every checkpoint they write must match byte for byte.
        {
            auto p = policy;
            p.path_prefix = prefix + "_r";
            r.set_checkpoint_policy(p);
        }
        while (r.step_count() < total_steps) r.advance();
        auto ref = core::simulation::restart_chain(chain, lb_star_options());
        {
            auto p = policy;
            p.path_prefix = prefix + "_ref";
            ref.set_checkpoint_policy(p);
        }
        while (ref.step_count() < total_steps) ref.advance();

        const auto& cr = r.checkpoint_chain();
        const auto& cref = ref.checkpoint_chain();
        ASSERT_EQ(cr.size(), cref.size());
        for (std::size_t i = 0; i < cr.size(); ++i) {
            EXPECT_EQ(slurp(cr[i]), slurp(cref[i]))
                << "seed " << seed << " chain element " << i;
        }
        // And the recovered run ends bit-identical to the run that never
        // lost a node at all.
        EXPECT_DOUBLE_EQ(r.time(), a.time());
        expect_bit_identical_trees(a.grid(), r.grid());

        ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
        EXPECT_EQ(rt.error_count(), 0u);
        for (long s = 1; s <= total_steps; ++s) {
            for (const std::string& p :
                 {prefix, prefix + "_r", prefix + "_ref"}) {
                std::remove((p + "." + std::to_string(s) + ".ckpt").c_str());
                std::remove((p + "." + std::to_string(s) + ".dckpt").c_str());
            }
        }
    }
    for (long s = 1; s <= total_steps; ++s) {
        const std::string p = "/tmp/octo_er_a." + std::to_string(s);
        std::remove((p + ".ckpt").c_str());
        std::remove((p + ".dckpt").c_str());
    }
}

} // namespace

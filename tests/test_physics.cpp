// Tests for the physics layer: EOS + dual-energy formalism, Lane–Emden
// integration against known analytic values, and polytrope scalings.

#include <gtest/gtest.h>

#include <cmath>

#include "physics/eos.hpp"
#include "physics/polytrope.hpp"
#include "physics/units.hpp"

namespace {

using namespace octo::phys;

TEST(Eos, PressureAndSoundSpeed) {
    ideal_gas_eos eos(5.0 / 3.0);
    EXPECT_DOUBLE_EQ(eos.pressure(3.0), 2.0);
    // c_s = sqrt(gamma p / rho)
    EXPECT_DOUBLE_EQ(eos.sound_speed(1.0, 3.0), std::sqrt(5.0 / 3.0 * 2.0));
}

TEST(Eos, TauRoundTrip) {
    ideal_gas_eos eos(5.0 / 3.0);
    for (double u : {1e-8, 0.37, 1.0, 42.0}) {
        EXPECT_NEAR(eos.internal_from_tau(eos.tau_from_internal(u)), u, u * 1e-12);
    }
    EXPECT_DOUBLE_EQ(eos.tau_from_internal(-1.0), 0.0); // clamped
}

TEST(Eos, DualEnergyLowMachUsesTotalEnergy) {
    ideal_gas_eos eos(5.0 / 3.0, 1e-3);
    // Low mach: E = 10, ke = 1 -> internal from total = 9.
    const double tau = eos.tau_from_internal(5.0); // deliberately inconsistent
    EXPECT_DOUBLE_EQ(eos.internal_energy(10.0, 1.0, tau), 9.0);
    EXPECT_FALSE(eos.uses_entropy(10.0, 1.0));
}

TEST(Eos, DualEnergyHighMachUsesTau) {
    ideal_gas_eos eos(5.0 / 3.0, 1e-3);
    // High mach: kinetic nearly equals total; E - ke below the switch.
    const double u_true = 1e-7;
    const double tau = eos.tau_from_internal(u_true);
    const double E = 1000.0;
    const double ke = E - 1e-5; // E-ke = 1e-5 < 1e-3 * 1000
    EXPECT_NEAR(eos.internal_energy(E, ke, tau), u_true, u_true * 1e-10);
    EXPECT_TRUE(eos.uses_entropy(E, ke));
}

TEST(Eos, NegativeResidualFallsBackToTau) {
    ideal_gas_eos eos;
    const double tau = eos.tau_from_internal(0.3);
    EXPECT_NEAR(eos.internal_energy(1.0, 1.5, tau), 0.3, 1e-12);
}

// Lane–Emden analytic checks:
//   n = 0: theta = 1 - xi^2/6, xi1 = sqrt(6).
//   n = 1: theta = sin(xi)/xi, xi1 = pi.
//   n = 5: xi1 = infinity (we only go to n < 5).
TEST(LaneEmden, PolytropeIndex0) {
    const auto sol = solve_lane_emden(0.0, 1e-4);
    EXPECT_NEAR(sol.xi1, std::sqrt(6.0), 1e-3);
    EXPECT_NEAR(sol.theta_at(1.0), 1.0 - 1.0 / 6.0, 1e-4);
}

TEST(LaneEmden, PolytropeIndex1) {
    const auto sol = solve_lane_emden(1.0, 1e-4);
    EXPECT_NEAR(sol.xi1, M_PI, 1e-3);
    EXPECT_NEAR(sol.theta_at(1.5), std::sin(1.5) / 1.5, 1e-4);
    // theta'(xi1) = -1/pi * ... : for n=1, theta' = (cos xi)/xi - sin(xi)/xi^2,
    // at xi1=pi: -1/pi.
    EXPECT_NEAR(sol.dtheta_dxi_at_xi1, -1.0 / M_PI, 1e-3);
}

TEST(LaneEmden, KnownXi1ForN15) {
    // Standard tabulated value for n = 1.5: xi1 ≈ 3.65375.
    const auto sol = solve_lane_emden(1.5, 1e-4);
    EXPECT_NEAR(sol.xi1, 3.65375, 5e-3);
}

TEST(LaneEmden, ThetaMonotoneDecreasing) {
    const auto sol = solve_lane_emden(1.5);
    for (std::size_t i = 1; i < sol.theta.size(); ++i) {
        EXPECT_LE(sol.theta[i], sol.theta[i - 1] + 1e-12);
    }
}

TEST(Polytrope, MassAndRadiusScalings) {
    const polytrope star(1.54, 1.2, 1.5); // V1309 primary-like
    EXPECT_DOUBLE_EQ(star.mass(), 1.54);
    EXPECT_DOUBLE_EQ(star.radius(), 1.2);
    EXPECT_GT(star.rho_central(), 0.0);
    // Density vanishes at and beyond the surface, is maximal at the center.
    EXPECT_DOUBLE_EQ(star.rho(1.2), 0.0);
    EXPECT_DOUBLE_EQ(star.rho(2.0), 0.0);
    EXPECT_NEAR(star.rho(0.0), star.rho_central(), star.rho_central() * 1e-6);
    EXPECT_GT(star.rho(0.3), star.rho(0.9));
}

TEST(Polytrope, EnclosedMassIntegratesToTotal) {
    const polytrope star(1.0, 1.0, 1.5);
    EXPECT_NEAR(star.enclosed_mass(1.0), 1.0, 2e-3);
    EXPECT_DOUBLE_EQ(star.enclosed_mass(5.0), 1.0);
    EXPECT_LT(star.enclosed_mass(0.2), star.enclosed_mass(0.5));
    EXPECT_NEAR(star.enclosed_mass(0.0), 0.0, 1e-8);
}

TEST(Polytrope, CentralDensityMatchesMeanDensityRatio) {
    // For n = 1.5 the ratio rho_c / rho_mean ≈ 5.99.
    const polytrope star(1.0, 1.0, 1.5);
    const double rho_mean = 1.0 / (4.0 / 3.0 * M_PI);
    EXPECT_NEAR(star.rho_central() / rho_mean, 5.99, 0.05);
}

TEST(Polytrope, PressureFollowsPolytropicRelation) {
    const polytrope star(1.0, 1.0, 1.5);
    const double r = 0.4;
    EXPECT_NEAR(star.pressure(r), star.K() * std::pow(star.rho(r), 1.0 + 1.0 / 1.5),
                star.pressure(r) * 1e-12);
}

// Polytrope property sweep over the index n: scalings must hold for any n.
class PolytropeSweep : public ::testing::TestWithParam<double> {};

TEST_P(PolytropeSweep, MassRadiusAndMonotoneDensity) {
    const double n = GetParam();
    const polytrope star(2.0, 1.5, n);
    EXPECT_NEAR(star.enclosed_mass(1.5), 2.0, 0.02);
    EXPECT_DOUBLE_EQ(star.rho(2.0), 0.0);
    // Density decreases monotonically with radius.
    double prev = star.rho(0.0);
    for (double r = 0.1; r < 1.5; r += 0.1) {
        const double cur = star.rho(r);
        EXPECT_LE(cur, prev + 1e-12) << "n=" << n << " r=" << r;
        prev = cur;
    }
    // Pressure follows p = K rho^(1+1/n) everywhere inside.
    const double r = 0.6;
    EXPECT_NEAR(star.pressure(r), star.K() * std::pow(star.rho(r), 1.0 + 1.0 / n),
                star.pressure(r) * 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Indices, PolytropeSweep,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 3.0));

TEST(Units, V1309ScenarioConstants) {
    // Paper §6: 1.54 + 0.17 M_sun, separation 6.37 R_sun, domain 1.02e3 R_sun,
    // period 1.42 days.
    EXPECT_DOUBLE_EQ(v1309::m_primary, 1.54);
    EXPECT_DOUBLE_EQ(v1309::m_secondary, 0.17);
    EXPECT_DOUBLE_EQ(v1309::separation, 6.37);
    EXPECT_DOUBLE_EQ(v1309::domain_edge, 1.02e3);
    // Domain is ~160x the separation (paper: "about 160 times larger").
    EXPECT_NEAR(v1309::domain_edge / v1309::separation, 160.0, 1.0);
    // 1.42 days in code units: ~77 time units.
    EXPECT_NEAR(days_to_code(v1309::period_days), 1.42 * 86400.0 / 1593.9, 1e-6);
}

} // namespace

// Tests for the I/O layer: CSV writers, nearest-cell sampling and the
// checkpoint/restart round trip (the paper's level-13-restart workflow).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "amr/tree.hpp"
#include "io/checkpoint.hpp"
#include "io/writers.hpp"
#include "runtime/apex.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace {

using namespace octo;
using namespace octo::amr;

box_geometry unit_root() {
    box_geometry g;
    g.origin = {0, 0, 0};
    g.dx = 1.0 / INX;
    return g;
}

tree make_test_tree() {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(key_child(root_key, 3));
    t.balance21();
    xoshiro256 rng(99);
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = rng.uniform(0.0, 2.0);
                    }
    }
    return t;
}

TEST(Sample, NearestCellLookup) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    g.interior(f_rho, 0, 0, 0) = 7.0;
    g.interior(f_rho, 7, 7, 7) = 9.0;
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {0.01, 0.01, 0.01}), 7.0);
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {0.99, 0.99, 0.99}), 9.0);
    // Outside the domain: 0.
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {-1.0, 0.5, 0.5}), 0.0);
}

TEST(Sample, DescendsIntoRefinedRegions) {
    tree t = make_test_tree();
    // A point inside child 3's region must read the level-2 leaf value.
    const node_key fine = key_child(key_child(root_key, 3), 0);
    const auto& g = *t.node(fine).fields;
    const dvec3 p = g.geom.cell_center(2, 2, 2);
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, p), g.interior(f_rho, 2, 2, 2));
}

TEST(CsvWriters, ProduceWellFormedFiles) {
    tree t = make_test_tree();
    const std::string cells = "/tmp/octo_cells_test.csv";
    io::write_cells_csv(t, cells);
    std::ifstream in(cells);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("x,y,z,level,dx,rho"), std::string::npos);
    std::size_t rows = 0;
    std::string line;
    while (std::getline(in, line)) ++rows;
    EXPECT_EQ(rows, t.leaf_count() * INX3);
    std::remove(cells.c_str());

    const std::string slice = "/tmp/octo_slice_test.csv";
    io::write_slice_csv(t, f_rho, 0.5, 16, slice);
    std::ifstream sin(slice);
    ASSERT_TRUE(sin.good());
    rows = 0;
    while (std::getline(sin, line)) {
        ++rows;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 15);
    }
    EXPECT_EQ(rows, 16u);
    std::remove(slice.c_str());
}

TEST(Checkpoint, RoundTripPreservesEverything) {
    tree t = make_test_tree();
    const std::string path = "/tmp/octo_checkpoint_test.bin";
    io::write_checkpoint(t, path);
    tree r = io::read_checkpoint(path);
    std::remove(path.c_str());

    EXPECT_EQ(r.size(), t.size());
    EXPECT_EQ(r.leaf_count(), t.leaf_count());
    EXPECT_DOUBLE_EQ(r.root_geometry().dx, t.root_geometry().dx);
    for (const auto k : t.leaves_sfc()) {
        ASSERT_TRUE(r.contains(k));
        ASSERT_NE(r.node(k).fields, nullptr);
        const auto& a = *t.node(k).fields;
        const auto& b = *r.node(k).fields;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        ASSERT_EQ(a.interior(f, i, j, kk), b.interior(f, i, j, kk));
                    }
    }
}

TEST(Checkpoint, PreservesAmrHierarchy) {
    // A mixed-depth tree (the paper's restart files are AMR snapshots).
    tree t = make_test_tree();
    const auto leaves_before = t.leaves_sfc();
    const std::string path = "/tmp/octo_checkpoint_amr.bin";
    io::write_checkpoint(t, path);
    tree r = io::read_checkpoint(path);
    std::remove(path.c_str());
    const auto leaves_after = r.leaves_sfc();
    ASSERT_EQ(leaves_after.size(), leaves_before.size());
    for (std::size_t i = 0; i < leaves_before.size(); ++i) {
        EXPECT_EQ(leaves_after[i], leaves_before[i]); // same SFC order
        EXPECT_EQ(key_level(leaves_after[i]), key_level(leaves_before[i]));
    }
    EXPECT_TRUE(r.is_balanced21());
}

TEST(Sample, EveryFieldAddressable) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    for (int f = 0; f < n_fields; ++f) g.interior(f, 1, 2, 3) = 100.0 + f;
    const dvec3 p = g.geom.cell_center(1, 2, 3);
    for (int f = 0; f < n_fields; ++f) {
        EXPECT_DOUBLE_EQ(io::sample(t, f, p), 100.0 + f) << field_name(f);
    }
}

TEST(CsvWriters, SliceSelectsRequestedField) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int kk = 0; kk < INX; ++kk) {
                g.interior(f_egas, i, j, kk) = 42.0;
                g.interior(f_rho, i, j, kk) = 1.0;
            }
    const std::string path = "/tmp/octo_slice_field.csv";
    io::write_slice_csv(t, f_egas, 0.5, 4, path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_NE(line.find("42"), std::string::npos);
    EXPECT_EQ(line.find("1,1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
    const std::string path = "/tmp/octo_checkpoint_bad.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a checkpoint";
    }
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    std::remove(path.c_str());
    EXPECT_THROW(io::read_checkpoint("/nonexistent/path.bin"), octo::error);
}

// ---- format v2 hardening (ISSUE 5) ------------------------------------------

TEST(Checkpoint, MetaSurvivesTheRoundTrip) {
    tree t = make_test_tree();
    const std::string path = "/tmp/octo_checkpoint_meta.bin";
    io::write_checkpoint(t, path, {.time = 3.25, .steps = 17});
    const auto ck = io::read_checkpoint_full(path);
    std::remove(path.c_str());
    EXPECT_DOUBLE_EQ(ck.meta.time, 3.25);
    EXPECT_EQ(ck.meta.steps, 17);
    EXPECT_EQ(ck.t.leaf_count(), t.leaf_count());
}

std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A single-leaf checkpoint keeps the fixture sweep cheap; every byte of the
/// v2 format is load-bearing (magic, version, CRC'd sections or the CRCs
/// themselves), so each flip must be detected.
std::string write_single_leaf_checkpoint() {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    xoshiro256 rng(7);
    for (int f = 0; f < n_fields; ++f)
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    g.interior(f, i, j, kk) = rng.uniform(-1.0, 1.0);
                }
    const std::string path = "/tmp/octo_checkpoint_fixtures.bin";
    io::write_checkpoint(t, path);
    return path;
}

TEST(Checkpoint, EverySampledBitFlipIsDetected) {
    const std::string path = write_single_leaf_checkpoint();
    const auto pristine = slurp(path);
    ASSERT_GT(pristine.size(), 100u);
    io::read_checkpoint(path); // sanity: the pristine file loads

    std::size_t fixtures = 0;
    auto probe = [&](std::size_t offset) {
        auto bytes = pristine;
        bytes[offset] ^= static_cast<char>(1 << (offset % 8));
        spit(path, bytes);
        EXPECT_THROW(io::read_checkpoint(path), octo::error)
            << "flip at byte " << offset << " loaded silently";
        ++fixtures;
    };
    // Dense sweep over the header region, sampled sweep over the data body,
    // and the final checksum bytes.
    for (std::size_t off = 0; off < 100; ++off) probe(off);
    for (std::size_t off = 100; off < pristine.size(); off += 509) probe(off);
    for (std::size_t off = pristine.size() - 4; off < pristine.size(); ++off) {
        probe(off);
    }
    EXPECT_GT(fixtures, 120u);
    std::remove(path.c_str());
}

TEST(Checkpoint, EverySampledTruncationIsDetected) {
    const std::string path = write_single_leaf_checkpoint();
    const auto pristine = slurp(path);
    for (std::size_t len :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, pristine.size() / 4,
          pristine.size() / 2, pristine.size() - 5, pristine.size() - 1}) {
        spit(path, {pristine.begin(),
                    pristine.begin() + static_cast<std::ptrdiff_t>(len)});
        EXPECT_THROW(io::read_checkpoint(path), octo::error)
            << "truncation to " << len << " bytes loaded silently";
    }
    // Appended trailing garbage is just as corrupt as missing bytes.
    auto grown = pristine;
    grown.push_back(0);
    spit(path, grown);
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    std::remove(path.c_str());
}

TEST(Checkpoint, CrcFailuresAreCountedInApex) {
    const std::string path = write_single_leaf_checkpoint();
    auto bytes = slurp(path);
    bytes[bytes.size() / 2] ^= 0x10; // a field double, caught by section CRC
    spit(path, bytes);
    const auto before =
        rt::apex_registry::instance().counter("io.checkpoint_crc_failures");
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    EXPECT_EQ(
        rt::apex_registry::instance().counter("io.checkpoint_crc_failures"),
        before + 1);
    std::remove(path.c_str());
}

TEST(Checkpoint, GarbageKeysAreRejectedNotAsserted) {
    // Hand-craft v1 files (no checksums, so garbage keys reach the key
    // validator): a malformed Morton key and a well-formed key naming a node
    // outside the tree must both produce a clean error — not drive
    // tree::refine into an assert/abort.
    const std::string path = "/tmp/octo_checkpoint_badkey.bin";
    auto craft = [&](std::uint64_t refined_key) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        const std::uint64_t magic_v1 = 0x4f43544f53494d31ULL; // "OCTOSIM1"
        const double geom[4] = {0.0, 0.0, 0.0, 1.0 / INX};
        const std::uint64_t nrefined = 1;
        out.write(reinterpret_cast<const char*>(&magic_v1), 8);
        out.write(reinterpret_cast<const char*>(geom), sizeof(geom));
        out.write(reinterpret_cast<const char*>(&nrefined), 8);
        out.write(reinterpret_cast<const char*>(&refined_key), 8);
    };
    craft(0xffffffffffffffffULL); // not a valid Morton shape (level > 20)
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    craft(0x2); // bit count not 1+3*level: no Morton key looks like this
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    craft(key_child(key_child(root_key, 0), 0)); // valid shape, absent parent
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    std::remove(path.c_str());
}

TEST(Checkpoint, TransientWriteFaultsRetryAndNeverTearTheOldFile) {
    const std::string path = "/tmp/octo_checkpoint_transient.bin";
    tree a = make_test_tree();
    io::write_checkpoint(a, path);
    const auto old_bytes = slurp(path);

    // A permanently failing device: the write throws after its bounded
    // retries, the previous checkpoint is untouched, no temp file remains.
    tree b(unit_root());
    b.ensure_fields(root_key);
    {
        support::fault_config cfg;
        cfg.seed = 21;
        cfg.io_fail_prob = 1.0;
        support::fault_injector inj(cfg);
        support::scoped_io_faults guard(inj);
        EXPECT_THROW(io::write_checkpoint(b, path), octo::error);
        EXPECT_GT(inj.stats().io_failures, 0u);
    }
    EXPECT_EQ(slurp(path), old_bytes);
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    // A flaky device: retries absorb the transient failures and the new
    // image lands atomically.
    {
        support::fault_config cfg;
        cfg.seed = 21;
        cfg.io_fail_prob = 0.4;
        support::fault_injector inj(cfg);
        support::scoped_io_faults guard(inj);
        bool wrote = false;
        for (int i = 0;
             i < 200 && (!wrote || inj.stats().io_failures == 0); ++i) {
            try {
                io::write_checkpoint(b, path);
                wrote = true;
            } catch (const octo::error&) {
            }
        }
        EXPECT_TRUE(wrote);
        EXPECT_GT(inj.stats().io_failures, 0u);
    }
    const tree r = io::read_checkpoint(path);
    EXPECT_EQ(r.leaf_count(), 1u);
    std::remove(path.c_str());
}

// ---- incremental delta checkpoints (format v3, ISSUE 10) --------------------

void expect_trees_equal(const tree& a, const tree& b) {
    ASSERT_EQ(a.leaf_count(), b.leaf_count());
    const auto la = a.leaves_sfc();
    const auto lb = b.leaves_sfc();
    ASSERT_EQ(la, lb);
    for (const node_key k : la) {
        const auto& ga = *a.node(k).fields;
        const auto& gb = *b.node(k).fields;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        ASSERT_EQ(ga.interior(f, i, j, kk),
                                  gb.interior(f, i, j, kk));
                    }
    }
}

TEST(DeltaCheckpoint, WritesOnlyDirtyLeavesAndChainRestoresBitIdentical) {
    tree t = make_test_tree();
    const std::string full = "/tmp/octo_delta_full.bin";
    const std::string delta = "/tmp/octo_delta_inc.bin";
    io::write_checkpoint(t, full, {.time = 1.0, .steps = 10});
    const auto base = io::leaf_digests(t);
    EXPECT_EQ(base.size(), t.leaf_count());

    // Touch exactly two leaves; everything else stays clean.
    const auto leaves = t.leaves_sfc();
    ASSERT_GE(leaves.size(), 3u);
    t.ensure_fields(leaves[0]).interior(f_rho, 1, 1, 1) += 0.5;
    t.ensure_fields(leaves[2]).interior(f_egas, 2, 3, 4) *= 2.0;
    const auto st =
        io::write_checkpoint_delta(t, delta, base, {.time = 2.0, .steps = 20});
    EXPECT_EQ(st.dirty_leaves, 2u);
    EXPECT_EQ(st.total_leaves, leaves.size());
    // Incremental really is incremental: far smaller than the full image.
    EXPECT_LT(st.bytes, slurp(full).size() / 2);
    EXPECT_EQ(st.bytes, slurp(delta).size());

    const auto ck = io::read_checkpoint_chain({full, delta});
    EXPECT_DOUBLE_EQ(ck.meta.time, 2.0);
    EXPECT_EQ(ck.meta.steps, 20);
    expect_trees_equal(ck.t, t);

    // A later delta against the SAME base supersedes the earlier one.
    const std::string delta2 = "/tmp/octo_delta_inc2.bin";
    t.ensure_fields(leaves[1]).interior(f_rho, 0, 0, 0) += 1.0;
    io::write_checkpoint_delta(t, delta2, base, {.time = 3.0, .steps = 30});
    const auto ck2 = io::read_checkpoint_chain({full, delta, delta2});
    EXPECT_EQ(ck2.meta.steps, 30);
    expect_trees_equal(ck2.t, t);

    // A one-element chain is just the full image.
    const auto ck0 = io::read_checkpoint_chain({full});
    EXPECT_EQ(ck0.meta.steps, 10);

    for (const auto* p : {&full, &delta, &delta2}) std::remove(p->c_str());
}

TEST(DeltaCheckpoint, SurvivesARegridBetweenBaseAndDelta) {
    // The delta snapshots the full refined-key set, so structure changes
    // after the base are restored too; leaves that exist in both and kept
    // their content come from the base.
    tree t = make_test_tree();
    const std::string full = "/tmp/octo_delta_regrid_full.bin";
    const std::string delta = "/tmp/octo_delta_regrid_inc.bin";
    io::write_checkpoint(t, full);
    const auto base = io::leaf_digests(t);

    const auto leaves = t.leaves_sfc();
    t.refine(leaves.back()); // new children: dirty (absent from the base)
    t.balance21();
    xoshiro256 rng(3);
    for (const node_key k : t.leaves_sfc()) {
        if (base.count(k) != 0) continue; // pre-existing leaf stays clean
        auto& g = t.ensure_fields(k);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = rng.uniform(0.0, 1.0);
                    }
    }
    const auto st = io::write_checkpoint_delta(t, delta, base);
    EXPECT_GT(st.dirty_leaves, 0u);
    EXPECT_LT(st.dirty_leaves, st.total_leaves);

    const auto ck = io::read_checkpoint_chain({full, delta});
    expect_trees_equal(ck.t, t);
    for (const auto* p : {&full, &delta}) std::remove(p->c_str());
}

TEST(DeltaCheckpoint, EveryBitFlipInTheDeltaIsDetected) {
    // The delta format carries the same obligation as the full format: every
    // byte is load-bearing (magic, version, CRC'd header / refined / dirty
    // sections, per-leaf digests), so every flip must be rejected.
    tree t = make_test_tree();
    const std::string full = "/tmp/octo_delta_flip_full.bin";
    const std::string delta = "/tmp/octo_delta_flip_inc.bin";
    io::write_checkpoint(t, full);
    const auto base = io::leaf_digests(t);
    t.ensure_fields(t.leaves_sfc()[0]).interior(f_rho, 0, 0, 0) += 1.0;
    io::write_checkpoint_delta(t, delta, base);

    const auto pristine = slurp(delta);
    ASSERT_GT(pristine.size(), 100u);
    io::read_checkpoint_chain({full, delta}); // sanity: pristine loads
    auto probe = [&](std::size_t off) {
        auto bytes = pristine;
        bytes[off] ^= static_cast<char>(1 << (off % 8));
        spit(delta, bytes);
        EXPECT_THROW(io::read_checkpoint_chain({full, delta}), octo::error)
            << "flip at delta byte " << off << " loaded silently";
    };
    // Dense sweep over the header/refined-keys region, sampled sweep over
    // the dirty-record body, and the final checksum bytes.
    for (std::size_t off = 0; off < 100; ++off) probe(off);
    for (std::size_t off = 100; off < pristine.size(); off += 509) probe(off);
    for (std::size_t off = pristine.size() - 4; off < pristine.size(); ++off) {
        probe(off);
    }
    // Truncation and growth are corrupt too.
    spit(delta, {pristine.begin(), pristine.end() - 1});
    EXPECT_THROW(io::read_checkpoint_chain({full, delta}), octo::error);
    auto grown = pristine;
    grown.push_back(0);
    spit(delta, grown);
    EXPECT_THROW(io::read_checkpoint_chain({full, delta}), octo::error);
    for (const auto* p : {&full, &delta}) std::remove(p->c_str());
}

TEST(DeltaCheckpoint, RejectsAMismatchedBase) {
    // A delta is bound to ITS base by the digest-map CRC in its header:
    // restoring it against any other image must fail loudly, never splice
    // two unrelated checkpoints together.
    tree t = make_test_tree();
    const std::string full_a = "/tmp/octo_delta_base_a.bin";
    const std::string full_b = "/tmp/octo_delta_base_b.bin";
    const std::string delta = "/tmp/octo_delta_base_inc.bin";
    io::write_checkpoint(t, full_a);
    const auto base = io::leaf_digests(t);

    tree other = make_test_tree();
    other.ensure_fields(other.leaves_sfc()[1]).interior(f_rho, 4, 4, 4) += 9.0;
    io::write_checkpoint(other, full_b);

    t.ensure_fields(t.leaves_sfc()[0]).interior(f_rho, 0, 0, 0) += 1.0;
    io::write_checkpoint_delta(t, delta, base);

    EXPECT_NO_THROW(io::read_checkpoint_chain({full_a, delta}));
    EXPECT_THROW(io::read_checkpoint_chain({full_b, delta}), octo::error);
    // And the CRC-failure counter saw it.
    const auto before =
        rt::apex_registry::instance().counter("io.checkpoint_crc_failures");
    EXPECT_THROW(io::read_checkpoint_chain({full_b, delta}), octo::error);
    EXPECT_EQ(
        rt::apex_registry::instance().counter("io.checkpoint_crc_failures"),
        before + 1);
    for (const auto* p : {&full_a, &full_b, &delta}) std::remove(p->c_str());
}

TEST(DeltaCheckpoint, DeltaFileIsRejectedWhereAFullImageIsExpected) {
    tree t = make_test_tree();
    const std::string full = "/tmp/octo_delta_misuse_full.bin";
    const std::string delta = "/tmp/octo_delta_misuse_inc.bin";
    io::write_checkpoint(t, full);
    io::write_checkpoint_delta(t, delta, io::leaf_digests(t));
    EXPECT_THROW(io::read_checkpoint(delta), octo::error);
    EXPECT_THROW(io::read_checkpoint_chain({delta}), octo::error);
    EXPECT_THROW(io::read_checkpoint_chain({}), octo::error);
    for (const auto* p : {&full, &delta}) std::remove(p->c_str());
}

TEST(Checkpoint, Version2FilesStayReadable) {
    // The v3 writer added per-leaf digests, but archived v2 restart files
    // must keep loading. Hand-craft a one-leaf v2 image (same section
    // layout, no per-leaf digest) with correct section CRCs.
    const std::string path = "/tmp/octo_checkpoint_v2.bin";
    std::vector<double> img(static_cast<std::size_t>(n_fields) * INX3);
    for (std::size_t i = 0; i < img.size(); ++i) {
        img[i] = 0.25 * static_cast<double>(i) + 1.0;
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        auto put = [&](const auto& v) {
            out.write(reinterpret_cast<const char*>(&v), sizeof v);
        };
        crc32_accumulator crc;
        auto put_crc = [&](const auto& v) {
            crc.update(&v, sizeof v);
            put(v);
        };
        const std::uint64_t magic_v2 = 0x4f43544f53494d32ULL; // "OCTOSIM2"
        const std::uint32_t version = 2;
        put(magic_v2);
        put(version);
        const box_geometry root = unit_root();
        put_crc(root.origin.x);
        put_crc(root.origin.y);
        put_crc(root.origin.z);
        put_crc(root.dx);
        put_crc(double{1.5});                 // time
        put_crc(std::int64_t{42});            // steps
        put_crc(std::uint64_t{0});            // nrefined
        put_crc(std::uint64_t{1});            // ndata
        put(crc.value());
        crc.reset();
        put(crc.value()); // empty refined-keys section
        crc.reset();
        put_crc(root_key);
        for (const double v : img) put_crc(v);
        put(crc.value());
    }
    const auto ck = io::read_checkpoint_full(path);
    EXPECT_DOUBLE_EQ(ck.meta.time, 1.5);
    EXPECT_EQ(ck.meta.steps, 42);
    ASSERT_EQ(ck.t.leaf_count(), 1u);
    const auto& g = *ck.t.node(root_key).fields;
    std::size_t idx = 0;
    for (int f = 0; f < n_fields; ++f)
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    ASSERT_EQ(g.interior(f, i, j, kk), img[idx++]);
                }
    std::remove(path.c_str());
}

} // namespace

// Tests for the I/O layer: CSV writers, nearest-cell sampling and the
// checkpoint/restart round trip (the paper's level-13-restart workflow).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "amr/tree.hpp"
#include "io/checkpoint.hpp"
#include "io/writers.hpp"
#include "runtime/apex.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace {

using namespace octo;
using namespace octo::amr;

box_geometry unit_root() {
    box_geometry g;
    g.origin = {0, 0, 0};
    g.dx = 1.0 / INX;
    return g;
}

tree make_test_tree() {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(key_child(root_key, 3));
    t.balance21();
    xoshiro256 rng(99);
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = rng.uniform(0.0, 2.0);
                    }
    }
    return t;
}

TEST(Sample, NearestCellLookup) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    g.interior(f_rho, 0, 0, 0) = 7.0;
    g.interior(f_rho, 7, 7, 7) = 9.0;
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {0.01, 0.01, 0.01}), 7.0);
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {0.99, 0.99, 0.99}), 9.0);
    // Outside the domain: 0.
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {-1.0, 0.5, 0.5}), 0.0);
}

TEST(Sample, DescendsIntoRefinedRegions) {
    tree t = make_test_tree();
    // A point inside child 3's region must read the level-2 leaf value.
    const node_key fine = key_child(key_child(root_key, 3), 0);
    const auto& g = *t.node(fine).fields;
    const dvec3 p = g.geom.cell_center(2, 2, 2);
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, p), g.interior(f_rho, 2, 2, 2));
}

TEST(CsvWriters, ProduceWellFormedFiles) {
    tree t = make_test_tree();
    const std::string cells = "/tmp/octo_cells_test.csv";
    io::write_cells_csv(t, cells);
    std::ifstream in(cells);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("x,y,z,level,dx,rho"), std::string::npos);
    std::size_t rows = 0;
    std::string line;
    while (std::getline(in, line)) ++rows;
    EXPECT_EQ(rows, t.leaf_count() * INX3);
    std::remove(cells.c_str());

    const std::string slice = "/tmp/octo_slice_test.csv";
    io::write_slice_csv(t, f_rho, 0.5, 16, slice);
    std::ifstream sin(slice);
    ASSERT_TRUE(sin.good());
    rows = 0;
    while (std::getline(sin, line)) {
        ++rows;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 15);
    }
    EXPECT_EQ(rows, 16u);
    std::remove(slice.c_str());
}

TEST(Checkpoint, RoundTripPreservesEverything) {
    tree t = make_test_tree();
    const std::string path = "/tmp/octo_checkpoint_test.bin";
    io::write_checkpoint(t, path);
    tree r = io::read_checkpoint(path);
    std::remove(path.c_str());

    EXPECT_EQ(r.size(), t.size());
    EXPECT_EQ(r.leaf_count(), t.leaf_count());
    EXPECT_DOUBLE_EQ(r.root_geometry().dx, t.root_geometry().dx);
    for (const auto k : t.leaves_sfc()) {
        ASSERT_TRUE(r.contains(k));
        ASSERT_NE(r.node(k).fields, nullptr);
        const auto& a = *t.node(k).fields;
        const auto& b = *r.node(k).fields;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        ASSERT_EQ(a.interior(f, i, j, kk), b.interior(f, i, j, kk));
                    }
    }
}

TEST(Checkpoint, PreservesAmrHierarchy) {
    // A mixed-depth tree (the paper's restart files are AMR snapshots).
    tree t = make_test_tree();
    const auto leaves_before = t.leaves_sfc();
    const std::string path = "/tmp/octo_checkpoint_amr.bin";
    io::write_checkpoint(t, path);
    tree r = io::read_checkpoint(path);
    std::remove(path.c_str());
    const auto leaves_after = r.leaves_sfc();
    ASSERT_EQ(leaves_after.size(), leaves_before.size());
    for (std::size_t i = 0; i < leaves_before.size(); ++i) {
        EXPECT_EQ(leaves_after[i], leaves_before[i]); // same SFC order
        EXPECT_EQ(key_level(leaves_after[i]), key_level(leaves_before[i]));
    }
    EXPECT_TRUE(r.is_balanced21());
}

TEST(Sample, EveryFieldAddressable) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    for (int f = 0; f < n_fields; ++f) g.interior(f, 1, 2, 3) = 100.0 + f;
    const dvec3 p = g.geom.cell_center(1, 2, 3);
    for (int f = 0; f < n_fields; ++f) {
        EXPECT_DOUBLE_EQ(io::sample(t, f, p), 100.0 + f) << field_name(f);
    }
}

TEST(CsvWriters, SliceSelectsRequestedField) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int kk = 0; kk < INX; ++kk) {
                g.interior(f_egas, i, j, kk) = 42.0;
                g.interior(f_rho, i, j, kk) = 1.0;
            }
    const std::string path = "/tmp/octo_slice_field.csv";
    io::write_slice_csv(t, f_egas, 0.5, 4, path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_NE(line.find("42"), std::string::npos);
    EXPECT_EQ(line.find("1,1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
    const std::string path = "/tmp/octo_checkpoint_bad.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a checkpoint";
    }
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    std::remove(path.c_str());
    EXPECT_THROW(io::read_checkpoint("/nonexistent/path.bin"), octo::error);
}

// ---- format v2 hardening (ISSUE 5) ------------------------------------------

TEST(Checkpoint, MetaSurvivesTheRoundTrip) {
    tree t = make_test_tree();
    const std::string path = "/tmp/octo_checkpoint_meta.bin";
    io::write_checkpoint(t, path, {.time = 3.25, .steps = 17});
    const auto ck = io::read_checkpoint_full(path);
    std::remove(path.c_str());
    EXPECT_DOUBLE_EQ(ck.meta.time, 3.25);
    EXPECT_EQ(ck.meta.steps, 17);
    EXPECT_EQ(ck.t.leaf_count(), t.leaf_count());
}

std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A single-leaf checkpoint keeps the fixture sweep cheap; every byte of the
/// v2 format is load-bearing (magic, version, CRC'd sections or the CRCs
/// themselves), so each flip must be detected.
std::string write_single_leaf_checkpoint() {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    xoshiro256 rng(7);
    for (int f = 0; f < n_fields; ++f)
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    g.interior(f, i, j, kk) = rng.uniform(-1.0, 1.0);
                }
    const std::string path = "/tmp/octo_checkpoint_fixtures.bin";
    io::write_checkpoint(t, path);
    return path;
}

TEST(Checkpoint, EverySampledBitFlipIsDetected) {
    const std::string path = write_single_leaf_checkpoint();
    const auto pristine = slurp(path);
    ASSERT_GT(pristine.size(), 100u);
    io::read_checkpoint(path); // sanity: the pristine file loads

    std::size_t fixtures = 0;
    auto probe = [&](std::size_t offset) {
        auto bytes = pristine;
        bytes[offset] ^= static_cast<char>(1 << (offset % 8));
        spit(path, bytes);
        EXPECT_THROW(io::read_checkpoint(path), octo::error)
            << "flip at byte " << offset << " loaded silently";
        ++fixtures;
    };
    // Dense sweep over the header region, sampled sweep over the data body,
    // and the final checksum bytes.
    for (std::size_t off = 0; off < 100; ++off) probe(off);
    for (std::size_t off = 100; off < pristine.size(); off += 509) probe(off);
    for (std::size_t off = pristine.size() - 4; off < pristine.size(); ++off) {
        probe(off);
    }
    EXPECT_GT(fixtures, 120u);
    std::remove(path.c_str());
}

TEST(Checkpoint, EverySampledTruncationIsDetected) {
    const std::string path = write_single_leaf_checkpoint();
    const auto pristine = slurp(path);
    for (std::size_t len :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, pristine.size() / 4,
          pristine.size() / 2, pristine.size() - 5, pristine.size() - 1}) {
        spit(path, {pristine.begin(),
                    pristine.begin() + static_cast<std::ptrdiff_t>(len)});
        EXPECT_THROW(io::read_checkpoint(path), octo::error)
            << "truncation to " << len << " bytes loaded silently";
    }
    // Appended trailing garbage is just as corrupt as missing bytes.
    auto grown = pristine;
    grown.push_back(0);
    spit(path, grown);
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    std::remove(path.c_str());
}

TEST(Checkpoint, CrcFailuresAreCountedInApex) {
    const std::string path = write_single_leaf_checkpoint();
    auto bytes = slurp(path);
    bytes[bytes.size() / 2] ^= 0x10; // a field double, caught by section CRC
    spit(path, bytes);
    const auto before =
        rt::apex_registry::instance().counter("io.checkpoint_crc_failures");
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    EXPECT_EQ(
        rt::apex_registry::instance().counter("io.checkpoint_crc_failures"),
        before + 1);
    std::remove(path.c_str());
}

TEST(Checkpoint, GarbageKeysAreRejectedNotAsserted) {
    // Hand-craft v1 files (no checksums, so garbage keys reach the key
    // validator): a malformed Morton key and a well-formed key naming a node
    // outside the tree must both produce a clean error — not drive
    // tree::refine into an assert/abort.
    const std::string path = "/tmp/octo_checkpoint_badkey.bin";
    auto craft = [&](std::uint64_t refined_key) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        const std::uint64_t magic_v1 = 0x4f43544f53494d31ULL; // "OCTOSIM1"
        const double geom[4] = {0.0, 0.0, 0.0, 1.0 / INX};
        const std::uint64_t nrefined = 1;
        out.write(reinterpret_cast<const char*>(&magic_v1), 8);
        out.write(reinterpret_cast<const char*>(geom), sizeof(geom));
        out.write(reinterpret_cast<const char*>(&nrefined), 8);
        out.write(reinterpret_cast<const char*>(&refined_key), 8);
    };
    craft(0xffffffffffffffffULL); // not a valid Morton shape (level > 20)
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    craft(0x2); // bit count not 1+3*level: no Morton key looks like this
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    craft(key_child(key_child(root_key, 0), 0)); // valid shape, absent parent
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    std::remove(path.c_str());
}

TEST(Checkpoint, TransientWriteFaultsRetryAndNeverTearTheOldFile) {
    const std::string path = "/tmp/octo_checkpoint_transient.bin";
    tree a = make_test_tree();
    io::write_checkpoint(a, path);
    const auto old_bytes = slurp(path);

    // A permanently failing device: the write throws after its bounded
    // retries, the previous checkpoint is untouched, no temp file remains.
    tree b(unit_root());
    b.ensure_fields(root_key);
    {
        support::fault_config cfg;
        cfg.seed = 21;
        cfg.io_fail_prob = 1.0;
        support::fault_injector inj(cfg);
        support::scoped_io_faults guard(inj);
        EXPECT_THROW(io::write_checkpoint(b, path), octo::error);
        EXPECT_GT(inj.stats().io_failures, 0u);
    }
    EXPECT_EQ(slurp(path), old_bytes);
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    // A flaky device: retries absorb the transient failures and the new
    // image lands atomically.
    {
        support::fault_config cfg;
        cfg.seed = 21;
        cfg.io_fail_prob = 0.4;
        support::fault_injector inj(cfg);
        support::scoped_io_faults guard(inj);
        bool wrote = false;
        for (int i = 0;
             i < 200 && (!wrote || inj.stats().io_failures == 0); ++i) {
            try {
                io::write_checkpoint(b, path);
                wrote = true;
            } catch (const octo::error&) {
            }
        }
        EXPECT_TRUE(wrote);
        EXPECT_GT(inj.stats().io_failures, 0u);
    }
    const tree r = io::read_checkpoint(path);
    EXPECT_EQ(r.leaf_count(), 1u);
    std::remove(path.c_str());
}

} // namespace

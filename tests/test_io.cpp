// Tests for the I/O layer: CSV writers, nearest-cell sampling and the
// checkpoint/restart round trip (the paper's level-13-restart workflow).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "amr/tree.hpp"
#include "io/checkpoint.hpp"
#include "io/writers.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

using namespace octo;
using namespace octo::amr;

box_geometry unit_root() {
    box_geometry g;
    g.origin = {0, 0, 0};
    g.dx = 1.0 / INX;
    return g;
}

tree make_test_tree() {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(key_child(root_key, 3));
    t.balance21();
    xoshiro256 rng(99);
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = rng.uniform(0.0, 2.0);
                    }
    }
    return t;
}

TEST(Sample, NearestCellLookup) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    g.interior(f_rho, 0, 0, 0) = 7.0;
    g.interior(f_rho, 7, 7, 7) = 9.0;
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {0.01, 0.01, 0.01}), 7.0);
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {0.99, 0.99, 0.99}), 9.0);
    // Outside the domain: 0.
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, {-1.0, 0.5, 0.5}), 0.0);
}

TEST(Sample, DescendsIntoRefinedRegions) {
    tree t = make_test_tree();
    // A point inside child 3's region must read the level-2 leaf value.
    const node_key fine = key_child(key_child(root_key, 3), 0);
    const auto& g = *t.node(fine).fields;
    const dvec3 p = g.geom.cell_center(2, 2, 2);
    EXPECT_DOUBLE_EQ(io::sample(t, f_rho, p), g.interior(f_rho, 2, 2, 2));
}

TEST(CsvWriters, ProduceWellFormedFiles) {
    tree t = make_test_tree();
    const std::string cells = "/tmp/octo_cells_test.csv";
    io::write_cells_csv(t, cells);
    std::ifstream in(cells);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("x,y,z,level,dx,rho"), std::string::npos);
    std::size_t rows = 0;
    std::string line;
    while (std::getline(in, line)) ++rows;
    EXPECT_EQ(rows, t.leaf_count() * INX3);
    std::remove(cells.c_str());

    const std::string slice = "/tmp/octo_slice_test.csv";
    io::write_slice_csv(t, f_rho, 0.5, 16, slice);
    std::ifstream sin(slice);
    ASSERT_TRUE(sin.good());
    rows = 0;
    while (std::getline(sin, line)) {
        ++rows;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 15);
    }
    EXPECT_EQ(rows, 16u);
    std::remove(slice.c_str());
}

TEST(Checkpoint, RoundTripPreservesEverything) {
    tree t = make_test_tree();
    const std::string path = "/tmp/octo_checkpoint_test.bin";
    io::write_checkpoint(t, path);
    tree r = io::read_checkpoint(path);
    std::remove(path.c_str());

    EXPECT_EQ(r.size(), t.size());
    EXPECT_EQ(r.leaf_count(), t.leaf_count());
    EXPECT_DOUBLE_EQ(r.root_geometry().dx, t.root_geometry().dx);
    for (const auto k : t.leaves_sfc()) {
        ASSERT_TRUE(r.contains(k));
        ASSERT_NE(r.node(k).fields, nullptr);
        const auto& a = *t.node(k).fields;
        const auto& b = *r.node(k).fields;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        ASSERT_EQ(a.interior(f, i, j, kk), b.interior(f, i, j, kk));
                    }
    }
}

TEST(Checkpoint, PreservesAmrHierarchy) {
    // A mixed-depth tree (the paper's restart files are AMR snapshots).
    tree t = make_test_tree();
    const auto leaves_before = t.leaves_sfc();
    const std::string path = "/tmp/octo_checkpoint_amr.bin";
    io::write_checkpoint(t, path);
    tree r = io::read_checkpoint(path);
    std::remove(path.c_str());
    const auto leaves_after = r.leaves_sfc();
    ASSERT_EQ(leaves_after.size(), leaves_before.size());
    for (std::size_t i = 0; i < leaves_before.size(); ++i) {
        EXPECT_EQ(leaves_after[i], leaves_before[i]); // same SFC order
        EXPECT_EQ(key_level(leaves_after[i]), key_level(leaves_before[i]));
    }
    EXPECT_TRUE(r.is_balanced21());
}

TEST(Sample, EveryFieldAddressable) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    for (int f = 0; f < n_fields; ++f) g.interior(f, 1, 2, 3) = 100.0 + f;
    const dvec3 p = g.geom.cell_center(1, 2, 3);
    for (int f = 0; f < n_fields; ++f) {
        EXPECT_DOUBLE_EQ(io::sample(t, f, p), 100.0 + f) << field_name(f);
    }
}

TEST(CsvWriters, SliceSelectsRequestedField) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int kk = 0; kk < INX; ++kk) {
                g.interior(f_egas, i, j, kk) = 42.0;
                g.interior(f_rho, i, j, kk) = 1.0;
            }
    const std::string path = "/tmp/octo_slice_field.csv";
    io::write_slice_csv(t, f_egas, 0.5, 4, path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_NE(line.find("42"), std::string::npos);
    EXPECT_EQ(line.find("1,1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
    const std::string path = "/tmp/octo_checkpoint_bad.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a checkpoint";
    }
    EXPECT_THROW(io::read_checkpoint(path), octo::error);
    std::remove(path.c_str());
    EXPECT_THROW(io::read_checkpoint("/nonexistent/path.bin"), octo::error);
}

} // namespace

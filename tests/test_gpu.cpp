// Tests for the simulated CUDA device: stream pool semantics, the
// kernel→future bridge, the all-streams-busy fallback condition, FLOP
// accounting per execution site (paper §5.1, §6.1), and the GPU work
// aggregation executor (arXiv:2210.06438): fused batches, flush thresholds,
// exactly-once completion, fault-driven CPU fallback, multi-device dispatch,
// and bit-identical aggregated FMM solves.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "amr/tree.hpp"
#include "fmm/solver.hpp"
#include "gpu/aggregator.hpp"
#include "gpu/device.hpp"
#include "runtime/apex.hpp"
#include "runtime/future.hpp"
#include "support/fault.hpp"

namespace {

using namespace octo;

TEST(DeviceSpec, PresetsMatchPaperHardware) {
    const auto p = gpu::p100();
    EXPECT_EQ(p.num_sms, 56u);        // paper §6.1.1: "contains 56 of these SMs"
    EXPECT_EQ(p.max_streams, 128u);   // "usually 128 per GPU"
    EXPECT_EQ(p.blocks_per_kernel, 8u); // "launching kernels with 8 blocks"
    EXPECT_EQ(p.kernel_slots(), 7u);
    const auto v = gpu::v100();
    EXPECT_GT(v.peak_gflops, p.peak_gflops);
    EXPECT_NEAR(p.per_kernel_gflops(), p.peak_gflops * 8.0 / 56.0, 1e-9);
}

TEST(Device, KernelExecutesAndFutureCompletes) {
    gpu::device dev(gpu::p100(), 2);
    auto lease = dev.try_acquire_stream();
    ASSERT_TRUE(lease.has_value());
    std::atomic<int> ran{0};
    auto f = lease->launch([&] { ran = 1; }, 100, kernel_class::fmm_multipole);
    f.get();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(dev.kernels_executed(), 1u);
}

TEST(Device, StreamReleasedAfterCompletion) {
    gpu::device dev(gpu::p100(), 2);
    {
        auto lease = dev.try_acquire_stream();
        ASSERT_TRUE(lease.has_value());
        EXPECT_EQ(dev.streams_in_use(), 1u);
        auto f = lease->launch([] {}, 1, kernel_class::other);
        f.get();
    }
    // After completion the stream count must return to zero (release happens
    // inside the kernel completion, the lease was consumed by launch()).
    for (int spin = 0; spin < 1000 && dev.streams_in_use() != 0; ++spin) {
        std::this_thread::yield();
    }
    EXPECT_EQ(dev.streams_in_use(), 0u);
}

TEST(Device, UnusedLeaseReleasesImmediately) {
    gpu::device dev(gpu::p100(), 1);
    {
        auto lease = dev.try_acquire_stream();
        ASSERT_TRUE(lease.has_value());
        EXPECT_EQ(dev.streams_in_use(), 1u);
    }
    EXPECT_EQ(dev.streams_in_use(), 0u);
}

TEST(Device, AllStreamsBusyYieldsNullopt) {
    // The condition under which Octo-Tiger executes the kernel on the CPU
    // instead (§5.1).
    gpu::device_spec spec = gpu::p100();
    spec.max_streams = 4;
    gpu::device dev(spec, 1);
    std::vector<gpu::stream_lease> held;
    for (unsigned i = 0; i < 4; ++i) {
        auto l = dev.try_acquire_stream();
        ASSERT_TRUE(l.has_value());
        held.push_back(std::move(*l));
    }
    EXPECT_FALSE(dev.try_acquire_stream().has_value());
    held.clear(); // releases
    EXPECT_TRUE(dev.try_acquire_stream().has_value());
}

TEST(Device, FlopAccountingPerSite) {
    flop_reset();
    gpu::device dev(gpu::p100(), 2);
    std::vector<octo::rt::future<void>> fs;
    for (int i = 0; i < 10; ++i) {
        auto lease = dev.try_acquire_stream();
        ASSERT_TRUE(lease.has_value());
        fs.push_back(lease->launch([] {}, 455, kernel_class::fmm_multipole));
    }
    for (auto& f : fs) f.get();
    const auto s = flop_snapshot(kernel_class::fmm_multipole);
    EXPECT_EQ(s.gpu_flops, 4550u);
    EXPECT_EQ(s.gpu_launches, 10u);
    EXPECT_EQ(s.cpu_launches, 0u);
    EXPECT_DOUBLE_EQ(s.gpu_launch_fraction(), 1.0);
}

TEST(Device, ManyConcurrentKernelsAllComplete) {
    gpu::device dev(gpu::p100(), 4);
    std::atomic<int> done{0};
    std::vector<octo::rt::future<void>> fs;
    int cpu_fallbacks = 0;
    for (int i = 0; i < 500; ++i) {
        if (auto lease = dev.try_acquire_stream()) {
            fs.push_back(lease->launch([&] { done.fetch_add(1); }, 1,
                                       kernel_class::other));
        } else {
            // CPU fallback path, as in the paper.
            done.fetch_add(1);
            ++cpu_fallbacks;
        }
    }
    for (auto& f : fs) f.get();
    EXPECT_EQ(done.load(), 500);
    EXPECT_EQ(dev.kernels_executed() + static_cast<unsigned>(cpu_fallbacks), 500u);
}

TEST(Device, InjectedStreamFailureFallsBackToCpu) {
    // Seeded fault injection (ISSUE 5): a transiently failing stream acquire
    // must look exactly like the all-streams-busy condition — nullopt, CPU
    // fallback — and be visible in the APEX counter.
    support::fault_config cfg;
    cfg.seed = 3;
    cfg.gpu_stream_fail_prob = 1.0;
    support::fault_injector inj(cfg);
    gpu::device dev(gpu::p100(), 1);
    const auto before =
        rt::apex_registry::instance().counter("gpu.stream_fallbacks");
    {
        support::scoped_gpu_faults guard(inj);
        EXPECT_FALSE(dev.try_acquire_stream().has_value());
        EXPECT_FALSE(dev.try_acquire_stream().has_value());
    }
    EXPECT_EQ(inj.stats().gpu_stream_failures, 2u);
    EXPECT_EQ(rt::apex_registry::instance().counter("gpu.stream_fallbacks"),
              before + 2);
    EXPECT_EQ(dev.streams_in_use(), 0u); // nothing leaked by the failures
    // With the injector uninstalled the device recovers immediately.
    EXPECT_TRUE(dev.try_acquire_stream().has_value());
}

TEST(Device, ContinuationChainsOffKernel) {
    gpu::device dev(gpu::p100(), 2);
    auto lease = dev.try_acquire_stream();
    ASSERT_TRUE(lease.has_value());
    std::atomic<int> order{0};
    auto f = lease->launch([&] { order = 1; }, 1, kernel_class::other)
                 .then([&](octo::rt::future<void>) { return order.load() + 10; });
    EXPECT_EQ(f.get(), 11);
}

// ---- aggregation executor ---------------------------------------------------

gpu::work_item counting_item(std::atomic<int>& ran, kernel_class kc,
                             std::uint64_t flops = 1) {
    gpu::work_item item;
    item.kc = kc;
    item.flops = flops;
    item.kernel = [&ran](const double*) { ran.fetch_add(1); };
    return item;
}

TEST(Aggregator, SizeThresholdFusesBatchIntoOneLaunch) {
    gpu::device dev(gpu::p100(), 2);
    gpu::aggregator agg(dev, {.max_batch = 8, .flush_after_us = 1e6});
    std::atomic<int> ran{0};
    std::vector<rt::future<void>> fs;
    for (int i = 0; i < 8; ++i) {
        auto f = agg.submit(counting_item(ran, kernel_class::fmm_multipole));
        ASSERT_TRUE(f.has_value());
        fs.push_back(std::move(*f));
    }
    for (auto& f : fs) f.get();
    EXPECT_EQ(ran.load(), 8);
    // The whole batch went up as ONE fused device launch: the flush timeout
    // (1s) cannot have fired, so reaching max_batch is what launched it.
    const auto s = agg.stats();
    EXPECT_EQ(s.submitted, 8u);
    EXPECT_EQ(s.fused_launches + s.cpu_batches, 1u);
    EXPECT_EQ(s.aggregated_items, 8u);
    EXPECT_EQ(s.max_batch_seen, 8u);
    EXPECT_EQ(dev.kernels_executed(), 1u); // one kernel on the device
}

TEST(Aggregator, TimeoutFlushesPartialBatch) {
    gpu::device dev(gpu::p100(), 2);
    gpu::aggregator agg(dev, {.max_batch = 64, .flush_after_us = 200.0});
    std::atomic<int> ran{0};
    auto f = agg.submit(counting_item(ran, kernel_class::fmm_monopole));
    ASSERT_TRUE(f.has_value());
    // Far below the size threshold: only the background flusher can launch
    // this batch. get() must complete without any help from this thread.
    f->get();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(agg.stats().fused_launches + agg.stats().cpu_batches, 1u);
}

TEST(Aggregator, EveryItemCompletesExactlyOnce) {
    gpu::device dev(gpu::p100(), 4);
    // A practically-infinite flush age keeps the background flusher out of
    // the picture: under TSan the submitting thread can be slowed enough
    // that a short timeout flushes singleton batches, and max_batch_seen
    // never exceeds 1. With age flushes disabled, every batch fills to
    // max_batch and the explicit drain() below launches the remainder.
    gpu::aggregator agg(dev, {.max_batch = 16, .flush_after_us = 1e7});
    constexpr int n = 500;
    std::vector<std::atomic<int>*> counts;
    std::vector<std::unique_ptr<std::atomic<int>>> storage;
    std::vector<rt::future<void>> fs;
    for (int i = 0; i < n; ++i) {
        storage.push_back(std::make_unique<std::atomic<int>>(0));
        auto* c = storage.back().get();
        gpu::work_item item;
        item.kc = kernel_class::fmm_multipole;
        item.flops = 10;
        item.kernel = [c](const double*) { c->fetch_add(1); };
        auto f = agg.submit(std::move(item));
        ASSERT_TRUE(f.has_value()) << "saturation unexpected at " << i;
        fs.push_back(std::move(*f));
    }
    agg.drain(); // launch the final partial batch (500 = 31*16 + 4)
    // Each future becomes ready exactly when ITS item ran; each item exactly
    // once.
    for (int i = 0; i < n; ++i) {
        fs[static_cast<std::size_t>(i)].get();
        EXPECT_EQ(storage[static_cast<std::size_t>(i)]->load(), 1) << i;
    }
    const auto s = agg.stats();
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(n));
    EXPECT_EQ(s.aggregated_items, static_cast<std::uint64_t>(n));
    // 500 submissions with size-triggered flushes only: the full batches are
    // deterministic regardless of thread timing.
    EXPECT_EQ(s.max_batch_seen, 16u);
}

TEST(Aggregator, InjectedStreamFaultRejectsSubmitForCpuFallback) {
    support::fault_config cfg;
    cfg.seed = 3;
    cfg.gpu_stream_fail_prob = 1.0;
    support::fault_injector inj(cfg);
    gpu::device dev(gpu::p100(), 2);
    gpu::aggregator agg(dev, {.max_batch = 4, .flush_after_us = 50.0});
    std::atomic<int> ran{0};
    const auto before =
        rt::apex_registry::instance().counter("gpu.stream_fallbacks");
    {
        support::scoped_gpu_faults guard(inj);
        // Every submission must be rejected — the caller's per-kernel CPU
        // fallback, exactly like a failed try_acquire_stream.
        for (int i = 0; i < 3; ++i) {
            auto f = agg.submit(counting_item(ran, kernel_class::fmm_monopole));
            EXPECT_FALSE(f.has_value());
        }
    }
    EXPECT_EQ(inj.stats().gpu_stream_failures, 3u);
    EXPECT_EQ(rt::apex_registry::instance().counter("gpu.stream_fallbacks"),
              before + 3);
    EXPECT_EQ(agg.stats().rejected, 3u);
    EXPECT_EQ(agg.stats().submitted, 0u);
    EXPECT_EQ(ran.load(), 0); // nothing was enqueued behind the caller's back
    // Injector gone: the same aggregator accepts again.
    auto f = agg.submit(counting_item(ran, kernel_class::fmm_monopole));
    ASSERT_TRUE(f.has_value());
    f->get();
    EXPECT_EQ(ran.load(), 1);
}

TEST(Aggregator, SaturationRejectsForCpuFallback) {
    gpu::device dev(gpu::p100(), 2);
    gpu::aggregator agg(dev, {.max_batch = 4,
                              .flush_after_us = 1e6,
                              .saturation_items = 3});
    // Stall the queue below the size threshold (no flush for 1s) so the
    // in-flight count pins at the saturation bound.
    std::atomic<int> ran{0};
    std::vector<rt::future<void>> fs;
    for (int i = 0; i < 3; ++i) {
        auto f = agg.submit(counting_item(ran, kernel_class::fmm_multipole));
        ASSERT_TRUE(f.has_value());
        fs.push_back(std::move(*f));
    }
    EXPECT_FALSE(
        agg.submit(counting_item(ran, kernel_class::fmm_multipole)).has_value());
    EXPECT_EQ(agg.stats().rejected, 1u);
    agg.flush();
    for (auto& f : fs) f.get();
    EXPECT_EQ(ran.load(), 3);
}

TEST(DeviceGroup, BatchesSpreadAcrossDevices) {
    gpu::device_group group(gpu::p100(), 3, 2);
    gpu::aggregator agg(group, {.max_batch = 4, .flush_after_us = 1e6});
    std::atomic<int> ran{0};
    std::vector<rt::future<void>> fs;
    // 12 full batches; least-loaded + round-robin dispatch must not leave
    // any device idle.
    for (int i = 0; i < 12 * 4; ++i) {
        auto f = agg.submit(counting_item(ran, kernel_class::fmm_multipole));
        ASSERT_TRUE(f.has_value());
        fs.push_back(std::move(*f));
    }
    for (auto& f : fs) f.get();
    EXPECT_EQ(ran.load(), 48);
    std::uint64_t total = 0;
    for (std::size_t d = 0; d < group.size(); ++d) {
        EXPECT_GT(group.at(d).kernels_executed(), 0u) << "device " << d << " idle";
        total += group.at(d).kernels_executed();
    }
    EXPECT_EQ(total, agg.stats().fused_launches);
}

TEST(Aggregator, DrainCompletesEverythingPending) {
    gpu::device dev(gpu::p100(), 2);
    gpu::aggregator agg(dev, {.max_batch = 64, .flush_after_us = 1e6});
    std::atomic<int> ran{0};
    std::vector<rt::future<void>> fs;
    for (int i = 0; i < 10; ++i) {
        auto f = agg.submit(counting_item(ran, kernel_class::hydro));
        ASSERT_TRUE(f.has_value());
        fs.push_back(std::move(*f));
    }
    EXPECT_EQ(ran.load(), 0); // below threshold, timeout far away
    agg.drain();
    EXPECT_EQ(ran.load(), 10);
    for (auto& f : fs) f.get(); // all ready immediately
}

// ---- aggregated FMM solve ---------------------------------------------------

amr::box_geometry unit_root() {
    amr::box_geometry g;
    g.origin = {-0.5, -0.5, -0.5};
    g.dx = 1.0 / amr::INX;
    return g;
}

void fill_blobs(amr::tree& t) {
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < amr::INX; ++i)
            for (int j = 0; j < amr::INX; ++j)
                for (int kk = 0; kk < amr::INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const dvec3 c1{-0.18, 0.02, 0.01};
                    const dvec3 c2{0.22, -0.03, -0.02};
                    const double rho = std::exp(-norm2(r - c1) / 0.01) +
                                       0.3 * std::exp(-norm2(r - c2) / 0.006);
                    g.interior(amr::f_rho, i, j, kk) = rho;
                }
    }
}

TEST(Aggregator, AggregatedFmmSolveBitIdenticalToScalarCpu) {
    // The executor's kernels are the scalar double kernel templates — the
    // same code the scalar CPU path runs, in the same per-node order — so
    // the aggregated solve must be BIT-identical to the scalar CPU solve
    // (not merely close): EXPECT_EQ on every output, no tolerance.
    amr::tree t(unit_root());
    t.refine(amr::root_key);
    fill_blobs(t);

    gpu::device_group group(gpu::p100(), 2, 2);
    // The solver leans on the age-flusher for its trailing partial batch, so
    // the age cannot be disabled outright here — but at the 100us default a
    // sanitizer-slowed submit gap flushes every item alone and no fused batch
    // ever forms. 20ms dwarfs any instrumented gap while still bounding the
    // trailing-batch stall.
    gpu::aggregator agg(group, {.max_batch = 8, .flush_after_us = 20000.0});
    fmm::solver gs({.conserve = fmm::am_mode::spin_deposit,
                    .aggregator = &agg});
    gs.solve(t);
    fmm::solver cs({.conserve = fmm::am_mode::spin_deposit,
                    .vectorized = false});
    cs.solve(t);

    for (const auto k : t.leaves_sfc()) {
        const auto& a = gs.gravity(k);
        const auto& b = cs.gravity(k);
        for (int c = 0; c < amr::INX3; ++c) {
            EXPECT_EQ(a.gx[c], b.gx[c]) << "node " << k << " cell " << c;
            EXPECT_EQ(a.gy[c], b.gy[c]);
            EXPECT_EQ(a.gz[c], b.gz[c]);
            EXPECT_EQ(a.phi[c], b.phi[c]);
        }
    }
    // The solve genuinely went through fused launches, spread over devices.
    const auto s = agg.stats();
    EXPECT_GT(s.fused_launches, 0u);
    EXPECT_GT(s.max_batch_seen, 1u);
    EXPECT_EQ(s.rejected, 0u);
    std::uint64_t on_device = 0;
    for (std::size_t d = 0; d < group.size(); ++d) {
        on_device += group.at(d).kernels_executed();
    }
    EXPECT_GT(on_device, 0u);
}

TEST(Aggregator, FmmSolveFallsBackUnderInjectedFaults) {
    // With every stream acquire failing, the solver must complete entirely
    // on the CPU — same results, zero device kernels.
    amr::tree t(unit_root());
    fill_blobs(t);

    support::fault_config cfg;
    cfg.seed = 11;
    cfg.gpu_stream_fail_prob = 1.0;
    support::fault_injector inj(cfg);
    gpu::device dev(gpu::p100(), 2);

    fmm::solver cs({.conserve = fmm::am_mode::spin_deposit,
                    .vectorized = false});
    cs.solve(t);

    fmm::solver gs({.conserve = fmm::am_mode::spin_deposit,
                    .vectorized = false,
                    .device = &dev});
    {
        support::scoped_gpu_faults guard(inj);
        gs.solve(t);
    }
    EXPECT_GT(inj.stats().gpu_stream_failures, 0u);
    EXPECT_EQ(dev.kernels_executed(), 0u);
    const auto& a = gs.gravity(amr::root_key);
    const auto& b = cs.gravity(amr::root_key);
    for (int c = 0; c < amr::INX3; ++c) {
        EXPECT_EQ(a.gx[c], b.gx[c]);
        EXPECT_EQ(a.phi[c], b.phi[c]);
    }
}

} // namespace

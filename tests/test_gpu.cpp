// Tests for the simulated CUDA device: stream pool semantics, the
// kernel→future bridge, the all-streams-busy fallback condition, and FLOP
// accounting per execution site (paper §5.1, §6.1).

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpu/device.hpp"
#include "runtime/apex.hpp"
#include "runtime/future.hpp"
#include "support/fault.hpp"

namespace {

using namespace octo;

TEST(DeviceSpec, PresetsMatchPaperHardware) {
    const auto p = gpu::p100();
    EXPECT_EQ(p.num_sms, 56u);        // paper §6.1.1: "contains 56 of these SMs"
    EXPECT_EQ(p.max_streams, 128u);   // "usually 128 per GPU"
    EXPECT_EQ(p.blocks_per_kernel, 8u); // "launching kernels with 8 blocks"
    EXPECT_EQ(p.kernel_slots(), 7u);
    const auto v = gpu::v100();
    EXPECT_GT(v.peak_gflops, p.peak_gflops);
    EXPECT_NEAR(p.per_kernel_gflops(), p.peak_gflops * 8.0 / 56.0, 1e-9);
}

TEST(Device, KernelExecutesAndFutureCompletes) {
    gpu::device dev(gpu::p100(), 2);
    auto lease = dev.try_acquire_stream();
    ASSERT_TRUE(lease.has_value());
    std::atomic<int> ran{0};
    auto f = lease->launch([&] { ran = 1; }, 100, kernel_class::fmm_multipole);
    f.get();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(dev.kernels_executed(), 1u);
}

TEST(Device, StreamReleasedAfterCompletion) {
    gpu::device dev(gpu::p100(), 2);
    {
        auto lease = dev.try_acquire_stream();
        ASSERT_TRUE(lease.has_value());
        EXPECT_EQ(dev.streams_in_use(), 1u);
        auto f = lease->launch([] {}, 1, kernel_class::other);
        f.get();
    }
    // After completion the stream count must return to zero (release happens
    // inside the kernel completion, the lease was consumed by launch()).
    for (int spin = 0; spin < 1000 && dev.streams_in_use() != 0; ++spin) {
        std::this_thread::yield();
    }
    EXPECT_EQ(dev.streams_in_use(), 0u);
}

TEST(Device, UnusedLeaseReleasesImmediately) {
    gpu::device dev(gpu::p100(), 1);
    {
        auto lease = dev.try_acquire_stream();
        ASSERT_TRUE(lease.has_value());
        EXPECT_EQ(dev.streams_in_use(), 1u);
    }
    EXPECT_EQ(dev.streams_in_use(), 0u);
}

TEST(Device, AllStreamsBusyYieldsNullopt) {
    // The condition under which Octo-Tiger executes the kernel on the CPU
    // instead (§5.1).
    gpu::device_spec spec = gpu::p100();
    spec.max_streams = 4;
    gpu::device dev(spec, 1);
    std::vector<gpu::stream_lease> held;
    for (unsigned i = 0; i < 4; ++i) {
        auto l = dev.try_acquire_stream();
        ASSERT_TRUE(l.has_value());
        held.push_back(std::move(*l));
    }
    EXPECT_FALSE(dev.try_acquire_stream().has_value());
    held.clear(); // releases
    EXPECT_TRUE(dev.try_acquire_stream().has_value());
}

TEST(Device, FlopAccountingPerSite) {
    flop_reset();
    gpu::device dev(gpu::p100(), 2);
    std::vector<octo::rt::future<void>> fs;
    for (int i = 0; i < 10; ++i) {
        auto lease = dev.try_acquire_stream();
        ASSERT_TRUE(lease.has_value());
        fs.push_back(lease->launch([] {}, 455, kernel_class::fmm_multipole));
    }
    for (auto& f : fs) f.get();
    const auto s = flop_snapshot(kernel_class::fmm_multipole);
    EXPECT_EQ(s.gpu_flops, 4550u);
    EXPECT_EQ(s.gpu_launches, 10u);
    EXPECT_EQ(s.cpu_launches, 0u);
    EXPECT_DOUBLE_EQ(s.gpu_launch_fraction(), 1.0);
}

TEST(Device, ManyConcurrentKernelsAllComplete) {
    gpu::device dev(gpu::p100(), 4);
    std::atomic<int> done{0};
    std::vector<octo::rt::future<void>> fs;
    int cpu_fallbacks = 0;
    for (int i = 0; i < 500; ++i) {
        if (auto lease = dev.try_acquire_stream()) {
            fs.push_back(lease->launch([&] { done.fetch_add(1); }, 1,
                                       kernel_class::other));
        } else {
            // CPU fallback path, as in the paper.
            done.fetch_add(1);
            ++cpu_fallbacks;
        }
    }
    for (auto& f : fs) f.get();
    EXPECT_EQ(done.load(), 500);
    EXPECT_EQ(dev.kernels_executed() + static_cast<unsigned>(cpu_fallbacks), 500u);
}

TEST(Device, InjectedStreamFailureFallsBackToCpu) {
    // Seeded fault injection (ISSUE 5): a transiently failing stream acquire
    // must look exactly like the all-streams-busy condition — nullopt, CPU
    // fallback — and be visible in the APEX counter.
    support::fault_config cfg;
    cfg.seed = 3;
    cfg.gpu_stream_fail_prob = 1.0;
    support::fault_injector inj(cfg);
    gpu::device dev(gpu::p100(), 1);
    const auto before =
        rt::apex_registry::instance().counter("gpu.stream_fallbacks");
    {
        support::scoped_gpu_faults guard(inj);
        EXPECT_FALSE(dev.try_acquire_stream().has_value());
        EXPECT_FALSE(dev.try_acquire_stream().has_value());
    }
    EXPECT_EQ(inj.stats().gpu_stream_failures, 2u);
    EXPECT_EQ(rt::apex_registry::instance().counter("gpu.stream_fallbacks"),
              before + 2);
    EXPECT_EQ(dev.streams_in_use(), 0u); // nothing leaked by the failures
    // With the injector uninstalled the device recovers immediately.
    EXPECT_TRUE(dev.try_acquire_stream().has_value());
}

TEST(Device, ContinuationChainsOffKernel) {
    gpu::device dev(gpu::p100(), 2);
    auto lease = dev.try_acquire_stream();
    ASSERT_TRUE(lease.has_value());
    std::atomic<int> order{0};
    auto f = lease->launch([&] { order = 1; }, 1, kernel_class::other)
                 .then([&](octo::rt::future<void>) { return order.load() + 10; });
    EXPECT_EQ(f.get(), 11);
}

} // namespace

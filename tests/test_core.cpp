// Tests for the coupled simulation driver: the Tasker et al. verification
// tests 3 & 4 in the paper's form ("a single star in equilibrium at rest ...
// and a single star in equilibrium in motion", §4.2), the coupled
// machine-precision momentum/angular-momentum conservation (the headline
// claim), regridding, and the GPU-offload equivalence at system level.

#include <gtest/gtest.h>

#include <cmath>

#include "core/scenario.hpp"
#include "core/simulation.hpp"
#include "physics/polytrope.hpp"
#include "io/checkpoint.hpp"
#include "scf/scf.hpp"

#include <cstdio>

namespace {

using namespace octo;
using namespace octo::amr;
using namespace octo::core;

sim_options star_options() {
    sim_options o;
    o.eos = phys::ideal_gas_eos(1.0 + 1.0 / 1.5); // gamma = 5/3 for n = 3/2
    o.bc = boundary_kind::outflow;
    o.self_gravity = true;
    return o;
}

/// A polytrope on a 32^3 grid (depth-2 tree over [-2,2]^3, star radius 1):
/// 8 cells per stellar radius keeps the discrete hydrostatic balance within
/// a few percent over several sound-crossing times.
simulation make_star(const dvec3& velocity) {
    auto t = scf::make_uniform_tree(4.0, 2);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, velocity, 1e-10);
    return simulation(std::move(t), star_options());
}

TEST(Verification, StarInEquilibriumAtRest) {
    // Tasker test 3 (paper's variant): the equilibrium structure should be
    // retained. At 16^3 resolution we require the central density to hold
    // within ~15% and the flow to stay strongly subsonic over several
    // dynamical-time steps.
    auto sim = make_star({0, 0, 0});
    const auto before = sim.diagnostics();
    for (int s = 0; s < 6; ++s) sim.advance();
    const auto after = sim.diagnostics();

    EXPECT_NEAR(after.rho_max, before.rho_max, 0.10 * before.rho_max);
    EXPECT_NEAR(after.hydro.mass, before.hydro.mass,
                before.hydro.mass * 1e-9);
    // Velocities stay small: kinetic energy << |potential|.
    double ekin = 0;
    const auto& t = sim.grid();
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        const double V = g.geom.cell_volume();
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const double rho = g.interior(f_rho, i, j, kk);
                    const dvec3 s{g.interior(f_sx, i, j, kk),
                                  g.interior(f_sy, i, j, kk),
                                  g.interior(f_sz, i, j, kk)};
                    ekin += 0.5 * norm2(s) / rho * V;
                }
    }
    EXPECT_LT(ekin, 0.06 * std::abs(after.e_potential));
}

TEST(Verification, StarInEquilibriumInMotion) {
    // Tasker test 4 (paper's variant): same star, uniform velocity; the
    // center of mass must advect at that velocity and the profile persist.
    const dvec3 v{0.05, 0, 0};
    auto sim = make_star(v);
    const auto before = sim.diagnostics();
    double time = 0;
    for (int s = 0; s < 6; ++s) time += sim.advance();
    const auto after = sim.diagnostics();

    EXPECT_NEAR(after.center_of_mass.x, before.center_of_mass.x + v.x * time,
                0.10 * v.x * time + 1e-8);
    EXPECT_NEAR(after.rho_max, before.rho_max, 0.10 * before.rho_max);
    // Momentum stays at m*v up to the (tiny) atmosphere boundary flux.
    EXPECT_NEAR(after.hydro.momentum.x, before.hydro.momentum.x,
                std::abs(before.hydro.momentum.x) * 1e-7);
}

TEST(Conservation, CoupledGravityHydroLedgerIsExact) {
    // The paper's headline claim at system level: with self-gravity ON,
    // total momentum AND total angular momentum (orbital + spin, including
    // the FMM spin-torque deposits) are conserved to rounding.
    // Domain 8x the blob sizes so the boundary stays numerically quiet over
    // 3 steps; atmosphere at the density floor so residual boundary fluxes
    // are ~1e-14 absolute.
    auto t = scf::make_uniform_tree(8.0, 1);
    // An asymmetric, rotating configuration so nothing is conserved "by
    // symmetry": two unequal off-axis blobs with opposing motion.
    scf::init_single_star(t, 1.0, 0.8, 1.5, {-0.3, 0.1, 0.0}, {0.0, 0.12, 0.0},
                          1e-14);
    // Overlay the second star by adding density manually.
    {
        phys::polytrope star2(0.3, 0.5, 1.5);
        for (const auto k : t.leaves_sfc()) {
            auto& g = *t.node(k).fields;
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const dvec3 r = g.geom.cell_center(i, j, kk);
                        const double add = star2.rho(norm(r - dvec3{0.7, -0.2, 0.1}));
                        if (add > 0) {
                            const double rho0 = g.interior(f_rho, i, j, kk);
                            g.interior(f_rho, i, j, kk) = rho0 + add;
                            // momentum: second star moves the other way
                            g.interior(f_sx, i, j, kk) += add * -0.3;
                        }
                    }
        }
    }
    simulation sim(std::move(t), star_options());
    const auto before = sim.diagnostics();
    for (int s = 0; s < 3; ++s) sim.advance();
    const auto after = sim.diagnostics();

    const double pscale = before.hydro.mass * 0.3;
    EXPECT_LT(norm(after.hydro.momentum - before.hydro.momentum) / pscale, 1e-10);
    const double lscale =
        std::max(norm(before.hydro.angular_momentum), before.hydro.mass * 0.1);
    EXPECT_LT(norm(after.hydro.angular_momentum - before.hydro.angular_momentum) /
                  lscale,
              1e-9);
    EXPECT_NEAR(after.hydro.mass, before.hydro.mass, before.hydro.mass * 1e-10);
}

TEST(Conservation, EnergyBudgetDriftIsSmall) {
    // Total energy (gas + potential) is not machine-exact in this scheme
    // (see DESIGN.md), but must drift only at truncation level.
    auto sim = make_star({0, 0, 0});
    sim.advance();
    const auto e0 = sim.diagnostics();
    for (int s = 0; s < 5; ++s) sim.advance();
    const auto e1 = sim.diagnostics();
    EXPECT_LT(std::abs(e1.e_total - e0.e_total) / std::abs(e0.e_total), 0.05);
}

TEST(Regrid, RefinesDenseRegionsConservatively) {
    auto t = scf::make_uniform_tree(4.0, 1);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0}, 1e-10);
    sim_options o = star_options();
    o.self_gravity = false;
    simulation sim(std::move(t), o);
    const auto before = sim.diagnostics();

    const int refined = sim.regrid(
        [](node_key, const subgrid& g) {
            double rho_max = 0;
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        rho_max = std::max(rho_max, g.interior(f_rho, i, j, kk));
                    }
            return rho_max > 0.5;
        },
        3);
    EXPECT_GT(refined, 0);
    EXPECT_TRUE(sim.grid().is_balanced21());
    EXPECT_GE(sim.grid().max_level(), 2);

    // Conservative prolongation: mass, momentum, L identical to rounding.
    const auto after = sim.diagnostics();
    EXPECT_NEAR(after.hydro.mass, before.hydro.mass, before.hydro.mass * 1e-12);
    EXPECT_LT(norm(after.hydro.angular_momentum - before.hydro.angular_momentum),
              1e-12 + norm(before.hydro.angular_momentum) * 1e-12);

    // And the refined star still evolves stably.
    for (int s = 0; s < 2; ++s) sim.advance();
    EXPECT_GT(sim.diagnostics().rho_max, 0.0);
}

TEST(Regrid, CoarsenIsConservativeAndBalanced) {
    // Refine a star, then coarsen the low-density outskirts back: mass,
    // momentum and angular momentum must be identical to rounding (the
    // restriction carries the spin bookkeeping), and the tree stays
    // 2:1-balanced.
    auto t = scf::make_uniform_tree(4.0, 1);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0.0, 0.07, 0.0}, 1e-10);
    sim_options o = star_options();
    o.self_gravity = false;
    simulation sim(std::move(t), o);

    auto rho_max_of = [](const subgrid& g) {
        double m = 0;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    m = std::max(m, g.interior(f_rho, i, j, kk));
                }
        return m;
    };

    sim.regrid([&](node_key, const subgrid& g) { return rho_max_of(g) > 0.05; }, 3);
    const std::size_t refined_size = sim.grid().size();
    const auto before = sim.diagnostics();

    // Coarsen everything the balance allows (the refined region is the
    // dense center, so a density criterion would keep it; the point here is
    // the conservative restriction).
    const int coarsened =
        sim.coarsen([&](node_key, const subgrid&) { return true; });
    EXPECT_GT(coarsened, 0);
    EXPECT_LT(sim.grid().size(), refined_size);
    EXPECT_TRUE(sim.grid().is_balanced21());

    const auto after = sim.diagnostics();
    EXPECT_NEAR(after.hydro.mass, before.hydro.mass, before.hydro.mass * 1e-12);
    EXPECT_LT(norm(after.hydro.momentum - before.hydro.momentum),
              1e-12 * before.hydro.mass);
    EXPECT_LT(norm(after.hydro.angular_momentum - before.hydro.angular_momentum),
              1e-12 + norm(before.hydro.angular_momentum) * 1e-12);

    // The coarsened grid still advances.
    sim.advance();
    EXPECT_GT(sim.diagnostics().rho_max, 0.0);
}

TEST(Regrid, CoarsenRefusesToBreakBalance) {
    // A deeply refined center: the level-1 parents adjacent to level-2
    // refined regions must NOT coarsen even if the criterion wants them to.
    auto t = scf::make_uniform_tree(4.0, 1);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0}, 1e-10);
    sim_options o = star_options();
    o.self_gravity = false;
    simulation sim(std::move(t), o);
    sim.regrid(
        [](node_key, const subgrid& g) {
            double m = 0;
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        m = std::max(m, g.interior(f_rho, i, j, kk));
                    }
            return m > 0.05;
        },
        3);
    ASSERT_TRUE(sim.grid().is_balanced21());
    // Try to coarsen EVERYTHING: balance safety must keep the invariant.
    sim.coarsen([](node_key, const subgrid&) { return true; });
    EXPECT_TRUE(sim.grid().is_balanced21());
}

TEST(Gpu, SystemLevelOffloadMatchesCpu) {
    auto make = [](gpu::device* dev) {
        auto t = scf::make_uniform_tree(4.0, 1);
        scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0.02, 0, 0}, 1e-10);
        sim_options o = star_options();
        o.device = dev;
        return simulation(std::move(t), o);
    };
    gpu::device dev(gpu::p100(), 2);
    auto gpu_sim = make(&dev);
    auto cpu_sim = make(nullptr);
    for (int s = 0; s < 2; ++s) {
        gpu_sim.advance();
        cpu_sim.advance();
    }
    const auto a = gpu_sim.diagnostics();
    const auto b = cpu_sim.diagnostics();
    EXPECT_NEAR(a.rho_max, b.rho_max, b.rho_max * 1e-12);
    EXPECT_NEAR(a.hydro.egas, b.hydro.egas, std::abs(b.hydro.egas) * 1e-12);
    EXPECT_GT(dev.kernels_executed(), 0u);
}

TEST(Workflow, RestartFileRefinedToHigherResolution) {
    // The paper's scaling methodology (§6.2): "A level 13 restart file ...
    // was used as the basis for all runs. For all levels the restart file
    // for level 13 was read and refined to higher levels of resolution
    // through conservative interpolation of the evolved variables."
    auto t = scf::make_uniform_tree(4.0, 1);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0.02, 0, 0}, 1e-10);
    const std::string path = "/tmp/octo_restart_workflow.bin";
    io::write_checkpoint(t, path);

    // Read the restart file and refine it one level everywhere.
    auto restored = io::read_checkpoint(path);
    std::remove(path.c_str());
    sim_options o = star_options();
    simulation sim(std::move(restored), o);
    const auto before = sim.diagnostics();
    const int refined =
        sim.regrid([](node_key, const subgrid&) { return true; },
                   sim.grid().max_level() + 1);
    EXPECT_GT(refined, 0);
    const auto after = sim.diagnostics();
    // Conservative interpolation: the evolved variables' integrals survive.
    EXPECT_NEAR(after.hydro.mass, before.hydro.mass, before.hydro.mass * 1e-12);
    EXPECT_LT(norm(after.hydro.momentum - before.hydro.momentum),
              1e-12 * before.hydro.mass);
    EXPECT_LT(norm(after.hydro.angular_momentum - before.hydro.angular_momentum),
              1e-12 + norm(before.hydro.angular_momentum) * 1e-12);
    // The refined run advances (the paper's production start).
    EXPECT_GT(sim.advance(), 0.0);
}

TEST(Scenario, V1309ScaledModelAssembles) {
    v1309_config cfg;
    cfg.domain_over_separation = 8.0;
    cfg.base_depth = 1;
    cfg.max_level = 3;
    cfg.scf_iterations = 12;
    sim_options o;
    o.eos = phys::ideal_gas_eos(1.0 + 1.0 / 1.5);
    auto sim = make_v1309(cfg, o);
    const auto d = sim.diagnostics();
    EXPECT_GT(d.hydro.mass, 0.0);
    EXPECT_GT(d.rho_max, 0.1);
    EXPECT_GT(sim.grid().max_level(), 1);      // AMR actually refined
    EXPECT_GT(d.hydro.angular_momentum.z, 0.0); // rotating binary
    // It advances.
    const double dt = sim.advance();
    EXPECT_GT(dt, 0.0);
}

TEST(Scenario, AnalyticDensityHasTwoPeaksAndEnvelope) {
    const double rho1 = v1309_analytic_density({-0.09, 0, 0});
    const double rho2 = v1309_analytic_density({0.91, 0, 0});
    const double mid = v1309_analytic_density({0.4, 0, 0});
    const double far = v1309_analytic_density({40.0, 0, 0});
    EXPECT_GT(rho1, rho2);   // primary denser
    EXPECT_GT(rho2, mid);    // stars denser than envelope
    EXPECT_GT(mid, far);     // envelope denser than atmosphere
    EXPECT_GT(far, 0.0);     // atmosphere fills the domain
}

TEST(Scenario, RefinementThresholdsAreMonotone) {
    for (int finest = 10; finest <= 17; ++finest) {
        for (int l = 1; l < finest; ++l) {
            EXPECT_LE(v1309_refine_threshold(l, finest),
                      v1309_refine_threshold(l + 1, finest))
                << l << " " << finest;
        }
    }
}

} // namespace

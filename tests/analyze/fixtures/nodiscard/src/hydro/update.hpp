namespace octo::hydro {
[[nodiscard]] double step(double dt);
[[nodiscard]] double cfl_timestep();
}

namespace octo::rt {
template <class T> class [[nodiscard]] future {};
template <class R> [[nodiscard]] auto when_all(R&& futures);
}

namespace octo::rt {
class latch {
  public:
    [[nodiscard]] future<void> done_future();
};
}

namespace octo::rt {
template <class T> class channel {
  public:
    [[nodiscard]] future<T> get();
    future<T> recv();
};
}

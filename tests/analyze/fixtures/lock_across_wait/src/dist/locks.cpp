#include <mutex>

namespace octo {

void bad_raii(std::mutex& mu, rt::future<void>& f) {
    std::lock_guard<std::mutex> hold(mu);
    f.get();
}

void bad_manual(spinlock& sl, rt::future<void>& f) {
    sl.lock();
    f.get();
    sl.unlock();
}

void good_release(std::mutex& mu, rt::future<void>& f) {
    std::unique_lock<std::mutex> lk(mu);
    lk.unlock();
    f.get();
}

void good_cv(std::mutex& mu, std::condition_variable& cv) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk);
}

}

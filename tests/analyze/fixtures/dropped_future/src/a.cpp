#include "runtime/future.hpp"

void launches(octo::rt::thread_pool& pool) {
    rt::async(pool, [] {});
    auto f = rt::async(pool, [] {});
    rt::async(pool, [] {}).get();
    rt::detach(rt::async(pool, [] {}));
    (void)f;
}

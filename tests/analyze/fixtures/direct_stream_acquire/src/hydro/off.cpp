void offload() {
    auto s = device::try_acquire_stream();
    (void)s;
}

void solve(cell_list& cells) {
    monopole_kernel<exec::simd<4>>(cells);
}

void instantiate(cell_list& cells) {
    monopole_kernel<exec::scalar>(cells);
}

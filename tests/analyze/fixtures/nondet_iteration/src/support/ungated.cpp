#include <unordered_map>

double total(const std::unordered_map<long, double>& w) {
    double sum = 0.0;
    for (const auto& [k, v] : w) sum += v;
    return sum;
}

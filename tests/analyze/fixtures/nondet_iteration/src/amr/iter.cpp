#include <map>
#include <unordered_map>
#include <vector>

namespace octo::amr {

double total_unordered(const std::unordered_map<long, double>& w) {
    double sum = 0.0;
    for (const auto& [k, v] : w) sum += v;
    return sum;
}

double total_ordered(const std::map<long, double>& w) {
    double sum = 0.0;
    for (const auto& [k, v] : w) sum += v;
    return sum;
}

std::vector<long> sorted_keys(const std::unordered_map<long, double>& w) {
    std::vector<long> out;
    for (const auto& [k, v] : w) out.push_back(k);
    std::sort(out.begin(), out.end());
    return out;
}

void broadcast(std::unordered_map<int, int>& peers, net& n) {
    for (const auto& [rank, tag] : peers) n.send(rank, tag);
}

}

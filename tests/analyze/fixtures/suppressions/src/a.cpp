#include <atomic>

std::atomic<int> a;
std::atomic<int> b;
std::atomic<int> c;

void f() {
    a.store(1, std::memory_order_relaxed);  // lint: allow(relaxed-publish): fixture: torn reads tolerated
    b.store(1, std::memory_order_relaxed);  // lint: allow(relaxed-publish)
    c.store(1, std::memory_order_relaxed);
    // lint: allow(no-such-rule): bogus
}

// lint: allow(dropped-future): nothing here to suppress

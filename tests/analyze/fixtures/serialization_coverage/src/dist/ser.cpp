namespace octo {

struct wire_header {
    int version;
    int flags;
    long body_bytes;
};

void write_header(dist::oarchive& ar, const wire_header& h) {
    ar.write(h.version);
    ar.write(h.body_bytes);
}

struct wire_ack {
    long seq;
    int status;
};

void write_ack(dist::oarchive& ar, const wire_ack& a) {
    ar.write(a.seq);
    ar.write(a.status);
}

unsigned ack_crc(const wire_ack& a) {
    unsigned c = crc32(&a.seq, sizeof(a.seq));
    return crc32(&a.status, sizeof(a.status), c);
}

class wire_secret {
  public:
    int id;

  private:
    int scratch_;
};

void write_secret(dist::oarchive& ar, const wire_secret& s) {
    ar.write(s.id);
}

struct wire_pair {
    int first_half;
    int second_half;
    void save(dist::oarchive& ar) const;
};

void wire_pair::save(dist::oarchive& ar) const {
    ar.write(first_half);
}

}

namespace octo {

struct wire_header {
    int version;
    int flags;
    long body_bytes;
};

void write_header(dist::oarchive& ar, const wire_header& h) {
    ar.write(h.version);
    ar.write(h.body_bytes);
}

struct wire_ack {
    long seq;
    int status;
};

void write_ack(dist::oarchive& ar, const wire_ack& a) {
    ar.write(a.seq);
    ar.write(a.status);
}

unsigned ack_crc(const wire_ack& a) {
    unsigned c = crc32(&a.seq, sizeof(a.seq));
    return crc32(&a.status, sizeof(a.status), c);
}

class wire_secret {
  public:
    int id;

  private:
    int scratch_;
};

void write_secret(dist::oarchive& ar, const wire_secret& s) {
    ar.write(s.id);
}

struct wire_pair {
    int first_half;
    int second_half;
    void save(dist::oarchive& ar) const;
};

void wire_pair::save(dist::oarchive& ar) const {
    ar.write(first_half);
}

struct delta_header {
    double time;
    long steps;
    unsigned base_crc;
    unsigned long nrefined;
    unsigned long ndirty;
};

void put_delta_header(dist::oarchive& ar, const delta_header& h) {
    ar.write(h.time);
    ar.write(h.steps);
    ar.write(h.base_crc);
    ar.write(h.nrefined);
    ar.write(h.ndirty);
}

unsigned delta_header_crc(const delta_header& h) {
    unsigned c = crc32(&h.time, sizeof(h.time));
    c = crc32(&h.steps, sizeof(h.steps), c);
    c = crc32(&h.base_crc, sizeof(h.base_crc), c);
    return crc32(&h.nrefined, sizeof(h.nrefined), c);
}

}

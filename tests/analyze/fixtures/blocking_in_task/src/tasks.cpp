#include "runtime/thread_pool.hpp"

namespace octo {

void schedule(rt::thread_pool& pool, rt::future<double> f,
              std::shared_ptr<double> dt) {
    pool.post([&f] {
        f.get();
    });
    pool.post([dt] {
        double v = *dt.get();
        (void)v;
    });
    auto g = rt::async(pool, [] { return 1.0; });
    g.get();
}

void waits(rt::thread_pool& pool, rt::latch& l) {
    pool.post([&l, &pool] {
        l.wait();
        pool.wait_idle();
    });
}

void continuations(rt::thread_pool& pool, rt::future<int> a) {
    auto tail = a.then(pool, [](auto r) {
        int v = r.get();
        (void)v;
    });
    tail.get();
}

}

void stage(int n) {
    double* w = static_cast<double*>(malloc(sizeof(double) * n));
    (void)w;
}

void build(int n) {
    double* w = static_cast<double*>(malloc(sizeof(double) * n));
    auto* q = new double[16];
    (void)w;
    (void)q;
}

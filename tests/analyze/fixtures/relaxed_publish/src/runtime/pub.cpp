#include <atomic>

std::atomic<int> ready;
std::atomic<long> counter;

void publish() {
    ready.store(1, std::memory_order_relaxed);
}

void count() {
    counter.fetch_add(1, std::memory_order_relaxed);
}

#!/usr/bin/env python3
"""Fixture tests for octo-analyze (tools/analyze).

Each directory under fixtures/ is a miniature repo root whose src/ tree
contains at least one positive and one negative case for a rule. expect.txt
lists the exact findings the analyzer must produce, one per line, as
`relpath:line:rule` — no more, no less, so both missed positives and false
positives on the negatives fail the test.

Usage: run_fixtures.py [fixture-name ...]     exits 1 on any mismatch.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.normpath(
    os.path.join(HERE, os.pardir, os.pardir, "tools", "analyze")))

from analyze import analyze_tree  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures")


def run_case(name):
    root = os.path.join(FIXTURES, name)
    expect_path = os.path.join(root, "expect.txt")
    with open(expect_path, encoding="utf-8") as fh:
        expected = sorted(ln.strip() for ln in fh
                          if ln.strip() and not ln.lstrip().startswith("#"))
    findings, _ = analyze_tree(root)
    got = sorted(f"{rel}:{line}:{rule}" for rel, line, rule, _ in findings)
    if got == expected:
        print(f"  ok   {name} ({len(got)} finding(s))")
        return True
    print(f"  FAIL {name}")
    for missing in sorted(set(expected) - set(got)):
        print(f"       missing:    {missing}")
    for extra in sorted(set(got) - set(expected)):
        print(f"       unexpected: {extra}")
    return False


def main(argv):
    names = argv[1:] or sorted(
        d for d in os.listdir(FIXTURES)
        if os.path.isdir(os.path.join(FIXTURES, d)))
    print(f"analyze fixtures: {len(names)} case(s)")
    failures = [n for n in names if not run_case(n)]
    if failures:
        print(f"\n{len(failures)} fixture(s) failed: " + ", ".join(failures))
        return 1
    print("all fixtures pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

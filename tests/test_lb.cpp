// Cost-driven dynamic load balancing (ISSUE 8): the APEX-fed cost model,
// the weighted incremental SFC re-partitioner with bounded migration, and
// the migration protocol over the exactly-once reliable runtime. The
// acceptance bar mirrors PR 5's: migration over a lossy transport must be
// byte-exact, and a load-balanced run must stay bit-identical to a run that
// never balanced (owner labels are bookkeeping, not numerics).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "amr/cost_model.hpp"
#include "amr/halo.hpp"
#include "amr/partition.hpp"
#include "core/simulation.hpp"
#include "dist/membership.hpp"
#include "dist/migrate.hpp"
#include "io/checkpoint.hpp"
#include "net/faulty.hpp"
#include "net/parcelport.hpp"
#include "runtime/apex.hpp"
#include "scf/scf.hpp"
#include "support/fault.hpp"

namespace {

using namespace octo;
using namespace octo::amr;

// ---- fixtures ---------------------------------------------------------------

core::sim_options rotating_star_options() {
    core::sim_options o;
    o.eos = phys::ideal_gas_eos{5.0 / 3.0};
    o.cfl = 0.4;
    o.self_gravity = true;
    o.omega = {0, 0, 0.2};
    return o;
}

core::simulation make_rotating_star(core::sim_options o) {
    auto t = scf::make_uniform_tree(4.0, 2);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0}, 1e-10);
    return core::simulation(std::move(t), o);
}

tree make_tree(int depth) {
    tree t({{-1, -1, -1}, 2.0});
    std::function<void(node_key, int)> go = [&](node_key k, int d) {
        if (d == 0) return;
        t.refine(k);
        for (int c = 0; c < 8; ++c) go(key_child(k, c), d - 1);
    };
    go(root_key, depth);
    return t;
}

/// Weights with one hot corner: the first `hot` leaves along the curve cost
/// `factor`, the rest cost 1 — the skew a merger's refined core produces.
std::vector<double> skewed_weights(std::size_t n, std::size_t hot, double factor) {
    std::vector<double> w(n, 1.0);
    for (std::size_t i = 0; i < std::min(hot, n); ++i) w[i] = factor;
    return w;
}

support::fault_config lossy(std::uint64_t seed) {
    support::fault_config cfg;
    cfg.seed = seed;
    cfg.drop_prob = 0.10;
    cfg.dup_prob = 0.10;
    cfg.reorder_prob = 0.15;
    cfg.delay_prob = 0.10;
    cfg.corrupt_prob = 0.05;
    return cfg;
}

void expect_valid_partition(const tree& t, int nranks) {
    // Contiguous, non-decreasing ownership along the SFC.
    const auto leaves = t.leaves_sfc();
    int prev = 0;
    for (const node_key k : leaves) {
        const int o = t.node(k).owner;
        ASSERT_GE(o, prev);
        ASSERT_LT(o, nranks);
        prev = o;
    }
    // Interior nodes live with their first child.
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (!t.node(k).refined) continue;
            EXPECT_EQ(t.node(k).owner, t.node(key_child(k, 0)).owner);
        }
    }
}

// ---- cost model -------------------------------------------------------------

TEST(CostModel, EwmaSmoothsASingleSpike) {
    cost_params p;
    p.ewma_alpha = 0.3;
    cost_model m(p);
    const node_key k = key_child(root_key, 3);
    m.observe(k, 1.0);
    EXPECT_DOUBLE_EQ(m.weight(k), 1.0);
    m.observe(k, 2.0); // transient 2x spike
    // Moves only alpha of the way: 0.7*1.0 + 0.3*2.0.
    EXPECT_DOUBLE_EQ(m.weight(k), 1.3);
    EXPECT_LT(m.weight(k), 1.5);
}

TEST(CostModel, UnseenLeavesReportTheObservedMean) {
    cost_model m;
    EXPECT_DOUBLE_EQ(m.weight(42), 1.0); // nothing observed yet
    m.observe(1, 2.0);
    m.observe(2, 4.0);
    EXPECT_DOUBLE_EQ(m.weight(42), 3.0);
    EXPECT_EQ(m.observed(), 2u);
}

TEST(CostModel, MultipoleWorkIsChargedToTheFirstDescendantLeaf) {
    auto t = make_tree(1);             // root + 8 leaves
    t.refine(key_child(root_key, 0));  // deepen the first corner
    partition_sfc(t, 2);

    cost_model m;
    m.observe_step(t, partition_accounting(t, 2));
    const auto w = m.leaf_weights(t);
    const auto leaves = t.leaves_sfc();
    // The first leaf on the curve carries root's AND its parent's multipole
    // cost; the last leaf carries none.
    EXPECT_EQ(leaves.front(), first_descendant_leaf(t, root_key));
    EXPECT_GT(w.front(), w.back());
}

// ---- weighted + incremental partitioning ------------------------------------

TEST(Rebalance, BoundedMigrationPerRoundAndConvergence) {
    auto t = make_tree(2); // 64 leaves
    const int nranks = 8;
    partition_sfc(t, nranks);
    const auto leaves = t.leaves_sfc();
    const auto w = skewed_weights(leaves.size(), 8, 8.0);

    const auto initial = partition_accounting(t, nranks, &w);
    const double before = initial.imbalance_pct();
    double final_imb = before;
    for (int round = 0; round < 30; ++round) {
        const auto res = rebalance_sfc(t, nranks, w, {.max_migration_fraction = 0.10});
        EXPECT_LE(res.migration_fraction, 0.10 + 1e-12) << "round " << round;
        // Intermediate states may wobble (a rank can transiently pick up
        // load while its other boundary catches up), but no round may exceed
        // the original hot-rank cost.
        EXPECT_LE(res.max_cost_after, initial.max_cost() + 1e-9)
            << "round " << round;
        expect_valid_partition(t, nranks);
        final_imb = res.stats.imbalance_pct();
        if (res.migrations.empty()) break;
    }
    // Converged well below the static-split imbalance.
    EXPECT_LT(final_imb, before / 2);
    // And the converged split matches the from-scratch weighted split.
    auto t2 = make_tree(2);
    const auto direct = partition_sfc_weighted(t2, nranks, w);
    EXPECT_NEAR(final_imb, direct.imbalance_pct(), 1e-9);
}

TEST(Rebalance, FirstRoundIsBudgetLimitedUnderHeavySkew) {
    auto t = make_tree(2);
    partition_sfc(t, 8);
    const auto w = skewed_weights(t.leaf_count(), 8, 16.0);
    const auto res = rebalance_sfc(t, 8, w, {.max_migration_fraction = 0.05});
    EXPECT_TRUE(res.budget_limited);
    EXPECT_GT(res.migrations.size(), 0u);
    EXPECT_LE(res.migration_fraction, 0.05 + 1e-12);
    EXPECT_FALSE(res.touched_ranks.empty());
}

TEST(Rebalance, NoOpWhenAlreadyBalanced) {
    auto t = make_tree(2);
    const int nranks = 4;
    partition_sfc(t, nranks);
    const std::vector<double> w(t.leaf_count(), 1.0);
    const auto res = rebalance_sfc(t, nranks, w);
    EXPECT_TRUE(res.migrations.empty());
    EXPECT_DOUBLE_EQ(res.migration_fraction, 0.0);
    EXPECT_TRUE(res.touched_ranks.empty());
}

TEST(Rebalance, StructureRevisionAndGhostPlansSurvive) {
    auto t = make_tree(2);
    partition_sfc(t, 4);
    for (const node_key k : t.leaves_sfc()) t.ensure_fields(k);

    // Prime the ghost-plan cache (this may allocate parent storage, which
    // legitimately bumps the structure revision), then rebalance and
    // re-acquire: migration must not rebuild the plan (it is keyed on
    // STRUCTURE, not owners).
    const auto& plan_before = acquire_ghost_plan(t, boundary_kind::outflow);
    const auto rev = t.revision();
    const auto prev = t.partition_revision();
    const auto rebuilds =
        rt::apex_registry::instance().counter("amr.halo_plan_rebuilds");
    const auto res =
        rebalance_sfc(t, 4, skewed_weights(t.leaf_count(), 16, 4.0));
    EXPECT_GT(res.migrations.size(), 0u);
    const auto& plan_after = acquire_ghost_plan(t, boundary_kind::outflow);

    EXPECT_EQ(t.revision(), rev);
    EXPECT_GT(t.partition_revision(), prev);
    EXPECT_EQ(&plan_before, &plan_after);
    EXPECT_EQ(rt::apex_registry::instance().counter("amr.halo_plan_rebuilds"),
              rebuilds);
}

// ---- migration protocol over the reliable runtime ---------------------------

TEST(Migration, SerializationRoundTripIsByteExact) {
    subgrid sg;
    sg.geom = {{0.25, -1.5, 3.0}, 0.125};
    for (int f = 0; f < n_fields; ++f) {
        double* p = sg.field_data(f);
        for (int i = 0; i < NX3; ++i) {
            p[i] = f * 1e3 + i * 0x1.000001p-3; // not-round values
        }
    }
    dist::oarchive ar;
    dist::serialize_subgrid(ar, 0x1234, sg);
    const auto buf = ar.take();
    dist::iarchive in(buf);
    auto [key, got] = dist::deserialize_subgrid(in);
    EXPECT_EQ(key, 0x1234u);
    EXPECT_EQ(got.geom.origin.x, sg.geom.origin.x);
    EXPECT_EQ(got.geom.dx, sg.geom.dx);
    EXPECT_EQ(std::memcmp(got.field_data(0), sg.field_data(0),
                          static_cast<std::size_t>(n_fields) * NX3 *
                              sizeof(double)),
              0);
}

TEST(Migration, ExactlyOnceOverALossyTransport) {
    // Drive a real rebalance schedule through the fault-injected reliable
    // runtime: every migrated subgrid must arrive exactly once, byte-exact,
    // and the stores must mirror the new owner assignment.
    auto o = rotating_star_options();
    o.lb.ranks = 4;
    o.lb.every_steps = 1;
    auto sim = make_rotating_star(o);

    dist::runtime rt(4, net::make_faulty_port(net::make_mpi_port(), lossy(77)));
    dist::subgrid_migrator mig(rt);

    // Seed the stores from the initial partition.
    auto& t = sim.grid();
    for (const node_key k : t.leaves_sfc()) {
        mig.put(t.node(k).owner, k, *t.node(k).fields);
    }

    std::size_t total_migrated = 0;
    for (int s = 0; s < 3; ++s) {
        sim.advance();
        // Mirror the sim's post-step fields into the PRE-rebalance owners'
        // stores (the solve updated every subgrid in place on its old
        // owner), then execute the migration schedule the rebalance
        // produced.
        const auto& res = sim.last_rebalance();
        std::map<node_key, int> moved;
        for (const auto& m : res.migrations) moved[m.key] = m.from;
        for (const node_key k : t.leaves_sfc()) {
            const auto it = moved.find(k);
            const int pre = it != moved.end() ? it->second : t.node(k).owner;
            mig.put(pre, k, *t.node(k).fields);
        }
        mig.migrate(res.migrations);
        total_migrated += res.migrations.size();
        ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
        ASSERT_EQ(rt.take_errors(), std::vector<std::string>{});
        EXPECT_LE(res.migration_fraction, o.lb.max_migration_fraction + 1e-12);
    }
    EXPECT_GT(total_migrated, 0u);

    // Every leaf now sits in exactly the store its post-rebalance owner
    // mandates, and migrated payloads are byte-exact.
    std::size_t checked = 0;
    for (const node_key k : t.leaves_sfc()) {
        const int own = t.node(k).owner;
        ASSERT_TRUE(mig.contains(own, k)) << "leaf missing from owner store";
        for (int r = 0; r < 4; ++r) {
            if (r != own) {
                EXPECT_FALSE(mig.contains(r, k));
            }
        }
        subgrid got;
        ASSERT_TRUE(mig.get(own, k, got));
        if (std::memcmp(got.field_data(0), t.node(k).fields->field_data(0),
                        static_cast<std::size_t>(n_fields) * NX3 *
                            sizeof(double)) == 0) {
            ++checked;
        }
    }
    EXPECT_EQ(checked, t.leaf_count());

    const auto ms = mig.stats();
    EXPECT_EQ(ms.subgrids_sent, ms.subgrids_received);
    EXPECT_GT(ms.bytes_sent, 0u);

    // The transport was genuinely lossy.
    auto* fp = dynamic_cast<net::faulty_parcelport*>(&rt.port());
    ASSERT_NE(fp, nullptr);
    const auto fs = fp->injector().stats();
    EXPECT_GT(fs.drops + fs.dups + fs.reorders + fs.delays + fs.corruptions, 0u);
}

// ---- bit identity -----------------------------------------------------------

std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(Migration, BalancedRunIsBitIdenticalToUnbalancedRun) {
    // The ISSUE's acceptance bar: enable aggressive per-step rebalancing in
    // one run, none in the other — the checkpoints must match byte for byte.
    auto balanced_opts = rotating_star_options();
    balanced_opts.lb.ranks = 6;
    balanced_opts.lb.every_steps = 1;
    balanced_opts.lb.max_migration_fraction = 0.25;
    auto a = make_rotating_star(balanced_opts);
    auto b = make_rotating_star(rotating_star_options()); // never balanced

    a.set_checkpoint_policy({.every_steps = 3, .path_prefix = "/tmp/octo_lb_a"});
    b.set_checkpoint_policy({.every_steps = 3, .path_prefix = "/tmp/octo_lb_b"});
    for (int s = 0; s < 3; ++s) {
        a.advance();
        b.advance();
    }
    ASSERT_GT(a.rebalance_count(), 0);
    ASSERT_GT(a.last_rebalance().leaf_count, 0u);

    const auto ca = slurp(a.last_checkpoint());
    const auto cb = slurp(b.last_checkpoint());
    ASSERT_FALSE(ca.empty());
    ASSERT_EQ(ca.size(), cb.size());
    EXPECT_EQ(std::memcmp(ca.data(), cb.data(), ca.size()), 0)
        << "load balancing perturbed the physics";

    // And the balanced run kept a valid partition throughout.
    expect_valid_partition(a.grid(), 6);
}

// ---- elastic recovery: live-rank partitioning + node death (ISSUE 10) -------

TEST(Recovery, LiveRankPartitionUsesOnlySurvivors) {
    auto t = make_tree(2);
    const std::vector<int> live{0, 2, 3}; // rank 1 died
    const std::vector<double> w(t.leaf_count(), 1.0);
    const auto st = partition_sfc_weighted(t, live, w);
    ASSERT_EQ(st.leaves_per_rank.size(), live.size()); // dense rows
    for (const std::size_t n : st.leaves_per_rank) EXPECT_GT(n, 0u);
    std::vector<int> owners;
    for (const node_key k : t.leaves_sfc()) {
        const int o = t.node(k).owner;
        EXPECT_TRUE(std::binary_search(live.begin(), live.end(), o)) << o;
        if (owners.empty() || owners.back() != o) owners.push_back(o);
    }
    EXPECT_EQ(owners, live); // contiguous along the curve, in live order
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (!t.node(k).refined) continue;
            EXPECT_EQ(t.node(k).owner, t.node(key_child(k, 0)).owner);
        }
    }

    // The bounded rebalance restricted to the live set keeps every owner,
    // migration endpoint and touched rank inside it.
    const auto res =
        rebalance_sfc(t, live, skewed_weights(t.leaf_count(), 8, 8.0));
    EXPECT_GT(res.migrations.size(), 0u);
    for (const auto& m : res.migrations) {
        EXPECT_TRUE(std::binary_search(live.begin(), live.end(), m.from));
        EXPECT_TRUE(std::binary_search(live.begin(), live.end(), m.to));
    }
    for (const int r : res.touched_ranks) {
        EXPECT_TRUE(std::binary_search(live.begin(), live.end(), r));
    }
    // The degenerate "everyone is alive" spelling matches the int overload.
    auto t2 = make_tree(2);
    const auto all = partition_sfc_weighted(t2, {0, 1, 2}, w);
    auto t3 = make_tree(2);
    const auto dense = partition_sfc_weighted(t3, 3, w);
    EXPECT_EQ(all.leaves_per_rank, dense.leaves_per_rank);
}

TEST(Recovery, RepartitionOntoReschedulesTheDeadRanksLeaves) {
    auto t = make_tree(2);
    partition_sfc(t, 4);
    std::size_t dead_leaves = 0;
    for (const node_key k : t.leaves_sfc()) {
        if (t.node(k).owner == 1) ++dead_leaves;
    }
    ASSERT_GT(dead_leaves, 0u);
    const std::vector<double> w(t.leaf_count(), 1.0);
    const auto rp = repartition_onto(t, {0, 2, 3}, w);
    // Every leaf the dead rank held appears in the schedule (those are the
    // ones recovery reloads from the checkpoint chain), and nothing is
    // assigned back to it.
    std::size_t from_dead = 0;
    for (const auto& m : rp.migrations) {
        EXPECT_NE(m.to, 1);
        if (m.from == 1) ++from_dead;
    }
    EXPECT_EQ(from_dead, dead_leaves);
    for (const node_key k : t.leaves_sfc()) EXPECT_NE(t.node(k).owner, 1);
    EXPECT_EQ(rp.stats.leaves_per_rank.size(), 3u);
}

TEST(Recovery, MigrateThenKillTheNewOwnerRecoversByteIdentical) {
    // The combined scenario: a subgrid migrates to a new owner, THEN that
    // owner dies. The migrated subgrid is lost with the rank and must come
    // back from the checkpoint chain; the post-recovery checkpoints must be
    // byte-identical to a never-killed baseline restarted from the same
    // chain. Swept over three seeds (shifted by OCTO_FAULT_SEED in CI).
    auto& reg = rt::apex_registry::instance();
    for (const std::uint64_t base : {5u, 13u, 21u}) {
        std::uint64_t seed = base;
        if (const char* env = std::getenv("OCTO_FAULT_SEED")) {
            seed += std::strtoull(env, nullptr, 10);
        }
        auto opt = rotating_star_options();
        opt.lb.ranks = 4;
        opt.lb.every_steps = 1;
        opt.lb.max_migration_fraction = 0.25;

        const std::string prefix = "/tmp/octo_rec_" + std::to_string(base);
        const core::checkpoint_policy policy{
            .every_steps = 1, .path_prefix = prefix, .full_every = 2};
        const auto delta_bytes0 = reg.counter("io.delta_checkpoint_bytes");

        dist::runtime rt(4, net::make_mpi_port());
        dist::subgrid_migrator mig(rt);
        auto b = make_rotating_star(opt);
        auto p = policy;
        b.set_checkpoint_policy(p);
        auto& t = b.grid();
        for (const node_key k : t.leaves_sfc()) {
            mig.put(t.node(k).owner, k, *t.node(k).fields);
        }

        // Two steps with live migration: mirror post-step fields into the
        // pre-rebalance owners' stores, then execute the schedule.
        std::vector<migration_record> candidates;
        for (int s = 0; s < 2; ++s) {
            b.advance();
            const auto& res = b.last_rebalance();
            std::map<node_key, int> moved;
            for (const auto& m : res.migrations) moved[m.key] = m.from;
            for (const node_key k : t.leaves_sfc()) {
                const auto it = moved.find(k);
                const int pre =
                    it != moved.end() ? it->second : t.node(k).owner;
                mig.put(pre, k, *t.node(k).fields);
            }
            mig.migrate(res.migrations);
            ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
            for (const auto& m : res.migrations) {
                if (m.to != 0) candidates.push_back(m); // 0 hosts the monitor
            }
        }
        ASSERT_FALSE(candidates.empty()) << "seed " << seed;
        const auto chosen =
            candidates[static_cast<std::size_t>(seed) % candidates.size()];
        const int victim = chosen.to;
        ASSERT_TRUE(mig.contains(victim, chosen.key));
        EXPECT_GT(reg.counter("io.delta_checkpoint_bytes"), delta_bytes0);

        // Kill the new owner; the membership probe declares it dead.
        rt.kill(victim);
        dist::membership mem(
            rt, {.death_timeout = std::chrono::milliseconds(50)});
        ASSERT_EQ(mem.probe(), std::vector<int>{victim}) << "seed " << seed;
        const auto errors = rt.take_errors();
        ASSERT_EQ(errors.size(), 1u);
        EXPECT_NE(errors[0].find("peer_death"), std::string::npos);

        // Recover onto the survivors and assert the APEX trail.
        const auto recoveries0 = reg.counter("lb.recoveries");
        const auto chain = b.checkpoint_chain();
        ASSERT_EQ(chain.size(), 2u); // {step-1 full, step-2 delta}
        mig.drop_rank(victim);
        auto r = core::simulation::recover(chain, opt, rt.live_ranks());
        EXPECT_GT(mig.reload(r.grid()), 0u);
        rt.reassign_owned(victim, rt.live_ranks().front());
        EXPECT_EQ(reg.counter("lb.recoveries"), recoveries0 + 1);
        EXPECT_GT(reg.counter("sim.time_to_recover_us"), 0u);

        // The once-migrated-then-lost subgrid is back, on a live rank.
        ASSERT_TRUE(r.grid().contains(chosen.key));
        const int new_owner = r.grid().node(chosen.key).owner;
        EXPECT_NE(new_owner, victim);
        EXPECT_TRUE(mig.contains(new_owner, chosen.key));

        // Byte-identity vs the never-killed baseline from the same chain.
        p.path_prefix = prefix + "_r";
        r.set_checkpoint_policy(p);
        while (r.step_count() < 4) r.advance();
        auto ref = core::simulation::restart_chain(chain, opt);
        p.path_prefix = prefix + "_ref";
        ref.set_checkpoint_policy(p);
        while (ref.step_count() < 4) ref.advance();
        const auto& cr = r.checkpoint_chain();
        const auto& cref = ref.checkpoint_chain();
        ASSERT_EQ(cr.size(), cref.size());
        for (std::size_t i = 0; i < cr.size(); ++i) {
            const auto ba = slurp(cr[i]);
            const auto bb = slurp(cref[i]);
            ASSERT_FALSE(ba.empty());
            ASSERT_EQ(ba.size(), bb.size());
            EXPECT_EQ(std::memcmp(ba.data(), bb.data(), ba.size()), 0)
                << "seed " << seed << " chain element " << i
                << " diverged after recovery";
        }
        ASSERT_TRUE(rt.wait_quiet_for(std::chrono::seconds(60)));
        EXPECT_EQ(rt.error_count(), 0u);
        for (int s = 1; s <= 4; ++s) {
            for (const std::string& pre :
                 {prefix, prefix + "_r", prefix + "_ref"}) {
                std::remove((pre + "." + std::to_string(s) + ".ckpt").c_str());
                std::remove(
                    (pre + "." + std::to_string(s) + ".dckpt").c_str());
            }
        }
    }
}

} // namespace

// Tests for the Self-Consistent Field initial models: single-star sampling
// against the Lane–Emden profile, and the Hachisu binary iteration —
// convergence, Kepler-consistent orbital frequency, and the field/passive
// scalar assembly the merger scenario relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/halo.hpp"
#include "hydro/update.hpp"
#include "physics/polytrope.hpp"
#include "scf/scf.hpp"

namespace {

using namespace octo;
using namespace octo::amr;

TEST(UniformTree, DepthAndCoverage) {
    auto t = scf::make_uniform_tree(2.0, 2);
    EXPECT_EQ(t.max_level(), 2);
    EXPECT_EQ(t.leaf_count(), 64u);
    const auto g = t.root_geometry();
    EXPECT_DOUBLE_EQ(g.origin.x, -1.0);
    EXPECT_DOUBLE_EQ(g.dx * INX, 2.0);
    for (const auto k : t.leaves_sfc()) {
        EXPECT_NE(t.node(k).fields, nullptr);
    }
}

TEST(SingleStar, MatchesLaneEmdenProfile) {
    auto t = scf::make_uniform_tree(4.0, 2); // 32^3 cells over [-2,2]^3
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0});
    const phys::polytrope star(1.0, 1.0, 1.5);

    // Total mass within ~2% (cartesian sampling of the profile).
    const auto totals = hydro::compute_totals(t);
    EXPECT_NEAR(totals.mass, 1.0, 0.05);

    // Density at sampled radii matches the polytrope.
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; i += 3)
            for (int j = 0; j < INX; j += 3)
                for (int kk = 0; kk < INX; kk += 3) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const double expect = std::max(star.rho(norm(r)), 1e-10);
                    EXPECT_NEAR(g.interior(f_rho, i, j, kk), expect,
                                1e-12 + expect * 1e-12);
                }
    }
}

TEST(SingleStar, UniformVelocityCarriesMomentum) {
    auto t = scf::make_uniform_tree(4.0, 1);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0.3, 0, 0});
    const auto totals = hydro::compute_totals(t);
    EXPECT_NEAR(totals.momentum.x, 0.3 * totals.mass, 1e-10);
    EXPECT_NEAR(totals.momentum.y, 0.0, 1e-12);
}

TEST(SingleStar, PressureConsistentInternalEnergy) {
    auto t = scf::make_uniform_tree(4.0, 1);
    scf::init_single_star(t, 1.0, 1.0, 1.5, {0, 0, 0}, {0, 0, 0});
    const phys::polytrope star(1.0, 1.0, 1.5);
    const double gamma = 1.0 + 1.0 / 1.5;
    // Central cell: internal energy = p/(gamma-1).
    double best = 1e30;
    double internal_at_center = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const double d = norm(g.geom.cell_center(i, j, kk));
                    if (d < best) {
                        best = d;
                        internal_at_center = g.interior(f_egas, i, j, kk);
                    }
                }
    }
    const double p_center = star.pressure(best);
    EXPECT_NEAR(internal_at_center, p_center / (gamma - 1.0),
                0.2 * internal_at_center);
}

class BinaryScf : public ::testing::Test {
  protected:
    static const scf::binary_model& model() {
        static auto t = scf::make_uniform_tree(1.0, 2);
        static scf::binary_params params = [] {
            scf::binary_params p; // defaults are tuned for a depth-2 grid
            p.max_iterations = 30;
            return p;
        }();
        static scf::binary_model m = scf::solve_binary(t, params);
        tree_ = &t;
        return m;
    }
    static amr::tree* tree_;
};
amr::tree* BinaryScf::tree_ = nullptr;

TEST_F(BinaryScf, ProducesTwoBoundStars) {
    const auto& m = model();
    EXPECT_GT(m.mass1, 0.0);
    EXPECT_GT(m.mass2, 0.0);
    EXPECT_GT(m.mass1, m.mass2); // primary heavier
    EXPECT_GT(m.omega, 0.0);
    EXPECT_GT(m.iterations, 3);
}

TEST_F(BinaryScf, OmegaIsRoughlyKeplerian) {
    const auto& m = model();
    const double a = norm(m.com2 - m.com1);
    ASSERT_GT(a, 0.0);
    const double kepler = std::sqrt((m.mass1 + m.mass2) / (a * a * a));
    // The SCF frequency of an extended contact system deviates from the
    // point-mass value, but must be the same order and within ~40%.
    EXPECT_NEAR(m.omega / kepler, 1.0, 0.4);
}

TEST_F(BinaryScf, PassiveScalarsPartitionTheDensity) {
    model();
    for (const auto k : tree_->leaves_sfc()) {
        const auto& g = *tree_->node(k).fields;
        for (int i = 0; i < INX; i += 2)
            for (int j = 0; j < INX; j += 2)
                for (int kk = 0; kk < INX; kk += 2) {
                    double sum = 0;
                    for (int s = 0; s < n_passive; ++s) {
                        const double f = g.interior(first_passive + s, i, j, kk);
                        EXPECT_GE(f, 0.0);
                        sum += f;
                    }
                    EXPECT_NEAR(sum, g.interior(f_rho, i, j, kk),
                                g.interior(f_rho, i, j, kk) * 1e-10);
                }
    }
}

TEST_F(BinaryScf, SynchronousRotationVelocityField) {
    const auto& m = model();
    // v = omega x r: check a dense cell of the primary.
    for (const auto k : tree_->leaves_sfc()) {
        const auto& g = *tree_->node(k).fields;
        for (int i = 0; i < INX; i += 2)
            for (int j = 0; j < INX; j += 2)
                for (int kk = 0; kk < INX; kk += 2) {
                    const double rho = g.interior(f_rho, i, j, kk);
                    if (rho < 0.1) continue;
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const dvec3 v_expect = m.omega * cross(dvec3{0, 0, 1}, r);
                    EXPECT_NEAR(g.interior(f_sx, i, j, kk), rho * v_expect.x,
                                std::abs(rho * v_expect.x) * 1e-10 + 1e-14);
                    EXPECT_NEAR(g.interior(f_sy, i, j, kk), rho * v_expect.y,
                                std::abs(rho * v_expect.y) * 1e-10 + 1e-14);
                }
    }
}

TEST_F(BinaryScf, DarwinLikeSpinOrbitBudget) {
    // Paper §3: V1309 is set up so spin angular momentum is near one third
    // of the orbital angular momentum (Darwin instability threshold). Our
    // scaled model is not tuned to that exact ratio, but spin (about each
    // star's center) must be a minor fraction of the orbital budget.
    const auto& m = model();
    // Orbital L of the two-point-mass analogue about the COM.
    const dvec3 com = (m.mass1 * m.com1 + m.mass2 * m.com2) / (m.mass1 + m.mass2);
    const double a1 = norm(m.com1 - com), a2 = norm(m.com2 - com);
    const double Lorb = m.omega * (m.mass1 * a1 * a1 + m.mass2 * a2 * a2);
    EXPECT_GT(Lorb, 0.0);
    // Total L of the model from the fields.
    const auto totals = hydro::compute_totals(*tree_);
    EXPECT_GT(totals.angular_momentum.z, Lorb * 0.5);
}

} // namespace

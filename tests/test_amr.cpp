// Tests for the AMR layer: key algebra, octree refinement and 2:1 balance,
// conservative restriction/prolongation (including the angular-momentum
// bookkeeping), ghost fills across same-level / coarse-fine / physical
// boundaries, and the SFC partitioner.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "amr/config.hpp"
#include "amr/halo.hpp"
#include "amr/partition.hpp"
#include "amr/prolong.hpp"
#include "amr/subgrid.hpp"
#include "amr/tree.hpp"
#include "support/rng.hpp"

namespace {

using namespace octo;
using namespace octo::amr;

box_geometry unit_root() {
    box_geometry g;
    g.origin = {0, 0, 0};
    g.dx = 1.0 / INX; // root covers the unit cube
    return g;
}

// ---- key algebra -----------------------------------------------------------

TEST(Keys, RootProperties) {
    EXPECT_EQ(key_level(root_key), 0);
    EXPECT_EQ(key_coords(root_key), (ivec3{0, 0, 0}));
}

TEST(Keys, ChildParentRoundTrip) {
    for (int c = 0; c < 8; ++c) {
        const node_key ck = key_child(root_key, c);
        EXPECT_EQ(key_level(ck), 1);
        EXPECT_EQ(key_parent(ck), root_key);
        EXPECT_EQ(key_octant(ck), c);
    }
}

TEST(Keys, CoordsRoundTrip) {
    for (int level = 0; level <= 4; ++level) {
        xoshiro256 rng(static_cast<std::uint64_t>(level) + 1);
        for (int t = 0; t < 50; ++t) {
            const int e = 1 << level;
            const ivec3 c{static_cast<int>(rng.below(e)), static_cast<int>(rng.below(e)),
                          static_cast<int>(rng.below(e))};
            const node_key k = key_from_coords(level, c);
            EXPECT_EQ(key_level(k), level);
            EXPECT_EQ(key_coords(k), c);
        }
    }
}

TEST(Keys, NeighborOffsets) {
    const node_key k = key_from_coords(2, {1, 2, 3});
    EXPECT_EQ(key_coords(key_neighbor(k, {1, 0, 0})), (ivec3{2, 2, 3}));
    EXPECT_EQ(key_coords(key_neighbor(k, {-1, -1, -1})), (ivec3{0, 1, 2}));
    EXPECT_EQ(key_neighbor(k, {-2, 0, 0}), invalid_key);  // x = -1
    EXPECT_EQ(key_neighbor(k, {3, 0, 0}), invalid_key);   // x = 4 at level 2
}

TEST(Keys, SfcOrderNests) {
    // A parent's SFC position lower-bounds all its descendants.
    const node_key p = key_from_coords(1, {1, 0, 1});
    for (int c = 0; c < 8; ++c) {
        EXPECT_GE(key_sfc_order(key_child(p, c), 3), key_sfc_order(p, 3));
        EXPECT_LT(key_sfc_order(key_child(p, c), 3),
                  key_sfc_order(p, 3) + (node_key{1} << 6));
    }
}

// ---- tree ------------------------------------------------------------------

TEST(Tree, RefineCreatesChildren) {
    tree t(unit_root());
    EXPECT_EQ(t.size(), 1u);
    t.refine(root_key);
    EXPECT_EQ(t.size(), 9u);
    EXPECT_EQ(t.leaf_count(), 8u);
    EXPECT_FALSE(t.is_leaf(root_key));
    EXPECT_TRUE(t.is_leaf(key_child(root_key, 3)));
}

TEST(Tree, GeometryHalvesWithLevel) {
    tree t(unit_root());
    t.refine(root_key);
    const auto g0 = t.geometry(root_key);
    const auto g1 = t.geometry(key_child(root_key, 7));
    EXPECT_DOUBLE_EQ(g1.dx, g0.dx / 2.0);
    // Child 7 = (+x, +y, +z) octant: origin at the cube center.
    EXPECT_DOUBLE_EQ(g1.origin.x, 0.5);
    EXPECT_DOUBLE_EQ(g1.origin.y, 0.5);
    EXPECT_DOUBLE_EQ(g1.origin.z, 0.5);
}

TEST(Tree, RefineByPredicateWithBalance) {
    tree t(unit_root());
    // Refine around a corner point down to level 3.
    const dvec3 target{0.1, 0.1, 0.1};
    t.refine_by(
        [&](node_key, const box_geometry& g) {
            const double edge = g.dx * INX;
            return g.origin.x <= target.x && target.x < g.origin.x + edge &&
                   g.origin.y <= target.y && target.y < g.origin.y + edge &&
                   g.origin.z <= target.z && target.z < g.origin.z + edge;
        },
        3);
    EXPECT_TRUE(t.is_balanced21());
    EXPECT_EQ(t.max_level(), 3);
    EXPECT_GT(t.leaf_count(), 8u);
}

TEST(Tree, LeavesSfcCoversDomainOnce) {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(key_child(root_key, 0));
    const auto lv = t.leaves_sfc();
    EXPECT_EQ(lv.size(), 15u); // 7 level-1 + 8 level-2
    // Volumes sum to the domain volume.
    double vol = 0;
    for (const auto k : lv) {
        const auto g = t.geometry(k);
        vol += std::pow(g.dx * INX, 3);
    }
    EXPECT_NEAR(vol, 1.0, 1e-12);
    // SFC order is strictly increasing.
    for (std::size_t i = 1; i < lv.size(); ++i) {
        EXPECT_LT(key_sfc_order(lv[i - 1], t.max_level()),
                  key_sfc_order(lv[i], t.max_level()));
    }
}

TEST(Tree, IdsAreUniquePerTree) {
    tree a(unit_root());
    tree b(unit_root());
    EXPECT_NE(a.id(), b.id());
}

TEST(Tree, RevisionBumpsOnEveryStructureChange) {
    // Caches (solver workspaces, halo plans) key on (id, revision): the
    // revision must change on refine, derefine, and field allocation — and
    // must NOT change on reads or repeated ensure_fields.
    tree t(unit_root());
    const auto r0 = t.revision();
    t.refine(root_key);
    const auto r1 = t.revision();
    EXPECT_GT(r1, r0);

    t.ensure_fields(key_child(root_key, 0)); // allocates: bumps
    const auto r2 = t.revision();
    EXPECT_GT(r2, r1);
    t.ensure_fields(key_child(root_key, 0)); // already allocated: no bump
    EXPECT_EQ(t.revision(), r2);

    (void)t.leaves_sfc(); // reads never bump
    (void)t.geometry(root_key);
    EXPECT_EQ(t.revision(), r2);

    t.derefine(root_key);
    EXPECT_GT(t.revision(), r2);
}

TEST(Tree, Balance21RepairsDeepImbalance) {
    tree t(unit_root());
    // Refine toward the domain center: the level-2 node at (1,1,1) becomes
    // refined while its +x/+y/+z level-2 neighbors (inside the other
    // level-1 octants) do not exist yet — a 2:1 violation.
    t.refine(root_key);
    t.refine(key_child(root_key, 0));
    t.refine(key_child(key_child(root_key, 0), 7));
    EXPECT_FALSE(t.is_balanced21());
    t.balance21();
    EXPECT_TRUE(t.is_balanced21());
}

// ---- subgrid ---------------------------------------------------------------

TEST(Subgrid, IndexingAndInterior) {
    subgrid g;
    EXPECT_TRUE(subgrid::is_interior(H_BW, H_BW, H_BW));
    EXPECT_FALSE(subgrid::is_interior(H_BW - 1, H_BW, H_BW));
    EXPECT_FALSE(subgrid::is_interior(H_BW + INX, H_BW, H_BW));
    g.interior(f_rho, 0, 0, 0) = 3.0;
    EXPECT_DOUBLE_EQ(g.at(f_rho, H_BW, H_BW, H_BW), 3.0);
    EXPECT_DOUBLE_EQ(g.interior_sum(f_rho), 3.0);
}

TEST(Subgrid, GeometryCellCenters) {
    subgrid g;
    g.geom.origin = {1.0, 2.0, 3.0};
    g.geom.dx = 0.5;
    const auto c = g.geom.cell_center(0, 1, 2);
    EXPECT_DOUBLE_EQ(c.x, 1.25);
    EXPECT_DOUBLE_EQ(c.y, 2.75);
    EXPECT_DOUBLE_EQ(c.z, 4.25);
    EXPECT_DOUBLE_EQ(g.geom.cell_volume(), 0.125);
}

// ---- restriction / prolongation -------------------------------------------

class ProlongRestrict : public ::testing::Test {
  protected:
    void SetUp() override {
        t_ = std::make_unique<tree>(unit_root());
        t_->refine(root_key);
        parent_ = &t_->ensure_fields(root_key);
        xoshiro256 rng(11);
        for (int c = 0; c < 8; ++c) {
            auto& ch = t_->ensure_fields(key_child(root_key, c));
            for (int f = 0; f < n_fields; ++f) {
                for (int i = 0; i < INX; ++i)
                    for (int j = 0; j < INX; ++j)
                        for (int k = 0; k < INX; ++k) {
                            ch.interior(f, i, j, k) = rng.uniform(0.1, 1.0);
                        }
            }
        }
    }

    double total_integral(int f) const {
        double s = 0;
        for (int c = 0; c < 8; ++c) {
            const auto& ch = *t_->node(key_child(root_key, c)).fields;
            s += ch.interior_sum(f) * ch.geom.cell_volume();
        }
        return s;
    }

    std::unique_ptr<tree> t_;
    subgrid* parent_ = nullptr;
};

TEST_F(ProlongRestrict, RestrictionConservesEveryField) {
    for (int c = 0; c < 8; ++c) {
        restrict_into_parent(*t_->node(key_child(root_key, c)).fields, c, *parent_);
    }
    for (int f = 0; f < n_fields; ++f) {
        if (f == f_lx || f == f_ly || f == f_lz) continue; // checked below
        EXPECT_NEAR(parent_->interior_sum(f) * parent_->geom.cell_volume(),
                    total_integral(f), 1e-12 * std::abs(total_integral(f)) + 1e-14)
            << field_name(f);
    }
}

TEST_F(ProlongRestrict, RestrictionConservesAngularMomentum) {
    dvec3 fine_L{0, 0, 0};
    for (int c = 0; c < 8; ++c) {
        fine_L += interior_angular_momentum(*t_->node(key_child(root_key, c)).fields);
    }
    for (int c = 0; c < 8; ++c) {
        restrict_into_parent(*t_->node(key_child(root_key, c)).fields, c, *parent_);
    }
    const dvec3 coarse_L = interior_angular_momentum(*parent_);
    EXPECT_NEAR(coarse_L.x, fine_L.x, 1e-13);
    EXPECT_NEAR(coarse_L.y, fine_L.y, 1e-13);
    EXPECT_NEAR(coarse_L.z, fine_L.z, 1e-13);
}

TEST_F(ProlongRestrict, ProlongationConservesEveryField) {
    // Give the parent smooth data (and filled ghosts for slopes).
    for (int f = 0; f < n_fields; ++f) {
        for (int i = 0; i < NX; ++i)
            for (int j = 0; j < NX; ++j)
                for (int k = 0; k < NX; ++k) {
                    parent_->at(f, i, j, k) =
                        1.0 + 0.01 * f + 0.05 * i + 0.03 * j - 0.02 * k;
                }
    }
    const dvec3 parent_L = interior_angular_momentum(*parent_);
    for (int c = 0; c < 8; ++c) {
        prolong_from_parent(*parent_, c, *t_->node(key_child(root_key, c)).fields,
                            /*slopes=*/true);
    }
    for (int f = 0; f < n_fields; ++f) {
        if (f == f_lx || f == f_ly || f == f_lz) continue;
        double parent_int = 0;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int k = 0; k < INX; ++k)
                    parent_int += parent_->interior(f, i, j, k);
        parent_int *= parent_->geom.cell_volume();
        EXPECT_NEAR(total_integral(f), parent_int, 1e-12 * std::abs(parent_int))
            << field_name(f);
    }
    dvec3 fine_L{0, 0, 0};
    for (int c = 0; c < 8; ++c) {
        fine_L += interior_angular_momentum(*t_->node(key_child(root_key, c)).fields);
    }
    EXPECT_NEAR(fine_L.x, parent_L.x, 1e-12);
    EXPECT_NEAR(fine_L.y, parent_L.y, 1e-12);
    EXPECT_NEAR(fine_L.z, parent_L.z, 1e-12);
}

TEST_F(ProlongRestrict, RestrictThenProlongIsIdentityForConstants) {
    for (int c = 0; c < 8; ++c) {
        auto& ch = *t_->node(key_child(root_key, c)).fields;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int k = 0; k < INX; ++k) ch.interior(f, i, j, k) = 2.5;
        // Zero the spin so the orbital correction is visible only via s.
    }
    for (int c = 0; c < 8; ++c) {
        restrict_into_parent(*t_->node(key_child(root_key, c)).fields, c, *parent_);
    }
    subgrid out;
    out.geom = t_->geometry(key_child(root_key, 0));
    prolong_from_parent(*parent_, 0, out, /*slopes=*/false);
    // rho must be exactly the constant; spin picks up the (r-R) x s term,
    // which is the designed behaviour, so check a momentum-free field.
    EXPECT_DOUBLE_EQ(out.interior(f_rho, 3, 3, 3), 2.5);
    EXPECT_DOUBLE_EQ(out.interior(f_egas, 0, 7, 2), 2.5);
}

// ---- ghost fill ------------------------------------------------------------

TEST(Halo, SameLevelNeighborCopy) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) {
        auto& g = t.ensure_fields(key_child(root_key, c));
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int k = 0; k < INX; ++k) g.interior(f_rho, i, j, k) = 1.0 + c;
    }
    fill_all_ghosts(t, boundary_kind::outflow);
    // Child 0's +x ghost must read child 1's values (octant bit 0 = x).
    const auto& g0 = *t.node(key_child(root_key, 0)).fields;
    EXPECT_DOUBLE_EQ(g0.at(f_rho, H_BW + INX, H_BW, H_BW), 2.0);
    // And its -x ghost is an outflow copy of itself.
    EXPECT_DOUBLE_EQ(g0.at(f_rho, H_BW - 1, H_BW, H_BW), 1.0);
    // Corner ghost (+x, +y, +z) reads child 7.
    EXPECT_DOUBLE_EQ(g0.at(f_rho, H_BW + INX, H_BW + INX, H_BW + INX), 8.0);
}

TEST(Halo, PeriodicWrapsAround) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) {
        auto& g = t.ensure_fields(key_child(root_key, c));
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int k = 0; k < INX; ++k) g.interior(f_rho, i, j, k) = 1.0 + c;
    }
    fill_all_ghosts(t, boundary_kind::periodic);
    // Child 0's -x ghost wraps to child 1 (x-extent at level 1 is 2 subgrids).
    const auto& g0 = *t.node(key_child(root_key, 0)).fields;
    EXPECT_DOUBLE_EQ(g0.at(f_rho, H_BW - 1, H_BW, H_BW), 2.0);
}

TEST(Halo, ReflectingFlipsNormalMomentum) {
    tree t(unit_root());
    auto& g = t.ensure_fields(root_key);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int k = 0; k < INX; ++k) {
                g.interior(f_sx, i, j, k) = 5.0;
                g.interior(f_sy, i, j, k) = 7.0;
                g.interior(f_rho, i, j, k) = 2.0;
            }
    fill_all_ghosts(t, boundary_kind::reflecting);
    // -x ghost: sx flipped, sy copied, rho copied (mirror of interior cell 0).
    EXPECT_DOUBLE_EQ(g.at(f_sx, H_BW - 1, H_BW, H_BW), -5.0);
    EXPECT_DOUBLE_EQ(g.at(f_sy, H_BW - 1, H_BW, H_BW), 7.0);
    EXPECT_DOUBLE_EQ(g.at(f_rho, H_BW - 1, H_BW, H_BW), 2.0);
}

TEST(Halo, CoarseFineBoundaryUsesCoarseData) {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(key_child(root_key, 0)); // level-2 leaves in one octant
    // Allocate + set data on all leaves.
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        const double v = static_cast<double>(key_level(k)); // 1 or 2
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) g.interior(f_rho, i, j, kk) = v;
    }
    fill_all_ghosts(t, boundary_kind::outflow);
    // A level-2 leaf adjacent to the coarse region: its +x ghosts (beyond the
    // refined octant) must read the restricted/coarse value 1.0.
    const node_key fine = key_child(key_child(root_key, 0), 1); // +x side
    const auto& g = *t.node(fine).fields;
    EXPECT_DOUBLE_EQ(g.at(f_rho, H_BW + INX, H_BW, H_BW), 1.0);
    // Its -x neighbor is the sibling at the same level with value 2.
    EXPECT_DOUBLE_EQ(g.at(f_rho, H_BW - 1, H_BW, H_BW), 2.0);
}

TEST(Halo, RestrictTreeFillsInteriorNodes) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) {
        auto& g = t.ensure_fields(key_child(root_key, c));
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int k = 0; k < INX; ++k) g.interior(f_rho, i, j, k) = 4.0;
    }
    restrict_tree(t);
    const auto& root = *t.node(root_key).fields;
    EXPECT_DOUBLE_EQ(root.interior(f_rho, 2, 5, 7), 4.0);
}

TEST(Halo, PlanCacheSurvivesRefinement) {
    // fill_all_ghosts caches its resolved copy plan keyed on the tree
    // revision. After refining (which bumps the revision) the replayed plan
    // must match a from-scratch per-node fill_ghosts pass exactly.
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) {
        auto& g = t.ensure_fields(key_child(root_key, c));
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int k = 0; k < INX; ++k) g.interior(f_rho, i, j, k) = 1.0 + c;
    }
    fill_all_ghosts(t, boundary_kind::outflow); // builds the plan

    t.refine(key_child(root_key, 5));
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    g.interior(f_rho, i, j, kk) =
                        0.5 * key_level(k) + 0.25 * ((i + j + kk) % 3);
                }
    }
    fill_all_ghosts(t, boundary_kind::outflow); // must rebuild, not replay

    // Compare against the uncached per-node path: snapshot the plan-filled
    // node, refill its ghosts from scratch, and demand equality. (fill_ghosts
    // reads only neighbor interiors, so refilling node by node is safe.)
    for (const auto k : t.leaves_sfc()) {
        auto& live = *t.node(k).fields;
        const subgrid from_plan = live;
        fill_ghosts(t, k, boundary_kind::outflow);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < NX; ++i)
                for (int j = 0; j < NX; ++j)
                    for (int kk = 0; kk < NX; ++kk) {
                        EXPECT_EQ(live.at(f, i, j, kk),
                                  from_plan.at(f, i, j, kk))
                            << "field " << f;
                    }
    }
}

// ---- partitioner -----------------------------------------------------------

TEST(Partition, BalancedLeafCounts) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) t.refine(key_child(root_key, c)); // 64 leaves
    const auto stats = partition_sfc(t, 4);
    ASSERT_EQ(stats.leaves_per_rank.size(), 4u);
    for (const auto n : stats.leaves_per_rank) EXPECT_EQ(n, 16u);
}

TEST(Partition, SingleRankHasNoRemotePairs) {
    tree t(unit_root());
    t.refine(root_key);
    const auto stats = partition_sfc(t, 1);
    EXPECT_EQ(stats.cross_rank_neighbor_pairs, 0u);
    EXPECT_GT(stats.total_neighbor_pairs, 0u);
}

TEST(Partition, MoreRanksMoreRemotePairs) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) t.refine(key_child(root_key, c));
    tree t2(unit_root());
    t2.refine(root_key);
    for (int c = 0; c < 8; ++c) t2.refine(key_child(root_key, c));
    const auto s2 = partition_sfc(t, 2);
    const auto s16 = partition_sfc(t2, 16);
    EXPECT_GT(s16.cross_rank_neighbor_pairs, s2.cross_rank_neighbor_pairs);
    EXPECT_EQ(s16.total_neighbor_pairs, s2.total_neighbor_pairs);
}

TEST(Partition, InteriorNodesInheritChildOwner) {
    tree t(unit_root());
    t.refine(root_key);
    partition_sfc(t, 8);
    EXPECT_EQ(t.node(root_key).owner, t.node(key_child(root_key, 0)).owner);
}

TEST(Partition, ChunksAreMortonContiguous) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) t.refine(key_child(root_key, c));
    t.refine(key_child(key_child(root_key, 3), 5)); // non-uniform depth
    for (const int nranks : {1, 3, 7, 16}) {
        partition_sfc(t, nranks);
        int prev = 0;
        for (const node_key k : t.leaves_sfc()) {
            const int r = t.node(k).owner;
            EXPECT_GE(r, prev) << "owners must be nondecreasing along the SFC";
            EXPECT_LT(r, nranks);
            prev = r;
        }
    }
}

TEST(Partition, EveryInteriorNodeOwnsItsFirstDescendantLeaf) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) t.refine(key_child(root_key, c));
    partition_sfc(t, 8);
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (!t.node(k).refined) continue;
            EXPECT_EQ(t.node(k).owner,
                      t.node(first_descendant_leaf(t, k)).owner);
        }
    }
}

TEST(Partition, AccountingTotalsAndCrossPairSymmetry) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) t.refine(key_child(root_key, c));
    const int nranks = 6;
    const auto stats = partition_sfc(t, nranks);

    std::size_t leaves = 0, nodes = 0, refined = 0, pair_endpoints = 0;
    for (int r = 0; r < nranks; ++r) {
        leaves += stats.leaves_per_rank[r];
        nodes += stats.nodes_per_rank[r];
        refined += stats.refined_per_rank[r];
        pair_endpoints += stats.cross_pairs_per_rank[r];
    }
    EXPECT_EQ(leaves, t.leaf_count());
    EXPECT_EQ(nodes, t.size());
    EXPECT_EQ(refined, t.size() - t.leaf_count());
    // Each cross-rank pair has exactly two endpoints, one per side.
    EXPECT_EQ(pair_endpoints, 2 * stats.cross_rank_neighbor_pairs);
    EXPECT_LE(stats.cross_rank_neighbor_pairs, stats.total_neighbor_pairs);
}

TEST(Partition, WeightedSplitEqualizesCostNotCounts) {
    tree t(unit_root());
    t.refine(root_key);
    for (int c = 0; c < 8; ++c) t.refine(key_child(root_key, c)); // 64 leaves
    // First 16 leaves on the curve cost 9x the rest. Total 192, mean 48 per
    // rank: the hot region is split across the first ranks (about 6 hot
    // leaves each), the light tail packs many more leaves per rank. The
    // split can only be off from the mean by a boundary leaf.
    std::vector<double> w(64, 1.0);
    for (int i = 0; i < 16; ++i) w[i] = 9.0;
    const auto stats = partition_sfc_weighted(t, 4, w);
    ASSERT_EQ(stats.cost_per_rank.size(), 4u);
    const double mean = stats.total_cost() / 4.0;
    for (const double c : stats.cost_per_rank) EXPECT_NEAR(c, mean, 9.0);
    EXPECT_LT(stats.leaves_per_rank[0], 16u); // fewer, expensive leaves
    EXPECT_GT(stats.leaves_per_rank[3], 16u); // more, cheap leaves
    // Far better than the 200% a 16-leaf equal-count split would give the
    // hot rank ((16*9)/48 - 1).
    EXPECT_LT(stats.imbalance_pct(), 15.0);

    // Uniform weights reduce to the equal-count split.
    tree t2(unit_root());
    t2.refine(root_key);
    for (int c = 0; c < 8; ++c) t2.refine(key_child(root_key, c));
    const auto uniform = partition_sfc_weighted(t2, 4, std::vector<double>(64, 1.0));
    for (const auto n : uniform.leaves_per_rank) EXPECT_EQ(n, 16u);
}

TEST(Partition, PartitionRevisionBumpsButStructureRevisionDoesNot) {
    tree t(unit_root());
    t.refine(root_key);
    const auto structure = t.revision();
    const auto part = t.partition_revision();
    partition_sfc(t, 4);
    EXPECT_EQ(t.revision(), structure);
    EXPECT_GT(t.partition_revision(), part);
}

// ---- assertion-protected invariants (death tests) ----------------------------

TEST(TreeDeath, RefiningTwiceAborts) {
    tree t(unit_root());
    t.refine(root_key);
    EXPECT_DEATH(t.refine(root_key), "refining an already refined node");
}

TEST(TreeDeath, DerefiningLeafAborts) {
    tree t(unit_root());
    EXPECT_DEATH(t.derefine(root_key), "derefining a leaf");
}

TEST(TreeDeath, DerefineRequiresLeafChildren) {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(key_child(root_key, 0));
    EXPECT_DEATH(t.derefine(root_key), "derefine requires leaf children");
}

TEST(TreeDeath, UnknownNodeAborts) {
    tree t(unit_root());
    EXPECT_DEATH(t.node(key_child(root_key, 0)), "node not in tree");
}

TEST(Tree, DerefineRoundTripRestoresShape) {
    tree t(unit_root());
    t.refine(root_key);
    t.refine(key_child(root_key, 5));
    EXPECT_EQ(t.max_level(), 2);
    t.derefine(key_child(root_key, 5));
    EXPECT_EQ(t.max_level(), 1);
    EXPECT_EQ(t.size(), 9u);
    t.derefine(root_key);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.max_level(), 0);
    EXPECT_TRUE(t.is_leaf(root_key));
    // And the tree is reusable after coarsening.
    t.refine(root_key);
    EXPECT_EQ(t.leaf_count(), 8u);
}

// ---- randomized property tests ----------------------------------------------

class RandomTrees : public ::testing::TestWithParam<int> {};

TEST_P(RandomTrees, BalanceAndCoverageInvariants) {
    // Random refinement sequences must always yield a 2:1-balanced tree
    // whose leaves tile the domain exactly once.
    xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
    tree t(unit_root());
    for (int step = 0; step < 25; ++step) {
        const auto leaves = t.leaves_sfc();
        const auto pick = leaves[rng.below(leaves.size())];
        if (key_level(pick) < 4) t.refine(pick);
    }
    t.balance21();
    EXPECT_TRUE(t.is_balanced21());

    double vol = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto g = t.geometry(k);
        vol += std::pow(g.dx * INX, 3);
    }
    EXPECT_NEAR(vol, 1.0, 1e-9);

    // SFC order is a strict total order on leaves.
    const auto lv = t.leaves_sfc();
    for (std::size_t i = 1; i < lv.size(); ++i) {
        EXPECT_LT(key_sfc_order(lv[i - 1], t.max_level()),
                  key_sfc_order(lv[i], t.max_level()));
    }
}

TEST_P(RandomTrees, GhostFillAgreesWithSourceData) {
    // Property: after a ghost fill on a random balanced tree with a smooth
    // global field rho(x) = 1 + x + 2y + 3z sampled per cell, every SAME-
    // LEVEL ghost cell must carry exactly the linear field value (copies),
    // and coarse-sourced ghosts must carry the covering cell's value.
    xoshiro256 rng(1000 + static_cast<std::uint64_t>(GetParam()));
    tree t(unit_root());
    for (int step = 0; step < 12; ++step) {
        const auto leaves = t.leaves_sfc();
        const auto pick = leaves[rng.below(leaves.size())];
        if (key_level(pick) < 3) t.refine(pick);
    }
    t.balance21();
    auto field = [](const dvec3& r) { return 1.0 + r.x + 2 * r.y + 3 * r.z; };
    for (const auto k : t.leaves_sfc()) {
        auto& g = t.ensure_fields(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    g.interior(f_rho, i, j, kk) =
                        field(g.geom.cell_center(i, j, kk));
                }
    }
    fill_all_ghosts(t, boundary_kind::outflow);
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        const int level = key_level(k);
        for (int i = -1; i <= INX; ++i)
            for (int j = -1; j <= INX; ++j)
                for (int kk = -1; kk <= INX; ++kk) {
                    if (subgrid::is_interior(i + H_BW, j + H_BW, kk + H_BW)) {
                        continue;
                    }
                    // Same-level neighbor present? Then the ghost must be an
                    // exact copy of the linear field.
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const ivec3 base = key_coords(k);
                    const int e = (1 << level) * INX;
                    const int gx = base.x * INX + i;
                    const int gy = base.y * INX + j;
                    const int gz = base.z * INX + kk;
                    if (gx < 0 || gy < 0 || gz < 0 || gx >= e || gy >= e ||
                        gz >= e) {
                        continue; // physical boundary: outflow copy, skip
                    }
                    const node_key nb = key_from_coords(
                        level, {gx / INX, gy / INX, gz / INX});
                    if (t.contains(nb) && !t.node(nb).refined) {
                        EXPECT_NEAR(g.at(f_rho, i + H_BW, j + H_BW, kk + H_BW),
                                    field(r), 1e-12)
                            << "ghost at same level";
                    }
                }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrees, ::testing::Values(1, 2, 3, 4, 5));

} // namespace

// Tests for the two-moment (M1) radiation transport module — the paper's §7
// extension. Covers the closure limits, free-streaming propagation at the
// reduced speed of light, conservation under transport, the implicit
// matter coupling (equilibration + exact total-energy conservation), and
// the flux limiter.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/tree.hpp"
#include "hydro/update.hpp"
#include "rad/m1.hpp"
#include "rad/rad.hpp"
#include "scf/scf.hpp"

namespace {

using namespace octo;
using namespace octo::amr;
using namespace octo::rad;

// ---- closure -----------------------------------------------------------------

TEST(M1Closure, LimitsAreExact) {
    EXPECT_NEAR(eddington_factor(0.0), 1.0 / 3.0, 1e-14); // diffusion
    EXPECT_NEAR(eddington_factor(1.0), 1.0, 1e-14);       // free streaming
}

TEST(M1Closure, MonotoneInF) {
    double prev = eddington_factor(0.0);
    for (int i = 1; i <= 20; ++i) {
        const double chi = eddington_factor(i / 20.0);
        EXPECT_GE(chi, prev);
        prev = chi;
    }
}

TEST(M1Closure, PressureTensorTraceEqualsEnergy) {
    // tr(P) = E for any closure of this family.
    double P[3][3];
    const dvec3 F{0.3, -0.2, 0.5};
    pressure_tensor(2.0, F, 1.0, P);
    EXPECT_NEAR(P[0][0] + P[1][1] + P[2][2], 2.0, 1e-12);
    // Symmetry.
    EXPECT_DOUBLE_EQ(P[0][1], P[1][0]);
    EXPECT_DOUBLE_EQ(P[0][2], P[2][0]);
}

TEST(M1Closure, IsotropicAtZeroFlux) {
    double P[3][3];
    pressure_tensor(3.0, {0, 0, 0}, 1.0, P);
    EXPECT_NEAR(P[0][0], 1.0, 1e-14);
    EXPECT_NEAR(P[1][1], 1.0, 1e-14);
    EXPECT_NEAR(P[0][1], 0.0, 1e-14);
}

TEST(M1Closure, FreeStreamingPressureAlongFlux) {
    // f = 1 along x: P = E x x.
    double P[3][3];
    pressure_tensor(1.0, {1.0, 0, 0}, 1.0, P); // |F| = cE -> f = 1
    EXPECT_NEAR(P[0][0], 1.0, 1e-12);
    EXPECT_NEAR(P[1][1], 0.0, 1e-12);
}

TEST(M1Closure, FluxLimiterCapsAtCE) {
    const dvec3 f = limit_flux(1.0, {3.0, 0, 0}, 1.0);
    EXPECT_NEAR(norm(f), 1.0, 1e-14);
    const dvec3 ok = limit_flux(1.0, {0.5, 0, 0}, 1.0);
    EXPECT_DOUBLE_EQ(ok.x, 0.5);
}

// ---- transport -----------------------------------------------------------------

tree make_grid(int depth = 1) {
    return scf::make_uniform_tree(1.0, depth);
}

void zero_hydro(tree& t) {
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    g.interior(f_rho, i, j, kk) = 1.0;
                    g.interior(f_egas, i, j, kk) = 1.0;
                    g.interior(f_tau, i, j, kk) =
                        phys::ideal_gas_eos().tau_from_internal(1.0);
                }
    }
}

TEST(RadTransport, ConservesEnergyWithPeriodicBc) {
    auto t = make_grid();
    zero_hydro(t);
    // A radiation blob.
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    g.interior(f_erad, i, j, kk) = std::exp(-norm2(r) / 0.01);
                }
    }
    const double before = total_radiation_energy(t);
    rad_options opt;
    opt.bc = boundary_kind::periodic;
    opt.kappa = 0.0;
    const int nsub = step(t, 0.05, opt);
    EXPECT_GE(nsub, 1);
    EXPECT_NEAR(total_radiation_energy(t), before, before * 1e-12);
}

TEST(RadTransport, FreeStreamingPulseMovesAtChat) {
    auto t = make_grid(2); // 32^3
    zero_hydro(t);
    // A pulse at x = -0.2 streaming in +x at |F| = c E.
    rad_options opt;
    opt.c_hat = 5.0;
    opt.bc = boundary_kind::outflow;
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    const double E =
                        std::exp(-((r.x + 0.2) * (r.x + 0.2)) / 0.002) *
                        std::exp(-(r.y * r.y + r.z * r.z) / 0.02);
                    g.interior(f_erad, i, j, kk) = E;
                    g.interior(f_frx, i, j, kk) = opt.c_hat * E;
                }
    }
    const double dt = 0.06; // pulse should travel c_hat*dt = 0.3
    step(t, dt, opt);

    // Energy-weighted centroid along x.
    double cx = 0, m = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const double E = g.interior(f_erad, i, j, kk);
                    cx += E * g.geom.cell_center(i, j, kk).x;
                    m += E;
                }
    }
    EXPECT_NEAR(cx / m, -0.2 + opt.c_hat * dt, 0.05);
}

TEST(RadTransport, IsotropicBlobStaysCentered) {
    auto t = make_grid(1);
    zero_hydro(t);
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 r = g.geom.cell_center(i, j, kk);
                    g.interior(f_erad, i, j, kk) = std::exp(-norm2(r) / 0.02);
                }
    }
    rad_options opt;
    opt.bc = boundary_kind::periodic;
    step(t, 0.02, opt);
    double cx = 0, m = 0;
    double emax = 0;
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const double E = g.interior(f_erad, i, j, kk);
                    cx += E * g.geom.cell_center(i, j, kk).x;
                    m += E;
                    emax = std::max(emax, E);
                }
    }
    EXPECT_NEAR(cx / m, 0.0, 1e-10); // symmetric spreading
    EXPECT_LT(emax, 1.0);            // peak decays (expansion)
    EXPECT_GT(emax, 0.0);
}

TEST(RadTransport, EnergyStaysNonNegative) {
    auto t = make_grid(1);
    zero_hydro(t);
    // Harsh initial data: a single hot cell.
    auto& g0 = *t.node(t.leaves_sfc().front()).fields;
    g0.interior(f_erad, 3, 3, 3) = 100.0;
    rad_options opt;
    opt.bc = boundary_kind::outflow;
    step(t, 0.1, opt);
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    ASSERT_GE(g.interior(f_erad, i, j, kk), 0.0);
                    // Realizability: |F| <= c_hat E.
                    const dvec3 F{g.interior(f_frx, i, j, kk),
                                  g.interior(f_fry, i, j, kk),
                                  g.interior(f_frz, i, j, kk)};
                    ASSERT_LE(norm(F),
                              opt.c_hat * g.interior(f_erad, i, j, kk) + 1e-12);
                }
    }
}

// ---- matter coupling ------------------------------------------------------------

TEST(RadCoupling, RelaxesTowardEquilibrium) {
    auto t = make_grid(1);
    zero_hydro(t); // u_gas = 1 everywhere, rho = 1
    rad_options opt;
    opt.bc = boundary_kind::periodic;
    opt.kappa = 50.0; // optically thick
    opt.a_rad = 0.5;
    // Start with zero radiation: matter should radiate until a T^4 = E.
    for (int s = 0; s < 40; ++s) step(t, 0.02, opt);

    const auto& g = *t.node(t.leaves_sfc().front()).fields;
    const double E = g.interior(f_erad, 2, 2, 2);
    const double rho = g.interior(f_rho, 2, 2, 2);
    const dvec3 sv{g.interior(f_sx, 2, 2, 2), g.interior(f_sy, 2, 2, 2),
                   g.interior(f_sz, 2, 2, 2)};
    const double u = opt.eos.internal_energy(g.interior(f_egas, 2, 2, 2),
                                             0.5 * norm2(sv) / rho,
                                             g.interior(f_tau, 2, 2, 2));
    const double eq = equilibrium_erad(u, rho, opt);
    EXPECT_NEAR(E, eq, 0.05 * eq);
    EXPECT_GT(E, 0.0);
}

TEST(RadCoupling, ConservesTotalEnergyToRounding) {
    auto t = make_grid(1);
    zero_hydro(t);
    rad_options opt;
    opt.bc = boundary_kind::periodic;
    opt.kappa = 10.0;
    opt.a_rad = 0.3;
    const double e_gas0 = hydro::compute_totals(t).egas;
    const double e_rad0 = total_radiation_energy(t);
    for (int s = 0; s < 10; ++s) step(t, 0.02, opt);
    const double e_gas1 = hydro::compute_totals(t).egas;
    const double e_rad1 = total_radiation_energy(t);
    EXPECT_NEAR(e_gas1 + e_rad1, e_gas0 + e_rad0,
                (e_gas0 + e_rad0) * 1e-11);
    EXPECT_LT(e_gas1, e_gas0); // matter radiated
    EXPECT_GT(e_rad1, e_rad0);
}

TEST(RadCoupling, AbsorptionDampsFlux) {
    auto t = make_grid(1);
    zero_hydro(t);
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    g.interior(f_erad, i, j, kk) = 1.0;
                    g.interior(f_frx, i, j, kk) = 0.5;
                }
    }
    rad_options opt;
    opt.bc = boundary_kind::periodic;
    opt.kappa = 100.0; // thick: flux should die fast
    step(t, 0.05, opt);
    const auto& g = *t.node(t.leaves_sfc().front()).fields;
    EXPECT_LT(std::abs(g.interior(f_frx, 4, 4, 4)), 0.05);
}

// ---- interaction with the hydro step -------------------------------------------

TEST(RadHydro, HydroStepLeavesRadiationUntouched) {
    // The radiation moments are transported ONLY by the radiation solver;
    // a hydro step must not change them (operator splitting contract).
    auto t = make_grid(1);
    zero_hydro(t);
    for (const auto k : t.leaves_sfc()) {
        auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    g.interior(f_erad, i, j, kk) = 0.7 + 0.01 * i;
                    g.interior(f_frx, i, j, kk) = 0.1;
                    // give the gas something to do
                    g.interior(f_sx, i, j, kk) = 0.2;
                }
    }
    hydro::step_options h;
    h.bc = boundary_kind::periodic;
    (void)hydro::step(t, h);
    for (const auto k : t.leaves_sfc()) {
        const auto& g = *t.node(k).fields;
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    ASSERT_DOUBLE_EQ(g.interior(f_erad, i, j, kk), 0.7 + 0.01 * i);
                    ASSERT_DOUBLE_EQ(g.interior(f_frx, i, j, kk), 0.1);
                }
    }
}

} // namespace

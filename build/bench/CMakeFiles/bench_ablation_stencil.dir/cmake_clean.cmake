file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stencil.dir/bench_ablation_stencil.cpp.o"
  "CMakeFiles/bench_ablation_stencil.dir/bench_ablation_stencil.cpp.o.d"
  "bench_ablation_stencil"
  "bench_ablation_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_stencil.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_gpu_streams.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_gpu_streams.dir/bench_gpu_streams.cpp.o"
  "CMakeFiles/bench_gpu_streams.dir/bench_gpu_streams.cpp.o.d"
  "bench_gpu_streams"
  "bench_gpu_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpu_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_parcelports.dir/bench_parcelports.cpp.o"
  "CMakeFiles/bench_parcelports.dir/bench_parcelports.cpp.o.d"
  "bench_parcelports"
  "bench_parcelports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parcelports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_parcelports.
# This may be replaced when dependencies are built.

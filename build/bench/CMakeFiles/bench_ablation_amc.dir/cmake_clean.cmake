file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_amc.dir/bench_ablation_amc.cpp.o"
  "CMakeFiles/bench_ablation_amc.dir/bench_ablation_amc.cpp.o.d"
  "bench_ablation_amc"
  "bench_ablation_amc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_amc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_amc.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_solver_dag.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_dag.dir/bench_solver_dag.cpp.o"
  "CMakeFiles/bench_solver_dag.dir/bench_solver_dag.cpp.o.d"
  "bench_solver_dag"
  "bench_solver_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gpu "/root/repo/build/tests/test_gpu")
set_tests_properties(test_gpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_physics "/root/repo/build/tests/test_physics")
set_tests_properties(test_physics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_amr "/root/repo/build/tests/test_amr")
set_tests_properties(test_amr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fmm "/root/repo/build/tests/test_fmm")
set_tests_properties(test_fmm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;23;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hydro "/root/repo/build/tests/test_hydro")
set_tests_properties(test_hydro PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;26;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_scf "/root/repo/build/tests/test_scf")
set_tests_properties(test_scf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;29;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_io "/root/repo/build/tests/test_io")
set_tests_properties(test_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;32;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;35;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dist "/root/repo/build/tests/test_dist")
set_tests_properties(test_dist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;38;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cluster "/root/repo/build/tests/test_cluster")
set_tests_properties(test_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;41;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rad "/root/repo/build/tests/test_rad")
set_tests_properties(test_rad PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;44;octo_add_test;/root/repo/tests/CMakeLists.txt;0;")

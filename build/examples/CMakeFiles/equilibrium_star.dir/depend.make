# Empty dependencies file for equilibrium_star.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/equilibrium_star.dir/equilibrium_star.cpp.o"
  "CMakeFiles/equilibrium_star.dir/equilibrium_star.cpp.o.d"
  "equilibrium_star"
  "equilibrium_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equilibrium_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

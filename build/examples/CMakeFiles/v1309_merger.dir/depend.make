# Empty dependencies file for v1309_merger.
# This may be replaced when dependencies are built.

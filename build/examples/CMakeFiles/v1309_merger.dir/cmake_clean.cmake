file(REMOVE_RECURSE
  "CMakeFiles/v1309_merger.dir/v1309_merger.cpp.o"
  "CMakeFiles/v1309_merger.dir/v1309_merger.cpp.o.d"
  "v1309_merger"
  "v1309_merger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v1309_merger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for radiation_wave.
# This may be replaced when dependencies are built.

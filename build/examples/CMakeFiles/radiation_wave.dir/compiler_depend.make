# Empty compiler generated dependencies file for radiation_wave.
# This may be replaced when dependencies are built.

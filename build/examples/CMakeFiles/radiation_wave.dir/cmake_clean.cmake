file(REMOVE_RECURSE
  "CMakeFiles/radiation_wave.dir/radiation_wave.cpp.o"
  "CMakeFiles/radiation_wave.dir/radiation_wave.cpp.o.d"
  "radiation_wave"
  "radiation_wave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiation_wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

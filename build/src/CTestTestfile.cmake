# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("simd")
subdirs("runtime")
subdirs("gpu")
subdirs("physics")
subdirs("amr")
subdirs("fmm")
subdirs("hydro")
subdirs("rad")
subdirs("scf")
subdirs("io")
subdirs("core")
subdirs("dist")
subdirs("net")
subdirs("cluster")

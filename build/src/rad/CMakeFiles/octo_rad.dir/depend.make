# Empty dependencies file for octo_rad.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/octo_rad.dir/rad.cpp.o"
  "CMakeFiles/octo_rad.dir/rad.cpp.o.d"
  "libocto_rad.a"
  "libocto_rad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_rad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocto_rad.a"
)

# Empty compiler generated dependencies file for octo_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/octo_cluster.dir/event_sim.cpp.o"
  "CMakeFiles/octo_cluster.dir/event_sim.cpp.o.d"
  "CMakeFiles/octo_cluster.dir/machine_model.cpp.o"
  "CMakeFiles/octo_cluster.dir/machine_model.cpp.o.d"
  "CMakeFiles/octo_cluster.dir/scenario_tree.cpp.o"
  "CMakeFiles/octo_cluster.dir/scenario_tree.cpp.o.d"
  "libocto_cluster.a"
  "libocto_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocto_cluster.a"
)

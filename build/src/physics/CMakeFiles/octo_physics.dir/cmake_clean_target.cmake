file(REMOVE_RECURSE
  "libocto_physics.a"
)

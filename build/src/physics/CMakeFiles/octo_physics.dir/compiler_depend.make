# Empty compiler generated dependencies file for octo_physics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/octo_physics.dir/polytrope.cpp.o"
  "CMakeFiles/octo_physics.dir/polytrope.cpp.o.d"
  "libocto_physics.a"
  "libocto_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocto_core.a"
)

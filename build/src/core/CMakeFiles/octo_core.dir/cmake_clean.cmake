file(REMOVE_RECURSE
  "CMakeFiles/octo_core.dir/scenario.cpp.o"
  "CMakeFiles/octo_core.dir/scenario.cpp.o.d"
  "CMakeFiles/octo_core.dir/simulation.cpp.o"
  "CMakeFiles/octo_core.dir/simulation.cpp.o.d"
  "libocto_core.a"
  "libocto_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocto_amr.a"
)

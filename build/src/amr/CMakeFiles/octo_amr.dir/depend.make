# Empty dependencies file for octo_amr.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/halo.cpp" "src/amr/CMakeFiles/octo_amr.dir/halo.cpp.o" "gcc" "src/amr/CMakeFiles/octo_amr.dir/halo.cpp.o.d"
  "/root/repo/src/amr/partition.cpp" "src/amr/CMakeFiles/octo_amr.dir/partition.cpp.o" "gcc" "src/amr/CMakeFiles/octo_amr.dir/partition.cpp.o.d"
  "/root/repo/src/amr/prolong.cpp" "src/amr/CMakeFiles/octo_amr.dir/prolong.cpp.o" "gcc" "src/amr/CMakeFiles/octo_amr.dir/prolong.cpp.o.d"
  "/root/repo/src/amr/subgrid.cpp" "src/amr/CMakeFiles/octo_amr.dir/subgrid.cpp.o" "gcc" "src/amr/CMakeFiles/octo_amr.dir/subgrid.cpp.o.d"
  "/root/repo/src/amr/tree.cpp" "src/amr/CMakeFiles/octo_amr.dir/tree.cpp.o" "gcc" "src/amr/CMakeFiles/octo_amr.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/octo_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/octo_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

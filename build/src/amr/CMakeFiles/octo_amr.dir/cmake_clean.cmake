file(REMOVE_RECURSE
  "CMakeFiles/octo_amr.dir/halo.cpp.o"
  "CMakeFiles/octo_amr.dir/halo.cpp.o.d"
  "CMakeFiles/octo_amr.dir/partition.cpp.o"
  "CMakeFiles/octo_amr.dir/partition.cpp.o.d"
  "CMakeFiles/octo_amr.dir/prolong.cpp.o"
  "CMakeFiles/octo_amr.dir/prolong.cpp.o.d"
  "CMakeFiles/octo_amr.dir/subgrid.cpp.o"
  "CMakeFiles/octo_amr.dir/subgrid.cpp.o.d"
  "CMakeFiles/octo_amr.dir/tree.cpp.o"
  "CMakeFiles/octo_amr.dir/tree.cpp.o.d"
  "libocto_amr.a"
  "libocto_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

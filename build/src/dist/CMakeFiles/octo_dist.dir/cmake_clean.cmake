file(REMOVE_RECURSE
  "CMakeFiles/octo_dist.dir/locality.cpp.o"
  "CMakeFiles/octo_dist.dir/locality.cpp.o.d"
  "libocto_dist.a"
  "libocto_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for octo_dist.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libocto_dist.a"
)

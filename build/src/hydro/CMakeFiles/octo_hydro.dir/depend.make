# Empty dependencies file for octo_hydro.
# This may be replaced when dependencies are built.

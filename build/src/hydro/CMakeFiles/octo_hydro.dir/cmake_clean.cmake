file(REMOVE_RECURSE
  "CMakeFiles/octo_hydro.dir/flux.cpp.o"
  "CMakeFiles/octo_hydro.dir/flux.cpp.o.d"
  "CMakeFiles/octo_hydro.dir/reconstruct.cpp.o"
  "CMakeFiles/octo_hydro.dir/reconstruct.cpp.o.d"
  "CMakeFiles/octo_hydro.dir/riemann_exact.cpp.o"
  "CMakeFiles/octo_hydro.dir/riemann_exact.cpp.o.d"
  "CMakeFiles/octo_hydro.dir/sedov.cpp.o"
  "CMakeFiles/octo_hydro.dir/sedov.cpp.o.d"
  "CMakeFiles/octo_hydro.dir/update.cpp.o"
  "CMakeFiles/octo_hydro.dir/update.cpp.o.d"
  "libocto_hydro.a"
  "libocto_hydro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_hydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocto_hydro.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hydro/flux.cpp" "src/hydro/CMakeFiles/octo_hydro.dir/flux.cpp.o" "gcc" "src/hydro/CMakeFiles/octo_hydro.dir/flux.cpp.o.d"
  "/root/repo/src/hydro/reconstruct.cpp" "src/hydro/CMakeFiles/octo_hydro.dir/reconstruct.cpp.o" "gcc" "src/hydro/CMakeFiles/octo_hydro.dir/reconstruct.cpp.o.d"
  "/root/repo/src/hydro/riemann_exact.cpp" "src/hydro/CMakeFiles/octo_hydro.dir/riemann_exact.cpp.o" "gcc" "src/hydro/CMakeFiles/octo_hydro.dir/riemann_exact.cpp.o.d"
  "/root/repo/src/hydro/sedov.cpp" "src/hydro/CMakeFiles/octo_hydro.dir/sedov.cpp.o" "gcc" "src/hydro/CMakeFiles/octo_hydro.dir/sedov.cpp.o.d"
  "/root/repo/src/hydro/update.cpp" "src/hydro/CMakeFiles/octo_hydro.dir/update.cpp.o" "gcc" "src/hydro/CMakeFiles/octo_hydro.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/CMakeFiles/octo_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/octo_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/octo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/octo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libocto_scf.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/octo_scf.dir/scf.cpp.o"
  "CMakeFiles/octo_scf.dir/scf.cpp.o.d"
  "libocto_scf.a"
  "libocto_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for octo_scf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libocto_io.a"
)

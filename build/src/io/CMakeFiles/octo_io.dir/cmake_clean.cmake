file(REMOVE_RECURSE
  "CMakeFiles/octo_io.dir/checkpoint.cpp.o"
  "CMakeFiles/octo_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/octo_io.dir/writers.cpp.o"
  "CMakeFiles/octo_io.dir/writers.cpp.o.d"
  "libocto_io.a"
  "libocto_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

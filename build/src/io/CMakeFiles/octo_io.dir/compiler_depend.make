# Empty compiler generated dependencies file for octo_io.
# This may be replaced when dependencies are built.

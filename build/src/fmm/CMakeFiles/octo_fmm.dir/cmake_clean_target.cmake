file(REMOVE_RECURSE
  "libocto_fmm.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fmm/direct.cpp" "src/fmm/CMakeFiles/octo_fmm.dir/direct.cpp.o" "gcc" "src/fmm/CMakeFiles/octo_fmm.dir/direct.cpp.o.d"
  "/root/repo/src/fmm/kernels.cpp" "src/fmm/CMakeFiles/octo_fmm.dir/kernels.cpp.o" "gcc" "src/fmm/CMakeFiles/octo_fmm.dir/kernels.cpp.o.d"
  "/root/repo/src/fmm/legacy_ilist.cpp" "src/fmm/CMakeFiles/octo_fmm.dir/legacy_ilist.cpp.o" "gcc" "src/fmm/CMakeFiles/octo_fmm.dir/legacy_ilist.cpp.o.d"
  "/root/repo/src/fmm/solver.cpp" "src/fmm/CMakeFiles/octo_fmm.dir/solver.cpp.o" "gcc" "src/fmm/CMakeFiles/octo_fmm.dir/solver.cpp.o.d"
  "/root/repo/src/fmm/stencil.cpp" "src/fmm/CMakeFiles/octo_fmm.dir/stencil.cpp.o" "gcc" "src/fmm/CMakeFiles/octo_fmm.dir/stencil.cpp.o.d"
  "/root/repo/src/fmm/taylor.cpp" "src/fmm/CMakeFiles/octo_fmm.dir/taylor.cpp.o" "gcc" "src/fmm/CMakeFiles/octo_fmm.dir/taylor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/CMakeFiles/octo_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/octo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/octo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/octo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

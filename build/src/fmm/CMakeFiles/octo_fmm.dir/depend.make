# Empty dependencies file for octo_fmm.
# This may be replaced when dependencies are built.

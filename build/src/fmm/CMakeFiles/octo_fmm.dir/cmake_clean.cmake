file(REMOVE_RECURSE
  "CMakeFiles/octo_fmm.dir/direct.cpp.o"
  "CMakeFiles/octo_fmm.dir/direct.cpp.o.d"
  "CMakeFiles/octo_fmm.dir/kernels.cpp.o"
  "CMakeFiles/octo_fmm.dir/kernels.cpp.o.d"
  "CMakeFiles/octo_fmm.dir/legacy_ilist.cpp.o"
  "CMakeFiles/octo_fmm.dir/legacy_ilist.cpp.o.d"
  "CMakeFiles/octo_fmm.dir/solver.cpp.o"
  "CMakeFiles/octo_fmm.dir/solver.cpp.o.d"
  "CMakeFiles/octo_fmm.dir/stencil.cpp.o"
  "CMakeFiles/octo_fmm.dir/stencil.cpp.o.d"
  "CMakeFiles/octo_fmm.dir/taylor.cpp.o"
  "CMakeFiles/octo_fmm.dir/taylor.cpp.o.d"
  "libocto_fmm.a"
  "libocto_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocto_net.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/octo_net.dir/fabric.cpp.o"
  "CMakeFiles/octo_net.dir/fabric.cpp.o.d"
  "CMakeFiles/octo_net.dir/parcelport.cpp.o"
  "CMakeFiles/octo_net.dir/parcelport.cpp.o.d"
  "libocto_net.a"
  "libocto_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

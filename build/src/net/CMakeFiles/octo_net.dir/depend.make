# Empty dependencies file for octo_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/octo_support.dir/buffer_recycler.cpp.o"
  "CMakeFiles/octo_support.dir/buffer_recycler.cpp.o.d"
  "CMakeFiles/octo_support.dir/flops.cpp.o"
  "CMakeFiles/octo_support.dir/flops.cpp.o.d"
  "libocto_support.a"
  "libocto_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

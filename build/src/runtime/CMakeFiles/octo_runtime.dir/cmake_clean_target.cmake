file(REMOVE_RECURSE
  "libocto_runtime.a"
)

# Empty compiler generated dependencies file for octo_runtime.
# This may be replaced when dependencies are built.

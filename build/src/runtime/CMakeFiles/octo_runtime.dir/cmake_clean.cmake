file(REMOVE_RECURSE
  "CMakeFiles/octo_runtime.dir/apex.cpp.o"
  "CMakeFiles/octo_runtime.dir/apex.cpp.o.d"
  "CMakeFiles/octo_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/octo_runtime.dir/thread_pool.cpp.o.d"
  "libocto_runtime.a"
  "libocto_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

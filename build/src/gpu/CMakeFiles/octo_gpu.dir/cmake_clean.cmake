file(REMOVE_RECURSE
  "CMakeFiles/octo_gpu.dir/device.cpp.o"
  "CMakeFiles/octo_gpu.dir/device.cpp.o.d"
  "libocto_gpu.a"
  "libocto_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocto_gpu.a"
)

# Empty compiler generated dependencies file for octo_gpu.
# This may be replaced when dependencies are built.

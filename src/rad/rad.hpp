#pragma once
// Two-moment (M1) radiation transport over the AMR tree, operator-split
// from the hydro step (paper §7 future work; scheme after Skinner &
// Ostriker 2013 with a reduced speed of light).
//
// Per sub-step:
//   1. explicit transport of (E, F) with Rusanov fluxes at speed c_hat and
//      the M1 pressure closure — subcycled to the radiation CFL within the
//      hydro dt;
//   2. implicit local matter coupling (gray opacity kappa):
//         dE/dt   = c_hat kappa rho (a_R T^4 - E)
//         dF/dt   = -c_hat kappa rho F
//         de_gas  = -dE
//      solved cell-by-cell with a Newton iteration that conserves
//      E_gas + E_rad to rounding.
//
// The radiation moments live in the regular sub-grid fields (f_erad,
// f_fr*), so ghost fill, AMR prolongation/restriction and checkpointing
// come from the AMR layer. Transport at coarse-fine boundaries is NOT
// refluxed (unlike the hydro), so radiation conservation is exact on
// uniform grids and first-order-accurate across AMR jumps (documented in
// DESIGN.md).

#include "amr/halo.hpp"
#include "amr/tree.hpp"
#include "physics/eos.hpp"
#include "runtime/thread_pool.hpp"

namespace octo::rad {

struct rad_options {
    double c_hat = 10.0;       ///< reduced speed of light (code units)
    double kappa = 0.0;        ///< gray opacity [area/mass]; 0 = transport only
    double a_rad = 1.0;        ///< radiation constant a_R in code units
    double cfl = 0.4;
    phys::ideal_gas_eos eos{};
    /// c_v such that e_gas = c_v rho T (monatomic ideal gas in code units).
    double c_v = 1.0;
    amr::boundary_kind bc = amr::boundary_kind::outflow;
    rt::thread_pool* pool = nullptr;
};

/// Advance the radiation moments (and, with kappa > 0, the gas energy) by
/// `dt`, subcycling internally to the radiation CFL. Returns the number of
/// subcycles taken.
int step(amr::tree& t, double dt, const rad_options& opt);

/// Total radiation energy over all leaves (diagnostics / conservation).
double total_radiation_energy(const amr::tree& t);

/// Equilibrium radiation energy density a_R T^4 for gas internal energy
/// density u = c_v rho T.
inline double equilibrium_erad(double u_gas, double rho, const rad_options& o) {
    const double T = u_gas / (o.c_v * rho);
    return o.a_rad * T * T * T * T;
}

} // namespace octo::rad

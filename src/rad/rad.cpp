#include "rad/rad.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "rad/m1.hpp"
#include "runtime/future.hpp"
#include "support/assert.hpp"

namespace octo::rad {

using namespace octo::amr;

namespace {

struct rad_state {
    double E;
    dvec3 F;
};

rad_state load_rad(const subgrid& g, int i, int j, int k) {
    return {g.at(f_erad, i, j, k),
            {g.at(f_frx, i, j, k), g.at(f_fry, i, j, k), g.at(f_frz, i, j, k)}};
}

/// Physical flux of (E, F) along axis a: (F_a, c^2 P . e_a).
void physical_flux(const rad_state& u, double c, int a, double out[4]) {
    double P[3][3];
    pressure_tensor(u.E, u.F, c, P);
    out[0] = u.F[a];
    out[1] = c * c * P[a][0];
    out[2] = c * c * P[a][1];
    out[3] = c * c * P[a][2];
}

/// Rusanov flux at speed c (the fastest M1 characteristic is c_hat).
void rusanov(const rad_state& L, const rad_state& R, double c, int a,
             double out[4]) {
    double fl[4], fr[4];
    physical_flux(L, c, a, fl);
    physical_flux(R, c, a, fr);
    const double uL[4] = {L.E, L.F.x, L.F.y, L.F.z};
    const double uR[4] = {R.E, R.F.x, R.F.y, R.F.z};
    for (int q = 0; q < 4; ++q) {
        out[q] = 0.5 * (fl[q] + fr[q]) - 0.5 * c * (uR[q] - uL[q]);
    }
}

/// One explicit transport substep of size dt on every leaf.
void transport_substep(tree& t, double dt, const rad_options& opt,
                       rt::thread_pool& pool) {
    fill_all_ghosts(t, opt.bc);

    // Two-pass: compute per-cell updates into scratch, then commit (the
    // stencil only needs one ghost layer, which fill_all_ghosts provides).
    std::vector<node_key> leaves = t.leaves_sfc();
    std::unordered_map<node_key, std::vector<double>> updates;
    for (const node_key k : leaves) {
        updates.emplace(k, std::vector<double>(4 * INX3, 0.0));
    }

    std::vector<rt::future<void>> fs;
    fs.reserve(leaves.size());
    for (const node_key k : leaves) {
        fs.push_back(rt::async(pool, [&t, &opt, &updates, k, dt] {
            const subgrid& g = *t.node(k).fields;
            auto& du = updates.at(k);
            const double lam = dt / g.geom.dx;
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const int I = i + H_BW, J = j + H_BW, K = kk + H_BW;
                        const rad_state c = load_rad(g, I, J, K);
                        double acc[4] = {0, 0, 0, 0};
                        for (int a = 0; a < 3; ++a) {
                            const int di = a == 0, dj = a == 1, dk = a == 2;
                            const rad_state m =
                                load_rad(g, I - di, J - dj, K - dk);
                            const rad_state p =
                                load_rad(g, I + di, J + dj, K + dk);
                            double flo[4], fhi[4];
                            rusanov(m, c, opt.c_hat, a, flo);
                            rusanov(c, p, opt.c_hat, a, fhi);
                            for (int q = 0; q < 4; ++q) {
                                acc[q] -= lam * (fhi[q] - flo[q]);
                            }
                        }
                        const int idx = 4 * ((i * INX + j) * INX + kk);
                        for (int q = 0; q < 4; ++q) du[idx + q] = acc[q];
                    }
        }));
    }
    for (auto& f : fs) f.get();

    for (const node_key k : leaves) {
        subgrid& g = *t.node(k).fields;
        const auto& du = updates.at(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const int idx = 4 * ((i * INX + j) * INX + kk);
                    double E = g.interior(f_erad, i, j, kk) + du[idx + 0];
                    dvec3 F{g.interior(f_frx, i, j, kk) + du[idx + 1],
                            g.interior(f_fry, i, j, kk) + du[idx + 2],
                            g.interior(f_frz, i, j, kk) + du[idx + 3]};
                    E = std::max(E, 0.0);
                    F = limit_flux(E, F, opt.c_hat);
                    g.interior(f_erad, i, j, kk) = E;
                    g.interior(f_frx, i, j, kk) = F.x;
                    g.interior(f_fry, i, j, kk) = F.y;
                    g.interior(f_frz, i, j, kk) = F.z;
                }
    }
}

/// Implicit local emission/absorption coupling over dt (cell-local Newton,
/// conserving u_gas + E to rounding).
void couple_matter(tree& t, double dt, const rad_options& opt,
                   rt::thread_pool& pool) {
    std::vector<node_key> leaves = t.leaves_sfc();
    std::vector<rt::future<void>> fs;
    fs.reserve(leaves.size());
    for (const node_key k : leaves) {
        fs.push_back(rt::async(pool, [&t, &opt, k, dt] {
            subgrid& g = *t.node(k).fields;
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const double rho =
                            std::max(g.interior(f_rho, i, j, kk), 1e-14);
                        const double chi = opt.c_hat * opt.kappa * rho; // 1/t
                        if (chi <= 0.0) continue;

                        // Gas internal energy from the conserved state.
                        const dvec3 s{g.interior(f_sx, i, j, kk),
                                      g.interior(f_sy, i, j, kk),
                                      g.interior(f_sz, i, j, kk)};
                        const double ke = 0.5 * norm2(s) / rho;
                        double& Egas = g.interior(f_egas, i, j, kk);
                        double& tau = g.interior(f_tau, i, j, kk);
                        double u = opt.eos.internal_energy(Egas, ke, tau);
                        double& E = g.interior(f_erad, i, j, kk);

                        // Backward-Euler in E with T(u) nonlinearity:
                        //   E' = (E + dt chi aT(u')^4) / (1 + dt chi),
                        //   u' = u + (E - E')  [total conserved]
                        // Newton on r(E') = E'(1+dt chi) - E - dt chi a T^4.
                        const double total = u + E;
                        double Ep = E;
                        for (int it = 0; it < 30; ++it) {
                            const double up = total - Ep;
                            const double T =
                                std::max(up, 0.0) / (opt.c_v * rho);
                            const double T4 = T * T * T * T;
                            const double r =
                                Ep * (1.0 + dt * chi) - E - dt * chi * opt.a_rad * T4;
                            const double dT4dEp =
                                -4.0 * T * T * T / (opt.c_v * rho);
                            const double drdEp =
                                (1.0 + dt * chi) - dt * chi * opt.a_rad * dT4dEp;
                            const double step = r / drdEp;
                            Ep -= step;
                            Ep = std::clamp(Ep, 0.0, total);
                            if (std::abs(step) < 1e-14 * std::max(Ep, 1e-30)) {
                                break;
                            }
                        }
                        const double dE = Ep - E;
                        E = Ep;
                        Egas -= dE; // total energy conserved by construction
                        const double u_new = std::max(u - dE, 0.0);
                        tau = opt.eos.tau_from_internal(u_new);

                        // Flux absorption (exact exponential decay).
                        const double damp = std::exp(-dt * chi);
                        g.interior(f_frx, i, j, kk) *= damp;
                        g.interior(f_fry, i, j, kk) *= damp;
                        g.interior(f_frz, i, j, kk) *= damp;
                    }
        }));
    }
    for (auto& f : fs) f.get();
}

} // namespace

int step(tree& t, double dt, const rad_options& opt) {
    OCTO_ASSERT(dt > 0.0 && opt.c_hat > 0.0);
    rt::thread_pool& pool =
        opt.pool != nullptr ? *opt.pool : rt::thread_pool::global();

    // Radiation CFL on the finest level.
    double dx_min = t.root_geometry().dx;
    for (const node_key k : t.leaves_sfc()) {
        dx_min = std::min(dx_min, t.geometry(k).dx);
    }
    const double dt_rad = opt.cfl * dx_min / opt.c_hat;
    const int nsub = std::max(1, static_cast<int>(std::ceil(dt / dt_rad)));
    const double h = dt / nsub;

    for (int s = 0; s < nsub; ++s) {
        transport_substep(t, h, opt, pool);
        if (opt.kappa > 0.0) couple_matter(t, h, opt, pool);
    }
    return nsub;
}

double total_radiation_energy(const tree& t) {
    double e = 0;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& g = *t.node(k).fields;
            const double V = g.geom.cell_volume();
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        e += V * g.interior(f_erad, i, j, kk);
                    }
        }
    }
    return e;
}

} // namespace octo::rad

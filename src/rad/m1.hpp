#pragma once
// The M1 closure of the two-moment radiation transport scheme — the
// extension the paper announces in §7: "we have already developed a
// radiation transport module for Octo-Tiger based on the two moment
// approach adapted by [Skinner & Ostriker 2013]. This will be required to
// simulate the V1309 merger with high accuracy."
//
// The two evolved moments are the radiation energy density E and flux F.
// The pressure tensor P is closed with the Levermore M1 interpolation
// between the diffusion limit (P = E/3 I) and free streaming (P = E n n):
//     f   = |F| / (c E)                      (reduced flux, 0 <= f <= 1)
//     chi = (3 + 4 f^2) / (5 + 2 sqrt(4 - 3 f^2))
//     P   = E [ (1-chi)/2 I + (3 chi - 1)/2 n n ]

#include <algorithm>
#include <cmath>

#include "support/vec3.hpp"

namespace octo::rad {

/// Eddington factor chi(f) of the M1 closure. chi(0) = 1/3 (diffusion),
/// chi(1) = 1 (free streaming), monotone in between.
inline double eddington_factor(double f) {
    f = std::clamp(f, 0.0, 1.0);
    return (3.0 + 4.0 * f * f) / (5.0 + 2.0 * std::sqrt(4.0 - 3.0 * f * f));
}

/// Radiation pressure tensor (symmetric, row-major 3x3) for energy density
/// E and flux Fr, with radiation speed c.
inline void pressure_tensor(double E, const dvec3& Fr, double c, double P[3][3]) {
    const double fnorm = norm(Fr);
    const double f = E > 0.0 ? std::min(fnorm / (c * E), 1.0) : 0.0;
    const double chi = eddington_factor(f);
    const double diag = 0.5 * (1.0 - chi) * E;
    const double aniso = 0.5 * (3.0 * chi - 1.0) * E;
    dvec3 n{0, 0, 0};
    if (fnorm > 0.0) n = Fr / fnorm;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            P[i][j] = (i == j ? diag : 0.0) + aniso * n[i] * n[j];
        }
    }
}

/// Enforce the flux-limiting |F| <= c E (realizability of the M1 moments).
inline dvec3 limit_flux(double E, const dvec3& Fr, double c) {
    const double fmax = c * std::max(E, 0.0);
    const double fn = norm(Fr);
    if (fn <= fmax || fn == 0.0) return Fr;
    return Fr * (fmax / fn);
}

} // namespace octo::rad

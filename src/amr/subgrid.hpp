#pragma once
// The per-octree-node field container: an 8^3 block of evolved variables
// with a 3-cell ghost shell, stored struct-of-arrays (one contiguous array
// per field) as required by the vectorized kernels (paper §4.3: "we changed
// it to a stencil-based approach and are now utilizing a struct-of-arrays
// datastructure").

#include <cstddef>

#include "amr/config.hpp"
#include "support/aligned.hpp"
#include "support/assert.hpp"
#include "support/vec3.hpp"

namespace octo::amr {

/// Geometry of a sub-grid: position of its lower corner and cell width.
struct box_geometry {
    dvec3 origin;    ///< lower corner of the *interior* region
    double dx = 1.0; ///< cell width

    /// Center of interior cell (i, j, k), 0-based interior indices.
    dvec3 cell_center(int i, int j, int k) const {
        return {origin.x + (i + 0.5) * dx, origin.y + (j + 0.5) * dx,
                origin.z + (k + 0.5) * dx};
    }
    double cell_volume() const { return dx * dx * dx; }
};

class subgrid {
  public:
    subgrid() : data_(static_cast<std::size_t>(n_fields) * NX3, 0.0) {}

    /// Flat index of cell (i, j, k) where indices include ghosts: 0..NX-1.
    static constexpr int index(int i, int j, int k) {
        return (i * NX + j) * NX + k;
    }
    /// Flat index of an interior cell, 0-based interior coordinates.
    static constexpr int interior_index(int i, int j, int k) {
        return index(i + H_BW, j + H_BW, k + H_BW);
    }
    static constexpr bool is_interior(int i, int j, int k) {
        return i >= H_BW && i < H_BW + INX && j >= H_BW && j < H_BW + INX &&
               k >= H_BW && k < H_BW + INX;
    }

    double* field_data(int f) {
        OCTO_ASSERT(f >= 0 && f < n_fields);
        return data_.data() + static_cast<std::size_t>(f) * NX3;
    }
    const double* field_data(int f) const {
        OCTO_ASSERT(f >= 0 && f < n_fields);
        return data_.data() + static_cast<std::size_t>(f) * NX3;
    }

    double& at(int f, int i, int j, int k) { return field_data(f)[index(i, j, k)]; }
    double at(int f, int i, int j, int k) const { return field_data(f)[index(i, j, k)]; }

    double& interior(int f, int i, int j, int k) {
        return field_data(f)[interior_index(i, j, k)];
    }
    double interior(int f, int i, int j, int k) const {
        return field_data(f)[interior_index(i, j, k)];
    }

    box_geometry geom;

    /// Sum of a field over the interior (times cell volume gives the integral).
    double interior_sum(int f) const;

    /// Set every value (ghosts included) of every field to zero.
    void clear();

  private:
    aligned_vector<double> data_;
};

} // namespace octo::amr

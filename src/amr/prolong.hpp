#pragma once
// Conservative restriction (fine -> coarse) and prolongation (coarse ->
// fine) operators. The paper's scaling runs are started by "conservative
// interpolation of the evolved variables" from a coarser restart file (§6.2);
// these are the operators that do that, and they also feed the FMM (interior
// nodes hold restricted data) and AMR ghost fills.
//
// Angular momentum bookkeeping: the spin fields (lx, ly, lz) hold angular
// momentum *about each cell's own center*. Moving momentum between grid
// levels changes which center the orbital part is measured about, so both
// operators shift the orbital term (r_child - r_coarse) x s into/out of the
// spin field. This keeps the total inertial angular momentum
//   L = sum_cells V * (r x s + l)
// exactly invariant under restriction and prolongation — one half of the
// machine-precision angular momentum conservation claim (paper §4.2).

#include "amr/subgrid.hpp"

namespace octo::amr {

/// Restrict the child's interior into the parent's octant region
/// (each parent cell becomes the average of its 8 children).
void restrict_into_parent(const subgrid& child, int octant, subgrid& parent);

/// Fill the child's interior from the parent's octant region.
/// With `slopes`, a minmod-limited linear profile is used (still exactly
/// conservative: slopes integrate to zero over each coarse cell).
void prolong_from_parent(const subgrid& parent, int octant, subgrid& child,
                         bool slopes = true);

/// Inertial angular momentum of a sub-grid's interior about the origin:
/// sum of V * (r x s + l). Used by conservation tests.
dvec3 interior_angular_momentum(const subgrid& g);

/// Linear momentum of the interior: sum of V * s.
dvec3 interior_momentum(const subgrid& g);

} // namespace octo::amr

#include "amr/partition.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace octo::amr {

partition_stats partition_sfc(tree& t, int nranks) {
    OCTO_ASSERT(nranks >= 1);
    partition_stats stats;
    stats.leaves_per_rank.assign(static_cast<std::size_t>(nranks), 0);
    stats.nodes_per_rank.assign(static_cast<std::size_t>(nranks), 0);
    stats.refined_per_rank.assign(static_cast<std::size_t>(nranks), 0);
    stats.cross_pairs_per_rank.assign(static_cast<std::size_t>(nranks), 0);

    const auto leaves = t.leaves_sfc();
    const std::size_t n = leaves.size();

    // Contiguous equal chunks along the curve.
    for (std::size_t i = 0; i < n; ++i) {
        const int rank = static_cast<int>((i * static_cast<std::size_t>(nranks)) / n);
        t.node(leaves[i]).owner = rank;
        ++stats.leaves_per_rank[static_cast<std::size_t>(rank)];
    }

    // Interior nodes inherit the owner of their first child, bottom-up.
    for (int level = t.max_level() - 1; level >= 0; --level) {
        for (const node_key k : t.levels()[level]) {
            auto& nd = t.node(k);
            if (nd.refined) nd.owner = t.node(key_child(k, 0)).owner;
        }
    }
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            const auto& nd = t.node(k);
            ++stats.nodes_per_rank[static_cast<std::size_t>(nd.owner)];
            if (nd.refined) {
                ++stats.refined_per_rank[static_cast<std::size_t>(nd.owner)];
            }
        }
    }

    // Count same-level neighbor pairs and how many cross rank boundaries.
    // Each unordered pair is counted once (offset lexicographically positive).
    for (int level = 0; level <= t.max_level(); ++level) {
        for (const node_key k : t.levels()[level]) {
            for (int dx = -1; dx <= 1; ++dx)
                for (int dy = -1; dy <= 1; ++dy)
                    for (int dz = -1; dz <= 1; ++dz) {
                        if (dx == 0 && dy == 0 && dz == 0) continue;
                        if (dx < 0 || (dx == 0 && (dy < 0 || (dy == 0 && dz < 0)))) {
                            continue; // count each pair once
                        }
                        const node_key nb = key_neighbor(k, {dx, dy, dz});
                        if (nb == invalid_key || !t.contains(nb)) continue;
                        ++stats.total_neighbor_pairs;
                        const int ra = t.node(k).owner;
                        const int rb = t.node(nb).owner;
                        if (ra != rb) {
                            ++stats.cross_rank_neighbor_pairs;
                            ++stats.cross_pairs_per_rank[static_cast<std::size_t>(ra)];
                            ++stats.cross_pairs_per_rank[static_cast<std::size_t>(rb)];
                        }
                    }
        }
    }
    return stats;
}

} // namespace octo::amr

#include "amr/partition.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/apex.hpp"
#include "support/assert.hpp"

namespace octo::amr {

namespace {

/// Interior nodes inherit the owner of their first child, bottom-up — the
/// paper's placement rule that keeps the M2M/L2L sweeps mostly local.
void assign_interior_owners(tree& t) {
    for (int level = t.max_level() - 1; level >= 0; --level) {
        for (const node_key k : t.levels()[level]) {
            auto& nd = t.node(k);
            if (nd.refined) nd.owner = t.node(key_child(k, 0)).owner;
        }
    }
}

/// Assign leaf owners from contiguous split points: leaf i belongs to rank r
/// iff bounds[r] <= i < bounds[r+1].
void assign_from_bounds(tree& t, const std::vector<node_key>& leaves,
                        const std::vector<std::size_t>& bounds, int nranks) {
    int rank = 0;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        while (rank + 1 < nranks && i >= bounds[static_cast<std::size_t>(rank) + 1]) {
            ++rank;
        }
        t.node(leaves[i]).owner = rank;
    }
    assign_interior_owners(t);
}

/// Current contiguous split points of the owner assignment along the curve:
/// bounds[r] = first leaf index owned by a rank >= r.
std::vector<std::size_t> current_bounds(const tree& t,
                                        const std::vector<node_key>& leaves,
                                        int nranks) {
    std::vector<std::size_t> bounds(static_cast<std::size_t>(nranks) + 1,
                                    leaves.size());
    bounds[0] = 0;
    int prev = 0;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const int r = t.node(leaves[i]).owner;
        OCTO_ASSERT_MSG(r >= 0 && r < nranks, "owner out of range");
        OCTO_ASSERT_MSG(r >= prev, "owners not contiguous along the SFC");
        for (int b = prev + 1; b <= r; ++b) {
            bounds[static_cast<std::size_t>(b)] = i;
        }
        prev = r;
    }
    return bounds;
}

/// Weighted ideal split points: bounds[r] = smallest i with
/// prefix[i] >= total * r / nranks, clamped so every rank is nonempty when
/// there are enough leaves.
std::vector<std::size_t> ideal_bounds(const std::vector<double>& prefix,
                                      int nranks) {
    const std::size_t n = prefix.size() - 1;
    const double total = prefix.back();
    std::vector<std::size_t> bounds(static_cast<std::size_t>(nranks) + 1, n);
    bounds[0] = 0;
    for (int r = 1; r < nranks; ++r) {
        const double target = total * static_cast<double>(r) /
                              static_cast<double>(nranks);
        const auto it =
            std::lower_bound(prefix.begin(), prefix.end(), target);
        auto b = static_cast<std::size_t>(it - prefix.begin());
        if (n >= static_cast<std::size_t>(nranks)) {
            // Keep every rank nonempty: rank r-1 ends at >= r, and enough
            // leaves must remain for ranks r..nranks-1.
            b = std::max<std::size_t>(b, static_cast<std::size_t>(r));
            b = std::min<std::size_t>(b, n - static_cast<std::size_t>(nranks - r));
        }
        bounds[static_cast<std::size_t>(r)] =
            std::max(b, bounds[static_cast<std::size_t>(r) - 1]);
    }
    return bounds;
}

std::vector<double> weight_prefix(const std::vector<double>& w) {
    std::vector<double> prefix(w.size() + 1, 0.0);
    for (std::size_t i = 0; i < w.size(); ++i) {
        OCTO_ASSERT_MSG(w[i] > 0.0, "leaf weights must be positive");
        prefix[i + 1] = prefix[i] + w[i];
    }
    return prefix;
}

double max_rank_cost(const tree& t, const std::vector<node_key>& leaves,
                     const std::vector<double>& w, int nranks) {
    std::vector<double> cost(static_cast<std::size_t>(nranks), 0.0);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        cost[static_cast<std::size_t>(t.node(leaves[i]).owner)] += w[i];
    }
    return *std::max_element(cost.begin(), cost.end());
}

} // namespace

double partition_stats::total_cost() const {
    double sum = 0;
    if (!cost_per_rank.empty()) {
        for (const double c : cost_per_rank) sum += c;
    } else {
        for (const auto n : leaves_per_rank) sum += static_cast<double>(n);
    }
    return sum;
}

double partition_stats::max_cost() const {
    double mx = 0;
    if (!cost_per_rank.empty()) {
        for (const double c : cost_per_rank) mx = std::max(mx, c);
    } else {
        for (const auto n : leaves_per_rank) {
            mx = std::max(mx, static_cast<double>(n));
        }
    }
    return mx;
}

double partition_stats::imbalance_pct() const {
    const std::size_t nranks = leaves_per_rank.size();
    if (nranks == 0) return 0;
    const double mean = total_cost() / static_cast<double>(nranks);
    return mean > 0 ? 100.0 * (max_cost() / mean - 1.0) : 0.0;
}

partition_stats partition_accounting(const tree& t, int nranks,
                                     const std::vector<double>* leaf_weights) {
    OCTO_ASSERT(nranks >= 1);
    partition_stats stats;
    stats.leaves_per_rank.assign(static_cast<std::size_t>(nranks), 0);
    stats.nodes_per_rank.assign(static_cast<std::size_t>(nranks), 0);
    stats.refined_per_rank.assign(static_cast<std::size_t>(nranks), 0);
    stats.cross_pairs_per_rank.assign(static_cast<std::size_t>(nranks), 0);

    const auto leaves = t.leaves_sfc();
    if (leaf_weights != nullptr) {
        OCTO_ASSERT(leaf_weights->size() == leaves.size());
        stats.cost_per_rank.assign(static_cast<std::size_t>(nranks), 0.0);
    }
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const int rank = t.node(leaves[i]).owner;
        OCTO_ASSERT_MSG(rank >= 0 && rank < nranks, "owner out of range");
        ++stats.leaves_per_rank[static_cast<std::size_t>(rank)];
        if (leaf_weights != nullptr) {
            stats.cost_per_rank[static_cast<std::size_t>(rank)] +=
                (*leaf_weights)[i];
        }
    }

    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            const auto& nd = t.node(k);
            ++stats.nodes_per_rank[static_cast<std::size_t>(nd.owner)];
            if (nd.refined) {
                ++stats.refined_per_rank[static_cast<std::size_t>(nd.owner)];
            }
        }
    }

    // Count same-level neighbor pairs and how many cross rank boundaries.
    // Each unordered pair is counted once (offset lexicographically positive).
    for (int level = 0; level <= t.max_level(); ++level) {
        for (const node_key k : t.levels()[level]) {
            for (int dx = -1; dx <= 1; ++dx)
                for (int dy = -1; dy <= 1; ++dy)
                    for (int dz = -1; dz <= 1; ++dz) {
                        if (dx == 0 && dy == 0 && dz == 0) continue;
                        if (dx < 0 || (dx == 0 && (dy < 0 || (dy == 0 && dz < 0)))) {
                            continue; // count each pair once
                        }
                        const node_key nb = key_neighbor(k, {dx, dy, dz});
                        if (nb == invalid_key || !t.contains(nb)) continue;
                        ++stats.total_neighbor_pairs;
                        const int ra = t.node(k).owner;
                        const int rb = t.node(nb).owner;
                        if (ra != rb) {
                            ++stats.cross_rank_neighbor_pairs;
                            ++stats.cross_pairs_per_rank[static_cast<std::size_t>(ra)];
                            ++stats.cross_pairs_per_rank[static_cast<std::size_t>(rb)];
                        }
                    }
        }
    }
    return stats;
}

partition_stats partition_sfc(tree& t, int nranks) {
    OCTO_ASSERT(nranks >= 1);
    const auto leaves = t.leaves_sfc();
    const std::size_t n = leaves.size();

    // Contiguous equal chunks along the curve.
    for (std::size_t i = 0; i < n; ++i) {
        const int rank = static_cast<int>((i * static_cast<std::size_t>(nranks)) / n);
        t.node(leaves[i]).owner = rank;
    }
    assign_interior_owners(t);
    t.bump_partition_revision();
    return partition_accounting(t, nranks);
}

partition_stats partition_sfc_weighted(tree& t, int nranks,
                                       const std::vector<double>& leaf_weights) {
    OCTO_ASSERT(nranks >= 1);
    const auto leaves = t.leaves_sfc();
    OCTO_ASSERT(leaf_weights.size() == leaves.size());
    const auto prefix = weight_prefix(leaf_weights);
    const auto bounds = ideal_bounds(prefix, nranks);
    assign_from_bounds(t, leaves, bounds, nranks);
    t.bump_partition_revision();
    return partition_accounting(t, nranks, &leaf_weights);
}

rebalance_result rebalance_sfc(tree& t, int nranks,
                               const std::vector<double>& leaf_weights,
                               const rebalance_options& opt) {
    OCTO_ASSERT(nranks >= 1);
    OCTO_ASSERT(opt.max_migration_fraction >= 0.0);
    const auto leaves = t.leaves_sfc();
    const std::size_t n = leaves.size();
    OCTO_ASSERT(leaf_weights.size() == n);

    rebalance_result res;
    res.leaf_count = n;
    res.max_cost_before = max_rank_cost(t, leaves, leaf_weights, nranks);

    const auto cur = current_bounds(t, leaves, nranks);
    const auto prefix = weight_prefix(leaf_weights);
    const auto ideal = ideal_bounds(prefix, nranks);

    // Bounded incremental movement as an advancing FRONTIER: split points
    // 1..k jump straight to their weighted-ideal positions, points beyond the
    // frontier stay where they are (clamped monotone, which can leave ranks
    // in the wave's wake transiently empty — harmless, they refill as the
    // frontier passes):
    //
    //     next[r] = ideal[r]                 for r <= k
    //     next[r] = max(cur[r], next[r-1])   for r >  k
    //
    // A leaf overtaken by the frontier changes owner ONCE, directly to its
    // final rank, no matter how many split points pass it — so the migration
    // volume is the owner-mismatch between cur and next, not the split-point
    // displacement, and convergence takes ~(total mismatch)/budget rounds.
    // Schemes that move every point a little each round (proportional or
    // uniform caps) hand the same leaf rank-to-rank round after round and
    // converge orders of magnitude slower on big trees. The frontier k is
    // the largest whose measured mismatch fits the budget (binary search +
    // a downward verify sweep).
    const auto budget = static_cast<std::size_t>(
        opt.max_migration_fraction * static_cast<double>(n));

    const auto bounds_for = [&](int k) {
        std::vector<std::size_t> b(static_cast<std::size_t>(nranks) + 1, n);
        b[0] = 0;
        for (int r = 1; r < nranks; ++r) {
            const auto ur = static_cast<std::size_t>(r);
            b[ur] = r <= k ? ideal[ur] : std::max(cur[ur], b[ur - 1]);
        }
        return b;
    };
    const auto mismatch = [&](const std::vector<std::size_t>& b) {
        // Leaves keeping their owner: per rank, the overlap of its old and
        // new half-open index ranges.
        std::size_t keep = 0;
        for (int r = 0; r < nranks; ++r) {
            const auto ur = static_cast<std::size_t>(r);
            const std::size_t lo = std::max(cur[ur], b[ur]);
            const std::size_t hi = std::min(cur[ur + 1], b[ur + 1]);
            if (hi > lo) keep += hi - lo;
        }
        return n - keep;
    };

    res.budget_limited = mismatch(bounds_for(nranks - 1)) > budget;
    int best = nranks - 1;
    if (res.budget_limited) {
        int lo = 0;
        int hi = nranks - 1;
        while (lo < hi) {
            const int mid = lo + (hi - lo + 1) / 2;
            if (mismatch(bounds_for(mid)) <= budget) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        // Mismatch is not guaranteed strictly monotone in k around clamp
        // chains; walk down until the budget provably holds.
        while (lo > 0 && mismatch(bounds_for(lo)) > budget) --lo;
        best = lo;
    }
    auto next = bounds_for(best);

    if (res.budget_limited && best + 1 < nranks) {
        // Spend the leftover budget moving the boundary point partially
        // toward its ideal. Without this a budget smaller than one rank's
        // full reassignment stalls forever. Each index step reassigns at
        // most one leaf, so this never exceeds the budget.
        std::size_t left = budget - std::min(budget, mismatch(next));
        const auto ur = static_cast<std::size_t>(best) + 1;
        if (ideal[ur] > next[ur]) {
            next[ur] += std::min({ideal[ur] - next[ur], left,
                                  next[ur + 1] - next[ur]});
        } else if (ideal[ur] < next[ur]) {
            next[ur] -= std::min({next[ur] - ideal[ur], left,
                                  next[ur] - next[ur - 1]});
        }
    }

    // Record owner changes, then apply.
    int rank = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (rank + 1 < nranks && i >= next[static_cast<std::size_t>(rank) + 1]) {
            ++rank;
        }
        const int old = t.node(leaves[i]).owner;
        if (old != rank) {
            res.migrations.push_back({leaves[i], old, rank});
        }
    }
    assign_from_bounds(t, leaves, next, nranks);
    t.bump_partition_revision();

    res.stats = partition_accounting(t, nranks, &leaf_weights);
    res.max_cost_after = res.stats.max_cost();
    res.migration_fraction =
        n > 0 ? static_cast<double>(res.migrations.size()) /
                    static_cast<double>(n)
              : 0.0;
    std::vector<bool> touched(static_cast<std::size_t>(nranks), false);
    for (const auto& m : res.migrations) {
        touched[static_cast<std::size_t>(m.from)] = true;
        touched[static_cast<std::size_t>(m.to)] = true;
    }
    for (int r = 0; r < nranks; ++r) {
        if (touched[static_cast<std::size_t>(r)]) res.touched_ranks.push_back(r);
    }

    rt::apex_count("lb.rebalances");
    rt::apex_count("lb.migrated_subgrids", res.migrations.size());
    rt::apex_gauge("lb.last_migration_bp",
                   static_cast<std::uint64_t>(1e4 * res.migration_fraction));
    rt::apex_gauge("lb.imbalance_pct",
                   static_cast<std::uint64_t>(
                       std::max(0.0, res.stats.imbalance_pct())));
    return res;
}

// ---- live-rank variants (ISSUE 10) ------------------------------------------

namespace {

void validate_live(const std::vector<int>& live) {
    OCTO_ASSERT_MSG(!live.empty(), "no live ranks");
    for (std::size_t i = 0; i < live.size(); ++i) {
        OCTO_ASSERT(live[i] >= 0);
        OCTO_ASSERT_MSG(i == 0 || live[i] > live[i - 1],
                        "live ranks must be ascending and unique");
    }
}

bool is_identity(const std::vector<int>& live) {
    for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i] != static_cast<int>(i)) return false;
    }
    return true;
}

/// owner = live[owner] for every node (dense -> real rank ids).
void relabel_dense_to_live(tree& t, const std::vector<int>& live) {
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            auto& nd = t.node(k);
            OCTO_ASSERT(nd.owner >= 0 &&
                        nd.owner < static_cast<int>(live.size()));
            nd.owner = live[static_cast<std::size_t>(nd.owner)];
        }
    }
}

/// owner = index-of(owner) in live (real -> dense). Asserts every current
/// owner IS live: a dead owner here means repartition_onto was skipped.
void relabel_live_to_dense(tree& t, const std::vector<int>& live) {
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            auto& nd = t.node(k);
            const auto it =
                std::lower_bound(live.begin(), live.end(), nd.owner);
            OCTO_ASSERT_MSG(it != live.end() && *it == nd.owner,
                            "owner is not a live rank");
            nd.owner = static_cast<int>(it - live.begin());
        }
    }
}

} // namespace

partition_stats partition_sfc_weighted(tree& t,
                                       const std::vector<int>& live_ranks,
                                       const std::vector<double>& leaf_weights) {
    validate_live(live_ranks);
    auto stats = partition_sfc_weighted(
        t, static_cast<int>(live_ranks.size()), leaf_weights);
    if (!is_identity(live_ranks)) relabel_dense_to_live(t, live_ranks);
    return stats;
}

rebalance_result rebalance_sfc(tree& t, const std::vector<int>& live_ranks,
                               const std::vector<double>& leaf_weights,
                               const rebalance_options& opt) {
    validate_live(live_ranks);
    if (is_identity(live_ranks)) {
        return rebalance_sfc(t, static_cast<int>(live_ranks.size()),
                             leaf_weights, opt);
    }
    relabel_live_to_dense(t, live_ranks);
    auto res = rebalance_sfc(t, static_cast<int>(live_ranks.size()),
                             leaf_weights, opt);
    relabel_dense_to_live(t, live_ranks);
    for (auto& m : res.migrations) {
        m.from = live_ranks[static_cast<std::size_t>(m.from)];
        m.to = live_ranks[static_cast<std::size_t>(m.to)];
    }
    for (auto& r : res.touched_ranks) {
        r = live_ranks[static_cast<std::size_t>(r)];
    }
    return res;
}

recovery_partition repartition_onto(tree& t, const std::vector<int>& live_ranks,
                                    const std::vector<double>& leaf_weights) {
    validate_live(live_ranks);
    const auto leaves = t.leaves_sfc();
    std::vector<int> old(leaves.size());
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        old[i] = t.node(leaves[i]).owner;
    }
    recovery_partition rp;
    rp.stats = partition_sfc_weighted(t, live_ranks, leaf_weights);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const int now = t.node(leaves[i]).owner;
        if (now != old[i]) rp.migrations.push_back({leaves[i], old[i], now});
    }
    return rp;
}

} // namespace octo::amr

#include "amr/cost_model.hpp"

#include <algorithm>

#include "runtime/apex.hpp"
#include "support/assert.hpp"

namespace octo::amr {

cost_params cost_params_from_apex(cost_params base) {
    auto& apex = rt::apex_registry::instance();
    // FMM-vs-hydro task mix: fmm.dag_tasks counts every kernel node of the
    // gravity DAG, hydro.stage_tasks every futurized hydro stage task. When
    // the FMM dominates the measured mix, interior (multipole) work is worth
    // proportionally more than the leaf base cost.
    const auto fmm_tasks = apex.counter("fmm.dag_tasks");
    const auto hydro_tasks = apex.counter("hydro.stage_tasks");
    if (fmm_tasks > 0 && hydro_tasks > 0) {
        const double mix = static_cast<double>(fmm_tasks) /
                           static_cast<double>(hydro_tasks);
        base.multipole_cost *= std::clamp(mix, 0.25, 4.0);
    }
    // Halo traffic rate: the per-parcel software cost grows with protocol
    // work (retries resend full payloads). Scale the halo term by the
    // observed retransmission overhead ratio.
    const auto sent = apex.counter("net.parcels_sent");
    const auto retries = apex.counter("net.retries");
    if (sent > 0) {
        base.halo_pair_cost *=
            1.0 + static_cast<double>(retries) / static_cast<double>(sent);
    }
    // GPU aggregation: dense batches amortize launches; when the measured
    // mean batch is small, per-kernel offload costs more per subgrid.
    const auto batch = apex.counter("gpu.batch_size");
    if (batch > 0) {
        base.monopole_cost *= 1.0 + 1.0 / static_cast<double>(batch);
    }
    return base;
}

cost_model::cost_model(cost_params p) : p_(p) {
    OCTO_ASSERT(p_.ewma_alpha > 0.0 && p_.ewma_alpha <= 1.0);
}

void cost_model::observe(node_key k, double cost) {
    OCTO_ASSERT(cost > 0.0);
    auto it = w_.find(k);
    if (it == w_.end()) {
        w_.emplace(k, cost);
        sum_ += cost;
        return;
    }
    const double next = (1.0 - p_.ewma_alpha) * it->second + p_.ewma_alpha * cost;
    sum_ += next - it->second;
    it->second = next;
}

void cost_model::observe_step(const tree& t, const partition_stats& parts) {
    const auto leaves = t.leaves_sfc();
    std::unordered_map<node_key, double> sample;
    sample.reserve(leaves.size());
    for (const node_key k : leaves) sample.emplace(k, p_.monopole_cost);

    // Interior multipole kernels: charged to the first-descendant leaf — the
    // leaf whose rank the interior node lives with.
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (!t.node(k).refined) continue;
            sample[first_descendant_leaf(t, k)] += p_.multipole_cost;
        }
    }

    // Cross-rank halo pairs incident on each leaf under the CURRENT owners.
    if (parts.cross_rank_neighbor_pairs > 0) {
        for (const node_key k : leaves) {
            const int own = t.node(k).owner;
            double pairs = 0;
            for (int dx = -1; dx <= 1; ++dx)
                for (int dy = -1; dy <= 1; ++dy)
                    for (int dz = -1; dz <= 1; ++dz) {
                        if (dx == 0 && dy == 0 && dz == 0) continue;
                        const node_key nb = key_neighbor(k, {dx, dy, dz});
                        if (nb == invalid_key || !t.contains(nb)) continue;
                        if (t.node(nb).owner != own) pairs += 1.0;
                    }
            sample[k] += p_.halo_pair_cost * pairs;
        }
    }

    // Feed the EWMA in SFC order: `sample` is unordered, and observe() folds
    // each cost into sum_, so hash-order iteration would tie the fallback
    // weight to the hash seed — a restarted-vs-not bit-identity hazard.
    for (const node_key k : leaves) observe(k, sample.at(k));
    rt::apex_count("lb.cost_updates");
}

double cost_model::fallback() const {
    return w_.empty() ? 1.0 : sum_ / static_cast<double>(w_.size());
}

double cost_model::weight(node_key k) const {
    const auto it = w_.find(k);
    return it != w_.end() ? it->second : fallback();
}

std::vector<double> cost_model::leaf_weights(const tree& t) const {
    const auto leaves = t.leaves_sfc();
    std::vector<double> w;
    w.reserve(leaves.size());
    for (const node_key k : leaves) w.push_back(weight(k));
    return w;
}

} // namespace octo::amr

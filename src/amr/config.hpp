#pragma once
// Grid configuration constants shared by the AMR, hydro and FMM modules.
//
// Paper §4.2: "Each node is an N^3 sub-grid (with N = 8 for all runs in this
// paper) containing the evolved variables, and can be further refined into
// eight child nodes."

#include <array>
#include <cstddef>

namespace octo::amr {

/// Cells per sub-grid dimension (the paper's N).
inline constexpr int INX = 8;
/// Ghost (halo) width for the hydro solver. PPM face reconstruction needs
/// two cells on each side of a face, and fluxes are needed one cell into the
/// ghost region for the reconstruction at sub-grid boundaries: 3 suffices.
inline constexpr int H_BW = 3;
/// Total cells per dimension including ghosts.
inline constexpr int NX = INX + 2 * H_BW;
/// Cells per sub-grid (interior only): 8^3 = 512 (paper §4.3).
inline constexpr int INX3 = INX * INX * INX;
/// Cells per sub-grid including ghosts.
inline constexpr int NX3 = NX * NX * NX;

/// Evolved fields (paper §4.2): mass density, momentum density, gas total
/// energy, entropy tracer tau, spin angular momentum density (the three
/// extra variables of the Després–Labourasse angular momentum scheme), and
/// five passive scalars tracking fluid fractions of the V1309 scenario.
enum field : int {
    f_rho = 0,
    f_sx,
    f_sy,
    f_sz,
    f_egas,
    f_tau,
    f_lx, ///< spin angular momentum about x
    f_ly,
    f_lz,
    f_frac_accretor_core,
    f_frac_accretor_env,
    f_frac_donor_core,
    f_frac_donor_env,
    f_frac_atmosphere,
    // Radiation moments (the paper's §7 extension: "we have already
    // developed a radiation transport module for Octo-Tiger based on the
    // two moment approach"). These ride on the same sub-grids (ghost fill,
    // prolongation, checkpointing for free) but are transported by the
    // radiation solver, NOT by the hydro fluxes.
    f_erad, ///< radiation energy density
    f_frx,  ///< radiation flux
    f_fry,
    f_frz,
    n_fields
};

/// Human-readable field names (I/O, diagnostics).
const char* field_name(int f);

/// Fields evolved with a conservative flux update (all of them).
inline constexpr int n_passive = 5;
inline constexpr int first_passive = f_frac_accretor_core;

} // namespace octo::amr

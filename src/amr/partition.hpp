#pragma once
// Space-filling-curve partitioner (paper §4.2: "These octree nodes are
// distributed onto the compute nodes using a space filling curve"). Leaves
// are laid out in Morton order and split into contiguous chunks; interior
// nodes live with their first child so that the bottom-up and top-down FMM
// passes are mostly local.
//
// ISSUE 8 extends the equal-count split of the paper with cost-driven
// dynamic load balancing:
//   * partition_sfc_weighted — contiguous Morton split of per-leaf WEIGHTS
//     (the cost model's EWMA estimates), minimizing the max-rank cost,
//   * rebalance_sfc — incremental re-partitioning: the existing split points
//     are NUDGED toward the weighted ideal subject to a bounded-migration
//     constraint (at most max_migration_fraction of the leaves change owner
//     per call), so one rebalance can never thrash the whole tree.
// Both preserve the two structural invariants of the paper's partition:
// rank ownership is contiguous along the curve, and every interior node
// lives with its first child.

#include <cstdint>
#include <vector>

#include "amr/tree.hpp"

namespace octo::amr {

struct partition_stats {
    std::vector<std::size_t> leaves_per_rank;
    /// All octree nodes (leaves + interior) per rank: interior nodes run
    /// same-level FMM kernels too.
    std::vector<std::size_t> nodes_per_rank;
    /// Refined (interior) nodes per rank (multipole-kernel work).
    std::vector<std::size_t> refined_per_rank;
    /// Cross-rank neighbor pairs incident to each rank (a pair crossing
    /// ranks r1-r2 counts once for each endpoint): per-rank halo traffic.
    std::vector<std::uint64_t> cross_pairs_per_rank;
    /// Modeled cost per rank: the sum of the per-leaf weights owned by each
    /// rank. Filled only when the caller supplied weights (weighted split,
    /// rebalance, or partition_accounting with weights); empty otherwise —
    /// consumers fall back to the structural counts above.
    std::vector<double> cost_per_rank;
    /// Same-level neighbor pairs whose endpoints live on different ranks —
    /// each is one halo exchange per direction per timestep.
    std::uint64_t cross_rank_neighbor_pairs = 0;
    /// Total same-level neighbor pairs (local + remote).
    std::uint64_t total_neighbor_pairs = 0;

    double total_cost() const;
    double max_cost() const;
    /// max_cost / (total_cost / nranks) - 1, in percent: 0 = perfectly
    /// balanced, 100 = the hottest rank carries twice the mean.
    double imbalance_pct() const;
};

/// Assign `node.owner` for every node of the tree across `nranks` ranks,
/// splitting the curve into equal-COUNT chunks (the paper's §4.2 policy).
/// Returns per-rank statistics used by the cluster simulator.
partition_stats partition_sfc(tree& t, int nranks);

/// Weighted split: contiguous Morton chunks chosen so each rank's summed
/// leaf weight approximates total/nranks (prefix-sum split points). Every
/// rank gets at least one leaf whenever leaves >= nranks. `leaf_weights`
/// aligns with t.leaves_sfc(); all weights must be > 0.
partition_stats partition_sfc_weighted(tree& t, int nranks,
                                       const std::vector<double>& leaf_weights);

/// Recompute the statistics of the CURRENT owner assignment without touching
/// it (owners must already be contiguous along the curve). With `leaf_weights`
/// (aligned with t.leaves_sfc()) the weighted cost_per_rank is filled too.
partition_stats partition_accounting(const tree& t, int nranks,
                                     const std::vector<double>* leaf_weights = nullptr);

struct rebalance_options {
    /// Migration bound: at most this fraction of the leaves changes owner in
    /// one rebalance_sfc call (the rebalance frontier — how many split points
    /// jump to their weighted-ideal position — is chosen as the largest whose
    /// measured owner-mismatch fits).
    double max_migration_fraction = 0.10;
};

/// One subgrid changing owner.
struct migration_record {
    node_key key;
    int from;
    int to;
};

struct rebalance_result {
    /// Stats of the NEW assignment, weighted (cost_per_rank filled).
    partition_stats stats;
    /// Leaves whose owner changed, in SFC order (the migration schedule).
    std::vector<migration_record> migrations;
    std::size_t leaf_count = 0;
    /// migrations.size() / leaf_count.
    double migration_fraction = 0;
    /// Max-rank cost before/after (same weights), for efficiency reporting.
    double max_cost_before = 0;
    double max_cost_after = 0;
    /// True when the ideal split was NOT reached because the migration bound
    /// clipped the split-point movement (another rebalance will converge
    /// further).
    bool budget_limited = false;
    /// Ranks that gained or lost at least one leaf: only these need their
    /// halo plans / FMM workspaces rebuilt.
    std::vector<int> touched_ranks;
};

/// Incremental weighted re-partitioning as a frontier wave: split points
/// 1..k jump FULLY to their weighted-ideal positions (points past the
/// frontier are clamped monotone behind it), with k binary-searched so at
/// most max_migration_fraction * leaves leaves change owner; leftover
/// budget partially advances point k+1. A leaf changes owner at most once,
/// directly to its final rank, so repeated calls converge in about
/// (total mismatch) / budget rounds. Owners are updated in place
/// (interior nodes re-inherit their first child) and the tree's partition
/// revision is bumped; the STRUCTURE revision is untouched, so cached ghost
/// plans and FMM workspaces of untouched ranks stay valid.
rebalance_result rebalance_sfc(tree& t, int nranks,
                               const std::vector<double>& leaf_weights,
                               const rebalance_options& opt = {});

// ---- live-rank variants (elastic recovery, ISSUE 10) ------------------------
// After a node death the rank id space has a hole: owners must come from the
// survivors' membership view, not [0, nranks). These variants run the same
// engines over a dense [0, live.size()) space and relabel owners through
// `live_ranks` (ascending, unique). Returned stats/cost vectors stay DENSE:
// row i describes live_ranks[i].

/// Weighted SFC split across exactly the given live ranks.
partition_stats partition_sfc_weighted(tree& t,
                                       const std::vector<int>& live_ranks,
                                       const std::vector<double>& leaf_weights);

/// Incremental rebalance restricted to the live ranks. Every current owner
/// must be a live rank (run repartition_onto first when one just died).
/// migration_record / touched_ranks carry REAL rank ids.
rebalance_result rebalance_sfc(tree& t, const std::vector<int>& live_ranks,
                               const std::vector<double>& leaf_weights,
                               const rebalance_options& opt = {});

struct recovery_partition {
    partition_stats stats; ///< dense rows: row i describes live_ranks[i]
    /// Every leaf whose owner changed, in SFC order. `from` may name the
    /// dead rank — those are the subgrids recovery must reload from the
    /// checkpoint chain rather than migrate from a live store.
    std::vector<migration_record> migrations;
};

/// The recovery repartition: reassign the whole curve onto the live ranks
/// (the dead rank's leaves have no surviving owner, so this is a full
/// weighted split, not a bounded nudge) and report which leaves moved.
recovery_partition repartition_onto(tree& t, const std::vector<int>& live_ranks,
                                    const std::vector<double>& leaf_weights);

} // namespace octo::amr

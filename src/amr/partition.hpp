#pragma once
// Space-filling-curve partitioner (paper §4.2: "These octree nodes are
// distributed onto the compute nodes using a space filling curve"). Leaves
// are laid out in Morton order and split into contiguous, equally weighted
// chunks; interior nodes live with their first child so that the bottom-up
// and top-down FMM passes are mostly local.

#include <cstdint>
#include <vector>

#include "amr/tree.hpp"

namespace octo::amr {

struct partition_stats {
    std::vector<std::size_t> leaves_per_rank;
    /// All octree nodes (leaves + interior) per rank: interior nodes run
    /// same-level FMM kernels too.
    std::vector<std::size_t> nodes_per_rank;
    /// Refined (interior) nodes per rank (multipole-kernel work).
    std::vector<std::size_t> refined_per_rank;
    /// Cross-rank neighbor pairs incident to each rank (a pair crossing
    /// ranks r1-r2 counts once for each endpoint): per-rank halo traffic.
    std::vector<std::uint64_t> cross_pairs_per_rank;
    /// Same-level neighbor pairs whose endpoints live on different ranks —
    /// each is one halo exchange per direction per timestep.
    std::uint64_t cross_rank_neighbor_pairs = 0;
    /// Total same-level neighbor pairs (local + remote).
    std::uint64_t total_neighbor_pairs = 0;
};

/// Assign `node.owner` for every node of the tree across `nranks` ranks.
/// Returns per-rank statistics used by the cluster simulator.
partition_stats partition_sfc(tree& t, int nranks);

} // namespace octo::amr

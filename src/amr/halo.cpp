#include "amr/halo.hpp"

#include <algorithm>

#include "amr/prolong.hpp"
#include "support/assert.hpp"

namespace octo::amr {
namespace {

/// Clamp v into [0, n).
int clamp_idx(int v, int n) { return std::max(0, std::min(n - 1, v)); }

/// Euclidean-style floor division/modulo for negative coordinates.
int floor_div(int a, int b) { return a >= 0 ? a / b : -((-a + b - 1) / b); }
int mod_pos(int a, int b) {
    const int m = a % b;
    return m < 0 ? m + b : m;
}

} // namespace

void restrict_tree(tree& t) {
    // Finest to coarsest so parents always see up-to-date children.
    for (int level = t.max_level() - 1; level >= 0; --level) {
        for (const node_key k : t.levels()[level]) {
            auto& n = t.node(k);
            if (!n.refined) continue;
            subgrid& parent = t.ensure_fields(k);
            for (int c = 0; c < 8; ++c) {
                const node_key ck = key_child(k, c);
                const auto& child = t.node(ck);
                OCTO_ASSERT_MSG(child.fields != nullptr,
                                "restrict_tree: child without field data");
                restrict_into_parent(*child.fields, c, parent);
            }
        }
    }
}

void fill_ghosts(tree& t, node_key k, boundary_kind bc) {
    auto& n = t.node(k);
    OCTO_ASSERT_MSG(n.fields != nullptr, "fill_ghosts: node without field data");
    subgrid& g = *n.fields;

    const int level = key_level(k);
    const int extent_subgrids = 1 << level;       // sub-grids per dimension
    const int extent_cells = extent_subgrids * INX; // cells per dimension
    const ivec3 base = key_coords(k);             // sub-grid coords at this level

    for (int i = 0; i < NX; ++i) {
        for (int j = 0; j < NX; ++j) {
            for (int kk = 0; kk < NX; ++kk) {
                if (subgrid::is_interior(i, j, kk)) continue;

                // Global cell coordinates of this ghost cell at this level.
                int gc[3] = {base.x * INX + (i - H_BW), base.y * INX + (j - H_BW),
                             base.z * INX + (kk - H_BW)};

                // Physical boundary handling first.
                bool outside = false;
                double momentum_sign[3] = {1.0, 1.0, 1.0};
                for (int a = 0; a < 3; ++a) {
                    if (gc[a] >= 0 && gc[a] < extent_cells) continue;
                    outside = true;
                    switch (bc) {
                        case boundary_kind::outflow:
                            gc[a] = clamp_idx(gc[a], extent_cells);
                            break;
                        case boundary_kind::periodic:
                            gc[a] = mod_pos(gc[a], extent_cells);
                            break;
                        case boundary_kind::reflecting:
                            // Mirror across the wall; flip normal momentum.
                            gc[a] = gc[a] < 0 ? -1 - gc[a]
                                              : 2 * extent_cells - 1 - gc[a];
                            momentum_sign[a] = -1.0;
                            break;
                    }
                }
                (void)outside;

                // Locate the sub-grid containing the (possibly remapped) cell.
                const ivec3 src_sub{floor_div(gc[0], INX), floor_div(gc[1], INX),
                                    floor_div(gc[2], INX)};
                node_key src = key_from_coords(level, src_sub);
                int src_level = level;
                int cell[3] = {mod_pos(gc[0], INX), mod_pos(gc[1], INX),
                               mod_pos(gc[2], INX)};

                // Walk up until a node with data exists (2:1 balance makes
                // this at most one step for valid trees, but the loop is
                // general). Cell coordinates coarsen by halving global coords.
                int ggc[3] = {gc[0], gc[1], gc[2]};
                while (!t.contains(src)) {
                    OCTO_ASSERT_MSG(src_level > 0, "no covering node found");
                    --src_level;
                    for (int a = 0; a < 3; ++a) ggc[a] = floor_div(ggc[a], 2);
                    const ivec3 csub{floor_div(ggc[0], INX), floor_div(ggc[1], INX),
                                     floor_div(ggc[2], INX)};
                    src = key_from_coords(src_level, csub);
                    for (int a = 0; a < 3; ++a) cell[a] = mod_pos(ggc[a], INX);
                }

                const auto& src_node = t.node(src);
                OCTO_ASSERT_MSG(src_node.fields != nullptr,
                                "fill_ghosts: source node without data (run "
                                "restrict_tree first)");
                const subgrid& sg = *src_node.fields;

                for (int f = 0; f < n_fields; ++f) {
                    double v = sg.interior(f, cell[0], cell[1], cell[2]);
                    if (f == f_sx) v *= momentum_sign[0];
                    if (f == f_sy) v *= momentum_sign[1];
                    if (f == f_sz) v *= momentum_sign[2];
                    g.at(f, i, j, kk) = v;
                }

                // When the source is coarser, momentum sampled piecewise-
                // constantly carries an orbital angular momentum offset about
                // the coarse cell center; shift it into the spin field so the
                // ghost data is consistent with the prolongation operator.
                if (src_level != level) {
                    const box_geometry src_geom = t.geometry(src);
                    const dvec3 R =
                        src_geom.cell_center(cell[0], cell[1], cell[2]);
                    const box_geometry my_geom = t.geometry(k);
                    const dvec3 r = my_geom.cell_center(i - H_BW, j - H_BW,
                                                        kk - H_BW);
                    const dvec3 s{g.at(f_sx, i, j, kk), g.at(f_sy, i, j, kk),
                                  g.at(f_sz, i, j, kk)};
                    const dvec3 corr = cross(r - R, s);
                    g.at(f_lx, i, j, kk) -= corr.x;
                    g.at(f_ly, i, j, kk) -= corr.y;
                    g.at(f_lz, i, j, kk) -= corr.z;
                }
            }
        }
    }
}

void fill_all_ghosts(tree& t, boundary_kind bc) {
    restrict_tree(t);
    for (int level = 0; level <= t.max_level(); ++level) {
        for (const node_key k : t.levels()[level]) {
            if (t.node(k).fields != nullptr) fill_ghosts(t, k, bc);
        }
    }
}

} // namespace octo::amr

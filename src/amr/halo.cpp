#include "amr/halo.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "amr/prolong.hpp"
#include "runtime/apex.hpp"
#include "support/assert.hpp"

namespace octo::amr {
namespace {

/// Clamp v into [0, n).
int clamp_idx(int v, int n) { return std::max(0, std::min(n - 1, v)); }

/// Euclidean-style floor division/modulo for negative coordinates.
int floor_div(int a, int b) { return a >= 0 ? a / b : -((-a + b - 1) / b); }
int mod_pos(int a, int b) {
    const int m = a % b;
    return m < 0 ? m + b : m;
}

/// Where one ghost cell's data comes from: the source node and flat cell
/// index, which momentum components a reflecting boundary flips, and the
/// spin correction offset when the source is one level coarser.
struct ghost_source {
    const subgrid* sg = nullptr;
    node_key src_key = invalid_key;
    std::int32_t src = 0;   ///< flat index within one field plane of *sg
    std::uint8_t flip = 0;  ///< bit a set: negate momentum component a
    bool coarse = false;    ///< source is coarser: spin correction applies
    dvec3 dr{0, 0, 0};      ///< fine ghost center minus coarse source center
};

/// Resolve ghost cell (i, j, kk) of node `k`: apply the physical boundary
/// remap, locate the covering sub-grid (walking up one level when the
/// same-level neighbor does not exist), and precompute the coarse-source
/// spin-correction offset. Pure address computation — no field data is read.
ghost_source resolve_ghost(const tree& t, node_key k, int i, int j, int kk,
                           boundary_kind bc) {
    const int level = key_level(k);
    const int extent_subgrids = 1 << level;         // sub-grids per dimension
    const int extent_cells = extent_subgrids * INX; // cells per dimension
    const ivec3 base = key_coords(k);

    // Global cell coordinates of this ghost cell at this level.
    int gc[3] = {base.x * INX + (i - H_BW), base.y * INX + (j - H_BW),
                 base.z * INX + (kk - H_BW)};

    // Physical boundary handling first.
    ghost_source out;
    for (int a = 0; a < 3; ++a) {
        if (gc[a] >= 0 && gc[a] < extent_cells) continue;
        switch (bc) {
            case boundary_kind::outflow:
                gc[a] = clamp_idx(gc[a], extent_cells);
                break;
            case boundary_kind::periodic:
                gc[a] = mod_pos(gc[a], extent_cells);
                break;
            case boundary_kind::reflecting:
                // Mirror across the wall; flip normal momentum.
                gc[a] = gc[a] < 0 ? -1 - gc[a] : 2 * extent_cells - 1 - gc[a];
                out.flip |= static_cast<std::uint8_t>(1u << a);
                break;
        }
    }

    // Locate the sub-grid containing the (possibly remapped) cell.
    const ivec3 src_sub{floor_div(gc[0], INX), floor_div(gc[1], INX),
                        floor_div(gc[2], INX)};
    node_key src = key_from_coords(level, src_sub);
    int src_level = level;
    int cell[3] = {mod_pos(gc[0], INX), mod_pos(gc[1], INX), mod_pos(gc[2], INX)};

    // Walk up until a node with data exists (2:1 balance makes this at most
    // one step for valid trees, but the loop is general). Cell coordinates
    // coarsen by halving global coords.
    int ggc[3] = {gc[0], gc[1], gc[2]};
    while (!t.contains(src)) {
        OCTO_ASSERT_MSG(src_level > 0, "no covering node found");
        --src_level;
        for (int a = 0; a < 3; ++a) ggc[a] = floor_div(ggc[a], 2);
        const ivec3 csub{floor_div(ggc[0], INX), floor_div(ggc[1], INX),
                         floor_div(ggc[2], INX)};
        src = key_from_coords(src_level, csub);
        for (int a = 0; a < 3; ++a) cell[a] = mod_pos(ggc[a], INX);
    }

    const auto& src_node = t.node(src);
    OCTO_ASSERT_MSG(src_node.fields != nullptr,
                    "fill_ghosts: source node without data (run "
                    "restrict_tree first)");
    out.sg = src_node.fields.get();
    out.src_key = src;
    out.src = subgrid::interior_index(cell[0], cell[1], cell[2]);

    // When the source is coarser, momentum sampled piecewise-constantly
    // carries an orbital angular momentum offset about the coarse cell
    // center; shift it into the spin field so the ghost data is consistent
    // with the prolongation operator.
    if (src_level != level) {
        out.coarse = true;
        const box_geometry src_geom = t.geometry(src);
        const dvec3 R = src_geom.cell_center(cell[0], cell[1], cell[2]);
        const box_geometry my_geom = t.geometry(k);
        const dvec3 r = my_geom.cell_center(i - H_BW, j - H_BW, kk - H_BW);
        out.dr = r - R;
    }
    return out;
}

/// Copy one ghost cell from its resolved source into `g` at flat index
/// `dst`, applying the reflecting momentum flips and the coarse-source spin
/// correction. (Negation is exactly multiplication by -1.0, so this matches
/// the historical momentum_sign path bit for bit.)
void apply_ghost(subgrid& g, std::int32_t dst, const subgrid& sg,
                 std::int32_t src, std::uint8_t flip) {
    for (int f = 0; f < n_fields; ++f) {
        double v = sg.field_data(f)[src];
        if ((f == f_sx && (flip & 1u) != 0) || (f == f_sy && (flip & 2u) != 0) ||
            (f == f_sz && (flip & 4u) != 0)) {
            v = -v;
        }
        g.field_data(f)[dst] = v;
    }
}

void apply_spin_correction(subgrid& g, std::int32_t dst, const dvec3& dr) {
    const dvec3 s{g.field_data(f_sx)[dst], g.field_data(f_sy)[dst],
                  g.field_data(f_sz)[dst]};
    const dvec3 corr = cross(dr, s);
    g.field_data(f_lx)[dst] -= corr.x;
    g.field_data(f_ly)[dst] -= corr.y;
    g.field_data(f_lz)[dst] -= corr.z;
}

/// Ghost-shell region of cell (i, j, kk) in full (ghost-inclusive) coords:
/// one of the six faces when exactly one coordinate is outside the interior
/// slab, the edges+corners bucket otherwise.
int ghost_region_of(int i, int j, int kk) {
    const int c[3] = {i, j, kk};
    int region = -1;
    int outside = 0;
    for (int a = 0; a < 3; ++a) {
        if (c[a] < H_BW) {
            ++outside;
            region = ghost_face_region(a, -1);
        } else if (c[a] >= H_BW + INX) {
            ++outside;
            region = ghost_face_region(a, +1);
        }
    }
    OCTO_ASSERT(outside > 0);
    return outside == 1 ? region : n_ghost_regions - 1;
}

/// Single cached plan. fill_all_ghosts mutates sub-grids and was never
/// callable concurrently; the cache inherits that contract.
ghost_plan& cached_plan() {
    static ghost_plan plan;
    return plan;
}

void rebuild_plan(ghost_plan& plan, tree& t, boundary_kind bc) {
    plan.nodes.clear();
    plan.nodes.reserve(t.size());
    for (int level = 0; level <= t.max_level(); ++level) {
        for (const node_key k : t.levels()[level]) {
            auto& n = t.node(k);
            if (n.fields == nullptr) continue;
            node_ghost_plan np;
            np.key = k;
            np.g = n.fields.get();
            np.leaf = !n.refined;
            for (int i = 0; i < NX; ++i)
                for (int j = 0; j < NX; ++j)
                    for (int kk = 0; kk < NX; ++kk) {
                        if (subgrid::is_interior(i, j, kk)) continue;
                        const ghost_source s = resolve_ghost(t, k, i, j, kk, bc);
                        const auto dst =
                            static_cast<std::int32_t>(subgrid::index(i, j, kk));
                        auto& r = np.regions[ghost_region_of(i, j, kk)];
                        r.entries.push_back({dst, s.src, s.sg, s.flip});
                        if (s.coarse) r.corrections.push_back({dst, s.dr});
                        if (std::find(r.donors.begin(), r.donors.end(),
                                      s.src_key) == r.donors.end()) {
                            r.donors.push_back(s.src_key);
                        }
                    }
            plan.nodes.push_back(std::move(np));
        }
    }
    plan.tree_id = t.id();
    plan.revision = t.revision();
    plan.bc = bc;
    plan.valid = true;
    rt::apex_count("amr.halo_plan_rebuilds");
}

} // namespace

const ghost_plan& acquire_ghost_plan(tree& t, boundary_kind bc) {
    // Refined-node storage is allocated up front (it would bump the tree
    // revision and invalidate the plan mid-flight otherwise), matching what
    // restrict_tree does lazily.
    for (int level = t.max_level() - 1; level >= 0; --level) {
        for (const node_key k : t.levels()[level]) {
            if (t.node(k).refined) t.ensure_fields(k);
        }
    }
    ghost_plan& plan = cached_plan();
    if (!plan.valid || plan.tree_id != t.id() || plan.revision != t.revision() ||
        plan.bc != bc) {
        rebuild_plan(plan, t, bc);
    } else {
        rt::apex_count("amr.halo_plan_hits");
    }
    return plan;
}

void apply_ghost_region(subgrid& g, const ghost_region_plan& r) {
    for (const auto& e : r.entries) {
        apply_ghost(g, e.dst, *e.sg, e.src, e.flip);
    }
    for (const auto& c : r.corrections) {
        apply_spin_correction(g, c.dst, c.dr);
    }
}

void restrict_node(tree& t, node_key k) {
    auto& n = t.node(k);
    OCTO_ASSERT(n.refined);
    OCTO_ASSERT_MSG(n.fields != nullptr,
                    "restrict_node: parent storage not allocated");
    subgrid& parent = *n.fields;
    for (int c = 0; c < 8; ++c) {
        const node_key ck = key_child(k, c);
        const auto& child = t.node(ck);
        OCTO_ASSERT_MSG(child.fields != nullptr,
                        "restrict_node: child without field data");
        restrict_into_parent(*child.fields, c, parent);
    }
}

void restrict_tree(tree& t) {
    // Finest to coarsest so parents always see up-to-date children.
    for (int level = t.max_level() - 1; level >= 0; --level) {
        for (const node_key k : t.levels()[level]) {
            auto& n = t.node(k);
            if (!n.refined) continue;
            t.ensure_fields(k);
            restrict_node(t, k);
        }
    }
}

void fill_ghosts(tree& t, node_key k, boundary_kind bc) {
    auto& n = t.node(k);
    OCTO_ASSERT_MSG(n.fields != nullptr, "fill_ghosts: node without field data");
    subgrid& g = *n.fields;

    for (int i = 0; i < NX; ++i) {
        for (int j = 0; j < NX; ++j) {
            for (int kk = 0; kk < NX; ++kk) {
                if (subgrid::is_interior(i, j, kk)) continue;
                const ghost_source s = resolve_ghost(t, k, i, j, kk, bc);
                const auto dst =
                    static_cast<std::int32_t>(subgrid::index(i, j, kk));
                apply_ghost(g, dst, *s.sg, s.src, s.flip);
                if (s.coarse) apply_spin_correction(g, dst, s.dr);
            }
        }
    }
}

void fill_all_ghosts(tree& t, boundary_kind bc) {
    // restrict_tree may allocate parent field storage (bumping the tree
    // revision), so it runs before the plan check.
    restrict_tree(t);

    const ghost_plan& plan = acquire_ghost_plan(t, bc);
    for (const auto& np : plan.nodes) {
        for (const auto& r : np.regions) {
            apply_ghost_region(*np.g, r);
        }
    }
}

} // namespace octo::amr

#include "amr/subgrid.hpp"

#include <algorithm>

namespace octo::amr {

const char* field_name(int f) {
    static const char* names[n_fields] = {
        "rho",           "sx",        "sy",        "sz",        "egas",
        "tau",           "lx",        "ly",        "lz",        "frac_acc_core",
        "frac_acc_env",  "frac_don_core", "frac_don_env", "frac_atmos",
        "erad",          "frx",       "fry",       "frz"};
    OCTO_ASSERT(f >= 0 && f < n_fields);
    return names[f];
}

double subgrid::interior_sum(int f) const {
    double s = 0.0;
    const double* d = field_data(f);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int k = 0; k < INX; ++k) s += d[interior_index(i, j, k)];
    return s;
}

void subgrid::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

} // namespace octo::amr

#include "amr/prolong.hpp"

#include <algorithm>
#include <cmath>

namespace octo::amr {
namespace {

/// minmod slope limiter.
double minmod(double a, double b) {
    if (a * b <= 0.0) return 0.0;
    return std::abs(a) < std::abs(b) ? a : b;
}

/// Offset (in parent interior cells) of the child's octant region.
constexpr int octant_offset(int octant, int axis) {
    return ((octant >> axis) & 1) * (INX / 2);
}

} // namespace

void restrict_into_parent(const subgrid& child, int octant, subgrid& parent) {
    const int ox = octant_offset(octant, 0);
    const int oy = octant_offset(octant, 1);
    const int oz = octant_offset(octant, 2);

    // Plain average for every field.
    for (int f = 0; f < n_fields; ++f) {
        for (int pi = 0; pi < INX / 2; ++pi)
            for (int pj = 0; pj < INX / 2; ++pj)
                for (int pk = 0; pk < INX / 2; ++pk) {
                    double sum = 0.0;
                    for (int ci = 0; ci < 2; ++ci)
                        for (int cj = 0; cj < 2; ++cj)
                            for (int ck = 0; ck < 2; ++ck) {
                                sum += child.interior(f, 2 * pi + ci, 2 * pj + cj,
                                                      2 * pk + ck);
                            }
                    parent.interior(f, ox + pi, oy + pj, oz + pk) = sum / 8.0;
                }
    }

    // Spin correction: add the orbital angular momentum of the fine momentum
    // distribution about the coarse cell center,
    //   l_C = (1/8) sum_f [ l_f + (r_f - R) x s_f ].
    for (int pi = 0; pi < INX / 2; ++pi)
        for (int pj = 0; pj < INX / 2; ++pj)
            for (int pk = 0; pk < INX / 2; ++pk) {
                const dvec3 R = parent.geom.cell_center(ox + pi, oy + pj, oz + pk);
                dvec3 corr{0, 0, 0};
                for (int ci = 0; ci < 2; ++ci)
                    for (int cj = 0; cj < 2; ++cj)
                        for (int ck = 0; ck < 2; ++ck) {
                            const int fi = 2 * pi + ci, fj = 2 * pj + cj,
                                      fk = 2 * pk + ck;
                            const dvec3 r = child.geom.cell_center(fi, fj, fk);
                            const dvec3 s{child.interior(f_sx, fi, fj, fk),
                                          child.interior(f_sy, fi, fj, fk),
                                          child.interior(f_sz, fi, fj, fk)};
                            corr += cross(r - R, s);
                        }
                corr /= 8.0;
                parent.interior(f_lx, ox + pi, oy + pj, oz + pk) += corr.x;
                parent.interior(f_ly, ox + pi, oy + pj, oz + pk) += corr.y;
                parent.interior(f_lz, ox + pi, oy + pj, oz + pk) += corr.z;
            }
}

void prolong_from_parent(const subgrid& parent, int octant, subgrid& child,
                         bool slopes) {
    const int ox = octant_offset(octant, 0);
    const int oy = octant_offset(octant, 1);
    const int oz = octant_offset(octant, 2);

    for (int f = 0; f < n_fields; ++f) {
        for (int pi = 0; pi < INX / 2; ++pi)
            for (int pj = 0; pj < INX / 2; ++pj)
                for (int pk = 0; pk < INX / 2; ++pk) {
                    const int I = ox + pi, J = oy + pj, K = oz + pk;
                    const double c = parent.interior(f, I, J, K);
                    dvec3 slope{0, 0, 0};
                    if (slopes) {
                        // Central differences limited by one-sided ones; the
                        // parent's ghost zones must be valid (callers fill
                        // ghosts before prolonging). Slope is per fine cell
                        // offset of a quarter coarse cell.
                        auto at = [&](int di, int dj, int dk) {
                            return parent.at(f, H_BW + I + di, H_BW + J + dj,
                                             H_BW + K + dk);
                        };
                        slope.x = 0.25 * minmod(at(1, 0, 0) - c, c - at(-1, 0, 0));
                        slope.y = 0.25 * minmod(at(0, 1, 0) - c, c - at(0, -1, 0));
                        slope.z = 0.25 * minmod(at(0, 0, 1) - c, c - at(0, 0, -1));
                    }
                    for (int ci = 0; ci < 2; ++ci)
                        for (int cj = 0; cj < 2; ++cj)
                            for (int ck = 0; ck < 2; ++ck) {
                                const double sx = ci != 0 ? 1.0 : -1.0;
                                const double sy = cj != 0 ? 1.0 : -1.0;
                                const double sz = ck != 0 ? 1.0 : -1.0;
                                child.interior(f, 2 * pi + ci, 2 * pj + cj,
                                               2 * pk + ck) =
                                    c + sx * slope.x + sy * slope.y + sz * slope.z;
                            }
                }
    }

    // Spin correction: subtract the orbital part each child's momentum now
    // carries about the coarse center, l_f = l~_f - (r_f - R) x s_f.
    for (int pi = 0; pi < INX / 2; ++pi)
        for (int pj = 0; pj < INX / 2; ++pj)
            for (int pk = 0; pk < INX / 2; ++pk) {
                const dvec3 R = parent.geom.cell_center(ox + pi, oy + pj, oz + pk);
                for (int ci = 0; ci < 2; ++ci)
                    for (int cj = 0; cj < 2; ++cj)
                        for (int ck = 0; ck < 2; ++ck) {
                            const int fi = 2 * pi + ci, fj = 2 * pj + cj,
                                      fk = 2 * pk + ck;
                            const dvec3 r = child.geom.cell_center(fi, fj, fk);
                            const dvec3 s{child.interior(f_sx, fi, fj, fk),
                                          child.interior(f_sy, fi, fj, fk),
                                          child.interior(f_sz, fi, fj, fk)};
                            const dvec3 corr = cross(r - R, s);
                            child.interior(f_lx, fi, fj, fk) -= corr.x;
                            child.interior(f_ly, fi, fj, fk) -= corr.y;
                            child.interior(f_lz, fi, fj, fk) -= corr.z;
                        }
            }
}

dvec3 interior_angular_momentum(const subgrid& g) {
    dvec3 L{0, 0, 0};
    const double V = g.geom.cell_volume();
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int k = 0; k < INX; ++k) {
                const dvec3 r = g.geom.cell_center(i, j, k);
                const dvec3 s{g.interior(f_sx, i, j, k), g.interior(f_sy, i, j, k),
                              g.interior(f_sz, i, j, k)};
                const dvec3 l{g.interior(f_lx, i, j, k), g.interior(f_ly, i, j, k),
                              g.interior(f_lz, i, j, k)};
                L += (cross(r, s) + l) * V;
            }
    return L;
}

dvec3 interior_momentum(const subgrid& g) {
    dvec3 P{0, 0, 0};
    const double V = g.geom.cell_volume();
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int k = 0; k < INX; ++k) {
                P += dvec3{g.interior(f_sx, i, j, k), g.interior(f_sy, i, j, k),
                           g.interior(f_sz, i, j, k)} *
                     V;
            }
    return P;
}

} // namespace octo::amr

#pragma once
// The adaptive octree (paper §4.2): "Octo-Tiger's main datastructure is a
// rotating Cartesian grid with adaptive mesh refinement. It is based on an
// adaptive octree structure. Each node is an N^3 sub-grid ... and can be
// further refined into eight child nodes. These octree nodes are distributed
// onto the compute nodes using a space filling curve."
//
// Node keys: 64-bit "BFS keys" — the root is 1, child c of key k is
// (k << 3) | c, so the key's bit pattern (minus the leading sentinel bit) is
// the Morton interleave of the node's coordinates at its level. Sorting
// leaves by depth-padded key gives the space-filling-curve order used by
// the partitioner.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "amr/subgrid.hpp"
#include "support/vec3.hpp"

namespace octo::amr {

using node_key = std::uint64_t;
inline constexpr node_key root_key = 1;
inline constexpr node_key invalid_key = 0;

/// Depth of a key (root = 0). Valid keys have 1 + 3*level significant bits.
int key_level(node_key k);
constexpr node_key key_child(node_key k, int octant) {
    return (k << 3) | static_cast<node_key>(octant);
}
constexpr node_key key_parent(node_key k) { return k >> 3; }
/// Child octant of this key within its parent (x = bit 0, y = bit 1, z = bit 2).
constexpr int key_octant(node_key k) { return static_cast<int>(k & 7); }

/// Integer coordinates of the node within the level grid [0, 2^level)^3.
ivec3 key_coords(node_key k);
/// Key of the node at `level` with integer coordinates `c`.
node_key key_from_coords(int level, const ivec3& c);
/// Same-level neighbor at integer offset `off`; invalid_key outside [0,2^L)^3.
node_key key_neighbor(node_key k, const ivec3& off);
/// Depth-padded key used for space-filling-curve ordering across levels.
std::uint64_t key_sfc_order(node_key k, int max_level);

class tree;

/// First leaf in the child-0 chain below `k` (k itself when a leaf) — the
/// leaf whose owner an interior node inherits under the partitioner's
/// first-child rule, and therefore the leaf that pays for the interior
/// node's multipole kernel in the cost model.
node_key first_descendant_leaf(const tree& t, node_key k);

struct tree_node {
    bool refined = false;
    int owner = 0;                    ///< locality rank assigned by the partitioner
    std::unique_ptr<subgrid> fields;  ///< evolved variables (allocated on demand)
};

class tree {
  public:
    /// `root_geom` describes the root sub-grid: the whole domain is covered
    /// by one 8^3 block at level 0; dx halves with each level.
    explicit tree(box_geometry root_geom);

    const box_geometry& root_geometry() const { return root_geom_; }

    /// Process-unique identity of this tree instance. Together with
    /// revision() it keys caches of per-tree derived data (FMM workspaces,
    /// ghost-fill plans): the id guards against address reuse across tree
    /// instances, the revision against structural change within one.
    std::uint64_t id() const { return id_; }

    /// Structure revision: bumped by refine(), derefine() and by
    /// ensure_fields() when it allocates storage. Unchanged revision (for an
    /// unchanged id) guarantees the node set, field-storage set and all
    /// sub-grid addresses are identical to the previous observation.
    std::uint64_t revision() const { return revision_; }

    /// Partition revision: bumped whenever the partitioner reassigns owners
    /// (partition_sfc / rebalance_sfc). Deliberately separate from
    /// revision(): migration changes WHO owns a node, never the node set, so
    /// caches keyed on (id, revision) — ghost plans, FMM workspaces — stay
    /// valid across a rebalance, while owner-derived state (halo send/recv
    /// schedules of the touched ranks) keys on this counter instead.
    std::uint64_t partition_revision() const { return partition_revision_; }
    void bump_partition_revision() { ++partition_revision_; }

    bool contains(node_key k) const { return nodes_.count(k) != 0; }
    bool is_leaf(node_key k) const;

    tree_node& node(node_key k);
    const tree_node& node(node_key k) const;

    /// Split a leaf into eight children (children are created as leaves).
    void refine(node_key k);

    /// Remove the eight children of `k` (all of which must be leaves),
    /// turning `k` back into a leaf. The caller is responsible for having
    /// restricted the children's data into `k` first and for keeping the
    /// 2:1 balance valid (see simulation::coarsen).
    void derefine(node_key k);

    /// All keys, grouped by level (index = level).
    const std::vector<std::vector<node_key>>& levels() const { return levels_; }
    int max_level() const { return static_cast<int>(levels_.size()) - 1; }

    /// All leaf keys in space-filling-curve order.
    std::vector<node_key> leaves_sfc() const;

    std::size_t size() const { return nodes_.size(); }
    std::size_t leaf_count() const;

    /// Geometry (origin, dx) of the sub-grid owned by node `k`.
    box_geometry geometry(node_key k) const;

    /// Allocate field storage for node `k` if not already present.
    subgrid& ensure_fields(node_key k);

    /// Refine every node for which `pred` holds, breadth-first, down to
    /// `max_level`, then restore 2:1 balance.
    void refine_by(const std::function<bool(node_key, const box_geometry&)>& pred,
                   int max_level);

    /// Enforce the 2:1 balance invariant: every refined node's 26 same-level
    /// neighbors (where inside the domain) exist.
    void balance21();

    /// Check the invariant (used by tests).
    bool is_balanced21() const;

  private:
    void insert(node_key k);

    box_geometry root_geom_;
    std::uint64_t id_ = 0;
    std::uint64_t revision_ = 0;
    std::uint64_t partition_revision_ = 0;
    std::unordered_map<node_key, tree_node> nodes_;
    std::vector<std::vector<node_key>> levels_;
};

} // namespace octo::amr

#include "amr/tree.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>

#include "support/assert.hpp"
#include "support/morton.hpp"

namespace octo::amr {

int key_level(node_key k) {
    OCTO_ASSERT(k != invalid_key);
    const int significant = 64 - std::countl_zero(k); // 1 + 3*level
    OCTO_ASSERT((significant - 1) % 3 == 0);
    return (significant - 1) / 3;
}

ivec3 key_coords(node_key k) {
    const int level = key_level(k);
    const node_key path = k ^ (node_key{1} << (3 * level)); // strip sentinel
    const auto c = morton_decode(path);
    return {static_cast<int>(c.x), static_cast<int>(c.y), static_cast<int>(c.z)};
}

node_key key_from_coords(int level, const ivec3& c) {
    const node_key path = morton_encode(static_cast<std::uint32_t>(c.x),
                                        static_cast<std::uint32_t>(c.y),
                                        static_cast<std::uint32_t>(c.z));
    return path | (node_key{1} << (3 * level));
}

node_key key_neighbor(node_key k, const ivec3& off) {
    const int level = key_level(k);
    const int extent = 1 << level;
    const ivec3 c = key_coords(k);
    const ivec3 n{c.x + off.x, c.y + off.y, c.z + off.z};
    if (n.x < 0 || n.y < 0 || n.z < 0 || n.x >= extent || n.y >= extent ||
        n.z >= extent) {
        return invalid_key;
    }
    return key_from_coords(level, n);
}

std::uint64_t key_sfc_order(node_key k, int max_level) {
    const int level = key_level(k);
    OCTO_ASSERT(level <= max_level);
    return k << (3 * (max_level - level));
}

node_key first_descendant_leaf(const tree& t, node_key k) {
    while (t.node(k).refined) k = key_child(k, 0);
    return k;
}

namespace {
std::uint64_t next_tree_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
} // namespace

tree::tree(box_geometry root_geom) : root_geom_(root_geom), id_(next_tree_id()) {
    insert(root_key);
}

void tree::insert(node_key k) {
    const int level = key_level(k);
    nodes_.emplace(k, tree_node{});
    if (static_cast<int>(levels_.size()) <= level) levels_.resize(level + 1);
    levels_[level].push_back(k);
}

bool tree::is_leaf(node_key k) const { return !node(k).refined; }

tree_node& tree::node(node_key k) {
    auto it = nodes_.find(k);
    OCTO_ASSERT_MSG(it != nodes_.end(), "node not in tree");
    return it->second;
}

const tree_node& tree::node(node_key k) const {
    auto it = nodes_.find(k);
    OCTO_ASSERT_MSG(it != nodes_.end(), "node not in tree");
    return it->second;
}

void tree::refine(node_key k) {
    auto& n = node(k);
    OCTO_ASSERT_MSG(!n.refined, "refining an already refined node");
    n.refined = true;
    ++revision_;
    for (int c = 0; c < 8; ++c) insert(key_child(k, c));
}

void tree::derefine(node_key k) {
    auto& n = node(k);
    OCTO_ASSERT_MSG(n.refined, "derefining a leaf");
    for (int c = 0; c < 8; ++c) {
        const node_key ck = key_child(k, c);
        OCTO_ASSERT_MSG(!node(ck).refined, "derefine requires leaf children");
    }
    const int child_level = key_level(k) + 1;
    auto& lvl = levels_[static_cast<std::size_t>(child_level)];
    for (int c = 0; c < 8; ++c) {
        const node_key ck = key_child(k, c);
        nodes_.erase(ck);
        auto it = std::find(lvl.begin(), lvl.end(), ck);
        OCTO_ASSERT(it != lvl.end());
        *it = lvl.back();
        lvl.pop_back();
    }
    n.refined = false;
    ++revision_;
    // Trim empty finest levels so max_level() stays meaningful.
    while (!levels_.empty() && levels_.back().empty()) levels_.pop_back();
}

std::vector<node_key> tree::leaves_sfc() const {
    std::vector<node_key> out;
    out.reserve(nodes_.size());
    for (const auto& [k, n] : nodes_) {
        if (!n.refined) out.push_back(k);
    }
    const int ml = max_level();
    std::sort(out.begin(), out.end(), [ml](node_key a, node_key b) {
        return key_sfc_order(a, ml) < key_sfc_order(b, ml);
    });
    return out;
}

std::size_t tree::leaf_count() const {
    std::size_t c = 0;
    for (const auto& [k, n] : nodes_) {
        if (!n.refined) ++c;
    }
    return c;
}

box_geometry tree::geometry(node_key k) const {
    const int level = key_level(k);
    const ivec3 c = key_coords(k);
    box_geometry g;
    g.dx = root_geom_.dx / static_cast<double>(1 << level);
    const double block = g.dx * INX; // edge length of one sub-grid at this level
    g.origin = {root_geom_.origin.x + c.x * block, root_geom_.origin.y + c.y * block,
                root_geom_.origin.z + c.z * block};
    return g;
}

subgrid& tree::ensure_fields(node_key k) {
    auto& n = node(k);
    if (!n.fields) {
        n.fields = std::make_unique<subgrid>();
        n.fields->geom = geometry(k);
        ++revision_;
    }
    return *n.fields;
}

void tree::refine_by(const std::function<bool(node_key, const box_geometry&)>& pred,
                     int max_level) {
    std::deque<node_key> queue{root_key};
    while (!queue.empty()) {
        const node_key k = queue.front();
        queue.pop_front();
        if (key_level(k) >= max_level) continue;
        if (!pred(k, geometry(k))) continue;
        if (!node(k).refined) refine(k);
        for (int c = 0; c < 8; ++c) queue.push_back(key_child(k, c));
    }
    balance21();
}

void tree::balance21() {
    // Process finest level first: a refined node forces its same-level
    // neighbors into existence, which may force refinement one level up, etc.
    bool changed = true;
    while (changed) {
        changed = false;
        for (int level = max_level(); level >= 1; --level) {
            // Copy: refine() appends to levels_ while we iterate.
            const std::vector<node_key> at_level = levels_[level];
            for (const node_key k : at_level) {
                if (!node(k).refined) continue;
                for (int dx = -1; dx <= 1; ++dx)
                    for (int dy = -1; dy <= 1; ++dy)
                        for (int dz = -1; dz <= 1; ++dz) {
                            if (dx == 0 && dy == 0 && dz == 0) continue;
                            const node_key nb = key_neighbor(k, {dx, dy, dz});
                            if (nb == invalid_key || contains(nb)) continue;
                            // Find the deepest existing ancestor and refine the
                            // chain down to the missing neighbor.
                            node_key anc = key_parent(nb);
                            while (!contains(anc)) anc = key_parent(anc);
                            while (anc != nb) {
                                if (!node(anc).refined) refine(anc);
                                // Descend one level toward nb.
                                const int down =
                                    key_level(nb) - key_level(anc) - 1;
                                anc = key_child(anc,
                                                key_octant(nb >> (3 * down)));
                                changed = true;
                            }
                        }
            }
        }
    }
}

bool tree::is_balanced21() const {
    for (const auto& [k, n] : nodes_) {
        if (!n.refined) continue;
        for (int dx = -1; dx <= 1; ++dx)
            for (int dy = -1; dy <= 1; ++dy)
                for (int dz = -1; dz <= 1; ++dz) {
                    if (dx == 0 && dy == 0 && dz == 0) continue;
                    const node_key nb = key_neighbor(k, {dx, dy, dz});
                    if (nb != invalid_key && !contains(nb)) return false;
                }
    }
    return true;
}

} // namespace octo::amr

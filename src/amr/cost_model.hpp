#pragma once
// Per-subgrid cost model feeding the dynamic load balancer (ISSUE 8,
// ROADMAP item 2). The paper's SFC split weighs every octree node equally
// (§4.2), but per-subgrid cost is not uniform: refined interiors run the
// (much heavier) multipole kernels, subgrids on rank boundaries pay halo
// traffic, and GPU aggregation favors owners with dense same-class batches.
//
// This model turns those effects into one positive weight per leaf:
//
//   cost(leaf) = kernel base (monopole + its share of non-FMM work)
//              + multipole_cost for every interior node whose first-child
//                chain ends at this leaf (that leaf's rank runs the kernel,
//                by the partitioner's placement rule)
//              + halo_pair_cost per cross-rank same-level neighbor pair
//                incident on the leaf (ghost-fill traffic)
//   all scaled by an APEX-derived rate calibration.
//
// Samples are folded into a per-leaf EWMA so a single noisy step cannot
// thrash the partition: after one observation of a transient 2x spike, the
// weight moves only `alpha` of the way there, and the bounded-migration
// re-partitioner (amr/partition.hpp) clips the resulting split movement on
// top of that.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "amr/partition.hpp"
#include "amr/tree.hpp"

namespace octo::amr {

struct cost_params {
    /// Base cost of a leaf (monopole kernel + the leaf's hydro work).
    double monopole_cost = 1.0;
    /// Cost of one interior node's multipole kernel, charged to its
    /// first-descendant leaf (the partitioner places the interior node with
    /// that leaf's rank).
    double multipole_cost = 4.0;
    /// Cost per cross-rank same-level neighbor pair incident on a leaf
    /// (per-step halo serialization + protocol work on the owner).
    double halo_pair_cost = 0.25;
    /// EWMA smoothing: weight <- (1-alpha)*weight + alpha*sample. Lower is
    /// smoother; 1.0 trusts the latest step entirely.
    double ewma_alpha = 0.3;
};

/// Derive cost parameters from the live APEX counters: the multipole/
/// monopole ratio follows the measured FMM DAG vs hydro stage task mix, and
/// the halo term follows the reliability-protocol traffic. Counters at zero
/// (e.g. before any instrumented step ran) keep the defaults — the model
/// degrades to the structural estimate, never to garbage.
cost_params cost_params_from_apex(cost_params base = {});

class cost_model {
  public:
    explicit cost_model(cost_params p = {});

    const cost_params& params() const { return p_; }

    /// Fold one step's structural cost sample for every leaf of `t` into the
    /// EWMA. `parts` supplies the current partition (for the cross-rank halo
    /// term); pass the stats of the assignment the step actually ran with.
    void observe_step(const tree& t, const partition_stats& parts);

    /// Fold one directly measured sample (tests, external timers).
    void observe(node_key k, double cost);

    /// Current EWMA weight of a leaf; leaves never observed report the mean
    /// of the observed weights (1.0 when nothing was observed), so a fresh
    /// leaf neither attracts nor repels the split points.
    double weight(node_key k) const;

    /// Weights for every leaf of `t` in SFC order — the exact vector
    /// partition_sfc_weighted / rebalance_sfc consume.
    std::vector<double> leaf_weights(const tree& t) const;

    std::size_t observed() const { return w_.size(); }

  private:
    double fallback() const;

    cost_params p_;
    std::unordered_map<node_key, double> w_;
    double sum_ = 0; ///< sum of stored weights (fallback = mean)
};

} // namespace octo::amr

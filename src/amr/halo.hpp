#pragma once
// Ghost-zone (halo) machinery over the octree. In the paper the halo
// exchange between neighbouring octree nodes is the dominant communication
// pattern (§5.2, §6.3); here the same data movement is organised per leaf:
// each ghost cell is sourced from the same-level neighbor if it exists
// (leaf interior, or restricted data of a refined node), from the covering
// coarser leaf otherwise (the 2:1 balance guarantees one level at most), or
// from the physical boundary condition outside the domain.

#include "amr/tree.hpp"

namespace octo::amr {

enum class boundary_kind {
    outflow,    ///< zero-gradient copy of the nearest interior value
    reflecting, ///< mirror with normal-momentum sign flip
    periodic    ///< wrap around the domain
};

/// Bottom-up pass: restrict every refined node's children into it, so all
/// interior nodes hold valid (conservatively averaged) field data.
void restrict_tree(tree& t);

/// Fill the ghost shell of node `k` (which must have field storage).
void fill_ghosts(tree& t, node_key k, boundary_kind bc);

/// restrict_tree + fill_ghosts on every node with field data. The resolved
/// ghost-cell addresses are cached as a flat copy plan keyed on
/// (tree id, tree revision, bc) and replayed until the tree structure
/// changes — fill_all_ghosts runs once per RK stage, so in steady state the
/// per-cell neighbor resolution is skipped entirely. Not thread-safe (it
/// mutates sub-grid ghost shells, as ever).
void fill_all_ghosts(tree& t, boundary_kind bc);

} // namespace octo::amr

#pragma once
// Ghost-zone (halo) machinery over the octree. In the paper the halo
// exchange between neighbouring octree nodes is the dominant communication
// pattern (§5.2, §6.3); here the same data movement is organised per leaf:
// each ghost cell is sourced from the same-level neighbor if it exists
// (leaf interior, or restricted data of a refined node), from the covering
// coarser leaf otherwise (the 2:1 balance guarantees one level at most), or
// from the physical boundary condition outside the domain.

#include <cstdint>
#include <vector>

#include "amr/tree.hpp"
#include "support/aligned.hpp"

namespace octo::amr {

enum class boundary_kind {
    outflow,    ///< zero-gradient copy of the nearest interior value
    reflecting, ///< mirror with normal-momentum sign flip
    periodic    ///< wrap around the domain
};

// ---- ghost-fill plan -------------------------------------------------------
//
// Resolving a ghost cell is pure address computation on the tree structure:
// for an unchanged tree it yields the same (source sub-grid, cell, flip,
// correction) tuple every time, so the resolved addresses are cached as a
// flat plan keyed on (tree id, revision, boundary kind) and replayed.
//
// The plan is split per *region* of the ghost shell — the six faces plus one
// bucket for all edges and corners — and each region records the set of
// donor nodes it reads. That is exactly the granularity the futurized hydro
// stage needs: a flux sweep along axis `a` only consumes the two face
// regions 2a and 2a+1, so a face-fill task can fire as soon as its (few)
// donors are ready instead of waiting on a whole-tree barrier.

/// One ghost-cell copy: destination/source flat indices within a field
/// plane, the source sub-grid, and the reflecting-boundary momentum flips.
struct ghost_copy {
    std::int32_t dst;
    std::int32_t src;
    const subgrid* sg;
    std::uint8_t flip;
};

/// Coarse-donor spin correction: the ghost's momentum, sampled about the
/// coarse cell center, carries an orbital-L offset folded into spin.
struct ghost_correction {
    std::int32_t dst;
    dvec3 dr;
};

/// Ghost-shell regions: 0..5 = faces (-x,+x,-y,+y,-z,+z), 6 = edges+corners.
inline constexpr int n_ghost_regions = 7;

/// Face region index for axis a and direction dir (-1/+1).
inline constexpr int ghost_face_region(int a, int dir) {
    return 2 * a + (dir > 0 ? 1 : 0);
}

struct ghost_region_plan {
    aligned_vector<ghost_copy> entries;
    aligned_vector<ghost_correction> corrections;
    std::vector<node_key> donors; ///< unique nodes whose data the copies read
};

struct node_ghost_plan {
    node_key key = invalid_key;
    subgrid* g = nullptr;
    bool leaf = false;
    ghost_region_plan regions[n_ghost_regions];
};

struct ghost_plan {
    std::uint64_t tree_id = 0;
    std::uint64_t revision = 0;
    boundary_kind bc = boundary_kind::outflow;
    bool valid = false;
    std::vector<node_ghost_plan> nodes;
};

/// The cached plan for (t, bc), rebuilt when the tree structure changed.
/// The returned reference stays valid until the next rebuild. Like
/// fill_all_ghosts, not callable concurrently with tree mutation.
const ghost_plan& acquire_ghost_plan(tree& t, boundary_kind bc);

/// Replay one region of one node's plan (thread-safe per destination node as
/// long as no task writes the donors' interiors concurrently).
void apply_ghost_region(subgrid& g, const ghost_region_plan& r);

/// Restrict the eight children of refined node `k` into its own field data.
/// The parent storage must already exist (see acquire_ghost_plan, which
/// allocates refined-node storage up front so this never mutates the tree).
void restrict_node(tree& t, node_key k);

/// Bottom-up pass: restrict every refined node's children into it, so all
/// interior nodes hold valid (conservatively averaged) field data.
void restrict_tree(tree& t);

/// Fill the ghost shell of node `k` (which must have field storage).
void fill_ghosts(tree& t, node_key k, boundary_kind bc);

/// restrict_tree + fill_ghosts on every node with field data, replayed from
/// the cached plan — fill_all_ghosts runs once per RK stage, so in steady
/// state the per-cell neighbor resolution is skipped entirely. Not
/// thread-safe (it mutates sub-grid ghost shells, as ever).
void fill_all_ghosts(tree& t, boundary_kind bc);

} // namespace octo::amr

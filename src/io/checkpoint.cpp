#include "io/checkpoint.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "runtime/apex.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace octo::io {

using namespace octo::amr;

namespace {

constexpr std::uint64_t magic_v1 = 0x4f43544f53494d31ULL; // "OCTOSIM1"
constexpr std::uint64_t magic_v2 = 0x4f43544f53494d32ULL; // "OCTOSIM2"
constexpr std::uint32_t format_version = 2;
/// 64-bit Morton keys hold at most 21 levels; anything deeper is garbage.
constexpr int max_key_level = 20;
/// Transient write failures (real or injected) are retried this many times.
constexpr int max_write_attempts = 5;

constexpr std::size_t record_doubles = std::size_t{n_fields} * INX3;

[[noreturn]] void crc_failure(const std::string& what) {
    rt::apex_count("io.checkpoint_crc_failures");
    throw error("checkpoint: " + what);
}

// ---- raw stream helpers ------------------------------------------------------

template <class T>
void put(std::ofstream& out, const T& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
void put_crc(std::ofstream& out, crc32_accumulator& crc, const T& v) {
    crc.update(&v, sizeof(T));
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::ifstream& in) {
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in) throw error("checkpoint: truncated file");
    return v;
}

template <class T>
T get_crc(std::ifstream& in, crc32_accumulator& crc) {
    T v = get<T>(in);
    crc.update(&v, sizeof(T));
    return v;
}

// ---- key validation ----------------------------------------------------------
// A corrupted or adversarial file must not drive the tree (refine /
// ensure_fields OCTO_ASSERT on misuse and would abort the process): reject
// malformed keys with a clear error instead.

bool key_shape_ok(node_key k) {
    if (k == invalid_key) return false;
    const int significant = 64 - std::countl_zero(k); // 1 + 3*level
    if ((significant - 1) % 3 != 0) return false;
    return (significant - 1) / 3 <= max_key_level;
}

void validate_refined_key(const tree& t, node_key k) {
    if (!key_shape_ok(k)) {
        throw error("checkpoint: malformed refined node key");
    }
    // Keys were written level-by-level, so a valid file always names an
    // existing (parent-created) node, exactly once.
    if (!t.contains(k)) {
        throw error("checkpoint: refined key outside the tree");
    }
    if (t.node(k).refined) {
        throw error("checkpoint: duplicate refined key");
    }
}

void validate_data_key(const tree& t, node_key k) {
    if (!key_shape_ok(k)) {
        throw error("checkpoint: malformed leaf node key");
    }
    if (!t.contains(k)) {
        throw error("checkpoint: leaf data key outside the tree");
    }
    if (t.node(k).refined) {
        throw error("checkpoint: leaf data key names a refined node");
    }
}

// ---- v2 write ----------------------------------------------------------------

void write_image(const tree& t, const checkpoint_meta& meta,
                 const std::string& path) {
    auto* inj = support::io_faults();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw error("cannot open " + path);
    if (inj != nullptr && inj->io_fail()) {
        throw error("checkpoint: transient I/O failure (injected) opening " +
                    path);
    }

    put(out, magic_v2);
    put(out, format_version);

    // Refined node keys (children are implied), then leaves with data.
    std::vector<node_key> refined;
    std::vector<node_key> with_data;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) refined.push_back(k);
            if (!t.node(k).refined && t.node(k).fields != nullptr) {
                with_data.push_back(k);
            }
        }
    }

    // Header section: geometry + simulation meta + section counts, CRC'd so
    // a flipped count can never send the reader off the rails.
    const auto& root = t.root_geometry();
    crc32_accumulator crc;
    put_crc(out, crc, root.origin.x);
    put_crc(out, crc, root.origin.y);
    put_crc(out, crc, root.origin.z);
    put_crc(out, crc, root.dx);
    put_crc(out, crc, meta.time);
    put_crc(out, crc, static_cast<std::int64_t>(meta.steps));
    put_crc(out, crc, static_cast<std::uint64_t>(refined.size()));
    put_crc(out, crc, static_cast<std::uint64_t>(with_data.size()));
    put(out, crc.value());

    // Refined-keys section.
    crc.reset();
    for (const node_key k : refined) put_crc(out, crc, k);
    put(out, crc.value());

    // Leaf-data section.
    crc.reset();
    for (const node_key k : with_data) {
        put_crc(out, crc, k);
        const auto& g = *t.node(k).fields;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        put_crc(out, crc, g.interior(f, i, j, kk));
                    }
    }
    put(out, crc.value());

    if (inj != nullptr && inj->io_fail()) {
        throw error("checkpoint: transient I/O failure (injected) writing " +
                    path);
    }
    out.flush();
    if (!out) throw error("checkpoint: write failed for " + path);
}

// ---- v1 legacy read (no checksums; same key validation) ----------------------

tree read_v1_body(std::ifstream& in) {
    box_geometry root;
    root.origin.x = get<double>(in);
    root.origin.y = get<double>(in);
    root.origin.z = get<double>(in);
    root.dx = get<double>(in);
    tree t(root);

    const auto nrefined = get<std::uint64_t>(in);
    for (std::uint64_t i = 0; i < nrefined; ++i) {
        const auto k = get<node_key>(in);
        validate_refined_key(t, k);
        t.refine(k);
    }
    const auto ndata = get<std::uint64_t>(in);
    for (std::uint64_t d = 0; d < ndata; ++d) {
        const auto k = get<node_key>(in);
        validate_data_key(t, k);
        auto& g = t.ensure_fields(k);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = get<double>(in);
                    }
    }
    return t;
}

// ---- v2 read -----------------------------------------------------------------

checkpoint_data read_v2_body(std::ifstream& in, std::uint64_t file_size) {
    const auto version = get<std::uint32_t>(in);
    if (version != format_version) {
        throw error("checkpoint: unsupported format version " +
                    std::to_string(version));
    }

    // Header section.
    crc32_accumulator crc;
    box_geometry root;
    checkpoint_meta meta;
    root.origin.x = get_crc<double>(in, crc);
    root.origin.y = get_crc<double>(in, crc);
    root.origin.z = get_crc<double>(in, crc);
    root.dx = get_crc<double>(in, crc);
    meta.time = get_crc<double>(in, crc);
    meta.steps = static_cast<long>(get_crc<std::int64_t>(in, crc));
    const auto nrefined = get_crc<std::uint64_t>(in, crc);
    const auto ndata = get_crc<std::uint64_t>(in, crc);
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("header checksum mismatch");
    }

    // The header CRC vouches for the counts; still bound them by what the
    // file could physically hold before allocating anything.
    const std::uint64_t record_bytes = 8 + record_doubles * sizeof(double);
    if (nrefined > file_size / sizeof(node_key) ||
        ndata > file_size / record_bytes) {
        throw error("checkpoint: section counts exceed file size");
    }

    tree t(root);

    // Refined-keys section.
    crc.reset();
    for (std::uint64_t i = 0; i < nrefined; ++i) {
        const auto k = get_crc<node_key>(in, crc);
        validate_refined_key(t, k);
        t.refine(k);
    }
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("refined-keys section checksum mismatch");
    }

    // Leaf-data section.
    crc.reset();
    std::vector<double> record(record_doubles);
    for (std::uint64_t d = 0; d < ndata; ++d) {
        const auto k = get_crc<node_key>(in, crc);
        validate_data_key(t, k);
        in.read(reinterpret_cast<char*>(record.data()),
                static_cast<std::streamsize>(record.size() * sizeof(double)));
        if (!in) throw error("checkpoint: truncated file");
        crc.update(record.data(), record.size() * sizeof(double));
        auto& g = t.ensure_fields(k);
        std::size_t idx = 0;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = record[idx++];
                    }
    }
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("leaf-data section checksum mismatch");
    }

    // Nothing may follow the last checksum: appended bytes mean the file is
    // not the image the writer produced.
    if (in.peek() != std::ifstream::traits_type::eof()) {
        throw error("checkpoint: trailing bytes after final checksum");
    }
    return {std::move(t), meta};
}

checkpoint_data read_any(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw error("cannot open " + path);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    const auto magic = get<std::uint64_t>(in);
    if (magic == magic_v2) return read_v2_body(in, file_size);
    if (magic == magic_v1) return {read_v1_body(in), checkpoint_meta{}};
    throw error("checkpoint: bad magic");
}

} // namespace

void write_checkpoint(const tree& t, const std::string& path,
                      checkpoint_meta meta) {
    // Write-to-temp + atomic rename: the destination either keeps its old
    // content or atomically becomes the complete new image — never a torn
    // half-written file. Transient failures retry with a fresh temp file.
    const std::string tmp = path + ".tmp";
    for (int attempt = 1;; ++attempt) {
        try {
            write_image(t, meta, tmp);
            break;
        } catch (const error&) {
            std::remove(tmp.c_str());
            rt::apex_count("io.transient_write_faults");
            if (attempt >= max_write_attempts) throw;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw error("checkpoint: atomic rename to " + path + " failed");
    }
}

tree read_checkpoint(const std::string& path) {
    return read_any(path).t;
}

checkpoint_data read_checkpoint_full(const std::string& path) {
    return read_any(path);
}

} // namespace octo::io

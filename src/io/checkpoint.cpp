#include "io/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "support/error.hpp"

namespace octo::io {

using namespace octo::amr;

namespace {

constexpr std::uint64_t magic = 0x4f43544f53494d31ULL; // "OCTOSIM1"

template <class T>
void put(std::ofstream& out, const T& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::ifstream& in) {
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in) throw error("checkpoint: truncated file");
    return v;
}

} // namespace

void write_checkpoint(const tree& t, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw error("cannot open " + path);
    put(out, magic);
    const auto& root = t.root_geometry();
    put(out, root.origin.x);
    put(out, root.origin.y);
    put(out, root.origin.z);
    put(out, root.dx);

    // Refined node keys (children are implied), then leaves with data.
    std::vector<node_key> refined;
    std::vector<node_key> with_data;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) refined.push_back(k);
            if (!t.node(k).refined && t.node(k).fields != nullptr) {
                with_data.push_back(k);
            }
        }
    }
    put(out, static_cast<std::uint64_t>(refined.size()));
    for (const node_key k : refined) put(out, k);
    put(out, static_cast<std::uint64_t>(with_data.size()));
    for (const node_key k : with_data) {
        put(out, k);
        const auto& g = *t.node(k).fields;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        put(out, g.interior(f, i, j, kk));
                    }
    }
    if (!out) throw error("checkpoint: write failed for " + path);
}

tree read_checkpoint(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw error("cannot open " + path);
    if (get<std::uint64_t>(in) != magic) throw error("checkpoint: bad magic");
    box_geometry root;
    root.origin.x = get<double>(in);
    root.origin.y = get<double>(in);
    root.origin.z = get<double>(in);
    root.dx = get<double>(in);
    tree t(root);

    const auto nrefined = get<std::uint64_t>(in);
    // Keys were written level-by-level, so parents precede children.
    for (std::uint64_t i = 0; i < nrefined; ++i) {
        const auto k = get<node_key>(in);
        t.refine(k);
    }
    const auto ndata = get<std::uint64_t>(in);
    for (std::uint64_t d = 0; d < ndata; ++d) {
        const auto k = get<node_key>(in);
        auto& g = t.ensure_fields(k);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = get<double>(in);
                    }
    }
    return t;
}

} // namespace octo::io

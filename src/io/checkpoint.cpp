#include "io/checkpoint.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "runtime/apex.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace octo::io {

using namespace octo::amr;

namespace {

constexpr std::uint64_t magic_v1 = 0x4f43544f53494d31ULL; // "OCTOSIM1"
constexpr std::uint64_t magic_v2 = 0x4f43544f53494d32ULL; // "OCTOSIM2"
constexpr std::uint64_t magic_v3 = 0x4f43544f53494d33ULL; // "OCTOSIM3"
constexpr std::uint64_t magic_dlt = 0x4f43544f444c5433ULL; // "OCTODLT3"
constexpr std::uint32_t version_v2 = 2;
constexpr std::uint32_t version_v3 = 3;
/// 64-bit Morton keys hold at most 21 levels; anything deeper is garbage.
constexpr int max_key_level = 20;
/// Transient write failures (real or injected) are retried this many times.
constexpr int max_write_attempts = 5;

constexpr std::size_t record_doubles = std::size_t{n_fields} * INX3;

[[noreturn]] void crc_failure(const std::string& what) {
    rt::apex_count("io.checkpoint_crc_failures");
    throw error("checkpoint: " + what);
}

// ---- raw stream helpers ------------------------------------------------------

template <class T>
void put(std::ofstream& out, const T& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
void put_crc(std::ofstream& out, crc32_accumulator& crc, const T& v) {
    crc.update(&v, sizeof(T));
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::ifstream& in) {
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in) throw error("checkpoint: truncated file");
    return v;
}

template <class T>
T get_crc(std::ifstream& in, crc32_accumulator& crc) {
    T v = get<T>(in);
    crc.update(&v, sizeof(T));
    return v;
}

// ---- key validation ----------------------------------------------------------
// A corrupted or adversarial file must not drive the tree (refine /
// ensure_fields OCTO_ASSERT on misuse and would abort the process): reject
// malformed keys with a clear error instead.

bool key_shape_ok(node_key k) {
    if (k == invalid_key) return false;
    const int significant = 64 - std::countl_zero(k); // 1 + 3*level
    if ((significant - 1) % 3 != 0) return false;
    return (significant - 1) / 3 <= max_key_level;
}

void validate_refined_key(const tree& t, node_key k) {
    if (!key_shape_ok(k)) {
        throw error("checkpoint: malformed refined node key");
    }
    // Keys were written level-by-level, so a valid file always names an
    // existing (parent-created) node, exactly once.
    if (!t.contains(k)) {
        throw error("checkpoint: refined key outside the tree");
    }
    if (t.node(k).refined) {
        throw error("checkpoint: duplicate refined key");
    }
}

void validate_data_key(const tree& t, node_key k) {
    if (!key_shape_ok(k)) {
        throw error("checkpoint: malformed leaf node key");
    }
    if (!t.contains(k)) {
        throw error("checkpoint: leaf data key outside the tree");
    }
    if (t.node(k).refined) {
        throw error("checkpoint: leaf data key names a refined node");
    }
}

/// CRC32 of one leaf's field image, in serialization order — the per-leaf
/// digest a v3 full image records and the delta writer diffs against.
// lint: allow(serialization-coverage): digests the archived fields only; geom is rebuilt from the node key at read time, never serialized
std::uint32_t leaf_image_crc(const subgrid& g) {
    crc32_accumulator crc;
    for (int f = 0; f < n_fields; ++f)
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const double v = g.interior(f, i, j, kk);
                    crc.update(&v, sizeof v);
                }
    return crc.value();
}

// ---- v3 write ----------------------------------------------------------------

void write_image(const tree& t, const checkpoint_meta& meta,
                 const std::string& path) {
    auto* inj = support::io_faults();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw error("cannot open " + path);
    if (inj != nullptr && inj->io_fail()) {
        throw error("checkpoint: transient I/O failure (injected) opening " +
                    path);
    }

    put(out, magic_v3);
    put(out, version_v3);

    // Refined node keys (children are implied), then leaves with data.
    std::vector<node_key> refined;
    std::vector<node_key> with_data;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) refined.push_back(k);
            if (!t.node(k).refined && t.node(k).fields != nullptr) {
                with_data.push_back(k);
            }
        }
    }

    // Header section: geometry + simulation meta + section counts, CRC'd so
    // a flipped count can never send the reader off the rails.
    const auto& root = t.root_geometry();
    crc32_accumulator crc;
    put_crc(out, crc, root.origin.x);
    put_crc(out, crc, root.origin.y);
    put_crc(out, crc, root.origin.z);
    put_crc(out, crc, root.dx);
    put_crc(out, crc, meta.time);
    put_crc(out, crc, static_cast<std::int64_t>(meta.steps));
    put_crc(out, crc, static_cast<std::uint64_t>(refined.size()));
    put_crc(out, crc, static_cast<std::uint64_t>(with_data.size()));
    put(out, crc.value());

    // Refined-keys section.
    crc.reset();
    for (const node_key k : refined) put_crc(out, crc, k);
    put(out, crc.value());

    // Leaf-data section. v3: each leaf record ends with the CRC32 of its own
    // image — the content digest dirty tracking diffs against, and a way to
    // localize corruption to one subgrid. The digest itself is covered by
    // the section CRC.
    crc.reset();
    for (const node_key k : with_data) {
        put_crc(out, crc, k);
        const auto& g = *t.node(k).fields;
        crc32_accumulator leaf;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const double v = g.interior(f, i, j, kk);
                        leaf.update(&v, sizeof v);
                        put_crc(out, crc, v);
                    }
        put_crc(out, crc, leaf.value());
    }
    put(out, crc.value());

    if (inj != nullptr && inj->io_fail()) {
        throw error("checkpoint: transient I/O failure (injected) writing " +
                    path);
    }
    out.flush();
    if (!out) throw error("checkpoint: write failed for " + path);
}

// ---- v1 legacy read (no checksums; same key validation) ----------------------

tree read_v1_body(std::ifstream& in) {
    box_geometry root;
    root.origin.x = get<double>(in);
    root.origin.y = get<double>(in);
    root.origin.z = get<double>(in);
    root.dx = get<double>(in);
    tree t(root);

    const auto nrefined = get<std::uint64_t>(in);
    for (std::uint64_t i = 0; i < nrefined; ++i) {
        const auto k = get<node_key>(in);
        validate_refined_key(t, k);
        t.refine(k);
    }
    const auto ndata = get<std::uint64_t>(in);
    for (std::uint64_t d = 0; d < ndata; ++d) {
        const auto k = get<node_key>(in);
        validate_data_key(t, k);
        auto& g = t.ensure_fields(k);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = get<double>(in);
                    }
    }
    return t;
}

// ---- v2 / v3 read ------------------------------------------------------------
// Identical section layout; v3 leaf records additionally end with the leaf's
// own image digest, verified per leaf.

checkpoint_data read_v23_body(std::ifstream& in, std::uint64_t file_size,
                              std::uint32_t expected_version) {
    const auto version = get<std::uint32_t>(in);
    if (version != expected_version) {
        throw error("checkpoint: unsupported format version " +
                    std::to_string(version));
    }
    const bool v3 = version == version_v3;

    // Header section.
    crc32_accumulator crc;
    box_geometry root;
    checkpoint_meta meta;
    root.origin.x = get_crc<double>(in, crc);
    root.origin.y = get_crc<double>(in, crc);
    root.origin.z = get_crc<double>(in, crc);
    root.dx = get_crc<double>(in, crc);
    meta.time = get_crc<double>(in, crc);
    meta.steps = static_cast<long>(get_crc<std::int64_t>(in, crc));
    const auto nrefined = get_crc<std::uint64_t>(in, crc);
    const auto ndata = get_crc<std::uint64_t>(in, crc);
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("header checksum mismatch");
    }

    // The header CRC vouches for the counts; still bound them by what the
    // file could physically hold before allocating anything.
    const std::uint64_t record_bytes =
        8 + record_doubles * sizeof(double) + (v3 ? 4 : 0);
    if (nrefined > file_size / sizeof(node_key) ||
        ndata > file_size / record_bytes) {
        throw error("checkpoint: section counts exceed file size");
    }

    tree t(root);

    // Refined-keys section.
    crc.reset();
    for (std::uint64_t i = 0; i < nrefined; ++i) {
        const auto k = get_crc<node_key>(in, crc);
        validate_refined_key(t, k);
        t.refine(k);
    }
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("refined-keys section checksum mismatch");
    }

    // Leaf-data section.
    crc.reset();
    std::vector<double> record(record_doubles);
    for (std::uint64_t d = 0; d < ndata; ++d) {
        const auto k = get_crc<node_key>(in, crc);
        validate_data_key(t, k);
        in.read(reinterpret_cast<char*>(record.data()),
                static_cast<std::streamsize>(record.size() * sizeof(double)));
        if (!in) throw error("checkpoint: truncated file");
        crc.update(record.data(), record.size() * sizeof(double));
        if (v3) {
            const auto digest = get_crc<std::uint32_t>(in, crc);
            if (digest !=
                crc32(record.data(), record.size() * sizeof(double))) {
                crc_failure("leaf image digest mismatch");
            }
        }
        auto& g = t.ensure_fields(k);
        std::size_t idx = 0;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        g.interior(f, i, j, kk) = record[idx++];
                    }
    }
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("leaf-data section checksum mismatch");
    }

    // Nothing may follow the last checksum: appended bytes mean the file is
    // not the image the writer produced.
    if (in.peek() != std::ifstream::traits_type::eof()) {
        throw error("checkpoint: trailing bytes after final checksum");
    }
    return {std::move(t), meta};
}

checkpoint_data read_any(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw error("cannot open " + path);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    const auto magic = get<std::uint64_t>(in);
    if (magic == magic_v3) return read_v23_body(in, file_size, version_v3);
    if (magic == magic_v2) return read_v23_body(in, file_size, version_v2);
    if (magic == magic_v1) return {read_v1_body(in), checkpoint_meta{}};
    if (magic == magic_dlt) {
        throw error("checkpoint: delta file given where a full image is "
                    "expected (use read_checkpoint_chain)");
    }
    throw error("checkpoint: bad magic");
}

// ---- delta write -------------------------------------------------------------

void put_delta_header(std::ofstream& out, crc32_accumulator& crc,
                      const delta_header& h) {
    put_crc(out, crc, h.time);
    put_crc(out, crc, h.steps);
    put_crc(out, crc, h.base_crc);
    put_crc(out, crc, h.nrefined);
    put_crc(out, crc, h.ndirty);
}

delta_header get_delta_header(std::ifstream& in, crc32_accumulator& crc) {
    delta_header h;
    h.time = get_crc<double>(in, crc);
    h.steps = get_crc<std::int64_t>(in, crc);
    h.base_crc = get_crc<std::uint32_t>(in, crc);
    h.nrefined = get_crc<std::uint64_t>(in, crc);
    h.ndirty = get_crc<std::uint64_t>(in, crc);
    return h;
}

void write_delta_image(const tree& t, const leaf_digest_map& base,
                       const checkpoint_meta& meta, const std::string& path,
                       delta_stats& stats) {
    auto* inj = support::io_faults();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw error("cannot open " + path);
    if (inj != nullptr && inj->io_fail()) {
        throw error("checkpoint: transient I/O failure (injected) opening " +
                    path);
    }

    // Full structure snapshot (regrids between base and delta are handled by
    // rebuilding the tree from scratch) + only the leaves whose content
    // digest moved away from the base image.
    std::vector<node_key> refined;
    std::vector<std::pair<node_key, std::uint32_t>> dirty;
    std::size_t total_leaves = 0;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) {
                refined.push_back(k);
            } else if (t.node(k).fields != nullptr) {
                ++total_leaves;
                const std::uint32_t digest = leaf_image_crc(*t.node(k).fields);
                const auto it = base.find(k);
                if (it == base.end() || it->second != digest) {
                    dirty.emplace_back(k, digest);
                }
            }
        }
    }

    put(out, magic_dlt);
    put(out, version_v3);

    delta_header h;
    h.time = meta.time;
    h.steps = static_cast<std::int64_t>(meta.steps);
    h.base_crc = digest_map_crc(base);
    h.nrefined = static_cast<std::uint64_t>(refined.size());
    h.ndirty = static_cast<std::uint64_t>(dirty.size());
    crc32_accumulator crc;
    put_delta_header(out, crc, h);
    put(out, crc.value());

    crc.reset();
    for (const node_key k : refined) put_crc(out, crc, k);
    put(out, crc.value());

    // Dirty-leaf section: same record layout as a v3 full image (key, image,
    // per-leaf digest), so one reader path handles both.
    crc.reset();
    for (const auto& [k, digest] : dirty) {
        put_crc(out, crc, k);
        const auto& g = *t.node(k).fields;
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        put_crc(out, crc, g.interior(f, i, j, kk));
                    }
        put_crc(out, crc, digest);
    }
    put(out, crc.value());

    if (inj != nullptr && inj->io_fail()) {
        throw error("checkpoint: transient I/O failure (injected) writing " +
                    path);
    }
    stats.dirty_leaves = dirty.size();
    stats.total_leaves = total_leaves;
    stats.bytes = static_cast<std::uint64_t>(out.tellp());
    out.flush();
    if (!out) throw error("checkpoint: write failed for " + path);
}

// ---- delta read / apply ------------------------------------------------------

checkpoint_data apply_delta(const checkpoint_data& base,
                            const leaf_digest_map& base_digests,
                            // lint: allow(serialization-coverage): the delta's own CRC'd header supersedes base.meta; reading it would resurrect stale time/steps
                            const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw error("cannot open " + path);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    if (get<std::uint64_t>(in) != magic_dlt) {
        throw error("checkpoint: not a delta file: " + path);
    }
    if (get<std::uint32_t>(in) != version_v3) {
        throw error("checkpoint: unsupported delta version");
    }

    crc32_accumulator crc;
    const delta_header h = get_delta_header(in, crc);
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("delta header checksum mismatch");
    }
    if (h.base_crc != digest_map_crc(base_digests)) {
        crc_failure("delta does not match the loaded base image");
    }
    const std::uint64_t record_bytes =
        8 + record_doubles * sizeof(double) + 4;
    if (h.nrefined > file_size / sizeof(node_key) ||
        h.ndirty > file_size / record_bytes) {
        throw error("checkpoint: delta section counts exceed file size");
    }

    tree t(base.t.root_geometry());
    crc.reset();
    for (std::uint64_t i = 0; i < h.nrefined; ++i) {
        const auto k = get_crc<node_key>(in, crc);
        validate_refined_key(t, k);
        t.refine(k);
    }
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("delta refined-keys section checksum mismatch");
    }

    crc.reset();
    std::map<node_key, std::vector<double>> dirty;
    std::vector<double> record(record_doubles);
    for (std::uint64_t d = 0; d < h.ndirty; ++d) {
        const auto k = get_crc<node_key>(in, crc);
        validate_data_key(t, k);
        in.read(reinterpret_cast<char*>(record.data()),
                static_cast<std::streamsize>(record.size() * sizeof(double)));
        if (!in) throw error("checkpoint: truncated file");
        crc.update(record.data(), record.size() * sizeof(double));
        const auto digest = get_crc<std::uint32_t>(in, crc);
        if (digest != crc32(record.data(), record.size() * sizeof(double))) {
            crc_failure("delta leaf image digest mismatch");
        }
        dirty.emplace(k, record);
    }
    if (get<std::uint32_t>(in) != crc.value()) {
        crc_failure("delta leaf-data section checksum mismatch");
    }
    if (in.peek() != std::ifstream::traits_type::eof()) {
        throw error("checkpoint: trailing bytes after final checksum");
    }

    // Populate: dirty leaves from the delta, clean leaves from the base.
    for (const node_key k : t.leaves_sfc()) {
        const auto it = dirty.find(k);
        if (it != dirty.end()) {
            auto& g = t.ensure_fields(k);
            std::size_t idx = 0;
            for (int f = 0; f < n_fields; ++f)
                for (int i = 0; i < INX; ++i)
                    for (int j = 0; j < INX; ++j)
                        for (int kk = 0; kk < INX; ++kk) {
                            g.interior(f, i, j, kk) = it->second[idx++];
                        }
            continue;
        }
        if (!base.t.contains(k) || base.t.node(k).refined) {
            throw error("checkpoint: delta marks leaf clean but the base "
                        "image cannot supply it");
        }
        if (base.t.node(k).fields == nullptr) continue; // data-less leaf
        const auto& src = *base.t.node(k).fields;
        auto& dst = t.ensure_fields(k);
        for (int f = 0; f < n_fields; ++f)
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        dst.interior(f, i, j, kk) = src.interior(f, i, j, kk);
                    }
    }
    checkpoint_meta meta;
    meta.time = h.time;
    meta.steps = static_cast<long>(h.steps);
    return {std::move(t), meta};
}

} // namespace

void write_checkpoint(const tree& t, const std::string& path,
                      checkpoint_meta meta) {
    // Write-to-temp + atomic rename: the destination either keeps its old
    // content or atomically becomes the complete new image — never a torn
    // half-written file. Transient failures retry with a fresh temp file.
    const std::string tmp = path + ".tmp";
    for (int attempt = 1;; ++attempt) {
        try {
            write_image(t, meta, tmp);
            break;
        } catch (const error&) {
            std::remove(tmp.c_str());
            rt::apex_count("io.transient_write_faults");
            if (attempt >= max_write_attempts) throw;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw error("checkpoint: atomic rename to " + path + " failed");
    }
}

tree read_checkpoint(const std::string& path) {
    return read_any(path).t;
}

checkpoint_data read_checkpoint_full(const std::string& path) {
    return read_any(path);
}

leaf_digest_map leaf_digests(const tree& t) {
    leaf_digest_map m;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (!t.node(k).refined && t.node(k).fields != nullptr) {
                m.emplace(k, leaf_image_crc(*t.node(k).fields));
            }
        }
    }
    return m;
}

std::uint32_t digest_map_crc(const leaf_digest_map& digests) {
    crc32_accumulator crc;
    for (const auto& [k, d] : digests) {
        crc.update(&k, sizeof(k));
        crc.update(&d, sizeof(d));
    }
    return crc.value();
}

delta_stats write_checkpoint_delta(const tree& t, const std::string& path,
                                   const leaf_digest_map& base,
                                   checkpoint_meta meta) {
    // Same durability contract as the full writer: temp file, bounded retry
    // over transient failures, atomic rename into place.
    delta_stats stats;
    const std::string tmp = path + ".tmp";
    for (int attempt = 1;; ++attempt) {
        try {
            write_delta_image(t, base, meta, tmp, stats);
            break;
        } catch (const error&) {
            std::remove(tmp.c_str());
            rt::apex_count("io.transient_write_faults");
            if (attempt >= max_write_attempts) throw;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw error("checkpoint: atomic rename to " + path + " failed");
    }
    rt::apex_count("io.delta_checkpoint_bytes", stats.bytes);
    return stats;
}

checkpoint_data read_checkpoint_chain(const std::vector<std::string>& chain) {
    if (chain.empty()) throw error("checkpoint: empty restore chain");
    checkpoint_data base = read_any(chain.front());
    if (chain.size() == 1) return base;
    // Deltas are base-relative: each one is validated, the last one wins.
    const leaf_digest_map digests = leaf_digests(base.t);
    checkpoint_data out = apply_delta(base, digests, chain[1]);
    for (std::size_t i = 2; i < chain.size(); ++i) {
        out = apply_delta(base, digests, chain[i]);
    }
    return out;
}

} // namespace octo::io

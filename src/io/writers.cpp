#include "io/writers.hpp"

#include <algorithm>
#include <fstream>

#include "support/error.hpp"

namespace octo::io {

using namespace octo::amr;

double sample(const tree& t, int field, const dvec3& r) {
    const box_geometry root = t.root_geometry();
    const double edge = root.dx * INX;
    if (r.x < root.origin.x || r.y < root.origin.y || r.z < root.origin.z ||
        r.x >= root.origin.x + edge || r.y >= root.origin.y + edge ||
        r.z >= root.origin.z + edge) {
        return 0.0;
    }
    node_key k = root_key;
    while (t.node(k).refined) {
        const box_geometry g = t.geometry(k);
        const double half = g.dx * INX / 2.0;
        const int cx = r.x >= g.origin.x + half ? 1 : 0;
        const int cy = r.y >= g.origin.y + half ? 1 : 0;
        const int cz = r.z >= g.origin.z + half ? 1 : 0;
        k = key_child(k, cx | (cy << 1) | (cz << 2));
    }
    const auto& n = t.node(k);
    if (n.fields == nullptr) return 0.0;
    const box_geometry g = n.fields->geom;
    const int i = std::clamp(static_cast<int>((r.x - g.origin.x) / g.dx), 0, INX - 1);
    const int j = std::clamp(static_cast<int>((r.y - g.origin.y) / g.dx), 0, INX - 1);
    const int kk = std::clamp(static_cast<int>((r.z - g.origin.z) / g.dx), 0, INX - 1);
    return n.fields->interior(field, i, j, kk);
}

void write_cells_csv(const tree& t, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw error("cannot open " + path);
    out << "x,y,z,level,dx";
    for (int f = 0; f < n_fields; ++f) out << ',' << field_name(f);
    out << '\n';
    for (const auto k : t.leaves_sfc()) {
        const auto& n = t.node(k);
        if (n.fields == nullptr) continue;
        const auto& g = *n.fields;
        const int level = key_level(k);
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j)
                for (int kk = 0; kk < INX; ++kk) {
                    const dvec3 c = g.geom.cell_center(i, j, kk);
                    out << c.x << ',' << c.y << ',' << c.z << ',' << level << ','
                        << g.geom.dx;
                    for (int f = 0; f < n_fields; ++f) {
                        out << ',' << g.interior(f, i, j, kk);
                    }
                    out << '\n';
                }
    }
}

void write_slice_csv(const tree& t, int field, double z0, int n,
                     const std::string& path) {
    std::ofstream out(path);
    if (!out) throw error("cannot open " + path);
    const box_geometry root = t.root_geometry();
    const double edge = root.dx * INX;
    for (int row = 0; row < n; ++row) {
        const double y = root.origin.y + (row + 0.5) * edge / n;
        for (int col = 0; col < n; ++col) {
            const double x = root.origin.x + (col + 0.5) * edge / n;
            out << (col ? "," : "") << sample(t, field, {x, y, z0});
        }
        out << '\n';
    }
}

} // namespace octo::io

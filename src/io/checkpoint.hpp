#pragma once
// Binary checkpoint / restart. The paper's scaling methodology is built on
// restart files: "A level 13 restart file ... was used as the basis for all
// runs. For all levels the restart file for level 13 was read and refined to
// higher levels of resolution through conservative interpolation of the
// evolved variables" (§6.2). write/read here plus simulation::regrid
// reproduce exactly that workflow.
//
// Format v2 (ISSUE 5) hardens the 5400-node-run workflow against an
// imperfect machine:
//   * write-to-temp + atomic rename — a crash or transient I/O failure mid-
//     write never clobbers the previous checkpoint,
//   * bounded retry over injected/transient write failures,
//   * versioned header and per-section CRC32 (header / refined keys / leaf
//     data) — any bit flip or truncation is detected, never silently loaded,
//   * bounds-validated node keys on read — a corrupted or adversarial file
//     cannot drive the tree with garbage keys,
//   * simulation metadata (time, step count) so a restart resumes mid-run
//     bit-identically.
// v1 files (no checksums) are still readable, with the same key validation.
//
// Format v3 (ISSUE 10) adds what elastic recovery needs:
//   * full images additionally carry a per-leaf CRC32 of each leaf's field
//     image — the content digests that drive incremental dirty tracking
//     (and localize corruption to one subgrid instead of "somewhere in the
//     leaf-data section"),
//   * a companion *delta* file format: a CRC'd header, the full refined-key
//     snapshot (so regrids between base and delta are handled), and only
//     the leaves whose digest changed since the base image. Every delta is
//     bound to its base by a digest-map checksum, so a delta can never be
//     silently applied to the wrong (or a stale) base.
// v2 and v1 files are still readable; per-section CRCs are preserved.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "amr/tree.hpp"

namespace octo::io {

/// Simulation state carried alongside the tree so a restart continues
/// exactly where the writer stopped.
struct checkpoint_meta {
    double time = 0;
    long steps = 0;
};

struct checkpoint_data {
    amr::tree t;
    checkpoint_meta meta;
};

/// Serialize the tree structure (keys) and every leaf's interior field data
/// (format v2: checksummed sections, atomic rename into place). Retries
/// transient write failures (including injected ones — support/fault.hpp) a
/// bounded number of times before throwing; the destination file is only
/// ever replaced by a fully written, checksummed image.
void write_checkpoint(const amr::tree& t, const std::string& path,
                      checkpoint_meta meta = {});

/// Rebuild a tree from a checkpoint. The root geometry is restored from the
/// file; field storage is allocated for every node that had data. Throws
/// octo::error on any checksum mismatch, truncation, trailing garbage or
/// out-of-bounds key (APEX counter: io.checkpoint_crc_failures).
amr::tree read_checkpoint(const std::string& path);

/// As read_checkpoint, but also returns the simulation metadata (v1 files
/// report zeros — they predate the meta header).
checkpoint_data read_checkpoint_full(const std::string& path);

// ---- incremental checkpoint deltas (ISSUE 10) -------------------------------

/// Per-leaf content digests: leaf key -> CRC32 of its serialized field
/// image (exactly the per-leaf CRCs a v3 full image records). This is the
/// dirty-tracking state a writer holds between a full checkpoint and its
/// deltas: a leaf whose digest changed is dirty.
using leaf_digest_map = std::map<amr::node_key, std::uint32_t>;

/// Compute the digests a v3 full image of `t` would carry.
leaf_digest_map leaf_digests(const amr::tree& t);

/// Identity of a base image: CRC32 over its sorted (key, digest) pairs.
std::uint32_t digest_map_crc(const leaf_digest_map& digests);

/// Everything the delta reader must trust before it touches the sections;
/// written CRC'd, in this member order, by the delta writer.
struct delta_header {
    double time = 0;              ///< checkpoint_meta::time at the delta
    std::int64_t steps = 0;       ///< checkpoint_meta::steps at the delta
    std::uint32_t base_crc = 0;   ///< digest_map_crc of the required base
    std::uint64_t nrefined = 0;   ///< full refined-key snapshot length
    std::uint64_t ndirty = 0;     ///< leaves whose digest changed
};

struct delta_stats {
    std::size_t dirty_leaves = 0;
    std::size_t total_leaves = 0;
    std::uint64_t bytes = 0; ///< delta file size (APEX: io.delta_checkpoint_bytes)
};

/// Write an incremental checkpoint: only leaves of `t` whose image digest
/// differs from `base` (plus the full tree structure, so regrids are
/// handled). Same durability contract as write_checkpoint: temp file,
/// bounded retry, atomic rename, per-section CRC32.
delta_stats write_checkpoint_delta(const amr::tree& t, const std::string& path,
                                   const leaf_digest_map& base,
                                   checkpoint_meta meta = {});

/// Restore from a chain: chain[0] is a full image (any readable version),
/// every later entry a delta bound to that base (later deltas supersede
/// earlier ones — each is base-relative). Throws octo::error on any CRC
/// mismatch, a delta whose base_crc does not match the loaded base, or a
/// clean leaf the base cannot supply.
checkpoint_data read_checkpoint_chain(const std::vector<std::string>& chain);

} // namespace octo::io

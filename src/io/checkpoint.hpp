#pragma once
// Binary checkpoint / restart. The paper's scaling methodology is built on
// restart files: "A level 13 restart file ... was used as the basis for all
// runs. For all levels the restart file for level 13 was read and refined to
// higher levels of resolution through conservative interpolation of the
// evolved variables" (§6.2). write/read here plus simulation::regrid
// reproduce exactly that workflow.
//
// Format v2 (ISSUE 5) hardens the 5400-node-run workflow against an
// imperfect machine:
//   * write-to-temp + atomic rename — a crash or transient I/O failure mid-
//     write never clobbers the previous checkpoint,
//   * bounded retry over injected/transient write failures,
//   * versioned header and per-section CRC32 (header / refined keys / leaf
//     data) — any bit flip or truncation is detected, never silently loaded,
//   * bounds-validated node keys on read — a corrupted or adversarial file
//     cannot drive the tree with garbage keys,
//   * simulation metadata (time, step count) so a restart resumes mid-run
//     bit-identically.
// v1 files (no checksums) are still readable, with the same key validation.

#include <string>

#include "amr/tree.hpp"

namespace octo::io {

/// Simulation state carried alongside the tree so a restart continues
/// exactly where the writer stopped.
struct checkpoint_meta {
    double time = 0;
    long steps = 0;
};

struct checkpoint_data {
    amr::tree t;
    checkpoint_meta meta;
};

/// Serialize the tree structure (keys) and every leaf's interior field data
/// (format v2: checksummed sections, atomic rename into place). Retries
/// transient write failures (including injected ones — support/fault.hpp) a
/// bounded number of times before throwing; the destination file is only
/// ever replaced by a fully written, checksummed image.
void write_checkpoint(const amr::tree& t, const std::string& path,
                      checkpoint_meta meta = {});

/// Rebuild a tree from a checkpoint. The root geometry is restored from the
/// file; field storage is allocated for every node that had data. Throws
/// octo::error on any checksum mismatch, truncation, trailing garbage or
/// out-of-bounds key (APEX counter: io.checkpoint_crc_failures).
amr::tree read_checkpoint(const std::string& path);

/// As read_checkpoint, but also returns the simulation metadata (v1 files
/// report zeros — they predate the meta header).
checkpoint_data read_checkpoint_full(const std::string& path);

} // namespace octo::io

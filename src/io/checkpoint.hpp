#pragma once
// Binary checkpoint / restart. The paper's scaling methodology is built on
// restart files: "A level 13 restart file ... was used as the basis for all
// runs. For all levels the restart file for level 13 was read and refined to
// higher levels of resolution through conservative interpolation of the
// evolved variables" (§6.2). write/read here plus simulation::regrid
// reproduce exactly that workflow.

#include <string>

#include "amr/tree.hpp"

namespace octo::io {

/// Serialize the tree structure (keys) and every leaf's interior field data.
void write_checkpoint(const amr::tree& t, const std::string& path);

/// Rebuild a tree from a checkpoint. The root geometry is restored from the
/// file; field storage is allocated for every node that had data.
amr::tree read_checkpoint(const std::string& path);

} // namespace octo::io

#pragma once
// Output writers — the Silo/HDF5 substitution (DESIGN.md): CSV dumps of the
// leaf cells and uniform-grid slice resampling for quick visualization of
// merger runs (Fig 1-style density maps, as text data).

#include <string>

#include "amr/tree.hpp"

namespace octo::io {

/// Write every leaf cell as one CSV row:
///   x,y,z,level,dx,rho,sx,...,frac_atmos
void write_cells_csv(const amr::tree& t, const std::string& path);

/// Resample one field onto a uniform n x n grid on the plane z = z0 and
/// write it as CSV (row-major, y down). Nearest-cell sampling.
void write_slice_csv(const amr::tree& t, int field, double z0, int n,
                     const std::string& path);

/// Sample one field at a point by nearest-cell lookup (0 outside the domain).
double sample(const amr::tree& t, int field, const dvec3& r);

} // namespace octo::io

#pragma once
// Vector-clock happens-before race detector and lock-order (deadlock-cycle)
// graph for the hand-rolled runtime (ISSUE: concurrency-correctness layer).
//
// The detector is a FastTrack-style checker at *logical region* granularity:
// instead of shadowing every byte, the instrumented schedules report which
// logical buffer (a node's moments, a leaf's interior, one ghost region, one
// axis' flux buffer, ...) each task touches. Synchronization primitives
// report release/acquire edges (hooks.hpp); the detector keeps one vector
// clock per thread and per sync object and checks on every region access
// that the previous conflicting epoch is contained in the accessor's clock.
//
// Lock order: every blocking acquire records edges from all currently-held
// locks to the new one; a path in the opposite direction means two run-time
// orders exist and the pair can deadlock — reported as an inversion even if
// the schedule that ran never actually deadlocked.
//
// The class is always compiled (tests link it in every configuration); the
// *hooks* in the primitives are no-ops unless OCTO_RACE_DETECT is defined,
// so without that option nothing ever calls in here.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace octo::sanitize {

struct race_report {
    std::string region;   ///< region name given at the access hook
    std::string kind;     ///< "write-write", "read-write" or "write-read"
    unsigned first_thread = 0;
    unsigned second_thread = 0;
};

struct inversion_report {
    const void* held = nullptr;     ///< lock already held
    const void* acquired = nullptr; ///< lock whose acquisition closed a cycle
};

class detector {
  public:
    /// Process-wide instance (leaky singleton, same policy as the recycler).
    static detector& instance();

    /// Hooks only record while enabled; reset() wipes all clocks, region
    /// shadow state, the lock graph and the reports.
    void enable();
    void disable();
    bool active() const noexcept;
    void reset();

    // ---- hook entry points (see hooks.hpp for semantics) -------------------
    void on_release(const void* sync);
    void on_acquire(const void* sync);
    void on_sync_retire(const void* sync);
    void on_lock_acquired(const void* lock);
    void on_lock_released(const void* lock);
    void on_region_access(const void* region, const char* name, bool is_write);

    // ---- results -----------------------------------------------------------
    std::size_t race_count() const;
    std::size_t inversion_count() const;
    std::vector<race_report> races() const;
    std::vector<inversion_report> inversions() const;
    /// Accesses / edges recorded since the last reset (coverage telemetry —
    /// lets tests assert the instrumentation actually fired).
    std::uint64_t accesses_checked() const;
    std::uint64_t hb_edges_recorded() const;
    /// Human-readable report of every race and inversion.
    std::string summary() const;

  private:
    detector();
    ~detector() = delete; // leaky singleton

    struct impl;
    impl* impl_;
};

/// RAII scope: reset + enable on construction, disable on destruction.
class session {
  public:
    session() {
        detector::instance().reset();
        detector::instance().enable();
    }
    ~session() { detector::instance().disable(); }
    session(const session&) = delete;
    session& operator=(const session&) = delete;
};

} // namespace octo::sanitize

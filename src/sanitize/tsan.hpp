#pragma once
// ThreadSanitizer annotations for the custom synchronization primitives.
//
// The runtime's future state and the recycler free lists already order their
// hand-offs with std::mutex / std::atomic, which TSan models natively — but
// the *intent* of each hand-off is invisible to it, and any future change
// that weakens an ordering (e.g. replacing a mutex with a relaxed flag)
// would surface as an obscure report deep inside a kernel. Annotating the
// hand-off points keeps the happens-before edges explicit in TSan's model so
// reports point at the primitive that lost its edge, and protects the
// free-list hand-off where the *payload* bytes are written before
// deallocate() and read after a later allocate() without any per-byte
// synchronization TSan could attribute.
//
// Expands to nothing unless the build is actually under TSan.

#if defined(__SANITIZE_THREAD__)
#define OCTO_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OCTO_TSAN_ENABLED 1
#endif
#endif

#ifdef OCTO_TSAN_ENABLED

extern "C" {
void AnnotateHappensBefore(const char* file, int line,
                           const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line,
                          const volatile void* addr);
void AnnotateNewMemory(const char* file, int line, const volatile void* addr,
                       unsigned long size); // NOLINT(google-runtime-int)
}

#define OCTO_TSAN_HB_BEFORE(addr) \
    AnnotateHappensBefore(__FILE__, __LINE__, (const volatile void*)(addr))
#define OCTO_TSAN_HB_AFTER(addr) \
    AnnotateHappensAfter(__FILE__, __LINE__, (const volatile void*)(addr))
#define OCTO_TSAN_NEW_MEMORY(addr, size)                       \
    AnnotateNewMemory(__FILE__, __LINE__,                      \
                      (const volatile void*)(addr),            \
                      (unsigned long)(size))

#else

#define OCTO_TSAN_HB_BEFORE(addr) ((void)0)
#define OCTO_TSAN_HB_AFTER(addr) ((void)0)
#define OCTO_TSAN_NEW_MEMORY(addr, size) ((void)0)

#endif // OCTO_TSAN_ENABLED

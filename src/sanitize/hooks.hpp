#pragma once
// Synchronization hooks for the in-repo concurrency-correctness layer.
//
// Every hand-rolled synchronization primitive in src/runtime/ (future state,
// channel, spinlock, latch, thread-pool task hand-off, when_all join
// counters) and the buffer_recycler free-list hand-off calls these hooks at
// the points where a happens-before edge is created or consumed. The
// futurized FMM and hydro schedules additionally report which logical data
// region each task reads and writes. The detector (detector.hpp) replays the
// edges as vector-clock joins and flags
//   * cross-thread region accesses not ordered by any recorded edge (a data
//     race the DAG failed to express), and
//   * lock-acquisition orders that form a cycle (a potential deadlock).
//
// Builds without OCTO_RACE_DETECT compile every hook to an empty inline
// function: the instrumented code is identical, the cost is zero.

#ifdef OCTO_RACE_DETECT

namespace octo::sanitize {

/// Record a release operation on sync object `sync`: everything this thread
/// did so far happens-before any subsequent hb_after() on the same object.
void hb_before(const void* sync);

/// Record an acquire operation on `sync`: join every release recorded on it
/// into this thread's clock.
void hb_after(const void* sync);

/// Forget a sync object (its storage is being destroyed or recycled), so an
/// unrelated object reincarnated at the same address starts clean.
void sync_retire(const void* sync);

/// Blocking lock acquired: records the lock-order edge (held locks -> lock),
/// flags cycles, and acts as hb_after(lock).
void lock_acquired(const void* lock);

/// Lock released: acts as hb_before(lock) and pops the held-lock stack.
void lock_released(const void* lock);

/// A task is reading / writing the logical data region keyed by `region`.
/// Unordered conflicting accesses from two threads are reported as races.
void region_read(const void* region, const char* name);
void region_write(const void* region, const char* name);

} // namespace octo::sanitize

#else // !OCTO_RACE_DETECT — all hooks are no-ops the optimizer deletes.

namespace octo::sanitize {

inline void hb_before(const void*) {}
inline void hb_after(const void*) {}
inline void sync_retire(const void*) {}
inline void lock_acquired(const void*) {}
inline void lock_released(const void*) {}
inline void region_read(const void*, const char*) {}
inline void region_write(const void*, const char*) {}

} // namespace octo::sanitize

#endif // OCTO_RACE_DETECT

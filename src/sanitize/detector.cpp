#include "sanitize/detector.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace octo::sanitize {

namespace {

using clock_t_ = std::uint64_t;
using vclock = std::vector<clock_t_>;

/// slot of the calling thread, -1 before registration.
thread_local int tls_slot = -1;

void join_into(vclock& dst, const vclock& src) {
    if (dst.size() < src.size()) dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
        dst[i] = std::max(dst[i], src[i]);
    }
}

clock_t_ component(const vclock& vc, int slot) {
    const auto s = static_cast<std::size_t>(slot);
    return s < vc.size() ? vc[s] : 0;
}

} // namespace

struct detector::impl {
    mutable std::mutex mutex;
    std::atomic<bool> active{false};

    int nthreads = 0;                 ///< slots handed out so far
    std::vector<vclock> thread_clock; ///< per-slot vector clock

    std::unordered_map<const void*, vclock> sync_clock;

    struct region_state {
        const char* name = "";
        int writer = -1;      ///< slot of the last writer
        clock_t_ write_epoch = 0;
        std::unordered_map<int, clock_t_> read_epochs; ///< slot -> epoch
    };
    std::unordered_map<const void*, region_state> regions;

    // Lock-order graph + per-thread held-lock stacks.
    std::unordered_map<const void*, std::unordered_set<const void*>> lock_edges;
    std::unordered_map<int, std::vector<const void*>> held;

    std::vector<race_report> races;
    std::vector<inversion_report> inversions;
    std::set<std::tuple<const void*, int, int, int>> race_seen;
    std::set<std::pair<const void*, const void*>> inversion_seen;

    std::uint64_t accesses = 0;
    std::uint64_t edges = 0;

    static constexpr std::size_t max_reports = 64;

    /// Register the calling thread (under mutex) and return its slot.
    int slot() {
        if (tls_slot < 0) {
            tls_slot = nthreads++;
            thread_clock.emplace_back();
        }
        if (static_cast<std::size_t>(tls_slot) >= thread_clock.size()) {
            thread_clock.resize(static_cast<std::size_t>(tls_slot) + 1);
        }
        auto& vc = thread_clock[static_cast<std::size_t>(tls_slot)];
        if (vc.size() <= static_cast<std::size_t>(tls_slot)) {
            vc.resize(static_cast<std::size_t>(tls_slot) + 1, 0);
        }
        if (vc[static_cast<std::size_t>(tls_slot)] == 0) {
            vc[static_cast<std::size_t>(tls_slot)] = 1; // epoch 0 = never seen
        }
        return tls_slot;
    }

    /// Is lock `to` reachable from `from` in the lock-order graph?
    bool reachable(const void* from, const void* to) const {
        std::vector<const void*> stack{from};
        std::unordered_set<const void*> visited;
        while (!stack.empty()) {
            const void* l = stack.back();
            stack.pop_back();
            if (l == to) return true;
            if (!visited.insert(l).second) continue;
            if (auto it = lock_edges.find(l); it != lock_edges.end()) {
                for (const void* n : it->second) stack.push_back(n);
            }
        }
        return false;
    }

    void report_race(const void* region, const char* name, const char* kind,
                     int first, int second, int kind_id) {
        if (!race_seen.insert({region, kind_id, first, second}).second) return;
        if (races.size() >= max_reports) return;
        races.push_back({name, kind, static_cast<unsigned>(first),
                         static_cast<unsigned>(second)});
    }
};

detector::detector() : impl_(new impl) {}

detector& detector::instance() {
    static detector* const d = new detector; // leaked on purpose
    return *d;
}

void detector::enable() { impl_->active.store(true, std::memory_order_release); }
void detector::disable() {
    impl_->active.store(false, std::memory_order_release);
}
bool detector::active() const noexcept {
    return impl_->active.load(std::memory_order_acquire);
}

void detector::reset() {
    std::lock_guard lock(impl_->mutex);
    for (auto& vc : impl_->thread_clock) vc.clear();
    impl_->sync_clock.clear();
    impl_->regions.clear();
    impl_->lock_edges.clear();
    impl_->held.clear();
    impl_->races.clear();
    impl_->inversions.clear();
    impl_->race_seen.clear();
    impl_->inversion_seen.clear();
    impl_->accesses = 0;
    impl_->edges = 0;
}

void detector::on_release(const void* sync) {
    if (!active()) return;
    std::lock_guard lock(impl_->mutex);
    const int t = impl_->slot();
    auto& ct = impl_->thread_clock[static_cast<std::size_t>(t)];
    join_into(impl_->sync_clock[sync], ct);
    ++ct[static_cast<std::size_t>(t)]; // later ops are a new epoch
    ++impl_->edges;
}

void detector::on_acquire(const void* sync) {
    if (!active()) return;
    std::lock_guard lock(impl_->mutex);
    const int t = impl_->slot();
    if (auto it = impl_->sync_clock.find(sync); it != impl_->sync_clock.end()) {
        join_into(impl_->thread_clock[static_cast<std::size_t>(t)], it->second);
        ++impl_->edges;
    }
}

void detector::on_sync_retire(const void* sync) {
    if (!active()) return;
    std::lock_guard lock(impl_->mutex);
    impl_->sync_clock.erase(sync);
}

void detector::on_lock_acquired(const void* l) {
    if (!active()) return;
    std::lock_guard lock(impl_->mutex);
    const int t = impl_->slot();
    for (const void* h : impl_->held[t]) {
        if (h == l) continue;
        auto& out = impl_->lock_edges[h];
        if (out.count(l)) continue;
        // Adding h -> l: if l already reaches h the graph gains a cycle,
        // i.e. two schedules acquire this pair in opposite orders.
        if (impl_->reachable(l, h)) {
            if (impl_->inversion_seen.insert({h, l}).second &&
                impl_->inversions.size() < impl::max_reports) {
                impl_->inversions.push_back({h, l});
            }
        }
        out.insert(l);
    }
    impl_->held[t].push_back(l);
    // The previous holder's critical section happens-before ours.
    if (auto it = impl_->sync_clock.find(l); it != impl_->sync_clock.end()) {
        join_into(impl_->thread_clock[static_cast<std::size_t>(t)], it->second);
    }
    ++impl_->edges;
}

void detector::on_lock_released(const void* l) {
    if (!active()) return;
    std::lock_guard lock(impl_->mutex);
    const int t = impl_->slot();
    auto& ct = impl_->thread_clock[static_cast<std::size_t>(t)];
    join_into(impl_->sync_clock[l], ct);
    ++ct[static_cast<std::size_t>(t)];
    auto& held = impl_->held[t];
    if (auto it = std::find(held.rbegin(), held.rend(), l); it != held.rend()) {
        held.erase(std::next(it).base());
    }
    ++impl_->edges;
}

void detector::on_region_access(const void* region, const char* name,
                                bool is_write) {
    if (!active()) return;
    std::lock_guard lock(impl_->mutex);
    const int t = impl_->slot();
    auto& ct = impl_->thread_clock[static_cast<std::size_t>(t)];
    auto& rs = impl_->regions[region];
    rs.name = name;
    ++impl_->accesses;

    // Previous write ordered before this access?
    if (rs.writer >= 0 && rs.writer != t &&
        component(ct, rs.writer) < rs.write_epoch) {
        impl_->report_race(region, name, is_write ? "write-write" : "write-read",
                           rs.writer, t, is_write ? 0 : 1);
    }
    if (is_write) {
        // Every previous read must be ordered before a write.
        for (const auto& [rt, epoch] : rs.read_epochs) {
            if (rt != t && component(ct, rt) < epoch) {
                impl_->report_race(region, name, "read-write", rt, t, 2);
            }
        }
        rs.writer = t;
        rs.write_epoch = component(ct, t);
        rs.read_epochs.clear();
    } else {
        rs.read_epochs[t] = component(ct, t);
    }
}

std::size_t detector::race_count() const {
    std::lock_guard lock(impl_->mutex);
    return impl_->races.size();
}
std::size_t detector::inversion_count() const {
    std::lock_guard lock(impl_->mutex);
    return impl_->inversions.size();
}
std::vector<race_report> detector::races() const {
    std::lock_guard lock(impl_->mutex);
    return impl_->races;
}
std::vector<inversion_report> detector::inversions() const {
    std::lock_guard lock(impl_->mutex);
    return impl_->inversions;
}
std::uint64_t detector::accesses_checked() const {
    std::lock_guard lock(impl_->mutex);
    return impl_->accesses;
}
std::uint64_t detector::hb_edges_recorded() const {
    std::lock_guard lock(impl_->mutex);
    return impl_->edges;
}

std::string detector::summary() const {
    std::lock_guard lock(impl_->mutex);
    std::ostringstream os;
    os << impl_->races.size() << " race(s), " << impl_->inversions.size()
       << " lock inversion(s); " << impl_->accesses << " accesses, "
       << impl_->edges << " hb edges\n";
    for (const auto& r : impl_->races) {
        os << "  race [" << r.kind << "] on " << r.region << ": thread "
           << r.first_thread << " vs thread " << r.second_thread << "\n";
    }
    for (const auto& iv : impl_->inversions) {
        os << "  lock inversion: " << iv.held << " -> " << iv.acquired
           << " closes a cycle\n";
    }
    return os.str();
}

#ifdef OCTO_RACE_DETECT

// ---- hook trampolines (hooks.hpp declarations) -----------------------------

void hb_before(const void* sync) { detector::instance().on_release(sync); }
void hb_after(const void* sync) { detector::instance().on_acquire(sync); }
void sync_retire(const void* sync) { detector::instance().on_sync_retire(sync); }
void lock_acquired(const void* lock) {
    detector::instance().on_lock_acquired(lock);
}
void lock_released(const void* lock) {
    detector::instance().on_lock_released(lock);
}
void region_read(const void* region, const char* name) {
    detector::instance().on_region_access(region, name, false);
}
void region_write(const void* region, const char* name) {
    detector::instance().on_region_access(region, name, true);
}

#endif // OCTO_RACE_DETECT

} // namespace octo::sanitize

#include "cluster/scenario_tree.hpp"

#include <algorithm>
#include <cmath>

#include "amr/config.hpp"
#include "fmm/node_data.hpp"
#include "support/assert.hpp"

namespace octo::cluster {

using namespace octo::amr;

namespace {

// V1309 geometry in units of the separation (paper §6): domain edge 160a,
// primary (R ~ 0.3a) and donor (R ~ 0.18a) near the origin, common
// envelope around both.
constexpr double domain_edge = 160.0;
constexpr double R1 = 0.30, R2 = 0.18, Renv = 1.2;
const dvec3 c1{-0.09, 0, 0};
const dvec3 c2{0.91, 0, 0};
const dvec3 ce{0.41, 0, 0};

/// Distance from point `p` to the closest point of the box [lo, hi].
double box_distance(const dvec3& p, const dvec3& lo, const dvec3& hi) {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    const double dz = std::max({lo.z - p.z, 0.0, p.z - hi.z});
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

/// Upper bound of the analytic density inside a box (profiles are radially
/// monotone, so the bound is exact: evaluate at the closest points).
double box_density_max(const dvec3& lo, const dvec3& hi) {
    double rho = 1e-12;
    const double d1 = box_distance(c1, lo, hi) / R1;
    if (d1 < 1.0) rho += std::pow(1.0 - d1 * d1, 1.5);
    const double d2 = box_distance(c2, lo, hi) / R2;
    if (d2 < 1.0) rho += 0.45 * std::pow(1.0 - d2 * d2, 1.5);
    const double de = box_distance(ce, lo, hi) / Renv;
    if (de < 1.0) rho += 1e-4 * (1.0 - de * de);
    return rho;
}

/// Refinement regimes, directly following §6: "both stars are refined down
/// to 12 levels, with the core of the accretor and donor refined to 13 and
/// 14 levels respectively" (for the level-14 run; deeper runs deepen every
/// regime by one). A node at `level` refines into level+1 iff its box
/// intersects the regime region for that depth.
// Region radii calibrated against Table 4 (see EXPERIMENTS.md).
constexpr double donor_core = 0.31;
constexpr double acc_core = 0.40;
constexpr double star_margin = 0.95;

bool refine_into(int next_level, int finest, const dvec3& lo, const dvec3& hi) {
    if (next_level > finest) return false;
    const int from_top = finest - next_level; // 0 = the finest level
    if (from_top == 0) {
        // Donor core only.
        return box_distance(c2, lo, hi) < donor_core * R2;
    }
    if (from_top == 1) {
        // Accretor core (plus the donor core region nested inside).
        return box_distance(c1, lo, hi) < acc_core * R1 ||
               box_distance(c2, lo, hi) < donor_core * R2;
    }
    if (from_top <= 4) {
        // Both stars with a margin.
        return box_distance(c1, lo, hi) < star_margin * R1 ||
               box_distance(c2, lo, hi) < star_margin * R2;
    }
    // Coarser levels: the common envelope.
    return box_density_max(lo, hi) > 4e-5;
}

} // namespace

double bytes_per_subgrid() {
    // Evolved fields (with ghost shell) + FMM moments + expansions/gravity.
    const double fields = static_cast<double>(n_fields) * NX3 * 8.0;
    const double moments = (1.0 + 3.0 + 6.0) * INX3 * 8.0;
    const double gravity = (fmm::n_taylor + 4.0 + 3.0) * INX3 * 8.0;
    return fields + moments + gravity;
}

scenario_tree build_v1309_tree(int paper_level) {
    OCTO_ASSERT(paper_level >= 10 && paper_level <= 18);
    // The paper's level label equals our octree depth: the domain is 160
    // separations across, so depth-14 sub-grid cells are ~1e-3 of the domain
    // edge, matching the paper's finest-cell sizes for the level-14 run.
    const int depth = paper_level;

    box_geometry root;
    root.origin = {-domain_edge / 2, -domain_edge / 2, -domain_edge / 2};
    root.dx = domain_edge / INX;
    tree t(root);

    t.refine_by(
        [&](node_key k, const box_geometry& g) {
            const int level = key_level(k);
            if (level >= depth) return false;
            const double block = g.dx * INX;
            const dvec3 lo = g.origin;
            const dvec3 hi{g.origin.x + block, g.origin.y + block,
                           g.origin.z + block};
            return refine_into(level + 1, depth, lo, hi);
        },
        depth);

    scenario_tree out{paper_level, std::move(t), 0, 0, 0.0};
    out.subgrids = out.tree.size();
    out.leaves = out.tree.leaf_count();
    out.memory_gb = static_cast<double>(out.subgrids) * bytes_per_subgrid() / 1e9;
    return out;
}

} // namespace octo::cluster

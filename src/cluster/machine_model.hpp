#pragma once
// Machine and workload models for the paper's performance experiments.
//
// Compute-node descriptions (Table 2 / Table 3 hardware) and the per-step
// workload each octree node (sub-grid) generates. CPU kernel rates are
// calibrated to the paper's own CPU-only measurements (e.g. 125 GFLOP/s on
// the 10-core Xeon E5-2660 v3 = 30% of its 384 GFLOP/s peak); everything
// else — GPU behaviour, starvation, scaling — emerges from the simulators.

#include <string>

#include "amr/partition.hpp"
#include "gpu/device.hpp"
#include "net/model.hpp"

namespace octo::cluster {

struct node_spec {
    std::string name;
    int cores = 12;
    double ghz = 2.6;
    double flops_per_cycle = 16; ///< AVX2 FMA double lanes
    /// Achieved FMM kernel rate per core (calibrated; the paper's CPU-only
    /// rows correspond to ~30% of peak on AVX2, ~17% on KNL).
    double core_fmm_gflops = 0.0;
    /// Achieved rate per core in the non-FMM parts of the code (hydro etc.);
    /// lower, since those parts are less vectorized (paper §6.1.2).
    double core_other_gflops = 0.0;
    int num_gpus = 0;
    gpu::device_spec gpu{};

    double cpu_peak_gflops() const { return cores * ghz * flops_per_cycle; }
};

/// Table 2 platforms.
node_spec xeon_e5_2660v3(int cores); ///< 2.4 GHz AVX2, 10 or 20 cores
node_spec xeon_phi_7210();           ///< KNL, 64 cores AVX-512
node_spec piz_daint_node();          ///< Xeon E5-2690 v3 12c + P100 (Table 3)
/// Attach `n` V100s (Table 2 GPU rows).
node_spec with_v100(node_spec base, int n);
/// Attach one P100 (Piz Daint).
node_spec with_p100(node_spec base);

/// Per-sub-grid, per-timestep workload, derived from this repo's actual
/// kernel FLOP constants (fmm/kernels.hpp) and the paper's structure: one
/// same-level kernel per octree node (multipole for refined, monopole for
/// leaves), plus the non-FMM work (hydro, M2M/L2L, reconstruction).
struct workload_spec {
    double multipole_kernel_flops;
    double monopole_kernel_flops;
    /// Non-FMM flops per LEAF per step, as a multiple of the monopole kernel
    /// (calibrated so the FMM is ~40% of CPU-only runtime, §4.3).
    double other_flops_per_leaf;
    /// Halo messages per cross-rank neighbor pair per step (ghost fills for
    /// two RK stages + FMM halo).
    int exchanges_per_pair = 4;
    std::size_t bytes_per_message = 35'000;
    /// Dependent communication rounds on one timestep's critical path:
    /// ghost fills per RK stage plus the level-sequential M2M/L2L sweeps of
    /// the FMM — grows with tree depth. This latency floor is what ends
    /// strong scaling (and where the one-sided port's lower per-hop cost
    /// pays off most, §6.3).
    int dependency_hops = 0;
};
workload_spec v1309_workload();
/// dependency_hops for a tree of the given depth (paper level).
int critical_path_hops(int tree_depth);

// ---- Fig 2 / Fig 3: the distributed scaling model ---------------------------

struct scaling_point {
    int nodes = 0;
    double step_seconds = 0;
    double subgrids_per_second = 0;
    double compute_seconds = 0;       ///< max per-rank compute time
    double comm_exposed_seconds = 0;  ///< communication not hidden by overlap
};

/// Model one timestep of the given partitioned tree on `nodes` compute
/// nodes with the given parcelport. Uses the real per-rank sub-grid counts
/// and cross-rank neighbor pair counts of the SFC partition. When
/// `parts.cost_per_rank` is filled (weighted split / rebalance / accounting
/// with weights), each rank's compute load is its COST share of the total
/// work instead of its raw sub-grid count — the skewed-cost model of the
/// dynamic load-balancing experiments (ISSUE 8).
scaling_point model_step(std::size_t total_subgrids, std::size_t total_leaves,
                         const amr::partition_stats& parts, int nodes,
                         const node_spec& node, const net::network_params& net,
                         const workload_spec& work);

// ---- dynamic load balancing (ISSUE 8) ---------------------------------------

/// Synthetic skewed per-leaf cost profile for the A/B experiments, aligned
/// with t.leaves_sfc(): a leaf at depth d costs per_level_factor^(d - d_min).
/// The merger's refined core (deepest levels, clustered on the curve) then
/// dominates — exactly the hot spot an equal-count split mishandles.
std::vector<double> skewed_leaf_costs(const amr::tree& t,
                                      double per_level_factor = 2.0);

/// Modeled wall-clock cost of one rebalance: every migrated sub-grid ships
/// its full field image as one parcel over the fabric (ranks send in
/// parallel, so the per-node share of the schedule bounds the time). Callers
/// amortize this across the steps between rebalances.
double migration_overhead_seconds(std::size_t migrated_subgrids, int nodes,
                                  const net::network_params& net);

} // namespace octo::cluster

#include "cluster/event_sim.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "support/assert.hpp"

namespace octo::cluster {

namespace {

/// Min-heap of completion times.
using time_heap = std::priority_queue<double, std::vector<double>, std::greater<>>;

struct task {
    bool is_fmm;
    double flops;
};

} // namespace

node_sim_result simulate_node_step(const node_sim_config& cfg) {
    const auto& node = cfg.node;
    OCTO_ASSERT(node.cores >= 1);

    // Task list: the gravity solve enqueues its kernels as a BURST (the
    // tree traversal spawns all same-level kernels of a step close
    // together, paper §5.1 — that burst is what exercises the streams and
    // produces starvation), followed by the non-FMM work of the step.
    // Multipole and monopole kernels interleave within the burst.
    std::vector<task> tasks;
    tasks.reserve(cfg.leaves * 2 + cfg.refined);
    {
        std::size_t emitted_refined = 0;
        for (std::size_t i = 0; i < cfg.leaves; ++i) {
            tasks.push_back({true, cfg.work.monopole_kernel_flops});
            while (emitted_refined * cfg.leaves < (i + 1) * cfg.refined &&
                   emitted_refined < cfg.refined) {
                tasks.push_back({true, cfg.work.multipole_kernel_flops});
                ++emitted_refined;
            }
        }
        while (emitted_refined++ < cfg.refined) {
            tasks.push_back({true, cfg.work.multipole_kernel_flops});
        }
        for (std::size_t i = 0; i < cfg.leaves; ++i) {
            tasks.push_back({false, cfg.work.other_flops_per_leaf});
        }
    }

    // Stream ownership: the max_streams of each GPU are partitioned among
    // the worker threads (paper §5.1 / §6.1.2).
    const int ngpu = node.num_gpus;
    const int streams_per_thread =
        ngpu > 0 ? std::max(1, static_cast<int>(node.gpu.max_streams) * ngpu /
                                   node.cores)
                 : 0;
    // Per-thread in-flight kernel completions (stream occupancy).
    std::vector<time_heap> thread_streams(static_cast<std::size_t>(node.cores));
    // Per-device execution slots (kernel_slots concurrent kernels at the
    // per-kernel rate; more streams may be in flight but wait for a slot).
    std::vector<time_heap> device_slots(static_cast<std::size_t>(std::max(ngpu, 1)));

    // Cores: next-free times.
    std::priority_queue<std::pair<double, int>, std::vector<std::pair<double, int>>,
                        std::greater<>>
        cores;
    for (int c = 0; c < node.cores; ++c) cores.push({0.0, c});

    node_sim_result out;
    const double cpu_fmm_rate = node.core_fmm_gflops * 1e9;
    const double cpu_other_rate = node.core_other_gflops * 1e9;
    const double gpu_kernel_rate =
        ngpu > 0 ? node.gpu.per_kernel_gflops() * 1e9 : 0.0;

    double last_completion = 0.0;

    // ---- aggregated-offload mode (arXiv:2210.06438) ------------------------
    // Cores only ENQUEUE FMM kernels (a descriptor + staging-slice copy, far
    // cheaper than a stream launch); per-device accumulators fuse up to
    // aggregation_batch items into one launch that pays launch_overhead_s
    // and device_kernel_overhead_s ONCE and runs at batched occupancy.
    // The §5.1 fallback condition — the launching thread's streams all
    // busy — cannot fire, because submission does not hold a stream: the
    // burst is absorbed by the queue, so cpu_fallbacks() is zero.
    if (cfg.aggregate && ngpu > 0) {
        struct batch_acc {
            std::size_t items = 0;
            double flops = 0;
            double ready = 0; ///< all items staged by this time
            double first = 0; ///< first item staged at this time (age flush)
        };
        std::vector<batch_acc> dev_batch(static_cast<std::size_t>(ngpu));
        std::vector<double> dev_free(static_cast<std::size_t>(ngpu), 0.0);
        double occ_sum = 0.0;
        std::uint64_t rr = 0;

        auto flush_dev = [&](std::size_t d) {
            batch_acc& b = dev_batch[d];
            if (b.items == 0) return;
            const double blocks =
                static_cast<double>(b.items) * node.gpu.blocks_per_kernel;
            const double occ = std::min(1.0, blocks / node.gpu.num_sms);
            const double rate = node.gpu.peak_gflops * 1e9 * occ;
            const double start =
                std::max(b.ready + cfg.launch_overhead_s, dev_free[d]);
            const double dur = b.flops / rate + cfg.device_kernel_overhead_s;
            dev_free[d] = start + dur;
            out.gpu_busy_s += dur;
            out.kernels_on_gpu += b.items;
            out.fused_launches += 1;
            occ_sum += occ;
            last_completion = std::max(last_completion, dev_free[d]);
            b = {};
        };

        for (const auto& tk : tasks) {
            auto [t, core] = cores.top();
            cores.pop();
            if (!tk.is_fmm) {
                const double dur = tk.flops / cpu_other_rate;
                out.cpu_busy_other_s += dur;
                last_completion = std::max(last_completion, t + dur);
                cores.push({t + dur, core});
                continue;
            }
            out.kernels_total += 1;
            out.fmm_flops += static_cast<std::uint64_t>(tk.flops);
            // Least-loaded device, round-robin on ties (the executor's
            // dispatch policy).
            std::size_t dev = rr++ % static_cast<std::size_t>(ngpu);
            for (std::size_t i = 0; i < static_cast<std::size_t>(ngpu); ++i) {
                const std::size_t d = (dev + i) % static_cast<std::size_t>(ngpu);
                if (dev_free[d] < dev_free[dev]) dev = d;
            }
            const double done_submit = t + cfg.submit_overhead_s;
            batch_acc& b = dev_batch[dev];
            // Age flush: if the pending batch's oldest item would have hit
            // the flush timeout before this item arrived, the background
            // flusher already launched it (at the deadline) — this item
            // starts a fresh batch.
            const double flush_s = cfg.flush_after_us * 1e-6;
            if (b.items > 0 && done_submit > b.first + flush_s) {
                b.ready = std::max(b.ready, b.first + flush_s);
                flush_dev(dev);
            }
            if (b.items == 0) b.first = done_submit;
            b.items += 1;
            b.flops += tk.flops;
            b.ready = std::max(b.ready, done_submit);
            if (b.items >= cfg.aggregation_batch) flush_dev(dev);
            cores.push({done_submit, core});
        }
        for (std::size_t d = 0; d < dev_batch.size(); ++d) flush_dev(d);
        while (!cores.empty()) {
            last_completion = std::max(last_completion, cores.top().first);
            cores.pop();
        }
        out.makespan_s = last_completion;
        out.mean_occupancy =
            out.fused_launches == 0
                ? 0.0
                : occ_sum / static_cast<double>(out.fused_launches);
        return out;
    }

    for (const auto& tk : tasks) {
        auto [t, core] = cores.top();
        cores.pop();

        if (!tk.is_fmm) {
            const double dur = tk.flops / cpu_other_rate;
            out.cpu_busy_other_s += dur;
            last_completion = std::max(last_completion, t + dur);
            cores.push({t + dur, core});
            continue;
        }

        out.kernels_total += 1;
        out.fmm_flops += static_cast<std::uint64_t>(tk.flops);

        bool on_gpu = false;
        if (ngpu > 0) {
            auto& streams = thread_streams[static_cast<std::size_t>(core)];
            while (!streams.empty() && streams.top() <= t) streams.pop();
            if (static_cast<int>(streams.size()) < streams_per_thread) {
                on_gpu = true;
                const int dev = core % ngpu;
                auto& slots = device_slots[static_cast<std::size_t>(dev)];
                const double launch_done = t + cfg.launch_overhead_s;
                double start = launch_done;
                if (static_cast<int>(slots.size()) >=
                    static_cast<int>(node.gpu.kernel_slots())) {
                    start = std::max(start, slots.top());
                    slots.pop();
                }
                const double dur =
                    tk.flops / gpu_kernel_rate + cfg.device_kernel_overhead_s;
                const double done = start + dur;
                slots.push(done);
                streams.push(done);
                out.gpu_busy_s += dur;
                out.kernels_on_gpu += 1;
                last_completion = std::max(last_completion, done);
                cores.push({launch_done, core}); // core free after the launch
            }
        }
        if (!on_gpu) {
            const double dur = tk.flops / cpu_fmm_rate;
            out.cpu_busy_fmm_s += dur;
            last_completion = std::max(last_completion, t + dur);
            cores.push({t + dur, core});
        }
    }

    // Drain: makespan includes outstanding GPU kernels.
    while (!cores.empty()) {
        last_completion = std::max(last_completion, cores.top().first);
        cores.pop();
    }
    out.makespan_s = last_completion;
    // One small kernel occupies blocks_per_kernel of num_sms SMs (§5.1) —
    // the under-occupancy aggregation recovers.
    if (out.kernels_on_gpu > 0) {
        out.mean_occupancy = std::min(
            1.0, static_cast<double>(node.gpu.blocks_per_kernel) / node.gpu.num_sms);
    }
    return out;
}

table2_row measure_platform(const node_spec& node, const workload_spec& work,
                            std::size_t leaves, std::size_t refined,
                            bool aggregate) {
    // Paper §6.1.1: run CPU-only (with perf) to get the fraction of runtime
    // outside the FMM; run with GPUs; FMM runtime of the GPU run = total
    // minus the (unchanged) non-FMM time.
    node_spec cpu_only = node;
    cpu_only.num_gpus = 0;
    node_sim_config cfg{cpu_only, work, leaves, refined, 5e-6};
    const auto cpu_run = simulate_node_step(cfg);
    const double frac_fmm =
        cpu_run.cpu_busy_fmm_s /
        (cpu_run.cpu_busy_fmm_s + cpu_run.cpu_busy_other_s);
    const double time_outside = cpu_run.makespan_s * (1.0 - frac_fmm);

    table2_row row;
    row.platform = node.name;
    if (node.num_gpus == 0) {
        row.execution = "CPU-only";
        row.total_runtime_s = cpu_run.makespan_s;
        row.fmm_runtime_s = cpu_run.makespan_s * frac_fmm;
        row.fmm_gflops =
            static_cast<double>(cpu_run.fmm_flops) / row.fmm_runtime_s / 1e9;
        row.fraction_of_peak = row.fmm_gflops / node.cpu_peak_gflops();
        row.gpu_launch_fraction = 0.0;
        return row;
    }

    node_sim_config gcfg{node, work, leaves, refined, 5e-6};
    gcfg.aggregate = aggregate;
    const auto gpu_run = simulate_node_step(gcfg);
    row.execution = std::to_string(node.num_gpus) + " GPU" +
                    (aggregate ? " (aggregated)" : "");
    row.total_runtime_s = gpu_run.makespan_s;
    row.fmm_runtime_s = std::max(gpu_run.makespan_s - time_outside, 1e-9);
    if (aggregate) {
        // Aggregation makes the FMM phase so short the step is entirely
        // non-FMM-bound and the §6.1.1 subtraction collapses to ~0. The
        // fused batches run serially per device, so the busiest device's
        // busy time IS the FMM wall time — use it as the floor.
        row.fmm_runtime_s =
            std::max(row.fmm_runtime_s,
                     gpu_run.gpu_busy_s / std::max(node.num_gpus, 1));
    }
    row.fmm_gflops =
        static_cast<double>(gpu_run.fmm_flops) / row.fmm_runtime_s / 1e9;
    row.fraction_of_peak =
        row.fmm_gflops / (node.num_gpus * node.gpu.peak_gflops);
    row.gpu_launch_fraction = gpu_run.gpu_launch_fraction();
    return row;
}

} // namespace octo::cluster

#pragma once
// Paper-scale scenario octrees (Table 4): rebuild the level-13..17 V1309
// trees as metadata-only octrees (no field storage) from the analytic
// density model, with per-level thresholds reproducing the paper's nested
// refinement ("both stars are refined down to 12 levels, with the core of
// the accretor and donor refined to 13 and 14 levels respectively", §6).

#include "amr/partition.hpp"
#include "amr/tree.hpp"

namespace octo::cluster {

struct scenario_tree {
    int paper_level;          ///< the paper's level label (13..17)
    amr::tree tree;
    std::size_t subgrids;     ///< total octree nodes (the paper's "sub-grids")
    std::size_t leaves;
    /// Estimated memory for field + solver storage, in GB, using this
    /// repo's actual per-node data sizes.
    double memory_gb;
};

/// Build the V1309 tree for the given paper refinement level (13..17).
/// The mapping from paper levels to octree depth and the density thresholds
/// are calibrated so the sub-grid counts track Table 4.
scenario_tree build_v1309_tree(int paper_level);

/// Per-node memory of this implementation in bytes (subgrid fields + FMM
/// moments/expansions), used for the Table 4 memory column.
double bytes_per_subgrid();

} // namespace octo::cluster

#pragma once
// Discrete-event simulation of ONE compute node executing a timestep's FMM
// kernels and non-FMM work — the machinery behind the Table 2 reproduction
// and the GPU stream-starvation analysis (§6.1).
//
// Faithful to the paper's §5.1 policy: "Each CPU thread manages a certain
// number of CUDA streams. When launching a kernel, a thread first checks
// whether all of the CUDA streams it manages are busy. If not, the kernel
// will be launched on the GPU using an idle stream. Otherwise, the kernel
// will be executed on the CPU by the current CPU worker thread." The 128
// streams per GPU are partitioned among the worker threads, which is what
// creates the 20-core/1-GPU starvation the paper analyzes: each thread owns
// fewer streams, falls back to (slow) CPU execution more often, and while it
// grinds through a kernel itself it launches nothing new on the GPU.

#include <cstdint>

#include "cluster/machine_model.hpp"

namespace octo::cluster {

struct node_sim_config {
    node_spec node;
    workload_spec work;
    std::size_t leaves = 0;   ///< monopole kernels + non-FMM work
    std::size_t refined = 0;  ///< multipole kernels
    double launch_overhead_s = 5e-6;
    /// Device-side fixed cost per kernel (input halo transfer over PCIe,
    /// kernel ramp-up): the reason the many-small-kernels approach lands at
    /// a MODERATE fraction of peak (21-37% in Table 2) despite the device
    /// rarely idling.
    double device_kernel_overhead_s = 1.0e-4;
    /// Aggregated-offload mode (arXiv:2210.06438): instead of one stream +
    /// one launch per kernel, cores enqueue kernels into per-device batches
    /// of up to aggregation_batch items. Each fused launch pays ONE
    /// launch_overhead_s and ONE device_kernel_overhead_s for the whole
    /// batch, and runs at occupancy min(1, batch_blocks / num_sms) of
    /// device peak — the two levers that make aggregation win.
    bool aggregate = false;
    unsigned aggregation_batch = 32;
    /// Age flush (the aggregator's flush_after_us knob): a partial batch
    /// whose oldest item has waited this long is launched by the background
    /// flusher instead of waiting to fill. Too small degenerates to
    /// one-kernel launches; too large only matters when submission has gaps
    /// (a trailing partial batch stalls its dependents).
    double flush_after_us = 100.0;
    /// CPU-side cost of enqueueing one item (descriptor + staging-slice
    /// copy); far below a stream launch, which is the point.
    double submit_overhead_s = 2e-7;
};

struct node_sim_result {
    double makespan_s = 0;
    double cpu_busy_fmm_s = 0;   ///< summed core time inside FMM kernels
    double cpu_busy_other_s = 0; ///< summed core time outside the FMM
    double gpu_busy_s = 0;       ///< summed device kernel time
    std::uint64_t fmm_flops = 0;
    std::uint64_t kernels_total = 0;
    std::uint64_t kernels_on_gpu = 0;
    std::uint64_t fused_launches = 0; ///< aggregated mode: batches launched
    double mean_occupancy = 0;        ///< aggregated blocks / SMs, averaged

    double gpu_launch_fraction() const {
        return kernels_total == 0
                   ? 0.0
                   : static_cast<double>(kernels_on_gpu) /
                         static_cast<double>(kernels_total);
    }
    /// Kernels the §5.1 policy pushed back onto the cores.
    std::uint64_t cpu_fallbacks() const { return kernels_total - kernels_on_gpu; }
    double mean_batch_size() const {
        return fused_launches == 0
                   ? 0.0
                   : static_cast<double>(kernels_on_gpu) /
                         static_cast<double>(fused_launches);
    }
};

/// Simulate one timestep on one node.
node_sim_result simulate_node_step(const node_sim_config& cfg);

/// The paper's three-run measurement protocol (§6.1.1): estimate the
/// FMM-only runtime of a GPU run by subtracting the non-FMM fraction
/// measured on a CPU-only run of the same workload.
struct table2_row {
    std::string platform;
    std::string execution; ///< "CPU-only" / "1 GPU" / ...
    double total_runtime_s = 0;
    double fmm_runtime_s = 0;
    double fmm_gflops = 0;
    double fraction_of_peak = 0; ///< of the utilized device, as in the paper
    double gpu_launch_fraction = 0;
};

/// `aggregate` switches the GPU run to the fused-launch executor model;
/// the CPU-only baseline used for the non-FMM subtraction is unaffected.
table2_row measure_platform(const node_spec& node, const workload_spec& work,
                            std::size_t leaves, std::size_t refined,
                            bool aggregate = false);

} // namespace octo::cluster

#include "cluster/machine_model.hpp"

#include <algorithm>
#include <cmath>

#include "fmm/kernels.hpp"
#include "support/assert.hpp"

namespace octo::cluster {

node_spec xeon_e5_2660v3(int cores) {
    node_spec n;
    n.name = "Intel Xeon E5-2660 v3, " + std::to_string(cores) + " cores";
    n.cores = cores;
    n.ghz = 2.4;
    n.flops_per_cycle = 16;
    // Calibrated to the paper's CPU-only rows: 125 GFLOP/s on 10 cores
    // (30% of 384 GF/s peak) -> 12.5 GF/s per core in the FMM kernels.
    n.core_fmm_gflops = 12.5;
    n.core_other_gflops = 4.0;
    return n;
}

node_spec xeon_phi_7210() {
    node_spec n;
    n.name = "Intel Xeon Phi 7210, 64 cores";
    n.cores = 64;
    n.ghz = 1.3;
    n.flops_per_cycle = 32; // AVX-512 FMA
    // Paper: 459 GF/s on 64 cores (17% of the 2662 GF/s nominal peak).
    n.core_fmm_gflops = 459.0 / 64.0;
    // "the other less optimized parts ... make fewer use of the SIMD
    // capabilities that the Xeon Phi offers and are thus running a lot
    // slower" — FMM is only ~20% of total runtime there (§6.1.2).
    n.core_other_gflops = 0.9;
    return n;
}

node_spec piz_daint_node() {
    node_spec n;
    n.name = "Piz Daint node (Xeon E5-2690 v3, 12 cores)";
    n.cores = 12;
    n.ghz = 2.6;
    n.flops_per_cycle = 16;
    // Paper: 157 GF/s on 12 cores (31% of ~499 GF/s peak).
    n.core_fmm_gflops = 157.0 / 12.0;
    n.core_other_gflops = 4.2;
    return n;
}

node_spec with_v100(node_spec base, int n) {
    base.num_gpus = n;
    base.gpu = gpu::v100();
    base.name += " + " + std::to_string(n) + "x V100";
    return base;
}

node_spec with_p100(node_spec base) {
    base.num_gpus = 1;
    base.gpu = gpu::p100();
    base.name += " + 1x P100";
    return base;
}

workload_spec v1309_workload() {
    workload_spec w;
    w.multipole_kernel_flops = static_cast<double>(fmm::multi_kernel_flops(true));
    w.monopole_kernel_flops = static_cast<double>(fmm::mono_kernel_flops());
    // Chosen so the FMM is ~40% of CPU-only runtime on AVX2 platforms
    // (paper §4.3: "the FMM required only about 40% of the total scenario
    // runtime" after the stencil/SoA optimization), given the rate ratio
    // core_fmm/core_other ~ 3.
    w.other_flops_per_leaf = 0.55 * w.multipole_kernel_flops;
    return w;
}

int critical_path_hops(int tree_depth) {
    // Two RK stages x (ghost fill + flux exchange) + bottom-up and top-down
    // FMM sweeps across the levels.
    return 12 + 4 * tree_depth;
}

scaling_point model_step(std::size_t total_subgrids, std::size_t total_leaves,
                         const amr::partition_stats& parts, int nodes,
                         const node_spec& node, const net::network_params& net,
                         const workload_spec& work) {
    OCTO_ASSERT(static_cast<int>(parts.leaves_per_rank.size()) == nodes);
    (void)total_leaves;

    // Skewed-cost mode: cost_per_rank (when filled) is the modeled relative
    // load of each rank; the rank's compute is its cost SHARE of the global
    // work. A static equal-count split accounted under skewed weights then
    // shows its true hot rank, while a weighted split equalizes the shares.
    const bool weighted = !parts.cost_per_rank.empty();
    double total_cost = 0;
    double all_leaves = 0;
    double all_refined = 0;
    double all_pairs = 0;
    for (int r = 0; r < nodes; ++r) {
        if (weighted) total_cost += parts.cost_per_rank[r];
        all_leaves += static_cast<double>(parts.leaves_per_rank[r]);
        all_refined += static_cast<double>(parts.refined_per_rank[r]);
        all_pairs += static_cast<double>(parts.cross_pairs_per_rank[r]);
    }

    // Node compute throughput for the FMM kernels: GPUs take them when
    // present (the node-level experiments show nearly all kernels run on the
    // GPU), CPU cores otherwise; the non-FMM work always runs on the cores.
    const double fmm_rate =
        node.num_gpus > 0
            ? node.num_gpus * node.gpu.peak_gflops * 0.21 * 1e9 // achieved
            : node.cores * node.core_fmm_gflops * 1e9;
    const double other_rate = node.cores * node.core_other_gflops * 1e9;

    // Fabric congestion grows with the machine partition (adaptive routing
    // and shared links on the dragonfly; affects both ports).
    const double congestion = 1.0 + static_cast<double>(nodes) / 4000.0;

    double max_rank_seconds = 0;
    double max_comm_exposed = 0;
    double max_compute = 0;
    for (int r = 0; r < nodes; ++r) {
        double leaves = static_cast<double>(parts.leaves_per_rank[r]);
        double refined = static_cast<double>(parts.refined_per_rank[r]);
        double pairs = static_cast<double>(parts.cross_pairs_per_rank[r]);
        if (weighted && total_cost > 0) {
            // The cost model folds halo-pair work into a sub-grid's weight
            // (amr::cost_model), so an expensive sub-grid computes more AND
            // communicates more: the rank's message load follows its cost
            // share exactly like its compute does. Using the raw geometric
            // pair counts here would charge a cost-balanced partition for
            // the larger surface of its cheap-region chunks while letting
            // the static split's hot rank communicate as if its sub-grids
            // were average — inconsistent with what the weights mean.
            const double share = parts.cost_per_rank[r] / total_cost;
            leaves = share * all_leaves;
            refined = share * all_refined;
            pairs = share * all_pairs;
        }
        const double fmm_flops = refined * work.multipole_kernel_flops +
                                 leaves * work.monopole_kernel_flops;
        const double other_flops = leaves * work.other_flops_per_leaf;
        const double t_fmm = fmm_flops / fmm_rate;
        const double t_other = other_flops / other_rate;
        const double t_comp = node.num_gpus > 0
                                  ? std::max(t_fmm, t_other) // overlapped
                                  : t_fmm + t_other;

        // Communication: per-step message count from the real partition
        // (cost-share-scaled in weighted mode, see above).
        const double msgs = pairs * work.exchanges_per_pair;

        // Effective per-parcel handling cost: serialization, scheduling and
        // the port's protocol work (tag matching + staging for the two-sided
        // port), inflated by matching contention under load and by fabric
        // congestion. Calibrated so the libfabric/MPI throughput ratio and
        // the weak-scaling efficiencies track §6.2/§6.3 (see EXPERIMENTS.md).
        const double per_msg =
            net.parcel_us * 1e-6 *
            (1.0 + net.contention_factor * msgs / 10000.0 +
             net.node_contention * nodes / 1000.0) *
            congestion;
        double t_comm = msgs * per_msg +
                        static_cast<double>(msgs) * work.bytes_per_message /
                            (net.bandwidth_GBs * 1e9);
        // One-sided polling steals a slice of busy cores at low node counts
        // (paper Fig 3: libfabric slightly SLOWER on few nodes).
        double polling_tax = net.one_sided ? 0.04 * t_comp : 0.0;

        // Overlap: communication hides behind compute up to a port-dependent
        // fraction.
        const double overlap = net.one_sided ? 0.85 : 0.75;
        const double exposed = std::max(0.0, t_comm - overlap * t_comp);

        max_rank_seconds =
            std::max(max_rank_seconds, t_comp + polling_tax + exposed);
        max_comm_exposed = std::max(max_comm_exposed, exposed);
        max_compute = std::max(max_compute, t_comp);
    }

    // Critical-path latency floor: dependent halo/tree rounds (ghost fills,
    // M2M/L2L sweeps), each a round trip of wire latency + per-parcel
    // software cost. Only bites once work is distributed.
    double latency_floor = 0.0;
    if (nodes > 1 && work.dependency_hops > 0) {
        const double per_hop = net.parcel_us * 1e-6 * congestion *
                               (1.0 + net.node_contention * nodes / 1000.0);
        latency_floor = work.dependency_hops * per_hop;
    }

    // Global timestep reduction (the CFL min) each step.
    const double allreduce =
        std::ceil(std::log2(std::max(nodes, 2))) * 2.0 *
        net::modeled_message_seconds(net, 64);

    scaling_point out;
    out.nodes = nodes;
    out.step_seconds = max_rank_seconds + allreduce + latency_floor;
    out.subgrids_per_second =
        static_cast<double>(total_subgrids) / out.step_seconds;
    out.compute_seconds = max_compute;
    out.comm_exposed_seconds = max_comm_exposed;
    return out;
}

std::vector<double> skewed_leaf_costs(const amr::tree& t,
                                      double per_level_factor) {
    OCTO_ASSERT(per_level_factor > 0);
    const auto leaves = t.leaves_sfc();
    int d_min = t.max_level();
    for (const auto k : leaves) d_min = std::min(d_min, amr::key_level(k));
    std::vector<double> w;
    w.reserve(leaves.size());
    for (const auto k : leaves) {
        w.push_back(std::pow(per_level_factor, amr::key_level(k) - d_min));
    }
    return w;
}

double migration_overhead_seconds(std::size_t migrated_subgrids, int nodes,
                                  const net::network_params& net) {
    if (migrated_subgrids == 0 || nodes < 1) return 0.0;
    // One parcel per sub-grid: header + the full field image (the byte-exact
    // payload dist::serialize_subgrid ships).
    const double bytes = 48.0 + static_cast<double>(amr::n_fields) *
                                    amr::NX3 * sizeof(double);
    // Migration is contiguous along the curve, so the schedule spreads over
    // the touched ranks; senders work in parallel and the slowest node
    // carries its share of the parcels.
    const auto per_node = static_cast<double>(
        (migrated_subgrids + static_cast<std::size_t>(nodes) - 1) /
        static_cast<std::size_t>(nodes));
    const double congestion = 1.0 + static_cast<double>(nodes) / 4000.0;
    return per_node * (net.parcel_us * 1e-6 * congestion +
                       bytes / (net.bandwidth_GBs * 1e9));
}

} // namespace octo::cluster

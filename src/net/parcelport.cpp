#include "net/parcelport.hpp"

#include <chrono>

#include "runtime/apex.hpp"

namespace octo::net {

namespace {

/// Transport-level accounting shared by both ports: first transmissions of
/// data parcels are the paper-faithful message counts; retransmits and acks
/// (the reliability protocol's traffic) are tallied separately so existing
/// accounting-based tests and the scaling experiments keep their meaning.
void account_send(dist::port_stats& stats, const network_params& params,
                  const dist::parcel& p, bool registered) {
    if (p.kind != dist::parcel_kind::data) {
        stats.control_parcels_sent += 1;
        return;
    }
    if (p.attempt > 0) {
        stats.retransmits_sent += 1;
        return;
    }
    stats.parcels_sent += 1;
    rt::apex_count("net.parcels_sent");
    stats.bytes_sent += p.payload.size();
    stats.modeled_latency_total +=
        modeled_message_seconds(params, p.payload.size(), registered);
}

} // namespace

// ---- MPI-like ----------------------------------------------------------------

mpi_parcelport::mpi_parcelport(dist::runtime& rt, network_params params)
    : rt_(rt), params_(params) {
    progress_ = std::thread([this] { progress_loop(); });
}

mpi_parcelport::~mpi_parcelport() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    stop_cv_.notify_all();
    progress_.join();
}

void mpi_parcelport::send(dist::parcel p) {
    // Two-sided: stage a COPY of the payload (the send buffer must survive
    // until matched, and the match copies into the posted receive buffer).
    std::vector<std::byte> staged_copy(p.payload.begin(), p.payload.end());
    dist::parcel q = p;
    q.payload = std::move(staged_copy);
    std::lock_guard lock(mutex_);
    account_send(stats_, params_, q, /*registered=*/false);
    staged_.push_back(std::move(q));
}

void mpi_parcelport::progress_loop() {
    // Deliveries only happen when the progress engine runs — at the polling
    // cadence, not at send time.
    const auto tick =
        std::chrono::microseconds(static_cast<long>(params_.progress_poll_us));
    for (;;) {
        std::deque<dist::parcel> batch;
        {
            std::lock_guard lock(mutex_);
            if (stop_ && staged_.empty()) return;
            batch.swap(staged_);
        }
        for (auto& p : batch) rt_.deliver(std::move(p));
        // Wait one poll tick — but wake immediately on shutdown, and never
        // sleep at all while draining a shutdown backlog (deliveries can
        // stage follow-up acks), so teardown is prompt.
        std::unique_lock lock(mutex_);
        if (stop_) {
            if (staged_.empty()) return;
            continue; // drain the backlog without sleeping a full tick
        }
        stop_cv_.wait_for(lock, tick, [this] { return stop_; });
    }
}

dist::port_stats mpi_parcelport::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

// ---- libfabric-like ------------------------------------------------------------

libfabric_parcelport::libfabric_parcelport(dist::runtime& rt, network_params params)
    : rt_(rt), params_(params) {}

void libfabric_parcelport::send(dist::parcel p) {
    {
        std::lock_guard lock(mutex_);
        account_send(stats_, params_, p,
                     registered_sizes_.count(p.payload.size()) != 0);
    }
    // One-sided: the RMA put completes and the completion event immediately
    // schedules the action — no staging copy, no progress thread.
    rt_.deliver(std::move(p));
}

dist::port_stats libfabric_parcelport::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

void libfabric_parcelport::register_size_class(std::size_t bytes) {
    std::lock_guard lock(mutex_);
    registered_sizes_.insert(bytes);
}

bool libfabric_parcelport::is_registered(std::size_t bytes) const {
    std::lock_guard lock(mutex_);
    return registered_sizes_.count(bytes) != 0;
}

dist::parcelport_factory make_mpi_port() {
    return [](dist::runtime& rt) { return std::make_unique<mpi_parcelport>(rt); };
}

dist::parcelport_factory make_libfabric_port() {
    return [](dist::runtime& rt) {
        return std::make_unique<libfabric_parcelport>(rt);
    };
}

} // namespace octo::net

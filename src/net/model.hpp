#pragma once
// Network timing models for the two parcelports (paper §5.2, §6.3) and for
// the cluster-scaling simulator. The parameters encode the protocol-level
// differences the paper attributes the libfabric gains to:
//   * "Explicit use of RMA for the transfer of halo buffers"  -> fewer copies
//   * "Lower latency on send and receive of all parcels"      -> latency_us
//   * "Direct control of all memory copies"                   -> per-message cost
//   * "Reduced overhead between receipt of a completion event and setting a
//      ready future" + scheduler-integrated polling            -> progress_poll_us
//   * two-sided tag matching & locking                        -> contention

#include <cstddef>

namespace octo::net {

struct network_params {
    const char* name;
    double latency_us;         ///< wire + NIC latency per message
    double per_message_cpu_us; ///< send+receive CPU overhead (matching, copies)
    double bandwidth_GBs;      ///< per-NIC bandwidth
    double progress_poll_us;   ///< mean delay before a polling thread notices
                               ///< a completion (two-sided backends)
    /// Effective per-parcel handling cost at the application level
    /// (serialization, scheduling, protocol work), microseconds.
    double parcel_us;
    double contention_factor;  ///< per-parcel cost growth per 10'000
                               ///< concurrent messages on a node
    /// Per-parcel cost growth per 1000 participating nodes (matching-queue
    /// pressure and fabric-wide synchronization, dominant for two-sided).
    double node_contention;
    bool one_sided;
};

/// The default HPX MPI parcelport: two-sided Isend/Irecv with tag matching,
/// staging copies and progress coupled to scheduler polling (paper §5.2).
network_params mpi_like();

/// The libfabric parcelport: one-sided RMA puts, pinned buffers, completion
/// queue polled from the scheduling loop (paper §5.2).
network_params libfabric_like();

/// Modeled one-way delivery time of a message of `bytes`, excluding queueing.
/// `registered` marks payloads in user-registered RMA regions (paper §7
/// future work: "user-controlled RMA buffers that allow the user to
/// instruct the runtime that certain memory regions will be used repeatedly
/// for communication (and thus amortize memory pinning/registration
/// costs)") — they skip the per-message pin/registration cost on one-sided
/// transports.
double modeled_message_seconds(const network_params& p, std::size_t bytes,
                               bool registered = false);

/// Per-message memory pin/registration cost on one-sided transports
/// (amortized away by registration; irrelevant for two-sided staging).
double registration_seconds(const network_params& p, std::size_t bytes);

/// Modeled CPU time consumed on the hosting cores per message (the overhead
/// that competes with compute tasks — what the scaling model charges).
double modeled_cpu_seconds(const network_params& p, std::size_t bytes);

} // namespace octo::net

#pragma once
// Fault-injecting parcelport decorator (ISSUE 5). Wraps either real port and
// subjects every parcel — data, retransmit and ack alike — to the seeded
// fault schedule of a support::fault_injector:
//
//   drop      the parcel vanishes (a lost completion),
//   duplicate the parcel is forwarded twice,
//   corrupt   one payload bit (or the checksum, for empty payloads) flips,
//   reorder   the parcel is held back so later sends overtake it,
//   delay     the parcel is forwarded late by a seeded amount.
//
// Held parcels are released by a worker thread; nothing is held past the
// configured bound, so a quiesced campaign always drains. The decorator is
// transparent to accounting: stats() reports the inner port's counters, and
// injected-fault counts are read from injector().stats().

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/locality.hpp"
#include "support/fault.hpp"

namespace octo::net {

class faulty_parcelport final : public dist::parcelport {
  public:
    faulty_parcelport(std::unique_ptr<dist::parcelport> inner,
                      support::fault_config cfg);
    ~faulty_parcelport() override;

    void send(dist::parcel p) override;
    const char* name() const override { return name_.c_str(); }
    dist::port_stats stats() const override { return inner_->stats(); }

    support::fault_injector& injector() { return inj_; }
    const support::fault_injector& injector() const { return inj_; }

  private:
    void worker_loop();
    void flush_due(std::chrono::steady_clock::time_point now);

    struct held_parcel {
        std::chrono::steady_clock::time_point due;
        dist::parcel p;
    };

    std::unique_ptr<dist::parcelport> inner_;
    support::fault_injector inj_;
    std::string name_;

    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<held_parcel> held_;
    bool stop_ = false;
    std::thread worker_;
};

/// Decorate a port factory with the seeded fault schedule:
///   runtime rt(4, make_faulty_port(make_mpi_port(), {.seed=7, .drop_prob=.1}));
dist::parcelport_factory make_faulty_port(dist::parcelport_factory inner,
                                          support::fault_config cfg);

} // namespace octo::net

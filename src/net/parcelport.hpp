#pragma once
// The two parcelport implementations (paper §5.2). Both transport parcels
// between in-process localities, but they reproduce the *structural*
// differences between HPX's MPI backend and the libfabric backend:
//
//  * mpi_parcelport — two-sided: the sender STAGES the payload through a
//    copy into a per-destination receive queue (Isend/Irecv matching), and
//    delivery happens only when the progress engine polls the queues — a
//    background thread ticking at the poll interval, standing in for "the
//    receipt of data must be performed by polling of completion queues
//    [which] can only take place in-between the execution of other tasks".
//
//  * libfabric_parcelport — one-sided: the sender's thread performs the RMA
//    put and immediately triggers delivery at the destination (completion
//    event -> ready future with no intervening layer), with no staging copy.
//
// Both keep paper-faithful accounting (messages, bytes, modeled latencies)
// used by tests and the scaling experiments.

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "dist/locality.hpp"
#include "net/model.hpp"

namespace octo::net {

/// Two-sided, staged, poll-progressed transport (HPX's default MPI backend).
class mpi_parcelport final : public dist::parcelport {
  public:
    explicit mpi_parcelport(dist::runtime& rt,
                            network_params params = mpi_like());
    ~mpi_parcelport() override;

    void send(dist::parcel p) override;
    const char* name() const override { return params_.name; }
    dist::port_stats stats() const override;

  private:
    void progress_loop();

    dist::runtime& rt_;
    network_params params_;
    mutable std::mutex mutex_; ///< mutable: stats() is logically const
    std::condition_variable stop_cv_; ///< wakes the poll sleep on shutdown
    std::deque<dist::parcel> staged_;
    std::thread progress_;
    bool stop_ = false;
    dist::port_stats stats_;
};

/// One-sided RMA transport (the libfabric backend).
class libfabric_parcelport final : public dist::parcelport {
  public:
    explicit libfabric_parcelport(dist::runtime& rt,
                                  network_params params = libfabric_like());

    void send(dist::parcel p) override;
    const char* name() const override { return params_.name; }
    dist::port_stats stats() const override;

    /// Paper §7 future work: pre-register a payload size class; subsequent
    /// sends of exactly that size reuse the pinned region and skip the
    /// per-message registration cost in the model.
    void register_size_class(std::size_t bytes);
    bool is_registered(std::size_t bytes) const;

  private:
    dist::runtime& rt_;
    network_params params_;
    mutable std::mutex mutex_;
    dist::port_stats stats_;
    std::set<std::size_t> registered_sizes_;
};

/// Factories for runtime construction.
dist::parcelport_factory make_mpi_port();
dist::parcelport_factory make_libfabric_port();

} // namespace octo::net

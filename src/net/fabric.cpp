#include "net/model.hpp"

namespace octo::net {

network_params mpi_like() {
    return {.name = "mpi",
            .latency_us = 1.6,
            .per_message_cpu_us = 2.8, // matching + staging copies
            .bandwidth_GBs = 9.5,
            .progress_poll_us = 6.0, // progress only between tasks
            .parcel_us = 45.0,
            .contention_factor = 0.30,
            .node_contention = 0.70,
            .one_sided = false};
}

network_params libfabric_like() {
    return {.name = "libfabric",
            .latency_us = 0.9,
            .per_message_cpu_us = 0.7, // RMA put, no staging copy
            .bandwidth_GBs = 9.5,
            .progress_poll_us = 0.5, // polled from the scheduling loop
            .parcel_us = 34.0,
            .contention_factor = 0.03,
            .node_contention = 0.05,
            .one_sided = true};
}

double registration_seconds(const network_params& p, std::size_t bytes) {
    if (!p.one_sided) return 0.0; // two-sided stages through pre-pinned buffers
    // Pinning cost: a fixed syscall-ish component plus a page-table walk
    // proportional to size.
    return 0.9e-6 + static_cast<double>(bytes) / (200.0 * 1e9);
}

double modeled_message_seconds(const network_params& p, std::size_t bytes,
                               bool registered) {
    const double pin = registered ? 0.0 : registration_seconds(p, bytes);
    return p.latency_us * 1e-6 + p.progress_poll_us * 1e-6 + pin +
           static_cast<double>(bytes) / (p.bandwidth_GBs * 1e9);
}

double modeled_cpu_seconds(const network_params& p, std::size_t bytes) {
    // Two-sided backends additionally copy through staging buffers, charging
    // CPU time proportional to size.
    const double copy = p.one_sided
                            ? 0.0
                            : static_cast<double>(bytes) / (4.0 * 1e9); // memcpy
    return p.per_message_cpu_us * 1e-6 + copy;
}

} // namespace octo::net

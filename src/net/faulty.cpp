#include "net/faulty.hpp"

#include <algorithm>

#include "runtime/apex.hpp"
#include "support/assert.hpp"

namespace octo::net {

faulty_parcelport::faulty_parcelport(std::unique_ptr<dist::parcelport> inner,
                                     support::fault_config cfg)
    : inner_(std::move(inner)), inj_(cfg) {
    OCTO_ASSERT(inner_ != nullptr);
    name_ = std::string("faulty(") + inner_->name() + ")";
    worker_ = std::thread([this] { worker_loop(); });
}

faulty_parcelport::~faulty_parcelport() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
    // Flush any remaining holdbacks so no parcel is lost by teardown itself
    // (forwarding can recursively send acks, which the stopped state routes
    // straight through — see send()).
    for (;;) {
        std::vector<held_parcel> rest;
        {
            std::lock_guard lock(mutex_);
            rest.swap(held_);
        }
        if (rest.empty()) break;
        for (auto& h : rest) inner_->send(std::move(h.p));
    }
}

void faulty_parcelport::send(dist::parcel p) {
    bool teardown = false;
    {
        std::lock_guard lock(mutex_);
        teardown = stop_;
    }
    // Teardown path: no injection, no holdback — forward directly so the
    // final drain (which can recursively send acks) terminates.
    if (!teardown) {
        if (inj_.drop()) {
            rt::apex_count("fault.drops");
            return; // the completion never arrives; retransmit will recover
        }
        if (inj_.corrupt()) {
            rt::apex_count("fault.corruptions");
            if (!p.payload.empty()) {
                const std::size_t bit = inj_.corrupt_bit(p.payload.size() * 8);
                p.payload[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
            } else {
                p.checksum ^= 1u << (inj_.corrupt_bit(32) % 32);
            }
        }
        if (inj_.duplicate()) {
            rt::apex_count("fault.dups");
            inner_->send(p); // first copy now; the second follows below
        }
        if (auto hold = inj_.hold_us()) {
            rt::apex_count("fault.holds");
            const auto due = std::chrono::steady_clock::now() +
                             std::chrono::microseconds(
                                 static_cast<long>(std::max(1.0, *hold)));
            std::lock_guard lock(mutex_);
            if (!stop_) {
                held_.push_back({due, std::move(p)});
                cv_.notify_one();
                return;
            }
            // Raced with teardown: fall through and forward immediately.
        }
    }
    inner_->send(std::move(p));
}

void faulty_parcelport::flush_due(std::chrono::steady_clock::time_point now) {
    std::vector<dist::parcel> due;
    {
        std::lock_guard lock(mutex_);
        auto it = held_.begin();
        while (it != held_.end()) {
            if (it->due <= now) {
                due.push_back(std::move(it->p));
                it = held_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto& p : due) inner_->send(std::move(p));
}

void faulty_parcelport::worker_loop() {
    std::unique_lock lock(mutex_);
    while (!stop_) {
        cv_.wait_for(lock, std::chrono::microseconds(50));
        if (stop_) return;
        lock.unlock();
        flush_due(std::chrono::steady_clock::now());
        lock.lock();
    }
}

dist::parcelport_factory make_faulty_port(dist::parcelport_factory inner,
                                          support::fault_config cfg) {
    return [inner = std::move(inner), cfg](dist::runtime& rt) {
        return std::make_unique<faulty_parcelport>(inner(rt), cfg);
    };
}

} // namespace octo::net

#pragma once
// Lane–Emden polytropes: the building block of the initial stellar models.
// The SCF module (Hachisu 1986) iterates polytropic density fields to a
// rotating equilibrium; single-star verification tests (Tasker et al. tests
// 3 & 4 in paper §4.2) use a spherical polytrope directly.

#include <vector>

#include "support/vec3.hpp"

namespace octo::phys {

/// Numerical solution of the Lane–Emden equation of index n:
///   (1/xi^2) d/dxi (xi^2 dtheta/dxi) = -theta^n,  theta(0)=1, theta'(0)=0.
struct lane_emden_solution {
    double n = 1.5;                  ///< polytropic index
    double xi1 = 0.0;                ///< first zero of theta (stellar surface)
    double dtheta_dxi_at_xi1 = 0.0;  ///< theta'(xi1), sets the mass integral
    std::vector<double> xi;          ///< radial mesh
    std::vector<double> theta;       ///< theta(xi) on the mesh

    /// theta at arbitrary xi via linear interpolation (0 beyond the surface).
    double theta_at(double x) const;
};

/// Integrate the Lane–Emden equation with RK4 until theta crosses zero.
/// `h` is the integration step in xi.
lane_emden_solution solve_lane_emden(double n, double h = 1e-4);

/// A physical polytropic star of mass M and radius R with index n,
/// scaled from the Lane–Emden solution.
class polytrope {
  public:
    polytrope(double mass, double radius, double n = 1.5);

    double mass() const { return mass_; }
    double radius() const { return radius_; }
    double n() const { return n_; }
    double rho_central() const { return rho_c_; }
    /// Polytropic constant K in p = K rho^(1+1/n).
    double K() const { return K_; }

    /// Density at radius r from the center (0 outside the star).
    double rho(double r) const;
    /// Pressure at radius r.
    double pressure(double r) const;
    /// Gravitational potential of the star at distance r (exact for the
    /// spherically symmetric profile; used by equilibrium tests).
    double enclosed_mass(double r) const;

  private:
    double mass_, radius_, n_;
    double rho_c_ = 0.0, K_ = 0.0, alpha_ = 0.0;
    lane_emden_solution le_;
    std::vector<double> m_enc_; // enclosed mass on the Lane–Emden mesh
};

} // namespace octo::phys

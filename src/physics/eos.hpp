#pragma once
// Ideal-gas equation of state with the dual-energy formalism of Bryan et al.
// (Enzo), as used by Octo-Tiger (paper §4.2): "We evolve both the gas total
// energy as well as the entropy. The internal energy is then computed from
// one or the other depending on the mach number (entropy for high mach flows
// and total gas energy for low mach ones)."
//
// Following Octo-Tiger we evolve tau = (rho * eps)^(1/gamma) ("entropy
// tracer"): for smooth adiabatic flow tau obeys a pure advection equation,
// and the internal energy density recovered from it, u = tau^gamma, does not
// suffer the catastrophic cancellation of E - kinetic in high-Mach regions.

#include <cmath>

#include "support/assert.hpp"

namespace octo::phys {

class ideal_gas_eos {
  public:
    /// gamma: adiabatic index; de_switch: dual-energy switch threshold —
    /// internal energy comes from tau when (E - KE) < de_switch * E.
    explicit ideal_gas_eos(double gamma = 5.0 / 3.0, double de_switch = 1e-3)
        : gamma_(gamma), de_switch_(de_switch) {
        OCTO_ASSERT(gamma > 1.0);
        OCTO_ASSERT(de_switch >= 0.0 && de_switch < 1.0);
    }

    double gamma() const { return gamma_; }
    double de_switch() const { return de_switch_; }

    /// Pressure from internal energy density u = rho*eps.
    double pressure(double u) const { return (gamma_ - 1.0) * u; }

    /// Sound speed from density and internal energy density.
    double sound_speed(double rho, double u) const {
        OCTO_ASSERT(rho > 0.0);
        const double p = pressure(u);
        return std::sqrt(gamma_ * p / rho);
    }

    /// Entropy tracer from internal energy density: tau = u^(1/gamma).
    double tau_from_internal(double u) const {
        return std::pow(std::max(u, 0.0), 1.0 / gamma_);
    }

    /// Internal energy density from the entropy tracer: u = tau^gamma.
    double internal_from_tau(double tau) const {
        return std::pow(std::max(tau, 0.0), gamma_);
    }

    /// Dual-energy selection (Bryan et al.): choose internal energy from the
    /// total-energy budget when it is well resolved, from tau otherwise.
    ///   E: gas total energy density, ke: kinetic energy density, tau: tracer.
    double internal_energy(double E, double ke, double tau) const {
        const double from_total = E - ke;
        if (from_total > de_switch_ * E && from_total > 0.0) {
            return from_total;
        }
        return internal_from_tau(tau);
    }

    /// True if the cell is in the high-Mach regime where tau is used.
    bool uses_entropy(double E, double ke) const {
        const double from_total = E - ke;
        return !(from_total > de_switch_ * E && from_total > 0.0);
    }

  private:
    double gamma_;
    double de_switch_;
};

} // namespace octo::phys

#pragma once
// Code units for the stellar-merger scenario. Octo-Tiger works in a unit
// system where G = 1; we use solar units: mass in M_sun, length in R_sun,
// G = 1, which makes the time unit sqrt(R_sun^3 / (G M_sun)) ≈ 1594 s.
// The V1309 scenario parameters from paper §6 are expressed directly in
// these units (e.g. domain edge 1.02e3 R_sun, separation 6.37 R_sun).

namespace octo::phys {

/// Newton's constant in code units (solar units with G = 1).
inline constexpr double G = 1.0;

// CGS values, used only when converting diagnostics to physical units.
inline constexpr double G_cgs = 6.67430e-8;        // cm^3 g^-1 s^-2
inline constexpr double M_sun_cgs = 1.98892e33;    // g
inline constexpr double R_sun_cgs = 6.957e10;      // cm
inline constexpr double day_s = 86400.0;           // s

/// One code time unit in seconds: sqrt(R_sun^3 / (G M_sun)).
inline double code_time_s() {
    return 1593.9; // sqrt(R_sun_cgs^3 / (G_cgs * M_sun_cgs)), precomputed
}

/// Convert a period in days to code units.
inline double days_to_code(double days) { return days * day_s / code_time_s(); }

// V1309 Scorpii scenario constants (paper §3, §6).
namespace v1309 {
inline constexpr double m_primary = 1.54;       // M_sun (accretor)
inline constexpr double m_secondary = 0.17;     // M_sun (donor)
inline constexpr double separation = 6.37;      // R_sun, centers of mass
inline constexpr double domain_edge = 1.02e3;   // R_sun, cubic grid edge
inline constexpr double period_days = 1.42;     // initial binary/grid period
} // namespace v1309

} // namespace octo::phys

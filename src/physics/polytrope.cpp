#include "physics/polytrope.hpp"

#include <algorithm>
#include <cmath>

#include "physics/units.hpp"
#include "support/assert.hpp"

namespace octo::phys {

double lane_emden_solution::theta_at(double x) const {
    if (x >= xi1 || xi.empty()) return 0.0;
    if (x <= 0.0) return 1.0;
    // Uniform mesh: O(1) lookup.
    const double h = xi[1] - xi[0];
    const auto i = static_cast<std::size_t>(x / h);
    if (i + 1 >= theta.size()) return std::max(theta.back(), 0.0);
    const double t = (x - xi[i]) / h;
    return std::max((1.0 - t) * theta[i] + t * theta[i + 1], 0.0);
}

lane_emden_solution solve_lane_emden(double n, double h) {
    OCTO_ASSERT(n >= 0.0 && n < 5.0);
    lane_emden_solution sol;
    sol.n = n;

    // State y = (theta, phi) with phi = xi^2 dtheta/dxi:
    //   dtheta/dxi = phi / xi^2,  dphi/dxi = -xi^2 theta^n.
    // Start from the series expansion theta = 1 - xi^2/6 + n xi^4/120 to
    // avoid the coordinate singularity at xi = 0.
    double xi = h;
    double theta = 1.0 - xi * xi / 6.0 + n * std::pow(xi, 4) / 120.0;
    double phi = -std::pow(xi, 3) / 3.0 + n * std::pow(xi, 5) / 30.0;

    sol.xi.push_back(0.0);
    sol.theta.push_back(1.0);

    auto f_theta = [](double x, double ph) { return ph / (x * x); };
    auto f_phi = [n](double x, double th) {
        return -x * x * std::pow(std::max(th, 0.0), n);
    };

    while (theta > 0.0 && xi < 50.0) {
        sol.xi.push_back(xi);
        sol.theta.push_back(theta);

        const double k1t = f_theta(xi, phi);
        const double k1p = f_phi(xi, theta);
        const double k2t = f_theta(xi + h / 2, phi + h / 2 * k1p);
        const double k2p = f_phi(xi + h / 2, theta + h / 2 * k1t);
        const double k3t = f_theta(xi + h / 2, phi + h / 2 * k2p);
        const double k3p = f_phi(xi + h / 2, theta + h / 2 * k2t);
        const double k4t = f_theta(xi + h, phi + h * k3p);
        const double k4p = f_phi(xi + h, theta + h * k3t);

        theta += h / 6.0 * (k1t + 2 * k2t + 2 * k3t + k4t);
        phi += h / 6.0 * (k1p + 2 * k2p + 2 * k3p + k4p);
        xi += h;
    }
    OCTO_ASSERT_MSG(theta <= 0.0, "Lane-Emden integration did not reach the surface");

    // Linear interpolation of the zero crossing.
    const double xi_prev = sol.xi.back();
    const double th_prev = sol.theta.back();
    const double frac = th_prev / (th_prev - theta);
    sol.xi1 = xi_prev + frac * h;
    sol.dtheta_dxi_at_xi1 = phi / (sol.xi1 * sol.xi1);
    return sol;
}

polytrope::polytrope(double mass, double radius, double n)
    : mass_(mass), radius_(radius), n_(n), le_(solve_lane_emden(n)) {
    OCTO_ASSERT(mass > 0.0 && radius > 0.0);

    // Standard scalings (G = 1 code units):
    //   R = alpha * xi1
    //   M = -4 pi alpha^3 rho_c xi1^2 theta'(xi1)
    alpha_ = radius_ / le_.xi1;
    const double mass_coeff =
        -4.0 * M_PI * std::pow(alpha_, 3) * le_.xi1 * le_.xi1 * le_.dtheta_dxi_at_xi1;
    rho_c_ = mass_ / mass_coeff;
    // K from alpha^2 = (n+1) K rho_c^(1/n - 1) / (4 pi G).
    K_ = 4.0 * M_PI * G * alpha_ * alpha_ /
         ((n_ + 1.0) * std::pow(rho_c_, 1.0 / n_ - 1.0));

    // Precompute enclosed mass m(xi) = -4 pi alpha^3 rho_c xi^2 theta'(xi)
    // via the trapezoid integral of 4 pi r^2 rho for robustness.
    m_enc_.resize(le_.xi.size(), 0.0);
    for (std::size_t i = 1; i < le_.xi.size(); ++i) {
        const double r0 = alpha_ * le_.xi[i - 1];
        const double r1 = alpha_ * le_.xi[i];
        const double rho0 = rho_c_ * std::pow(std::max(le_.theta[i - 1], 0.0), n_);
        const double rho1 = rho_c_ * std::pow(std::max(le_.theta[i], 0.0), n_);
        m_enc_[i] = m_enc_[i - 1] +
                    0.5 * (4.0 * M_PI * r0 * r0 * rho0 + 4.0 * M_PI * r1 * r1 * rho1) *
                        (r1 - r0);
    }
}

double polytrope::rho(double r) const {
    const double th = le_.theta_at(r / alpha_);
    return rho_c_ * std::pow(th, n_);
}

double polytrope::pressure(double r) const {
    const double d = rho(r);
    return K_ * std::pow(d, 1.0 + 1.0 / n_);
}

double polytrope::enclosed_mass(double r) const {
    if (r >= radius_) return mass_;
    const double x = r / alpha_;
    const double h = le_.xi[1] - le_.xi[0];
    const auto i = std::min(static_cast<std::size_t>(x / h), m_enc_.size() - 2);
    const double t = (x - le_.xi[i]) / h;
    return (1.0 - t) * m_enc_[i] + t * m_enc_[i + 1];
}

} // namespace octo::phys

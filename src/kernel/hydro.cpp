// Portable hydro kernel bodies (ISSUE 7). Each kernel is the ONE source of
// truth: the SIMD SoA pencil path (former src/hydro/pencil.cpp) and the
// scalar AoS path (former src/hydro/update.cpp kernels) collapsed into one
// T-templated body per kernel. T = double (exec::scalar AND exec::gpu — the
// modeled GPU runs literally the same compiled double instantiation, so
// scalar-vs-GPU bit-identity holds by construction) or simd::pack<double, W>.

#include "kernel/hydro.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "hydro/state.hpp"
#include "support/assert.hpp"

namespace octo::kernel {

using namespace octo::amr;
using hydro::leaf_flux_soa;
using hydro::n_faces;
using hydro::n_hydro_fields;
using hydro::pencil_workspace;
using hydro::rho_floor;
using hydro::tau_floor;
using phys::ideal_gas_eos;

namespace {

constexpr int P = hydro::pencil_len;    // 14 cells along the sweep axis
constexpr int L = hydro::pencil_lanes;  // 64 transverse pencils = lanes
constexpr int C = hydro::recon_cells;   // cells -1..INX carry face states
constexpr int NV = hydro::n_recon_vars; // 14 reconstructed variables

// Reconstructed-variable layout (shared by every instantiation):
// 0 rho, 1..3 v, 4 p, 5 tau/rho, 6..10 passives/rho, 11..13 l/rho.
constexpr int rv_rho = 0, rv_vx = 1, rv_p = 4, rv_tau = 5, rv_pass = 6;
constexpr int rv_l = 6 + n_passive;

/// Resolve the transverse-lane tile for width W: a multiple of W clamped to
/// [W, L]; <= 0 means the whole plane (the untiled default). Lanes are
/// visited in order within and across blocks, so every tile is bit-identical.
template <int W>
int lane_tile(int tile) {
    static_assert(L % W == 0, "lane count must be a multiple of the pack width");
    if (tile <= 0) return L;
    const int tt = std::max(W, (tile / W) * W);
    return std::min(tt, L);
}

template <class T>
void primitives_body(const double* u, const ideal_gas_eos& eos, int tile,
                     double* qv) {
    constexpr int W = lane_count<T>::value;
    const double gamma = eos.gamma();
    const T floor_p(rho_floor), zero(0.0), half(0.5);
    const T desw(eos.de_switch()), gm1(gamma - 1.0);
    const int tt = lane_tile<W>(tile);
    for (int t0 = 0; t0 < L; t0 += tt) {
        const int tend = std::min(t0 + tt, L);
        for (int p = 0; p < P; ++p) {
            const std::size_t cell = static_cast<std::size_t>(p) * L;
            for (int t = t0; t < tend; t += W) {
                const auto ld = [&](int q) {
                    return load_v<T>(u + static_cast<std::size_t>(q) * P * L +
                                     cell + t);
                };
                const auto st = [&](int v, const T& x) {
                    store_v(qv + static_cast<std::size_t>(v) * P * L + cell + t, x);
                };
                const T rho = simd::max(ld(f_rho), floor_p);
                const T vx = ld(f_sx) / rho;
                const T vy = ld(f_sy) / rho;
                const T vz = ld(f_sz) / rho;
                const T E = ld(f_egas);
                const T tau = ld(f_tau);
                const T ke = half * rho * (vx * vx + vy * vy + vz * vz);
                const T from_total = E - ke;
                const mask_t<T> use_total =
                    (from_total > desw * E) && (from_total > zero);
                T ent = zero;
                if (!simd::all(use_total)) {
                    ent = simd::pow(simd::max(tau, zero), gamma);
                }
                const T internal =
                    simd::max(simd::select(use_total, from_total, ent), zero);
                st(rv_rho, rho);
                st(rv_vx + 0, vx);
                st(rv_vx + 1, vy);
                st(rv_vx + 2, vz);
                st(rv_p, gm1 * internal);
                st(rv_tau, tau / rho);
                for (int s = 0; s < n_passive; ++s) {
                    st(rv_pass + s, ld(first_passive + s) / rho);
                }
                st(rv_l + 0, ld(f_lx) / rho);
                st(rv_l + 1, ld(f_ly) / rho);
                st(rv_l + 2, ld(f_lz) / rho);
            }
        }
    }
}

/// minmod with the branches as masked selects.
template <class T>
T mm(const T& a, const T& b) {
    const T zero(0.0);
    return simd::select(a * b <= zero, zero,
                        simd::select(simd::abs(a) < simd::abs(b), a, b));
}

template <class T>
void reconstruct_body(const double* q, bool use_ppm, int tile, double* iface,
                      double* flo, double* fhi) {
    constexpr int W = lane_count<T>::value;
    if (!use_ppm) {
        for (int cidx = 0; cidx < C; ++cidx) {
            std::memcpy(flo + cidx * L, q + (cidx + 2) * L, sizeof(double) * L);
            std::memcpy(fhi + cidx * L, q + (cidx + 2) * L, sizeof(double) * L);
        }
        return;
    }
    const T zero(0.0), half(0.5), two(2.0), three(3.0), six(6.0);
    const int tt = lane_tile<W>(tile);
    for (int t0 = 0; t0 < L; t0 += tt) {
        const int tend = std::min(t0 + tt, L);
        // Interface i (lower face of cell cidx = i) from cells i-2..i+1
        // relative to cell -1, i.e. pencil positions i..i+3.
        for (int i = 0; i <= C; ++i) {
            for (int t = t0; t < tend; t += W) {
                const T q_m2 = load_v<T>(q + (i + 0) * L + t);
                const T q_m1 = load_v<T>(q + (i + 1) * L + t);
                const T q_0 = load_v<T>(q + (i + 2) * L + t);
                const T q_p1 = load_v<T>(q + (i + 3) * L + t);
                const T dc_l = half * (q_0 - q_m2);
                const T dl_l = two * (q_m1 - q_m2);
                const T dr_l = two * (q_0 - q_m1);
                const T dql =
                    simd::select(dl_l * dr_l <= zero, zero, mm(dc_l, mm(dl_l, dr_l)));
                const T dc_r = half * (q_p1 - q_m1);
                const T dl_r = two * (q_0 - q_m1);
                const T dr_r = two * (q_p1 - q_0);
                const T dqr =
                    simd::select(dl_r * dr_r <= zero, zero, mm(dc_r, mm(dl_r, dr_r)));
                const T f = q_m1 + half * (q_0 - q_m1) - (dqr - dql) / six;
                store_v(iface + i * L + t, f);
            }
        }
        // Monotonicity limiting (CW84 eq. 1.10). The extremum flatten and the
        // two overshoot corrections are mutually exclusive, so the branch
        // cascade maps onto nested selects exactly.
        for (int cidx = 0; cidx < C; ++cidx) {
            for (int t = t0; t < tend; t += W) {
                const T lo0 = load_v<T>(iface + cidx * L + t);
                const T hi0 = load_v<T>(iface + (cidx + 1) * L + t);
                const T qc = load_v<T>(q + (cidx + 2) * L + t);
                const mask_t<T> ext = (hi0 - qc) * (qc - lo0) <= zero;
                const T d = hi0 - lo0;
                const T sx = six * (qc - half * (lo0 + hi0));
                const mask_t<T> c_lo = d * sx > d * d;
                const mask_t<T> c_hi = (zero - d * d) > d * sx;
                const T lo1 = simd::select(c_lo, three * qc - two * hi0, lo0);
                const T hi1 = simd::select(c_hi, three * qc - two * lo0, hi0);
                store_v(flo + cidx * L + t, simd::select(ext, qc, lo1));
                store_v(fhi + cidx * L + t, simd::select(ext, qc, hi1));
            }
        }
    }
}

template <class T>
struct face_prim {
    T va; ///< velocity component along the sweep axis
    T c;  ///< sound speed
    T p;  ///< pressure
};

/// Assemble the conserved face state of one side from the reconstructed
/// variables and derive its primitives exactly as to_primitives does, so
/// every instantiation agrees with the others to rounding.
template <class T>
face_prim<T> assemble_face(const double* rec, std::size_t off, int axis,
                           const ideal_gas_eos& eos, T* u) {
    const double gamma = eos.gamma();
    const T floor_p(rho_floor), zero(0.0), half(0.5);
    const auto ld = [&](int v) {
        return load_v<T>(rec + static_cast<std::size_t>(v) * C * L + off);
    };
    const T rho = simd::max(ld(rv_rho), floor_p);
    const T wx = ld(rv_vx + 0), wy = ld(rv_vx + 1), wz = ld(rv_vx + 2);
    const T pr = simd::max(ld(rv_p), zero);
    const T internal0 = pr / T(gamma - 1.0);
    u[f_rho] = rho;
    u[f_sx] = rho * wx;
    u[f_sy] = rho * wy;
    u[f_sz] = rho * wz;
    u[f_egas] = internal0 + half * rho * (wx * wx + wy * wy + wz * wz);
    u[f_tau] = simd::max(ld(rv_tau), zero) * rho;
    for (int s = 0; s < n_passive; ++s) {
        u[first_passive + s] = ld(rv_pass + s) * rho;
    }
    u[f_lx] = ld(rv_l + 0) * rho;
    u[f_ly] = ld(rv_l + 1) * rho;
    u[f_lz] = ld(rv_l + 2) * rho;

    // Primitives of the assembled state (dual-energy switch as a select).
    const T vx = u[f_sx] / rho, vy = u[f_sy] / rho, vz = u[f_sz] / rho;
    const T ke = half * rho * (vx * vx + vy * vy + vz * vz);
    const T from_total = u[f_egas] - ke;
    const mask_t<T> use_total =
        (from_total > T(eos.de_switch()) * u[f_egas]) && (from_total > zero);
    T ent = zero;
    if (!simd::all(use_total)) {
        ent = simd::pow(simd::max(u[f_tau], zero), gamma);
    }
    const T internal =
        simd::max(simd::select(use_total, from_total, ent), zero);
    face_prim<T> out;
    out.p = T(gamma - 1.0) * internal;
    out.c = simd::sqrt(T(gamma) * out.p / rho);
    out.va = axis == 0 ? vx : axis == 1 ? vy : vz;
    return out;
}

/// Kurganov–Tadmor flux over every face plane of the sweep. Writes the
/// n_hydro_fields planes of `out` (radiation planes stay zero; they are
/// advanced by the radiation solver).
template <class T>
void flux_body(const double* flo, const double* fhi, int axis,
               const ideal_gas_eos& eos, int tile, leaf_flux_soa& out,
               double* max_speed) {
    constexpr int W = lane_count<T>::value;
    const T zero(0.0), one(1.0);
    T msp(0.0);
    T uL[n_hydro_fields], uR[n_hydro_fields];
    const int tt = lane_tile<W>(tile);
    for (int t0 = 0; t0 < L; t0 += tt) {
        const int tend = std::min(t0 + tt, L);
        for (int p = 0; p < n_faces; ++p) {
            for (int t = t0; t < tend; t += W) {
                // Left state: hi face of cell p-1 (cidx p); right: lo of cell p.
                const face_prim<T> pL =
                    assemble_face<T>(fhi, static_cast<std::size_t>(p) * L + t,
                                     axis, eos, uL);
                const face_prim<T> pR =
                    assemble_face<T>(flo, static_cast<std::size_t>(p + 1) * L + t,
                                     axis, eos, uR);
                const T ap =
                    simd::max(simd::max(pL.va + pL.c, pR.va + pR.c), zero);
                const T am =
                    simd::min(simd::min(pL.va - pL.c, pR.va - pR.c), zero);
                msp = simd::max(msp, simd::max(ap, zero - am));
                const T denom = ap - am;
                const mask_t<T> safe = denom > zero;
                const T inv =
                    simd::select(safe, one / simd::select(safe, denom, one), zero);
                const T apam = ap * am;
                for (int q = 0; q < n_hydro_fields; ++q) {
                    T fL = uL[q] * pL.va;
                    T fR = uR[q] * pR.va;
                    if (q == f_sx + axis) {
                        fL += pL.p;
                        fR += pR.p;
                    } else if (q == f_egas) {
                        fL += pL.p * pL.va;
                        fR += pR.p * pR.va;
                    }
                    const T fq =
                        (ap * fL - am * fR) * inv + apam * inv * (uR[q] - uL[q]);
                    double* plane = out.plane(axis, q);
                    if (axis == 2) {
                        // Transverse-major plane: scatter the lanes.
                        for (int l = 0; l < W; ++l) {
                            plane[(t + l) * n_faces + p] = lane(fq, l);
                        }
                    } else {
                        store_v(plane + p * L + t, fq);
                    }
                }
            }
        }
    }
    *max_speed = std::max(*max_speed, simd::hmax(msp));
}

template <class T>
double wave_speed_body(const amr::subgrid& g, const ideal_gas_eos& eos) {
    constexpr int W = lane_count<T>::value;
    const double gamma = eos.gamma();
    const T floor_p(rho_floor), zero(0.0), half(0.5);
    const T desw(eos.de_switch()), gm1(gamma - 1.0), gam(gamma);
    T ms(1e-30);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j) {
            const int base = amr::subgrid::interior_index(i, j, 0);
            for (int kk = 0; kk < INX; kk += W) {
                const auto ld = [&](int q) {
                    return load_v<T>(g.field_data(q) + base + kk);
                };
                const T rho = simd::max(ld(f_rho), floor_p);
                const T vx = ld(f_sx) / rho;
                const T vy = ld(f_sy) / rho;
                const T vz = ld(f_sz) / rho;
                const T ke = half * rho * (vx * vx + vy * vy + vz * vz);
                const T E = ld(f_egas);
                const T from_total = E - ke;
                const mask_t<T> use_total =
                    (from_total > desw * E) && (from_total > zero);
                T ent = zero;
                if (!simd::all(use_total)) {
                    ent = simd::pow(simd::max(ld(f_tau), zero), gamma);
                }
                const T internal =
                    simd::max(simd::select(use_total, from_total, ent), zero);
                const T c = simd::sqrt(gam * (gm1 * internal) / rho);
                ms = simd::max(ms, simd::abs(vx) + c);
                ms = simd::max(ms, simd::abs(vy) + c);
                ms = simd::max(ms, simd::abs(vz) + c);
            }
        }
    return simd::hmax(ms);
}

/// Flux divergence + spin absorption over k-packs. The per-field subtraction
/// order is fixed (axis 0, 1, 2), identical in every instantiation; the
/// axis-2 flux plane is transverse-major, making its face loads contiguous.
template <class T>
void flux_divergence_body(amr::subgrid& g, const leaf_flux_soa& lf, double dt) {
    constexpr int W = lane_count<T>::value;
    const T lam(dt / g.geom.dx), h(0.5 * dt), zero(0.0);
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j) {
            const int row = amr::subgrid::interior_index(i, j, 0);
            const int lo0 = (i * INX + j) * INX;       // axis-0 faces at plane i
            const int hi0 = ((i + 1) * INX + j) * INX; // plane i+1
            const int lo1 = (j * INX + i) * INX;       // axis-1 faces at plane j
            const int hi1 = ((j + 1) * INX + i) * INX;
            const int t2 = (i * INX + j) * n_faces;    // axis-2 face row
            for (int kk = 0; kk < INX; kk += W) {
                T dlx = zero, dly = zero, dlz = zero;
                for (int q = 0; q < n_hydro_fields; ++q) {
                    const double* p0 = lf.plane(0, q);
                    const double* p1 = lf.plane(1, q);
                    const double* p2 = lf.plane(2, q);
                    T du = zero;
                    du -= lam * (load_v<T>(p0 + hi0 + kk) -
                                 load_v<T>(p0 + lo0 + kk));
                    du -= lam * (load_v<T>(p1 + hi1 + kk) -
                                 load_v<T>(p1 + lo1 + kk));
                    du -= lam * (load_v<T>(p2 + t2 + kk + 1) -
                                 load_v<T>(p2 + t2 + kk));
                    double* cell = g.field_data(q) + row + kk;
                    store_v(cell, load_v<T>(cell) + du);
                }
                // Spin ledger, same per-face sequence in every instantiation:
                // axis 0: e_x x F = (0, -Fz, Fy); axis 1: (Fz, 0, -Fx);
                // axis 2: (-Fy, Fx, 0); low face then high face.
                {
                    const double* psy = lf.plane(0, f_sy);
                    const double* psz = lf.plane(0, f_sz);
                    const T Fly = load_v<T>(psy + lo0 + kk);
                    const T Flz = load_v<T>(psz + lo0 + kk);
                    const T Fhy = load_v<T>(psy + hi0 + kk);
                    const T Fhz = load_v<T>(psz + hi0 + kk);
                    dly -= h * (zero - Flz);
                    dlz -= h * Fly;
                    dly -= h * (zero - Fhz);
                    dlz -= h * Fhy;
                }
                {
                    const double* psx = lf.plane(1, f_sx);
                    const double* psz = lf.plane(1, f_sz);
                    const T Flx = load_v<T>(psx + lo1 + kk);
                    const T Flz = load_v<T>(psz + lo1 + kk);
                    const T Fhx = load_v<T>(psx + hi1 + kk);
                    const T Fhz = load_v<T>(psz + hi1 + kk);
                    dlx -= h * Flz;
                    dlz -= h * (zero - Flx);
                    dlx -= h * Fhz;
                    dlz -= h * (zero - Fhx);
                }
                {
                    const double* psx = lf.plane(2, f_sx);
                    const double* psy = lf.plane(2, f_sy);
                    const T Flx = load_v<T>(psx + t2 + kk);
                    const T Fly = load_v<T>(psy + t2 + kk);
                    const T Fhx = load_v<T>(psx + t2 + kk + 1);
                    const T Fhy = load_v<T>(psy + t2 + kk + 1);
                    dlx -= h * (zero - Fly);
                    dly -= h * Flx;
                    dlx -= h * (zero - Fhy);
                    dly -= h * Fhx;
                }
                double* lx = g.field_data(f_lx) + row + kk;
                double* ly = g.field_data(f_ly) + row + kk;
                double* lz = g.field_data(f_lz) + row + kk;
                store_v(lx, load_v<T>(lx) + dlx);
                store_v(ly, load_v<T>(ly) + dly);
                store_v(lz, load_v<T>(lz) + dlz);
            }
        }
}

template <class T>
void blend_body(amr::subgrid& g, const aligned_vector<double>& u0) {
    constexpr int W = lane_count<T>::value;
    const T half(0.5);
    std::size_t idx = 0;
    for (int q = 0; q < n_fields; ++q)
        for (int i = 0; i < INX; ++i)
            for (int j = 0; j < INX; ++j) {
                double* cell =
                    g.field_data(q) + amr::subgrid::interior_index(i, j, 0);
                for (int kk = 0; kk < INX; kk += W, idx += W) {
                    const T u = load_v<T>(cell + kk);
                    store_v(cell + kk, half * (load_v<T>(u0.data() + idx) + u));
                }
            }
}

template <class T>
void dual_energy_body(amr::subgrid& g, const ideal_gas_eos& eos) {
    constexpr int W = lane_count<T>::value;
    const double gamma = eos.gamma();
    const T zero(0.0), half(0.5);
    const T rfloor(rho_floor), tfloor(tau_floor), desw(eos.de_switch());
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j) {
            const int row = amr::subgrid::interior_index(i, j, 0);
            for (int kk = 0; kk < INX; kk += W) {
                double* prho = g.field_data(f_rho) + row + kk;
                double* ptau = g.field_data(f_tau) + row + kk;
                double* pE = g.field_data(f_egas) + row + kk;
                const T rho = simd::max(load_v<T>(prho), rfloor);
                store_v(prho, rho);
                const T sx = load_v<T>(g.field_data(f_sx) + row + kk);
                const T sy = load_v<T>(g.field_data(f_sy) + row + kk);
                const T sz = load_v<T>(g.field_data(f_sz) + row + kk);
                const T ke = half * (sx * sx + sy * sy + sz * sz) / rho;
                const T E0 = load_v<T>(pE);
                const T tau0 = simd::max(load_v<T>(ptau), tfloor);
                const T from_total = E0 - ke;
                const mask_t<T> use_total =
                    (from_total > desw * E0) && (from_total > zero);
                // The two pow() branches only run when some lane takes them.
                T tau1 = tau0;
                if (simd::any(use_total)) {
                    tau1 = simd::pow(simd::max(from_total, zero), 1.0 / gamma);
                }
                T E1 = E0;
                if (!simd::all(use_total)) {
                    E1 = ke + simd::pow(simd::max(tau0, zero), gamma);
                }
                store_v(ptau, simd::select(use_total, tau1, tau0));
                store_v(pE, simd::select(use_total, E0, E1));
            }
        }
}

} // namespace

void hydro_gather(const amr::subgrid& g, int axis, double* u) {
    for (int q = 0; q < n_hydro_fields; ++q) {
        const double* src = g.field_data(q);
        double* dst = u + static_cast<std::size_t>(q) * P * L;
        if (axis == 0) {
            for (int p = 0; p < P; ++p)
                for (int b = 0; b < INX; ++b) {
                    const double* row = src + (p * NX + (b + H_BW)) * NX + H_BW;
                    std::memcpy(dst + p * L + b * INX, row,
                                sizeof(double) * INX);
                }
        } else if (axis == 1) {
            for (int p = 0; p < P; ++p)
                for (int b = 0; b < INX; ++b) {
                    const double* row =
                        src + ((b + H_BW) * NX + p) * NX + H_BW;
                    std::memcpy(dst + p * L + b * INX, row,
                                sizeof(double) * INX);
                }
        } else {
            for (int b = 0; b < INX; ++b)
                for (int c = 0; c < INX; ++c) {
                    const double* col =
                        src + ((b + H_BW) * NX + (c + H_BW)) * NX;
                    const int t = b * INX + c;
                    for (int p = 0; p < P; ++p) dst[p * L + t] = col[p];
                }
        }
    }
}

// ---- policy wrappers -------------------------------------------------------

template <class Exec>
void hydro_primitives(const double* u, const ideal_gas_eos& eos, int tile,
                      double* qv) {
    primitives_body<typename Exec::value_type>(u, eos, tile, qv);
}

template <class Exec>
void hydro_reconstruct(const double* q, bool use_ppm, int tile, double* iface,
                       double* flo, double* fhi) {
    reconstruct_body<typename Exec::value_type>(q, use_ppm, tile, iface, flo, fhi);
}

template <class Exec>
void hydro_flux(const double* flo, const double* fhi, int axis,
                const ideal_gas_eos& eos, int tile, leaf_flux_soa& out,
                double* max_speed) {
    flux_body<typename Exec::value_type>(flo, fhi, axis, eos, tile, out, max_speed);
}

template <class Exec>
double hydro_wave_speed(const amr::subgrid& g, const ideal_gas_eos& eos) {
    return wave_speed_body<typename Exec::value_type>(g, eos);
}

template <class Exec>
void hydro_flux_divergence(amr::subgrid& g, const leaf_flux_soa& lf, double dt) {
    flux_divergence_body<typename Exec::value_type>(g, lf, dt);
}

template <class Exec>
void hydro_blend(amr::subgrid& g, const aligned_vector<double>& u0) {
    blend_body<typename Exec::value_type>(g, u0);
}

template <class Exec>
void hydro_dual_energy(amr::subgrid& g, const ideal_gas_eos& eos) {
    dual_energy_body<typename Exec::value_type>(g, eos);
}

// Explicit instantiations: every policy dispatch() can produce. exec::scalar
// and exec::gpu both bind T = double, so each body compiles once for both.
#define OCTO_KERNEL_HYDRO(E)                                                       \
    template void hydro_primitives<E>(const double*, const ideal_gas_eos&, int,    \
                                      double*);                                    \
    template void hydro_reconstruct<E>(const double*, bool, int, double*,          \
                                       double*, double*);                          \
    template void hydro_flux<E>(const double*, const double*, int,                 \
                                const ideal_gas_eos&, int, leaf_flux_soa&,         \
                                double*);                                          \
    template double hydro_wave_speed<E>(const amr::subgrid&, const ideal_gas_eos&); \
    template void hydro_flux_divergence<E>(amr::subgrid&, const leaf_flux_soa&,    \
                                           double);                               \
    template void hydro_blend<E>(amr::subgrid&, const aligned_vector<double>&);    \
    template void hydro_dual_energy<E>(amr::subgrid&, const ideal_gas_eos&);
OCTO_KERNEL_HYDRO(exec::scalar)
OCTO_KERNEL_HYDRO(exec::simd<2>)
OCTO_KERNEL_HYDRO(exec::simd<4>)
OCTO_KERNEL_HYDRO(exec::simd<8>)
OCTO_KERNEL_HYDRO(exec::gpu)
#undef OCTO_KERNEL_HYDRO

// ---- runtime dispatch ------------------------------------------------------

void run_leaf_fluxes(const exec_config& cfg, const amr::subgrid& g, int axis,
                     const ideal_gas_eos& eos, bool use_ppm,
                     pencil_workspace& ws, leaf_flux_soa& out,
                     double* max_speed) {
    ws.u.resize(static_cast<std::size_t>(n_hydro_fields) * P * L);
    ws.qv.resize(static_cast<std::size_t>(NV) * P * L);
    ws.iface.resize(static_cast<std::size_t>(C + 1) * L);
    ws.flo.resize(static_cast<std::size_t>(NV) * C * L);
    ws.fhi.resize(static_cast<std::size_t>(NV) * C * L);

    hydro_gather(g, axis, ws.u.data());
    dispatch(cfg, [&](auto ex) {
        using Exec = decltype(ex);
        hydro_primitives<Exec>(ws.u.data(), eos, cfg.tile, ws.qv.data());
        for (int v = 0; v < NV; ++v) {
            hydro_reconstruct<Exec>(
                ws.qv.data() + static_cast<std::size_t>(v) * P * L, use_ppm,
                cfg.tile, ws.iface.data(),
                ws.flo.data() + static_cast<std::size_t>(v) * C * L,
                ws.fhi.data() + static_cast<std::size_t>(v) * C * L);
        }
        hydro_flux<Exec>(ws.flo.data(), ws.fhi.data(), axis, eos, cfg.tile, out,
                         max_speed);
    });
}

double run_wave_speed(const exec_config& cfg, const amr::subgrid& g,
                      const ideal_gas_eos& eos) {
    double ms = 0.0;
    dispatch(cfg, [&](auto ex) { ms = hydro_wave_speed<decltype(ex)>(g, eos); });
    return ms;
}

void run_flux_divergence(const exec_config& cfg, amr::subgrid& g,
                         const leaf_flux_soa& lf, double dt) {
    dispatch(cfg, [&](auto ex) { hydro_flux_divergence<decltype(ex)>(g, lf, dt); });
}

void run_blend(const exec_config& cfg, amr::subgrid& g,
               const aligned_vector<double>& u0) {
    dispatch(cfg, [&](auto ex) { hydro_blend<decltype(ex)>(g, u0); });
}

void run_dual_energy(const exec_config& cfg, amr::subgrid& g,
                     const ideal_gas_eos& eos) {
    dispatch(cfg, [&](auto ex) { hydro_dual_energy<decltype(ex)>(g, eos); });
}

} // namespace octo::kernel

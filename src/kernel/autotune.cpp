#include "kernel/autotune.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "runtime/apex.hpp"

namespace octo::kernel {

namespace {

int backend_from_name(const std::string& name) {
    if (name == "scalar") return static_cast<int>(backend_kind::scalar);
    if (name == "simd") return static_cast<int>(backend_kind::simd);
    if (name == "gpu") return static_cast<int>(backend_kind::gpu);
    return -1;
}

} // namespace

autotune_cache::autotune_cache(std::string path) : path_(std::move(path)) { load(); }

std::string autotune_cache::key(const std::string& machine, const std::string& kernel,
                                backend_kind backend) {
    return machine + "|" + kernel + "|" + backend_name(backend);
}

void autotune_cache::load() {
    std::ifstream in(path_);
    if (!in) {
        return;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::istringstream ss(line);
        std::string machine;
        std::string kernel;
        std::string backend;
        std::string field;
        if (!std::getline(ss, machine, '|') || !std::getline(ss, kernel, '|') ||
            !std::getline(ss, backend, '|')) {
            continue;
        }
        const int bk = backend_from_name(backend);
        if (bk < 0) {
            continue;
        }
        tuned_config cfg;
        cfg.backend = static_cast<backend_kind>(bk);
        if (!std::getline(ss, field, '|')) continue;
        cfg.width = std::atoi(field.c_str());
        if (!std::getline(ss, field, '|')) continue;
        cfg.tile = std::atoi(field.c_str());
        if (!std::getline(ss, field, '|')) continue;
        cfg.gpu_batch = static_cast<unsigned>(std::strtoul(field.c_str(), nullptr, 10));
        if (!std::getline(ss, field, '|')) continue;
        // New 8-field format carries flush_us before gflops; a 7-field line
        // from an older cache ends here and the field just read IS gflops.
        std::string tail;
        if (std::getline(ss, tail, '|')) {
            cfg.flush_us = std::strtod(field.c_str(), nullptr);
            cfg.gflops = std::strtod(tail.c_str(), nullptr);
        } else {
            cfg.gflops = std::strtod(field.c_str(), nullptr);
        }
        entry e;
        e.cfg = cfg;
        e.from_disk = true;
        map_[machine + "|" + kernel + "|" + backend] = e;
    }
}

void autotune_cache::persist() const {
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
        return;
    }
    out << "# octo autotune cache: machine|kernel|backend|width|tile|gpu_batch|flush_us|gflops\n";
    for (const auto& [k, e] : map_) {
        out << k << "|" << e.cfg.width << "|" << e.cfg.tile << "|" << e.cfg.gpu_batch
            << "|" << e.cfg.flush_us << "|" << e.cfg.gflops << "\n";
    }
}

std::optional<tuned_config> autotune_cache::lookup(const std::string& machine,
                                                   const std::string& kernel,
                                                   backend_kind backend) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key(machine, kernel, backend));
    if (it == map_.end()) {
        return std::nullopt;
    }
    ++hits_;
    rt::apex_count("kernel.autotune.hits");
    if (it->second.from_disk && !it->second.disk_counted) {
        it->second.disk_counted = true;
        ++disk_hits_;
        rt::apex_count("kernel.autotune.disk_hits");
    }
    return it->second.cfg;
}

tuned_config autotune_cache::tune(const std::string& machine, const std::string& kernel,
                                  backend_kind backend,
                                  const std::vector<tuned_config>& candidates,
                                  const measure_fn& measure) {
    if (auto cached = lookup(machine, kernel, backend)) {
        return *cached;
    }
    // Sweep outside the lock: measurements can be expensive and re-entrant
    // kernels may themselves consult the cache.
    tuned_config best;
    bool have_best = false;
    for (const auto& cand : candidates) {
        tuned_config c = cand;
        c.backend = backend;
        c.gflops = measure(c);
        if (!have_best || c.gflops > best.gflops) {
            best = c;
            have_best = true;
        }
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    ++sweeps_;
    rt::apex_count("kernel.autotune.sweeps");
    auto [it, inserted] = map_.emplace(key(machine, kernel, backend), entry{best, false, false});
    if (inserted) {
        persist();
    }
    return it->second.cfg;
}

void autotune_cache::store(const std::string& machine, const std::string& kernel,
                           backend_kind backend, const tuned_config& cfg) {
    const std::lock_guard<std::mutex> lock(mutex_);
    map_[key(machine, kernel, backend)] = entry{cfg, false, false};
    persist();
}

std::uint64_t autotune_cache::hits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t autotune_cache::disk_hits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return disk_hits_;
}

std::uint64_t autotune_cache::sweeps() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sweeps_;
}

autotune_cache& global_autotune() {
    static autotune_cache cache([] {
        const char* env = std::getenv("OCTO_AUTOTUNE_CACHE");
        return std::string(env != nullptr ? env : "./octo_autotune.cache");
    }());
    return cache;
}

} // namespace octo::kernel

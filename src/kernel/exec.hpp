#pragma once
// Portable kernel layer: execution-space policies (ISSUE 7, following
// "From Merging Frameworks to Merging Stars", arXiv:2210.06439).
//
// Every hot kernel in src/kernel is written ONCE as a body templated on a
// value type T (double or simd::pack<double, W>) and wrapped in a thin
// policy template:
//
//   exec::scalar   — T = double, one lane.
//   exec::simd<W>  — T = simd::pack<double, W>, W lanes per op.
//   exec::gpu      — T = double; the modeled device executes the *same*
//                    double instantiation the scalar backend uses (the
//                    paper's "instantiate the same function template with
//                    scalar datatypes and call it within the GPU kernel"
//                    trick, §5.1), so scalar-vs-GPU bit-identity holds by
//                    construction: both policies call one compiled function.
//
// A runtime `exec_config` (backend, width, tile) — usually produced by the
// autotuner (autotune.hpp) — is mapped onto these policies by dispatch().

#include <cstddef>

#include "simd/pack.hpp"

namespace octo::kernel {

enum class backend_kind : int { scalar = 0, simd = 1, gpu = 2 };

inline const char* backend_name(backend_kind b) {
    switch (b) {
        case backend_kind::scalar: return "scalar";
        case backend_kind::simd: return "simd";
        case backend_kind::gpu: return "gpu";
    }
    return "?";
}

namespace exec {

struct scalar {
    using value_type = double;
    static constexpr int width = 1;
    static constexpr backend_kind backend = backend_kind::scalar;
};

template <int W>
struct simd {
    using value_type = octo::simd::pack<double, static_cast<std::size_t>(W)>;
    static constexpr int width = W;
    static constexpr backend_kind backend = backend_kind::simd;
};

struct gpu {
    using value_type = double; // same instantiation as exec::scalar — see top
    static constexpr int width = 1;
    static constexpr backend_kind backend = backend_kind::gpu;
};

} // namespace exec

/// Runtime kernel-launch geometry; the autotuner picks these per
/// (kernel, machine, backend) and dispatch() maps them onto a policy.
struct exec_config {
    backend_kind backend = backend_kind::simd;
    int width = static_cast<int>(octo::simd::default_width);
    /// Blocking factor: receiver rows for the FMM kernels, transverse lanes
    /// for the hydro pencil passes. 0 = whole extent (the untiled default).
    int tile = 0;
};

// ---- value-type traits shared by the kernel bodies ------------------------

template <class T>
struct lane_count {
    static constexpr int value = 1;
};
template <class U, std::size_t W>
struct lane_count<simd::pack<U, W>> {
    static constexpr int value = static_cast<int>(W);
};

template <class T>
struct mask_of {
    using type = bool;
};
template <class U, std::size_t W>
struct mask_of<simd::pack<U, W>> {
    using type = simd::mask<U, W>;
};
template <class T>
using mask_t = typename mask_of<T>::type;

template <class T>
inline T load_v(const double* p) {
    if constexpr (lane_count<T>::value == 1) {
        return *p;
    } else {
        return T::load(p);
    }
}

template <class T>
inline void store_v(double* p, const T& v) {
    if constexpr (lane_count<T>::value == 1) {
        *p = v;
    } else {
        v.store(p);
    }
}

template <class T>
inline void store_add(double* p, const T& v) {
    if constexpr (lane_count<T>::value == 1) {
        *p += v;
    } else {
        (load_v<T>(p) + v).store(p);
    }
}

/// Extract lane l (scalar: the value itself) — used by the axis-2 hydro
/// flux scatter where faces are strided in memory.
template <class T>
inline double lane(const T& v, int l) {
    if constexpr (lane_count<T>::value == 1) {
        (void)l;
        return v;
    } else {
        return v[static_cast<std::size_t>(l)];
    }
}

/// Invoke `f` with the execution policy selected by cfg. Unknown SIMD
/// widths fall back to the build's default pack width.
template <class F>
void dispatch(const exec_config& cfg, F&& f) {
    if (cfg.backend == backend_kind::gpu) {
        f(exec::gpu{});
        return;
    }
    if (cfg.backend == backend_kind::scalar || cfg.width <= 1) {
        f(exec::scalar{});
        return;
    }
    switch (cfg.width) {
        case 2: f(exec::simd<2>{}); return;
        case 4: f(exec::simd<4>{}); return;
        default: f(exec::simd<static_cast<int>(octo::simd::default_width)>{}); return;
    }
}

} // namespace octo::kernel

#pragma once
// Per-kernel autotuner (ISSUE 7): at first use of a (kernel, machine,
// backend) triple, sweep the candidate launch geometries (SIMD width x tile
// for CPU kernels, aggregation batch for GPU offload), keep the measured
// winner, and persist it so later runs — and later *processes* — start at
// the tuned configuration. Cache effectiveness is APEX-visible:
//
//   kernel.autotune.sweeps     cold lookups that ran a measurement sweep
//   kernel.autotune.hits       warm lookups served from memory
//   kernel.autotune.disk_hits  entries served from the on-disk cache file
//
// The disk format is one entry per line:
//   machine|kernel|backend|width|tile|gpu_batch|flush_us|gflops
// (older 7-field lines without flush_us still parse; the flush timeout then
// stays at its built-in default)
// keyed on the machine model name ("host" = measured on this machine;
// cluster machine-model names for simulated nodes), the kernel class key
// ("fmm.monopole", "hydro.leaf_fluxes", ...) and the backend.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "kernel/exec.hpp"

namespace octo::kernel {

/// One tuned launch geometry plus the throughput that won it the slot.
struct tuned_config {
    backend_kind backend = backend_kind::simd;
    int width = static_cast<int>(octo::simd::default_width);
    int tile = 0;             ///< 0 = untiled (whole extent)
    unsigned gpu_batch = 16;  ///< aggregation batch (gpu backend only)
    double flush_us = 100.0;  ///< aggregator age-flush timeout (gpu backend)
    double gflops = 0.0;      ///< measured throughput of this config

    exec_config exec() const { return {backend, width, tile}; }
};

class autotune_cache {
  public:
    /// Loads `path` if it exists; tune()/store() persist back to it.
    explicit autotune_cache(std::string path);

    /// Warm lookup. Counts a hit (and, for entries that came from the cache
    /// file, a disk hit on first service).
    std::optional<tuned_config> lookup(const std::string& machine,
                                       const std::string& kernel,
                                       backend_kind backend);

    /// Measured throughput (GFLOP/s — any consistent figure of merit) of one
    /// candidate; the sweep keeps the argmax.
    using measure_fn = std::function<double(const tuned_config&)>;

    /// Lookup-or-sweep: returns the cached winner, or measures every
    /// candidate, stores and persists the best. Candidates are tried in
    /// order and ties keep the earlier one, so listing the fixed default
    /// first guarantees tuned >= default.
    tuned_config tune(const std::string& machine, const std::string& kernel,
                      backend_kind backend,
                      const std::vector<tuned_config>& candidates,
                      const measure_fn& measure);

    /// Explicit insert + persist (benches seed simulated machine models).
    void store(const std::string& machine, const std::string& kernel,
               backend_kind backend, const tuned_config& cfg);

    std::uint64_t hits() const;
    std::uint64_t disk_hits() const;
    std::uint64_t sweeps() const;
    const std::string& path() const { return path_; }

  private:
    struct entry {
        tuned_config cfg;
        bool from_disk = false;
        bool disk_counted = false;
    };

    static std::string key(const std::string& machine, const std::string& kernel,
                           backend_kind backend);
    void load();
    void persist() const; // callers hold mutex_

    mutable std::mutex mutex_;
    std::string path_;
    std::map<std::string, entry> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t disk_hits_ = 0;
    std::uint64_t sweeps_ = 0;
};

/// The process-wide cache: path from $OCTO_AUTOTUNE_CACHE, default
/// ./octo_autotune.cache.
autotune_cache& global_autotune();

} // namespace octo::kernel

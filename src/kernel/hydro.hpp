#pragma once
// Portable hydro kernels (ISSUE 7): gather, primitives, PPM reconstruction,
// Kurganov–Tadmor flux, wave-speed reduction, flux divergence, RK blend and
// the dual-energy fixup — each written ONCE over the SoA pencil layout of
// hydro/pencil.hpp and instantiated per execution-space policy (exec.hpp).
// The former scalar AoS pencil path (src/hydro/update.cpp) and the SIMD
// path (src/hydro/pencil.cpp) were collapsed into these bodies; the scalar
// path is now simply the width-1 instantiation.
//
// Tiling: the pencil kernels (primitives / reconstruct / flux) take a
// transverse-lane tile — lanes are processed in blocks of `tile` (multiple
// of the pack width) in lane order, so any tile is bit-identical to the
// untiled kernel and tiling is purely a cache-blocking knob the autotuner
// sweeps.

#include "amr/subgrid.hpp"
#include "hydro/pencil.hpp"
#include "kernel/exec.hpp"
#include "physics/eos.hpp"
#include "support/aligned.hpp"

namespace octo::kernel {

/// Transpose the sub-grid into the axis-ordered pencil bundle:
/// u[(q*P + p)*L + (b*INX + c)] with p the (ghost-inclusive) cell index
/// along `axis` and (b, c) the transverse interior cell in axis order.
/// Pure data movement — one body, no per-backend math.
void hydro_gather(const amr::subgrid& g, int axis, double* u);

/// Cell primitives for reconstruction (dual-energy switch as masked select).
template <class Exec>
void hydro_primitives(const double* u, const phys::ideal_gas_eos& eos, int tile,
                      double* qv);

/// PPM (CW84) or PCM reconstruction of one variable plane of the bundle.
template <class Exec>
void hydro_reconstruct(const double* q, bool use_ppm, int tile, double* iface,
                       double* flo, double* fhi);

/// Kurganov–Tadmor flux over every face plane of the sweep; accumulates the
/// maximum signal speed into *max_speed.
template <class Exec>
void hydro_flux(const double* flo, const double* fhi, int axis,
                const phys::ideal_gas_eos& eos, int tile, hydro::leaf_flux_soa& out,
                double* max_speed);

/// Max signal speed over the interior of one leaf (per-leaf CFL reduction).
template <class Exec>
double hydro_wave_speed(const amr::subgrid& g, const phys::ideal_gas_eos& eos);

/// Flux divergence + Després–Labourasse spin absorption.
template <class Exec>
void hydro_flux_divergence(amr::subgrid& g, const hydro::leaf_flux_soa& lf,
                           double dt);

/// Second RK stage blend: U <- (U0 + U) / 2.
template <class Exec>
void hydro_blend(amr::subgrid& g, const aligned_vector<double>& u0);

/// Dual-energy bookkeeping + floors (Bryan et al. switch).
template <class Exec>
void hydro_dual_energy(amr::subgrid& g, const phys::ideal_gas_eos& eos);

// ---- runtime dispatch on an exec_config -----------------------------------

/// The full flux sweep of one leaf along `axis`: gather + primitives +
/// per-variable reconstruction + KT flux, through the policy cfg selects.
void run_leaf_fluxes(const exec_config& cfg, const amr::subgrid& g, int axis,
                     const phys::ideal_gas_eos& eos, bool use_ppm,
                     hydro::pencil_workspace& ws, hydro::leaf_flux_soa& out,
                     double* max_speed);

double run_wave_speed(const exec_config& cfg, const amr::subgrid& g,
                      const phys::ideal_gas_eos& eos);

void run_flux_divergence(const exec_config& cfg, amr::subgrid& g,
                         const hydro::leaf_flux_soa& lf, double dt);

void run_blend(const exec_config& cfg, amr::subgrid& g,
               const aligned_vector<double>& u0);

void run_dual_energy(const exec_config& cfg, amr::subgrid& g,
                     const phys::ideal_gas_eos& eos);

} // namespace octo::kernel

#pragma once
// Portable FMM kernels (ISSUE 7): the same-level monopole / multipole
// interaction kernels and the tree-transfer M2M / L2L kernels, each written
// ONCE and instantiated per execution-space policy (exec.hpp).
//
// The bodies live in fmm.cpp; this header declares the policy wrappers
// (explicitly instantiated there) plus runtime dispatchers taking an
// exec_config — the form the solver, benches and autotuner use.
//
// Unlike the historical src/fmm/kernels.cpp variants, the kernel layer does
// not silently fall back to interaction_stencil(): callers must resolve
// kernel_options::stencil before the launch (the stencil choice is part of
// the launch geometry the autotuner sweeps over).

#include "amr/subgrid.hpp"
#include "fmm/kernels.hpp"
#include "fmm/node_data.hpp"
#include "kernel/exec.hpp"
#include "support/aligned.hpp"

namespace octo::kernel {

/// Same-level monopole-monopole interactions (paper §4.3). tile = receiver
/// rows (i,j) per block, processed in row order so any tile is bit-identical
/// to the untiled kernel; 0 = whole node.
template <class Exec>
void fmm_monopole(const fmm::node_moments& self, const fmm::partner_buffer& partners,
                  const fmm::kernel_options& opt, int tile, fmm::node_gravity& out);

/// Same-level multipole (and multipole-monopole) interactions.
template <class Exec>
void fmm_multipole(const fmm::node_moments& self, const aligned_vector<double>& self_invm,
                   const fmm::partner_buffer& partners, const fmm::kernel_options& opt,
                   int tile, fmm::node_gravity& out);

/// M2M: reduce the 8 children's moments (indexed by octant) into the parent
/// node. Octant-strided gather bound — scalar and gpu policies only.
template <class Exec>
void fmm_m2m(const fmm::node_moments* const children[8], const amr::box_geometry& geom,
             fmm::node_moments& mom, aligned_vector<double>& invm);

/// L2L: translate the parent's local expansions (and the spin-torque
/// ledger) down to the 8 children. Scalar and gpu policies only.
template <class Exec>
void fmm_l2l(const fmm::node_gravity& parentL, const fmm::node_moments& pm,
             const fmm::node_moments* const childM[8],
             fmm::node_gravity* const childLw[8], fmm::am_mode conserve);

// ---- runtime dispatch on an exec_config -----------------------------------

void run_fmm_monopole(const exec_config& cfg, const fmm::node_moments& self,
                      const fmm::partner_buffer& partners,
                      const fmm::kernel_options& opt, fmm::node_gravity& out);

void run_fmm_multipole(const exec_config& cfg, const fmm::node_moments& self,
                       const aligned_vector<double>& self_invm,
                       const fmm::partner_buffer& partners,
                       const fmm::kernel_options& opt, fmm::node_gravity& out);

void run_fmm_m2m(const exec_config& cfg, const fmm::node_moments* const children[8],
                 const amr::box_geometry& geom, fmm::node_moments& mom,
                 aligned_vector<double>& invm);

void run_fmm_l2l(const exec_config& cfg, const fmm::node_gravity& parentL,
                 const fmm::node_moments& pm, const fmm::node_moments* const childM[8],
                 fmm::node_gravity* const childLw[8], fmm::am_mode conserve);

} // namespace octo::kernel

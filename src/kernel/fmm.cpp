// Portable FMM kernel bodies (ISSUE 7). Each kernel below is the ONE source
// of truth: the former hand-written scalar / SIMD variants in
// src/fmm/kernels.cpp and the solver's inline M2M / L2L loops were moved
// here verbatim and deleted there. The value type T is double or
// simd::pack<double, W>; exec::scalar and exec::gpu both bind T = double, so
// the modeled-GPU path executes literally the same compiled function as the
// scalar CPU path (bit-identity by construction, paper §5.1).

#include "kernel/fmm.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fmm/stencil.hpp"
#include "fmm/taylor.hpp"
#include "support/assert.hpp"
#include "support/vec3.hpp"

namespace octo::kernel {

using amr::INX;
using fmm::am_mode;
using fmm::cell_index;
using fmm::expansion;
using fmm::greens_d3;
using fmm::idx2;
using fmm::idx3;
using fmm::kernel_options;
using fmm::mult2;
using fmm::n_taylor;
using fmm::node_gravity;
using fmm::node_moments;
using fmm::partner_buffer;
using fmm::stencil_element;

namespace {

/// Per-lane inclusion factor (1.0 or 0.0) from a stencil element's
/// receiver-parity mask, for receiver parities (ix, iy) and a lane block
/// starting at interior k-index k0.
template <class T>
T parity_factor(std::uint8_t mask, int ix, int iy, int k0) {
    if constexpr (lane_count<T>::value == 1) {
        const int bit = (ix & 1) | ((iy & 1) << 1) | ((k0 & 1) << 2);
        return ((mask >> bit) & 1) != 0 ? 1.0 : 0.0;
    } else {
        T f;
        for (std::size_t l = 0; l < T::size(); ++l) {
            const int bit =
                (ix & 1) | ((iy & 1) << 1) | (((k0 + static_cast<int>(l)) & 1) << 2);
            f.set(l, ((mask >> bit) & 1) != 0 ? 1.0 : 0.0);
        }
        return f;
    }
}

template <class T>
bool any_lane_nonzero(const T& f) {
    if constexpr (lane_count<T>::value == 1) {
        return f != 0.0;
    } else {
        for (std::size_t l = 0; l < T::size(); ++l) {
            if (f[l] != 0.0) return true;
        }
        return false;
    }
}

/// Stencil elements preprocessed per receiver-parity class.
///
/// The kernels' inner loop historically paid, per (cell block, element):
/// building the parity factor lane by lane, the padded-index arithmetic, and
/// a full interaction even when the factor was zero in every lane. All three
/// only depend on the element and the receiver parity (i&1, j&1, k0&1) — so
/// they are hoisted here into per-parity lists of {flat offset, factor
/// vector}, and elements whose factor is zero in every lane are dropped from
/// the class entirely. Dropping them is bit-identical: a zero factor zeroes
/// the partner's m and q, making every accumulated term exactly +-0.0.
///
/// Two prepasses run first and are also exact: the inner-mask filter, and
/// the mass-bounds filter (elements whose shifted window [d, d+INX-1] misses
/// the buffer's nonzero-mass bounding box contribute +0.0 for every cell —
/// all terms scale with the partner's m and q, and r2 > 0 by construction).
///
/// Thread-local scratch: no allocation in steady state.
template <class T>
struct parity_lists {
    struct item {
        std::int32_t offset; ///< flat partner-buffer offset of the element
        T factor;            ///< per-lane parity inclusion factor
    };
    std::vector<item> lists[8]; ///< indexed by (i&1) | ((j&1)<<1) | ((k0&1)<<2)
};

template <class T>
const parity_lists<T>& active_parity_lists(const std::vector<stencil_element>& st,
                                           const partner_buffer& partners,
                                           bool use_inner_mask) {
    constexpr int W = lane_count<T>::value;
    constexpr int P = partner_buffer::P;
    thread_local parity_lists<T> pl;
    for (auto& l : pl.lists) l.clear();
    // Cell blocks start at k0 = 0, W, 2W, ...: with W even only k0&1 == 0
    // occurs; the scalar kernel visits both k parities.
    const int npk = (W % 2 == 0) ? 1 : 2;
    for (const auto& e : st) {
        if (use_inner_mask && e.inner) continue;
        const int d[3] = {e.dx, e.dy, e.dz};
        bool overlaps = true;
        for (int a = 0; a < 3; ++a) {
            if (d[a] + INX - 1 < partners.mlo[a] || d[a] > partners.mhi[a]) {
                overlaps = false;
                break;
            }
        }
        if (!overlaps) continue;
        const auto offset =
            static_cast<std::int32_t>((e.dx * P + e.dy) * P + e.dz);
        for (int pk = 0; pk < npk; ++pk)
            for (int pj = 0; pj < 2; ++pj)
                for (int pi = 0; pi < 2; ++pi) {
                    const T f = parity_factor<T>(e.parity_mask, pi, pj, pk);
                    if (!any_lane_nonzero(f)) continue;
                    pl.lists[pi | (pj << 1) | (pk << 2)].push_back({offset, f});
                }
    }
    return pl;
}

/// Resolve the receiver-row tile: rows of (i, j) receiver pairs processed
/// per block, in row order — any tile yields the untiled iteration order,
/// so tiling is bit-identical and purely a cache-blocking knob.
inline int row_tile(int tile) {
    const int nrows = INX * INX;
    return tile > 0 ? std::min(tile, nrows) : nrows;
}

template <class T>
void monopole_body(const node_moments& self, const partner_buffer& partners,
                   const kernel_options& opt, int tile, node_gravity& out) {
    constexpr int W = lane_count<T>::value;
    static_assert(INX % W == 0 || W == 1);
    OCTO_ASSERT_MSG(opt.stencil != nullptr,
                    "kernel layer requires an explicit stencil");
    const auto& pl = active_parity_lists<T>(*opt.stencil, partners, false);

    const int nrows = INX * INX;
    const int rt = row_tile(tile);
    for (int r0 = 0; r0 < nrows; r0 += rt) {
        const int rend = std::min(r0 + rt, nrows);
        for (int r = r0; r < rend; ++r) {
            const int i = r / INX;
            const int j = r % INX;
            for (int k0 = 0; k0 < INX; k0 += W) {
                const int c = cell_index(i, j, k0);
                const int base = partner_buffer::index(i, j, k0);
                const auto& st =
                    pl.lists[(i & 1) | ((j & 1) << 1) | ((k0 & 1) << 2)];
                const T ax = load_v<T>(&self.com[0][c]);
                const T ay = load_v<T>(&self.com[1][c]);
                const T az = load_v<T>(&self.com[2][c]);

                T phi(0.0), l1x(0.0), l1y(0.0), l1z(0.0);

                for (const auto& e : st) {
                    const int p = base + e.offset;
                    const T mB = load_v<T>(&partners.m[p]) * e.factor;
                    const T dx = ax - load_v<T>(&partners.x[p]);
                    const T dy = ay - load_v<T>(&partners.y[p]);
                    const T dz = az - load_v<T>(&partners.z[p]);
                    const T r2 = dx * dx + dy * dy + dz * dz;
                    const T rinv = simd::rsqrt(r2);
                    const T mrinv = mB * rinv;
                    const T mrinv3 = mrinv * rinv * rinv;
                    // phi = -m/r ; dphi/dx_i = +m x_i / r^3 (g = -L1 later)
                    phi = phi - mrinv;
                    l1x = l1x + dx * mrinv3;
                    l1y = l1y + dy * mrinv3;
                    l1z = l1z + dz * mrinv3;
                }
                store_add(&out.L[0][c], phi);
                store_add(&out.L[1][c], l1x);
                store_add(&out.L[2][c], l1y);
                store_add(&out.L[3][c], l1z);
            }
        }
    }
}

template <class T>
void multipole_body(const node_moments& self, const aligned_vector<double>& self_invm,
                    const partner_buffer& partners, const kernel_options& opt,
                    int tile, node_gravity& out) {
    constexpr int W = lane_count<T>::value;
    static_assert(INX % W == 0 || W == 1);
    OCTO_ASSERT_MSG(opt.stencil != nullptr,
                    "kernel layer requires an explicit stencil");
    const auto& pl = active_parity_lists<T>(*opt.stencil, partners, opt.use_inner_mask);

    const int nrows = INX * INX;
    const int rt = row_tile(tile);
    for (int r0 = 0; r0 < nrows; r0 += rt) {
        const int rend = std::min(r0 + rt, nrows);
        for (int r = r0; r < rend; ++r) {
            const int i = r / INX;
            const int j = r % INX;
            for (int k0 = 0; k0 < INX; k0 += W) {
                const int c = cell_index(i, j, k0);
                const int base = partner_buffer::index(i, j, k0);
                const auto& st =
                    pl.lists[(i & 1) | ((j & 1) << 1) | ((k0 & 1) << 2)];
                const T ax = load_v<T>(&self.com[0][c]);
                const T ay = load_v<T>(&self.com[1][c]);
                const T az = load_v<T>(&self.com[2][c]);
                const T mA = load_v<T>(&self.m[c]);
                const T invmA = load_v<T>(&self_invm[c]);
                T qa[6];
                for (int t = 0; t < 6; ++t) qa[t] = load_v<T>(&self.q[t][c]);

                expansion<T> acc;
                for (auto& a : acc) a = T(0.0);
                T tq_acc[3] = {T(0.0), T(0.0), T(0.0)};

                for (const auto& e : st) {
                    const int p = base + e.offset;
                    const T& f = e.factor;
                    const T mB = load_v<T>(&partners.m[p]) * f;
                    T qb[6];
                    for (int t = 0; t < 6; ++t) qb[t] = load_v<T>(&partners.q[t][p]) * f;

                    T x[3];
                    x[0] = ax - load_v<T>(&partners.x[p]);
                    x[1] = ay - load_v<T>(&partners.y[p]);
                    x[2] = az - load_v<T>(&partners.z[p]);
                    const T r2 = x[0] * x[0] + x[1] * x[1] + x[2] * x[2];

                    expansion<T> D;
                    greens_d3(x, r2, D);

                    // Potential: phi = -(mB D0 + 1/2 QB : D2).
                    T qd2(0.0);
                    {
                        int t = 0;
                        for (int a = 0; a < 3; ++a)
                            for (int b = a; b < 3; ++b, ++t) {
                                qd2 = qd2 + T(mult2(a, b)) * qb[t] * D[idx2(a, b)];
                            }
                    }
                    acc[0] = acc[0] - (mB * D[0] + T(0.5) * qd2);

                    // Second-moment force terms.
                    //
                    // Plain / spin-deposit modes use the standard
                    // source-quadrupole gradient t_i = QB_jk D3_ijk,
                    // acceleration term -(1/2) t_i (most accurate; the
                    // receiver's own quadrupole force arises from the L2L
                    // redistribution, making the net pair force symmetric).
                    //
                    // Central-projection mode builds the exactly
                    // antisymmetric pair force from the symmetrized moment
                    // S = mA QB + mB QA and projects it onto the line of
                    // centers, so the pair torque vanishes identically.
                    //
                    // Spin-deposit mode additionally computes the pair's
                    // NET torque x cross F_net (with F_net from the
                    // symmetrized S) and deposits half of its negation at
                    // the receiver — both sides of the pair together cancel
                    // the mechanical torque in the spin ledger.
                    const bool central = opt.conserve == am_mode::central_projection;
                    const bool deposit = opt.conserve == am_mode::spin_deposit;

                    T tvec[3], tsym[3];
                    for (int a = 0; a < 3; ++a) tvec[a] = tsym[a] = T(0.0);
                    {
                        int t = 0;
                        for (int a = 0; a < 3; ++a)
                            for (int b = a; b < 3; ++b, ++t) {
                                const T s_plain = qb[t];
                                const T s_sym = mA * qb[t] + mB * qa[t];
                                const T s = central ? s_sym : s_plain;
                                for (int d = 0; d < 3; ++d) {
                                    int u = d, v = a, w = b; // sort (u,v,w)
                                    if (u > v) std::swap(u, v);
                                    if (v > w) std::swap(v, w);
                                    if (u > v) std::swap(u, v);
                                    const T d3 = D[idx3(u, v, w)];
                                    tvec[d] = tvec[d] + T(mult2(a, b)) * s * d3;
                                    if (deposit) {
                                        tsym[d] =
                                            tsym[d] + T(mult2(a, b)) * s_sym * d3;
                                    }
                                }
                            }
                    }
                    T half_scale = T(0.5);
                    if (central) {
                        // Project onto the line of centers: the pair torque
                        // (xA - xB) x F vanishes identically.
                        const T xt = x[0] * tvec[0] + x[1] * tvec[1] + x[2] * tvec[2];
                        const T scale = xt / r2;
                        for (int a = 0; a < 3; ++a) tvec[a] = x[a] * scale;
                        half_scale = T(0.5) * invmA;
                    }
                    if (deposit) {
                        // F_net = +(1/2) tsym, pair torque = x cross F_net;
                        // each side owns half of the cancellation:
                        // deposit = -1/4 (x cross tsym).
                        const T q = T(-0.25);
                        tq_acc[0] = tq_acc[0] + q * (x[1] * tsym[2] - x[2] * tsym[1]);
                        tq_acc[1] = tq_acc[1] + q * (x[2] * tsym[0] - x[0] * tsym[2]);
                        tq_acc[2] = tq_acc[2] + q * (x[0] * tsym[1] - x[1] * tsym[0]);
                    }

                    // dphi/dx_i = -mB D1_i - (1/2) [invmA] t_i.
                    for (int a = 0; a < 3; ++a) {
                        acc[1 + a] = acc[1 + a] - mB * D[1 + a] - half_scale * tvec[a];
                    }
                    // Higher coefficients: monopole source only.
                    for (int t = 4; t < n_taylor; ++t) {
                        acc[t] = acc[t] - mB * D[t];
                    }
                }

                for (int t = 0; t < n_taylor; ++t) store_add(&out.L[t][c], acc[t]);
                for (int a = 0; a < 3; ++a) store_add(&out.tq[a][c], tq_acc[a]);
            }
        }
    }
}

/// M2M: per child octant, reduce each 2x2x2 block of child cells into the
/// parent cell (mass, mass-weighted COM, parallel-axis second moments).
void m2m_body(const node_moments* const children[8], const amr::box_geometry& geom,
              node_moments& mom, aligned_vector<double>& invm) {
    for (int c = 0; c < 8; ++c) {
        const auto& cm = *children[c];
        const int ox = ((c >> 0) & 1) * (INX / 2);
        const int oy = ((c >> 1) & 1) * (INX / 2);
        const int oz = ((c >> 2) & 1) * (INX / 2);

        for (int pi = 0; pi < INX / 2; ++pi)
            for (int pj = 0; pj < INX / 2; ++pj)
                for (int pk = 0; pk < INX / 2; ++pk) {
                    const int pc = cell_index(ox + pi, oy + pj, oz + pk);
                    double m = 0.0;
                    dvec3 com{0, 0, 0};
                    for (int ci = 0; ci < 2; ++ci)
                        for (int cj = 0; cj < 2; ++cj)
                            for (int ck2 = 0; ck2 < 2; ++ck2) {
                                const int cc = cell_index(2 * pi + ci, 2 * pj + cj,
                                                          2 * pk + ck2);
                                m += cm.m[cc];
                                com += cm.m[cc] * dvec3{cm.com[0][cc], cm.com[1][cc],
                                                        cm.com[2][cc]};
                            }
                    if (m > 0.0) {
                        com /= m;
                    } else {
                        com = geom.cell_center(ox + pi, oy + pj, oz + pk);
                    }
                    double q[6] = {0, 0, 0, 0, 0, 0};
                    for (int ci = 0; ci < 2; ++ci)
                        for (int cj = 0; cj < 2; ++cj)
                            for (int ck2 = 0; ck2 < 2; ++ck2) {
                                const int cc = cell_index(2 * pi + ci, 2 * pj + cj,
                                                          2 * pk + ck2);
                                const dvec3 d = dvec3{cm.com[0][cc], cm.com[1][cc],
                                                      cm.com[2][cc]} -
                                                com;
                                int s = 0;
                                for (int a = 0; a < 3; ++a)
                                    for (int b = a; b < 3; ++b, ++s) {
                                        q[s] += cm.q[s][cc] + cm.m[cc] * d[a] * d[b];
                                    }
                            }
                    mom.m[pc] = m;
                    mom.com[0][pc] = com.x;
                    mom.com[1][pc] = com.y;
                    mom.com[2][pc] = com.z;
                    for (int s = 0; s < 6; ++s) mom.q[s][pc] = q[s];
                    invm[pc] = m > 0.0 ? 1.0 / m : 0.0;
                }
    }
}

/// Solve the 3x3 system K w = b (K symmetric) with light Tikhonov
/// regularization for near-singular K (collinear mass distributions).
dvec3 solve3x3_sym(double K[3][3], const dvec3& b) {
    const double tr = K[0][0] + K[1][1] + K[2][2];
    if (tr <= 0.0) return {0, 0, 0};
    const double eps = 1e-12 * tr;
    double A[3][4] = {{K[0][0] + eps, K[0][1], K[0][2], b.x},
                      {K[1][0], K[1][1] + eps, K[1][2], b.y},
                      {K[2][0], K[2][1], K[2][2] + eps, b.z}};
    // Gaussian elimination with partial pivoting.
    for (int col = 0; col < 3; ++col) {
        int piv = col;
        for (int r = col + 1; r < 3; ++r) {
            if (std::abs(A[r][col]) > std::abs(A[piv][col])) piv = r;
        }
        if (std::abs(A[piv][col]) < 1e-300) return {0, 0, 0};
        if (piv != col) {
            for (int cc = 0; cc < 4; ++cc) std::swap(A[piv][cc], A[col][cc]);
        }
        for (int r = 0; r < 3; ++r) {
            if (r == col) continue;
            const double f = A[r][col] / A[col][col];
            for (int cc = col; cc < 4; ++cc) A[r][cc] -= f * A[col][cc];
        }
    }
    return {A[0][3] / A[0][0], A[1][3] / A[1][1], A[2][3] / A[2][2]};
}

/// L2L: per PARENT cell, translate the expansion to its 8 child cells, with
/// the angular-momentum conservation modes of fmm::am_mode.
void l2l_body(const node_gravity& parentL, const node_moments& pm,
              const node_moments* const childM[8], node_gravity* const childLw[8],
              am_mode conserve) {
    using fmm::evaluate;
    using fmm::evaluate_gradient;
    for (int pi = 0; pi < INX; ++pi)
        for (int pj = 0; pj < INX; ++pj)
            for (int pk = 0; pk < INX; ++pk) {
                const int pc = cell_index(pi, pj, pk);
                expansion<double> src;
                for (int s = 0; s < n_taylor; ++s) src[s] = parentL.L[s][pc];

                // Locate the owning child node and the 2x2x2 child cells.
                const int oc = (pi / (INX / 2)) | ((pj / (INX / 2)) << 1) |
                               ((pk / (INX / 2)) << 2);
                const int bi = (pi % (INX / 2)) * 2;
                const int bj = (pj % (INX / 2)) * 2;
                const int bk = (pk % (INX / 2)) * 2;

                struct child_ref {
                    int cell;
                    double m;
                    dvec3 delta;
                    dvec3 da; // acceleration redistribution (from -L1 shift)
                    double dphi;
                    double dL2[6];
                };
                child_ref ch[8];
                int nch = 0;
                for (int ci = 0; ci < 2; ++ci)
                    for (int cj = 0; cj < 2; ++cj)
                        for (int ck2 = 0; ck2 < 2; ++ck2) {
                            auto& r = ch[nch++];
                            r.cell = cell_index(bi + ci, bj + cj, bk + ck2);
                            const auto& cm = *childM[oc];
                            r.m = cm.m[r.cell];
                            r.delta = {cm.com[0][r.cell] - pm.com[0][pc],
                                       cm.com[1][r.cell] - pm.com[1][pc],
                                       cm.com[2][r.cell] - pm.com[2][pc]};
                            const double d[3] = {r.delta.x, r.delta.y, r.delta.z};
                            // Potential shift (no conservation constraint).
                            r.dphi = evaluate(src, d) - src[0];
                            // Gradient shift = redistribution of the force.
                            double grad[3];
                            evaluate_gradient(src, d, grad);
                            r.da = {-(grad[0] - src[1]), -(grad[1] - src[2]),
                                    -(grad[2] - src[3])};
                            // L2 shift (feeds the next L2L level).
                            int s2 = 0;
                            for (int a = 0; a < 3; ++a)
                                for (int b = a; b < 3; ++b, ++s2) {
                                    double v = 0;
                                    for (int e = 0; e < 3; ++e) {
                                        int u = a, v2 = b, w = e;
                                        if (u > v2) std::swap(u, v2);
                                        if (v2 > w) std::swap(v2, w);
                                        if (u > v2) std::swap(u, v2);
                                        v += src[idx3(u, v2, w)] * d[e];
                                    }
                                    r.dL2[s2] = v;
                                }
                        }

                if (conserve == am_mode::central_projection) {
                    // (i) Remove the net force the redistribution would
                    // inject (it is already carried by the pair forces).
                    double mtot = 0;
                    dvec3 fsum{0, 0, 0};
                    for (int c = 0; c < 8; ++c) {
                        mtot += ch[c].m;
                        fsum += ch[c].m * ch[c].da;
                    }
                    if (mtot > 0.0) {
                        const dvec3 mean = fsum / mtot;
                        for (int c = 0; c < 8; ++c) ch[c].da -= mean;

                        // (ii) Absorb the internal torque into a rigid
                        // rotation field w x delta (the same trick the
                        // hydro reconstruction uses for spin):
                        // solve (tr(Q) I - Q) w = -T.
                        dvec3 T{0, 0, 0};
                        double Q[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
                        for (int c = 0; c < 8; ++c) {
                            T += ch[c].m * cross(ch[c].delta, ch[c].da);
                            for (int a = 0; a < 3; ++a)
                                for (int b = 0; b < 3; ++b) {
                                    Q[a][b] += ch[c].m * ch[c].delta[a] *
                                               ch[c].delta[b];
                                }
                        }
                        double K[3][3];
                        const double trQ = Q[0][0] + Q[1][1] + Q[2][2];
                        for (int a = 0; a < 3; ++a)
                            for (int b = 0; b < 3; ++b) {
                                K[a][b] = (a == b ? trQ : 0.0) - Q[a][b];
                            }
                        const dvec3 w = solve3x3_sym(K, -T);
                        for (int c = 0; c < 8; ++c) {
                            ch[c].da += cross(w, ch[c].delta);
                        }
                    }
                }

                // Spin-torque ledger: pass the parent cell's deposits down
                // (mass-weighted) and, in spin_deposit mode, also deposit the
                // negation of the internal torque this redistribution adds.
                dvec3 ledger{parentL.tq[0][pc], parentL.tq[1][pc],
                             parentL.tq[2][pc]};
                double mtot = 0;
                for (int c = 0; c < 8; ++c) mtot += ch[c].m;
                if (conserve == am_mode::spin_deposit) {
                    dvec3 T_int{0, 0, 0};
                    for (int c = 0; c < 8; ++c) {
                        T_int += ch[c].m * cross(ch[c].delta, ch[c].da);
                    }
                    // Deeper L2L levels will emit additional net forces from
                    // redistributing this L3 against each child's INTERNAL
                    // quadrupole q_c (the telescoped sum of its sub-tree's
                    // point moments), applied at the child's COM rather than
                    // here: account for the displaced torque now, so the
                    // ledger closes across arbitrarily deep trees.
                    dvec3 T_deep{0, 0, 0};
                    const auto& cm = *childM[oc];
                    for (int c = 0; c < 8; ++c) {
                        const int cc = ch[c].cell;
                        dvec3 tv{0, 0, 0};
                        int s2 = 0;
                        for (int a = 0; a < 3; ++a)
                            for (int b = a; b < 3; ++b, ++s2) {
                                const double qv = cm.q[s2][cc];
                                for (int d = 0; d < 3; ++d) {
                                    int u = d, v = a, w = b;
                                    if (u > v) std::swap(u, v);
                                    if (v > w) std::swap(v, w);
                                    if (u > v) std::swap(u, v);
                                    tv[d] += mult2(a, b) * qv *
                                             src[idx3(u, v, w)];
                                }
                            }
                        const dvec3 F_deep = -0.5 * tv;
                        T_deep += cross(ch[c].delta, F_deep);
                    }
                    ledger -= T_int + T_deep;
                }

                // Accumulate into the children.
                for (int c = 0; c < 8; ++c) {
                    auto& out = *childLw[oc];
                    const int cc = ch[c].cell;
                    out.L[0][cc] += src[0] + ch[c].dphi;
                    out.L[1][cc] += src[1] - ch[c].da.x;
                    out.L[2][cc] += src[2] - ch[c].da.y;
                    out.L[3][cc] += src[3] - ch[c].da.z;
                    for (int s2 = 0; s2 < 6; ++s2) {
                        out.L[4 + s2][cc] += src[4 + s2] + ch[c].dL2[s2];
                    }
                    for (int s = 10; s < n_taylor; ++s) out.L[s][cc] += src[s];
                    const double share = mtot > 0.0 ? ch[c].m / mtot : 0.125;
                    out.tq[0][cc] += share * ledger.x;
                    out.tq[1][cc] += share * ledger.y;
                    out.tq[2][cc] += share * ledger.z;
                }
            }
}

} // namespace

// ---- policy wrappers -------------------------------------------------------

template <class Exec>
void fmm_monopole(const node_moments& self, const partner_buffer& partners,
                  const kernel_options& opt, int tile, node_gravity& out) {
    monopole_body<typename Exec::value_type>(self, partners, opt, tile, out);
}

template <class Exec>
void fmm_multipole(const node_moments& self, const aligned_vector<double>& self_invm,
                   const partner_buffer& partners, const kernel_options& opt,
                   int tile, node_gravity& out) {
    multipole_body<typename Exec::value_type>(self, self_invm, partners, opt, tile,
                                              out);
}

template <class Exec>
void fmm_m2m(const node_moments* const children[8], const amr::box_geometry& geom,
             node_moments& mom, aligned_vector<double>& invm) {
    static_assert(Exec::width == 1,
                  "M2M is octant-strided-gather bound: scalar/gpu policies only");
    m2m_body(children, geom, mom, invm);
}

template <class Exec>
void fmm_l2l(const node_gravity& parentL, const node_moments& pm,
             const node_moments* const childM[8], node_gravity* const childLw[8],
             am_mode conserve) {
    static_assert(Exec::width == 1,
                  "L2L is octant-strided-gather bound: scalar/gpu policies only");
    l2l_body(parentL, pm, childM, childLw, conserve);
}

// Explicit instantiations: every policy dispatch() can produce. exec::scalar
// and exec::gpu both bind T = double, so the bodies compile once for both.
#define OCTO_KERNEL_FMM_SL(E)                                                      \
    template void fmm_monopole<E>(const node_moments&, const partner_buffer&,      \
                                  const kernel_options&, int, node_gravity&);      \
    template void fmm_multipole<E>(const node_moments&, const aligned_vector<double>&, \
                                   const partner_buffer&, const kernel_options&,   \
                                   int, node_gravity&);
OCTO_KERNEL_FMM_SL(exec::scalar)
OCTO_KERNEL_FMM_SL(exec::simd<2>)
OCTO_KERNEL_FMM_SL(exec::simd<4>)
OCTO_KERNEL_FMM_SL(exec::simd<8>)
OCTO_KERNEL_FMM_SL(exec::gpu)
#undef OCTO_KERNEL_FMM_SL

#define OCTO_KERNEL_FMM_TREE(E)                                                    \
    template void fmm_m2m<E>(const node_moments* const[8], const amr::box_geometry&, \
                             node_moments&, aligned_vector<double>&);              \
    template void fmm_l2l<E>(const node_gravity&, const node_moments&,             \
                             const node_moments* const[8], node_gravity* const[8], \
                             am_mode);
OCTO_KERNEL_FMM_TREE(exec::scalar)
OCTO_KERNEL_FMM_TREE(exec::gpu)
#undef OCTO_KERNEL_FMM_TREE

// ---- runtime dispatch ------------------------------------------------------

void run_fmm_monopole(const exec_config& cfg, const node_moments& self,
                      const partner_buffer& partners, const kernel_options& opt,
                      node_gravity& out) {
    dispatch(cfg, [&](auto ex) {
        fmm_monopole<decltype(ex)>(self, partners, opt, cfg.tile, out);
    });
}

void run_fmm_multipole(const exec_config& cfg, const node_moments& self,
                       const aligned_vector<double>& self_invm,
                       const partner_buffer& partners, const kernel_options& opt,
                       node_gravity& out) {
    dispatch(cfg, [&](auto ex) {
        fmm_multipole<decltype(ex)>(self, self_invm, partners, opt, cfg.tile, out);
    });
}

void run_fmm_m2m(const exec_config& cfg, const node_moments* const children[8],
                 const amr::box_geometry& geom, node_moments& mom,
                 aligned_vector<double>& invm) {
    if (cfg.backend == backend_kind::gpu) {
        fmm_m2m<exec::gpu>(children, geom, mom, invm);
    } else {
        fmm_m2m<exec::scalar>(children, geom, mom, invm);
    }
}

void run_fmm_l2l(const exec_config& cfg, const node_gravity& parentL,
                 const node_moments& pm, const node_moments* const childM[8],
                 node_gravity* const childLw[8], am_mode conserve) {
    if (cfg.backend == backend_kind::gpu) {
        fmm_l2l<exec::gpu>(parentL, pm, childM, childLw, conserve);
    } else {
        fmm_l2l<exec::scalar>(parentL, pm, childM, childLw, conserve);
    }
}

} // namespace octo::kernel

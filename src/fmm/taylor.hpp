#pragma once
// Taylor-expansion algebra for the volume-based FMM (paper §4.3).
//
// Local expansions of the gravitational potential are stored as the raw
// derivative tensors of phi about a cell's center of mass, truncated at
// third order: 1 + 3 + 6 + 10 = 20 coefficients, mirroring Octo-Tiger's
// taylor<> type. Multipole moments per cell are (mass, center of mass, raw
// second moments); the second-moment trace never contributes because the
// derivative tensors of 1/r are traceless, which is also why a homogeneous
// cube's self-quadrupole drops out — the "locally homogeneous densities"
// assumption the paper cites as the reason Octo-Tiger needs fewer
// flops/cell than PVFMM.
//
// All functions are templates over the value type so the same code is
// instantiated with simd::pack<double, W> for the vectorized CPU kernels and
// with double for the scalar (simulated-GPU) kernels — the Vc/CUDA trick of
// paper §5.1.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "simd/pack.hpp"
#include "support/vec3.hpp"

namespace octo::fmm {

/// Number of local-expansion coefficients (orders 0..3).
inline constexpr int n_taylor = 20;

// Coefficient layout:
//   [0]        : phi
//   [1..3]     : d phi / dx_i                       (x, y, z)
//   [4..9]     : d2 phi (xx, xy, xz, yy, yz, zz)
//   [10..19]   : d3 phi (xxx, xxy, xxz, xyy, xyz, xzz, yyy, yyz, yzz, zzz)

/// Index of the second-derivative coefficient for (i, j), i <= j.
constexpr int idx2(int i, int j) {
    constexpr int map[3][3] = {{4, 5, 6}, {5, 7, 8}, {6, 8, 9}};
    return map[i][j];
}

/// Index of the third-derivative coefficient for sorted (i <= j <= k).
constexpr int idx3(int i, int j, int k) {
    // Sorted triples over {0,1,2}: 000,001,002,011,012,022,111,112,122,222
    constexpr int map[3][3][3] = {
        {{10, 11, 12}, {11, 13, 14}, {12, 14, 15}},
        {{11, 13, 14}, {13, 16, 17}, {14, 17, 18}},
        {{12, 14, 15}, {14, 17, 18}, {15, 18, 19}}};
    return map[i][j][k];
}

/// Multiplicity of the (i,j) unordered pair when summing over ordered pairs.
constexpr double mult2(int i, int j) { return i == j ? 1.0 : 2.0; }
/// Multiplicity of the sorted (i,j,k) triple over ordered triples.
constexpr double mult3(int i, int j, int k) {
    if (i == j && j == k) return 1.0;
    if (i == j || j == k || i == k) return 3.0;
    return 6.0;
}

/// A 20-coefficient expansion with value type T (scalar or SIMD pack).
template <class T>
using expansion = std::array<T, n_taylor>;

/// Derivative tensors of 1/r evaluated at x (r2 = |x|^2 must be > 0):
///   out[0]       = 1/r
///   out[1..3]    = -x_i / r^3
///   out[4..9]    = 3 x_i x_j / r^5 - delta_ij / r^3
///   out[10..19]  = -15 x_i x_j x_k / r^7 + 3 (d_ij x_k + d_jk x_i + d_ik x_j)/r^5
/// Returns the number of floating point operations executed (a compile-time
/// constant; used for the paper-style FLOP accounting).
template <class T>
inline void greens_d3(const T x[3], T r2, expansion<T>& out) {
    using octo::simd::rsqrt;
    const T rinv = rsqrt(r2);
    const T rinv2 = rinv * rinv;
    const T rinv3 = rinv * rinv2;
    const T rinv5 = rinv3 * rinv2;
    const T rinv7 = rinv5 * rinv2;

    out[0] = rinv;
    for (int i = 0; i < 3; ++i) out[1 + i] = -x[i] * rinv3;

    const T three_rinv5 = T(3.0) * rinv5;
    for (int i = 0; i < 3; ++i) {
        for (int j = i; j < 3; ++j) {
            T v = x[i] * x[j] * three_rinv5;
            if (i == j) v = v - rinv3;
            out[idx2(i, j)] = v;
        }
    }

    const T m15_rinv7 = T(-15.0) * rinv7;
    for (int i = 0; i < 3; ++i) {
        for (int j = i; j < 3; ++j) {
            for (int k = j; k < 3; ++k) {
                T v = x[i] * x[j] * x[k] * m15_rinv7;
                if (i == j) v = v + three_rinv5 * x[k];
                if (j == k) v = v + three_rinv5 * x[i];
                if (i == k && i != j) v = v + three_rinv5 * x[j];
                else if (i == k && i == j) v = v + three_rinv5 * x[j];
                out[idx3(i, j, k)] = v;
            }
        }
    }
}

/// FLOPs executed by greens_d3 per (scalar) evaluation; counted by hand from
/// the code above (rsqrt counted as 2).
inline constexpr std::uint64_t greens_d3_flops = 2 + 4 /*rinv powers*/ + 3 /*D1*/ +
                                                 1 + 6 * 2 + 3 /*D2*/ +
                                                 1 + 10 * 3 + 16 /*D3*/;

/// Evaluate the expansion's value at offset delta from its center.
template <class T>
T evaluate(const expansion<T>& L, const T delta[3]) {
    T v = L[0];
    for (int i = 0; i < 3; ++i) v = v + L[1 + i] * delta[i];
    for (int i = 0; i < 3; ++i)
        for (int j = i; j < 3; ++j) {
            v = v + T(0.5 * mult2(i, j)) * L[idx2(i, j)] * delta[i] * delta[j];
        }
    for (int i = 0; i < 3; ++i)
        for (int j = i; j < 3; ++j)
            for (int k = j; k < 3; ++k) {
                v = v + T(mult3(i, j, k) / 6.0) * L[idx3(i, j, k)] * delta[i] *
                            delta[j] * delta[k];
            }
    return v;
}

/// Gradient of the expansion at offset delta (out[i] = d phi / d x_i).
template <class T>
void evaluate_gradient(const expansion<T>& L, const T delta[3], T out[3]) {
    for (int i = 0; i < 3; ++i) {
        T g = L[1 + i];
        for (int j = 0; j < 3; ++j) {
            g = g + L[idx2(std::min(i, j), std::max(i, j))] * delta[j];
        }
        for (int j = 0; j < 3; ++j)
            for (int k = j; k < 3; ++k) {
                int a = i, b = j, c = k; // sort (a,b,c)
                if (a > b) std::swap(a, b);
                if (b > c) std::swap(b, c);
                if (a > b) std::swap(a, b);
                g = g + T(0.5 * mult2(j, k)) * L[idx3(a, b, c)] * delta[j] * delta[k];
            }
        out[i] = g;
    }
}

/// Translate an expansion to a new center at offset delta (L2L operator):
/// accumulates the shifted expansion of `src` into `dst`.
template <class T>
void shift_expansion(const expansion<T>& src, const T delta[3], expansion<T>& dst) {
    dst[0] = dst[0] + evaluate(src, delta);
    T grad[3];
    evaluate_gradient(src, delta, grad);
    for (int i = 0; i < 3; ++i) dst[1 + i] = dst[1 + i] + grad[i];
    // Second derivatives pick up the third-order terms.
    for (int i = 0; i < 3; ++i)
        for (int j = i; j < 3; ++j) {
            T v = src[idx2(i, j)];
            for (int k = 0; k < 3; ++k) {
                int a = i, b = j, c = k;
                if (a > b) std::swap(a, b);
                if (b > c) std::swap(b, c);
                if (a > b) std::swap(a, b);
                v = v + src[idx3(a, b, c)] * delta[k];
            }
            dst[idx2(i, j)] = dst[idx2(i, j)] + v;
        }
    for (int t = 10; t < n_taylor; ++t) dst[t] = dst[t] + src[t];
}

} // namespace octo::fmm

#pragma once
// The same-level interaction stencil (paper §4.3): "each cell interacts with
// 1074 of its close neighbors".
//
// Derivation (two-level opening criterion, verified to give exactly 1074
// offsets): offset d is in the stencil iff the interaction could NOT have
// been computed one level up, i.e. iff for some child sub-position
// c in {0,1}^3 the parent-level offset p = floor((c + d)/2) satisfies
// |p|^2 <= 8 ("parents not well separated"). Offsets with |d|^2 <= 8 are
// additionally flagged: when BOTH interaction partners are refined, these
// pairs are deferred to the children (they will appear in the child-level
// stencil), so the multipole-multipole kernel masks them out; when either
// partner is a leaf there is no finer level and the pair is computed here.
// This makes every cell pair in the tree interact exactly once.

#include <cstdint>
#include <vector>

#include "support/vec3.hpp"

namespace octo::fmm {

struct stencil_element {
    std::int8_t dx, dy, dz;
    /// True when |d|^2 <= 8: skipped for refined-refined pairs (handled at
    /// the next finer level). This deferral is parity-free: the child pairs'
    /// actual parent offset IS d, so they are selected at the child level
    /// exactly when |d|^2 <= 8.
    bool inner;
    /// Per-receiver-parity inclusion mask. The *actual* parent-level offset
    /// of a cell pair is p_i = floor((c_i + d_i)/2) where c is the receiver
    /// cell's coordinate parity; whether the parents are well separated
    /// therefore depends on that parity for boundary offsets. Bit
    /// (cx | cy<<1 | cz<<2) is set iff the pair is computed at this level
    /// for a receiver with parities (cx, cy, cz). The mask is symmetric
    /// under (c, d) -> (parity of c+d, -d), so both halves of a pair agree
    /// on the level that owns it — the exactly-once property the
    /// correctness tests verify.
    std::uint8_t parity_mask;
};

/// The full same-level stencil; size() == 1074.
const std::vector<stencil_element>& interaction_stencil();

/// Number of elements with the `inner` flag set (the refined-refined mask).
int inner_stencil_size();

/// Maximum |component| over all stencil offsets (needed to size the padded
/// neighbor buffers; equals 5 for the 1074-element stencil).
int stencil_reach();

/// The stencil used at the ROOT level: all offsets in [-7,7]^3 (minus the
/// origin), inner-flagged by the same |d|^2 <= 8 rule. The root has no
/// parent level to defer far pairs to, so it computes everything the
/// regular stencil would drop.
const std::vector<stencil_element>& root_stencil();

} // namespace octo::fmm

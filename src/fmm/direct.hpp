#pragma once
// O(N^2) direct-summation gravity over all leaf cells. This is the accuracy
// reference for the FMM (the "direct summation" the paper's related-work
// section contrasts with) and is used by tests and the accuracy ablation.
// Cells are treated as point masses at their centers of mass, matching the
// FMM's leaf-level monopole approximation, so any difference between the two
// is pure expansion/truncation error.

#include <unordered_map>

#include "amr/tree.hpp"
#include "fmm/node_data.hpp"

namespace octo::fmm {

struct direct_result {
    /// Per leaf node: SoA acceleration + potential over the 512 cells.
    std::unordered_map<amr::node_key, node_gravity> gravity;
};

/// Compute gravity by direct summation over every pair of leaf cells.
/// `softening2` is an optional Plummer softening (0 for exact Newtonian).
direct_result solve_direct(const amr::tree& t, double softening2 = 0.0);

} // namespace octo::fmm

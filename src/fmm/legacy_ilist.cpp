#include "fmm/legacy_ilist.hpp"

#include <cmath>

#include "fmm/stencil.hpp"

namespace octo::fmm {

interaction_list build_interaction_list() {
    interaction_list out;
    const auto& st = interaction_stencil();
    out.pairs.reserve(static_cast<std::size_t>(INX3) * st.size());
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int k = 0; k < INX; ++k) {
                const auto rec = static_cast<std::int32_t>(cell_index(i, j, k));
                const int bit = (i & 1) | ((j & 1) << 1) | ((k & 1) << 2);
                for (const auto& e : st) {
                    if (((e.parity_mask >> bit) & 1) == 0) continue;
                    out.pairs.push_back(
                        {rec, static_cast<std::int32_t>(partner_buffer::index(
                                  i + e.dx, j + e.dy, k + e.dz))});
                }
            }
    return out;
}

void legacy_monopole_kernel(const interaction_list& list,
                            std::vector<aos_cell>& receivers,
                            const std::vector<aos_cell>& partners) {
    // One gather per pair, scalar math, scattered accumulation: the memory
    // access pattern the stencil/SoA rewrite eliminated.
    for (const auto& p : list.pairs) {
        aos_cell& r = receivers[static_cast<std::size_t>(p.receiver)];
        const aos_cell& q = partners[static_cast<std::size_t>(p.partner)];
        const double dx = r.x - q.x;
        const double dy = r.y - q.y;
        const double dz = r.z - q.z;
        const double r2 = dx * dx + dy * dy + dz * dz;
        const double rinv = 1.0 / std::sqrt(r2);
        const double mrinv = q.m * rinv;
        const double mrinv3 = mrinv * rinv * rinv;
        r.phi -= mrinv;
        r.gx -= dx * mrinv3;
        r.gy -= dy * mrinv3;
        r.gz -= dz * mrinv3;
    }
}

std::vector<aos_cell> to_aos_partners(const partner_buffer& buf) {
    std::vector<aos_cell> out(partner_buffer::P3);
    for (int i = 0; i < partner_buffer::P3; ++i) {
        out[static_cast<std::size_t>(i)] = {buf.m[i], buf.x[i], buf.y[i],
                                            buf.z[i],  0,        0,
                                            0,        0};
    }
    return out;
}

std::vector<aos_cell> to_aos_receivers(const node_moments& mom) {
    std::vector<aos_cell> out(INX3);
    for (int i = 0; i < INX3; ++i) {
        out[static_cast<std::size_t>(i)] = {mom.m[i],      mom.com[0][i],
                                            mom.com[1][i], mom.com[2][i],
                                            0,             0,
                                            0,             0};
    }
    return out;
}

} // namespace octo::fmm

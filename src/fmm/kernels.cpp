#include "fmm/kernels.hpp"

#include "fmm/stencil.hpp"

namespace octo::fmm {

std::uint64_t interactions_per_launch(bool inner_masked) {
    const auto n = static_cast<std::uint64_t>(interaction_stencil().size()) -
                   (inner_masked ? static_cast<std::uint64_t>(inner_stencil_size()) : 0u);
    return static_cast<std::uint64_t>(INX3) * n;
}

std::uint64_t mono_kernel_flops() {
    return interactions_per_launch(false) * mono_flops_per_interaction;
}

std::uint64_t multi_kernel_flops(bool inner_masked) {
    return interactions_per_launch(inner_masked) * multi_flops_per_interaction;
}

} // namespace octo::fmm

#include "fmm/kernels.hpp"

#include "support/assert.hpp"

namespace octo::fmm {
namespace {

template <class T>
struct lane_count {
    static constexpr int value = 1;
};
template <class U, std::size_t W>
struct lane_count<simd::pack<U, W>> {
    static constexpr int value = static_cast<int>(W);
};

template <class T>
T load_v(const double* p) {
    if constexpr (lane_count<T>::value == 1) {
        return *p;
    } else {
        return T::load(p);
    }
}

/// Per-lane inclusion factor (1.0 or 0.0) from a stencil element's
/// receiver-parity mask, for receiver parities (ix, iy) and a lane block
/// starting at interior k-index k0.
template <class T>
T parity_factor(std::uint8_t mask, int ix, int iy, int k0) {
    if constexpr (lane_count<T>::value == 1) {
        const int bit = (ix & 1) | ((iy & 1) << 1) | ((k0 & 1) << 2);
        return ((mask >> bit) & 1) != 0 ? 1.0 : 0.0;
    } else {
        T f;
        for (std::size_t l = 0; l < T::size(); ++l) {
            const int bit =
                (ix & 1) | ((iy & 1) << 1) | (((k0 + static_cast<int>(l)) & 1) << 2);
            f.set(l, ((mask >> bit) & 1) != 0 ? 1.0 : 0.0);
        }
        return f;
    }
}

template <class T>
void store_add(double* p, const T& v) {
    if constexpr (lane_count<T>::value == 1) {
        *p += v;
    } else {
        (load_v<T>(p) + v).store(p);
    }
}

template <class T>
bool any_lane_nonzero(const T& f) {
    if constexpr (lane_count<T>::value == 1) {
        return f != 0.0;
    } else {
        for (std::size_t l = 0; l < T::size(); ++l) {
            if (f[l] != 0.0) return true;
        }
        return false;
    }
}

/// Stencil elements preprocessed per receiver-parity class.
///
/// The kernels' inner loop historically paid, per (cell block, element):
/// building the parity factor lane by lane, the padded-index arithmetic, and
/// a full interaction even when the factor was zero in every lane. All three
/// only depend on the element and the receiver parity (i&1, j&1, k0&1) — so
/// they are hoisted here into per-parity lists of {flat offset, factor
/// vector}, and elements whose factor is zero in every lane are dropped from
/// the class entirely. Dropping them is bit-identical: a zero factor zeroes
/// the partner's m and q, making every accumulated term exactly +-0.0.
///
/// Two prepasses run first and are also exact: the inner-mask filter, and
/// the mass-bounds filter (elements whose shifted window [d, d+INX-1] misses
/// the buffer's nonzero-mass bounding box contribute +0.0 for every cell —
/// all terms scale with the partner's m and q, and r2 > 0 by construction).
///
/// Thread-local scratch: no allocation in steady state.
template <class T>
struct parity_lists {
    struct item {
        std::int32_t offset; ///< flat partner-buffer offset of the element
        T factor;            ///< per-lane parity inclusion factor
    };
    std::vector<item> lists[8]; ///< indexed by (i&1) | ((j&1)<<1) | ((k0&1)<<2)
};

template <class T>
const parity_lists<T>& active_parity_lists(const std::vector<stencil_element>& st,
                                           const partner_buffer& partners,
                                           bool use_inner_mask) {
    constexpr int W = lane_count<T>::value;
    constexpr int P = partner_buffer::P;
    thread_local parity_lists<T> pl;
    for (auto& l : pl.lists) l.clear();
    // Cell blocks start at k0 = 0, W, 2W, ...: with W even only k0&1 == 0
    // occurs; the scalar kernel visits both k parities.
    const int npk = (W % 2 == 0) ? 1 : 2;
    for (const auto& e : st) {
        if (use_inner_mask && e.inner) continue;
        const int d[3] = {e.dx, e.dy, e.dz};
        bool overlaps = true;
        for (int a = 0; a < 3; ++a) {
            if (d[a] + INX - 1 < partners.mlo[a] || d[a] > partners.mhi[a]) {
                overlaps = false;
                break;
            }
        }
        if (!overlaps) continue;
        const auto offset =
            static_cast<std::int32_t>((e.dx * P + e.dy) * P + e.dz);
        for (int pk = 0; pk < npk; ++pk)
            for (int pj = 0; pj < 2; ++pj)
                for (int pi = 0; pi < 2; ++pi) {
                    const T f = parity_factor<T>(e.parity_mask, pi, pj, pk);
                    if (!any_lane_nonzero(f)) continue;
                    pl.lists[pi | (pj << 1) | (pk << 2)].push_back({offset, f});
                }
    }
    return pl;
}

} // namespace

std::uint64_t interactions_per_launch(bool inner_masked) {
    const auto n = static_cast<std::uint64_t>(interaction_stencil().size()) -
                   (inner_masked ? static_cast<std::uint64_t>(inner_stencil_size()) : 0u);
    return static_cast<std::uint64_t>(INX3) * n;
}

std::uint64_t mono_kernel_flops() {
    return interactions_per_launch(false) * mono_flops_per_interaction;
}

std::uint64_t multi_kernel_flops(bool inner_masked) {
    return interactions_per_launch(inner_masked) * multi_flops_per_interaction;
}

template <class T>
void monopole_kernel(const node_moments& self, const partner_buffer& partners,
                     const kernel_options& opt, node_gravity& out) {
    constexpr int W = lane_count<T>::value;
    static_assert(INX % W == 0 || W == 1);
    const auto& pl = active_parity_lists<T>(
        opt.stencil != nullptr ? *opt.stencil : interaction_stencil(), partners,
        false);

    for (int i = 0; i < INX; ++i) {
        for (int j = 0; j < INX; ++j) {
            for (int k0 = 0; k0 < INX; k0 += W) {
                const int c = cell_index(i, j, k0);
                const int base = partner_buffer::index(i, j, k0);
                const auto& st =
                    pl.lists[(i & 1) | ((j & 1) << 1) | ((k0 & 1) << 2)];
                const T ax = load_v<T>(&self.com[0][c]);
                const T ay = load_v<T>(&self.com[1][c]);
                const T az = load_v<T>(&self.com[2][c]);

                T phi(0.0), l1x(0.0), l1y(0.0), l1z(0.0);

                for (const auto& e : st) {
                    const int p = base + e.offset;
                    const T mB = load_v<T>(&partners.m[p]) * e.factor;
                    const T dx = ax - load_v<T>(&partners.x[p]);
                    const T dy = ay - load_v<T>(&partners.y[p]);
                    const T dz = az - load_v<T>(&partners.z[p]);
                    const T r2 = dx * dx + dy * dy + dz * dz;
                    const T rinv = simd::rsqrt(r2);
                    const T mrinv = mB * rinv;
                    const T mrinv3 = mrinv * rinv * rinv;
                    // phi = -m/r ; dphi/dx_i = +m x_i / r^3 (g = -L1 later)
                    phi = phi - mrinv;
                    l1x = l1x + dx * mrinv3;
                    l1y = l1y + dy * mrinv3;
                    l1z = l1z + dz * mrinv3;
                }
                store_add(&out.L[0][c], phi);
                store_add(&out.L[1][c], l1x);
                store_add(&out.L[2][c], l1y);
                store_add(&out.L[3][c], l1z);
            }
        }
    }
}

template <class T>
void multipole_kernel(const node_moments& self, const aligned_vector<double>& self_invm,
                      const partner_buffer& partners, const kernel_options& opt,
                      node_gravity& out) {
    constexpr int W = lane_count<T>::value;
    static_assert(INX % W == 0 || W == 1);
    const auto& pl = active_parity_lists<T>(
        opt.stencil != nullptr ? *opt.stencil : interaction_stencil(), partners,
        opt.use_inner_mask);

    for (int i = 0; i < INX; ++i) {
        for (int j = 0; j < INX; ++j) {
            for (int k0 = 0; k0 < INX; k0 += W) {
                const int c = cell_index(i, j, k0);
                const int base = partner_buffer::index(i, j, k0);
                const auto& st =
                    pl.lists[(i & 1) | ((j & 1) << 1) | ((k0 & 1) << 2)];
                const T ax = load_v<T>(&self.com[0][c]);
                const T ay = load_v<T>(&self.com[1][c]);
                const T az = load_v<T>(&self.com[2][c]);
                const T mA = load_v<T>(&self.m[c]);
                const T invmA = load_v<T>(&self_invm[c]);
                T qa[6];
                for (int t = 0; t < 6; ++t) qa[t] = load_v<T>(&self.q[t][c]);

                expansion<T> acc;
                for (auto& a : acc) a = T(0.0);
                T tq_acc[3] = {T(0.0), T(0.0), T(0.0)};

                for (const auto& e : st) {
                    const int p = base + e.offset;
                    const T& f = e.factor;
                    const T mB = load_v<T>(&partners.m[p]) * f;
                    T qb[6];
                    for (int t = 0; t < 6; ++t) qb[t] = load_v<T>(&partners.q[t][p]) * f;

                    T x[3];
                    x[0] = ax - load_v<T>(&partners.x[p]);
                    x[1] = ay - load_v<T>(&partners.y[p]);
                    x[2] = az - load_v<T>(&partners.z[p]);
                    const T r2 = x[0] * x[0] + x[1] * x[1] + x[2] * x[2];

                    expansion<T> D;
                    greens_d3(x, r2, D);

                    // Potential: phi = -(mB D0 + 1/2 QB : D2).
                    T qd2(0.0);
                    {
                        int t = 0;
                        for (int a = 0; a < 3; ++a)
                            for (int b = a; b < 3; ++b, ++t) {
                                qd2 = qd2 + T(mult2(a, b)) * qb[t] * D[idx2(a, b)];
                            }
                    }
                    acc[0] = acc[0] - (mB * D[0] + T(0.5) * qd2);

                    // Second-moment force terms.
                    //
                    // Plain / spin-deposit modes use the standard
                    // source-quadrupole gradient t_i = QB_jk D3_ijk,
                    // acceleration term -(1/2) t_i (most accurate; the
                    // receiver's own quadrupole force arises from the L2L
                    // redistribution, making the net pair force symmetric).
                    //
                    // Central-projection mode builds the exactly
                    // antisymmetric pair force from the symmetrized moment
                    // S = mA QB + mB QA and projects it onto the line of
                    // centers, so the pair torque vanishes identically.
                    //
                    // Spin-deposit mode additionally computes the pair's
                    // NET torque x cross F_net (with F_net from the
                    // symmetrized S) and deposits half of its negation at
                    // the receiver — both sides of the pair together cancel
                    // the mechanical torque in the spin ledger.
                    const bool central = opt.conserve == am_mode::central_projection;
                    const bool deposit = opt.conserve == am_mode::spin_deposit;

                    T tvec[3], tsym[3];
                    for (int a = 0; a < 3; ++a) tvec[a] = tsym[a] = T(0.0);
                    {
                        int t = 0;
                        for (int a = 0; a < 3; ++a)
                            for (int b = a; b < 3; ++b, ++t) {
                                const T s_plain = qb[t];
                                const T s_sym = mA * qb[t] + mB * qa[t];
                                const T s = central ? s_sym : s_plain;
                                for (int d = 0; d < 3; ++d) {
                                    int u = d, v = a, w = b; // sort (u,v,w)
                                    if (u > v) std::swap(u, v);
                                    if (v > w) std::swap(v, w);
                                    if (u > v) std::swap(u, v);
                                    const T d3 = D[idx3(u, v, w)];
                                    tvec[d] = tvec[d] + T(mult2(a, b)) * s * d3;
                                    if (deposit) {
                                        tsym[d] =
                                            tsym[d] + T(mult2(a, b)) * s_sym * d3;
                                    }
                                }
                            }
                    }
                    T half_scale = T(0.5);
                    if (central) {
                        // Project onto the line of centers: the pair torque
                        // (xA - xB) x F vanishes identically.
                        const T xt = x[0] * tvec[0] + x[1] * tvec[1] + x[2] * tvec[2];
                        const T scale = xt / r2;
                        for (int a = 0; a < 3; ++a) tvec[a] = x[a] * scale;
                        half_scale = T(0.5) * invmA;
                    }
                    if (deposit) {
                        // F_net = +(1/2) tsym, pair torque = x cross F_net;
                        // each side owns half of the cancellation:
                        // deposit = -1/4 (x cross tsym).
                        const T q = T(-0.25);
                        tq_acc[0] = tq_acc[0] + q * (x[1] * tsym[2] - x[2] * tsym[1]);
                        tq_acc[1] = tq_acc[1] + q * (x[2] * tsym[0] - x[0] * tsym[2]);
                        tq_acc[2] = tq_acc[2] + q * (x[0] * tsym[1] - x[1] * tsym[0]);
                    }

                    // dphi/dx_i = -mB D1_i - (1/2) [invmA] t_i.
                    for (int a = 0; a < 3; ++a) {
                        acc[1 + a] = acc[1 + a] - mB * D[1 + a] - half_scale * tvec[a];
                    }
                    // Higher coefficients: monopole source only.
                    for (int t = 4; t < n_taylor; ++t) {
                        acc[t] = acc[t] - mB * D[t];
                    }
                }

                for (int t = 0; t < n_taylor; ++t) store_add(&out.L[t][c], acc[t]);
                for (int a = 0; a < 3; ++a) store_add(&out.tq[a][c], tq_acc[a]);
            }
        }
    }
}

// Explicit instantiations: scalar (simulated-GPU path) and SIMD (CPU path).
template void monopole_kernel<double>(const node_moments&, const partner_buffer&,
                                      const kernel_options&, node_gravity&);
template void monopole_kernel<simd::dpack>(const node_moments&, const partner_buffer&,
                                           const kernel_options&, node_gravity&);
template void multipole_kernel<double>(const node_moments&, const aligned_vector<double>&,
                                       const partner_buffer&, const kernel_options&,
                                       node_gravity&);
template void multipole_kernel<simd::dpack>(const node_moments&,
                                            const aligned_vector<double>&,
                                            const partner_buffer&, const kernel_options&,
                                            node_gravity&);

} // namespace octo::fmm

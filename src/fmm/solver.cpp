#include "fmm/solver.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "kernel/autotune.hpp"
#include "kernel/fmm.hpp"
#include "runtime/apex.hpp"
#include "runtime/future.hpp"
#include "sanitize/hooks.hpp"
#include "support/assert.hpp"
#include "support/buffer_recycler.hpp"

namespace octo::fmm {

using amr::box_geometry;
using amr::H_BW;
using amr::key_child;
using amr::key_neighbor;
using amr::node_key;
using amr::tree;

solver::solver(options o)
    : opt_(o), pool_(o.pool != nullptr ? o.pool : &rt::thread_pool::global()) {
    // CPU launch geometry for the same-level kernels. Lookup-only autotuning:
    // a tuned entry (seeded by bench_kernels or a prior run) overrides the
    // default width/tile; a cache miss keeps the defaults.
    const auto base = opt_.vectorized
                          ? kernel::exec_config{}
                          : kernel::exec_config{kernel::backend_kind::scalar, 1, 0};
    mono_cfg_ = base;
    multi_cfg_ = base;
    unsigned tuned_batch = opt_.gpu_batch;
    double tuned_flush_us = gpu::aggregator_options{}.flush_after_us;
    if (opt_.autotune) {
        auto& cache = kernel::global_autotune();
        if (opt_.vectorized) {
            if (auto tc = cache.lookup(opt_.machine, "fmm.monopole",
                                       kernel::backend_kind::simd)) {
                mono_cfg_ = tc->exec();
            }
            if (auto tc = cache.lookup(opt_.machine, "fmm.multipole",
                                       kernel::backend_kind::simd)) {
                multi_cfg_ = tc->exec();
            }
        }
        if (auto tc = cache.lookup(opt_.machine, "fmm.same_level",
                                   kernel::backend_kind::gpu)) {
            tuned_batch = tc->gpu_batch;
            tuned_flush_us = tc->flush_us;
        }
    }
    // One launch point for all offload (the Kokkos/HPX lesson of
    // arXiv:2210.06439): an externally provided executor wins; otherwise a
    // device implies a private single-device executor. aggregate=false keeps
    // the executor but degenerates batches to a single item — the paper's
    // original one-stream-per-kernel policy, preserved for A/B measurement.
    if (opt_.aggregator != nullptr) {
        agg_ = opt_.aggregator;
    } else if (opt_.device != nullptr) {
        gpu::aggregator_options ao;
        ao.max_batch = opt_.aggregate ? std::max(1u, tuned_batch) : 1u;
        ao.flush_after_us = tuned_flush_us;
        own_agg_ = std::make_unique<gpu::aggregator>(*opt_.device, ao);
        agg_ = own_agg_.get();
    }
}

const node_gravity& solver::gravity(node_key k) const {
    auto it = gravity_.find(k);
    OCTO_ASSERT_MSG(it != gravity_.end(), "gravity not computed for node");
    return it->second;
}

const node_moments& solver::moments(node_key k) const {
    auto it = moments_.find(k);
    OCTO_ASSERT_MSG(it != moments_.end(), "moments not computed for node");
    return it->second;
}

void solver::compute_leaf_moments(tree& t, node_key k) {
    const auto& n = t.node(k);
    OCTO_ASSERT_MSG(n.fields != nullptr, "leaf without field data");
    const auto& g = *n.fields;
    const double V = g.geom.cell_volume();

    auto& mom = moments_.at(k);
    auto& invm = invm_.at(k);
    // Race-detector region claims: reads the leaf's hydro interior (rho),
    // writes the node's moment set. The same keys are used by the hydro
    // pipeline, so an FMM solve overlapping a hydro stage is checked too.
    sanitize::region_read(n.fields.get(), "hydro.interior");
    sanitize::region_write(&mom, "fmm.moments");
    for (int i = 0; i < INX; ++i)
        for (int j = 0; j < INX; ++j)
            for (int kk = 0; kk < INX; ++kk) {
                const int c = cell_index(i, j, kk);
                const double m = g.interior(amr::f_rho, i, j, kk) * V;
                mom.m[c] = m;
                const dvec3 ctr = g.geom.cell_center(i, j, kk);
                mom.com[0][c] = ctr.x;
                mom.com[1][c] = ctr.y;
                mom.com[2][c] = ctr.z;
                for (auto& q : mom.q) q[c] = 0.0; // homogeneous cell: the
                // isotropic cube moment never contributes (traceless tensors)
                invm[c] = m > 0.0 ? 1.0 / m : 0.0;
            }
}

void solver::m2m(tree& t, node_key k) {
    auto& mom = moments_.at(k);
    auto& invm = invm_.at(k);
    const box_geometry geom = t.geometry(k);
    sanitize::region_write(&mom, "fmm.moments");

    const node_moments* children[8];
    for (int c = 0; c < 8; ++c) {
        const auto& cm = moments_.at(key_child(k, c));
        sanitize::region_read(&cm, "fmm.moments");
        children[c] = &cm;
    }
    kernel::run_fmm_m2m(kernel::exec_config{kernel::backend_kind::scalar, 1, 0},
                        children, geom, mom, invm);
}

void solver::fill_buffer_region(tree& t, node_key nb, const ivec3& off,
                                partner_buffer& buf) const {
    constexpr int R = partner_buffer::reach;
    const auto& mom = moments_.at(nb);
    sanitize::region_read(&mom, "fmm.moments");
    // Padded-region index range covered by this neighbor.
    const int lo[3] = {std::max(off.x * INX, -R), std::max(off.y * INX, -R),
                       std::max(off.z * INX, -R)};
    const int hi[3] = {std::min(off.x * INX + INX, INX + R),
                       std::min(off.y * INX + INX, INX + R),
                       std::min(off.z * INX + INX, INX + R)};
    (void)t;
    for (int i = lo[0]; i < hi[0]; ++i)
        for (int j = lo[1]; j < hi[1]; ++j)
            for (int k = lo[2]; k < hi[2]; ++k) {
                const int src = cell_index(i - off.x * INX, j - off.y * INX,
                                           k - off.z * INX);
                const int dst = partner_buffer::index(i, j, k);
                if (mom.m[src] == 0.0) continue;
                buf.m[dst] = mom.m[src];
                buf.x[dst] = mom.com[0][src];
                buf.y[dst] = mom.com[1][src];
                buf.z[dst] = mom.com[2][src];
                for (int s = 0; s < 6; ++s) buf.q[s][dst] = mom.q[s][src];
                buf.any = true;
                buf.include_mass_cell(i, j, k);
            }
}

namespace {

/// Initialize a buffer's partner positions to the geometric cell centers of
/// the padded region so that distances are never zero for empty cells.
void init_buffer_geometry(const box_geometry& geom, partner_buffer& buf) {
    constexpr int R = partner_buffer::reach;
    for (int i = -R; i < INX + R; ++i)
        for (int j = -R; j < INX + R; ++j)
            for (int k = -R; k < INX + R; ++k) {
                const int d = partner_buffer::index(i, j, k);
                const dvec3 c = geom.cell_center(i, j, k);
                buf.x[d] = c.x;
                buf.y[d] = c.y;
                buf.z[d] = c.z;
            }
}

std::uint64_t stencil_interactions(const std::vector<stencil_element>& st,
                                   bool masked) {
    std::uint64_t n = 0;
    for (const auto& e : st) {
        if (masked && e.inner) continue;
        ++n;
    }
    return n * static_cast<std::uint64_t>(INX3);
}

} // namespace

void solver::same_level(tree& t, node_key k, std::vector<rt::future<void>>& pending) {
    // First writer of the node's output each solve: clear the recycled
    // accumulators (phi/g are overwritten by evaluate_node, so only L and tq
    // need zeroing). In the futurized DAG the parent's L2L depends on all
    // children's same-level tasks, so nothing has accumulated into this node
    // yet when its same-level task starts.
    auto& out = gravity_.at(k);
    sanitize::region_write(&out, "fmm.gravity");
    for (auto& l : out.L) std::fill(l.begin(), l.end(), 0.0);
    for (auto& q : out.tq) std::fill(q.begin(), q.end(), 0.0);

    const bool self_refined = t.node(k).refined;
    const bool is_root = (k == amr::root_key);
    const auto* stencil = is_root ? &root_stencil() : &interaction_stencil();

    // Assemble the two partner buffers: cells from leaf neighbors (monopole
    // partners) and from refined neighbors (multipole partners). The node's
    // own cells go into the buffer matching its own type.
    auto mono = std::make_shared<partner_buffer>();
    auto multi = std::make_shared<partner_buffer>();
    const box_geometry geom = t.geometry(k);
    init_buffer_geometry(geom, *mono);
    init_buffer_geometry(geom, *multi);
    mono->reset_mass_bounds();
    multi->reset_mass_bounds();

    for (int dx = -1; dx <= 1; ++dx)
        for (int dy = -1; dy <= 1; ++dy)
            for (int dz = -1; dz <= 1; ++dz) {
                node_key nb = k;
                if (dx != 0 || dy != 0 || dz != 0) {
                    nb = key_neighbor(k, {dx, dy, dz});
                    if (nb == amr::invalid_key || !t.contains(nb)) continue;
                }
                const bool nb_refined = t.node(nb).refined;
                fill_buffer_region(t, nb, {dx, dy, dz},
                                   nb_refined ? *multi : *mono);
            }

    const auto& self_mom = moments_.at(k);
    const auto& self_invm = invm_.at(k);

    // Launch one kernel per non-empty partner class. GPU offload follows the
    // paper's policy (§5.1): grab an idle stream if one exists, otherwise the
    // launching thread runs the (vectorized) kernel itself.
    struct launch_spec {
        kernel_class kc;
        bool monopole_math; // both sides leaves: the cheap kernel
        kernel_options opt;
        std::shared_ptr<partner_buffer> buf;
        std::uint64_t flops;
    };
    std::vector<launch_spec> launches;

    if (mono->any) {
        launch_spec s;
        s.buf = mono;
        s.opt.stencil = stencil;
        s.opt.conserve = opt_.conserve;
        s.opt.use_inner_mask = false; // leaf partners: nothing to defer to
        if (self_refined) {
            // multipole-monopole (merged kernel; partner moments are zero)
            s.kc = kernel_class::fmm_multipole;
            s.monopole_math = false;
            s.flops = stencil_interactions(*stencil, false) *
                      multi_flops_per_interaction;
        } else {
            s.kc = kernel_class::fmm_monopole;
            s.monopole_math = true;
            s.flops = stencil_interactions(*stencil, false) *
                      mono_flops_per_interaction;
        }
        launches.push_back(std::move(s));
    }
    if (multi->any) {
        launch_spec s;
        s.buf = multi;
        s.opt.stencil = stencil;
        s.opt.conserve = opt_.conserve;
        // refined partners: inner pairs deferred only if we are refined too
        s.opt.use_inner_mask = self_refined;
        s.kc = self_refined ? kernel_class::fmm_multipole
                            : kernel_class::fmm_monopole_multipole;
        s.monopole_math = false;
        s.flops = stencil_interactions(*stencil, s.opt.use_inner_mask) *
                  multi_flops_per_interaction;
        launches.push_back(std::move(s));
    }

    // Both partner classes accumulate into the same output arrays, so when
    // offloading, the node's launches form ONE work item: inside a fused
    // batch they execute in submission order on a single stream, so the
    // accumulation order matches the CPU path exactly and two batches never
    // race on out.L. The executor may pack many such items into one launch
    // (arXiv:2210.06438); if it refuses (saturated, or an injected
    // stream-acquire fault), we fall through to the CPU path below — the
    // per-kernel fallback of §5.1, unchanged.
    if (agg_ != nullptr && !launches.empty()) {
        std::uint64_t flops = 0;
        for (const auto& s : launches) flops += s.flops;
        gpu::work_item item;
        item.kc = launches.front().kc;
        item.flops = flops;
        // The modeled host→device transfer: the node's mass + center-of-mass
        // arrays travel in the item's slice of the batched staging buffer.
        item.staging_doubles = 4 * static_cast<std::size_t>(amr::INX3);
        item.stage = [&self_mom](double* slice) {
            std::copy(self_mom.m.begin(), self_mom.m.end(), slice);
            for (int a = 0; a < 3; ++a) {
                std::copy(self_mom.com[a].begin(), self_mom.com[a].end(),
                          slice + (a + 1) * amr::INX3);
            }
        };
        auto batch =
            std::make_shared<std::vector<launch_spec>>(std::move(launches));
        item.kernel = [&self_mom, &self_invm, &out, batch](const double*) {
            const kernel::exec_config gcfg{kernel::backend_kind::gpu, 1, 0};
            for (const auto& s : *batch) {
                if (s.monopole_math) {
                    kernel::run_fmm_monopole(gcfg, self_mom, *s.buf, s.opt, out);
                } else {
                    kernel::run_fmm_multipole(gcfg, self_mom, self_invm, *s.buf,
                                              s.opt, out);
                }
            }
        };
        if (auto f = agg_->submit(std::move(item))) {
            pending.push_back(std::move(*f));
            return;
        }
        launches = std::move(*batch); // rejected: run them on the CPU
    }

    // CPU path: the same kernel bodies through the solver's resolved launch
    // geometry (scalar/SIMD width + receiver-row tile, possibly autotuned).
    for (auto& s : launches) {
        count_launch(s.kc, exec_site::cpu);
        if (s.monopole_math) {
            kernel::run_fmm_monopole(mono_cfg_, self_mom, *s.buf, s.opt, out);
        } else {
            kernel::run_fmm_multipole(multi_cfg_, self_mom, self_invm, *s.buf,
                                      s.opt, out);
        }
        count_flops(s.kc, exec_site::cpu, s.flops);
    }
}

void solver::l2l(tree& t, node_key k) {
    (void)t;
    const auto& parentL = gravity_.at(k);
    const auto& pm = moments_.at(k);
    sanitize::region_read(&parentL, "fmm.gravity");
    sanitize::region_read(&pm, "fmm.moments");

    // Gather pointers to the 8 children's data once.
    const node_moments* childM[8];
    node_gravity* childLw[8];
    for (int c = 0; c < 8; ++c) {
        const node_key ck = key_child(k, c);
        childLw[c] = &gravity_.at(ck);
        childM[c] = &moments_.at(ck);
        sanitize::region_write(childLw[c], "fmm.gravity");
        sanitize::region_read(childM[c], "fmm.moments");
    }

    kernel::run_fmm_l2l(kernel::exec_config{kernel::backend_kind::scalar, 1, 0},
                        parentL, pm, childM, childLw, opt_.conserve);
}


void solver::evaluate_node(node_key k) {
    auto& g = gravity_.at(k);
    sanitize::region_write(&g, "fmm.gravity");
    for (int c = 0; c < INX3; ++c) {
        g.phi[c] = g.L[0][c];
        g.gx[c] = -g.L[1][c];
        g.gy[c] = -g.L[2][c];
        g.gz[c] = -g.L[3][c];
    }
}

void solver::prepare_workspace(tree& t) {
    if (workspace_valid_ && workspace_tree_id_ == t.id() &&
        workspace_revision_ == t.revision()) {
        return; // same tree, same structure: reuse every buffer as-is
    }
    moments_.clear();
    gravity_.clear();
    invm_.clear();

    // Pre-create all entries single-threaded so parallel phases never mutate
    // the maps. The aligned_vector payloads come from the buffer_recycler,
    // so after a regrid the previous workspace's storage is reused rather
    // than reallocated.
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            moments_.emplace(k, node_moments{});
            gravity_.emplace(k, node_gravity{});
            invm_.emplace(k, aligned_vector<double>(INX3, 0.0));
        }
    }
    workspace_tree_id_ = t.id();
    workspace_revision_ = t.revision();
    workspace_valid_ = true;
}

void solver::solve(tree& t) {
    const auto rec_before = buffer_recycler::instance().stats();
    prepare_workspace(t);
    {
        rt::apex_timer total_timer("fmm::solve");
        if (opt_.futurized) {
            solve_futurized(t);
        } else {
            solve_barriered(t);
        }
    }
    const auto rec_after = buffer_recycler::instance().stats();
    rt::apex_count("fmm.recycler_hits", rec_after.hits - rec_before.hits);
    rt::apex_count("fmm.recycler_misses", rec_after.misses - rec_before.misses);
}

// The original five-phase solve, with a global barrier between phases. Kept
// as the reference path: the futurized DAG below is bit-identical to it (the
// tests assert this), and the bench compares the two.
void solver::solve_barriered(tree& t) {
    // Phase 1a: leaf moments, in parallel.
    {
        rt::apex_timer timer("fmm::moments");
        std::vector<rt::future<void>> fs;
        for (const auto& level : t.levels()) {
            for (const node_key k : level) {
                if (!t.node(k).refined) {
                    fs.push_back(rt::async(*pool_, [this, &t, k] {
                        compute_leaf_moments(t, k);
                    }));
                }
            }
        }
        for (auto& f : fs) f.get();
    }

    // Phase 1b: M2M bottom-up, level barriers.
    auto m2m_timer = std::make_unique<rt::apex_timer>("fmm::m2m");
    for (int level = t.max_level() - 1; level >= 0; --level) {
        std::vector<rt::future<void>> fs;
        for (const node_key k : t.levels()[level]) {
            if (t.node(k).refined) {
                fs.push_back(rt::async(*pool_, [this, &t, k] { m2m(t, k); }));
            }
        }
        for (auto& f : fs) f.get();
    }

    m2m_timer.reset();

    // Phase 2: same-level interactions for every node at every level — the
    // hotspot, launched as one task per node (paper: millions of small
    // kernels rather than a few large ones).
    {
        rt::apex_timer timer("fmm::same_level");
        std::mutex mu;
        std::vector<rt::future<void>> device_futures;
        std::vector<rt::future<void>> fs;
        for (const auto& level : t.levels()) {
            for (const node_key k : level) {
                fs.push_back(rt::async(*pool_, [this, &t, k, &mu, &device_futures] {
                    std::vector<rt::future<void>> pending;
                    same_level(t, k, pending);
                    if (!pending.empty()) {
                        std::lock_guard lock(mu);
                        for (auto& p : pending) {
                            device_futures.push_back(std::move(p));
                        }
                    }
                }));
            }
        }
        for (auto& f : fs) f.get();
        for (auto& f : device_futures) f.get();
    }

    // Phase 3: L2L top-down, level barriers.
    auto l2l_timer = std::make_unique<rt::apex_timer>("fmm::l2l");
    for (int level = 0; level < t.max_level(); ++level) {
        std::vector<rt::future<void>> fs;
        for (const node_key k : t.levels()[level]) {
            if (t.node(k).refined) {
                fs.push_back(rt::async(*pool_, [this, &t, k] { l2l(t, k); }));
            }
        }
        for (auto& f : fs) f.get();
    }

    l2l_timer.reset();

    // Phase 4: evaluate gravity per cell.
    {
        std::vector<rt::future<void>> fs;
        for (const auto& level : t.levels()) {
            for (const node_key k : level) {
                fs.push_back(rt::async(*pool_, [this, k] { evaluate_node(k); }));
            }
        }
        for (auto& f : fs) f.get();
    }
}

// The futurized solve (paper §4.1): one dependency graph over the whole
// tree instead of five barriered phases. Each node's tasks wait only on the
// data they actually read:
//
//   moments(leaf)            : nothing (chunked with its level siblings)
//   m2m(node)                : moments of its 8 children
//   same_level(node)         : moments of the node and its <=26 neighbors
//   l2l(node)                : l2l of the parent + same_level of children
//   evaluate(node)           : folded into the parent's l2l task
//                              (root: folded into its same_level completion)
//
// so the L2L sweep of one subtree overlaps same-level kernels of another.
// Every kernel and every accumulation runs in the same order as in
// solve_barriered, which makes the two paths bit-identical.
void solver::solve_futurized(tree& t) {
    rt::thread_pool& pool = *pool_;
    std::uint64_t tasks = 0;

    // Completion future of each node's moment data (leaf moments or M2M)
    // and of each node's same-level accumulation.
    std::unordered_map<node_key, rt::future<void>> moment_done;
    std::unordered_map<node_key, rt::future<void>> same_done;
    // Completion of the L2L contribution *into* a node (the parent's L2L
    // task; the root has no parent, so its own same-level completion).
    std::unordered_map<node_key, rt::future<void>> down_ready;
    std::vector<rt::future<void>> l2l_tasks;
    moment_done.reserve(t.size());
    same_done.reserve(t.size());
    down_ready.reserve(t.size());

    // Futures are one-shot, but any number of continuations may key off one
    // state: alias() mints a dependency handle onto the same shared state.
    const auto alias = [](const rt::future<void>& f) {
        return rt::future<void>(f.state());
    };

    // ---- Stage 1: moments, bottom-up. Leaf tasks are chunked (a single
    // leaf's moment pass is far smaller than a kernel launch, so per-leaf
    // tasks would be mostly scheduling overhead); each leaf still fulfills
    // its own promise so consumers wake as soon as *their* inputs exist.
    constexpr std::size_t leaf_chunk = 16;
    using leaf_promises = std::vector<std::pair<node_key, rt::promise<void>>>;
    for (int level = t.max_level(); level >= 0; --level) {
        std::vector<node_key> leaves;
        for (const node_key k : t.levels()[level]) {
            if (!t.node(k).refined) leaves.push_back(k);
        }
        for (std::size_t base = 0; base < leaves.size(); base += leaf_chunk) {
            const std::size_t n = std::min(leaf_chunk, leaves.size() - base);
            auto chunk = std::make_shared<leaf_promises>();
            chunk->reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                chunk->emplace_back(leaves[base + i], rt::promise<void>{});
                moment_done.emplace(leaves[base + i],
                                    chunk->back().second.get_future());
            }
            pool.post([this, &t, chunk] {
                for (auto& [k, p] : *chunk) {
                    try {
                        compute_leaf_moments(t, k);
                        p.set_value();
                    } catch (...) {
                        p.set_exception(std::current_exception());
                    }
                }
            });
            ++tasks;
        }
        // Refined nodes at this level: children (level+1) already have
        // moment futures from the previous iteration.
        for (const node_key k : t.levels()[level]) {
            if (!t.node(k).refined) continue;
            std::vector<rt::future<void>> deps;
            deps.reserve(8);
            for (int c = 0; c < 8; ++c) {
                deps.push_back(alias(moment_done.at(key_child(k, c))));
            }
            auto f = rt::when_all(std::move(deps))
                         .then(pool, [this, &t, k](auto) { m2m(t, k); });
            ++tasks;
            moment_done.emplace(k, std::move(f));
        }
    }

    // ---- Stage 2: same-level interactions, gated on exactly the moment
    // sets the node's partner buffers read. Device launches chain onto the
    // completion promise instead of being joined globally.
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            std::vector<rt::future<void>> deps;
            deps.reserve(27);
            deps.push_back(alias(moment_done.at(k)));
            for (int dx = -1; dx <= 1; ++dx)
                for (int dy = -1; dy <= 1; ++dy)
                    for (int dz = -1; dz <= 1; ++dz) {
                        if (dx == 0 && dy == 0 && dz == 0) continue;
                        const node_key nb = key_neighbor(k, {dx, dy, dz});
                        if (nb == amr::invalid_key || !t.contains(nb)) continue;
                        deps.push_back(alias(moment_done.at(nb)));
                    }
            auto done = std::make_shared<rt::promise<void>>();
            same_done.emplace(k, done->get_future());
            // Fire-and-forget chains: completion is signalled through the
            // `done` promise, so the then() handles are detached explicitly.
            rt::detach(rt::when_all(std::move(deps))
                           .then(pool, [this, &t, k, done](auto) {
                try {
                    std::vector<rt::future<void>> pending;
                    same_level(t, k, pending);
                    if (pending.empty()) {
                        // The root's expansion has no parent contribution:
                        // it is final right here.
                        if (k == amr::root_key) evaluate_node(k);
                        done->set_value();
                        return;
                    }
                    rt::detach(rt::when_all(std::move(pending))
                                   .then(*pool_, [this, k, done](auto fs) {
                                       try {
                                           // lint: allow(blocking-in-task): when_all-gated, every element ready; get() only rethrows
                                           for (auto& f : fs.get()) f.get();
                                           if (k == amr::root_key) {
                                               evaluate_node(k);
                                           }
                                           done->set_value();
                                       } catch (...) {
                                           done->set_exception(
                                               std::current_exception());
                                       }
                                   }));
                } catch (...) {
                    done->set_exception(std::current_exception());
                }
            }));
            ++tasks;
        }
    }

    // ---- Stage 3: L2L top-down + per-node evaluation. A node's L2L may
    // only run once (a) its own expansion is final (parent's L2L done — which
    // itself waited for this node's same-level) and (b) the children it
    // accumulates into have finished their own same-level accumulation.
    down_ready.emplace(amr::root_key, alias(same_done.at(amr::root_key)));
    for (int level = 0; level < t.max_level(); ++level) {
        for (const node_key k : t.levels()[level]) {
            if (!t.node(k).refined) continue;
            std::vector<rt::future<void>> deps;
            deps.reserve(9);
            deps.push_back(alias(down_ready.at(k)));
            for (int c = 0; c < 8; ++c) {
                deps.push_back(alias(same_done.at(key_child(k, c))));
            }
            auto f = rt::when_all(std::move(deps)).then(pool, [this, &t, k](auto) {
                l2l(t, k);
                // The children's expansions are final now (their own L2L
                // writes only grandchildren): evaluate them inline instead
                // of spawning eight micro-tasks.
                for (int c = 0; c < 8; ++c) evaluate_node(key_child(k, c));
            });
            ++tasks;
            for (int c = 0; c < 8; ++c) {
                down_ready.emplace(key_child(k, c), alias(f));
            }
            l2l_tasks.push_back(std::move(f));
        }
    }

    // ---- Join: wait for every task; rethrows the first stored exception.
    // (down_ready holds aliases of futures joined here, so it is not drained
    // itself.)
    for (auto& kv : moment_done) kv.second.get();
    for (auto& kv : same_done) kv.second.get();
    for (auto& f : l2l_tasks) f.get();

    rt::apex_count("fmm.dag_tasks", tasks);
}

dvec3 solver::total_force(const tree& t) const {
    dvec3 F{0, 0, 0};
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& mom = moments_.at(k);
            const auto& g = gravity_.at(k);
            for (int c = 0; c < INX3; ++c) {
                F += mom.m[c] * dvec3{g.gx[c], g.gy[c], g.gz[c]};
            }
        }
    }
    return F;
}

dvec3 solver::total_torque(const tree& t) const {
    dvec3 T{0, 0, 0};
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& mom = moments_.at(k);
            const auto& g = gravity_.at(k);
            for (int c = 0; c < INX3; ++c) {
                const dvec3 r{mom.com[0][c], mom.com[1][c], mom.com[2][c]};
                T += cross(r, mom.m[c] * dvec3{g.gx[c], g.gy[c], g.gz[c]});
            }
        }
    }
    return T;
}

double solver::potential_at(const tree& t, const dvec3& r) const {
    node_key k = amr::root_key;
    while (t.node(k).refined) {
        const box_geometry g = t.geometry(k);
        const double half = g.dx * INX / 2.0;
        const int cx = r.x >= g.origin.x + half ? 1 : 0;
        const int cy = r.y >= g.origin.y + half ? 1 : 0;
        const int cz = r.z >= g.origin.z + half ? 1 : 0;
        k = key_child(k, cx | (cy << 1) | (cz << 2));
    }
    const box_geometry g = t.geometry(k);
    const int i = std::clamp(static_cast<int>((r.x - g.origin.x) / g.dx), 0, INX - 1);
    const int j = std::clamp(static_cast<int>((r.y - g.origin.y) / g.dx), 0, INX - 1);
    const int kk = std::clamp(static_cast<int>((r.z - g.origin.z) / g.dx), 0, INX - 1);
    const int c = cell_index(i, j, kk);
    const auto& L = gravity_.at(k);
    const auto& mom = moments_.at(k);
    expansion<double> e;
    for (int s = 0; s < n_taylor; ++s) e[s] = L.L[s][c];
    const double delta[3] = {r.x - mom.com[0][c], r.y - mom.com[1][c],
                             r.z - mom.com[2][c]};
    return evaluate(e, delta);
}

dvec3 solver::total_spin_torque(const tree& t) const {
    dvec3 T{0, 0, 0};
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& g = gravity_.at(k);
            for (int c = 0; c < INX3; ++c) {
                T += dvec3{g.tq[0][c], g.tq[1][c], g.tq[2][c]};
            }
        }
    }
    return T;
}

double solver::potential_energy(const tree& t) const {
    double U = 0.0;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& mom = moments_.at(k);
            const auto& g = gravity_.at(k);
            for (int c = 0; c < INX3; ++c) U += 0.5 * mom.m[c] * g.phi[c];
        }
    }
    return U;
}

} // namespace octo::fmm

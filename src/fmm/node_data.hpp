#pragma once
// Per-octree-node FMM storage, struct-of-arrays over the 512 interior cells
// (paper §4.3: stencil-based approach with struct-of-arrays layout).

#include <array>

#include "amr/config.hpp"
#include "fmm/stencil.hpp"
#include "fmm/taylor.hpp"
#include "support/aligned.hpp"

namespace octo::fmm {

using octo::amr::INX;
using octo::amr::INX3;

/// Flat index of interior cell (i, j, k) in the FMM SoA arrays.
constexpr int cell_index(int i, int j, int k) { return (i * INX + j) * INX + k; }

/// Multipole moments of a node's cells: mass, center of mass and raw second
/// moments about the center of mass (xx, xy, xz, yy, yz, zz).
struct node_moments {
    aligned_vector<double> m;
    aligned_vector<double> com[3];
    aligned_vector<double> q[6];

    node_moments() {
        m.assign(INX3, 0.0);
        for (auto& c : com) c.assign(INX3, 0.0);
        for (auto& qq : q) qq.assign(INX3, 0.0);
    }
};

/// Local expansions and the evaluated gravity of a node's cells.
struct node_gravity {
    std::array<aligned_vector<double>, n_taylor> L;
    aligned_vector<double> gx, gy, gz, phi;
    /// Spin-torque ledger (am_mode::spin_deposit): torque to be added to the
    /// cell's spin angular momentum per unit time, in total (not density)
    /// units. Distributed down to leaf cells by the L2L pass.
    aligned_vector<double> tq[3];

    node_gravity() {
        for (auto& l : L) l.assign(INX3, 0.0);
        gx.assign(INX3, 0.0);
        gy.assign(INX3, 0.0);
        gz.assign(INX3, 0.0);
        phi.assign(INX3, 0.0);
        for (auto& q : tq) q.assign(INX3, 0.0);
    }
};

/// Padded partner buffer: the node's own cells plus the halo of all 26
/// same-level neighbors, out to the stencil reach (paper §4.3: "Their input
/// data are the current node's sub-grid as well as all sub-grids of all
/// neighboring nodes as a halo").
struct partner_buffer {
    // Sized for the root-level full stencil (reach 7); the regular
    // 1074-element stencil only reaches 5 (checked in tests).
    static constexpr int reach = 7;
    static constexpr int P = INX + 2 * reach;
    static constexpr int P3 = P * P * P;

    static constexpr int index(int i, int j, int k) {
        return ((i + reach) * P + (j + reach)) * P + (k + reach);
    }

    aligned_vector<double> m;
    aligned_vector<double> x, y, z; // centers of mass (default: cell centers)
    aligned_vector<double> q[6];
    bool any = false; ///< whether any partner cell has nonzero mass

    // Inclusive bounding box (in padded coordinates) of the cells holding
    // nonzero mass. Defaults to the full padded region, so buffers filled
    // directly (tests, benchmarks) behave exactly as before; the solver
    // resets it to empty and lets its fill path narrow it, which allows the
    // kernels to skip stencil elements whose partner window is entirely
    // massless — their contribution is exactly +0.0 (every term scales with
    // m and q of the partner cell), so the skip is bit-identical.
    int mlo[3] = {-reach, -reach, -reach};
    int mhi[3] = {INX + reach - 1, INX + reach - 1, INX + reach - 1};

    /// Shrink the mass bounds to empty, before filling via include_mass_cell.
    void reset_mass_bounds() {
        for (int a = 0; a < 3; ++a) {
            mlo[a] = INX + reach;
            mhi[a] = -reach - 1;
        }
    }
    /// Grow the mass bounds to cover padded cell (i, j, k).
    void include_mass_cell(int i, int j, int k) {
        const int c[3] = {i, j, k};
        for (int a = 0; a < 3; ++a) {
            if (c[a] < mlo[a]) mlo[a] = c[a];
            if (c[a] > mhi[a]) mhi[a] = c[a];
        }
    }

    partner_buffer() {
        m.assign(P3, 0.0);
        x.assign(P3, 0.0);
        y.assign(P3, 0.0);
        z.assign(P3, 0.0);
        for (auto& qq : q) qq.assign(P3, 0.0);
    }
};

} // namespace octo::fmm

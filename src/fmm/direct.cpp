#include "fmm/direct.hpp"

#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace octo::fmm {

using amr::node_key;

direct_result solve_direct(const amr::tree& t, double softening2) {
    struct particle {
        double m;
        dvec3 x;
        node_key node;
        int cell;
    };
    std::vector<particle> ps;

    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (t.node(k).refined) continue;
            const auto& n = t.node(k);
            OCTO_ASSERT(n.fields != nullptr);
            const auto& g = *n.fields;
            const double V = g.geom.cell_volume();
            for (int i = 0; i < INX; ++i)
                for (int j = 0; j < INX; ++j)
                    for (int kk = 0; kk < INX; ++kk) {
                        const double m = g.interior(amr::f_rho, i, j, kk) * V;
                        ps.push_back({m, g.geom.cell_center(i, j, kk), k,
                                      cell_index(i, j, kk)});
                    }
        }
    }

    direct_result out;
    for (const auto& level : t.levels()) {
        for (const node_key k : level) {
            if (!t.node(k).refined) out.gravity.emplace(k, node_gravity{});
        }
    }

    const std::size_t n = ps.size();
    for (std::size_t a = 0; a < n; ++a) {
        auto& ga = out.gravity.at(ps[a].node);
        double phi = 0.0;
        dvec3 acc{0, 0, 0};
        for (std::size_t b = 0; b < n; ++b) {
            if (a == b) continue;
            const dvec3 d = ps[a].x - ps[b].x;
            const double r2 = norm2(d) + softening2;
            const double rinv = 1.0 / std::sqrt(r2);
            const double rinv3 = rinv * rinv * rinv;
            phi -= ps[b].m * rinv;
            acc -= ps[b].m * rinv3 * d;
        }
        ga.phi[ps[a].cell] = phi;
        ga.gx[ps[a].cell] = acc.x;
        ga.gy[ps[a].cell] = acc.y;
        ga.gz[ps[a].cell] = acc.z;
    }
    return out;
}

} // namespace octo::fmm

#include "fmm/stencil.hpp"

#include <algorithm>
#include <cmath>

namespace octo::fmm {
namespace {

constexpr int well_separated_sq = 8; // |p|^2 > 8 => parents well separated

std::vector<stencil_element> build_stencil() {
    std::vector<stencil_element> out;
    for (int dx = -8; dx <= 8; ++dx) {
        for (int dy = -8; dy <= 8; ++dy) {
            for (int dz = -8; dz <= 8; ++dz) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                std::uint8_t mask = 0;
                for (int cx = 0; cx < 2; ++cx)
                    for (int cy = 0; cy < 2; ++cy)
                        for (int cz = 0; cz < 2; ++cz) {
                            // floor division for possibly negative values
                            auto fd = [](int a) {
                                return a >= 0 ? a / 2 : -((-a + 1) / 2);
                            };
                            const int px = fd(cx + dx);
                            const int py = fd(cy + dy);
                            const int pz = fd(cz + dz);
                            if (px * px + py * py + pz * pz <= well_separated_sq) {
                                mask |= static_cast<std::uint8_t>(
                                    1u << (cx | (cy << 1) | (cz << 2)));
                            }
                        }
                if (mask == 0) continue;
                const bool inner = dx * dx + dy * dy + dz * dz <= well_separated_sq;
                out.push_back({static_cast<std::int8_t>(dx),
                               static_cast<std::int8_t>(dy),
                               static_cast<std::int8_t>(dz), inner, mask});
            }
        }
    }
    // Deterministic order: by z fastest (matches the SoA memory layout walk).
    std::sort(out.begin(), out.end(), [](const stencil_element& a,
                                         const stencil_element& b) {
        if (a.dx != b.dx) return a.dx < b.dx;
        if (a.dy != b.dy) return a.dy < b.dy;
        return a.dz < b.dz;
    });
    return out;
}

} // namespace

const std::vector<stencil_element>& interaction_stencil() {
    static const std::vector<stencil_element> s = build_stencil();
    return s;
}

int inner_stencil_size() {
    const auto& s = interaction_stencil();
    return static_cast<int>(
        std::count_if(s.begin(), s.end(), [](const stencil_element& e) { return e.inner; }));
}

const std::vector<stencil_element>& root_stencil() {
    static const std::vector<stencil_element> s = [] {
        std::vector<stencil_element> out;
        for (int dx = -7; dx <= 7; ++dx)
            for (int dy = -7; dy <= 7; ++dy)
                for (int dz = -7; dz <= 7; ++dz) {
                    if (dx == 0 && dy == 0 && dz == 0) continue;
                    const bool inner =
                        dx * dx + dy * dy + dz * dz <= well_separated_sq;
                    // The root owns every pair not deferred to its children:
                    // all parities included.
                    out.push_back({static_cast<std::int8_t>(dx),
                                   static_cast<std::int8_t>(dy),
                                   static_cast<std::int8_t>(dz), inner, 0xff});
                }
        return out;
    }();
    return s;
}

int stencil_reach() {
    int r = 0;
    for (const auto& e : interaction_stencil()) {
        r = std::max({r, std::abs(static_cast<int>(e.dx)),
                      std::abs(static_cast<int>(e.dy)),
                      std::abs(static_cast<int>(e.dz))});
    }
    return r;
}

} // namespace octo::fmm

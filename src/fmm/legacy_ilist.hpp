#pragma once
// The "old" FMM organisation the paper's ablation compares against (§4.3):
// "Originally, lookup of close neighbor cells was performed using an
// interaction list, and data was stored in an array-of-struct format. In
// order to improve cache-efficiency and vector-unit usage, we changed it to
// a stencil-based approach and are now utilizing a struct-of-arrays
// datastructure. Compared to the old interaction-list approach, this led to
// a speedup of the total application runtime between 1.90 and 2.22 on
// AVX512 CPUs and between 1.23 and 1.35 on AVX2 CPUs."
//
// This module reimplements that legacy organisation — an explicit list of
// (receiver, partner) index pairs over array-of-struct cell records — so the
// ablation benchmark (bench_ablation_stencil) can regenerate the comparison.

#include <cstdint>
#include <vector>

#include "fmm/node_data.hpp"

namespace octo::fmm {

/// Array-of-struct cell record (the legacy layout).
struct aos_cell {
    double m;
    double x, y, z;
    double phi;
    double gx, gy, gz;
};

/// The per-node interaction list: one entry per (receiver cell, partner
/// cell) pair, built from the same 1074-element criterion, with partner
/// indices into a padded AoS array.
struct interaction_list {
    struct pair {
        std::int32_t receiver; ///< index into the 512 interior cells
        std::int32_t partner;  ///< index into the padded AoS buffer
    };
    std::vector<pair> pairs;
};

/// Build the interaction list for one node (every receiver against the full
/// stencil). Deterministic; ~550k entries.
interaction_list build_interaction_list();

/// Legacy monopole-monopole kernel: walks the interaction list over AoS
/// records. Numerically identical to monopole_kernel, structurally the
/// pre-optimization code path.
void legacy_monopole_kernel(const interaction_list& list,
                            std::vector<aos_cell>& receivers,
                            const std::vector<aos_cell>& partners);

/// Convert SoA node data into the padded AoS partner array (zero-mass cells
/// included) and the 512 receiver records. Helpers for the ablation bench.
std::vector<aos_cell> to_aos_partners(const partner_buffer& buf);
std::vector<aos_cell> to_aos_receivers(const node_moments& mom);

} // namespace octo::fmm

#include "fmm/taylor.hpp"

// The Taylor algebra is header-only (it must inline into the kernels); this
// translation unit exists to give the header a home for compile checking and
// to anchor the explicit sanity constants.

namespace octo::fmm {

static_assert(idx2(0, 0) == 4 && idx2(2, 2) == 9);
static_assert(idx3(0, 0, 0) == 10 && idx3(2, 2, 2) == 19);
static_assert(idx3(0, 1, 2) == 14);
static_assert(mult3(0, 1, 2) == 6.0 && mult3(0, 0, 1) == 3.0 && mult3(1, 1, 1) == 1.0);

} // namespace octo::fmm

#pragma once
// The same-level FMM interaction kernels — the application hotspot the whole
// paper revolves around (§4.3, §5.1). Two compute kernels, exactly as in
// Octo-Tiger after the multipole-multipole / multipole-monopole merge:
//
//   * monopole_kernel: leaf receiver cells interacting with leaf partner
//     cells (point masses at cell centers) — the cheap, 1/r^3 central-force
//     kernel (paper: 12 flops/interaction).
//   * multipole_kernel: the combined kernel — any receiver interacting with
//     partner cells carrying multipole moments, or multipole receivers with
//     monopole partners (partner moments zero). Computes the order-3 local
//     expansion, with the optional angular-momentum-conserving force term.
//
// Both are function templates over the value type T: instantiated with
// simd::pack<double,4> for the vectorized CPU path and plain double for the
// scalar path that stands in for the CUDA kernel (paper §5.1: "we can simply
// instance the same function template with scalar datatypes and call it
// within the GPU kernel").
//
// Conservation (paper §4.2/§4.3): pair interactions are evaluated from both
// sides with bitwise-mirrored arithmetic (the Green's-function derivatives
// are exactly odd/even in x), so accumulated forces are antisymmetric to
// rounding. In conserving mode the non-central component of the
// second-moment force is projected onto the line between the centers of
// mass, making the pair torque vanish identically — our substitution for
// Marcello's expansion-level correction (see DESIGN.md).

#include <cstdint>

#include "fmm/node_data.hpp"
#include "simd/pack.hpp"

namespace octo::fmm {

/// FLOPs per monopole-monopole interaction (per scalar lane). The paper
/// counts 12 for the force-only kernel; ours also accumulates the potential.
inline constexpr std::uint64_t mono_flops_per_interaction = 15;
/// FLOPs per multipole interaction (per scalar lane), hand-counted from the
/// kernel below (paper: 455 with its higher-order expansions).
inline constexpr std::uint64_t multi_flops_per_interaction = 262;

/// Angular-momentum conservation strategy for the multipole force terms.
/// (Linear momentum is conserved to rounding in every mode: pair forces are
/// built from odd/even-symmetric Green's derivatives and the redistribution
/// identities of the L2L pass.)
enum class am_mode {
    /// Standard FMM: most accurate forces; total torque violated at the
    /// truncation level (what the paper's §4.2 says of typical codes).
    none,
    /// Project each pair's moment force onto the line of centers: pair
    /// torque vanishes identically. Cheap; loses the tangential (tidal)
    /// component of the second-moment force.
    central_projection,
    /// Full-accuracy forces; each pair's net torque is deposited (with the
    /// opposite sign) into a per-cell spin-torque ledger that the hydro
    /// solver adds to the evolved spin field — total (orbital + spin)
    /// angular momentum is conserved to rounding. This mirrors Octo-Tiger's
    /// coupling of the gravity solver to the spin degrees of freedom.
    spin_deposit
};

struct kernel_options {
    bool use_inner_mask = false;          ///< skip |d|^2<=8 (refined-refined)
    am_mode conserve = am_mode::spin_deposit;
    /// Stencil to apply; nullptr means the regular 1074-element stencil.
    /// The root node passes its full stencil (no parent to defer to).
    const std::vector<stencil_element>* stencil = nullptr;
};

// The kernel bodies themselves live in src/kernel/fmm.{hpp,cpp} (ISSUE 7):
// one templated body per kernel, instantiated per execution-space policy.
// This header keeps the shared option/metadata types and the paper-style
// flop accounting.

/// Number of stencil interactions one kernel launch performs
/// (512 cells x 1074 stencil elements = 549'888; paper §4.3).
std::uint64_t interactions_per_launch(bool inner_masked);

/// Total FLOPs of one kernel launch (for the paper-style accounting).
std::uint64_t mono_kernel_flops();
std::uint64_t multi_kernel_flops(bool inner_masked);

} // namespace octo::fmm

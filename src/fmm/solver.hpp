#pragma once
// The gravitational FMM solver (paper §4.3): three steps on the octree —
//   1. bottom-up multipole moments + centers of mass (M2M),
//   2. same-level stencil interactions (the hotspot; optionally offloaded to
//      the simulated GPU as many small kernels on streams, §5.1),
//   3. top-down accumulation of the Taylor expansions (L2L).
//
// Coverage: every cell pair interacts exactly once — at the finest level
// where both sides exist and the two-level criterion selects the pair (see
// stencil.hpp); the root level uses a full stencil so no far pair is lost.
//
// Conservation: with conserve_angular set (default), pair forces are central
// along the line of centers of mass, so total force and total torque vanish
// to rounding — Octo-Tiger's headline property (§4.2).

#include <memory>
#include <string>
#include <unordered_map>

#include "amr/tree.hpp"
#include "fmm/kernels.hpp"
#include "gpu/aggregator.hpp"
#include "gpu/device.hpp"
#include "kernel/exec.hpp"
#include "runtime/thread_pool.hpp"

namespace octo::fmm {

/// Solver configuration. (Namespace-scope so it can serve as a defaulted
/// constructor argument: nested classes with member initializers cannot be
/// brace-defaulted inside their still-incomplete enclosing class.)
struct solver_options {
    am_mode conserve = am_mode::spin_deposit;
    bool vectorized = true;           ///< SIMD-pack kernels on the CPU path
    /// Run the solve as a per-node future DAG (paper §4.1 "futurization"):
    /// M2M waits only on its children, same-level on the 27 moment sets it
    /// reads, L2L on the parent's L2L plus the children's same-level. When
    /// false, the original five globally-barriered phases run instead (kept
    /// for A/B measurement; both paths are bit-identical).
    bool futurized = true;
    gpu::device* device = nullptr;    ///< offload same-level kernels when set
    rt::thread_pool* pool = nullptr;  ///< defaults to the global pool
    /// External aggregation executor (may span a device_group). When null
    /// and `device` is set, the solver owns a private single-device
    /// aggregator — all offload goes through one launch point either way.
    gpu::aggregator* aggregator = nullptr;
    /// Batch per-node kernels into fused launches (arXiv:2210.06438). When
    /// false the private executor degenerates to max_batch = 1, reproducing
    /// the paper's original one-stream-per-node policy for A/B runs.
    bool aggregate = true;
    unsigned gpu_batch = 16;          ///< fused-launch size threshold
    /// Consult the autotune cache (kernel/autotune.hpp) for tuned launch
    /// geometry — SIMD width/tile for the CPU kernels, fused-batch size for
    /// the GPU path — under the given machine key. Lookup-only: the solver
    /// never sweeps; benches/apps seed the cache. A miss keeps the defaults.
    bool autotune = false;
    std::string machine = "host";     ///< autotune cache machine key
};

class solver {
  public:
    using options = solver_options;

    explicit solver(options o = {});

    /// Compute gravity for the whole tree. Leaf nodes must hold field data
    /// (rho is read; everything else is untouched). Results are stored per
    /// node and available via gravity().
    void solve(amr::tree& t);

    [[nodiscard]] const node_gravity& gravity(amr::node_key k) const;
    [[nodiscard]] const node_moments& moments(amr::node_key k) const;

    // ---- diagnostics (used by tests and the conservation ledger) ----------

    /// Sum over leaf cells of m * g — zero to rounding in conserving mode.
    [[nodiscard]] dvec3 total_force(const amr::tree& t) const;
    /// Sum over leaf cells of com x (m * g) — zero to rounding in
    /// central_projection mode; cancelled by total_spin_torque() in
    /// spin_deposit mode.
    [[nodiscard]] dvec3 total_torque(const amr::tree& t) const;
    /// Sum of the per-cell spin-torque deposits over all leaves
    /// (am_mode::spin_deposit): total_torque() + total_spin_torque() is zero
    /// to rounding.
    [[nodiscard]] dvec3 total_spin_torque(const amr::tree& t) const;
    /// Gravitational potential energy 0.5 * sum m * phi.
    [[nodiscard]] double potential_energy(const amr::tree& t) const;

    /// Evaluate the potential at an arbitrary point by Taylor-evaluating the
    /// containing leaf cell's local expansion about its center of mass.
    /// Used by the SCF solver, which needs smooth point values.
    [[nodiscard]] double potential_at(const amr::tree& t, const dvec3& r) const;

  private:
    void compute_leaf_moments(amr::tree& t, amr::node_key k);
    void m2m(amr::tree& t, amr::node_key k);
    void same_level(amr::tree& t, amr::node_key k,
                    std::vector<rt::future<void>>& pending);
    void l2l(amr::tree& t, amr::node_key k);
    void evaluate_node(amr::node_key k);
    void fill_buffer_region(amr::tree& t, amr::node_key nb, const ivec3& off,
                            partner_buffer& buf) const;

    /// (Re)create the per-node workspace maps only when the tree structure
    /// changed since the previous solve (identified by tree id + revision);
    /// otherwise the existing buffers are reused as-is — zero allocations.
    void prepare_workspace(amr::tree& t);
    void solve_futurized(amr::tree& t);
    void solve_barriered(amr::tree& t);

    options opt_;
    rt::thread_pool* pool_;
    /// CPU launch geometry for the two same-level kernels (resolved once in
    /// the constructor from opt_.vectorized and, when autotuning, the cache).
    kernel::exec_config mono_cfg_;
    kernel::exec_config multi_cfg_;
    gpu::aggregator* agg_ = nullptr; ///< offload launch point (null = CPU only)
    std::unordered_map<amr::node_key, node_moments> moments_;
    std::unordered_map<amr::node_key, node_gravity> gravity_;
    std::unordered_map<amr::node_key, aligned_vector<double>> invm_;
    std::uint64_t workspace_tree_id_ = 0;
    std::uint64_t workspace_revision_ = 0;
    bool workspace_valid_ = false;
    /// Declared last: its destructor drains in-flight batches while the
    /// moment/gravity maps their kernels reference are still alive.
    std::unique_ptr<gpu::aggregator> own_agg_;
};


} // namespace octo::fmm

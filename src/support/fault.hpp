#pragma once
// Deterministic, seed-driven fault injector (ISSUE 5). One seed replays an
// entire fault campaign: every category of fault (parcel drop / duplicate /
// reorder / delay / bit-corruption, GPU stream-acquire failure, transient
// checkpoint I/O error) draws from its own PRNG stream derived from the
// campaign seed, so the decision sequence of one category is independent of
// how often the others are consulted. The injector makes *decisions* only;
// the faulty_parcelport decorator (src/net/faulty.hpp), gpu::device and
// io::write_checkpoint own the mechanics of acting on them.
//
// Real fabrics drop and reorder completions and real file systems fail
// transiently; PRs 1-3 built futurized DAGs that had never been exercised
// under failure. This is the probe that exercises them.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>

#include "support/rng.hpp"

namespace octo::support {

struct fault_config {
    std::uint64_t seed = 1; ///< replays the whole campaign

    // Parcel-transport faults (consumed by net::faulty_parcelport).
    double drop_prob = 0;    ///< parcel vanishes (completion lost)
    double dup_prob = 0;     ///< parcel delivered twice
    double reorder_prob = 0; ///< parcel held back so later sends overtake it
    double delay_prob = 0;   ///< parcel delivered late (but in unknown order)
    double corrupt_prob = 0; ///< one payload bit flipped in flight
    double delay_us_min = 20;
    double delay_us_max = 200;
    double reorder_hold_us = 200; ///< holdback bound, so nothing starves

    // Accelerator / storage faults (consumed through the global hooks).
    double gpu_stream_fail_prob = 0; ///< try_acquire_stream spuriously fails
    double io_fail_prob = 0;         ///< transient checkpoint write failure

    // Node-loss faults (ISSUE 10, consumed by the step driver). Consulted
    // once per step; when it fires, a whole locality dies mid-step: its
    // pool stops accepting work and its parcelport goes silent.
    double node_kill_prob = 0;
};

/// Counts of faults actually injected — what the campaign asserts against
/// (e.g. "this seed injected drops, so the runtime must show retries").
struct fault_stats {
    std::uint64_t drops = 0;
    std::uint64_t dups = 0;
    std::uint64_t reorders = 0;
    std::uint64_t delays = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t gpu_stream_failures = 0;
    std::uint64_t io_failures = 0;
    std::uint64_t node_kills = 0;
};

class fault_injector {
  public:
    explicit fault_injector(fault_config cfg);

    const fault_config& config() const { return cfg_; }

    // Transport decisions, one per parcel send, in this order. Each returns
    // whether the fault fires and counts it when it does.
    bool drop();
    bool duplicate();
    bool corrupt();
    /// nullopt: deliver now. Otherwise: hold for the returned microseconds
    /// (reorder holds use the fixed bound; delays draw from [min, max)).
    std::optional<double> hold_us();

    /// Which bit of an `nbits`-bit payload to flip (deterministic stream).
    std::size_t corrupt_bit(std::size_t nbits);

    // Accelerator / storage decisions.
    bool gpu_stream_fail();
    bool io_fail();

    // Node-loss decisions. node_kill() is consulted once per step; when it
    // fires, kill_victim(nlive) picks which of the `nlive` live localities
    // dies. The victim index draws from its own stream, so how many live
    // ranks remain never perturbs the kill schedule itself.
    bool node_kill();
    std::size_t kill_victim(std::size_t nlive);

    fault_stats stats() const;

  private:
    enum stream : std::size_t {
        s_drop = 0,
        s_dup,
        s_reorder,
        s_delay,
        s_corrupt,
        s_bit,
        s_gpu,
        s_io,
        s_kill,
        s_victim,
        n_streams
    };
    bool fire(stream s, double prob, std::uint64_t fault_stats::*count);

    mutable std::mutex mutex_;
    fault_config cfg_;
    xoshiro256 rng_[n_streams];
    fault_stats stats_;
};

// ---- global injection points ------------------------------------------------
// gpu::device and io::write_checkpoint sit below the layers that know about
// campaigns, so they consult process-global hooks (null = no injection, the
// default). Scoped guards install an injector for the duration of a test.

fault_injector* gpu_faults() noexcept;
void set_gpu_faults(fault_injector* f) noexcept;

fault_injector* io_faults() noexcept;
void set_io_faults(fault_injector* f) noexcept;

class scoped_gpu_faults {
  public:
    explicit scoped_gpu_faults(fault_injector& f) { set_gpu_faults(&f); }
    ~scoped_gpu_faults() { set_gpu_faults(nullptr); }
    scoped_gpu_faults(const scoped_gpu_faults&) = delete;
    scoped_gpu_faults& operator=(const scoped_gpu_faults&) = delete;
};

class scoped_io_faults {
  public:
    explicit scoped_io_faults(fault_injector& f) { set_io_faults(&f); }
    ~scoped_io_faults() { set_io_faults(nullptr); }
    scoped_io_faults(const scoped_io_faults&) = delete;
    scoped_io_faults& operator=(const scoped_io_faults&) = delete;
};

} // namespace octo::support

#include "support/fault.hpp"

#include <atomic>

namespace octo::support {

fault_injector::fault_injector(fault_config cfg) : cfg_(cfg) {
    // Independent xoshiro streams per fault category, all derived from the
    // one campaign seed: consulting one category never perturbs another, so
    // "same seed" really means "same fault schedule per category".
    std::uint64_t sm = cfg_.seed;
    for (auto& r : rng_) r = xoshiro256(splitmix64(sm));
}

bool fault_injector::fire(stream s, double prob,
                          std::uint64_t fault_stats::*count) {
    if (prob <= 0.0) return false;
    std::lock_guard lock(mutex_);
    if (rng_[s].uniform() >= prob) return false;
    stats_.*count += 1;
    return true;
}

bool fault_injector::drop() {
    return fire(s_drop, cfg_.drop_prob, &fault_stats::drops);
}

bool fault_injector::duplicate() {
    return fire(s_dup, cfg_.dup_prob, &fault_stats::dups);
}

bool fault_injector::corrupt() {
    return fire(s_corrupt, cfg_.corrupt_prob, &fault_stats::corruptions);
}

std::optional<double> fault_injector::hold_us() {
    if (fire(s_reorder, cfg_.reorder_prob, &fault_stats::reorders)) {
        return cfg_.reorder_hold_us;
    }
    if (fire(s_delay, cfg_.delay_prob, &fault_stats::delays)) {
        std::lock_guard lock(mutex_);
        return rng_[s_delay].uniform(cfg_.delay_us_min, cfg_.delay_us_max);
    }
    return std::nullopt;
}

std::size_t fault_injector::corrupt_bit(std::size_t nbits) {
    if (nbits == 0) return 0;
    std::lock_guard lock(mutex_);
    return static_cast<std::size_t>(rng_[s_bit].below(nbits));
}

bool fault_injector::gpu_stream_fail() {
    return fire(s_gpu, cfg_.gpu_stream_fail_prob,
                &fault_stats::gpu_stream_failures);
}

bool fault_injector::io_fail() {
    return fire(s_io, cfg_.io_fail_prob, &fault_stats::io_failures);
}

bool fault_injector::node_kill() {
    return fire(s_kill, cfg_.node_kill_prob, &fault_stats::node_kills);
}

std::size_t fault_injector::kill_victim(std::size_t nlive) {
    if (nlive == 0) return 0;
    std::lock_guard lock(mutex_);
    return static_cast<std::size_t>(rng_[s_victim].below(nlive));
}

fault_stats fault_injector::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

namespace {
std::atomic<fault_injector*> g_gpu_faults{nullptr};
std::atomic<fault_injector*> g_io_faults{nullptr};
} // namespace

fault_injector* gpu_faults() noexcept {
    return g_gpu_faults.load(std::memory_order_acquire);
}
void set_gpu_faults(fault_injector* f) noexcept {
    g_gpu_faults.store(f, std::memory_order_release);
}

fault_injector* io_faults() noexcept {
    return g_io_faults.load(std::memory_order_acquire);
}
void set_io_faults(fault_injector* f) noexcept {
    g_io_faults.store(f, std::memory_order_release);
}

} // namespace octo::support

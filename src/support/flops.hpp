#pragma once
// Floating-point operation accounting, mirroring the paper's measurement
// protocol (§6.1.1): "Each FMM kernel always executes a constant number of
// floating point operations. We count the number of kernel launches in each
// HPX thread and accumulate this number until the end of the simulation. We
// can further record whether a kernel was executed on the CPU or the GPU."
//
// Counters are per-thread and lock-free on the hot path; a global registry
// aggregates them on demand.

#include <atomic>
#include <cstdint>

namespace octo {

/// Where a kernel executed (paper tracks CPU vs GPU launches separately).
enum class exec_site : int { cpu = 0, gpu = 1 };

/// Aggregated FLOP / launch counters for one kernel class.
struct flop_totals {
    std::uint64_t cpu_flops = 0;
    std::uint64_t gpu_flops = 0;
    std::uint64_t cpu_launches = 0;
    std::uint64_t gpu_launches = 0;

    std::uint64_t flops() const { return cpu_flops + gpu_flops; }
    std::uint64_t launches() const { return cpu_launches + gpu_launches; }
    /// Fraction of launches that ran on the GPU (§6.1.2 reports e.g. 99.9997%).
    double gpu_launch_fraction() const;
};

/// Kernel classes whose FLOPs the harness accounts for.
enum class kernel_class : int {
    fmm_multipole,        // combined multipole-multipole / multipole-monopole
    fmm_monopole,         // monopole-monopole
    fmm_monopole_multipole,
    fmm_m2m,              // bottom-up moment computation
    fmm_l2l,              // top-down expansion pass
    hydro,                // everything in the fluid solver
    other,
    count_
};

/// Record `flops` executed by `site` for kernel class `k` on this thread.
void count_flops(kernel_class k, exec_site site, std::uint64_t flops) noexcept;

/// Record one kernel launch (without FLOPs; use together with count_flops).
void count_launch(kernel_class k, exec_site site) noexcept;

/// Snapshot of the global totals for one kernel class (sums all threads).
flop_totals flop_snapshot(kernel_class k);

/// Sum over every kernel class.
flop_totals flop_snapshot_all();

/// Reset all counters (benchmarks call this between configurations).
void flop_reset();

} // namespace octo

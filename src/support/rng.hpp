#pragma once
// Deterministic, fast PRNG (xoshiro256**) so tests and benchmarks are
// reproducible across platforms, unlike std::default_random_engine.

#include <cstdint>

namespace octo {

/// splitmix64: used to seed xoshiro from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** — public-domain generator by Blackman & Vigna.
class xoshiro256 {
  public:
    using result_type = std::uint64_t;

    explicit constexpr xoshiro256(std::uint64_t seed = 0x6f63746f2d73696dULL) noexcept {
        std::uint64_t sm = seed;
        for (auto& si : s_) si = splitmix64(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    constexpr double uniform() noexcept {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    constexpr double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n).
    constexpr std::uint64_t below(std::uint64_t n) noexcept { return operator()() % n; }

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4]{};
};

} // namespace octo

#pragma once
// CRC-32 (IEEE 802.3 polynomial, reflected) used for parcel payload
// checksums (src/dist reliable delivery) and checkpoint section checksums
// (src/io format v2). A table-driven software implementation is plenty:
// both call sites checksum buffers that are about to cross a "lossy"
// boundary (a modeled network or a file system), never a per-cell hot loop.

#include <array>
#include <cstddef>
#include <cstdint>

namespace octo {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
            }
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/// One-shot CRC of a buffer. `seed` chains calls: crc32(b, n, crc32(a, m))
/// equals the CRC of a||b, which is how multi-part messages (header +
/// payload) are covered by a single checksum.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
    const auto& table = detail::crc32_table();
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i) {
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    return c ^ 0xffffffffu;
}

/// Incremental accumulator for streamed writes (checkpoint sections).
class crc32_accumulator {
  public:
    void update(const void* data, std::size_t n) {
        const auto& table = detail::crc32_table();
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state_ = table[(state_ ^ p[i]) & 0xffu] ^ (state_ >> 8);
        }
    }
    std::uint32_t value() const { return state_ ^ 0xffffffffu; }
    void reset() { state_ = 0xffffffffu; }

  private:
    std::uint32_t state_ = 0xffffffffu;
};

} // namespace octo

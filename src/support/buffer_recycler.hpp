#pragma once
// Reusable buffer pool — the allocation-churn fix from the follow-on paper
// ("From Task-Based GPU Work Aggregation to Stellar Mergers", 2022): task
// codes that allocate and free their per-task scratch on every invocation
// spend more time in the allocator than in the kernels. The recycler keeps
// freed buffers in size-keyed free lists so steady-state solves perform zero
// allocations; `aligned_allocator` routes through it, which makes every
// `aligned_vector` in the tree (FMM workspaces, partner buffers, sub-grids,
// hydro scratch, halo plans) recycle transparently.

#include <cstddef>
#include <cstdint>

namespace octo {

class buffer_recycler {
  public:
    struct stats_t {
        std::uint64_t hits = 0;       ///< allocations served from the pool
        std::uint64_t misses = 0;     ///< allocations that hit ::operator new
        std::uint64_t returns = 0;    ///< deallocations parked in the pool
        std::uint64_t pooled_bytes = 0; ///< bytes currently parked
    };

    /// Process-wide instance. Intentionally leaked so buffers freed during
    /// static destruction (thread-local scratch, global pools) never touch a
    /// destroyed registry.
    static buffer_recycler& instance();

    /// Allocate `bytes` aligned to `align`; reuses a parked buffer of the
    /// exact same (bytes, align) bucket when one exists.
    void* allocate(std::size_t bytes, std::size_t align);

    /// Return a buffer obtained from allocate(). Parks it for reuse (or
    /// frees it immediately when recycling is disabled).
    void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept;

    stats_t stats() const;

    /// Free every parked buffer (keeps counters). Used by benchmarks to
    /// emulate cold-start allocation behaviour.
    void clear();

    /// Disable/enable pooling; disabled means pass-through to the global
    /// allocator (parked buffers stay parked until clear()).
    void set_enabled(bool enabled);
    bool enabled() const;

  private:
    buffer_recycler();
    ~buffer_recycler() = delete; // leaky singleton

    struct impl;
    impl* impl_;
};

} // namespace octo

#pragma once
// 3-D Morton (Z-order) keys. Octo-Tiger distributes octree nodes onto
// compute nodes with a space-filling curve (paper §4.2); we use Morton
// order for the same purpose in the AMR partitioner and the cluster
// simulator. Supports up to 21 bits per dimension (63-bit keys).

#include <cstdint>

#include "support/vec3.hpp"

namespace octo {

/// Spread the low 21 bits of `v` so that there are two zero bits between
/// each original bit (the classic magic-number dilation).
constexpr std::uint64_t morton_split3(std::uint64_t v) noexcept {
    v &= 0x1fffff; // 21 bits
    v = (v | v << 32) & 0x1f00000000ffffULL;
    v = (v | v << 16) & 0x1f0000ff0000ffULL;
    v = (v | v << 8) & 0x100f00f00f00f00fULL;
    v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
    v = (v | v << 2) & 0x1249249249249249ULL;
    return v;
}

/// Inverse of morton_split3.
constexpr std::uint64_t morton_compact3(std::uint64_t v) noexcept {
    v &= 0x1249249249249249ULL;
    v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
    v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
    v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
    v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
    v = (v ^ (v >> 32)) & 0x1fffff;
    return v;
}

/// Interleave (x, y, z) into a Morton key. Each coordinate must be < 2^21.
constexpr std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                                      std::uint32_t z) noexcept {
    return morton_split3(x) | (morton_split3(y) << 1) | (morton_split3(z) << 2);
}

/// Decode a Morton key back into (x, y, z).
constexpr vec3<std::uint32_t> morton_decode(std::uint64_t key) noexcept {
    return {static_cast<std::uint32_t>(morton_compact3(key)),
            static_cast<std::uint32_t>(morton_compact3(key >> 1)),
            static_cast<std::uint32_t>(morton_compact3(key >> 2))};
}

} // namespace octo

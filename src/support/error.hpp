#pragma once
// Library-wide exception type. Thrown for user errors (bad configuration,
// malformed input); internal invariant violations use OCTO_ASSERT instead.

#include <stdexcept>
#include <string>

namespace octo {

class error : public std::runtime_error {
  public:
    explicit error(const std::string& what) : std::runtime_error(what) {}
};

} // namespace octo

#include "support/flops.hpp"

#include <array>
#include <mutex>
#include <vector>

namespace octo {
namespace {

constexpr int nclasses = static_cast<int>(kernel_class::count_);

struct thread_counters {
    struct slot {
        std::atomic<std::uint64_t> cpu_flops{0};
        std::atomic<std::uint64_t> gpu_flops{0};
        std::atomic<std::uint64_t> cpu_launches{0};
        std::atomic<std::uint64_t> gpu_launches{0};
    };
    std::array<slot, nclasses> slots;
};

std::mutex registry_mutex;
std::vector<thread_counters*>& registry() {
    // Leaked on purpose (same policy as buffer_recycler::instance): if the
    // vector had a destructor it would run before LeakSanitizer's end-of-
    // process scan, orphaning the intentionally-immortal per-thread counter
    // blocks it anchors.
    static auto* const r = new std::vector<thread_counters*>;
    return *r;
}

thread_counters& local_counters() {
    thread_local thread_counters* tc = [] {
        auto* p = new thread_counters(); // intentionally leaked: counters must
                                         // outlive the thread for end-of-run snapshots
        std::lock_guard lock(registry_mutex);
        registry().push_back(p);
        return p;
    }();
    return *tc;
}

} // namespace

double flop_totals::gpu_launch_fraction() const {
    const auto total = launches();
    return total == 0 ? 0.0 : static_cast<double>(gpu_launches) / static_cast<double>(total);
}

void count_flops(kernel_class k, exec_site site, std::uint64_t flops) noexcept {
    auto& slot = local_counters().slots[static_cast<int>(k)];
    if (site == exec_site::cpu) {
        slot.cpu_flops.fetch_add(flops, std::memory_order_relaxed);
    } else {
        slot.gpu_flops.fetch_add(flops, std::memory_order_relaxed);
    }
}

void count_launch(kernel_class k, exec_site site) noexcept {
    auto& slot = local_counters().slots[static_cast<int>(k)];
    if (site == exec_site::cpu) {
        slot.cpu_launches.fetch_add(1, std::memory_order_relaxed);
    } else {
        slot.gpu_launches.fetch_add(1, std::memory_order_relaxed);
    }
}

flop_totals flop_snapshot(kernel_class k) {
    flop_totals out;
    std::lock_guard lock(registry_mutex);
    for (const auto* tc : registry()) {
        const auto& slot = tc->slots[static_cast<int>(k)];
        out.cpu_flops += slot.cpu_flops.load(std::memory_order_relaxed);
        out.gpu_flops += slot.gpu_flops.load(std::memory_order_relaxed);
        out.cpu_launches += slot.cpu_launches.load(std::memory_order_relaxed);
        out.gpu_launches += slot.gpu_launches.load(std::memory_order_relaxed);
    }
    return out;
}

flop_totals flop_snapshot_all() {
    flop_totals out;
    for (int k = 0; k < nclasses; ++k) {
        const auto s = flop_snapshot(static_cast<kernel_class>(k));
        out.cpu_flops += s.cpu_flops;
        out.gpu_flops += s.gpu_flops;
        out.cpu_launches += s.cpu_launches;
        out.gpu_launches += s.gpu_launches;
    }
    return out;
}

void flop_reset() {
    std::lock_guard lock(registry_mutex);
    for (auto* tc : registry()) {
        for (auto& slot : tc->slots) {
            // Counter resets, not publishes: readers tolerate torn epochs
            // and the registry_mutex orders the reset against iteration.
            slot.cpu_flops.store(0, std::memory_order_relaxed);      // lint: allow(relaxed-publish): counter reset, not a publish; registry_mutex orders it
            slot.gpu_flops.store(0, std::memory_order_relaxed);      // lint: allow(relaxed-publish): counter reset, not a publish; registry_mutex orders it
            slot.cpu_launches.store(0, std::memory_order_relaxed);   // lint: allow(relaxed-publish): counter reset, not a publish; registry_mutex orders it
            slot.gpu_launches.store(0, std::memory_order_relaxed);   // lint: allow(relaxed-publish): counter reset, not a publish; registry_mutex orders it
        }
    }
}

} // namespace octo

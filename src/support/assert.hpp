#pragma once
// Always-on assertion macro. Numerical codes fail in ways optimized-out
// asserts hide, so OCTO_ASSERT stays active in release builds. The cost is
// negligible outside the innermost kernels, which avoid it.

#include <cstdio>
#include <cstdlib>

namespace octo::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
    std::fprintf(stderr, "OCTO_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
                 msg != nullptr ? msg : "");
    std::abort();
}
} // namespace octo::detail

#define OCTO_ASSERT(expr)                                                                \
    ((expr) ? static_cast<void>(0)                                                       \
            : ::octo::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define OCTO_ASSERT_MSG(expr, msg)                                                       \
    ((expr) ? static_cast<void>(0)                                                       \
            : ::octo::detail::assert_fail(#expr, __FILE__, __LINE__, msg))

#include "support/buffer_recycler.hpp"

#include <atomic>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

#include "sanitize/hooks.hpp"
#include "sanitize/tsan.hpp"

namespace octo {

namespace {

/// Bucket key: buffers are only interchangeable when both size and alignment
/// match exactly. Alignment is a power of two <= 2^16 in practice, so fold it
/// into the top bits of the size.
constexpr std::uint64_t bucket_key(std::size_t bytes, std::size_t align) {
    return static_cast<std::uint64_t>(bytes) ^
           (static_cast<std::uint64_t>(align) << 48);
}

} // namespace

struct buffer_recycler::impl {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<void*>> buckets;
    std::uint64_t pooled_bytes = 0;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> returns{0};
    std::atomic<bool> enabled{true};
};

buffer_recycler::buffer_recycler() : impl_(new impl) {}

buffer_recycler& buffer_recycler::instance() {
    static buffer_recycler* const r = new buffer_recycler; // leaked on purpose
    return *r;
}

void* buffer_recycler::allocate(std::size_t bytes, std::size_t align) {
    if (impl_->enabled.load(std::memory_order_relaxed)) {
        std::lock_guard lock(impl_->mutex);
        auto it = impl_->buckets.find(bucket_key(bytes, align));
        if (it != impl_->buckets.end() && !it->second.empty()) {
            void* p = it->second.back();
            it->second.pop_back();
            impl_->pooled_bytes -= bytes;
            impl_->hits.fetch_add(1, std::memory_order_relaxed);
            // Free-list hand-off, consumer side: join the parking thread's
            // clock, and tell TSan the previous owner's unsynchronized
            // payload writes are dead — this block is fresh memory to the
            // new owner.
            sanitize::hb_after(p);
            OCTO_TSAN_HB_AFTER(p);
            OCTO_TSAN_NEW_MEMORY(p, bytes);
            return p;
        }
    }
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes, std::align_val_t{align});
}

void buffer_recycler::deallocate(void* p, std::size_t bytes,
                                 std::size_t align) noexcept {
    if (p == nullptr) return;
    if (impl_->enabled.load(std::memory_order_relaxed)) {
        impl_->returns.fetch_add(1, std::memory_order_relaxed);
        // Free-list hand-off, producer side: whatever the parking thread
        // wrote into the buffer happens-before the next owner's reuse.
        sanitize::hb_before(p);
        OCTO_TSAN_HB_BEFORE(p);
        std::lock_guard lock(impl_->mutex);
        impl_->buckets[bucket_key(bytes, align)].push_back(p);
        impl_->pooled_bytes += bytes;
        return;
    }
    ::operator delete(p, std::align_val_t{align});
}

buffer_recycler::stats_t buffer_recycler::stats() const {
    stats_t s;
    s.hits = impl_->hits.load(std::memory_order_relaxed);
    s.misses = impl_->misses.load(std::memory_order_relaxed);
    s.returns = impl_->returns.load(std::memory_order_relaxed);
    std::lock_guard lock(impl_->mutex);
    s.pooled_bytes = impl_->pooled_bytes;
    return s;
}

void buffer_recycler::clear() {
    std::unordered_map<std::uint64_t, std::vector<void*>> buckets;
    {
        std::lock_guard lock(impl_->mutex);
        buckets.swap(impl_->buckets);
        impl_->pooled_bytes = 0;
    }
    for (auto& [key, list] : buckets) {
        const auto align = static_cast<std::size_t>(key >> 48);
        for (void* p : list) {
            sanitize::sync_retire(p); // address may be reincarnated by new
            ::operator delete(p, std::align_val_t{align});
        }
    }
}

void buffer_recycler::set_enabled(bool enabled) {
    impl_->enabled.store(enabled, std::memory_order_release);
}

bool buffer_recycler::enabled() const {
    return impl_->enabled.load(std::memory_order_relaxed);
}

} // namespace octo

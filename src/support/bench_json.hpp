#pragma once
// Minimal JSON emitter for machine-readable benchmark trajectories
// (BENCH_*.json). The benches print human tables to stdout; CI and the
// performance-tracking scripts consume these files instead, so the format
// is deliberately dumb: objects and arrays built by value, no parsing, no
// external dependency.

#include <cstdint>
#include <cstdio>
#include <string>

namespace octo::support {

inline std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

/// A JSON value under construction, rendered eagerly into `text`. Compose
/// with add() (objects) / push() (arrays); nest by passing another value.
class json_value {
  public:
    static json_value object() { return json_value('{', '}'); }
    static json_value array() { return json_value('[', ']'); }

    // ---- object members ---------------------------------------------------
    json_value& add(const std::string& key, double v) {
        return raw_member(key, num(v));
    }
    json_value& add(const std::string& key, std::uint64_t v) {
        return raw_member(key, std::to_string(v));
    }
    json_value& add(const std::string& key, int v) {
        return raw_member(key, std::to_string(v));
    }
    json_value& add(const std::string& key, bool v) {
        return raw_member(key, v ? "true" : "false");
    }
    json_value& add(const std::string& key, const std::string& v) {
        return raw_member(key, "\"" + json_escape(v) + "\"");
    }
    json_value& add(const std::string& key, const char* v) {
        return add(key, std::string(v));
    }
    json_value& add(const std::string& key, const json_value& v) {
        return raw_member(key, v.str());
    }

    // ---- array elements ---------------------------------------------------
    json_value& push(const json_value& v) { return raw_element(v.str()); }
    json_value& push(double v) { return raw_element(num(v)); }
    json_value& push(const std::string& v) {
        return raw_element("\"" + json_escape(v) + "\"");
    }

    std::string str() const { return text_ + close_; }

  private:
    json_value(char open, char close) : text_(1, open), close_(1, close) {}

    static std::string num(double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        return buf;
    }
    json_value& raw_member(const std::string& key, const std::string& value) {
        if (text_.size() > 1) text_ += ",";
        text_ += "\"" + json_escape(key) + "\":" + value;
        return *this;
    }
    json_value& raw_element(const std::string& value) {
        if (text_.size() > 1) text_ += ",";
        text_ += value;
        return *this;
    }

    std::string text_;
    std::string close_;
};

/// Write a BENCH_*.json trajectory file; returns false (and says so on
/// stderr) if the file cannot be created.
inline bool write_bench_json(const std::string& path, const json_value& root) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
        return false;
    }
    const std::string body = root.str();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

} // namespace octo::support

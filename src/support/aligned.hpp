#pragma once
// Cache-line / SIMD-aligned storage. The FMM kernels are struct-of-arrays
// (paper §4.3) and rely on aligned, contiguous buffers for vectorization.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace octo {

inline constexpr std::size_t simd_alignment = 64; // AVX-512 / cache line

template <class T, std::size_t Align = simd_alignment>
struct aligned_allocator {
    using value_type = T;

    // allocator_traits cannot synthesize rebind across the non-type Align
    // parameter, so it must be spelled out.
    template <class U>
    struct rebind {
        using other = aligned_allocator<U, Align>;
    };

    aligned_allocator() = default;
    template <class U>
    aligned_allocator(const aligned_allocator<U, Align>&) noexcept {}

    T* allocate(std::size_t n) {
        if (n == 0) return nullptr;
        void* p = ::operator new(n * sizeof(T), std::align_val_t{Align});
        return static_cast<T*>(p);
    }
    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{Align});
    }

    template <class U>
    bool operator==(const aligned_allocator<U, Align>&) const noexcept {
        return true;
    }
};

/// std::vector with SIMD-aligned storage.
template <class T>
using aligned_vector = std::vector<T, aligned_allocator<T>>;

} // namespace octo

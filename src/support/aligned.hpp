#pragma once
// Cache-line / SIMD-aligned storage. The FMM kernels are struct-of-arrays
// (paper §4.3) and rely on aligned, contiguous buffers for vectorization.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "support/buffer_recycler.hpp"

namespace octo {

inline constexpr std::size_t simd_alignment = 64; // AVX-512 / cache line

/// Allocates through the buffer_recycler: freed blocks are parked in
/// size-keyed free lists instead of returned to the system, so steady-state
/// solver iterations perform zero allocations (the recycled-buffer scheme of
/// the 2022 work-aggregation follow-on paper).
template <class T, std::size_t Align = simd_alignment>
struct aligned_allocator {
    using value_type = T;

    // allocator_traits cannot synthesize rebind across the non-type Align
    // parameter, so it must be spelled out.
    template <class U>
    struct rebind {
        using other = aligned_allocator<U, Align>;
    };

    aligned_allocator() = default;
    template <class U>
    aligned_allocator(const aligned_allocator<U, Align>&) noexcept {}

    T* allocate(std::size_t n) {
        if (n == 0) return nullptr;
        void* p = buffer_recycler::instance().allocate(n * sizeof(T), Align);
        return static_cast<T*>(p);
    }
    void deallocate(T* p, std::size_t n) noexcept {
        buffer_recycler::instance().deallocate(p, n * sizeof(T), Align);
    }

    template <class U>
    bool operator==(const aligned_allocator<U, Align>&) const noexcept {
        return true;
    }
};

/// std::vector with SIMD-aligned storage.
template <class T>
using aligned_vector = std::vector<T, aligned_allocator<T>>;

} // namespace octo

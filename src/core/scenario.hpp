#pragma once
// The V1309 Scorpii scenario (paper §3, §6): a 1.54 + 0.17 M_sun contact
// binary with a common envelope, in a cubic domain 160x the separation,
// rotating with the initial orbital period. Provides
//   * a scaled, runnable setup (SCF model + density-driven AMR) for the
//     examples and node-level experiments, and
//   * the analytic density model + per-level refinement criterion used by
//     the cluster simulator to rebuild the paper's level-13..17 trees
//     (Table 4) as metadata-only octrees.

#include "core/simulation.hpp"

namespace octo::core {

struct v1309_config {
    /// Domain edge in units of the binary separation. The paper uses ~160
    /// (1.02e3 R_sun vs 6.37 R_sun); scaled runs may shrink this so the
    /// stars stay resolved on small trees.
    double domain_over_separation = 16.0;
    double separation = 1.0;   ///< binary separation in code length units
    int base_depth = 1;        ///< uniform tree depth before AMR
    int max_level = 3;         ///< finest AMR level for the scaled run
    int scf_iterations = 25;
};

/// Build the scaled V1309 simulation: SCF binary model, density-refined
/// octree, rotating grid at the model's orbital frequency (the paper's
/// "rotating Cartesian grid").
simulation make_v1309(const v1309_config& cfg, sim_options opt);

/// Analytic stand-in for the V1309 mass distribution at PAPER scale, in
/// units of the separation, centered at the origin: two polytrope-shaped
/// stars plus a common envelope. Used to drive the scenario-tree builder of
/// the cluster simulator (Table 4 / Fig 2) without any field data.
double v1309_analytic_density(const dvec3& r_over_a);

/// Octo-Tiger-style per-level density refinement threshold: refine a node
/// at `level` when the analytic density somewhere in its box exceeds this.
double v1309_refine_threshold(int level, int finest_level);

} // namespace octo::core
